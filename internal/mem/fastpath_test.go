package mem

import "testing"

// TestMemoryZeroLengthRanges: length-0 Zero and ResidentIn used to compute
// (addr+length-1)>>PageBits, which underflows at addr 0 and, for ResidentIn,
// turned the empty range into the whole address space.
func TestMemoryZeroLengthRanges(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0xdead)
	m.Write(0, 8, 0xbeef)

	if got := m.ResidentIn(0, 0); got != 0 {
		t.Fatalf("ResidentIn(0, 0) = %d, want 0", got)
	}
	if got := m.ResidentIn(0x1000, 0); got != 0 {
		t.Fatalf("ResidentIn(0x1000, 0) = %d, want 0", got)
	}

	m.Zero(0, 0)
	m.Zero(0x1000, 0)
	if got := m.Read(0, 8); got != 0xbeef {
		t.Fatalf("after Zero(0,0): mem[0] = %#x, want 0xbeef", got)
	}
	if got := m.Read(0x1000, 8); got != 0xdead {
		t.Fatalf("after Zero(0x1000,0): mem[0x1000] = %#x, want 0xdead", got)
	}
}

// TestMemoryReadAfterZero: Zero deletes backing pages, so the last-page
// cache must not serve a discarded page.
func TestMemoryReadAfterZero(t *testing.T) {
	m := NewMemory()
	m.Write(0x2000, 8, 0x1234)
	if got := m.Read(0x2000, 8); got != 0x1234 {
		t.Fatalf("pre-zero read = %#x", got)
	}
	m.Zero(0x2000, PageSize)
	if got := m.Read(0x2000, 8); got != 0 {
		t.Fatalf("post-zero read = %#x, want 0 (stale page cache?)", got)
	}
	if m.PageResident(0x2000) {
		t.Fatal("page still resident after Zero")
	}
	// Writing again must materialize a fresh page, not resurrect the old.
	m.Write(0x2000, 4, 0x55)
	if got := m.Read(0x2000, 8); got != 0x55 {
		t.Fatalf("rewrite read = %#x, want 0x55", got)
	}
}

// TestMemoryPageStraddle: accesses crossing a backing-page boundary must
// take the multi-page path and still round-trip little-endian.
func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	for _, size := range []uint8{2, 4, 8} {
		addr := uint64(2*PageSize) - uint64(size)/2 // straddles the boundary
		want := uint64(0x1122334455667788) >> (64 - 8*uint(size))
		m.Write(addr, size, want)
		if got := m.Read(addr, size); got != want {
			t.Fatalf("size %d straddle at %#x: got %#x, want %#x", size, addr, got, want)
		}
		// The halves landed on the right pages.
		lo := m.Read(addr, uint8(uint64(size)/2))
		if want&((1<<(8*uint64(size)/2))-1) != lo {
			t.Fatalf("size %d straddle low half = %#x", size, lo)
		}
	}
}

// TestMemoryUnmappedReads: reads of never-written locations return zero on
// both the single-page fast path and the straddle path.
func TestMemoryUnmappedReads(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0x5000, 8); got != 0 {
		t.Fatalf("unmapped aligned read = %#x", got)
	}
	if got := m.Read(2*PageSize-4, 8); got != 0 {
		t.Fatalf("unmapped straddle read = %#x", got)
	}
}

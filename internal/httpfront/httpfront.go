// Package httpfront exposes a host.Server over HTTP: per-tenant invoke
// routes, a drain-aware health endpoint, and a JSON stats endpoint. It is
// the seam where the serving layer's outcome vocabulary becomes wire
// semantics — every host.Status has exactly one documented HTTP code (see
// StatusCode) — and where client disconnects become cancellations: the
// request's http context is passed straight into host.Server.Do, so a
// caller that goes away while its request is queued resolves
// StatusCanceled without ever occupying a worker.
//
// Routes:
//
//	POST /v1/tenants/{tenant}/invoke  run one request (body = guest input;
//	                                  empty body = tenant's synthetic stream)
//	GET  /healthz                     readiness; 503 once draining
//	GET  /statsz                      StatszV1 (versioned typed stats document)
//	POST /drainz                      flip into draining (router-driven drain)
//
// Every non-2xx invoke response carries an ErrorEnvelope JSON body and
// every invoke response echoes RequestIDHeader (see wire.go).
package httpfront

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hfi/internal/faas"
	"hfi/internal/host"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

// StatusClientClosedRequest is the nginx-convention code for a request
// whose client disconnected before a response existed. Nobody is usually
// left to read it; it exists so access logs distinguish abandoned
// requests from server failures.
const StatusClientClosedRequest = 499

// Tenant is one routable entry: the workload that backs the URL name and
// the isolation configuration its instances run under.
type Tenant struct {
	Workload workloads.Tenant
	Iso      faas.Config
}

// Front is the HTTP serving layer over one host.Server.
type Front struct {
	host     *host.Server
	reg      map[string]Tenant
	seqs     sync.Map // tenant name → *atomic.Uint64 request sequence
	draining atomic.Bool
	started  time.Time

	// MaxBody bounds an invoke request body (bytes). Defaults to 1 MiB.
	MaxBody int64

	// Shard names this front in its StatszV1 and error envelopes — set by
	// the cluster tier so a relayed envelope says which backend produced
	// the verdict. Empty for a standalone server.
	Shard string
}

// New builds a front over srv routing the registered tenants.
func New(srv *host.Server, reg map[string]Tenant) *Front {
	return &Front{host: srv, reg: reg, started: time.Now(), MaxBody: 1 << 20}
}

// Host returns the underlying server (the drain path closes it directly).
func (f *Front) Host() *host.Server { return f.host }

// BeginDrain flips /healthz to 503 so load balancers stop routing here.
// In-flight and queued work is unaffected; the caller follows with
// host.Server.Close (drains the queues) and http.Server.Shutdown.
func (f *Front) BeginDrain() { f.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (f *Front) Draining() bool { return f.draining.Load() }

// Handler returns the route mux.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/invoke", f.invoke)
	mux.HandleFunc("GET /healthz", f.healthz)
	mux.HandleFunc("GET /statsz", f.statsz)
	mux.HandleFunc("POST /drainz", f.drainz)
	return mux
}

// StatusCode is the documented host.Status → HTTP mapping:
//
//	StatusOK       200    body is the guest response
//	StatusShed     429    backpressure (queue full or breaker open); Retry-After set
//	StatusRejected 422    program failed static verification — retrying cannot help
//	StatusTimeout  504    fuel budget exhausted mid-run
//	StatusFault    502    guest faulted
//	StatusClosed   503    server draining; Retry-After set
//	StatusCanceled 499    client went away first
func StatusCode(st host.Status) int {
	switch st {
	case host.StatusOK:
		return http.StatusOK
	case host.StatusShed:
		return http.StatusTooManyRequests
	case host.StatusRejected:
		return http.StatusUnprocessableEntity
	case host.StatusTimeout:
		return http.StatusGatewayTimeout
	case host.StatusFault:
		return http.StatusBadGateway
	case host.StatusClosed:
		return http.StatusServiceUnavailable
	case host.StatusCanceled:
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// OutcomeForCode inverts StatusCode for HTTP-driving load generators:
// which outcome class an observed response code counts toward. The bool
// is false for codes outside the mapping (transport errors, 404s).
func OutcomeForCode(code int) (stats.Outcome, bool) {
	switch code {
	case http.StatusOK:
		return stats.OutcomeOK, true
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return stats.OutcomeShed, true
	case http.StatusUnprocessableEntity:
		return stats.OutcomeRejected, true
	case http.StatusGatewayTimeout:
		return stats.OutcomeTimeout, true
	case http.StatusBadGateway:
		return stats.OutcomeFault, true
	case StatusClientClosedRequest:
		return stats.OutcomeCanceled, true
	default:
		return 0, false
	}
}

func (f *Front) invoke(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	reqID := r.Header.Get(RequestIDHeader)
	te, ok := f.reg[name]
	if !ok {
		f.writeEnvelope(w, http.StatusNotFound, ErrorEnvelope{Outcome: "unknown_tenant",
			RequestID: reqID, Error: fmt.Sprintf("no tenant %q registered", name)})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, f.MaxBody+1))
	if err != nil {
		f.writeEnvelope(w, http.StatusBadRequest, ErrorEnvelope{Outcome: "bad_request",
			RequestID: reqID, Error: err.Error()})
		return
	}
	if int64(len(body)) > f.MaxBody {
		f.writeEnvelope(w, http.StatusRequestEntityTooLarge, ErrorEnvelope{Outcome: "body_too_large",
			RequestID: reqID, Error: fmt.Sprintf("body exceeds %d bytes", f.MaxBody)})
		return
	}
	seq := f.nextSeq(name)
	if reqID == "" {
		// Synthesize the deterministic identity the host already keys
		// chaos and response hashing on, so the echo is never empty.
		reqID = fmt.Sprintf("%s-%d", name, seq)
	}
	opts := []host.RequestOpt{host.WithWorkload(te.Workload), host.WithIso(te.Iso)}
	if len(body) > 0 {
		opts = append(opts, host.WithBody(body))
	}
	resp := f.host.Do(r.Context(), host.NewRequest(name, seq, opts...))
	f.writeResponse(w, resp, reqID)
}

// nextSeq hands out the tenant's next request sequence number — the
// deterministic request identity chaos injection and response hashing
// key on.
func (f *Front) nextSeq(name string) uint64 {
	v, _ := f.seqs.LoadOrStore(name, new(atomic.Uint64))
	return v.(*atomic.Uint64).Add(1) - 1
}

func (f *Front) writeResponse(w http.ResponseWriter, resp host.Response, reqID string) {
	code := StatusCode(resp.Status)
	if code == http.StatusOK {
		w.Header().Set(RequestIDHeader, reqID)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(resp.Body)
		return
	}
	eb := ErrorEnvelope{Outcome: statusOutcome(resp.Status), RequestID: reqID, Shard: f.Shard}
	if resp.Err != nil {
		eb.Error = resp.Err.Error()
		if errors.Is(resp.Err, host.ErrBreakerOpen) {
			eb.Cause = "breaker_open"
		}
	}
	f.writeEnvelope(w, code, eb)
}

// writeEnvelope serializes one ErrorEnvelope, stamping the documented
// retry hint both as the legacy Retry-After header (seconds, for generic
// clients) and as retry_after_ms in the body (for typed ones), and echoing
// the request id as a header so hedging dedup works without parsing JSON.
func (f *Front) writeEnvelope(w http.ResponseWriter, code int, eb ErrorEnvelope) {
	if eb.Shard == "" {
		eb.Shard = f.Shard
	}
	eb.RetryAfterMS = RetryAfterMS(code)
	if eb.RetryAfterMS > 0 {
		// Backpressure is transient by construction — a breaker half-opens,
		// a queue drains — so tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", eb.RetryAfterMS/1000))
	}
	w.Header().Set(RequestIDHeader, eb.RequestID)
	writeJSON(w, code, eb)
}

func (f *Front) healthz(w http.ResponseWriter, r *http.Request) {
	if f.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatszDoc builds the shard-role StatszV1 this front serves on /statsz.
func (f *Front) StatszDoc() StatszV1 {
	up := time.Since(f.started)
	serve := f.host.Snapshot(up)
	counters := f.host.Counters()
	return StatszV1{
		SchemaVersion: StatszSchemaVersion,
		Role:          RoleShard,
		Shard:         f.Shard,
		UptimeSeconds: up.Seconds(),
		Draining:      f.draining.Load(),
		Serve:         &serve,
		Tenants:       f.host.TenantSummaries(),
		Counters:      &counters,
		Breakers:      breakersV1(f.host.BreakerStates()),
		Chaos:         f.host.ChaosSummary(),
	}
}

func (f *Front) statsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.StatszDoc())
}

// drainz is the remote drain trigger: the router POSTs here when taking a
// shard out of rotation, instead of signalling the process. Idempotent —
// it only flips /healthz; queued and in-flight work still finishes with
// real outcomes (zero dropped requests is the drain contract).
func (f *Front) drainz(w http.ResponseWriter, r *http.Request) {
	f.BeginDrain()
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package experiments

import (
	"fmt"

	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// Fig2Row is one Sightglass kernel's emulation-accuracy result.
type Fig2Row struct {
	Kernel string
	// SimRatio is HFI/guard-pages runtime on the timing simulator;
	// EmuRatio the same on the emulation engine. Accuracy is
	// EmuRatio/SimRatio — the paper reports 98%-108% with geomean
	// difference 1.62%.
	SimRatio float64
	EmuRatio float64
	Accuracy float64
}

// RunFig2 reproduces Fig 2: the cross-validation of the fast emulation
// engine against the cycle-level simulator on the Sightglass suite. scale
// shrinks kernels for quick runs (1 = full size used in reports).
func RunFig2(scale int) ([]Fig2Row, *stats.Table, error) {
	var rows []Fig2Row
	accs := make([]float64, 0, 16)
	tb := &stats.Table{
		Title:   "Fig 2: accuracy of emulated HFI (Sightglass suite)",
		Columns: []string{"kernel", "sim HFI/guard", "emu HFI/guard", "emu/sim accuracy"},
	}
	for _, w := range workloads.Sightglass() {
		mod := func() *wasm.Module { return w.Build(scale) }

		simG, err := MeasureModule(mod(), sfi.GuardPages, wasm.Options{}, EngCore)
		if err != nil {
			return nil, nil, fmt.Errorf("fig2 %s: %w", w.Name, err)
		}
		simH, err := MeasureModule(mod(), sfi.HFI, wasm.Options{}, EngCore)
		if err != nil {
			return nil, nil, fmt.Errorf("fig2 %s: %w", w.Name, err)
		}
		emuG, err := MeasureModule(mod(), sfi.GuardPages, wasm.Options{}, EngInterp)
		if err != nil {
			return nil, nil, fmt.Errorf("fig2 %s: %w", w.Name, err)
		}
		emuH, err := MeasureModule(mod(), sfi.HFI, wasm.Options{}, EngInterp)
		if err != nil {
			return nil, nil, fmt.Errorf("fig2 %s: %w", w.Name, err)
		}
		if simH.Result != simG.Result || emuH.Result != simG.Result || emuG.Result != simG.Result {
			return nil, nil, fmt.Errorf("fig2 %s: results diverge across engines/schemes", w.Name)
		}
		r := Fig2Row{
			Kernel:   w.Name,
			SimRatio: simH.Ns / simG.Ns,
			EmuRatio: emuH.Ns / emuG.Ns,
		}
		r.Accuracy = r.EmuRatio / r.SimRatio
		rows = append(rows, r)
		accs = append(accs, r.Accuracy)
		tb.AddRow(w.Name,
			fmt.Sprintf("%.3f", r.SimRatio),
			fmt.Sprintf("%.3f", r.EmuRatio),
			fmt.Sprintf("%.1f%%", r.Accuracy*100))
	}
	geo := stats.GeoMean(accs)
	dev := geo - 1
	if dev < 0 {
		dev = -dev
	}
	tb.AddNote("accuracy range %.1f%%-%.1f%%, geomean difference %.2f%% (paper: 98%%-108%%, 1.62%%)",
		stats.Min(accs)*100, stats.Max(accs)*100, dev*100)
	return rows, tb, nil
}

// Package verifier statically proves that a compiled isa.Program cannot
// escape its sandbox under the isolation scheme it was compiled for — a
// VeriWasm-style check run after compilation instead of trusting the
// compiler (§4 of the paper: the security model assumes every sandbox
// memory access is mediated; this package discharges that assumption).
//
// Verification runs three passes:
//
//  1. structural well-formedness (isa.Program.Validate: opcodes,
//     register fields, sizes, branch targets, no fall-through off the end);
//  2. CFG construction per function, with indirect-branch targets
//     over-approximated by the address-taken set;
//  3. forward abstract interpretation over per-register intervals with
//     stack-symbol provenance (see domain.go), checking a scheme-specific
//     policy at every memory access, privileged instruction, and write to
//     a reserved register.
//
// The analysis is sound but incomplete: every admitted program is safe
// (its data accesses stay within the windows the runtime reserved for the
// sandbox, its control flow stays inside the program, and it executes no
// privileged instruction outside the per-scheme allowlist), while a
// rejected program is merely unprovable. internal/wasm runs the verifier
// as a post-compile gate, so the compiler's output is continuously proven
// rather than assumed; the mutation harness (internal/mutation) checks
// the other direction, that single-instruction corruptions of that
// output are caught.
package verifier

import (
	"fmt"
	"strings"

	"hfi/internal/isa"
	"hfi/internal/sfi"
)

// Config describes the sandbox geometry a program was compiled against:
// the address windows the runtime reserves and the trusted cells inside
// the global area. All proofs are relative to these numbers; the wasm
// compiler fills them from the same Layout the runtime maps.
type Config struct {
	Scheme sfi.Scheme

	// EntrySym is the program entry label (default "__start", falling
	// back to the first instruction). TrapSym is the shared trap tail
	// that out-of-line checks jump to (default "__trap"); it is the only
	// legal cross-function jump target.
	EntrySym string
	TrapSym  string

	// Heap geometry. Accesses to linear memory must provably land inside
	// [HeapBase, HeapBase+HeapReservation): the window the runtime
	// actually reserves for this scheme (sfi.Scheme.HeapReservation).
	HeapBase        uint64
	InitBytes       uint64
	MaxBytes        uint64
	MaxPages        uint64
	HeapReservation uint64

	// Stack geometry. StackGuard is the PROT_NONE region directly below
	// StackBase; verified frame accesses stay within StackGuard of the
	// frame's entry SP, so the deepest possible miss still faults in the
	// guard instead of escaping.
	StackBase  uint64
	StackTop   uint64
	StackGuard uint64

	// Global area. Stores are only admitted to the trusted cells below;
	// loads of known cells return their invariant values.
	GlobalBase   uint64
	GlobalSize   uint64
	CurPagesAddr uint64 // current-page-count cell; invariant [0, MaxPages]
	HeapBaseCell uint64 // cell holding HeapBase (0 = absent)
	StagingAddr  uint64 // HFI grow staging region_t (0 = absent)

	// NullPage admits the trap stub's deliberate null dereference: a
	// load at exactly address zero, inside [0, NullPage), which the
	// runtime never maps. Nothing else in low memory is admitted. 0
	// disables the window.
	NullPage uint64

	// ExtraMems describes additional linear memories (index 1..N-1).
	ExtraMems []ExtraMem

	// NumMems is 1 + len(ExtraMems); hld/hst region operands must be
	// below it. HeapRegionFlat is the flat HFI region number of the heap
	// explicit region (for hfi_get_region/hfi_set_region admission).
	NumMems        int
	HeapRegionFlat int

	// Syscall policy for the guard-page schemes: only mprotect, and only
	// over the heap reservation, is admitted (the grow path).
	MprotectNum uint64
	ProtRW      uint64

	// Hostcall gate policy. HostcallGateSym names the designated call
	// gate (conventionally "__hostcall"): the only instruction sequence
	// through which guest code may execute a hostcall, enterable only by
	// a direct call. Empty disables hostcalls entirely — any hostcall
	// instruction is then a privileged-op violation. NumHostcalls bounds
	// the registered table, and HostcallSigs (indexed by number) drives
	// the per-call-site marshalling proofs: pointer and length arguments
	// must provably be linear-memory offsets inside the sandbox heap.
	HostcallGateSym string
	NumHostcalls    uint64
	HostcallSigs    []HostcallSig
}

// HostcallArg classifies one hostcall argument register for the
// call-site proof.
type HostcallArg uint8

// Hostcall argument kinds. A HcArgLen directly following a HcArgPtr is
// that pointer's byte count; the pair must provably stay inside the heap.
const (
	HcArgNone HostcallArg = iota // unused slot
	HcArgVal                     // plain scalar, no proof obligation
	HcArgPtr                     // linear-memory offset of a buffer
	HcArgLen                     // byte count (of the preceding HcArgPtr)
)

// HostcallSig is the verifier-facing shape of one registered hostcall:
// its name (for diagnostics) and the kind of each argument register
// R1..R5.
type HostcallSig struct {
	Name string
	Args [5]HostcallArg
}

// ExtraMem is the geometry of one additional linear memory: its context
// record in the global area (base at +0, bound or mask at +8) and the
// window the runtime reserves for it.
type ExtraMem struct {
	CtxAddr     uint64
	Base        uint64
	Bytes       uint64
	Reservation uint64
	// BoundVal is the invariant value of the bound/mask cell at CtxAddr+8
	// (bytes for bounds-checking, bytes-1 for masking).
	BoundVal uint64
}

// Violation is one provable-safety failure, locatable in a disassembly.
type Violation struct {
	Rule   string // short rule identifier, e.g. "mem-window", "privileged-op"
	Index  int    // instruction index (-1: whole program)
	Addr   uint64 // instruction address
	Instr  string // disassembly of the instruction
	Detail string
}

func (v *Violation) Error() string {
	if v.Index < 0 {
		return fmt.Sprintf("%s: %s", v.Rule, v.Detail)
	}
	return fmt.Sprintf("%s at instr %d (%#x: %s): %s", v.Rule, v.Index, v.Addr, v.Instr, v.Detail)
}

// RejectError is the typed verification failure: every violation found,
// most useful first. faas/host admission unwraps to it with errors.As.
type RejectError struct {
	Scheme     sfi.Scheme
	Violations []*Violation
}

func (e *RejectError) Error() string {
	if len(e.Violations) == 1 {
		return fmt.Sprintf("verifier(%v): %v", e.Scheme, e.Violations[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verifier(%v): %d violations:", e.Scheme, len(e.Violations))
	for i, v := range e.Violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(e.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %v", v)
	}
	return b.String()
}

// First returns the first violation (for CLI single-line reports).
func (e *RejectError) First() *Violation { return e.Violations[0] }

// Verify proves p safe under cfg, returning nil or a *RejectError.
func Verify(p *isa.Program, cfg Config) error {
	v := &verification{p: p, cfg: cfg}
	if err := p.Validate(); err != nil {
		ve := err.(*isa.ValidationError)
		v.violations = append(v.violations, &Violation{
			Rule: "structural", Index: ve.Index, Addr: ve.Addr, Instr: ve.Instr, Detail: ve.Reason,
		})
		return v.reject()
	}
	v.analyze()
	if len(v.violations) > 0 {
		return v.reject()
	}
	return nil
}

func (v *verification) reject() error {
	return &RejectError{Scheme: v.cfg.Scheme, Violations: v.violations}
}

// VerifyStructure runs only the geometry-free passes — structural
// well-formedness and CFG construction — for callers holding a raw
// program with no sandbox layout (e.g. hand-written assembly in
// cmd/hfiasm). It returns the CFG on success, or a *RejectError carrying
// the structural violation.
func VerifyStructure(p *isa.Program) (*CFG, error) {
	if err := p.Validate(); err != nil {
		ve := err.(*isa.ValidationError)
		return nil, &RejectError{Violations: []*Violation{{
			Rule: "structural", Index: ve.Index, Addr: ve.Addr, Instr: ve.Instr, Detail: ve.Reason,
		}}}
	}
	return BuildCFG(p), nil
}

// verification is the shared state of one Verify run.
type verification struct {
	p   *isa.Program
	cfg Config

	violations []*Violation
	seen       map[violationKey]bool

	fns       map[int]*fnAnalysis // keyed by entry instruction index
	fnWork    []int
	isLeader  []bool
	rootEntry int

	// gateIdx is the instruction index of the hostcall gate, or -1 when
	// the program has none (set by checkHostcallGate at analyze entry).
	gateIdx int

	// addrTaken marks the instruction indices in IndirectTargets(p): the
	// only targets an indirect branch may resolve to. Restricting resolved
	// targets to this set keeps the CFG's indirect successor edges a true
	// over-approximation of concrete control flow, which the dominator and
	// availability passes behind FactDominated rely on.
	addrTaken []bool

	// fc collects per-instruction observations when set (Analyze); nil
	// under plain Verify, keeping the gate path collection-free.
	fc *factsCollector
}

type violationKey struct {
	rule  string
	index int
}

func (v *verification) violate(idx int, rule, format string, args ...any) {
	if v.seen == nil {
		v.seen = make(map[violationKey]bool)
	}
	k := violationKey{rule, idx}
	if v.seen[k] {
		return
	}
	v.seen[k] = true
	viol := &Violation{Rule: rule, Index: idx, Detail: fmt.Sprintf(format, args...)}
	if idx >= 0 && idx < len(v.p.Instrs) {
		viol.Addr = v.p.Base + uint64(idx)*isa.InstrBytes
		viol.Instr = v.p.Instrs[idx].String()
	}
	v.violations = append(v.violations, viol)
}

// entryIndex resolves the program entry instruction index.
func (v *verification) entryIndex() int {
	sym := v.cfg.EntrySym
	if sym == "" {
		sym = "__start"
	}
	if a, ok := v.p.Symbols[sym]; ok {
		return int((a - v.p.Base) / isa.InstrBytes)
	}
	return 0
}

// index converts an in-range instruction address to its index.
func (v *verification) index(addr uint64) int {
	return int((addr - v.p.Base) / isa.InstrBytes)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// lintWire enforces the versioned wire API's closed-vocabulary contract
// (internal/httpfront/wire.go):
//
//   - statusOutcome covers every non-OK host.Status with a case returning
//     a string literal (literals, not Status.String(), so this check can
//     see the table), and the literal is exactly the lowercased status
//     name — which keeps the envelope vocabulary joined to stats.Outcome's
//     serialized names. "closed" is the one permitted exception: a drained
//     server refuses before outcome accounting begins, so it has no
//     stats.Outcome counterpart and must never grow one.
//   - Every statusOutcome return lands inside EnvelopeOutcomes, and the
//     vocabulary itself holds no duplicates.
//   - Every ErrorEnvelope{Outcome: ...} composite literal in the serving
//     tiers (internal/httpfront, internal/cluster) uses a string literal
//     from EnvelopeOutcomes — nothing outside the closed set reaches the
//     wire, and nothing unverifiable (a variable) does either.
func lintWire(root string, hostFiles []*ast.File, front filesWithFset, cluster filesWithFset, statsFiles []*ast.File) []Issue {
	var issues []Issue

	statuses := collectEnumNames(hostFiles, "Status")
	if len(statuses) == 0 {
		return []Issue{{"internal/host/host.go", "Status enum not found; the wire lint cannot prove outcome coverage"}}
	}
	outcomeNames := collectStringArray(statsFiles, "outcomeNames")
	if len(outcomeNames) == 0 {
		return []Issue{{"internal/stats/recorder.go", "outcomeNames not found; the wire lint cannot join the envelope vocabulary"}}
	}
	statsSet := map[string]bool{}
	for _, n := range outcomeNames {
		statsSet[n] = true
	}

	vocab := collectStringArray(front.files, "EnvelopeOutcomes")
	if len(vocab) == 0 {
		return []Issue{{"internal/httpfront/wire.go", "EnvelopeOutcomes not found; the envelope vocabulary is unprovable"}}
	}
	vocabSet := map[string]bool{}
	for _, o := range vocab {
		if vocabSet[o] {
			issues = append(issues, Issue{"internal/httpfront/wire.go",
				fmt.Sprintf("EnvelopeOutcomes lists %q twice", o)})
		}
		vocabSet[o] = true
	}

	covered, soIssues := lintStatusOutcome(front, statuses, vocabSet, statsSet)
	issues = append(issues, soIssues...)
	for _, st := range statuses {
		if st == "StatusOK" {
			continue
		}
		if !covered[st] {
			issues = append(issues, Issue{"internal/httpfront/wire.go",
				fmt.Sprintf("statusOutcome has no case for host.%s; every non-OK status needs an envelope outcome", st)})
		}
	}

	for _, pkg := range []filesWithFset{front, cluster} {
		issues = append(issues, lintEnvelopeLiterals(pkg, vocabSet)...)
	}
	return issues
}

// filesWithFset pairs a parsed package with its position table.
type filesWithFset struct {
	files []*ast.File
	fset  *token.FileSet
}

// lintStatusOutcome walks the statusOutcome switch: every case on a
// host.StatusX selector must return a string literal equal to the
// lowercased status name, present in EnvelopeOutcomes, and — except for
// "closed" — present in stats' outcomeNames.
func lintStatusOutcome(front filesWithFset, statuses []string, vocab, statsSet map[string]bool) (map[string]bool, []Issue) {
	covered := map[string]bool{}
	var issues []Issue
	fn := findFunc(front.files, "statusOutcome")
	if fn == nil {
		return covered, []Issue{{"internal/httpfront/wire.go", "statusOutcome not found; the status→envelope table is unprovable"}}
	}
	checkLiteral(front.fset, fn, func(caseName, lit, pos string) {
		if caseName != "" {
			covered[caseName] = true
			want := strings.ToLower(strings.TrimPrefix(caseName, "Status"))
			if lit != want {
				issues = append(issues, Issue{pos,
					fmt.Sprintf("statusOutcome maps host.%s to %q; the envelope outcome must be the status name %q", caseName, lit, want)})
			}
		}
		if !vocab[lit] {
			issues = append(issues, Issue{pos,
				fmt.Sprintf("statusOutcome returns %q, which is not in EnvelopeOutcomes", lit)})
		}
		if lit != "closed" && !statsSet[lit] {
			issues = append(issues, Issue{pos,
				fmt.Sprintf("envelope outcome %q has no stats.Outcome counterpart (only \"closed\" may)", lit)})
		}
	}, func(pos string) {
		issues = append(issues, Issue{pos,
			"statusOutcome returns a non-literal; the closed-vocabulary check needs string literals"})
	})
	if statsSet["closed"] {
		issues = append(issues, Issue{"internal/stats/recorder.go",
			`outcomeNames now contains "closed"; drop the envelope special case in statusOutcome`})
	}
	return covered, issues
}

// checkLiteral visits each case clause of the (single) switch inside fn,
// calling onLit(caseStatusName, literal, pos) for literal string returns
// (caseStatusName "" for the default arm) and onBad for anything else.
func checkLiteral(fset *token.FileSet, fn *ast.FuncDecl, onLit func(string, string, string), onBad func(string)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			var names []string
			for _, e := range cc.List {
				if sel, ok := e.(*ast.SelectorExpr); ok {
					names = append(names, sel.Sel.Name)
				}
			}
			if cc.List == nil {
				names = []string{""} // default arm
			}
			for _, body := range cc.Body {
				ret, ok := body.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					continue
				}
				pos := posOf(fset, ret.Pos())
				lit, ok := ret.Results[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					onBad(pos)
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					onBad(pos)
					continue
				}
				for _, name := range names {
					onLit(name, s, pos)
				}
			}
		}
		return false
	})
}

// lintEnvelopeLiterals flags every ErrorEnvelope composite literal whose
// Outcome is not a string literal inside the closed vocabulary.
func lintEnvelopeLiterals(pkg filesWithFset, vocab map[string]bool) []Issue {
	var issues []Issue
	for _, f := range pkg.files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isTypeNamed(cl.Type, "ErrorEnvelope") {
				return true
			}
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				k, ok := kv.Key.(*ast.Ident)
				if !ok || k.Name != "Outcome" {
					continue
				}
				pos := posOf(pkg.fset, kv.Value.Pos())
				lit, ok := kv.Value.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					// Envelope construction from parts (the client's decode
					// path) is fine; only literal outcomes are minted here.
					if _, isIdent := kv.Value.(*ast.Ident); isIdent {
						continue
					}
					if _, isCall := kv.Value.(*ast.CallExpr); isCall {
						continue
					}
					issues = append(issues, Issue{pos, "ErrorEnvelope.Outcome is not a string literal, identifier, or call; the vocabulary check cannot see it"})
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !vocab[s] {
					issues = append(issues, Issue{pos,
						fmt.Sprintf("ErrorEnvelope.Outcome %s is outside the closed EnvelopeOutcomes vocabulary", lit.Value)})
				}
			}
			return true
		})
	}
	return issues
}

// isTypeNamed matches both `ErrorEnvelope{...}` and
// `httpfront.ErrorEnvelope{...}` composite literal types.
func isTypeNamed(t ast.Expr, name string) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name == name
	case *ast.SelectorExpr:
		return t.Sel.Name == name
	}
	return false
}

// findFunc returns the top-level function declaration named name.
func findFunc(files []*ast.File, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// collectEnumNames extracts the constant names of the iota enum typed
// typeName (declaration order, skipping sentinels and blanks).
func collectEnumNames(files []*ast.File, typeName string) []string {
	var out []string
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST || len(gd.Specs) == 0 {
				continue
			}
			vs, ok := gd.Specs[0].(*ast.ValueSpec)
			if !ok {
				continue
			}
			id, ok := vs.Type.(*ast.Ident)
			if !ok || id.Name != typeName {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, nm := range vs.Names {
					if nm.Name == "_" || strings.HasPrefix(nm.Name, "num") {
						continue
					}
					out = append(out, nm.Name)
				}
			}
		}
	}
	return out
}

// collectStringArray extracts the string elements of the array/slice
// literal bound to varName.
func collectStringArray(files []*ast.File, varName string) []string {
	var out []string
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if nm.Name != varName || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, el := range cl.Elts {
						if lit, ok := el.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								out = append(out, s)
							}
						}
					}
				}
			}
		}
	}
	return out
}

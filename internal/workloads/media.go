package workloads

import (
	"hfi/internal/isa"
	"hfi/internal/wasm"
)

// JPEGDecoder builds the libjpeg-like scanline decoder of the Firefox
// experiment (§6.2, Fig 4). Each invocation of run(row, width, quality)
// entropy-decodes and inverse-transforms one scanline: the Firefox
// integration calls it once per row, which is what makes transition cost
// visible (≈ rows × 2 enters/exits per image).
//
// The quality parameter scales the per-pixel entropy-decoding work: more
// compressed images spend more cycles per output pixel, matching the
// paper's observation that compute-dense images benefit more from HFI's
// reduced register pressure.
func JPEGDecoder() *wasm.Module {
	m := wasm.NewModule("libjpeg", 64, 64) // 4 MiB linear memory
	f := m.Func("run", 3)
	row, width, quality := f.Param(0), f.Param(1), f.Param(2)
	x, k, bits, state := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	c0, c1 := f.NewReg(), f.NewReg()
	out, acc := f.NewReg(), f.NewReg()
	// The entropy decoder carries extra live state (bit buffer, Huffman
	// table cursors) the way libjpeg's does; under a scheme that reserves
	// registers the coldest of it spills, which is why compute-dense
	// (heavily compressed) images benefit most from HFI (§6.2).
	pp := addPads(f, 3)
	// Output plane at 1 MiB; coefficient input at 0.
	f.MovImm(acc, 0)
	f.Mul32(out, row, width)
	f.MovImm(x, 0)
	f.Label("pixel")
	// Entropy-decode: quality rounds of bit-twiddling per pixel.
	f.Add32(state, x, row)
	f.Mul32Imm(state, state, 2654435761)
	f.MovImm(k, 0)
	f.Label("entropy")
	f.Shl32Imm(bits, state, 7)
	f.Xor32(state, state, bits)
	f.Shr32Imm(bits, state, 9)
	f.Xor32(state, state, bits)
	pp.touchGated(f, state, 0x7)
	f.Add32Imm(k, k, 1)
	f.Br(isa.CondLT, k, quality, "entropy")
	// Butterfly (IDCT flavour) over neighbouring coefficients; bits is
	// dead after the entropy loop and serves as the address temporary.
	f.And32Imm(bits, x, 0xffff)
	f.Shl32Imm(bits, bits, 2)
	f.Load(4, c0, bits, 0)
	f.Load(4, c1, bits, 4)
	f.Add32(c0, c0, state)
	f.Xor32(c0, c0, c1)
	// Clamp to a byte and store the pixel.
	f.And32Imm(c0, c0, 0xff)
	f.Add32(bits, out, x)
	f.And32Imm(bits, bits, 0xfffff) // stay in the 1 MiB output plane
	f.Store(1, bits, 1<<20, c0)
	f.Add32(acc, acc, c0)
	f.Add32Imm(x, x, 1)
	f.Br(isa.CondLT, x, width, "pixel")
	pp.fold(f, acc)
	f.Ret(acc)
	return m
}

// FontShaper builds the libgraphite-like text shaper of §6.2: run(len,
// fontSize) lays out len glyphs with kerning-table lookups and ligature
// checks, returning the advance width. The Firefox font benchmark reflows
// the same text at ten font sizes.
func FontShaper() *wasm.Module {
	m := wasm.NewModule("libgraphite", 16, 16)
	// Kerning table: 64x64 i8 pairs at 0; glyph widths at 4096.
	kern := make([]byte, 64*64)
	for i := range kern {
		kern[i] = byte((i*7 + 3) % 16)
	}
	m.AddData(0, kern)
	widths := make([]byte, 256)
	for i := range widths {
		widths[i] = byte(4 + i%12)
	}
	m.AddData(4096, widths)
	// Text at 8192.
	text := make([]byte, 4096)
	for i := range text {
		text[i] = byte((i*31 + 11) % 64)
	}
	m.AddData(8192, text)

	f := m.Func("run", 2)
	length, size := f.Param(0), f.Param(1)
	i, g, prev, adv, k, w, pos := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	// Shaping state a real engine keeps live: cluster and feature
	// cursors (see pressure.go for why this matters per scheme).
	pp := addPads(f, 5)
	f.MovImm(adv, 0)
	f.MovImm(prev, 0)
	f.MovImm(i, 0)
	f.Label("glyph")
	f.And32Imm(pos, i, 0xfff)
	f.Load(1, g, pos, 8192)
	// Width scaled by font size.
	f.Load(1, w, g, 4096)
	f.Mul32(w, w, size)
	// Kerning between prev and g.
	f.Shl32Imm(k, prev, 6)
	f.Add32(k, k, g)
	f.Load(1, k, k, 0)
	f.Add32(adv, adv, w)
	f.Sub32(adv, adv, k)
	// Ligature check: combining pairs take a branchy slow path.
	f.Xor32(k, prev, g)
	f.And32Imm(k, k, 7)
	f.BrImm(isa.CondNE, k, 3, "nolig")
	f.Mul32Imm(w, w, 3)
	f.Shr32Imm(w, w, 2)
	f.Add32(adv, adv, w)
	f.Label("nolig")
	pp.touchGated(f, i, 0xf)
	f.Mov(prev, g)
	f.Add32Imm(i, i, 1)
	f.Br(isa.CondLT, i, length, "glyph")
	pp.fold(f, adv)
	f.Ret(adv)
	return m
}

#!/bin/sh
# verify.sh — the repository's full verification gate: build everything,
# vet, then run the test suite under the race detector. The race pass
# matters because internal/host serves mixed-tenant load across worker
# goroutines; tier-1 CI (plain `go test ./...`) would not catch a data race
# on the simulator state.
#
# The race pass runs with -short: that skips only the single-threaded macro
# experiments (Fig 2/3/4, SPEC sweeps), which are ~16x slower under the
# race detector and have no concurrency to check, while every concurrent
# code path — internal/host including its 1000-request mixed-tenant stress
# test, faas, sandbox, stats — runs in full. For the unabridged version:
# `go test -race -timeout 45m ./...`.
#
# Then the chaos soak runs once more, uncached (-count=1): the seeded
# fault-injection acceptance test for the serving layer — deterministic
# outcome counts across two same-seed runs, exact conservation
# (admitted == ok+timeout+fault+shed+rejected), per-tenant progress under
# a hot-tenant flood, bounded warm pools (`make soak` runs just this).
#
# Then the fast load gate: two short deterministic open-loop sweeps
# (built-in Poisson generator) whose p99 must stay within tolerance of a
# checked-in baseline at every point, with exact outcome conservation —
# single-host (hfiserve -mode sweep) and the cluster tier (hfirouter
# -selfdrive: 3 real shard subprocesses behind the consistent-hash
# router, fleet-wide conservation per point). `make loadtest` runs just
# this; the race pass above already covers the cluster chaos soak
# (shard SIGKILL + router↔shard partitions) via ./internal/cluster.
#
# After the tests, the static-verifier gate: hfiverify proves every corpus
# program safe under every scheme (the corpus includes the hostcall guests,
# whose gate and marshalling proofs get an explicit labeled sweep of their
# own), then re-runs the corpus through the fact-producing analyzer with
# the independent AuditFacts re-derivation (-facts), then runs the fast
# mutation bench — instruction operators plus the fact-corruption
# operators — which fails on any verified-then-escaped mutant or a static
# kill rate below 95% (full bench: `go run ./cmd/hfiverify -mutate -full`).
#
# hfilint runs right after vet: the custom checks (negated-errno returns in
# the hostcall handlers, the closed verifier rule vocabulary) that plain
# vet cannot express. A dedicated uncached -race pass over the verifier and
# mutation packages closes the loop on the analysis code itself.
#
# Usage: scripts/verify.sh  (or `make verify`)
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== hfilint: repository-specific static checks"
go run ./cmd/hfilint
echo "== go test -race -short ./..."
go test -race -short -timeout 15m ./...
echo "== chaos soaks: serving + substrate (seeded, race-detected)"
go test -race -short -count=1 -run 'TestChaosSoak' ./internal/host
echo "== loadtest: open-loop p99 gate vs baseline (fast)"
sh scripts/loadtest.sh >/dev/null
echo "== hfiverify: corpus under all schemes"
go run ./cmd/hfiverify
echo "== hfiverify -class hostcall: gate + marshalling proofs on the boundary guests"
go run ./cmd/hfiverify -class hostcall
echo "== hfiverify -facts: analyzer facts + independent audit over the corpus"
go run ./cmd/hfiverify -facts >/dev/null
echo "corpus facts audited"
echo "== go test -race -count=1 (uncached): verifier + mutation"
go test -race -short -count=1 ./internal/verifier ./internal/mutation ./internal/lint
echo "== hfiverify -mutate: verifier soundness bench (fast, incl. fact-corruption operators)"
go run ./cmd/hfiverify -mutate
echo "verify: all green"

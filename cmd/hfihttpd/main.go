// Command hfihttpd serves the multi-tenant sandbox host (internal/host)
// over HTTP via internal/httpfront: per-tenant invoke routes, drain-aware
// health, and JSON stats — the front door real load generators (vegeta,
// hey, wrk) point at.
//
// Usage:
//
//	hfihttpd -addr :8080                 # serve the default tenant registry
//	hfihttpd -policy shed -queue 16      # real 429s under overload
//	hfihttpd -fuel-per-second 5e7        # client deadlines shrink fuel budgets
//	hfihttpd -selfdrive                  # built-in open-loop HTTP sweep, then exit
//	hfihttpd -selfdrive -rates 200,800 -requests 200 -json
//
// Routes:
//
//	POST /v1/tenants/{tenant}/invoke     # body = guest input (empty ⇒ synthetic)
//	GET  /healthz                        # 200, or 503 once draining
//	GET  /statsz                         # serve summary + per-tenant + counters
//
// On SIGINT/SIGTERM the server drains: /healthz flips to 503 (load
// balancers stop routing), queued and in-flight requests finish with real
// outcomes, then the listener shuts down. Requests arriving after the
// host closes get 503 + Retry-After.
//
// -selfdrive binds a loopback listener and drives it with the same
// open-loop Poisson generator as `hfiserve -mode sweep`, but over real
// HTTP — wire cost, status mapping, and client disconnects included; one
// fresh server per offered rate. The table (and -json document) is the
// p99-vs-rate hockey stick.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hfi/internal/cluster"
	"hfi/internal/host"
	"hfi/internal/httpfront"
	"hfi/internal/stats"
)

func main() {
	// Shard role: when a router spawned this process, serve as its
	// backend (the spec rides the environment) instead of parsing flags.
	if cluster.IsShardProc() {
		os.Exit(cluster.ShardMain())
	}
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth per tenant (0 = 2x workers)")
		policy    = flag.String("policy", "shed", "backpressure policy: block | shed (shed ⇒ real 429s)")
		fuel      = flag.Uint64("fuel", 0, "per-request instruction budget (0 = unlimited)")
		fuelPerS  = flag.Float64("fuel-per-second", 0, "deadline→fuel conversion (instructions per second of client deadline; 0 = off)")
		dispatch  = flag.Duration("dispatch", 0, "wall-clock per-request dispatch overhead (selfdrive/test realism)")
		seed      = flag.Int64("seed", 1, "request schedule seed (selfdrive)")
		drainWait = flag.Duration("drain-wait", 500*time.Millisecond, "pause after flipping /healthz before closing the host")
		selfdrive = flag.Bool("selfdrive", false, "run the open-loop HTTP sweep against an in-process listener and exit")
		rates     = flag.String("rates", "200,400,800,1200,1600,2400", "offered rates for -selfdrive, req/s")
		requests  = flag.Int("requests", 200, "requests per rate in -selfdrive")
		jsonOut   = flag.Bool("json", false, "emit the -selfdrive result as JSON")
	)
	flag.Parse()

	var pol host.Policy
	switch *policy {
	case "block":
		pol = host.PolicyBlock
	case "shed":
		pol = host.PolicyShed
	default:
		fmt.Fprintf(os.Stderr, "hfihttpd: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	cfg := host.Config{
		Workers: *workers, QueueDepth: *queue, Policy: pol,
		Fuel: *fuel, FuelPerSecond: uint64(*fuelPerS),
		DispatchWall: *dispatch,
		Retry:        host.RetryConfig{Max: 2},
		Seed:         *seed,
	}

	if *selfdrive {
		os.Exit(runSelfdrive(cfg, *rates, *requests, *seed, *jsonOut))
	}
	os.Exit(serve(cfg, *addr, *drainWait))
}

// registry is the shared default tenant set (see
// httpfront.DefaultRegistry): the DefaultMix classes plus the hostcall
// guests under one seeded world, and the "faulty" trap tenant.
func registry() map[string]httpfront.Tenant { return httpfront.DefaultRegistry(1) }

// serve runs the front until SIGINT/SIGTERM, then drains: healthz → 503,
// wait for load balancers to notice, close the host (queued work finishes
// with real outcomes), shut the listener down.
func serve(cfg host.Config, addr string, drainWait time.Duration) int {
	front := httpfront.New(host.New(cfg), registry())
	hs := &http.Server{Addr: addr, Handler: front.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hfihttpd: serving on %s (%d workers, policy %s)\n",
		addr, front.Host().Workers(), cfg.Policy)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "hfihttpd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hfihttpd: draining (healthz → 503)")
	front.BeginDrain()
	time.Sleep(drainWait)
	front.Host().Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hfihttpd: shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "hfihttpd: drained")
	return 0
}

// selfdriveReport is the -selfdrive -json document.
type selfdriveReport struct {
	Seed    int64             `json:"seed"`
	Mode    string            `json:"mode"`
	Policy  string            `json:"policy"`
	Workers int               `json:"workers"`
	Points  []host.SweepPoint `json:"points"`
}

// runSelfdrive sweeps offered rates over real HTTP: one fresh server,
// front, and loopback listener per rate so queue state never bleeds
// between points.
func runSelfdrive(cfg host.Config, rateList string, perRate int, seed int64, jsonOut bool) int {
	var rates []float64
	for _, f := range strings.Split(rateList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			fmt.Fprintf(os.Stderr, "hfihttpd: bad rate %q\n", f)
			return 2
		}
		rates = append(rates, r)
	}
	sort.Float64s(rates)

	reg := registry()
	names := httpfront.RegistryNames(reg)

	rep := selfdriveReport{Seed: seed, Mode: "selfdrive", Policy: cfg.Policy.String()}
	for _, rate := range rates {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfihttpd:", err)
			return 1
		}
		front := httpfront.New(host.New(cfg), reg)
		rep.Workers = front.Host().Workers()
		hs := &http.Server{Handler: front.Handler()}
		go hs.Serve(ln)

		client := httpfront.NewClient("http://" + ln.Addr().String())
		pt, err := httpfront.RunOpenLoopHTTP(client, names, rate, perRate, seed)
		client.CloseIdle()

		front.Host().Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(shutCtx)
		cancel()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "hfihttpd: sweep @ %.0f req/s: %v\n", rate, err)
			return 1
		}
		rep.Points = append(rep.Points, pt)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "hfihttpd:", err)
			return 1
		}
		return 0
	}
	tb := &stats.Table{
		Title:   fmt.Sprintf("open-loop HTTP sweep, %d workers (%d requests/rate, policy %s)", rep.Workers, perRate, cfg.Policy),
		Columns: []string{"rate req/s", "achieved", "ok", "shed%", "p50", "p99", "p99.9"},
	}
	for _, pt := range rep.Points {
		tb.AddRow(
			fmt.Sprintf("%.0f", pt.RateRPS),
			fmt.Sprintf("%.0f", pt.AchievedRPS),
			strconv.FormatUint(pt.OK, 10),
			fmt.Sprintf("%.1f", pt.ShedRate*100),
			stats.Ns(pt.P50Ns), stats.Ns(pt.P99Ns), stats.Ns(pt.P999Ns),
		)
	}
	tb.AddNote("real HTTP over loopback: latencies include wire + front overhead")
	fmt.Println(tb)
	return 0
}

package verifier

import (
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sfi"
)

// This file promotes the verifier from a boolean gate into an analyzer:
// Analyze runs the same abstract interpretation Verify does, but keeps the
// proofs it discharges as a Facts artifact the interpreter can consume to
// elide dynamic checks (§4's check-hoisting argument: safety proven once
// should not be re-paid per access). Facts are conservative claims — every
// bit set is backed by the interval fixpoint plus the CFG dominator pass —
// and they are re-checkable: AuditFacts re-derives everything from scratch
// and rejects any claim that does not reproduce.

// Per-instruction fact bits.
const (
	// FactResident: a plain load/store whose effective address provably
	// lies inside one of Facts.Windows — an address range the runtime maps
	// read+write at instantiate time. Once the runtime re-validates the
	// window's pages against the live page table and HFI bank (gen-tagged),
	// the per-access page-decision lookup is redundant.
	FactResident uint8 = 1 << iota
	// FactDominated: an identical check (same base/index/scale/disp/size/
	// direction) provably executes on every path to this instruction with
	// no intervening redefinition of the address registers and no
	// state-changing instruction (call, syscall, hostcall, HFI config) in
	// between, and a concrete dominating site exists in the dominator tree.
	// The earlier check's outcome therefore equals this one's.
	FactDominated
	// FactHfiHeap: an hld/hst whose region operand and displacement the
	// verifier proved well-formed. The hardware bounds check (ExplicitEA)
	// still runs — it is the fault source — but the MMU lookup behind it is
	// redundant once the region's span is validated against the page table.
	FactHfiHeap
	// FactHostcall: a direct call to the hostcall gate whose number is a
	// proven singleton and whose pointer/length arguments are proven inside
	// the sandbox heap.
	FactHostcall
)

// Window is a half-open address range [Lo, Hi) the runtime is expected to
// have mapped read+write for the lifetime of the instance. Facts never
// assert the mapping — the interpreter re-validates a window's pages
// against the live address space and HFI bank before trusting any
// FactResident claim into it.
type Window struct{ Lo, Hi uint64 }

// MemFact carries the per-instruction proof detail behind the FactResident
// and FactDominated bits of one memory operation.
type MemFact struct {
	// EA is the joined proven interval of the access's first byte over
	// every abstract state reaching the instruction.
	EA   Interval
	Size uint8
	// Window indexes Facts.Windows for FactResident claims; -1 otherwise.
	Window int16
	// DomSite is the instruction index of a dominating identical check for
	// FactDominated claims; -1 otherwise.
	DomSite int32
}

// HostcallFact is the discharged call-site proof of one direct call to the
// hostcall gate.
type HostcallFact struct {
	Num uint64 // proven singleton hostcall number
	// BufEnd is the largest proven ptr+len end bound across the
	// signature's buffer pairs (0 when the signature has none); always
	// <= Config.MaxBytes.
	BufEnd uint64
}

// OpCounts is a scheme-neutral static cost summary of a basic block, by
// opcode class.
type OpCounts struct {
	ALU    int // moves, arithmetic, logic, fences
	MulDiv int
	Mem    int // loads and stores, plain and explicit-region
	Branch int // branches, jumps, calls, rets
	Other  int
}

// UniformRange is a maximal run of consecutive memory operations inside
// one block whose proven effective addresses all fall in one OS page: a
// tiered engine may hoist their page decision to the run head. From/To are
// instruction indices, half-open.
type UniformRange struct {
	From, To int
	Page     uint64
}

// BlockFact summarizes one basic block.
type BlockFact struct {
	Start, End int
	// NoSideExit: no instruction in the block can fault, trap, or halt —
	// control provably leaves only through the terminator's edges.
	NoSideExit bool
	Cost       OpCounts
	Uniform    []UniformRange
}

// Facts is the proof artifact Analyze emits alongside a successful
// verification. It is immutable once built and travels with the verified
// program through sandbox.CodeCache / faas.Images, so shared warm images
// carry their proofs.
type Facts struct {
	Scheme    sfi.Scheme
	Entry     int // entry instruction index (EntrySym)
	NumInstrs int
	// Bits holds the per-instruction fact bits; Mem is parallel and
	// meaningful only where a memory-fact bit is set.
	Bits      []uint8
	Mem       []MemFact
	Hostcalls map[int]HostcallFact
	Windows   []Window
	Blocks    []BlockFact

	// HeapOps counts linear-memory operations (plain accesses proven into
	// the heap or an extra memory, plus every hld/hst); Covered counts
	// those carrying an elidable fact (resident, HFI-heap, or dominated).
	HeapOps int
	Covered int
}

// FactsSummary is the CLI-facing rollup of one Facts artifact.
type FactsSummary struct {
	Resident, Dominated, HfiHeap, HostcallSites int
	MemOps, HeapOps, Covered                    int
}

// Summary counts facts by kind. MemOps counts every memory instruction;
// HeapOps/Covered are the elision-coverage numerator and denominator.
func (f *Facts) Summary() FactsSummary {
	var s FactsSummary
	for _, b := range f.Bits {
		if b&FactResident != 0 {
			s.Resident++
		}
		if b&FactDominated != 0 {
			s.Dominated++
		}
		if b&FactHfiHeap != 0 {
			s.HfiHeap++
		}
		if b&FactHostcall != 0 {
			s.HostcallSites++
		}
	}
	s.MemOps = f.memOpCount()
	s.HeapOps = f.HeapOps
	s.Covered = f.Covered
	return s
}

func (f *Facts) memOpCount() int {
	// NumInstrs is authoritative; count from Mem entries with a size.
	n := 0
	for i := range f.Mem {
		if f.Mem[i].Size != 0 {
			n++
		}
	}
	return n
}

// Clone deep-copies the artifact (the mutation harness corrupts copies).
func (f *Facts) Clone() *Facts {
	c := *f
	c.Bits = append([]uint8(nil), f.Bits...)
	c.Mem = append([]MemFact(nil), f.Mem...)
	c.Windows = append([]Window(nil), f.Windows...)
	c.Hostcalls = make(map[int]HostcallFact, len(f.Hostcalls))
	for k, v := range f.Hostcalls {
		c.Hostcalls[k] = v
	}
	c.Blocks = append([]BlockFact(nil), f.Blocks...)
	for i := range c.Blocks {
		c.Blocks[i].Uniform = append([]UniformRange(nil), f.Blocks[i].Uniform...)
	}
	return &c
}

// ---------------------------------------------------------------------------
// Production: observation collection during the abstract interpretation.

// factsCollector accumulates per-instruction observations across every
// abstract visit. Joining over all visits over-approximates the final
// fixpoint state, so the joined interval covers every concrete execution.
type factsCollector struct {
	mem  map[int]*memObs
	host map[int]*hostObs
}

type memObs struct {
	ea    Interval
	seen  bool // at least one interval-addressed visit
	frame bool // some visit resolved to a stack-frame (symbolic) address
	heap  bool // some visit landed in the heap or an extra linear memory
}

type hostObs struct {
	num      uint64
	set      bool
	conflict bool
	bufEnd   uint64
}

func newFactsCollector() *factsCollector {
	return &factsCollector{mem: map[int]*memObs{}, host: map[int]*hostObs{}}
}

func (fc *factsCollector) memAt(idx int) *memObs {
	o := fc.mem[idx]
	if o == nil {
		o = &memObs{}
		fc.mem[idx] = o
	}
	return o
}

// obsMem records one interval-addressed visit of a plain load/store.
func (v *verification) obsMem(idx int, ea Interval, heapish bool) {
	if v.fc == nil {
		return
	}
	o := v.fc.memAt(idx)
	if !o.seen {
		o.ea, o.seen = ea, true
	} else {
		o.ea = o.ea.Join(ea)
	}
	o.heap = o.heap || heapish
}

// obsFrame records a stack-frame visit: the address is symbolic, so the
// instruction can never carry an interval fact.
func (v *verification) obsFrame(idx int) {
	if v.fc == nil {
		return
	}
	v.fc.memAt(idx).frame = true
}

// obsHostcall records a discharged hostcall call-site proof.
func (v *verification) obsHostcall(idx int, num, bufEnd uint64) {
	if v.fc == nil {
		return
	}
	o := v.fc.host[idx]
	if o == nil {
		v.fc.host[idx] = &hostObs{num: num, set: true, bufEnd: bufEnd}
		return
	}
	if o.num != num {
		o.conflict = true
	}
	if bufEnd > o.bufEnd {
		o.bufEnd = bufEnd
	}
}

// ---------------------------------------------------------------------------
// Post-fixpoint derivation.

// residentWindows derives, from the geometry alone, the address ranges the
// runtime maps read+write at instantiate time: the committed prefix of the
// heap (the whole reservation for the schemes that commit it up front),
// the global area, and the committed prefix of each extra memory. The
// derivation is deliberately independent of the abstract interpretation so
// AuditFacts can recompute and compare it.
func residentWindows(cfg *Config) []Window {
	var ws []Window
	committed := func(initBytes, reservation uint64) uint64 {
		m := initBytes
		switch cfg.Scheme {
		case sfi.BoundsCheck, sfi.HFI:
			// These schemes map the whole reservation RW up front.
			m = reservation
		}
		if m > reservation {
			m = reservation
		}
		return m
	}
	if m := committed(cfg.InitBytes, cfg.HeapReservation); m > 0 {
		ws = append(ws, Window{cfg.HeapBase, cfg.HeapBase + m})
	}
	if cfg.GlobalSize > 0 {
		ws = append(ws, Window{cfg.GlobalBase, cfg.GlobalBase + cfg.GlobalSize})
	}
	for _, em := range cfg.ExtraMems {
		if m := committed(em.Bytes, em.Reservation); m > 0 {
			ws = append(ws, Window{em.Base, em.Base + m})
		}
	}
	return ws
}

// checkKey identifies a dynamic check: two memory operations with equal
// keys compute the same effective address from the same registers and make
// the same access, so with no intervening redefinition or state change
// their checks decide identically.
type checkKey struct {
	rs1, rs2 isa.Reg
	scale    uint8
	disp     int64
	size     uint8
	write    bool
	hfi      bool
	hreg     uint8
}

// memCheckKey returns the check key of a memory instruction.
func memCheckKey(in *isa.Instr) (checkKey, bool) {
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		return checkKey{rs1: in.Rs1, rs2: in.Rs2, scale: in.Scale, disp: in.Disp,
			size: in.Size, write: in.Op == isa.OpStore}, true
	case isa.OpHLoad, isa.OpHStore:
		return checkKey{rs1: isa.RegNone, rs2: in.Rs2, scale: in.Scale, disp: in.Disp,
			size: in.Size, write: in.Op == isa.OpHStore, hfi: true, hreg: in.HReg}, true
	}
	return checkKey{}, false
}

// instrEffect classifies one instruction for the availability transfer:
// the register it defines (RegNone if none) and whether it invalidates
// every outstanding check (control leaves the function, or machine state a
// check depends on — page tables, the HFI bank — may change).
func instrEffect(in *isa.Instr) (def isa.Reg, killAll bool) {
	switch in.Op {
	case isa.OpNop, isa.OpFence, isa.OpHalt,
		isa.OpStore, isa.OpHStore,
		isa.OpBr, isa.OpJmp, isa.OpJmpInd, isa.OpClflush:
		return isa.RegNone, false
	case isa.OpMovImm, isa.OpMov,
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpNot, isa.OpNeg,
		isa.OpLoad, isa.OpHLoad, isa.OpRdtsc:
		return in.Rd, false
	case isa.OpRet:
		// No fall-through; successors (none) make the kill moot.
		return isa.RegNone, false
	default:
		// Calls (callee havocs registers and may change state), syscalls
		// (mprotect moves the map generation), hostcalls (host runs), and
		// every HFI config instruction (bank generation moves). Anything
		// unrecognized is conservatively a barrier.
		return isa.RegNone, true
	}
}

// availability runs a forward available-checks dataflow over the CFG:
// bitsets of memory-op sites whose check provably executed on every path
// since the last kill. Intersection join; entry and indirect-target blocks
// start empty via their (possibly absent) predecessors.
type availability struct {
	p      *isa.Program
	g      *CFG
	sites  []int              // instruction indices of memory ops
	siteNo map[int]int        // instruction index -> dense site number
	keys   []checkKey         // per site
	byKey  map[checkKey][]int // site numbers sharing a key
	in     [][]uint64         // per block, bitset over sites
	words  int
	// kill[r] is the bitset of sites whose check key reads register r
	// (nil when no site does): a definition of r clears them with one
	// word-wise AND-NOT instead of a per-site scan.
	kill [isa.NumRegs][]uint64
}

func newAvailability(p *isa.Program, g *CFG) *availability {
	a := &availability{p: p, g: g, siteNo: map[int]int{}, byKey: map[checkKey][]int{}}
	for i := range p.Instrs {
		if k, ok := memCheckKey(&p.Instrs[i]); ok {
			a.siteNo[i] = len(a.sites)
			a.byKey[k] = append(a.byKey[k], len(a.sites))
			a.sites = append(a.sites, i)
			a.keys = append(a.keys, k)
		}
	}
	a.words = (len(a.sites) + 63) / 64
	for sn, k := range a.keys {
		for _, r := range [2]isa.Reg{k.rs1, k.rs2} {
			if r == isa.RegNone {
				continue
			}
			if a.kill[r] == nil {
				a.kill[r] = make([]uint64, a.words)
			}
			a.kill[r][sn/64] |= 1 << (sn % 64)
		}
	}
	a.in = make([][]uint64, len(g.Blocks))
	return a
}

func (a *availability) full() []uint64 {
	s := make([]uint64, a.words)
	for i := range s {
		s[i] = ^uint64(0)
	}
	return s
}

func (a *availability) set(s []uint64, bit int) { s[bit/64] |= 1 << (bit % 64) }
func (a *availability) has(s []uint64, bit int) bool {
	return s[bit/64]&(1<<(bit%64)) != 0
}

// transfer runs the block's availability transfer in place.
func (a *availability) transfer(b int, s []uint64) {
	blk := &a.g.Blocks[b]
	for idx := blk.Start; idx < blk.End; idx++ {
		in := &a.p.Instrs[idx]
		// The site becomes available first, then its own definition kills
		// it if the destination overlaps the address registers.
		if site, ok := a.siteNo[idx]; ok {
			a.set(s, site)
		}
		def, killAll := instrEffect(in)
		if killAll {
			for w := range s {
				s[w] = 0
			}
			continue
		}
		if def != isa.RegNone {
			if km := a.kill[def]; km != nil {
				for w := range s {
					s[w] &^= km[w]
				}
			}
		}
	}
}

// solve iterates to the greatest fixpoint.
func (a *availability) solve() {
	if len(a.g.Blocks) == 0 {
		return
	}
	preds := a.g.Preds()
	for b := range a.in {
		if len(preds[b]) == 0 {
			a.in[b] = make([]uint64, a.words)
		} else {
			a.in[b] = a.full()
		}
	}
	out := make([][]uint64, len(a.in))
	for b := range out {
		out[b] = make([]uint64, a.words)
		copy(out[b], a.in[b])
		a.transfer(b, out[b])
	}
	tmp := make([]uint64, a.words)
	for changed := true; changed; {
		changed = false
		for b := range a.in {
			ps := preds[b]
			if len(ps) == 0 {
				continue
			}
			copy(tmp, out[ps[0]])
			for _, p := range ps[1:] {
				for w := range tmp {
					tmp[w] &= out[p][w]
				}
			}
			same := true
			for w := range tmp {
				if tmp[w] != a.in[b][w] {
					same = false
					break
				}
			}
			if same {
				continue
			}
			copy(a.in[b], tmp)
			copy(out[b], tmp)
			a.transfer(b, out[b])
			changed = true
		}
	}
}

// dominatedAt walks block b replaying the transfer and reports, for each
// memory op, a same-key site available at that point (-1 if none). The
// returned map is keyed by instruction index.
func (a *availability) dominatedAt(b int) map[int]int {
	out := map[int]int{}
	s := make([]uint64, a.words)
	copy(s, a.in[b])
	blk := &a.g.Blocks[b]
	for idx := blk.Start; idx < blk.End; idx++ {
		in := &a.p.Instrs[idx]
		if site, ok := a.siteNo[idx]; ok {
			k := a.keys[site]
			dom := -1
			for _, sn := range a.byKey[k] {
				if sn != site && a.has(s, sn) {
					dom = a.sites[sn]
					break
				}
			}
			out[idx] = dom
			a.set(s, site)
		}
		def, killAll := instrEffect(in)
		if killAll {
			for w := range s {
				s[w] = 0
			}
			continue
		}
		if def != isa.RegNone {
			if km := a.kill[def]; km != nil {
				for w := range s {
					s[w] &^= km[w]
				}
			}
		}
	}
	return out
}

// buildFacts derives the Facts artifact after a violation-free analysis.
func (v *verification) buildFacts() *Facts {
	p := v.p
	g := BuildCFG(p)
	f := &Facts{
		Scheme:    v.cfg.Scheme,
		Entry:     v.entryIndex(),
		NumInstrs: len(p.Instrs),
		Bits:      make([]uint8, len(p.Instrs)),
		Mem:       make([]MemFact, len(p.Instrs)),
		Hostcalls: map[int]HostcallFact{},
		Windows:   residentWindows(&v.cfg),
	}
	for i := range f.Mem {
		f.Mem[i].Window, f.Mem[i].DomSite = -1, -1
	}

	// Resident facts from the joined observations.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.OpLoad, isa.OpStore:
			o := v.fc.mem[i]
			if o == nil || !o.seen || o.frame {
				continue
			}
			f.Mem[i].EA, f.Mem[i].Size = o.ea, in.Size
			if o.heap {
				f.HeapOps++
			}
			if end, ok := satAdd(o.ea.Hi, uint64(in.Size)); ok {
				for w, win := range f.Windows {
					if o.ea.Lo >= win.Lo && end <= win.Hi {
						f.Bits[i] |= FactResident
						f.Mem[i].Window = int16(w)
						break
					}
				}
			}
		case isa.OpHLoad, isa.OpHStore:
			// A verified program proved every hld/hst's region operand and
			// displacement; the hardware bounds check remains the fault
			// source, so the MMU lookup is the only elidable part.
			f.Bits[i] |= FactHfiHeap
			f.Mem[i].Size = in.Size
			f.HeapOps++
		}
	}

	// Hostcall call-site facts.
	for idx, o := range v.fc.host {
		if o.set && !o.conflict {
			f.Bits[idx] |= FactHostcall
			f.Hostcalls[idx] = HostcallFact{Num: o.num, BufEnd: o.bufEnd}
		}
	}

	// Dominated-check facts: availability fixpoint, then the dominator
	// pass filters each witness down to a site that actually dominates.
	av := newAvailability(p, g)
	av.solve()
	entryBlock := g.BlockOf(f.Entry)
	idom := g.Dominators(entryBlock)
	for b := range g.Blocks {
		for idx, domSite := range av.dominatedAt(b) {
			if domSite < 0 {
				continue
			}
			db, ib := g.BlockOf(domSite), b
			ok := false
			if db == ib {
				ok = domSite < idx
			} else {
				ok = Dominates(idom, db, ib)
			}
			if !ok {
				// Available on every path but no single dominating witness
				// (e.g. a diamond with the check in both arms): drop.
				continue
			}
			f.Bits[idx] |= FactDominated
			f.Mem[idx].DomSite = int32(domSite)
		}
	}

	// Block facts.
	f.Blocks = make([]BlockFact, len(g.Blocks))
	for b := range g.Blocks {
		f.Blocks[b] = v.blockFact(g, b, f)
	}

	// Coverage: heap ops carrying any elidable fact.
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case isa.OpLoad, isa.OpStore:
			o := v.fc.mem[i]
			if o == nil || !o.heap || o.frame {
				continue
			}
		case isa.OpHLoad, isa.OpHStore:
		default:
			continue
		}
		if f.Bits[i]&(FactResident|FactHfiHeap|FactDominated) != 0 {
			f.Covered++
		}
	}
	return f
}

// noSideExitOps is the opcode set that can neither fault nor stop the run.
func sideExitFree(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpMovImm, isa.OpMov,
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul,
		isa.OpNot, isa.OpNeg,
		isa.OpBr, isa.OpJmp, isa.OpFence:
		return true
	}
	return false
}

// blockFact summarizes one block: side-exit freedom, static cost counts,
// and maximal page-uniform runs of its memory operations.
func (v *verification) blockFact(g *CFG, b int, f *Facts) BlockFact {
	blk := &g.Blocks[b]
	bf := BlockFact{Start: blk.Start, End: blk.End, NoSideExit: true}
	const pageMask = ^uint64(kernel.OSPageSize - 1)
	runStart, runPage := -1, uint64(0)
	flush := func(end int) {
		if runStart >= 0 {
			bf.Uniform = append(bf.Uniform, UniformRange{From: runStart, To: end, Page: runPage})
			runStart = -1
		}
	}
	for idx := blk.Start; idx < blk.End; idx++ {
		in := &v.p.Instrs[idx]
		if !sideExitFree(in.Op) {
			bf.NoSideExit = false
		}
		switch in.Op {
		case isa.OpMul, isa.OpDiv, isa.OpRem:
			bf.Cost.MulDiv++
		case isa.OpLoad, isa.OpStore, isa.OpHLoad, isa.OpHStore:
			bf.Cost.Mem++
		case isa.OpBr, isa.OpJmp, isa.OpJmpInd, isa.OpCall, isa.OpCallInd, isa.OpRet:
			bf.Cost.Branch++
		case isa.OpNop, isa.OpMovImm, isa.OpMov,
			isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpSar, isa.OpNot, isa.OpNeg, isa.OpFence:
			bf.Cost.ALU++
		default:
			bf.Cost.Other++
		}
		switch in.Op {
		case isa.OpLoad, isa.OpStore:
			o := v.fc.mem[idx]
			page := uint64(0)
			single := false
			if o != nil && o.seen && !o.frame {
				if end, ok := satAdd(o.ea.Hi, uint64(in.Size)); ok && end > 0 {
					if o.ea.Lo&pageMask == (end-1)&pageMask {
						page, single = o.ea.Lo&pageMask, true
					}
				}
			}
			switch {
			case single && runStart >= 0 && page == runPage:
				// run continues
			case single:
				flush(idx)
				runStart, runPage = idx, page
			default:
				flush(idx)
			}
		case isa.OpHLoad, isa.OpHStore:
			// Region-relative address: page unknown statically.
			flush(idx)
		}
	}
	flush(blk.End)
	return bf
}

// ---------------------------------------------------------------------------
// Public API.

// Analyze proves p safe under cfg exactly like Verify, and on success also
// returns the Facts artifact backing the proof. On rejection the facts are
// nil and the error is the same *RejectError Verify returns.
func Analyze(p *isa.Program, cfg Config) (*Facts, error) {
	v := &verification{p: p, cfg: cfg, fc: newFactsCollector()}
	if err := p.Validate(); err != nil {
		ve := err.(*isa.ValidationError)
		v.violations = append(v.violations, &Violation{
			Rule: "structural", Index: ve.Index, Addr: ve.Addr, Instr: ve.Instr, Detail: ve.Reason,
		})
		return nil, v.reject()
	}
	v.analyze()
	if len(v.violations) > 0 {
		return nil, v.reject()
	}
	return v.buildFacts(), nil
}

// AuditFacts independently re-checks a claimed Facts artifact against p
// and cfg: a fresh abstract interpretation (no state shared with the
// producer) re-derives the facts, and every claim must be subsumed by the
// re-derivation — claimed bits a superset of nothing, intervals containing
// the fresh ones while fitting their windows, dominators actually
// dominating. Any discrepancy rejects with a fact-* rule. The runtime
// never has to trust a deserialized or cached artifact: auditing it costs
// one verification run.
func AuditFacts(p *isa.Program, cfg Config, claimed *Facts) error {
	fresh, err := Analyze(p, cfg)
	if err != nil {
		return err
	}
	a := &verification{p: p, cfg: cfg}
	if claimed == nil {
		a.violate(-1, "fact-shape", "no facts artifact to audit")
		return a.reject()
	}
	if claimed.NumInstrs != len(p.Instrs) ||
		len(claimed.Bits) != len(p.Instrs) || len(claimed.Mem) != len(p.Instrs) {
		a.violate(-1, "fact-shape", "artifact shape %d/%d/%d does not match the %d-instruction program",
			claimed.NumInstrs, len(claimed.Bits), len(claimed.Mem), len(p.Instrs))
		return a.reject()
	}
	if claimed.Scheme != cfg.Scheme {
		a.violate(-1, "fact-shape", "artifact scheme %v != config scheme %v", claimed.Scheme, cfg.Scheme)
	}
	if claimed.Entry != fresh.Entry {
		a.violate(-1, "fact-shape", "artifact entry %d != program entry %d", claimed.Entry, fresh.Entry)
	}
	// Windows must equal the geometry-derived set: a tampered window would
	// re-anchor every resident claim.
	if len(claimed.Windows) != len(fresh.Windows) {
		a.violate(-1, "fact-window", "artifact has %d windows, geometry derives %d",
			len(claimed.Windows), len(fresh.Windows))
	} else {
		for w := range claimed.Windows {
			if claimed.Windows[w] != fresh.Windows[w] {
				a.violate(-1, "fact-window", "window %d is [%#x,%#x), geometry derives [%#x,%#x)",
					w, claimed.Windows[w].Lo, claimed.Windows[w].Hi, fresh.Windows[w].Lo, fresh.Windows[w].Hi)
			}
		}
	}
	if len(a.violations) > 0 {
		return a.reject()
	}

	g := BuildCFG(p)
	idom := g.Dominators(g.BlockOf(fresh.Entry))
	for i := range p.Instrs {
		if extra := claimed.Bits[i] &^ fresh.Bits[i]; extra != 0 {
			a.violate(i, "fact-claim", "claimed fact bits %#x are not re-derivable (fresh %#x)",
				claimed.Bits[i], fresh.Bits[i])
			continue
		}
		cm, fm := &claimed.Mem[i], &fresh.Mem[i]
		if claimed.Bits[i]&FactResident != 0 {
			w := int(cm.Window)
			if w < 0 || w >= len(claimed.Windows) {
				a.violate(i, "fact-window", "resident claim names window %d of %d", w, len(claimed.Windows))
				continue
			}
			win := claimed.Windows[w]
			end, ok := satAdd(cm.EA.Hi, uint64(cm.Size))
			if cm.Size != fm.Size || !ok || cm.EA.Lo < win.Lo || end > win.Hi {
				a.violate(i, "fact-window", "claimed interval [%#x,%#x]+%d does not fit window [%#x,%#x)",
					cm.EA.Lo, cm.EA.Hi, cm.Size, win.Lo, win.Hi)
				continue
			}
			if fm.EA.Lo < cm.EA.Lo || fm.EA.Hi > cm.EA.Hi {
				a.violate(i, "fact-claim", "claimed interval [%#x,%#x] does not contain the proven [%#x,%#x]",
					cm.EA.Lo, cm.EA.Hi, fm.EA.Lo, fm.EA.Hi)
				continue
			}
		}
		if claimed.Bits[i]&FactDominated != 0 {
			ds := int(cm.DomSite)
			bad := func(why string) {
				a.violate(i, "fact-dominated", "claimed dominating site %d: %s", ds, why)
			}
			if ds < 0 || ds >= len(p.Instrs) || ds == i {
				bad("out of range")
				continue
			}
			ki, oki := memCheckKey(&p.Instrs[i])
			kd, okd := memCheckKey(&p.Instrs[ds])
			if !oki || !okd || ki != kd {
				bad("not an identical check")
				continue
			}
			db, ib := g.BlockOf(ds), g.BlockOf(i)
			if db == ib {
				if ds >= i {
					bad("follows the claimed dominated access in its block")
					continue
				}
			} else if !Dominates(idom, db, ib) {
				bad("its block does not dominate the access")
				continue
			}
		}
		if claimed.Bits[i]&FactHostcall != 0 {
			ch, okc := claimed.Hostcalls[i]
			fh := fresh.Hostcalls[i]
			if !okc {
				a.violate(i, "fact-hostcall", "hostcall bit set with no call-site record")
				continue
			}
			if ch.Num != fh.Num || ch.BufEnd < fh.BufEnd || ch.BufEnd > cfg.MaxBytes {
				a.violate(i, "fact-hostcall", "claimed number %d / buffer end %d disagrees with the proof (%d / %d, max %d)",
					ch.Num, ch.BufEnd, fh.Num, fh.BufEnd, cfg.MaxBytes)
			}
		}
	}

	// Block facts: structure and cost must reproduce; side-exit freedom
	// and uniform ranges must be subsumed by the fresh derivation.
	if len(claimed.Blocks) != len(fresh.Blocks) {
		a.violate(-1, "fact-block", "artifact has %d blocks, CFG derives %d", len(claimed.Blocks), len(fresh.Blocks))
	} else {
		for b := range claimed.Blocks {
			cb, fb := &claimed.Blocks[b], &fresh.Blocks[b]
			if cb.Start != fb.Start || cb.End != fb.End || cb.Cost != fb.Cost {
				a.violate(cb.Start, "fact-block", "block %d bounds/cost do not reproduce", b)
				continue
			}
			if cb.NoSideExit && !fb.NoSideExit {
				a.violate(cb.Start, "fact-block", "block %d claimed side-exit-free but contains faulting ops", b)
			}
			for _, cr := range cb.Uniform {
				ok := false
				for _, fr := range fb.Uniform {
					if fr.From <= cr.From && cr.To <= fr.To && fr.Page == cr.Page {
						ok = true
						break
					}
				}
				if !ok {
					a.violate(cr.From, "fact-block", "claimed page-uniform range [%d,%d) on page %#x not re-derivable",
						cr.From, cr.To, cr.Page)
				}
			}
		}
	}
	if len(a.violations) > 0 {
		return a.reject()
	}
	return nil
}

package hostcall

import "hfi/internal/kernel"

// KVQuota bounds one tenant's footprint in the shared store. Zero means
// unlimited (tests); the serving layer always sets both.
type KVQuota struct {
	MaxEntries int    // live keys per tenant
	MaxBytes   uint64 // sum of key+value bytes per tenant
}

// DefaultKVQuota is the serving-layer default: roomy enough for the
// stateful workloads, small enough that a runaway tenant hits the wall
// long before it distorts a neighbor's simulated timeline.
func DefaultKVQuota() KVQuota { return KVQuota{MaxEntries: 4096, MaxBytes: 4 << 20} }

type kvTenant struct {
	entries map[string][]byte
	bytes   uint64
}

// KV is the world-shared key-value store. Keys are namespaced by tenant:
// tenants share the store's machinery but can never observe — or evict —
// each other's data. All mutations enforce the per-tenant quota and
// report rejections so the serving layer can account them.
type KV struct {
	tenants map[string]*kvTenant
	quota   KVQuota
}

// NewKV returns an empty store enforcing q per tenant.
func NewKV(q KVQuota) *KV {
	return &KV{tenants: make(map[string]*kvTenant), quota: q}
}

func (kv *KV) tenant(name string) *kvTenant {
	t, ok := kv.tenants[name]
	if !ok {
		t = &kvTenant{entries: make(map[string][]byte)}
		kv.tenants[name] = t
	}
	return t
}

// Get copies up to len(dst) bytes of the value for key into dst,
// returning the FULL value length — callers compare it against their
// capacity to detect a truncated read — or a kernel errno (>0) when the
// key is absent.
func (kv *KV) Get(tenant string, key, dst []byte) (int, uint64) {
	t, ok := kv.tenants[tenant]
	if !ok {
		return 0, kernel.ENOENT
	}
	v, ok := t.entries[string(key)] // alloc-free map probe
	if !ok {
		return 0, kernel.ENOENT
	}
	copy(dst, v)
	return len(v), 0
}

// Put stores a copy of val under key, enforcing the tenant quota. A
// kernel.EDQUOT return means the write was refused with no side effect.
func (kv *KV) Put(tenant string, key, val []byte) uint64 {
	t := kv.tenant(tenant)
	need := uint64(len(key) + len(val))
	old, exists := t.entries[string(key)]
	freed := uint64(0)
	if exists {
		freed = uint64(len(key) + len(old))
	}
	q := kv.quota
	if q.MaxBytes > 0 && t.bytes-freed+need > q.MaxBytes {
		return kernel.EDQUOT
	}
	if q.MaxEntries > 0 && !exists && len(t.entries) >= q.MaxEntries {
		return kernel.EDQUOT
	}
	t.entries[string(key)] = append([]byte(nil), val...)
	t.bytes = t.bytes - freed + need
	return 0
}

// Delete removes key, returning kernel.ENOENT when it was absent.
func (kv *KV) Delete(tenant string, key []byte) uint64 {
	t, ok := kv.tenants[tenant]
	if !ok {
		return kernel.ENOENT
	}
	v, ok := t.entries[string(key)]
	if !ok {
		return kernel.ENOENT
	}
	delete(t.entries, string(key))
	t.bytes -= uint64(len(key) + len(v))
	return 0
}

// Len returns the tenant's live entry count (for tests and /statsz).
func (kv *KV) Len(tenant string) int {
	if t, ok := kv.tenants[tenant]; ok {
		return len(t.entries)
	}
	return 0
}

// Bytes returns the tenant's quota-charged byte footprint.
func (kv *KV) Bytes(tenant string) uint64 {
	if t, ok := kv.tenants[tenant]; ok {
		return t.bytes
	}
	return 0
}

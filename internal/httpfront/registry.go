package httpfront

import (
	"sort"

	"hfi/internal/faas"
	"hfi/internal/host"
	"hfi/internal/hostcall"
	"hfi/internal/sfi"
	"hfi/internal/workloads"
)

// DefaultRegistry builds the routable tenant set every serving tier
// (hfihttpd standalone, a cluster shard) exposes: the standard DefaultMix
// classes (each keeping its isolation configuration, so /v1/tenants/...
// names exercise the same (tenant, config) pool keying as the benchmarks)
// plus the hostcall guests — kv-session, stream-xform, fan-in-agg,
// hostcall-micro — under HFI with one shared world seeded by worldSeed,
// so KV state written by one tenant is visible to the others subject to
// per-tenant quotas. The "faulty" tenant traps on any non-empty body — the
// deterministic breaker-trip lever cluster hedging tests lean on.
func DefaultRegistry(worldSeed int64) map[string]Tenant {
	reg := make(map[string]Tenant)
	for _, c := range host.DefaultMix() {
		reg[c.Tenant.Name] = Tenant{Workload: c.Tenant, Iso: c.Iso}
	}
	iso := faas.Config{Name: "HFI", Scheme: sfi.HFI, World: hostcall.NewWorld(uint64(worldSeed))}
	for _, te := range workloads.HostcallTenants() {
		reg[te.Name] = Tenant{Workload: te, Iso: iso}
	}
	reg["faulty"] = Tenant{Workload: workloads.TrapTenant("faulty"), Iso: faas.StockLucet()}
	return reg
}

// RegistryNames returns reg's tenant names sorted — the stable round-robin
// order load generators draw from. The "faulty" trap tenant is excluded:
// sweeps and baselines measure the healthy serving path, and faults there
// are driven explicitly by tests.
func RegistryNames(reg map[string]Tenant) []string {
	names := make([]string, 0, len(reg))
	for name := range reg {
		if name == "faulty" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Package lint implements the repository's custom static checks — the
// invariants gofmt and go vet cannot see because they are contracts of
// this codebase, not of Go:
//
//   - Hostcall handlers return errnos negated (the kernel-style negative
//     return convention the guests decode). A handler that returns a raw
//     positive kernel.E* would read as a huge successful byte count on the
//     guest side, so any single-valued `return kernel.EXXX` in an Env
//     method is an error. The rule is scoped to the handler surface —
//     methods on Env — because the resource layer beneath it (the KV
//     store, checkIn/checkOut) documents positive errnos as its API and
//     relies on the dispatch layer to negate at the boundary.
//
//   - Every verifier rule string is registered. Violation rules are the
//     verifier's public vocabulary — admission stats, the CLI, and the
//     mutation bench key on them — so each violate() call site must pass a
//     string literal that appears in ruleRegistry, and every registry
//     entry must be used by at least one call site (a dead entry is a
//     misspelling waiting to happen). Uniqueness is by construction: the
//     registry is a map literal, and duplicate keys do not compile.
//
//   - The tiered engine bills only through the cost table. Cycle
//     exactness between the interpreter and the superinstruction engine
//     rests on both reading the same per-opcode CostModel.Table(); a
//     lowering that touched an individual CostModel field (cost.ALU,
//     cost.Branch, ...) could drift silently, so internal/tier may not
//     name those fields at all and must call Table() at least once.
//
//   - Every chaos.Fault class is fully wired: it has a String() name in
//     faultNames (operators select classes by name via -chaos-classes, so
//     a nameless class is unreachable), its Config rate field appears in
//     a soak mix — internal/host for the serving and substrate classes,
//     internal/cluster for the fleet classes (an uninjected class is
//     untested-by-construction — the soak is the proof the
//     detect-and-recover path works), and it is documented in DESIGN.md's
//     fault-model taxonomy. The soak and docs checks read raw file
//     contents because parseDir skips _test.go files and DESIGN.md is not
//     Go.
//
//   - The wire API's outcome vocabulary is closed (see wire.go):
//     statusOutcome covers every non-OK host.Status with the status's own
//     lowercased name as a string literal, every envelope outcome minted
//     anywhere in the serving tiers comes from EnvelopeOutcomes, and the
//     host-derived entries stay joined to stats.Outcome's serialized
//     names.
//
// The checker is pure go/ast + go/parser (the module has no dependencies,
// so golang.org/x/tools analysis frameworks are off the table) and runs as
// cmd/hfilint inside `make verify`.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Issue is one finding, formatted file:line: message.
type Issue struct {
	Pos string
	Msg string
}

func (i Issue) String() string { return i.Pos + ": " + i.Msg }

// FindRoot walks up from dir to the directory containing go.mod.
func FindRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run applies every check to the repository rooted at root and returns
// the findings, sorted by position.
func Run(root string) ([]Issue, error) {
	var issues []Issue

	hc, fset, err := parseDir(filepath.Join(root, "internal", "hostcall"))
	if err != nil {
		return nil, err
	}
	for _, f := range hc {
		issues = append(issues, lintErrnoReturns(fset, f)...)
	}

	ver, vfset, err := parseDir(filepath.Join(root, "internal", "verifier"))
	if err != nil {
		return nil, err
	}
	registry := map[string]bool{}
	for _, f := range ver {
		for k := range collectRegistry(f) {
			registry[k] = true
		}
	}
	if len(registry) == 0 {
		return nil, fmt.Errorf("lint: ruleRegistry not found in internal/verifier")
	}
	used := map[string]bool{}
	for _, f := range ver {
		uses, bad := collectRuleUses(vfset, f)
		issues = append(issues, bad...)
		for _, u := range uses {
			used[u.rule] = true
			if !registry[u.rule] {
				issues = append(issues, Issue{u.pos, fmt.Sprintf("rule %q is not in ruleRegistry", u.rule)})
			}
		}
	}
	for r := range registry {
		if !used[r] {
			issues = append(issues, Issue{"internal/verifier/rules.go", fmt.Sprintf("registered rule %q has no violate() call site", r)})
		}
	}

	tr, tfset, err := parseDir(filepath.Join(root, "internal", "tier"))
	if err != nil {
		return nil, err
	}
	sawTable := false
	for _, f := range tr {
		found, bad := lintTierCost(tfset, f)
		sawTable = sawTable || found
		issues = append(issues, bad...)
	}
	if len(tr) > 0 && !sawTable {
		issues = append(issues, Issue{"internal/tier", "no CostModel.Table() call found; superinstruction charges must come from the shared cost table"})
	}

	ch, cfset, err := parseDir(filepath.Join(root, "internal", "chaos"))
	if err != nil {
		return nil, err
	}
	chIssues, err := lintChaos(root, cfset, ch)
	if err != nil {
		return nil, err
	}
	issues = append(issues, chIssues...)

	hostFiles, _, err := parseDir(filepath.Join(root, "internal", "host"))
	if err != nil {
		return nil, err
	}
	frontFiles, frontFset, err := parseDir(filepath.Join(root, "internal", "httpfront"))
	if err != nil {
		return nil, err
	}
	clusterFiles, clusterFset, err := parseDir(filepath.Join(root, "internal", "cluster"))
	if err != nil {
		return nil, err
	}
	statsFiles, _, err := parseDir(filepath.Join(root, "internal", "stats"))
	if err != nil {
		return nil, err
	}
	issues = append(issues, lintWire(root, hostFiles,
		filesWithFset{frontFiles, frontFset},
		filesWithFset{clusterFiles, clusterFset},
		statsFiles)...)

	sort.Slice(issues, func(i, j int) bool { return issues[i].Pos < issues[j].Pos })
	return issues, nil
}

// parseDir parses every non-test .go file in dir.
func parseDir(dir string) ([]*ast.File, *token.FileSet, error) {
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, fset, nil
}

var errnoName = regexp.MustCompile(`^E[A-Z0-9]+$`)

// lintErrnoReturns flags single-valued returns of a bare kernel.E*
// selector inside Env methods: the negative-errno ABI requires negErrno()
// around them. Functions and methods on other receivers are the resource
// layer, whose positive-errno returns are their documented API.
func lintErrnoReturns(fset *token.FileSet, f *ast.File) []Issue {
	var issues []Issue
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !isEnvMethod(fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			sel, ok := ret.Results[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "kernel" || !errnoName.MatchString(sel.Sel.Name) {
				return true
			}
			issues = append(issues, Issue{
				posOf(fset, ret.Pos()),
				fmt.Sprintf("handler returns positive errno kernel.%s; wrap it in negErrno()", sel.Sel.Name),
			})
			return true
		})
	}
	return issues
}

// isEnvMethod reports whether fd is a method on Env or *Env — the
// hostcall handler surface the negation rule governs.
func isEnvMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Env"
}

type ruleUse struct {
	rule string
	pos  string
}

// collectRuleUses gathers the rule string of every violate(idx, rule, ...)
// call and every Violation{Rule: ...} composite literal. A rule argument
// that is not a string literal is itself an issue: the registry
// cross-check only works over literals.
func collectRuleUses(fset *token.FileSet, f *ast.File) ([]ruleUse, []Issue) {
	var uses []ruleUse
	var issues []Issue
	record := func(expr ast.Expr, allowIdent bool) {
		if lit, ok := expr.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			s, err := strconv.Unquote(lit.Value)
			if err == nil {
				uses = append(uses, ruleUse{s, posOf(fset, lit.Pos())})
				return
			}
		}
		// A bare identifier inside a Violation literal is a forwarded
		// parameter (the violate() implementation itself); its value is
		// checked at the violate() call sites, which must be literals.
		if allowIdent {
			if _, ok := expr.(*ast.Ident); ok {
				return
			}
		}
		issues = append(issues, Issue{posOf(fset, expr.Pos()), "violation rule is not a string literal; the registry cross-check cannot see it"})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "violate" && len(n.Args) >= 2 {
				record(n.Args[1], false)
			}
		case *ast.CompositeLit:
			id, ok := n.Type.(*ast.Ident)
			if !ok || id.Name != "Violation" {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Rule" {
					record(kv.Value, true)
				}
			}
		}
		return true
	})
	return uses, issues
}

// collectRegistry extracts the keys of the ruleRegistry map literal, if
// this file declares it.
func collectRegistry(f *ast.File) map[string]bool {
	keys := map[string]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "ruleRegistry" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, el := range cl.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if s, err := strconv.Unquote(lit.Value); err == nil {
							keys[s] = true
						}
					}
				}
			}
		}
	}
	return keys
}

// costModelFields are the per-class charge knobs of cpu.CostModel. The
// tiered engine must never read them directly: every milli-cycle a
// superinstruction bills has to come from CostModel.Table() (the same
// per-opcode table the interpreter dispatches on) or from prefix sums
// built over it, so the two engines cannot drift apart by one engine
// hand-spelling a cost. Field names, not types: the linter is
// syntax-only, so any selector with one of these names inside
// internal/tier is flagged.
var costModelFields = map[string]bool{
	"ALU": true, "Mul": true, "Div": true, "Branch": true,
	"Load": true, "Store": true, "MissScale": true, "Serialize": true,
	"HfiBase": true, "HfiMove": true, "Syscall": true, "Redirect": true,
	"Hostcall": true,
}

// lintTierCost enforces the tier package's cost-provenance contract: no
// selector may name an individual CostModel field (costs flow only
// through Table()), and the package as a whole must contain at least one
// Table() call — sawTable reports whether this file has one.
func lintTierCost(fset *token.FileSet, f *ast.File) (sawTable bool, issues []Issue) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Table" {
			sawTable = true
			return true
		}
		if costModelFields[sel.Sel.Name] {
			issues = append(issues, Issue{
				posOf(fset, sel.Pos()),
				fmt.Sprintf("tier code reads CostModel field %s directly; bill through CostModel.Table() so superinstruction charges match the interpreter's", sel.Sel.Name),
			})
		}
		return true
	})
	return sawTable, issues
}

// lintChaos enforces the chaos fault-class wiring contract: every class
// in the Fault enum has a String() name, is exercised by the host soak
// mix, and appears in the DESIGN.md fault-model taxonomy. The enum and
// faultNames are extracted from the parsed internal/chaos files; the
// soak-mix and docs checks grep raw bytes because the soak configs live
// in _test.go files (which parseDir skips) and DESIGN.md is prose.
func lintChaos(root string, fset *token.FileSet, files []*ast.File) ([]Issue, error) {
	classes, names := collectFaultEnum(fset, files)
	if len(classes) == 0 {
		return nil, fmt.Errorf("lint: Fault enum not found in internal/chaos")
	}

	var issues []Issue
	if len(names) > len(classes) {
		issues = append(issues, Issue{"internal/chaos/chaos.go",
			fmt.Sprintf("faultNames has %d entries for %d fault classes; dead names drift", len(names), len(classes))})
	}

	// The soak corpus spans both chaos tiers: internal/host exercises the
	// serving and substrate classes, internal/cluster the fleet classes
	// (shardkill, partition).
	soak, err := readMatching(filepath.Join(root, "internal", "host"), "_test.go")
	if err != nil {
		return nil, err
	}
	clusterSoak, err := readMatching(filepath.Join(root, "internal", "cluster"), "_test.go")
	if err != nil {
		return nil, err
	}
	soak = append(soak, clusterSoak...)
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return nil, err
	}

	for i, c := range classes {
		pos := c.pos
		if i >= len(names) || names[i] == "" {
			issues = append(issues, Issue{pos,
				fmt.Sprintf("fault class %s has no String() name in faultNames; it cannot be selected by -chaos-classes", c.name)})
		}
		// The Config rate field drops the Fault prefix (FaultBitFlip →
		// BitFlip); a soak config that sets it registers the class in the
		// mix.
		field := strings.TrimPrefix(c.name, "Fault")
		if !regexp.MustCompile(`\b` + field + `\s*:`).Match(soak) {
			issues = append(issues, Issue{pos,
				fmt.Sprintf("fault class %s is not registered in the internal/host soak mix (no %s: rate in any _test.go config)", c.name, field)})
		}
		if !strings.Contains(string(design), "`"+c.name+"`") {
			issues = append(issues, Issue{pos,
				fmt.Sprintf("fault class %s is missing from the DESIGN.md fault-model taxonomy", c.name)})
		}
	}
	return issues, nil
}

type faultClass struct {
	name string
	pos  string
}

// collectFaultEnum extracts the Fault enum constants (in declaration
// order, excluding the numFaults sentinel) and the faultNames literal
// from the parsed chaos package.
func collectFaultEnum(fset *token.FileSet, files []*ast.File) ([]faultClass, []string) {
	var classes []faultClass
	var names []string
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				if !isFaultEnum(gd) {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, nm := range vs.Names {
						if nm.Name == "numFaults" || nm.Name == "_" {
							continue
						}
						classes = append(classes, faultClass{nm.Name, posOf(fset, nm.Pos())})
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, nm := range vs.Names {
						if nm.Name != "faultNames" || i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						for _, el := range cl.Elts {
							if lit, ok := el.(*ast.BasicLit); ok && lit.Kind == token.STRING {
								if s, err := strconv.Unquote(lit.Value); err == nil {
									names = append(names, s)
								}
							}
						}
					}
				}
			}
		}
	}
	return classes, names
}

// isFaultEnum reports whether gd is the iota block typed Fault.
func isFaultEnum(gd *ast.GenDecl) bool {
	if len(gd.Specs) == 0 {
		return false
	}
	vs, ok := gd.Specs[0].(*ast.ValueSpec)
	if !ok {
		return false
	}
	id, ok := vs.Type.(*ast.Ident)
	return ok && id.Name == "Fault"
}

// readMatching concatenates the raw contents of every file in dir whose
// name has the given suffix.
func readMatching(dir, suffix string) ([]byte, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out, nil
}

func posOf(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

package cluster

import (
	"fmt"
	"testing"
)

// TestRingCandidates: every key sees every member exactly once, in a
// stable order.
func TestRingCandidates(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		cands := r.Candidates(key)
		if len(cands) != 3 {
			t.Fatalf("key %s: %d candidates, want 3", key, len(cands))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %s: duplicate candidate %s", key, c)
			}
			seen[c] = true
		}
		again := r.Candidates(key)
		for j := range cands {
			if cands[j] != again[j] {
				t.Fatalf("key %s: candidate order unstable", key)
			}
		}
	}
}

// TestRingDistribution: with 64 vnodes each of 3 shards owns a
// non-degenerate share of the keyspace.
func TestRingDistribution(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	const keys = 900
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Candidates(fmt.Sprintf("tenant-%d", i))[0]]++
	}
	for shard, n := range counts {
		if n < keys/10 {
			t.Errorf("shard %s owns %d/%d keys — degenerate distribution", shard, n, keys)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d shards own keys: %v", len(counts), counts)
	}
}

// TestRingRemovalStability is the consistent-hashing property the warm
// placement tier depends on: removing one member only moves the keys that
// member owned — every other key keeps its primary, and an orphaned key
// lands exactly on its old second choice.
func TestRingRemovalStability(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	const keys = 400
	before := make([][]string, keys)
	for i := 0; i < keys; i++ {
		before[i] = r.Candidates(fmt.Sprintf("tenant-%d", i))
	}
	r.Remove("shard-1")
	moved := 0
	for i := 0; i < keys; i++ {
		after := r.Candidates(fmt.Sprintf("tenant-%d", i))
		if len(after) != 3 {
			t.Fatalf("key %d: %d candidates after removal, want 3", i, len(after))
		}
		if before[i][0] == "shard-1" {
			moved++
			if after[0] != before[i][1] {
				t.Errorf("key %d: orphan went to %s, want old successor %s", i, after[0], before[i][1])
			}
		} else if after[0] != before[i][0] {
			t.Errorf("key %d: primary moved %s → %s though its shard survived", i, before[i][0], after[0])
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("removal moved %d/%d keys, want ≈1/4", moved, keys)
	}
	// Idempotent mutations.
	r.Remove("shard-1")
	r.Add("shard-2")
	if r.Members() != 3 {
		t.Fatalf("members = %d after idempotent ops, want 3", r.Members())
	}
}

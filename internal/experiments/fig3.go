package experiments

import (
	"fmt"

	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// Fig3Row is one SPEC-like kernel's normalized runtime.
type Fig3Row struct {
	Kernel string
	// Normalized runtime against guard pages (1.0 = guard pages).
	Bounds float64
	HFI    float64
}

// RunFig3 reproduces Fig 3: SPEC INT 2006 under bounds-checking and HFI,
// normalized against guard pages, on the emulation engine (these are the
// long-running applications of §6.1). The paper finds bounds checking
// +18.7%..+48.3% (geomean +34.7%) and HFI 92.5%..107.5% of guard pages
// (geomean -3.25%).
func RunFig3(scale int) ([]Fig3Row, *stats.Table, error) {
	var rows []Fig3Row
	var bs, hs []float64
	tb := &stats.Table{
		Title:   "Fig 3: SPEC INT 2006 normalized runtime (guard pages = 100%)",
		Columns: []string{"benchmark", "guard pages", "bounds checks", "HFI"},
	}
	for _, w := range workloads.SpecInt() {
		g, err := MeasureModule(w.Build(scale), sfi.GuardPages, wasm.Options{}, EngInterp)
		if err != nil {
			return nil, nil, fmt.Errorf("fig3 %s: %w", w.Name, err)
		}
		b, err := MeasureModule(w.Build(scale), sfi.BoundsCheck, wasm.Options{}, EngInterp)
		if err != nil {
			return nil, nil, fmt.Errorf("fig3 %s: %w", w.Name, err)
		}
		h, err := MeasureModule(w.Build(scale), sfi.HFI, wasm.Options{}, EngInterp)
		if err != nil {
			return nil, nil, fmt.Errorf("fig3 %s: %w", w.Name, err)
		}
		if b.Result != g.Result || h.Result != g.Result {
			return nil, nil, fmt.Errorf("fig3 %s: results diverge across schemes", w.Name)
		}
		r := Fig3Row{Kernel: w.Name, Bounds: b.Ns / g.Ns, HFI: h.Ns / g.Ns}
		rows = append(rows, r)
		bs = append(bs, r.Bounds)
		hs = append(hs, r.HFI)
		tb.AddRow(w.Name, "100.0%",
			fmt.Sprintf("%.1f%%", r.Bounds*100),
			fmt.Sprintf("%.1f%%", r.HFI*100))
	}
	tb.AddRow("geomean", "100.0%",
		fmt.Sprintf("%.1f%%", stats.GeoMean(bs)*100),
		fmt.Sprintf("%.1f%%", stats.GeoMean(hs)*100))
	tb.AddNote("paper: bounds geomean 134.7%% (118.7-148.3%%); HFI geomean 96.85%% (92.5-107.5%%), median 95.9%%")
	tb.AddNote("our medians: bounds %.1f%%, HFI %.1f%%", stats.Median(bs)*100, stats.Median(hs)*100)
	return rows, tb, nil
}

// RunRegPressure reproduces the §6.1 register-pressure estimate: the same
// kernels compiled with 1 and 2 artificially reserved registers, measured
// against the unreserved build. The paper measures +2.25% (one register)
// and +2.40% (two) on Wasmtime's Spidermonkey benchmark.
func RunRegPressure(scale int) (*stats.Table, error) {
	tb := &stats.Table{
		Title:   "§6.1 register pressure: overhead of reserving registers",
		Columns: []string{"kernel", "+1 reserved", "+2 reserved"},
	}
	kernels := []string{"400.perlbench", "456.hmmer", "464.h264ref"}
	var o1, o2 []float64
	for _, w := range workloads.SpecInt() {
		keep := false
		for _, k := range kernels {
			if w.Name == k {
				keep = true
			}
		}
		if !keep {
			continue
		}
		base, err := MeasureModule(w.Build(scale), sfi.HFI, wasm.Options{}, EngInterp)
		if err != nil {
			return nil, err
		}
		r1, err := MeasureModule(w.Build(scale), sfi.HFI, wasm.Options{ExtraReservedRegs: 1}, EngInterp)
		if err != nil {
			return nil, err
		}
		r2, err := MeasureModule(w.Build(scale), sfi.HFI, wasm.Options{ExtraReservedRegs: 2}, EngInterp)
		if err != nil {
			return nil, err
		}
		v1, v2 := r1.Ns/base.Ns, r2.Ns/base.Ns
		o1 = append(o1, v1)
		o2 = append(o2, v2)
		tb.AddRow(w.Name, stats.Pct(v1), stats.Pct(v2))
	}
	tb.AddRow("geomean", stats.Pct(stats.GeoMean(o1)), stats.Pct(stats.GeoMean(o2)))
	tb.AddNote("paper: +2.25%% for one reserved register, +2.40%% for two")
	return tb, nil
}

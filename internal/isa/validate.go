package isa

import "fmt"

// NumExplicitHRegs is the number of explicit-region registers addressable
// by hld/hst (the paper's hmov0..hmov3). Builder and Program.Validate
// enforce HReg < NumExplicitHRegs.
const NumExplicitHRegs = 4

// maxRegionNumber bounds the region-number immediate of the HFI
// configuration instructions (hfi_set_region and friends). The
// architectural field is small; implementations define fewer regions and
// trap on out-of-range numbers at runtime.
const maxRegionNumber = 64

// ValidationError reports the first structurally malformed instruction of
// a Program, with enough context to locate it in a disassembly listing.
type ValidationError struct {
	Index  int    // instruction index, -1 for whole-program problems
	Addr   uint64 // instruction address (Base + Index*InstrBytes)
	Instr  string // disassembly of the offending instruction
	Reason string
}

func (e *ValidationError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("invalid program: %s", e.Reason)
	}
	return fmt.Sprintf("invalid instruction %d at %#x (%s): %s", e.Index, e.Addr, e.Instr, e.Reason)
}

// Validate checks structural well-formedness: every opcode is defined,
// register fields are in range (or RegNone where optional), memory sizes
// and scales are 1/2/4/8, branch and call targets are InstrBytes-aligned
// addresses inside the program, and execution cannot fall off the end
// (the last instruction must be halt, jmp, jmpi, or ret).
//
// Validate is the verifier's pass 1 and is also run by Assemble, so
// hand-written programs get the same checks as compiled ones. It does not
// prove any isolation property; see internal/verifier for that.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return &ValidationError{Index: -1, Reason: "empty program"}
	}
	if p.Base%InstrBytes != 0 {
		return &ValidationError{Index: -1, Reason: fmt.Sprintf("base %#x not %d-byte aligned", p.Base, InstrBytes)}
	}
	for i := range p.Instrs {
		if reason := p.validateInstr(&p.Instrs[i]); reason != "" {
			return &ValidationError{
				Index:  i,
				Addr:   p.Base + uint64(i)*InstrBytes,
				Instr:  p.Instrs[i].String(),
				Reason: reason,
			}
		}
	}
	last := &p.Instrs[len(p.Instrs)-1]
	switch last.Op {
	case OpHalt, OpJmp, OpJmpInd, OpRet:
	default:
		return &ValidationError{
			Index:  len(p.Instrs) - 1,
			Addr:   p.End() - InstrBytes,
			Instr:  last.String(),
			Reason: "execution falls off the end of the program (last instruction must be halt, jmp, jmpi, or ret)",
		}
	}
	return nil
}

// validateInstr returns "" if in is well-formed, or a reason string.
func (p *Program) validateInstr(in *Instr) string {
	if in.Op >= opCount {
		return fmt.Sprintf("undefined opcode %d", uint8(in.Op))
	}
	// Any register field must be a real register or RegNone; per-op rules
	// below additionally require specific fields to be present.
	for _, f := range [...]struct {
		name string
		r    Reg
	}{{"rd", in.Rd}, {"rs1", in.Rs1}, {"rs2", in.Rs2}, {"rs3", in.Rs3}} {
		if f.r != RegNone && f.r >= NumRegs {
			return fmt.Sprintf("register field %s out of range (%d)", f.name, uint8(f.r))
		}
	}
	need := func(name string, r Reg) string {
		if r == RegNone {
			return fmt.Sprintf("missing required %s operand", name)
		}
		return ""
	}
	validSize := func(n uint8) bool { return n == 1 || n == 2 || n == 4 || n == 8 }
	mem := func() string {
		if !validSize(in.Size) {
			return fmt.Sprintf("bad access size %d", in.Size)
		}
		if in.Rs2 != RegNone && !validSize(in.Scale) {
			return fmt.Sprintf("bad index scale %d", in.Scale)
		}
		return ""
	}
	target := func() string {
		if in.Target < p.Base || in.Target >= p.End() {
			return fmt.Sprintf("target %#x outside program [%#x, %#x)", in.Target, p.Base, p.End())
		}
		if (in.Target-p.Base)%InstrBytes != 0 {
			return fmt.Sprintf("misaligned target %#x", in.Target)
		}
		return ""
	}
	region := func() string {
		if in.Imm < 0 || in.Imm >= maxRegionNumber {
			return fmt.Sprintf("region number %d out of range", in.Imm)
		}
		return ""
	}
	first := func(reasons ...string) string {
		for _, r := range reasons {
			if r != "" {
				return r
			}
		}
		return ""
	}

	switch in.Op {
	case OpNop, OpHalt, OpRet, OpSyscall, OpHostcall, OpFence,
		OpHfiExit, OpHfiReenter, OpHfiClearAll:
		return ""
	case OpMovImm, OpRdtsc:
		return need("rd", in.Rd)
	case OpMov, OpNot, OpNeg:
		return first(need("rd", in.Rd), need("rs1", in.Rs1))
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpDiv, OpRem:
		if r := first(need("rd", in.Rd), need("rs1", in.Rs1)); r != "" {
			return r
		}
		if !in.UseImm {
			return need("rs2", in.Rs2)
		}
		return ""
	case OpLoad:
		return first(need("rd", in.Rd), mem())
	case OpStore:
		return first(need("rs3", in.Rs3), mem())
	case OpHLoad:
		if in.HReg >= NumExplicitHRegs {
			return fmt.Sprintf("explicit region register %d out of range", in.HReg)
		}
		return first(need("rd", in.Rd), mem())
	case OpHStore:
		if in.HReg >= NumExplicitHRegs {
			return fmt.Sprintf("explicit region register %d out of range", in.HReg)
		}
		return first(need("rs3", in.Rs3), mem())
	case OpBr:
		if in.Cond > CondLEU {
			return fmt.Sprintf("undefined condition %d", uint8(in.Cond))
		}
		if r := need("rs1", in.Rs1); r != "" {
			return r
		}
		if !in.UseImm {
			if r := need("rs2", in.Rs2); r != "" {
				return r
			}
		}
		return target()
	case OpJmp, OpCall:
		return target()
	case OpJmpInd, OpCallInd:
		return need("rs1", in.Rs1)
	case OpClflush:
		return need("rs1", in.Rs1)
	case OpHfiEnter, OpXsave, OpXrstor:
		return need("rs1", in.Rs1)
	case OpHfiSetRegion, OpHfiGetRegion:
		return first(need("rs2", in.Rs2), region())
	case OpHfiClearRegion:
		return region()
	}
	return ""
}

// Package seccomp models the Seccomp-bpf syscall-filtering baseline of
// §6.4.1. State-of-the-art MPK-based sandboxes (ERIM) rely on seccomp
// filters for syscall interposition; the paper compares their overhead
// against HFI's decode-stage redirect.
//
// A filter is a straight-line BPF-like program evaluated by the kernel on
// every syscall entry. Cost is charged per executed instruction plus a
// fixed kernel entry-hook overhead, which is how real seccomp overhead
// scales with filter length.
package seccomp

import "fmt"

// Action is a filter verdict.
type Action uint8

// Verdicts.
const (
	ActionAllow Action = iota
	ActionDeny
	ActionNext // fall through to the next instruction
)

// Insn is one BPF-like filter instruction: if the syscall number matches
// Sysno (or Any is set), the verdict applies, optionally gated on an
// argument comparison.
type Insn struct {
	Any     bool
	Sysno   uint64
	ArgIdx  int // -1: no argument check
	ArgMax  uint64
	Verdict Action
}

// Cost constants in simulated nanoseconds, calibrated so the §6.4.1
// open/read/close workload shows seccomp ≈ 2% slower than HFI
// interposition.
const (
	HookOverheadNs = 10 // fixed per-syscall filter-invocation cost
	PerInsnNs      = 2  // per evaluated BPF instruction
)

// Filter is an ordered BPF-like program. It implements kernel.Filter.
type Filter struct {
	Insns []Insn

	Evaluated uint64
	Denials   uint64
}

// AllowList builds a filter that permits exactly the listed syscalls and
// denies everything else.
func AllowList(sysnos ...uint64) *Filter {
	f := &Filter{}
	for _, n := range sysnos {
		f.Insns = append(f.Insns, Insn{Sysno: n, ArgIdx: -1, Verdict: ActionAllow})
	}
	f.Insns = append(f.Insns, Insn{Any: true, ArgIdx: -1, Verdict: ActionDeny})
	return f
}

// Check evaluates the filter for a syscall, returning the verdict and the
// simulated cost of evaluation.
func (f *Filter) Check(sysno uint64, args [5]uint64) (allow bool, costNs uint64) {
	f.Evaluated++
	cost := uint64(HookOverheadNs)
	for i := range f.Insns {
		in := &f.Insns[i]
		cost += PerInsnNs
		if !in.Any && in.Sysno != sysno {
			continue
		}
		if in.ArgIdx >= 0 && args[in.ArgIdx] > in.ArgMax {
			continue
		}
		switch in.Verdict {
		case ActionAllow:
			return true, cost
		case ActionDeny:
			f.Denials++
			return false, cost
		}
	}
	// Default-deny, as seccomp strict mode would.
	f.Denials++
	return false, cost
}

func (f *Filter) String() string {
	return fmt.Sprintf("seccomp-bpf filter (%d insns)", len(f.Insns))
}

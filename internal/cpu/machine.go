// Package cpu provides the two execution engines of §5.2:
//
//   - Interp, a fast functional interpreter with a per-instruction cycle
//     cost model — the analogue of the paper's compiler-based emulation,
//     used for long-running macro benchmarks; and
//   - Core, a cycle-level out-of-order timing simulator with branch
//     prediction and speculative execution — the analogue of the paper's
//     gem5 model, used for microbenchmarks and the Spectre experiments.
//
// Both engines share a Machine (architectural state + memory system + OS +
// HFI) and the architectural semantics in exec.go, so a program produces
// identical results on either engine; only timing differs. Fig 2
// cross-validates the two.
package cpu

import (
	"fmt"
	"sort"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/mem"
)

// HostReturn is a distinguished guest address: control transferring to it
// returns to the host (the trusted runtime implemented in Go). It plays the
// role of the return address a host-side caller would push before invoking
// guest code, and doubles as an exit-handler target for runtimes that
// handle sandbox exits in host code.
const HostReturn uint64 = 0x7fff_ffff_f000

// StopReason says why an engine's Run loop returned.
type StopReason uint8

// Stop reasons.
const (
	StopHalt       StopReason = iota // guest executed halt
	StopHostReturn                   // control reached HostReturn
	StopExit                         // guest called SysExit
	StopFault                        // unhandled fault
	StopLimit                        // cycle/instruction budget exhausted
)

var stopNames = [...]string{"halt", "host-return", "exit", "fault", "limit"}

func (r StopReason) String() string {
	if int(r) < len(stopNames) {
		return stopNames[r]
	}
	return fmt.Sprintf("stop(%d)", uint8(r))
}

// RunResult reports the outcome of a Run call.
type RunResult struct {
	Reason StopReason
	Fault  *hfi.Fault // set when Reason == StopFault and the fault was HFI's
	// PageFault is set for MMU (guard-page) faults.
	PageFault bool
	FaultAddr uint64
	FaultPC   uint64
}

// Engine abstracts the two execution engines: both run the machine from
// its current PC until a stop condition or a budget limit (instructions
// for Interp, cycles for Core; 0 = unlimited).
type Engine interface {
	Run(limit uint64) RunResult
}

// Machine is the architectural state shared by both engines: registers,
// memory, loaded code, the HFI state, the OS, and the cache hierarchy.
type Machine struct {
	Regs [isa.NumRegs]uint64
	PC   uint64

	AS   *kernel.AddressSpace
	Kern *kernel.Kernel
	HFI  *hfi.State
	Hier *mem.Hierarchy

	// progs holds loaded code images sorted by base address.
	progs []*isa.Program

	// Cycles is the cumulative cycle count across runs (the engines add
	// to it). Rdtsc reads it.
	Cycles uint64

	// Instret counts retired instructions.
	Instret uint64

	// LastExitPC is the instruction after the most recent redirected
	// syscall or handled hfi_exit — the address a trusted runtime resumes
	// the sandbox at after servicing the exit.
	LastExitPC uint64

	// HostcallFn is the host-call dispatcher a trusted runtime installs
	// before running guest code that uses the hostcall gate: the guest
	// places the hostcall number in R0 and arguments in R1-R5, and the
	// dispatcher writes the result (or negated errno) back into R0. The
	// host side is responsible for its own marshalling checks and for
	// charging simulated time on the kernel clock. Executing hostcall with
	// no dispatcher installed raises a privilege fault — a sandbox cannot
	// reach a host that never offered it an interface.
	HostcallFn func(regs *[isa.NumRegs]uint64)

	// MemHook, when non-nil, observes every data access the interpreter
	// performs architecturally — loads, stores, and the implicit stack
	// push/pop of call and ret — after the HFI and MMU checks have
	// passed. The mutation harness uses it as an escape oracle: a hook
	// that sees an address outside the regions a sandbox owns has caught
	// a containment failure. The pipelined Core does not call it;
	// wrong-path accesses would make the stream ill-defined.
	MemHook func(pc, addr uint64, size uint8, write bool)

	// Fetch code cache: the program containing the most recent fetch.
	// ccInstrs aliases that program's (immutable once loaded) instruction
	// slice, so a hit costs one range check and an index instead of a
	// binary search plus a Program.At call. Cleared whenever the program
	// list changes (LoadProgram/LoadPrelinked/Reset).
	ccBase   uint64
	ccLimit  uint64
	ccInstrs []isa.Instr
	lastProg int // index of the program fetchAt last hit

	// dtc is a 1-entry data-translation cache summarizing the combined
	// HFI + MMU decision for one OS page. It is consulted only by the
	// interpreter's load/store fast path; validity is gen-tagged against
	// both sources of truth, so any HFI state write (enter/exit/region
	// update/fault/xrstor) or mapping change (mmap/mprotect/munmap)
	// invalidates it without the mutating code knowing the cache exists.
	dtc dtcEntry

	// epc is the exec-side counterpart: the HFI code-region decision for
	// the last fetched page, consulted by the interpreter only while HFI
	// is enabled (fetch legality outside HFI comes from the program list,
	// not the MMU). HFI state is the decision's only input, so the entry
	// carries just the HFI generation tag.
	epc epcEntry

	// facts holds verifier-proven elision facts per loaded program (see
	// facts.go); fcBase/fcEnd/fcF mirror the entry for the program of the
	// most recent lookup (fcF nil caches "no facts"), and fgate holds the
	// lazily re-validated runtime view of the mirrored artifact.
	facts map[*isa.Program]*ElisionFacts
	fcBase uint64
	fcEnd  uint64
	fcF    *ElisionFacts
	fgate  factGate

	// FactElisions counts dynamic checks skipped on the strength of a
	// fact (not part of the architectural state; benchmarks read it).
	FactElisions uint64

	// resetSeq counts Reset calls. Reset is the context-switch point where
	// the machine is handed to a different guest; engines that carry
	// per-guest derived state (the tiered engine's promotion counters)
	// watch it to demote everything the new guest has not earned.
	resetSeq uint64
}

// dtcEntry caches the access decision for every access wholly inside one OS
// page. It is only filled when that decision is page-uniform: the same HFI
// first-match outcome and VMA protection apply to every byte of the page
// (see hfi.State.DataPageDecision; VMAs are OS-page aligned, so their side
// is uniform by construction).
type dtcEntry struct {
	page    uint64
	readOK  bool
	writeOK bool
	valid   bool
	hfiGen  uint64 // hfi.State.Gen at fill time
	mapGen  uint64 // kernel.AddressSpace.Gen at fill time
}

// epcEntry caches the CheckExec outcome for one OS page, filled only when
// the decision is page-uniform (hfi.State.ExecPageDecision).
type epcEntry struct {
	page   uint64
	exec   bool
	valid  bool
	hfiGen uint64
}

// NewMachine wires up a machine with a fresh address space, kernel, HFI
// state and cache hierarchy sharing one clock.
func NewMachine() *Machine {
	clock := kernel.NewClock()
	as := kernel.NewAddressSpace()
	k := kernel.New(clock)
	hier := mem.NewHierarchy()
	k.TLB = hier.DTB
	return &Machine{AS: as, Kern: k, HFI: hfi.NewState(), Hier: hier}
}

// LoadProgram registers a code image and maps its address range
// read+execute. Programs must not overlap.
func (m *Machine) LoadProgram(p *isa.Program) error {
	for _, q := range m.progs {
		if p.Base < q.End() && q.Base < p.End() {
			return fmt.Errorf("cpu: program at [%#x,%#x) overlaps [%#x,%#x)", p.Base, p.End(), q.Base, q.End())
		}
	}
	if err := m.AS.MapFixed(p.Base&^uint64(kernel.OSPageSize-1),
		p.Size()+p.Base%kernel.OSPageSize, kernel.ProtRead|kernel.ProtExec); err != nil {
		return err
	}
	m.progs = append(m.progs, p)
	sort.Slice(m.progs, func(i, j int) bool { return m.progs[i].Base < m.progs[j].Base })
	m.invalidateFetchCache()
	return nil
}

// LoadPrelinked registers a code image whose address range the caller has
// already mapped executable (e.g. inside an aligned code block shared with
// a springboard).
func (m *Machine) LoadPrelinked(p *isa.Program) error {
	for _, q := range m.progs {
		if p.Base < q.End() && q.Base < p.End() {
			return fmt.Errorf("cpu: program at [%#x,%#x) overlaps [%#x,%#x)", p.Base, p.End(), q.Base, q.End())
		}
	}
	m.progs = append(m.progs, p)
	sort.Slice(m.progs, func(i, j int) bool { return m.progs[i].Base < m.progs[j].Base })
	m.invalidateFetchCache()
	return nil
}

// MustLoadProgram is LoadProgram for setup code where failure is a bug.
func (m *Machine) MustLoadProgram(p *isa.Program) {
	if err := m.LoadProgram(p); err != nil {
		panic(err)
	}
}

// FetchInstr returns the instruction at pc, or nil if pc is not inside any
// loaded program. Fetches are heavily local (straight-line code, loops), so
// the common case indexes directly into the last program's instruction
// slice; only a program switch pays the binary search.
func (m *Machine) FetchInstr(pc uint64) *isa.Instr {
	if pc >= m.ccBase && pc < m.ccLimit {
		off := pc - m.ccBase
		if off%isa.InstrBytes != 0 {
			return nil
		}
		return &m.ccInstrs[off/isa.InstrBytes]
	}
	in := m.fetchAt(pc)
	if in != nil {
		// fetchAt found the program; cache it for subsequent fetches.
		p := m.progs[m.lastProg]
		m.ccBase, m.ccLimit, m.ccInstrs = p.Base, p.End(), p.Instrs
	}
	return in
}

// fetchAt is the uncached fetch: a binary search over the sorted program
// list. The interpreter's NoFastPath mode uses it directly so differential
// tests exercise the pre-cache behaviour.
func (m *Machine) fetchAt(pc uint64) *isa.Instr {
	i := sort.Search(len(m.progs), func(i int) bool { return m.progs[i].End() > pc })
	if i == len(m.progs) || pc < m.progs[i].Base {
		return nil
	}
	m.lastProg = i
	return m.progs[i].At(pc)
}

// invalidateFetchCache drops the fetch code cache; callers mutate m.progs.
func (m *Machine) invalidateFetchCache() {
	m.ccBase, m.ccLimit, m.ccInstrs = 0, 0, nil
	m.lastProg = 0
	m.resetFactMirror()
}

// FlushDTC invalidates the interpreter's decision caches (the data
// translation cache and the exec-permission cache). Generation tags already
// catch HFI and mapping changes; this exists for state changes outside
// those, i.e. swapping the whole machine between guests (Reset).
func (m *Machine) FlushDTC() {
	m.dtc = dtcEntry{}
	m.epc = epcEntry{}
	m.resetFactMirror()
}

// epcHit reports whether the cached exec decision covers and permits a fetch
// at pc. A denied or uncovered fetch returns false and takes the full
// CheckExec path, which raises the architectural fault.
func (m *Machine) epcHit(pc uint64) bool {
	e := &m.epc
	if !e.valid || e.hfiGen != m.HFI.Gen {
		e.valid = false
		return false
	}
	if pc&^uint64(kernel.OSPageSize-1) != e.page {
		return false
	}
	return e.exec
}

// epcFill recomputes the exec decision for pc's OS page after a slow-path
// CheckExec pass; installed only when uniform across the page.
func (m *Machine) epcFill(pc uint64) {
	page := pc &^ uint64(kernel.OSPageSize-1)
	ok, uniform := m.HFI.ExecPageDecision(page, kernel.OSPageSize)
	if !uniform {
		m.epc.valid = false
		return
	}
	m.epc = epcEntry{page: page, exec: ok, valid: true, hfiGen: m.HFI.Gen}
}

// dtcHit reports whether the cached page decision covers and permits this
// access: generations current, same page, no page straddle, and the cached
// permission allows it. Denied or uncovered accesses return false and take
// the full CheckData/checkMMU path, which raises the architectural fault.
func (m *Machine) dtcHit(addr uint64, size uint8, write bool) bool {
	d := &m.dtc
	if !d.valid || d.hfiGen != m.HFI.Gen || d.mapGen != m.AS.Gen() {
		d.valid = false
		return false
	}
	off := addr & (kernel.OSPageSize - 1)
	if addr-off != d.page || off+uint64(size) > kernel.OSPageSize {
		return false
	}
	if write {
		return d.writeOK
	}
	return d.readOK
}

// dtcFill recomputes the decision for addr's OS page after a slow-path
// check. The entry is only installed when the decision is uniform across
// the page: the first-matching HFI region (if any) contains the whole page
// — partial overlaps are not summarizable under first-match semantics —
// and the VMA protection covers it (always true: VMAs are OS-page aligned).
func (m *Machine) dtcFill(addr uint64) {
	page := addr &^ uint64(kernel.OSPageSize-1)
	r, w, uniform := m.HFI.DataPageDecision(page, kernel.OSPageSize)
	if !uniform {
		m.dtc.valid = false
		return
	}
	prot, mapped := m.AS.Prot(page)
	m.dtc = dtcEntry{
		page:    page,
		readOK:  r && mapped && prot&kernel.ProtRead != 0,
		writeOK: w && mapped && prot&kernel.ProtWrite != 0,
		valid:   true,
		hfiGen:  m.HFI.Gen,
		mapGen:  m.AS.Gen(),
	}
}

// Mem returns the backing memory (convenience).
func (m *Machine) Mem() *mem.Memory { return m.AS.Mem }

// Reset clears registers and counters but keeps loaded programs, memory
// contents, and kernel state. It also drops the fetch code cache and the
// data-translation cache: Reset is the context-switch point where a machine
// is handed to a different guest, and stale cached decisions must not leak
// across that boundary.
func (m *Machine) Reset() {
	m.Regs = [isa.NumRegs]uint64{}
	m.PC = 0
	m.Cycles = 0
	m.Instret = 0
	m.resetSeq++
	m.invalidateFetchCache()
	m.FlushDTC()
}

// ResetSeq returns the number of Reset calls so far; see resetSeq.
func (m *Machine) ResetSeq() uint64 { return m.resetSeq }

// raiseFault routes a fault through the OS signal path: HFI has already
// disabled the sandbox and recorded the MSR (for HFI faults); the kernel
// delivers a SIGSEGV-like signal to the runtime's registered handler,
// which may return a resume PC.
func (m *Machine) raiseFault(pc uint64, addr uint64, f *hfi.Fault) (resume uint64) {
	info := kernel.SigInfo{Addr: addr, PC: pc}
	if f != nil {
		info.HFIReason = f.Reason
		info.HFIInfo = addr
	}
	return m.Kern.DeliverSignal(info)
}

package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/tier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// runSnapshot captures everything observable about a finished run. Two runs
// that differ only in whether the interpreter used its fast paths must
// produce byte-identical snapshots.
type runSnapshot struct {
	reason    cpu.StopReason
	result    uint64
	regs      [isa.NumRegs]uint64
	instret   uint64
	cycles    uint64
	clockNs   uint64
	heapHash  uint64
	checksD   uint64 // HFI data checks, the fast path's preserved counter
	checksC   uint64
	hfiFaults uint64
}

func hashBytes(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// TestDifferentialFastPathCorpus runs the full Sightglass corpus under all
// four isolation schemes with the interpreter fast paths and the
// verifier-fact elision crossed in all four combinations — plus a fifth
// variant running the tiered superinstruction engine with an aggressive
// promotion threshold — and asserts identical architectural outcomes
// against the fully dynamic baseline (NoFastPath=true, TrustFacts=off):
// stop reason, result, registers, retired instructions, cycle counts,
// simulated clock, heap image, and HFI check counters. The fast paths are
// pure caching, the elision path is a pure proof-consumer, and the tiered
// engine is a pure re-encoding of the same semantics — any divergence is a
// bug in cache invalidation, in a fact the verifier should not have
// emitted, or in a superinstruction lowering. The elided runs must also
// actually elide (FactElisions > 0) and the tiered runs must actually
// retire fused instructions, so the equivalence is not vacuous.
func TestDifferentialFastPathCorpus(t *testing.T) {
	wls := workloads.Sightglass()
	if testing.Short() {
		wls = wls[:4]
	}
	type variant struct {
		noFast, trustFacts, tiered bool
	}
	variants := []variant{
		{true, false, false}, // fully dynamic baseline, snapshot source
		{false, false, false},
		{false, true, false},
		{true, true, false},
		{false, true, true}, // tiered engine over the default interpreter
	}
	schemes := []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI}
	tieredRan := make(map[sfi.Scheme]uint64)
	for _, w := range wls {
		for _, scheme := range schemes {
			var want runSnapshot
			elided := uint64(0)
			elidable := uint64(0)
			for vi, v := range variants {
				rt := NewRuntime()
				inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
				if err != nil {
					t.Fatalf("%s/%v: %v", w.Name, scheme, err)
				}
				ip := cpu.NewInterp(rt.M)
				ip.NoFastPath = v.noFast
				ip.TrustFacts = v.trustFacts
				var eng cpu.Engine = ip
				var te *tier.Engine
				if v.tiered {
					te = tier.NewEngine(ip, inst.Lowered)
					// Promote on the second execution of every block so the
					// fused paths carry as much of the run as possible.
					te.PromoteAfter = 1
					eng = te
				}
				res, r0 := inst.Invoke(eng, 500_000_000)
				if res.Reason != cpu.StopHalt {
					t.Fatalf("%s/%v %+v: stop = %v", w.Name, scheme, v, res.Reason)
				}
				m := rt.M
				heap := inst.ReadHeap(0, int(uint64(inst.CurPages)*wasm.PageSize))
				snap := runSnapshot{
					reason:    res.Reason,
					result:    r0,
					regs:      m.Regs,
					instret:   m.Instret,
					cycles:    m.Cycles,
					clockNs:   m.Kern.Clock.Now(),
					heapHash:  hashBytes(heap),
					checksD:   m.HFI.ChecksData,
					checksC:   m.HFI.ChecksCode,
					hfiFaults: m.HFI.Faults,
				}
				if v.trustFacts {
					elided += m.FactElisions
					s := inst.C.Facts.Summary()
					elidable = uint64(s.Resident + s.Dominated + s.HfiHeap)
				}
				if te != nil {
					_, tiered, _ := te.Counters()
					tieredRan[scheme] += tiered
				}
				if vi == 0 {
					want = snap
				} else if snap != want {
					t.Fatalf("%s/%v %+v: divergence from dynamic baseline:\nbase: %+v\ngot:  %+v",
						w.Name, scheme, v, want, snap)
				}
			}
			if elidable > 0 && elided == 0 {
				// Pure register workloads legitimately carry no elidable
				// facts; everything else must actually exercise the path.
				t.Errorf("%s/%v: %d elidable facts but no checks elided; the differential is vacuous",
					w.Name, scheme, elidable)
			}
		}
	}
	// Non-vacuity for the tiered variant: under every scheme, at least part
	// of the corpus must have retired instructions through fused blocks.
	for _, scheme := range schemes {
		if tieredRan[scheme] == 0 {
			t.Errorf("%v: tiered engine retired no fused instructions across the corpus; the differential is vacuous", scheme)
		}
	}
}

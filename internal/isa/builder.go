package isa

import "fmt"

// Builder assembles a Program instruction by instruction. Branch and call
// targets may reference labels that are defined later; Build resolves them.
//
// The builder panics on malformed input (undefined labels, bad sizes):
// assembly errors are programming bugs in the workload definitions, not
// runtime conditions a caller could handle.
type Builder struct {
	base    uint64
	instrs  []Instr
	labels  map[string]uint64
	fixups  []fixup
	pending []string // labels waiting for the next instruction
}

type fixup struct {
	idx   int
	label string
}

// NewBuilder returns a Builder assembling code at the given base address.
// The base must be InstrBytes-aligned.
func NewBuilder(base uint64) *Builder {
	if base%InstrBytes != 0 {
		panic(fmt.Sprintf("isa: builder base 0x%x not %d-byte aligned", base, InstrBytes))
	}
	return &Builder{base: base, labels: make(map[string]uint64)}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return b.base + uint64(len(b.instrs))*InstrBytes }

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = b.PC()
}

func (b *Builder) emit(i Instr) *Builder {
	b.instrs = append(b.instrs, i)
	return b
}

func (b *Builder) emitTarget(i Instr, label string) *Builder {
	b.fixups = append(b.fixups, fixup{idx: len(b.instrs), label: label})
	return b.emit(i)
}

func checkSize(size uint8) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("isa: invalid memory access size %d", size))
	}
}

func checkScale(scale uint8) {
	switch scale {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("isa: invalid index scale %d", scale))
	}
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Halt emits a halt, which stops the machine.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// MovImm emits rd <- imm.
func (b *Builder) MovImm(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMovImm, Rd: rd, Imm: imm, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// Mov emits rd <- rs.
func (b *Builder) Mov(rd, rs Reg) *Builder {
	return b.emit(Instr{Op: OpMov, Rd: rd, Rs1: rs, Rs2: RegNone, Rs3: RegNone})
}

func (b *Builder) alu(op Op, rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: RegNone})
}

func (b *Builder) alui(op Op, rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: RegNone, Rs3: RegNone, UseImm: true, Imm: imm})
}

// Three-operand ALU forms.

func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder { return b.alu(OpAdd, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder { return b.alu(OpSub, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder { return b.alu(OpAnd, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder  { return b.alu(OpOr, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder { return b.alu(OpXor, rd, rs1, rs2) }
func (b *Builder) Shl(rd, rs1, rs2 Reg) *Builder { return b.alu(OpShl, rd, rs1, rs2) }
func (b *Builder) Shr(rd, rs1, rs2 Reg) *Builder { return b.alu(OpShr, rd, rs1, rs2) }
func (b *Builder) Sar(rd, rs1, rs2 Reg) *Builder { return b.alu(OpSar, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder { return b.alu(OpMul, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 Reg) *Builder { return b.alu(OpDiv, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 Reg) *Builder { return b.alu(OpRem, rd, rs1, rs2) }
func (b *Builder) Not(rd, rs Reg) *Builder       { return b.alu(OpNot, rd, rs, RegNone) }
func (b *Builder) Neg(rd, rs Reg) *Builder       { return b.alu(OpNeg, rd, rs, RegNone) }

// ALU32 emits a three-operand ALU op with 32-bit (Wasm i32) semantics:
// the result is truncated to 32 bits.
func (b *Builder) ALU32(op Op, rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: RegNone, W32: true})
}

// ALU32Imm is ALU32 with an immediate second operand.
func (b *Builder) ALU32Imm(op Op, rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs, Rs2: RegNone, Rs3: RegNone, UseImm: true, Imm: imm, W32: true})
}

// Immediate ALU forms.

func (b *Builder) AddImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpAdd, rd, rs, imm) }
func (b *Builder) SubImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpSub, rd, rs, imm) }
func (b *Builder) AndImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpAnd, rd, rs, imm) }
func (b *Builder) OrImm(rd, rs Reg, imm int64) *Builder  { return b.alui(OpOr, rd, rs, imm) }
func (b *Builder) XorImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpXor, rd, rs, imm) }
func (b *Builder) ShlImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpShl, rd, rs, imm) }
func (b *Builder) ShrImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpShr, rd, rs, imm) }
func (b *Builder) SarImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpSar, rd, rs, imm) }
func (b *Builder) MulImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpMul, rd, rs, imm) }
func (b *Builder) DivImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpDiv, rd, rs, imm) }
func (b *Builder) RemImm(rd, rs Reg, imm int64) *Builder { return b.alui(OpRem, rd, rs, imm) }

// Load emits rd <- mem[base + index*scale + disp] of the given size,
// zero-extending. Pass RegNone for unused base/index operands.
func (b *Builder) Load(size uint8, rd, base, index Reg, scale uint8, disp int64) *Builder {
	checkSize(size)
	checkScale(scale)
	return b.emit(Instr{Op: OpLoad, Rd: rd, Rs1: base, Rs2: index, Rs3: RegNone,
		Size: size, Scale: scale, Disp: disp})
}

// LoadS is Load with sign extension.
func (b *Builder) LoadS(size uint8, rd, base, index Reg, scale uint8, disp int64) *Builder {
	checkSize(size)
	checkScale(scale)
	return b.emit(Instr{Op: OpLoad, Rd: rd, Rs1: base, Rs2: index, Rs3: RegNone,
		Size: size, Scale: scale, Disp: disp, SignExt: true})
}

// Store emits mem[base + index*scale + disp] <- src of the given size.
func (b *Builder) Store(size uint8, base, index Reg, scale uint8, disp int64, src Reg) *Builder {
	checkSize(size)
	checkScale(scale)
	return b.emit(Instr{Op: OpStore, Rd: RegNone, Rs1: base, Rs2: index, Rs3: src,
		Size: size, Scale: scale, Disp: disp})
}

// HLoad emits an explicit-region load through hmov<hreg>: the base operand
// is architecturally replaced with the region's base address.
func (b *Builder) HLoad(hreg uint8, size uint8, rd, index Reg, scale uint8, disp int64) *Builder {
	checkSize(size)
	checkScale(scale)
	if hreg >= NumExplicitHRegs {
		panic(fmt.Sprintf("isa: explicit region %d out of range", hreg))
	}
	return b.emit(Instr{Op: OpHLoad, Rd: rd, Rs1: RegNone, Rs2: index, Rs3: RegNone,
		HReg: hreg, Size: size, Scale: scale, Disp: disp})
}

// HStore emits an explicit-region store through hmov<hreg>.
func (b *Builder) HStore(hreg uint8, size uint8, index Reg, scale uint8, disp int64, src Reg) *Builder {
	checkSize(size)
	checkScale(scale)
	if hreg >= NumExplicitHRegs {
		panic(fmt.Sprintf("isa: explicit region %d out of range", hreg))
	}
	return b.emit(Instr{Op: OpHStore, Rd: RegNone, Rs1: RegNone, Rs2: index, Rs3: src,
		HReg: hreg, Size: size, Scale: scale, Disp: disp})
}

// Br emits a conditional branch to a label.
func (b *Builder) Br(cond Cond, rs1, rs2 Reg, label string) *Builder {
	return b.emitTarget(Instr{Op: OpBr, Cond: cond, Rd: RegNone, Rs1: rs1, Rs2: rs2, Rs3: RegNone}, label)
}

// BrImm emits a conditional branch comparing rs1 against an immediate.
func (b *Builder) BrImm(cond Cond, rs1 Reg, imm int64, label string) *Builder {
	return b.emitTarget(Instr{Op: OpBr, Cond: cond, Rd: RegNone, Rs1: rs1, Rs2: RegNone, Rs3: RegNone,
		UseImm: true, Imm: imm}, label)
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitTarget(Instr{Op: OpJmp, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone}, label)
}

// JmpAddr emits an unconditional jump to an absolute address (used by
// runtime-generated springboards that target separately compiled code).
func (b *Builder) JmpAddr(target uint64) *Builder {
	return b.emit(Instr{Op: OpJmp, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Target: target})
}

// CallAddr emits a direct call to an absolute address.
func (b *Builder) CallAddr(target uint64) *Builder {
	return b.emit(Instr{Op: OpCall, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Target: target})
}

// JmpInd emits an indirect jump through rs.
func (b *Builder) JmpInd(rs Reg) *Builder {
	return b.emit(Instr{Op: OpJmpInd, Rd: RegNone, Rs1: rs, Rs2: RegNone, Rs3: RegNone})
}

// Call emits a direct call to a label: the return address is pushed on the
// stack (SP -= 8) and control transfers to the label.
func (b *Builder) Call(label string) *Builder {
	return b.emitTarget(Instr{Op: OpCall, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone}, label)
}

// CallInd emits an indirect call through rs.
func (b *Builder) CallInd(rs Reg) *Builder {
	return b.emit(Instr{Op: OpCallInd, Rd: RegNone, Rs1: rs, Rs2: RegNone, Rs3: RegNone})
}

// Ret emits a return: pops the return address and jumps to it.
func (b *Builder) Ret() *Builder {
	return b.emit(Instr{Op: OpRet, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// Syscall emits a system call.
func (b *Builder) Syscall() *Builder {
	return b.emit(Instr{Op: OpSyscall, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// Hostcall emits a host-call gate instruction: the number travels in R0,
// arguments in R1-R5, and the result (or negated errno) returns in R0.
func (b *Builder) Hostcall() *Builder {
	return b.emit(Instr{Op: OpHostcall, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// Fence emits a full serializing fence.
func (b *Builder) Fence() *Builder {
	return b.emit(Instr{Op: OpFence, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// Clflush emits a cache-line flush of the address rs + disp.
func (b *Builder) Clflush(rs Reg, disp int64) *Builder {
	return b.emit(Instr{Op: OpClflush, Rd: RegNone, Rs1: rs, Rs2: RegNone, Rs3: RegNone, Disp: disp})
}

// Rdtsc emits rd <- cycle counter.
func (b *Builder) Rdtsc(rd Reg) *Builder {
	return b.emit(Instr{Op: OpRdtsc, Rd: rd, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// HFI instructions.

// HfiEnter emits hfi_enter with rs pointing at a sandbox_t structure.
func (b *Builder) HfiEnter(rs Reg) *Builder {
	return b.emit(Instr{Op: OpHfiEnter, Rd: RegNone, Rs1: rs, Rs2: RegNone, Rs3: RegNone})
}

// HfiExit emits hfi_exit.
func (b *Builder) HfiExit() *Builder {
	return b.emit(Instr{Op: OpHfiExit, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// HfiReenter emits hfi_reenter.
func (b *Builder) HfiReenter() *Builder {
	return b.emit(Instr{Op: OpHfiReenter, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// HfiSetRegion emits hfi_set_region(region, *rs).
func (b *Builder) HfiSetRegion(region uint8, rs Reg) *Builder {
	return b.emit(Instr{Op: OpHfiSetRegion, Rd: RegNone, Rs1: RegNone, Rs2: rs, Rs3: RegNone, Imm: int64(region)})
}

// HfiGetRegion emits hfi_get_region(region, *rs).
func (b *Builder) HfiGetRegion(region uint8, rs Reg) *Builder {
	return b.emit(Instr{Op: OpHfiGetRegion, Rd: RegNone, Rs1: RegNone, Rs2: rs, Rs3: RegNone, Imm: int64(region)})
}

// HfiClearRegion emits hfi_clear_region(region).
func (b *Builder) HfiClearRegion(region uint8) *Builder {
	return b.emit(Instr{Op: OpHfiClearRegion, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Imm: int64(region)})
}

// HfiClearAll emits hfi_clear_all_regions.
func (b *Builder) HfiClearAll() *Builder {
	return b.emit(Instr{Op: OpHfiClearAll, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone})
}

// Xsave emits a context save (including HFI registers) to the area at rs.
func (b *Builder) Xsave(rs Reg) *Builder {
	return b.emit(Instr{Op: OpXsave, Rd: RegNone, Rs1: rs, Rs2: RegNone, Rs3: RegNone})
}

// Xrstor emits a context restore (including HFI registers) from the area at rs.
func (b *Builder) Xrstor(rs Reg) *Builder {
	return b.emit(Instr{Op: OpXrstor, Rd: RegNone, Rs1: rs, Rs2: RegNone, Rs3: RegNone})
}

// Raw emits a pre-built instruction unchanged. Used by instrumentation
// passes that rewrite programs.
func (b *Builder) Raw(i Instr) *Builder { return b.emit(i) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Build resolves all label references and returns the assembled Program.
func (b *Builder) Build() *Program {
	for _, f := range b.fixups {
		addr, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("isa: undefined label %q", f.label))
		}
		b.instrs[f.idx].Target = addr
	}
	syms := make(map[string]uint64, len(b.labels))
	for name, addr := range b.labels {
		syms[name] = addr
	}
	return &Program{Base: b.base, Instrs: b.instrs, Symbols: syms}
}

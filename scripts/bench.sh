#!/bin/sh
# scripts/bench.sh — the performance snapshot behind `make bench`.
#
# Runs the interpreter hot-loop microbenchmarks and the hfibench `micro`
# experiment (wasm-workload throughput + shared-image provisioning cost) and
# records everything machine-readable in BENCH_PR3.json, alongside the
# pre-PR baseline so the speedup is visible without checking out history.
# Then the host-call boundary snapshot: BenchmarkHostcallRoundTrip (host
# wall ns, cost-modeled sim-ns, marshalled bytes — the marshalling fast
# path must report 0 allocs/op) plus `hfibench -exp hostcall -json`, into
# BENCH_PR6.json. Finally the proof-fact elision snapshot: `hfibench -exp
# facts -json` (checks/instr with the verifier facts ignored vs trusted,
# heap-op coverage, corpus throughput both ways) into BENCH_PR7.json.
#
# Then the tiered-engine snapshot: the warm Sightglass corpus under the
# plain interpreter vs the tiered superinstruction engine plus `hfibench
# -exp tier -json`, into BENCH_PR8.json, gated at >= 3x the BENCH_PR3
# fast-path basis.
#
# The script fails if the hot-loop benchmarks report any allocations; the
# same invariants are enforced as plain tests (TestInterpHotLoopZeroAllocs,
# TestTierHotLoopZeroAllocs) so `make verify` catches regressions without
# running benchmarks.
set -e
cd "$(dirname "$0")/.."

# Pre-PR baseline: BenchmarkInterpMemKernel's harness run on a worktree at
# the parent commit of this PR (same machine class, -benchtime 2s -count 5).
BASELINE_MEDIAN5=50899953
BASELINE_BEST5=56314544

echo "== interpreter microbenchmarks (count=5) =="
out=$(go test -run '^$' -bench 'BenchmarkInterpMemKernel' -benchmem -benchtime 2s -count 5 ./internal/cpu/)
echo "$out" | grep -E 'Benchmark|^ok'

fast_median=$(echo "$out" | awk '/^BenchmarkInterpMemKernel / {print $5}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
slow_median=$(echo "$out" | awk '/^BenchmarkInterpMemKernelNoFastPath/ {print $5}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
allocs=$(echo "$out" | awk '/^BenchmarkInterpMemKernel/ {print $9}' | sort -n | tail -1)

if [ "$allocs" != "0" ]; then
    echo "bench.sh: FAIL: interpreter hot loop reports $allocs allocs/op (want 0)" >&2
    exit 1
fi

speedup=$(awk "BEGIN {printf \"%.2f\", $fast_median / $BASELINE_MEDIAN5}")
echo "interp fast-path median: $fast_median instrs/s ($speedup x pre-PR baseline $BASELINE_MEDIAN5)"

echo "== hfibench -exp micro =="
micro=$(go run ./cmd/hfibench -exp micro -json)

{
    printf '{\n'
    printf '  "baseline_pre_pr": {\n'
    printf '    "benchmark": "BenchmarkInterpMemKernel harness on a worktree at the parent commit (-benchtime 2s -count 5)",\n'
    printf '    "interp_instrs_per_sec_median5": %s,\n' "$BASELINE_MEDIAN5"
    printf '    "interp_instrs_per_sec_best5": %s\n' "$BASELINE_BEST5"
    printf '  },\n'
    printf '  "interp_microbench": {\n'
    printf '    "fast_instrs_per_sec_median5": %s,\n' "$fast_median"
    printf '    "nofastpath_instrs_per_sec_median5": %s,\n' "$slow_median"
    printf '    "allocs_per_op": %s,\n' "$allocs"
    printf '    "speedup_vs_baseline": %s\n' "$speedup"
    printf '  },\n'
    printf '  "hfibench_micro": %s\n' "$micro"
    printf '}\n'
} > BENCH_PR3.json
echo "wrote BENCH_PR3.json"

echo "== hostcall round-trip benchmark (count=5) =="
hc=$(go test -run '^$' -bench 'BenchmarkHostcallRoundTrip' -benchmem -benchtime 1s -count 5 ./internal/hostcall/)
echo "$hc" | grep -E 'Benchmark|^ok'

hc_ns=$(echo "$hc" | awk '/^BenchmarkHostcallRoundTrip/ {print $3}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
hc_sim=$(echo "$hc" | awk '/^BenchmarkHostcallRoundTrip/ {print $7}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
hc_allocs=$(echo "$hc" | awk '/^BenchmarkHostcallRoundTrip/ {print $11}' | sort -n | tail -1)

if [ "$hc_allocs" != "0" ]; then
    echo "bench.sh: FAIL: hostcall marshalling fast path reports $hc_allocs allocs/op (want 0)" >&2
    exit 1
fi

echo "== hfibench -exp hostcall =="
hcexp=$(go run ./cmd/hfibench -exp hostcall -json)

{
    printf '{\n'
    printf '  "hostcall_roundtrip_bench": {\n'
    printf '    "benchmark": "BenchmarkHostcallRoundTrip: 1 KiB random_get through the verified gate under the interpreter (-benchtime 1s -count 5)",\n'
    printf '    "host_wall_ns_per_op_median5": %s,\n' "$hc_ns"
    printf '    "sim_ns_per_op_median5": %s,\n' "$hc_sim"
    printf '    "allocs_per_op": %s\n' "$hc_allocs"
    printf '  },\n'
    printf '  "hfibench_hostcall": %s\n' "$hcexp"
    printf '}\n'
} > BENCH_PR6.json
echo "wrote BENCH_PR6.json"

echo "== hfibench -exp facts =="
factsexp=$(go run ./cmd/hfibench -exp facts -json)

{
    printf '{\n'
    printf '  "facts_elision": %s\n' "$factsexp"
    printf '}\n'
} > BENCH_PR7.json
echo "wrote BENCH_PR7.json"

# Tiered-engine snapshot: the Sightglass corpus under the plain interpreter
# vs the tiered superinstruction engine (cycle-exact, proven by the sandbox
# differential corpus gate), gated against the BENCH_PR3 fast-path basis.
PR3_SIGHTGLASS_FAST=33900000  # BENCH_PR3 hfibench_micro "interp instrs/sec" fast path

echo "== tiered-engine corpus benchmarks (count=5) =="
tout=$(go test -run '^$' -bench 'BenchmarkCorpus' -benchmem -benchtime 2s -count 5 ./internal/tier/)
echo "$tout" | grep -E 'Benchmark|^ok'

tier_median=$(echo "$tout" | awk '/^BenchmarkCorpusTierHFI/ {print $5}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
interp_median=$(echo "$tout" | awk '/^BenchmarkCorpusInterpHFI/ {print $5}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
tier_allocs=$(echo "$tout" | awk '/^BenchmarkCorpusTierHFI/ {print $9}' | sort -n | tail -1)

if [ "$tier_allocs" != "0" ]; then
    echo "bench.sh: FAIL: tiered hot loop reports $tier_allocs allocs/op (want 0)" >&2
    exit 1
fi

tier_vs_pr3=$(awk "BEGIN {printf \"%.2f\", $tier_median / $PR3_SIGHTGLASS_FAST}")
tier_vs_interp=$(awk "BEGIN {printf \"%.2f\", $tier_median / $interp_median}")
if [ "$(awk "BEGIN {print ($tier_vs_pr3 < 3.0)}")" = "1" ]; then
    echo "bench.sh: FAIL: tiered corpus throughput $tier_median instrs/s is ${tier_vs_pr3}x the BENCH_PR3 fast path (want >= 3x)" >&2
    exit 1
fi
echo "tier corpus median: $tier_median instrs/s (${tier_vs_pr3}x BENCH_PR3 fast path, ${tier_vs_interp}x current interpreter)"

echo "== hfibench -exp tier =="
tierexp=$(go run ./cmd/hfibench -exp tier -json)

{
    printf '{\n'
    printf '  "basis_bench_pr3": {\n'
    printf '    "benchmark": "BENCH_PR3 hfibench_micro interp fast path on Sightglass (Memmove/HFI)",\n'
    printf '    "interp_instrs_per_sec": %s\n' "$PR3_SIGHTGLASS_FAST"
    printf '  },\n'
    printf '  "tier_corpus_bench": {\n'
    printf '    "benchmark": "BenchmarkCorpusTierHFI vs BenchmarkCorpusInterpHFI: warm Sightglass corpus under sfi.HFI (-benchtime 2s -count 5)",\n'
    printf '    "interp_instrs_per_sec_median5": %s,\n' "$interp_median"
    printf '    "tier_instrs_per_sec_median5": %s,\n' "$tier_median"
    printf '    "allocs_per_op": %s,\n' "$tier_allocs"
    printf '    "speedup_vs_bench_pr3_fast_path": %s,\n' "$tier_vs_pr3"
    printf '    "speedup_vs_current_interp": %s\n' "$tier_vs_interp"
    printf '  },\n'
    printf '  "hfibench_tier": %s\n' "$tierexp"
    printf '}\n'
} > BENCH_PR8.json
echo "wrote BENCH_PR8.json"

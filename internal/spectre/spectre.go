// Package spectre reproduces the paper's security evaluation (§5.3, Fig 7):
// SafeSide-style Spectre-PHT and TransientFail-style Spectre-BTB attacks run
// against the timing simulator, with and without HFI protection.
//
// The attack is the classic flush+reload gadget: the attacker trains a
// predictor, flushes the bounds variable so the check resolves late, and
// invokes the victim with an out-of-bounds index. Wrong-path execution loads
// the secret and touches a probe-array cache line before the squash; probing
// the 256 candidate lines afterwards recovers the byte. With HFI enabled,
// the data-region check runs before the cache can be touched (§4.1), so the
// speculative out-of-bounds load leaves no trace.
package spectre

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// Guest memory layout for the PoC.
const (
	codeBase    = 0x1000
	array1Base  = 0x100000 // victim's in-bounds array
	sizeAddr    = 0x100100 // array1_size, flushed by the attacker
	probeBase   = 0x180000 // 256 * 512-byte flush+reload receiver
	probeStride = 512
	secretBase  = 0x200000 // application secret, outside HFI regions
)

// Secret is the planted application secret, as in the SafeSide PoC.
const Secret = "It's a s3kr3t!!!"

// Result describes one byte's worth of attack: the probe latency observed
// for each of the 256 candidate values, and the byte recovered (the unique
// sub-threshold line, if any).
type Result struct {
	Latency [256]int
	Leaked  byte
	// Hit is true when exactly the leak signal was observed (some line
	// below the hit threshold outside the trained values).
	Hit bool
}

// Harness owns the machine, victim program and attack orchestration.
type Harness struct {
	M    *cpu.Machine
	Core *cpu.Core
	prog *isa.Program

	// Protected selects the HFI-enabled variant.
	Protected bool
}

// NewPHT builds the Spectre-PHT harness. If protected, the victim runs
// inside an HFI sandbox whose data regions cover the arrays but not the
// secret.
func NewPHT(protected bool) (*Harness, error) {
	h := &Harness{M: cpu.NewMachine(), Protected: protected}
	h.Core = cpu.NewCore(h.M)

	// Victim gadget (in-place Spectre-PHT, as in Google SafeSide):
	//   if (x < array1_size) { y = probe[array1[x] * 512]; }
	b := isa.NewBuilder(codeBase)
	b.Label("victim")
	b.MovImm(isa.R5, sizeAddr)
	b.Load(8, isa.R2, isa.R5, isa.RegNone, 1, 0) // array1_size (slow when flushed)
	b.Br(isa.CondGEU, isa.R1, isa.R2, "out")     // bounds check
	b.MovImm(isa.R6, array1Base)
	b.Load(1, isa.R3, isa.R6, isa.R1, 1, 0) // array1[x] — or the secret
	b.ShlImm(isa.R3, isa.R3, 9)
	b.MovImm(isa.R7, probeBase)
	b.Load(1, isa.R4, isa.R7, isa.R3, 1, 0) // touch probe line
	b.Label("out")
	b.Halt()
	h.prog = b.Build()

	if err := h.setup(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Harness) setup() error {
	m := h.M
	if err := m.LoadProgram(h.prog); err != nil {
		return err
	}
	rw := kernel.ProtRead | kernel.ProtWrite
	for _, r := range [][2]uint64{
		{array1Base, 0x10000}, // array1 + size variable
		{probeBase, 0x40000},  // probe array
		{secretBase, 0x1000},  // the secret page
	} {
		if err := m.AS.MapFixed(r[0], r[1], rw); err != nil {
			return err
		}
	}
	// Plant data: array1 holds small values 1..16; the secret sits at
	// secretBase, which the malicious index reaches relative to array1.
	for i := 0; i < 16; i++ {
		m.Mem().StoreByte(array1Base+uint64(i), byte(i%16)+1)
	}
	m.Mem().Write(sizeAddr, 8, 16)
	m.Mem().WriteBytes(secretBase, []byte(Secret))

	if h.Protected {
		// The trusted runtime confines the victim: code region over the
		// gadget, data regions over array1/size and the probe array. The
		// secret is in no region, so even speculative access is blocked.
		if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
			BasePrefix: codeBase &^ 0xfff, LSBMask: 0xfff, Exec: true,
		}); f != nil {
			return fmt.Errorf("code region: %v", f)
		}
		if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{
			BasePrefix: array1Base, LSBMask: 0xffff, Read: true, Write: true,
		}); f != nil {
			return fmt.Errorf("data region 0: %v", f)
		}
		if f := m.HFI.SetDataRegion(1, hfi.ImplicitRegion{
			BasePrefix: probeBase, LSBMask: 0x7ffff, Read: true, Write: true,
		}); f != nil {
			return fmt.Errorf("data region 1: %v", f)
		}
		if _, f := m.HFI.Enter(hfi.Config{Hybrid: true}); f != nil {
			return fmt.Errorf("enter: %v", f)
		}
	}
	return nil
}

// callVictim runs the victim gadget once with index x. Faults are expected
// in the protected runs if speculation reaches the commit point; the signal
// handler resumes at the gadget's halt.
func (h *Harness) callVictim(x uint64) {
	m := h.M
	m.Kern.Sigsegv = func(kernel.SigInfo) uint64 {
		// The runtime re-enters the sandbox and resumes past the gadget.
		if h.Protected && !m.HFI.Enabled {
			m.HFI.Reenter()
		}
		return h.prog.Entry("out")
	}
	m.PC = h.prog.Entry("victim")
	m.Regs[isa.R1] = x
	h.Core.Run(1_000_000)
}

// HitThreshold separates cached from uncached probe latencies.
const HitThreshold = 50

// AttackByte leaks the byte at offset off of the secret. It returns the
// per-candidate latencies and the recovered byte.
func (h *Harness) AttackByte(off int) Result {
	m := h.M
	maliciousX := uint64(secretBase) + uint64(off) - array1Base

	// Train the bounds-check branch in-bounds.
	for i := 0; i < 16; i++ {
		h.callVictim(uint64(i % 8))
	}
	// Flush the probe array and the bounds variable; keep the secret warm
	// (the victim application recently used it).
	for i := 0; i < 256; i++ {
		m.Hier.Flush(probeBase + uint64(i)*probeStride)
	}
	m.Hier.Flush(sizeAddr)
	m.Hier.LoadLatency(secretBase + uint64(off))

	// One malicious call.
	h.callVictim(maliciousX)

	// Reload: measure each candidate line.
	var res Result
	best, bestLat := -1, 1<<30
	for i := 0; i < 256; i++ {
		lat := m.Hier.Lat.Mem
		if m.Hier.Probe(probeBase + uint64(i)*probeStride) {
			lat = m.Hier.Lat.L1
		}
		res.Latency[i] = lat
		if lat < HitThreshold && lat < bestLat {
			// Ignore the training values 1..16 when attributing the leak.
			if i > 16 {
				best, bestLat = i, lat
			}
		}
	}
	if best >= 0 {
		res.Leaked = byte(best)
		res.Hit = true
	}
	return res
}

// LeakString attacks each byte of the secret in turn and returns the
// recovered string (unrecovered bytes read as '?') plus per-byte results.
func (h *Harness) LeakString(n int) (string, []Result) {
	out := make([]byte, n)
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		r := h.AttackByte(i)
		results[i] = r
		if r.Hit {
			out[i] = r.Leaked
		} else {
			out[i] = '?'
		}
	}
	return string(out), results
}

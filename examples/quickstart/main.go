// Quickstart: build a tiny Wasm-like module, instantiate it inside an HFI
// sandbox, run it, and watch HFI's explicit-region bound trap an
// out-of-bounds access.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

func main() {
	// 1. A module: run(x) stores x at heap[64], reads it back, doubles it.
	mod := wasm.NewModule("quickstart", 1, 4) // 64 KiB heap, growable to 256 KiB
	f := mod.Func("run", 1)
	x := f.Param(0)
	idx := f.NewReg()
	f.MovImm(idx, 64)
	f.Store(8, idx, 0, x)
	f.Load(8, x, idx, 0)
	f.Add(x, x, x)
	f.Ret(x)

	// 2. A trusted runtime instantiates it under HFI: the compiler emits
	// hmov accesses against explicit region 0, and the runtime programs
	// the region registers and the entry springboard.
	rt := sandbox.NewRuntime()
	rt.Serialized = true // Spectre-protected transitions (§3.4)
	inst, err := rt.Instantiate(mod, sfi.HFI, wasm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run it on the fast emulation engine.
	eng := cpu.NewInterp(rt.M)
	res, out := inst.Invoke(eng, 0, 21)
	fmt.Printf("run(21) -> %d (stop: %v)\n", out, res.Reason)
	fmt.Printf("HFI transitions: %d enters, %d exits; %d explicit-region checks\n",
		rt.M.HFI.Enters, rt.M.HFI.Exits, rt.M.HFI.ChecksExpl)

	// 4. Out-of-bounds: a guest that stores through an arbitrary index.
	// The explicit region's bound check traps precisely — no guard pages,
	// no 8 GiB address-space reservation.
	oob := wasm.NewModule("oob", 1, 1)
	g := oob.Func("run", 1)
	w := g.NewReg()
	g.MovImm(w, 0xbad)
	g.Store(8, g.Param(0), 0, w)
	g.Ret(w)
	inst2, err := rt.Instantiate(oob, sfi.HFI, wasm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, _ = inst2.Invoke(eng, 0, uint64(2*wasm.PageSize)) // past the 64 KiB heap
	fmt.Printf("oob store: stop=%v fault=%v\n", res.Reason, res.Fault)
	reason, _ := rt.M.HFI.ReadMSR()
	fmt.Printf("MSR records: %v\n", reason)
}

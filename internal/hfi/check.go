package hfi

import "math/bits"

// CheckData performs the implicit data-region check for an ordinary (non
// hmov) access of size bytes at addr. Permissions come from the first
// matching region (§3.2: first-match semantics). The whole access must lie
// inside that first matching region — an access straddling the region edge
// faults, as it would on hardware where the adjacent bytes fail the prefix
// match.
//
// The check is pure with respect to microarchitectural state: hardware runs
// it in parallel with the dtb lookup, and the caller must consult it BEFORE
// updating any cache metadata (§4.1). A nil return means the access is
// allowed. When HFI is disabled the check always passes.
func (s *State) CheckData(addr uint64, size uint8, write bool) *Fault {
	if !s.Enabled {
		return nil
	}
	s.ChecksData++
	last := addr + uint64(size) - 1
	for i := range s.Bank.Data {
		r := &s.Bank.Data[i]
		if !r.Contains(addr) {
			continue
		}
		// First match decides. The access must be fully contained.
		if !r.Contains(last) {
			return s.fault(FaultDataBounds, addr, write)
		}
		if write && !r.Write {
			return s.fault(FaultDataPerm, addr, true)
		}
		if !write && !r.Read {
			return s.fault(FaultDataPerm, addr, false)
		}
		return nil
	}
	return s.fault(FaultDataBounds, addr, write)
}

// DataPageDecision reports whether the implicit data-region decision is
// uniform across every access wholly contained in [page, page+size): the
// same first-matching region (or no region at all) applies to every byte.
// When uniform, read/write carry that region's permissions (both false if
// no region matches). Non-uniform pages — a region boundary crosses the
// window, or an earlier region shadows part of it — are not summarizable
// and must take the per-access CheckData path.
//
// The helper is non-mutating and exists for decision caches (the
// interpreter's 1-entry data-translation cache): a cached positive decision
// derived from a uniform page stays valid until the State's Gen changes.
// Implicit regions are contiguous intervals [BasePrefix, BasePrefix+LSBMask]
// (power-of-two sized and aligned), so overlap tests are interval tests.
func (s *State) DataPageDecision(page, size uint64) (read, write, uniform bool) {
	if !s.Enabled {
		return true, true, true
	}
	last := page + size - 1
	for i := range s.Bank.Data {
		r := &s.Bank.Data[i]
		if !r.Valid {
			continue
		}
		lo, hi := r.BasePrefix, r.BasePrefix+r.LSBMask
		if hi < page || lo > last {
			continue // disjoint from the window
		}
		if lo <= page && hi >= last {
			// First region reached that intersects the window contains it
			// entirely: first-match semantics give it the whole window.
			return r.Read, r.Write, true
		}
		// Partial overlap: the first-match decision differs within the
		// window.
		return false, false, false
	}
	// No region intersects the window: uniformly out of bounds.
	return false, false, true
}

// PeekData reports whether an access would pass CheckData, without
// mutating MSR or sandbox state. The timing simulator uses this for
// speculative (not yet committed) accesses: a failing speculative access
// must not update the cache, but it must also not architecturally disable
// the sandbox until the instruction reaches commit.
func (s *State) PeekData(addr uint64, size uint8, write bool) bool {
	if !s.Enabled {
		return true
	}
	s.ChecksData++
	last := addr + uint64(size) - 1
	for i := range s.Bank.Data {
		r := &s.Bank.Data[i]
		if !r.Contains(addr) {
			continue
		}
		if !r.Contains(last) {
			return false
		}
		if write {
			return r.Write
		}
		return r.Read
	}
	return false
}

// CheckExec performs the implicit code-region check on an instruction
// fetch at pc. Hardware applies this in parallel with decode; a failing
// fetch is translated into a faulting NOP micro-op so out-of-bounds code
// never executes, speculatively or otherwise (§4.1).
func (s *State) CheckExec(pc uint64) *Fault {
	if !s.Enabled {
		return nil
	}
	s.ChecksCode++
	for i := range s.Bank.Code {
		r := &s.Bank.Code[i]
		if r.Contains(pc) {
			if r.Exec {
				return nil
			}
			return s.fault(FaultCodeBounds, pc, false)
		}
	}
	return s.fault(FaultCodeBounds, pc, false)
}

// ExecPageDecision is CheckExec's analogue of DataPageDecision: it reports
// whether the code-region decision is uniform across every pc in
// [page, page+size) — the same first-matching code region (or none) applies
// to every byte. When uniform, exec carries that region's permission (false
// if no region matches). Non-mutating; exists for the interpreter's 1-entry
// exec-permission cache, whose entries stay valid until Gen changes.
func (s *State) ExecPageDecision(page, size uint64) (exec, uniform bool) {
	if !s.Enabled {
		return true, true
	}
	last := page + size - 1
	for i := range s.Bank.Code {
		r := &s.Bank.Code[i]
		if !r.Valid {
			continue
		}
		lo, hi := r.BasePrefix, r.BasePrefix+r.LSBMask
		if hi < page || lo > last {
			continue // disjoint from the window
		}
		if lo <= page && hi >= last {
			return r.Exec, true
		}
		// Partial overlap: first-match decisions differ within the window.
		return false, false
	}
	return false, true
}

// PeekExec reports whether a fetch at pc would pass, without mutating state.
func (s *State) PeekExec(pc uint64) bool {
	if !s.Enabled {
		return true
	}
	s.ChecksCode++
	for i := range s.Bank.Code {
		r := &s.Bank.Code[i]
		if r.Contains(pc) {
			return r.Exec
		}
	}
	return false
}

// ExplicitEA computes and checks the effective address of an hmov access
// against explicit region hreg (§4.2). Mirroring the hardware:
//
//  1. the base operand is ignored and replaced with the region base;
//  2. index and displacement must be non-negative (sign-bit checks);
//  3. offset = index*scale + disp must not overflow;
//  4. the access [offset, offset+size) must satisfy offset+size <= bound,
//     which hardware validates with a single 32-bit comparator thanks to
//     the large/small alignment constraints.
//
// On success it returns the absolute effective address. Failures record the
// MSR and disable the sandbox exactly like implicit-region faults. hmov
// outside HFI mode is architecturally undefined; we trap it as a privileged
// fault so misuse is caught loudly.
func (s *State) ExplicitEA(hreg int, index uint64, scale uint8, disp int64, size uint8, write bool) (uint64, *Fault) {
	if !s.Enabled {
		return 0, s.fault(FaultPrivileged, 0, write)
	}
	s.ChecksExpl++
	if hreg < 0 || hreg >= NumExplicitRegions {
		return 0, s.fault(FaultExplicitInvalid, 0, write)
	}
	r := &s.Bank.Expl[hreg]
	if !r.Valid {
		return 0, s.fault(FaultExplicitInvalid, 0, write)
	}
	if disp < 0 || int64(index) < 0 {
		return 0, s.fault(FaultExplicitNegative, r.Base, write)
	}
	hi, scaled := bits.Mul64(index, uint64(scale))
	if hi != 0 {
		return 0, s.fault(FaultExplicitOverflow, r.Base, write)
	}
	offset, c := bits.Add64(scaled, uint64(disp), 0)
	if c != 0 {
		return 0, s.fault(FaultExplicitOverflow, r.Base, write)
	}
	end, c := bits.Add64(offset, uint64(size), 0)
	if c != 0 || end > r.Bound {
		return 0, s.fault(FaultExplicitBounds, r.Base+offset, write)
	}
	if write && !r.Write {
		return 0, s.fault(FaultExplicitPerm, r.Base+offset, true)
	}
	if !write && !r.Read {
		return 0, s.fault(FaultExplicitPerm, r.Base+offset, false)
	}
	return r.Base + offset, nil
}

// PeekExplicitEA is the speculative (non-mutating) variant of ExplicitEA:
// it returns the effective address and whether the access would be allowed.
func (s *State) PeekExplicitEA(hreg int, index uint64, scale uint8, disp int64, size uint8, write bool) (uint64, bool) {
	if !s.Enabled || hreg < 0 || hreg >= NumExplicitRegions {
		return 0, false
	}
	s.ChecksExpl++
	r := &s.Bank.Expl[hreg]
	if !r.Valid || disp < 0 || int64(index) < 0 {
		return 0, false
	}
	hi, scaled := bits.Mul64(index, uint64(scale))
	if hi != 0 {
		return 0, false
	}
	offset, c := bits.Add64(scaled, uint64(disp), 0)
	if c != 0 {
		return 0, false
	}
	end, c := bits.Add64(offset, uint64(size), 0)
	if c != 0 || end > r.Bound {
		return 0, false
	}
	if write && !r.Write || !write && !r.Read {
		return 0, false
	}
	return r.Base + offset, true
}

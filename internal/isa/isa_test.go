package isa

import (
	"testing"
	"testing/quick"
)

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Jmp("fwd") // forward reference
	b.Nop()
	b.Label("fwd")
	b.Br(CondEQ, R0, R1, "fwd") // backward reference
	b.Halt()
	p := b.Build()
	if p.Instrs[0].Target != 0x1008 {
		t.Fatalf("forward target = %#x", p.Instrs[0].Target)
	}
	if p.Instrs[2].Target != 0x1008 {
		t.Fatalf("backward target = %#x", p.Instrs[2].Target)
	}
	if p.Entry("fwd") != 0x1008 {
		t.Fatalf("Entry = %#x", p.Entry("fwd"))
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("duplicate label", func() {
		b := NewBuilder(0)
		b.Label("x")
		b.Label("x")
	})
	expectPanic("undefined label", func() {
		b := NewBuilder(0)
		b.Jmp("nowhere")
		b.Build()
	})
	expectPanic("misaligned base", func() { NewBuilder(2) })
	expectPanic("bad size", func() { NewBuilder(0).Load(3, R0, R1, RegNone, 1, 0) })
	expectPanic("bad scale", func() { NewBuilder(0).Load(4, R0, R1, R2, 3, 0) })
	expectPanic("bad hreg", func() { NewBuilder(0).HLoad(4, 8, R0, R1, 1, 0) })
}

func TestProgramAt(t *testing.T) {
	b := NewBuilder(0x2000)
	b.Nop()
	b.Halt()
	p := b.Build()
	if p.At(0x2000) == nil || p.At(0x2004) == nil {
		t.Fatal("in-range lookup failed")
	}
	if p.At(0x2008) != nil {
		t.Fatal("past-end lookup succeeded")
	}
	if p.At(0x2002) != nil {
		t.Fatal("misaligned lookup succeeded")
	}
	if p.At(0x1ffc) != nil {
		t.Fatal("before-start lookup succeeded")
	}
	if p.Size() != 8 || p.End() != 0x2008 {
		t.Fatalf("size=%d end=%#x", p.Size(), p.End())
	}
}

// TestCondEvalProperty checks every condition against its reference
// semantics.
func TestCondEvalProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		sa, sb := int64(a), int64(b)
		checks := []struct {
			c    Cond
			want bool
		}{
			{CondEQ, a == b}, {CondNE, a != b},
			{CondLT, sa < sb}, {CondGE, sa >= sb},
			{CondGT, sa > sb}, {CondLE, sa <= sb},
			{CondLTU, a < b}, {CondGEU, a >= b},
			{CondGTU, a > b}, {CondLEU, a <= b},
		}
		for _, ch := range checks {
			if ch.c.Eval(a, b) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrClassPredicates(t *testing.T) {
	ld := Instr{Op: OpLoad}
	st := Instr{Op: OpHStore}
	br := Instr{Op: OpBr}
	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() {
		t.Fatal("load classification")
	}
	if !st.IsMem() || !st.IsStore() || st.IsLoad() || !st.IsHFI() {
		t.Fatal("hstore classification")
	}
	if !br.IsBranch() || br.IsMem() {
		t.Fatal("branch classification")
	}
	for _, op := range []Op{OpHfiEnter, OpHfiExit, OpHfiSetRegion, OpHLoad} {
		if !(&Instr{Op: op}).IsHFI() {
			t.Fatalf("%v not classified as HFI", op)
		}
	}
}

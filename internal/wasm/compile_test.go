package wasm

import (
	"strings"
	"testing"

	"hfi/internal/isa"
	"hfi/internal/sfi"
)

func testLayout() Layout {
	return Layout{CodeBase: 0x10000, HeapBase: 0x200000, StackBase: 0x100000,
		StackSize: 0x10000, GlobalBase: 0x120000}
}

func TestCompileRequiresRun(t *testing.T) {
	m := NewModule("norun", 1, 1)
	f := m.Func("other", 0)
	f.Ret(VNone)
	if _, err := Compile(m, sfi.HFI, testLayout(), Options{}); err == nil {
		t.Fatal("module without run compiled")
	}
}

func TestMaskingRequiresPow2(t *testing.T) {
	m := NewModule("np2", 3, 3)
	f := m.Func("run", 0)
	f.Ret(VNone)
	if _, err := Compile(m, sfi.Masking, testLayout(), Options{}); err == nil {
		t.Fatal("masking accepted a non-power-of-two memory")
	}
	m2 := NewModule("p2", 4, 4)
	f2 := m2.Func("run", 0)
	f2.Ret(VNone)
	if _, err := Compile(m2, sfi.Masking, testLayout(), Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestSwivelAddsCodeAndFence(t *testing.T) {
	build := func(opts Options) *Compiled {
		m := NewModule("sw", 1, 1)
		f := m.Func("run", 0)
		v := f.NewReg()
		f.MovImm(v, 0)
		f.Label("l")
		f.AddImm(v, v, 1)
		f.BrImm(isa.CondLT, v, 10, "l")
		f.Ret(v)
		c, err := Compile(m, sfi.GuardPages, testLayout(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	stock := build(Options{})
	hard := build(Options{Swivel: true})
	if hard.BinaryBytes <= stock.BinaryBytes {
		t.Fatalf("Swivel build not larger: %d vs %d", hard.BinaryBytes, stock.BinaryBytes)
	}
	foundFence := false
	for i := range hard.Prog.Instrs {
		if hard.Prog.Instrs[i].Op == isa.OpFence {
			foundFence = true
		}
	}
	if !foundFence {
		t.Fatal("Swivel build has no entry fence")
	}
}

func TestSchemeInstructionFootprint(t *testing.T) {
	build := func(scheme sfi.Scheme) *Compiled {
		m := NewModule("fp", 1, 1)
		f := m.Func("run", 0)
		v := f.NewReg()
		f.MovImm(v, 0)
		f.Load(4, v, v, 0)
		f.Store(4, v, 8, v)
		f.Ret(v)
		c, err := Compile(m, scheme, testLayout(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	guard := build(sfi.GuardPages)
	bounds := build(sfi.BoundsCheck)
	mask := build(sfi.Masking)
	hfiC := build(sfi.HFI)

	// Two accesses: bounds adds 2 instrs each plus the bound-register
	// init in the entry stub; masking adds 1 per access plus the mask
	// init. HFI adds none and drops the heap-base setup entirely.
	if got, want := bounds.Prog.Size()-guard.Prog.Size(), uint64((2*2+1)*isa.InstrBytes); got != want {
		t.Fatalf("bounds footprint +%d bytes, want +%d", got, want)
	}
	if got, want := mask.Prog.Size()-guard.Prog.Size(), uint64((2*1+1)*isa.InstrBytes); got != want {
		t.Fatalf("mask footprint +%d bytes, want +%d", got, want)
	}
	// HFI drops the heap-base stub setup but adds the hfi_exit on the
	// transition out, so it is never larger than guard pages.
	if hfiC.Prog.Size() > guard.Prog.Size() {
		t.Fatalf("HFI build larger than guard pages: %d vs %d", hfiC.Prog.Size(), guard.Prog.Size())
	}

	// HFI code accesses the heap exclusively through hmov.
	var hloads, hstores int
	for i := range hfiC.Prog.Instrs {
		switch hfiC.Prog.Instrs[i].Op {
		case isa.OpHLoad:
			hloads++
		case isa.OpHStore:
			hstores++
		}
	}
	if hloads != 1 || hstores != 1 {
		t.Fatalf("hmov counts: %d loads, %d stores; want 1 and 1", hloads, hstores)
	}
}

func TestSpillWeightsPreferInnerLoops(t *testing.T) {
	m := NewModule("w", 1, 1)
	f := m.Func("run", 0)
	outer := f.NewReg()
	inner := f.NewReg()
	coldReg := f.NewReg()
	f.MovImm(coldReg, 1)
	f.MovImm(outer, 0)
	f.Label("o")
	f.MovImm(inner, 0)
	f.Label("i")
	f.AddImm(inner, inner, 1)
	f.BrImm(isa.CondLT, inner, 10, "i")
	f.AddImm(outer, outer, 1)
	f.BrImm(isa.CondLT, outer, 10, "o")
	f.Ret(coldReg)

	w := spillWeights(f)
	if !(w[inner] > w[outer] && w[outer] > w[coldReg]) {
		t.Fatalf("weights inner=%d outer=%d cold=%d; want inner > outer > cold",
			w[inner], w[outer], w[coldReg])
	}
}

func TestCallArgCountMismatch(t *testing.T) {
	m := NewModule("args", 1, 1)
	callee := m.Func("f", 2)
	callee.Ret(callee.Param(0))
	run := m.Func("run", 0)
	v := run.NewReg()
	run.MovImm(v, 1)
	run.Call("f", v, v) // one arg, callee wants two
	run.Ret(v)
	if _, err := Compile(m, sfi.HFI, testLayout(), Options{}); err == nil {
		t.Fatal("arg-count mismatch accepted")
	}
	if _, err := Compile(m, sfi.HFI, testLayout(), Options{}); err != nil &&
		!strings.Contains(err.Error(), "args") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCallUnknownFunction(t *testing.T) {
	m := NewModule("unk", 1, 1)
	run := m.Func("run", 0)
	run.Call("missing", VNone)
	run.Ret(VNone)
	if _, err := Compile(m, sfi.HFI, testLayout(), Options{}); err == nil {
		t.Fatal("call to unknown function accepted")
	}
}

func TestLayoutIndependentCodeSize(t *testing.T) {
	// The sandbox runtime compiles twice (probe + final); the sizes must
	// match or the code block would be mis-sized.
	build := func(lay Layout) uint64 {
		m := NewModule("sz", 1, 4)
		f := m.Func("run", 0)
		v := f.NewReg()
		g := f.NewReg()
		f.MovImm(v, 1)
		f.Grow(g, v)
		f.Store(4, v, 0, g)
		f.Ret(g)
		c, err := Compile(m, sfi.GuardPages, lay, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c.Prog.Size()
	}
	a := build(testLayout())
	b := build(Layout{CodeBase: 0xabcd000, HeapBase: 0x50000000, StackBase: 0x60000000,
		StackSize: 0x4000, GlobalBase: 0x70000000})
	if a != b {
		t.Fatalf("code size depends on layout: %d vs %d", a, b)
	}
}

// Package workloads defines every guest program the evaluation runs:
// the Sightglass-like microbenchmark suite (Fig 2), the SPEC-like macro
// kernels (Fig 3), the Firefox library-sandboxing workloads (Fig 4, §6.2),
// the FaaS tenant functions (Table 1), and the OpenSSL-like crypto kernel
// of the NGINX experiment (Fig 5).
//
// Workloads are written once against the wasm IR and compiled under each
// isolation scheme, mirroring §5.1's methodology: identical source,
// different enforcement. Each kernel returns a checksum so correctness is
// verified across schemes and engines.
package workloads

import (
	"fmt"

	"hfi/internal/isa"
	"hfi/internal/wasm"
)

// Workload names a module generator with metadata.
type Workload struct {
	Name string
	// Build constructs the module. scale stretches the iteration count;
	// 1 is the default size used in the benchmarks.
	Build func(scale int) *wasm.Module
	// Class describes the dominant behaviour, used in reports.
	Class string
}

// rotl32 emits dst = rotate-left-32(src, n) using the i32 ops, clobbering
// tmp. It is the workhorse of the crypto kernels.
func rotl32(f *wasm.Fn, dst, src, tmp wasm.VReg, n int64) {
	f.Shl32Imm(tmp, src, n)
	f.Shr32Imm(dst, src, 32-n)
	f.Or32(dst, dst, tmp)
}

// Sightglass returns the 16-kernel microbenchmark suite used for the
// Fig 2 emulation-accuracy experiment, modeled on the Sightglass suite
// (crypto, math, string manipulation, control flow).
func Sightglass() []Workload {
	return []Workload{
		{"blake3-scalar", Blake3Scalar, "crypto mixing"},
		{"ackermann", Ackermann, "recursion"},
		{"base64", Base64, "table lookup + bytes"},
		{"ctype", Ctype, "byte classification"},
		{"fib2", Fib2, "recursion"},
		{"gimli", Gimli, "permutation"},
		{"keccak", Keccak, "wide permutation"},
		{"memmove", Memmove, "bulk copy"},
		{"minicsv", MiniCSV, "branchy parsing"},
		{"nestedloop", NestedLoop, "control flow"},
		{"random", Random, "PRNG arithmetic"},
		{"ratelimit", RateLimit, "branchy accounting"},
		{"sieve", Sieve, "bit array"},
		{"switch", Switch, "dense branching"},
		{"xblabla20", XBlabla20, "ARX rounds"},
		{"xchacha20", XChacha20, "ARX rounds"},
	}
}

// Blake3Scalar runs BLAKE3-style G-function mixing over a 16-word state.
func Blake3Scalar(scale int) *wasm.Module {
	m := wasm.NewModule("blake3-scalar", 1, 4)
	f := m.Func("run", 0)
	// State in registers: 8 words (compressed model of the 16-word state).
	s := make([]wasm.VReg, 8)
	for i := range s {
		s[i] = f.NewReg()
		f.MovImm(s[i], int64(0x6a09e667>>uint(i)|1))
	}
	tmp := f.NewReg()
	i := f.NewReg()
	pp := addPads(f, 4)
	f.MovImm(i, 0)
	f.Label("round")
	// Two G-function halves: a += b; d ^= a; d = rotl(d, 16); ...
	g := func(a, b, c, d wasm.VReg, r1, r2 int64) {
		f.Add32(a, a, b)
		f.Xor32(d, d, a)
		rotl32(f, d, d, tmp, r1)
		f.Add32(c, c, d)
		f.Xor32(b, b, c)
		rotl32(f, b, b, tmp, r2)
	}
	g(s[0], s[4], s[1], s[5], 16, 12)
	g(s[2], s[6], s[3], s[7], 8, 7)
	g(s[0], s[5], s[2], s[7], 16, 12)
	g(s[1], s[4], s[3], s[6], 8, 7)
	pp.touchGated(f, i, 0x7)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(6000*scale), "round")
	acc := s[0]
	for _, r := range s[1:] {
		f.Xor32(acc, acc, r)
	}
	pp.fold(f, acc)
	f.Ret(acc)
	return m
}

// Ackermann computes ackermann(2, n) recursively.
func Ackermann(scale int) *wasm.Module {
	m := wasm.NewModule("ackermann", 1, 1)
	ack := m.Func("ack", 2)
	{
		mm, n := ack.Param(0), ack.Param(1)
		t := ack.NewReg()
		ack.BrImm(isa.CondNE, mm, 0, "m_nonzero")
		ack.AddImm(t, n, 1)
		ack.Ret(t)
		ack.Label("m_nonzero")
		ack.BrImm(isa.CondNE, n, 0, "n_nonzero")
		ack.SubImm(t, mm, 1)
		ack.MovImm(n, 1)
		ack.Call("ack", t, t, n)
		ack.Ret(t)
		ack.Label("n_nonzero")
		ack.SubImm(t, n, 1)
		ack.Call("ack", t, mm, t)
		ack.SubImm(mm, mm, 1)
		ack.Call("ack", t, mm, t)
		ack.Ret(t)
	}
	run := m.Func("run", 0)
	{
		a, b := run.NewReg(), run.NewReg()
		acc := run.NewReg()
		i := run.NewReg()
		run.MovImm(acc, 0)
		run.MovImm(i, 0)
		run.Label("loop")
		run.MovImm(a, 2)
		run.MovImm(b, 6)
		run.Call("ack", a, a, b)
		run.Add(acc, acc, a)
		run.AddImm(i, i, 1)
		run.BrImm(isa.CondLT, i, int64(40*scale), "loop")
		run.Ret(acc)
	}
	return m
}

// Base64 encodes a buffer with the standard alphabet via table lookups.
func Base64(scale int) *wasm.Module {
	m := wasm.NewModule("base64", 1, 4)
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	m.AddData(0, []byte(alphabet))
	// Input at 1024, output at 16384.
	input := make([]byte, 3000)
	for i := range input {
		input[i] = byte(i*7 + 13)
	}
	m.AddData(1024, input)
	f := m.Func("run", 0)
	rep := f.NewReg()
	f.MovImm(rep, 0)
	f.Label("again")
	src := f.NewReg()
	dst := f.NewReg()
	b0, b1, b2 := f.NewReg(), f.NewReg(), f.NewReg()
	idx, ch := f.NewReg(), f.NewReg()
	f.MovImm(src, 1024)
	f.MovImm(dst, 16384)
	f.Label("enc")
	f.Load(1, b0, src, 0)
	f.Load(1, b1, src, 1)
	f.Load(1, b2, src, 2)
	// 4 output symbols.
	f.Shr32Imm(idx, b0, 2)
	f.Load(1, ch, idx, 0)
	f.Store(1, dst, 0, ch)
	f.And32Imm(idx, b0, 3)
	f.Shl32Imm(idx, idx, 4)
	f.Shr32Imm(ch, b1, 4)
	f.Or32(idx, idx, ch)
	f.Load(1, ch, idx, 0)
	f.Store(1, dst, 1, ch)
	f.And32Imm(idx, b1, 15)
	f.Shl32Imm(idx, idx, 2)
	f.Shr32Imm(ch, b2, 6)
	f.Or32(idx, idx, ch)
	f.Load(1, ch, idx, 0)
	f.Store(1, dst, 2, ch)
	f.And32Imm(idx, b2, 63)
	f.Load(1, ch, idx, 0)
	f.Store(1, dst, 3, ch)
	f.Add32Imm(src, src, 3)
	f.Add32Imm(dst, dst, 4)
	f.BrImm(isa.CondLT, src, 1024+3000, "enc")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(10*scale), "again")
	// Checksum the output.
	acc := b0
	f.MovImm(acc, 0)
	f.MovImm(src, 16384)
	f.Label("ck")
	f.Load(4, ch, src, 0)
	f.Add32(acc, acc, ch)
	f.Add32Imm(src, src, 4)
	f.BrImm(isa.CondLT, src, 16384+4000, "ck")
	f.Ret(acc)
	return m
}

// Ctype classifies a byte stream (alpha/digit/space) with compare chains.
func Ctype(scale int) *wasm.Module {
	m := wasm.NewModule("ctype", 1, 4)
	text := make([]byte, 4096)
	for i := range text {
		text[i] = byte(32 + (i*31)%95)
	}
	m.AddData(0, text)
	f := m.Func("run", 0)
	rep, i, c := f.NewReg(), f.NewReg(), f.NewReg()
	alpha, digit, space := f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(rep, 0)
	f.MovImm(alpha, 0)
	f.MovImm(digit, 0)
	f.MovImm(space, 0)
	f.Label("again")
	f.MovImm(i, 0)
	f.Label("scan")
	f.Load(1, c, i, 0)
	f.BrImm(isa.CondLT, c, 'a', "notlower")
	f.BrImm(isa.CondGT, c, 'z', "notlower")
	f.Add32Imm(alpha, alpha, 1)
	f.Jmp("next")
	f.Label("notlower")
	f.BrImm(isa.CondLT, c, 'A', "notupper")
	f.BrImm(isa.CondGT, c, 'Z', "notupper")
	f.Add32Imm(alpha, alpha, 1)
	f.Jmp("next")
	f.Label("notupper")
	f.BrImm(isa.CondLT, c, '0', "notdigit")
	f.BrImm(isa.CondGT, c, '9', "notdigit")
	f.Add32Imm(digit, digit, 1)
	f.Jmp("next")
	f.Label("notdigit")
	f.BrImm(isa.CondNE, c, ' ', "next")
	f.Add32Imm(space, space, 1)
	f.Label("next")
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 4096, "scan")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(25*scale), "again")
	f.Shl32Imm(digit, digit, 8)
	f.Shl32Imm(space, space, 16)
	f.Add32(alpha, alpha, digit)
	f.Add32(alpha, alpha, space)
	f.Ret(alpha)
	return m
}

// Fib2 computes fib(24) by naive recursion, repeatedly.
func Fib2(scale int) *wasm.Module {
	m := wasm.NewModule("fib2", 1, 1)
	fib := m.Func("fib", 1)
	{
		n := fib.Param(0)
		a, b := fib.NewReg(), fib.NewReg()
		fib.BrImm(isa.CondGE, n, 2, "rec")
		fib.Ret(n)
		fib.Label("rec")
		fib.SubImm(a, n, 1)
		fib.Call("fib", a, a)
		fib.SubImm(b, n, 2)
		fib.Call("fib", b, b)
		fib.Add(a, a, b)
		fib.Ret(a)
	}
	run := m.Func("run", 0)
	{
		acc, n, i := run.NewReg(), run.NewReg(), run.NewReg()
		run.MovImm(acc, 0)
		run.MovImm(i, 0)
		run.Label("loop")
		run.MovImm(n, 17)
		run.Call("fib", n, n)
		run.Add(acc, acc, n)
		run.AddImm(i, i, 1)
		run.BrImm(isa.CondLT, i, int64(12*scale), "loop")
		run.Ret(acc)
	}
	return m
}

// Gimli applies the Gimli-like SP-box permutation to a 12-word state in
// memory.
func Gimli(scale int) *wasm.Module {
	m := wasm.NewModule("gimli", 1, 4)
	f := m.Func("run", 0)
	rep, col := f.NewReg(), f.NewReg()
	x, y, z, t := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	tmp := f.NewReg()
	pp := addPads(f, 6)
	// Initialize the state.
	i := f.NewReg()
	f.MovImm(i, 0)
	f.Label("init")
	f.Mul32Imm(x, i, 0x9e3779b9)
	f.Store(4, i, 0, x)
	f.Add32Imm(i, i, 4)
	f.BrImm(isa.CondLT, i, 48, "init")
	f.MovImm(rep, 0)
	f.Label("round")
	f.MovImm(col, 0)
	f.Label("cols")
	f.Load(4, x, col, 0)
	f.Load(4, y, col, 16)
	f.Load(4, z, col, 32)
	rotl32(f, x, x, tmp, 24)
	rotl32(f, y, y, tmp, 9)
	// z' = x ^ (z << 1) ^ ((y & z) << 2)
	f.Shl32Imm(t, z, 1)
	f.Xor32(t, t, x)
	f.And32(tmp, y, z)
	f.Shl32Imm(tmp, tmp, 2)
	f.Xor32(t, t, tmp)
	f.Store(4, col, 32, t)
	// y' = y ^ x ^ ((x | z) << 1)
	f.Or32(tmp, x, z)
	f.Shl32Imm(tmp, tmp, 1)
	f.Xor32(t, y, x)
	f.Xor32(t, t, tmp)
	f.Store(4, col, 16, t)
	// x' = z ^ y ^ ((x & y) << 3)
	f.And32(tmp, x, y)
	f.Shl32Imm(tmp, tmp, 3)
	f.Xor32(t, z, y)
	f.Xor32(t, t, tmp)
	f.Store(4, col, 0, t)
	f.Add32Imm(col, col, 4)
	f.BrImm(isa.CondLT, col, 16, "cols")
	pp.touchGated(f, rep, 0x3)
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(8000*scale), "round")
	f.Load(4, x, col, 0)
	pp.fold(f, x)
	f.Ret(x)
	return m
}

// Keccak runs theta/rho-like steps over a 25-word (u64) state in memory.
func Keccak(scale int) *wasm.Module {
	m := wasm.NewModule("keccak", 1, 4)
	f := m.Func("run", 0)
	i, rep := f.NewReg(), f.NewReg()
	a, b, c := f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(i, 0)
	f.Label("init")
	f.MulImm(a, i, 0x123456789abcdef)
	f.AddImm(a, a, 0x5555)
	f.Store(8, i, 0, a)
	f.AddImm(i, i, 8)
	f.BrImm(isa.CondLT, i, 200, "init")
	f.MovImm(rep, 0)
	f.Label("round")
	// Theta-like: column parity fold.
	f.MovImm(i, 0)
	f.Label("theta")
	f.Load(8, a, i, 0)
	f.Load(8, b, i, 40)
	f.Xor(a, a, b)
	f.Load(8, b, i, 80)
	f.Xor(a, a, b)
	f.Load(8, b, i, 120)
	f.Xor(a, a, b)
	f.Load(8, b, i, 160)
	f.Xor(a, a, b)
	// rho-like rotation by 1 (64-bit via shifts).
	f.ShlImm(c, a, 1)
	f.ShrImm(b, a, 63)
	f.Or(c, c, b)
	f.Store(8, i, 0, c)
	f.AddImm(i, i, 8)
	f.BrImm(isa.CondLT, i, 40, "theta")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(10000*scale), "round")
	f.Load(8, a, i, 0)
	f.Ret(a)
	return m
}

// Memmove copies overlapping buffers back and forth.
func Memmove(scale int) *wasm.Module {
	m := wasm.NewModule("memmove", 2, 4)
	f := m.Func("run", 0)
	rep, i, v := f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(i, 0)
	f.Label("init")
	f.Mul32Imm(v, i, 0x01010101)
	f.Store(8, i, 0, v)
	f.Add32Imm(i, i, 8)
	f.BrImm(isa.CondLT, i, 32768, "init")
	f.MovImm(rep, 0)
	f.Label("again")
	f.MovImm(i, 0)
	f.Label("fwd")
	f.Load(8, v, i, 0)
	f.Store(8, i, 32768, v)
	f.Add32Imm(i, i, 8)
	f.BrImm(isa.CondLT, i, 32768, "fwd")
	f.MovImm(i, 0)
	f.Label("bwd")
	f.Load(8, v, i, 32768+8)
	f.Store(8, i, 0, v)
	f.Add32Imm(i, i, 8)
	f.BrImm(isa.CondLT, i, 32768, "bwd")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(30*scale), "again")
	f.Load(8, v, i, 0)
	f.Ret(v)
	return m
}

// MiniCSV parses a comma/newline-delimited byte buffer, counting fields
// and summing numeric cells.
func MiniCSV(scale int) *wasm.Module {
	m := wasm.NewModule("minicsv", 1, 4)
	var csv []byte
	for r := 0; r < 64; r++ {
		for c := 0; c < 8; c++ {
			csv = append(csv, []byte(fmt.Sprintf("%d", (r*13+c*7)%1000))...)
			if c < 7 {
				csv = append(csv, ',')
			}
		}
		csv = append(csv, '\n')
	}
	m.AddData(0, csv)
	size := int64(len(csv))
	f := m.Func("run", 0)
	rep, i, c := f.NewReg(), f.NewReg(), f.NewReg()
	fields, sum, cur := f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 8)
	f.MovImm(rep, 0)
	f.MovImm(fields, 0)
	f.MovImm(sum, 0)
	f.Label("again")
	f.MovImm(i, 0)
	f.MovImm(cur, 0)
	f.Label("scan")
	f.Load(1, c, i, 0)
	f.BrImm(isa.CondEQ, c, ',', "delim")
	f.BrImm(isa.CondEQ, c, '\n', "delim")
	// cur = cur*10 + digit
	f.Mul32Imm(cur, cur, 10)
	f.Sub32Imm(c, c, '0')
	f.Add32(cur, cur, c)
	f.Jmp("next")
	f.Label("delim")
	f.Add32Imm(fields, fields, 1)
	f.Add32(sum, sum, cur)
	f.MovImm(cur, 0)
	f.Label("next")
	pp.touchGated(f, i, 0x1f)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, size, "scan")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(80*scale), "again")
	f.Shl32Imm(fields, fields, 16)
	f.Add32(sum, sum, fields)
	pp.fold(f, sum)
	f.Ret(sum)
	return m
}

// NestedLoop burns cycles in a triply nested counted loop.
func NestedLoop(scale int) *wasm.Module {
	m := wasm.NewModule("nestedloop", 1, 1)
	f := m.Func("run", 0)
	i, j, k, n := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(n, 0)
	f.MovImm(i, 0)
	f.Label("i")
	f.MovImm(j, 0)
	f.Label("j")
	f.MovImm(k, 0)
	f.Label("k")
	f.Add32Imm(n, n, 1)
	f.Add32Imm(k, k, 1)
	f.BrImm(isa.CondLT, k, 100, "k")
	f.Add32Imm(j, j, 1)
	f.BrImm(isa.CondLT, j, 60, "j")
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(25*scale), "i")
	f.Ret(n)
	return m
}

// Random runs a xorshift64 generator and histograms the low byte.
func Random(scale int) *wasm.Module {
	m := wasm.NewModule("random", 1, 4)
	f := m.Func("run", 0)
	s, t, i, idx, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 9)
	f.MovImm(s, 0x2545F4914F6CDD1D)
	f.MovImm(i, 0)
	f.Label("loop")
	f.ShlImm(t, s, 13)
	f.Xor(s, s, t)
	f.ShrImm(t, s, 7)
	f.Xor(s, s, t)
	f.ShlImm(t, s, 17)
	f.Xor(s, s, t)
	f.AndImm(idx, s, 0xff)
	f.Shl32Imm(idx, idx, 2)
	f.Load(4, v, idx, 0)
	f.Add32Imm(v, v, 1)
	f.Store(4, idx, 0, v)
	pp.touchGated(f, i, 0x3f)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(120_000*scale), "loop")
	pp.fold(f, s)
	f.Ret(s)
	return m
}

// RateLimit simulates a token-bucket limiter over a synthetic request
// stream (branchy accounting, Sightglass's ratelimit).
func RateLimit(scale int) *wasm.Module {
	m := wasm.NewModule("ratelimit", 1, 4)
	f := m.Func("run", 0)
	tokens, now, next, i := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	allowed, denied, seed, t := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(tokens, 100)
	f.MovImm(now, 0)
	f.MovImm(next, 0)
	f.MovImm(allowed, 0)
	f.MovImm(denied, 0)
	f.MovImm(seed, 88172645463325252)
	f.MovImm(i, 0)
	f.Label("loop")
	// Advance time pseudo-randomly.
	f.ShlImm(t, seed, 13)
	f.Xor(seed, seed, t)
	f.ShrImm(t, seed, 7)
	f.Xor(seed, seed, t)
	f.AndImm(t, seed, 7)
	f.Add32(now, now, t)
	// Refill when a period boundary passes.
	f.Br(isa.CondLT, now, next, "norefill")
	f.AddImm(next, now, 16)
	f.MovImm(tokens, 100)
	f.Label("norefill")
	f.BrImm(isa.CondEQ, tokens, 0, "deny")
	f.Sub32Imm(tokens, tokens, 1)
	f.Add32Imm(allowed, allowed, 1)
	f.Jmp("cont")
	f.Label("deny")
	f.Add32Imm(denied, denied, 1)
	f.Label("cont")
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(150_000*scale), "loop")
	f.Shl32Imm(denied, denied, 16)
	f.Add32(allowed, allowed, denied)
	f.Ret(allowed)
	return m
}

// Sieve runs the Sieve of Eratosthenes over a byte array.
func Sieve(scale int) *wasm.Module {
	m := wasm.NewModule("sieve", 1, 4)
	f := m.Func("run", 0)
	const limit = 40000
	rep, i, j, count, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(rep, 0)
	f.Label("again")
	f.MovImm(i, 0)
	f.Label("clear")
	f.MovImm(v, 1)
	f.Store(1, i, 0, v)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, limit, "clear")
	f.MovImm(i, 2)
	f.Label("outer")
	f.Load(1, v, i, 0)
	f.BrImm(isa.CondEQ, v, 0, "skip")
	f.Add32(j, i, i)
	f.Label("mark")
	f.BrImm(isa.CondGEU, j, limit, "skip")
	f.MovImm(v, 0)
	f.Store(1, j, 0, v)
	f.Add32(j, j, i)
	f.Jmp("mark")
	f.Label("skip")
	f.Add32Imm(i, i, 1)
	f.Mul32(v, i, i)
	f.BrImm(isa.CondLT, v, limit, "outer")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(10*scale), "again")
	// Count primes.
	f.MovImm(count, 0)
	f.MovImm(i, 2)
	f.Label("count")
	f.Load(1, v, i, 0)
	f.Add32(count, count, v)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, limit, "count")
	f.Ret(count)
	return m
}

// Switch dispatches through a dense compare chain (the IR has no computed
// goto, matching Wasm's br_table lowered to branches).
func Switch(scale int) *wasm.Module {
	m := wasm.NewModule("switch", 1, 1)
	f := m.Func("run", 0)
	s, t, i, acc, c := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(s, 123456789)
	f.MovImm(acc, 0)
	f.MovImm(i, 0)
	f.Label("loop")
	f.ShlImm(t, s, 13)
	f.Xor(s, s, t)
	f.ShrImm(t, s, 7)
	f.Xor(s, s, t)
	f.AndImm(c, s, 7)
	for k := 0; k < 8; k++ {
		f.BrImm(isa.CondEQ, c, int64(k), fmt.Sprintf("case%d", k))
	}
	f.Jmp("after")
	for k := 0; k < 8; k++ {
		f.Label(fmt.Sprintf("case%d", k))
		f.Add32Imm(acc, acc, int64(k*k+1))
		f.Jmp("after_" + fmt.Sprintf("%d", k))
		f.Label("after_" + fmt.Sprintf("%d", k))
		f.Jmp("after")
	}
	f.Label("after")
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(60_000*scale), "loop")
	f.Ret(acc)
	return m
}

// XBlabla20 is a BLAKE-flavoured ARX round loop (Sightglass's xblabla20).
func XBlabla20(scale int) *wasm.Module {
	return arxKernel("xblabla20", []int64{32, 24, 16, 63}, 8000, scale)
}

// XChacha20 is a ChaCha20-flavoured ARX quarter-round loop.
func XChacha20(scale int) *wasm.Module {
	return arxKernel("xchacha20", []int64{16, 12, 8, 7}, 9000, scale)
}

// arxKernel builds an add-rotate-xor quarter-round loop with the given
// rotation constants.
func arxKernel(name string, rots []int64, iters int64, scale int) *wasm.Module {
	m := wasm.NewModule(name, 1, 4)
	f := m.Func("run", 0)
	a, b, c, d := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	tmp, i := f.NewReg(), f.NewReg()
	f.MovImm(a, 0x61707865)
	f.MovImm(b, 0x3320646e)
	f.MovImm(c, 0x79622d32)
	f.MovImm(d, 0x6b206574)
	f.MovImm(i, 0)
	f.Label("round")
	f.Add32(a, a, b)
	f.Xor32(d, d, a)
	rotl32(f, d, d, tmp, rots[0]%32)
	f.Add32(c, c, d)
	f.Xor32(b, b, c)
	rotl32(f, b, b, tmp, rots[1]%32)
	f.Add32(a, a, b)
	f.Xor32(d, d, a)
	rotl32(f, d, d, tmp, rots[2]%32)
	f.Add32(c, c, d)
	f.Xor32(b, b, c)
	rotl32(f, b, b, tmp, rots[3]%32)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, iters*int64(scale), "round")
	f.Xor32(a, a, b)
	f.Xor32(a, a, c)
	f.Xor32(a, a, d)
	f.Ret(a)
	return m
}

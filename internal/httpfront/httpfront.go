// Package httpfront exposes a host.Server over HTTP: per-tenant invoke
// routes, a drain-aware health endpoint, and a JSON stats endpoint. It is
// the seam where the serving layer's outcome vocabulary becomes wire
// semantics — every host.Status has exactly one documented HTTP code (see
// StatusCode) — and where client disconnects become cancellations: the
// request's http context is passed straight into host.Server.Do, so a
// caller that goes away while its request is queued resolves
// StatusCanceled without ever occupying a worker.
//
// Routes:
//
//	POST /v1/tenants/{tenant}/invoke  run one request (body = guest input;
//	                                  empty body = tenant's synthetic stream)
//	GET  /healthz                     readiness; 503 once draining
//	GET  /statsz                      stats.ServeSummary + per-tenant + counters
package httpfront

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/faas"
	"hfi/internal/host"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

// StatusClientClosedRequest is the nginx-convention code for a request
// whose client disconnected before a response existed. Nobody is usually
// left to read it; it exists so access logs distinguish abandoned
// requests from server failures.
const StatusClientClosedRequest = 499

// Tenant is one routable entry: the workload that backs the URL name and
// the isolation configuration its instances run under.
type Tenant struct {
	Workload workloads.Tenant
	Iso      faas.Config
}

// Front is the HTTP serving layer over one host.Server.
type Front struct {
	host     *host.Server
	reg      map[string]Tenant
	seqs     sync.Map // tenant name → *atomic.Uint64 request sequence
	draining atomic.Bool
	started  time.Time

	// MaxBody bounds an invoke request body (bytes). Defaults to 1 MiB.
	MaxBody int64
}

// New builds a front over srv routing the registered tenants.
func New(srv *host.Server, reg map[string]Tenant) *Front {
	return &Front{host: srv, reg: reg, started: time.Now(), MaxBody: 1 << 20}
}

// Host returns the underlying server (the drain path closes it directly).
func (f *Front) Host() *host.Server { return f.host }

// BeginDrain flips /healthz to 503 so load balancers stop routing here.
// In-flight and queued work is unaffected; the caller follows with
// host.Server.Close (drains the queues) and http.Server.Shutdown.
func (f *Front) BeginDrain() { f.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (f *Front) Draining() bool { return f.draining.Load() }

// Handler returns the route mux.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/invoke", f.invoke)
	mux.HandleFunc("GET /healthz", f.healthz)
	mux.HandleFunc("GET /statsz", f.statsz)
	return mux
}

// StatusCode is the documented host.Status → HTTP mapping:
//
//	StatusOK       200    body is the guest response
//	StatusShed     429    backpressure (queue full or breaker open); Retry-After set
//	StatusRejected 422    program failed static verification — retrying cannot help
//	StatusTimeout  504    fuel budget exhausted mid-run
//	StatusFault    502    guest faulted
//	StatusClosed   503    server draining; Retry-After set
//	StatusCanceled 499    client went away first
func StatusCode(st host.Status) int {
	switch st {
	case host.StatusOK:
		return http.StatusOK
	case host.StatusShed:
		return http.StatusTooManyRequests
	case host.StatusRejected:
		return http.StatusUnprocessableEntity
	case host.StatusTimeout:
		return http.StatusGatewayTimeout
	case host.StatusFault:
		return http.StatusBadGateway
	case host.StatusClosed:
		return http.StatusServiceUnavailable
	case host.StatusCanceled:
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// OutcomeForCode inverts StatusCode for HTTP-driving load generators:
// which outcome class an observed response code counts toward. The bool
// is false for codes outside the mapping (transport errors, 404s).
func OutcomeForCode(code int) (stats.Outcome, bool) {
	switch code {
	case http.StatusOK:
		return stats.OutcomeOK, true
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return stats.OutcomeShed, true
	case http.StatusUnprocessableEntity:
		return stats.OutcomeRejected, true
	case http.StatusGatewayTimeout:
		return stats.OutcomeTimeout, true
	case http.StatusBadGateway:
		return stats.OutcomeFault, true
	case StatusClientClosedRequest:
		return stats.OutcomeCanceled, true
	default:
		return 0, false
	}
}

// errorBody is the JSON envelope of every non-200 invoke response.
type errorBody struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (f *Front) invoke(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	te, ok := f.reg[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Status: "unknown_tenant",
			Error: fmt.Sprintf("no tenant %q registered", name)})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, f.MaxBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Status: "bad_request", Error: err.Error()})
		return
	}
	if int64(len(body)) > f.MaxBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Status: "body_too_large",
			Error: fmt.Sprintf("body exceeds %d bytes", f.MaxBody)})
		return
	}
	opts := []host.RequestOpt{host.WithWorkload(te.Workload), host.WithIso(te.Iso)}
	if len(body) > 0 {
		opts = append(opts, host.WithBody(body))
	}
	resp := f.host.Do(r.Context(), host.NewRequest(name, f.nextSeq(name), opts...))
	f.writeResponse(w, resp)
}

// nextSeq hands out the tenant's next request sequence number — the
// deterministic request identity chaos injection and response hashing
// key on.
func (f *Front) nextSeq(name string) uint64 {
	v, _ := f.seqs.LoadOrStore(name, new(atomic.Uint64))
	return v.(*atomic.Uint64).Add(1) - 1
}

func (f *Front) writeResponse(w http.ResponseWriter, resp host.Response) {
	code := StatusCode(resp.Status)
	if code == http.StatusOK {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(resp.Body)
		return
	}
	switch code {
	case http.StatusTooManyRequests:
		// Backpressure is transient by construction — a breaker half-opens,
		// a queue drains — so tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "5")
	}
	eb := errorBody{Status: resp.Status.String()}
	if resp.Err != nil {
		eb.Error = resp.Err.Error()
		if errors.Is(resp.Err, host.ErrBreakerOpen) {
			eb.Status = "breaker_open"
		}
	}
	writeJSON(w, code, eb)
}

func (f *Front) healthz(w http.ResponseWriter, r *http.Request) {
	if f.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statsz is the /statsz document.
type Statsz struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Draining      bool                  `json:"draining"`
	Serve         stats.ServeSummary    `json:"serve"`
	Tenants       []stats.TenantSummary `json:"tenants"`
	Counters      host.Counters         `json:"counters"`
	// Chaos is the injector's per-class fire counts (including the
	// substrate classes), present only when the host serves with a chaos
	// injector — a clean server omits the key entirely, so scrapers can
	// tell "no chaos configured" from "chaos configured, nothing fired".
	Chaos *chaos.Summary `json:"chaos,omitempty"`
}

func (f *Front) statsz(w http.ResponseWriter, r *http.Request) {
	up := time.Since(f.started)
	writeJSON(w, http.StatusOK, Statsz{
		UptimeSeconds: up.Seconds(),
		Draining:      f.draining.Load(),
		Serve:         f.host.Snapshot(up),
		Tenants:       f.host.TenantSummaries(),
		Counters:      f.host.Counters(),
		Chaos:         f.host.ChaosSummary(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

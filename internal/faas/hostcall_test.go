package faas

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/hostcall"
	"hfi/internal/sfi"
	"hfi/internal/workloads"
)

// hostcallSchemes is every isolation scheme the hostcall tenants must run
// under end-to-end: compile, verify (gate proof included), execute.
func hostcallSchemes() []Config {
	return []Config{
		{Name: "Unsafe", Scheme: sfi.None},
		{Name: "GuardPages", Scheme: sfi.GuardPages},
		{Name: "Bounds", Scheme: sfi.BoundsCheck},
		{Name: "Masking", Scheme: sfi.Masking},
		{Name: "HFI", Scheme: sfi.HFI},
	}
}

func hostcallTenant(t *testing.T, name string) workloads.Tenant {
	t.Helper()
	for _, te := range workloads.HostcallTenants() {
		if te.Name == name {
			return te
		}
	}
	t.Fatalf("no hostcall tenant %q", name)
	return workloads.Tenant{}
}

// TestKVSessionStateful: the kv-session tenant accumulates its counter in
// the world's KV store across invocations of one warm instance, under
// every scheme, and every scheme computes the identical value sequence.
func TestKVSessionStateful(t *testing.T) {
	tenant := hostcallTenant(t, "kv-session")
	const n = 5
	var ref [][]byte
	for _, cfg := range hostcallSchemes() {
		cfg.World = hostcall.NewWorld(42)
		ti, err := Provision(tenant, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if ti.Env == nil {
			t.Fatalf("%s: hostcall tenant provisioned without an Env", cfg.Name)
		}
		var want uint64
		var bodies [][]byte
		for i := 0; i < n; i++ {
			req := tenant.MakeRequest(i)
			for _, b := range req {
				want += uint64(b)
			}
			body, res := ti.ServeRequest(i, 0)
			if res.Reason != cpu.StopHalt {
				t.Fatalf("%s req %d: stop %v fault %v", cfg.Name, i, res.Reason, res.Fault)
			}
			if len(body) != 8 {
				t.Fatalf("%s req %d: response %d bytes, want 8", cfg.Name, i, len(body))
			}
			if got := binary.LittleEndian.Uint64(body); got != want {
				t.Fatalf("%s req %d: counter %d, want %d", cfg.Name, i, got, want)
			}
			bodies = append(bodies, body)
		}
		if ref == nil {
			ref = bodies
		} else {
			for i := range bodies {
				if !bytes.Equal(bodies[i], ref[i]) {
					t.Fatalf("%s req %d: response diverged across schemes", cfg.Name, i)
				}
			}
		}
		// Session state lives in the world, not the heap: a second
		// instance of the same tenant sharing the world continues the
		// counter where the first one left it.
		ti2, err := Provision(tenant, cfg)
		if err != nil {
			t.Fatalf("%s: reprovision: %v", cfg.Name, err)
		}
		req := tenant.MakeRequest(n)
		for _, b := range req {
			want += uint64(b)
		}
		body, res := ti2.ServeBody(req, 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("%s: second instance stop %v", cfg.Name, res.Reason)
		}
		if got := binary.LittleEndian.Uint64(body); got != want {
			t.Fatalf("%s: second instance counter %d, want %d", cfg.Name, got, want)
		}
	}
}

// TestKVSessionTenantIsolation: two tenants sharing one world see disjoint
// KV namespaces — the second tenant's counter starts from zero.
func TestKVSessionTenantIsolation(t *testing.T) {
	world := hostcall.NewWorld(7)
	cfg := Config{Name: "HFI", Scheme: sfi.HFI, World: world}
	a := hostcallTenant(t, "kv-session")
	b := a
	b.Name = "kv-session-b"
	tiA, err := Provision(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tiB, err := Provision(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, res := tiA.ServeRequest(0, 0); res.Reason != cpu.StopHalt {
		t.Fatalf("tenant a: stop %v", res.Reason)
	}
	body, res := tiB.ServeBody([]byte{1}, 0)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("tenant b: stop %v", res.Reason)
	}
	if got := binary.LittleEndian.Uint64(body); got != 1 {
		t.Fatalf("tenant b counter = %d: leaked state from tenant a", got)
	}
}

// TestStreamXformEndToEnd: the streaming tenant consumes the request via
// fd 0 and answers on fd 1; the platform returns the stdout bytes as the
// response body. The transform is a XOR, so it is its own inverse.
func TestStreamXformEndToEnd(t *testing.T) {
	tenant := hostcallTenant(t, "stream-xform")
	if !tenant.Stream {
		t.Fatal("stream-xform is not flagged Stream")
	}
	for _, cfg := range hostcallSchemes() {
		ti, err := Provision(tenant, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		for i := 0; i < 3; i++ {
			req := tenant.MakeRequest(i)
			body, res := ti.ServeBody(req, 0)
			if res.Reason != cpu.StopHalt {
				t.Fatalf("%s req %d: stop %v fault %v", cfg.Name, i, res.Reason, res.Fault)
			}
			if len(body) != len(req) {
				t.Fatalf("%s req %d: streamed %d of %d bytes", cfg.Name, i, len(body), len(req))
			}
			for p := range body {
				if body[p] != req[p]^0x5a {
					t.Fatalf("%s req %d: byte %d = %#x, want %#x", cfg.Name, i, p, body[p], req[p]^0x5a)
				}
			}
		}
	}
}

// TestFanInAggregation: producers publish into four KV slots; every
// response is the aggregate across slots, i.e. the sum of the most recent
// value per slot.
func TestFanInAggregation(t *testing.T) {
	tenant := hostcallTenant(t, "fan-in-agg")
	cfg := Config{Name: "HFI", Scheme: sfi.HFI, World: hostcall.NewWorld(3)}
	ti, err := Provision(tenant, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slots := map[byte]uint64{}
	for i := 0; i < 8; i++ {
		req := tenant.MakeRequest(i)
		var sum uint64
		for _, b := range req {
			sum += uint64(b)
		}
		slots[req[0]&3] = sum
		var want uint64
		for _, v := range slots {
			want += v
		}
		body, res := ti.ServeBody(req, 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("req %d: stop %v", i, res.Reason)
		}
		if got := binary.LittleEndian.Uint64(body); got != want {
			t.Fatalf("req %d: aggregate %d, want %d", i, got, want)
		}
	}
}

// TestHostcallFaultInjectionServing: the chaos fault modes surface to the
// guest as errnos, never as isolation breaches — the request still halts
// normally and the platform stays conservation-clean.
func TestHostcallFaultInjectionServing(t *testing.T) {
	tenant := hostcallTenant(t, "kv-session")
	cfg := Config{Name: "HFI", Scheme: sfi.HFI, World: hostcall.NewWorld(9)}
	ti, err := Provision(tenant, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clean request establishes the counter.
	if _, res := ti.ServeRequest(0, 0); res.Reason != cpu.StopHalt {
		t.Fatalf("clean request: stop %v", res.Reason)
	}
	// Quota fault: kv_put is refused; the guest still halts and answers,
	// but the store keeps its old value, so the next clean request resumes
	// from the pre-fault counter.
	ti.ArmHostcallFault(hostcall.FaultQuota)
	if _, res := ti.ServeRequest(1, 0); res.Reason != cpu.StopHalt {
		t.Fatalf("quota-faulted request: stop %v", res.Reason)
	}
	if ti.Env.QuotaRejects == 0 {
		t.Fatal("quota fault armed but never counted")
	}
	// Transient error fault: first resource call fails with EIO; the
	// guest treats it as a fresh session and keeps going.
	ti.ArmHostcallFault(hostcall.FaultErr)
	if _, res := ti.ServeRequest(2, 0); res.Reason != cpu.StopHalt {
		t.Fatalf("err-faulted request: stop %v", res.Reason)
	}
	// Slow fault: outcome identical, only simulated time moves more.
	clock := ti.RT.M.Kern.Clock
	t0 := clock.Now()
	body3, res := ti.ServeRequest(3, 0)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("request 3: stop %v", res.Reason)
	}
	base := clock.Now() - t0
	ti.ArmHostcallFault(hostcall.FaultSlow)
	t0 = clock.Now()
	body4, res := ti.ServeRequest(4, 0)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("slow-faulted request: stop %v", res.Reason)
	}
	slowed := clock.Now() - t0
	if slowed <= base {
		t.Fatalf("slow fault did not cost time: %d <= %d ns", slowed, base)
	}
	if len(body3) != 8 || len(body4) != 8 {
		t.Fatalf("responses malformed: %d/%d bytes", len(body3), len(body4))
	}
}

// TestHostcallMicroDeterministic: same world seed → bit-identical
// clock/random responses; different seed → different randomness.
func TestHostcallMicroDeterministic(t *testing.T) {
	tenant := hostcallTenant(t, "hostcall-micro")
	run := func(seed uint64) []byte {
		cfg := Config{Name: "HFI", Scheme: sfi.HFI, World: hostcall.NewWorld(seed)}
		ti, err := Provision(tenant, cfg)
		if err != nil {
			t.Fatal(err)
		}
		body, res := ti.ServeRequest(0, 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("seed %d: stop %v", seed, res.Reason)
		}
		// The response is two clock samples; the random bytes land in the
		// guest heap — read them back for the determinism comparison.
		heap := ti.Inst.ReadHeap(8192, 1024)
		return append(append([]byte(nil), body...), heap...)
	}
	a, b, c := run(5), run(5), run(6)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different hostcall results")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical randomness")
	}
}

// TestHostcallServeTenant: the single-threaded serving loop works for
// every hostcall tenant under every scheme (the Table-1 path, but with
// guests that talk to the host).
func TestHostcallServeTenant(t *testing.T) {
	for _, tenant := range workloads.HostcallTenants() {
		for _, cfg := range hostcallSchemes() {
			cfg.World = hostcall.NewWorld(11)
			r, err := ServeTenant(tenant, cfg, 4)
			if err != nil {
				t.Fatalf("%s/%s: %v", tenant.Name, cfg.Name, err)
			}
			if r.Checksum == 0 {
				t.Fatalf("%s/%s: degenerate checksum", tenant.Name, cfg.Name)
			}
		}
	}
}

// TestHostcallCountersHarvest: the Env counters add up to what actually
// crossed the boundary for a known request sequence.
func TestHostcallCountersHarvest(t *testing.T) {
	tenant := hostcallTenant(t, "kv-session")
	cfg := Config{Name: "HFI", Scheme: sfi.HFI, World: hostcall.NewWorld(1)}
	ti, err := Provision(tenant, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		if _, res := ti.ServeRequest(i, 0); res.Reason != cpu.StopHalt {
			t.Fatalf("req %d: stop %v", i, res.Reason)
		}
	}
	calls, bi, bo, qr := ti.Env.TakeCounters()
	// Each request: kv_get + kv_put = 2 calls; in = key(3)+key(3)+val(8),
	// out = val(8) on every request but the first (ENOENT returns nothing).
	if calls != 2*n {
		t.Fatalf("calls = %d, want %d", calls, 2*n)
	}
	if wantIn := uint64(n * (3 + 3 + 8)); bi != wantIn {
		t.Fatalf("bytesIn = %d, want %d", bi, wantIn)
	}
	if wantOut := uint64((n - 1) * 8); bo != wantOut {
		t.Fatalf("bytesOut = %d, want %d", bo, wantOut)
	}
	if qr != 0 {
		t.Fatalf("quotaRejects = %d, want 0", qr)
	}
	// Harvest is take-and-clear.
	if c2, _, _, _ := ti.Env.TakeCounters(); c2 != 0 {
		t.Fatalf("counters not cleared: %d", c2)
	}
}

package host

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/faas"
)

// TestPoolDiscardIdempotent pins the pool's double-teardown guard: once
// an entry has been discarded (or evicted), further discards and evicts
// of the same entry are no-ops. Without the guard, a second discard would
// re-append the instance to the pending teardown batch and it would be
// torn down twice — double-counting teardowns and recycling a machine
// that was already recycled.
func TestPoolDiscardIdempotent(t *testing.T) {
	cls := soakMix()[0]
	ti, err := faas.Provision(cls.Tenant, cls.Iso)
	if err != nil {
		t.Fatalf("provision: %v", err)
	}
	s := &Server{cfg: Config{Pool: PoolConfig{TeardownBatch: 100}}}
	p := newInstPool(s)
	key := poolKey{cls.Tenant.Name, cls.Iso}
	e := p.put(key, ti, ti.Inst.HeapHash(), time.Now())

	p.discard(e)
	p.discard(e) // second discard of a dead entry must be a no-op
	p.evict(e)   // as must an eviction racing the discard

	if got := len(p.pending); got != 1 {
		t.Fatalf("pending teardowns = %d after discard+discard+evict, want 1", got)
	}
	if got := s.discarded.Load(); got != 1 {
		t.Fatalf("discarded counter = %d, want 1", got)
	}
	p.flush()
	if got := s.teardowns.Load(); got != 1 {
		t.Fatalf("teardowns = %d, want exactly 1", got)
	}
	if got := s.poolSize.Load(); got != 0 {
		t.Fatalf("pool size gauge = %d after discard, want 0", got)
	}
}

// TestQuarantineDiscardRace: two workers concurrently hitting HeapHash
// mismatches (every fault's quarantine reset is poisoned, so every
// verified-reset check fails) must produce exactly one quarantine and one
// discard per faulting request — no double-discard, no lost teardown —
// with outcome conservation exact. Run under -race this also proves the
// quarantine path itself is confined to the owning worker.
func TestQuarantineDiscardRace(t *testing.T) {
	const seed = 909
	flaky := flakyTenant("flaky-quar", 1<<30) // every request faults
	iso := faas.StockLucet()
	n := 64
	if testing.Short() {
		n = 32
	}

	inj := chaos.New(chaos.Config{Seed: seed, Poison: 1.0})
	s := New(Config{
		Workers: 2, QueueDepth: 8, Policy: PolicyBlock,
		Chaos: inj, Seed: seed,
	})

	var next, faults atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if r := s.Do(context.Background(), treq(flaky, iso, i)); r.Status == StatusFault {
					faults.Add(1)
				} else {
					t.Errorf("req %d: status %v, want fault", i, r.Status)
				}
			}
		}()
	}
	wg.Wait()
	s.Close()

	sum := s.Snapshot(0)
	ctr := s.Counters()
	if got := faults.Load(); got != int64(n) || sum.Faults != uint64(n) {
		t.Fatalf("faults: client %d recorder %d, want %d", got, sum.Faults, n)
	}
	accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
	if accounted != uint64(n) || ctr.Admitted != uint64(n) {
		t.Fatalf("conservation violated: accounted %d admitted %d of %d", accounted, ctr.Admitted, n)
	}
	// Exactly one quarantine per faulting request, and — because every
	// reset is poisoned — exactly one discard per quarantine.
	if ctr.Quarantined != uint64(n) {
		t.Fatalf("quarantined = %d, want %d (one per fault)", ctr.Quarantined, n)
	}
	if ctr.QuarantineDiscard != ctr.Quarantined {
		t.Fatalf("discards %d != quarantines %d with every reset poisoned",
			ctr.QuarantineDiscard, ctr.Quarantined)
	}
	// No double-teardown and no lost teardown: every cold-started
	// instance is recycled exactly once (discarded entries through the
	// batch, any survivors at drain).
	if ctr.Teardowns != ctr.ColdStarts {
		t.Fatalf("teardowns %d != cold starts %d — instance recycled twice or leaked",
			ctr.Teardowns, ctr.ColdStarts)
	}
	if ctr.PoolSize != 0 {
		t.Fatalf("pool size gauge = %d after close, want 0", ctr.PoolSize)
	}
	// Every fault forced a discard, so every request after the first per
	// worker re-provisioned: the pool never served a poisoned instance.
	if ctr.ColdStarts != ctr.QuarantineDiscard {
		t.Fatalf("cold starts %d != discards %d — a discarded instance was reused",
			ctr.ColdStarts, ctr.QuarantineDiscard)
	}
}

#!/bin/sh
# scripts/bench.sh — the performance snapshot behind `make bench`.
#
# Runs the interpreter hot-loop microbenchmarks and the hfibench `micro`
# experiment (wasm-workload throughput + shared-image provisioning cost) and
# records everything machine-readable in BENCH_PR3.json, alongside the
# pre-PR baseline so the speedup is visible without checking out history.
# Then the host-call boundary snapshot: BenchmarkHostcallRoundTrip (host
# wall ns, cost-modeled sim-ns, marshalled bytes — the marshalling fast
# path must report 0 allocs/op) plus `hfibench -exp hostcall -json`, into
# BENCH_PR6.json. Finally the proof-fact elision snapshot: `hfibench -exp
# facts -json` (checks/instr with the verifier facts ignored vs trusted,
# heap-op coverage, corpus throughput both ways) into BENCH_PR7.json.
#
# The script fails if the hot-loop benchmark reports any allocations; the
# same invariant is enforced as a plain test (TestInterpHotLoopZeroAllocs)
# so `make verify` catches regressions without running benchmarks.
set -e
cd "$(dirname "$0")/.."

# Pre-PR baseline: BenchmarkInterpMemKernel's harness run on a worktree at
# the parent commit of this PR (same machine class, -benchtime 2s -count 5).
BASELINE_MEDIAN5=50899953
BASELINE_BEST5=56314544

echo "== interpreter microbenchmarks (count=5) =="
out=$(go test -run '^$' -bench 'BenchmarkInterpMemKernel' -benchmem -benchtime 2s -count 5 ./internal/cpu/)
echo "$out" | grep -E 'Benchmark|^ok'

fast_median=$(echo "$out" | awk '/^BenchmarkInterpMemKernel / {print $5}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
slow_median=$(echo "$out" | awk '/^BenchmarkInterpMemKernelNoFastPath/ {print $5}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
allocs=$(echo "$out" | awk '/^BenchmarkInterpMemKernel/ {print $9}' | sort -n | tail -1)

if [ "$allocs" != "0" ]; then
    echo "bench.sh: FAIL: interpreter hot loop reports $allocs allocs/op (want 0)" >&2
    exit 1
fi

speedup=$(awk "BEGIN {printf \"%.2f\", $fast_median / $BASELINE_MEDIAN5}")
echo "interp fast-path median: $fast_median instrs/s ($speedup x pre-PR baseline $BASELINE_MEDIAN5)"

echo "== hfibench -exp micro =="
micro=$(go run ./cmd/hfibench -exp micro -json)

{
    printf '{\n'
    printf '  "baseline_pre_pr": {\n'
    printf '    "benchmark": "BenchmarkInterpMemKernel harness on a worktree at the parent commit (-benchtime 2s -count 5)",\n'
    printf '    "interp_instrs_per_sec_median5": %s,\n' "$BASELINE_MEDIAN5"
    printf '    "interp_instrs_per_sec_best5": %s\n' "$BASELINE_BEST5"
    printf '  },\n'
    printf '  "interp_microbench": {\n'
    printf '    "fast_instrs_per_sec_median5": %s,\n' "$fast_median"
    printf '    "nofastpath_instrs_per_sec_median5": %s,\n' "$slow_median"
    printf '    "allocs_per_op": %s,\n' "$allocs"
    printf '    "speedup_vs_baseline": %s\n' "$speedup"
    printf '  },\n'
    printf '  "hfibench_micro": %s\n' "$micro"
    printf '}\n'
} > BENCH_PR3.json
echo "wrote BENCH_PR3.json"

echo "== hostcall round-trip benchmark (count=5) =="
hc=$(go test -run '^$' -bench 'BenchmarkHostcallRoundTrip' -benchmem -benchtime 1s -count 5 ./internal/hostcall/)
echo "$hc" | grep -E 'Benchmark|^ok'

hc_ns=$(echo "$hc" | awk '/^BenchmarkHostcallRoundTrip/ {print $3}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
hc_sim=$(echo "$hc" | awk '/^BenchmarkHostcallRoundTrip/ {print $7}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
hc_allocs=$(echo "$hc" | awk '/^BenchmarkHostcallRoundTrip/ {print $11}' | sort -n | tail -1)

if [ "$hc_allocs" != "0" ]; then
    echo "bench.sh: FAIL: hostcall marshalling fast path reports $hc_allocs allocs/op (want 0)" >&2
    exit 1
fi

echo "== hfibench -exp hostcall =="
hcexp=$(go run ./cmd/hfibench -exp hostcall -json)

{
    printf '{\n'
    printf '  "hostcall_roundtrip_bench": {\n'
    printf '    "benchmark": "BenchmarkHostcallRoundTrip: 1 KiB random_get through the verified gate under the interpreter (-benchtime 1s -count 5)",\n'
    printf '    "host_wall_ns_per_op_median5": %s,\n' "$hc_ns"
    printf '    "sim_ns_per_op_median5": %s,\n' "$hc_sim"
    printf '    "allocs_per_op": %s\n' "$hc_allocs"
    printf '  },\n'
    printf '  "hfibench_hostcall": %s\n' "$hcexp"
    printf '}\n'
} > BENCH_PR6.json
echo "wrote BENCH_PR6.json"

echo "== hfibench -exp facts =="
factsexp=$(go run ./cmd/hfibench -exp facts -json)

{
    printf '{\n'
    printf '  "facts_elision": %s\n' "$factsexp"
    printf '}\n'
} > BENCH_PR7.json
echo "wrote BENCH_PR7.json"

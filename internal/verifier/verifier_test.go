package verifier

import (
	"errors"
	"testing"

	"hfi/internal/isa"
	"hfi/internal/sfi"
)

// --- CFG construction -------------------------------------------------

// TestCFGIndirectJump: a jmpi block's successor set is over-approximated
// by the address-taken set — every movi immediate that decodes to an
// in-range instruction address, plus every symbol.
func TestCFGIndirectJump(t *testing.T) {
	b := isa.NewBuilder(0x1000)
	b.Label("entry")
	b.MovImm(isa.R1, 0x1010) // address-taken: instruction 4
	b.JmpInd(isa.R1)
	b.Label("a")
	b.MovImm(isa.R0, 1)
	b.Jmp("done")
	b.Label("b") // 0x1010
	b.MovImm(isa.R0, 2)
	b.Label("done")
	b.Halt()
	p := b.Build()

	targets := IndirectTargets(p)
	wantTaken := map[int]bool{}
	for _, ti := range targets {
		wantTaken[ti] = true
	}
	if !wantTaken[4] {
		t.Fatalf("address-taken set %v misses instruction 4 (movi 0x1010)", targets)
	}
	for _, sym := range []string{"entry", "a", "b", "done"} {
		idx := int((p.Entry(sym) - p.Base) / isa.InstrBytes)
		if !wantTaken[idx] {
			t.Errorf("address-taken set %v misses symbol %q (instr %d)", targets, sym, idx)
		}
	}

	g := BuildCFG(p)
	ind := -1
	for i, blk := range g.Blocks {
		if blk.Indirect {
			ind = i
		}
	}
	if ind < 0 {
		t.Fatal("no block marked Indirect")
	}
	// The indirect block's successors must cover every address-taken
	// block — the over-approximation the package doc promises.
	succ := map[int]bool{}
	for _, s := range g.Blocks[ind].Succs {
		succ[s] = true
	}
	for _, ti := range targets {
		if !succ[g.BlockAt(ti)] {
			t.Errorf("indirect block %d misses successor block of instr %d (succs %v)", ind, ti, g.Blocks[ind].Succs)
		}
	}
}

// TestCFGStraightLine: branches split blocks at targets and fall-throughs.
func TestCFGStraightLine(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(isa.R0, 0)
	b.Label("loop")
	b.AddImm(isa.R0, isa.R0, 1)
	b.BrImm(isa.CondLTU, isa.R0, 10, "loop")
	b.Halt()
	p := b.Build()

	g := BuildCFG(p)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (entry / loop / exit)", len(g.Blocks))
	}
	loop := g.Blocks[g.BlockAt(1)]
	found := map[int]bool{}
	for _, s := range loop.Succs {
		found[s] = true
	}
	if !found[g.BlockAt(1)] || !found[g.BlockAt(3)] {
		t.Fatalf("loop block succs = %v, want itself and the halt block", loop.Succs)
	}
}

// --- interval lattice --------------------------------------------------

func TestIntervalJoin(t *testing.T) {
	cases := []struct{ a, b, want Interval }{
		{Exact(3), Exact(7), Interval{3, 7}},
		{Interval{0, 10}, Interval{5, 20}, Interval{0, 20}},
		{Top, Exact(1), Top},
		{Exact(0), Exact(0), Exact(0)},
	}
	for _, c := range cases {
		if got := c.a.Join(c.b); got != c.want {
			t.Errorf("%v ⊔ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Join(c.a); got != c.want {
			t.Errorf("join not commutative: %v ⊔ %v = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestIntervalWiden(t *testing.T) {
	// Widening jumps an unstable bound to the next all-ones value so
	// every chain stabilises in at most 64 steps.
	w := Exact(5).Widen(Interval{5, 6})
	if w.Lo != 5 || w.Hi != 7 {
		t.Fatalf("widen {5,5}→{5,6} = %v, want {5,7}", w)
	}
	w = Interval{0, 0xffff}.Widen(Interval{0, 0x10000})
	if w.Hi != 0x1ffff {
		t.Fatalf("widen hi = %#x, want 0x1ffff", w.Hi)
	}
	// A stable bound must not move.
	w = Interval{3, 10}.Widen(Interval{4, 10})
	if w != (Interval{3, 10}) {
		t.Fatalf("stable widen = %v, want {3,10}", w)
	}
}

func TestIntervalTransfer(t *testing.T) {
	// Add saturates to Top on overflow instead of wrapping.
	if got := (Interval{1, 2}).Add(Exact(10)); got != (Interval{11, 12}) {
		t.Errorf("add = %v, want {11,12}", got)
	}
	if got := (Interval{0, maxInterval().Hi}).Add(Exact(1)); !got.IsTop() {
		t.Errorf("overflowing add = %v, want Top", got)
	}
	// Mul with a constant scale.
	if got := (Interval{0, 0xffffffff}).Mul(Exact(8)); got != (Interval{0, 8 * 0xffffffff}) {
		t.Errorf("mul = %v, want {0, 8*2^32-8}", got)
	}
	if got := (Interval{2, 3}).AddConst(-1); got != (Interval{1, 2}) {
		t.Errorf("addconst = %v, want {1,2}", got)
	}
}

func maxInterval() Interval { return Top }

// --- golden per-scheme rejections --------------------------------------

// testCfg builds a minimal consistent sandbox geometry for hand-written
// escape attempts.
func testCfg(scheme sfi.Scheme) Config {
	const init = uint64(1) << 16
	return Config{
		Scheme:          scheme,
		HeapBase:        0x1_0000_0000,
		InitBytes:       init,
		MaxBytes:        init,
		MaxPages:        1,
		HeapReservation: scheme.HeapReservation(init, init),
		StackBase:       0x2000_0000,
		StackTop:        0x2001_0000,
		StackGuard:      sfi.StackGuard,
		GlobalBase:      0x1000_0000,
		GlobalSize:      512,
		NullPage:        0x1000,
		NumMems:         1,
	}
}

// rejectRule verifies p under scheme and returns the rule of the first
// violation, failing the test if the program is accepted.
func rejectRule(t *testing.T, p *isa.Program, scheme sfi.Scheme) string {
	t.Helper()
	err := Verify(p, testCfg(scheme))
	if err == nil {
		t.Fatalf("%v: escape attempt verified as safe", scheme)
	}
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("%v: error is %T, want *RejectError", scheme, err)
	}
	return re.First().Rule
}

// TestGoldenEscapePerScheme hand-writes one escape attempt per scheme and
// pins the rejection rule it must trip.
func TestGoldenEscapePerScheme(t *testing.T) {
	t.Run("masking-unmasked-index", func(t *testing.T) {
		// The index reaches the access without the AND: under masking the
		// reservation is init+redzone, far below the 2^32 an unmasked
		// 32-bit index can reach.
		b := isa.NewBuilder(0)
		b.Load(8, isa.R0, sfi.HeapBaseReg, isa.R1, 1, 0)
		b.Halt()
		if got := rejectRule(t, b.Build(), sfi.Masking); got != "mem-window" {
			t.Fatalf("rule = %q, want mem-window", got)
		}
	})
	t.Run("boundscheck-unchecked-access", func(t *testing.T) {
		// No compare-and-branch dominates the access, so the index is
		// unrefined and the 64 KiB window cannot contain it.
		b := isa.NewBuilder(0)
		b.Load(8, isa.R0, sfi.HeapBaseReg, isa.R1, 1, 0)
		b.Halt()
		if got := rejectRule(t, b.Build(), sfi.BoundsCheck); got != "mem-window" {
			t.Fatalf("rule = %q, want mem-window", got)
		}
	})
	t.Run("guardpages-oversized-disp", func(t *testing.T) {
		// A displacement past the 8 GiB reservation escapes the guard.
		b := isa.NewBuilder(0)
		b.Load(8, isa.R0, sfi.HeapBaseReg, isa.R1, 1, int64(sfi.GuardReservation))
		b.Halt()
		if got := rejectRule(t, b.Build(), sfi.GuardPages); got != "mem-window" {
			t.Fatalf("rule = %q, want mem-window", got)
		}
	})
	t.Run("hfi-syscall", func(t *testing.T) {
		// Sandbox code under HFI may never issue a raw syscall; the
		// hardware redirects it, and the verifier refuses it outright.
		b := isa.NewBuilder(0)
		b.Syscall()
		b.Halt()
		if got := rejectRule(t, b.Build(), sfi.HFI); got != "privileged-op" {
			t.Fatalf("rule = %q, want privileged-op", got)
		}
	})
	t.Run("none-absolute-store", func(t *testing.T) {
		// Even the no-isolation baseline runs inside a reservation; a
		// store to an arbitrary absolute address is refused.
		b := isa.NewBuilder(0)
		b.MovImm(isa.R1, 0x7f00_0000_0000)
		b.Store(8, isa.R1, isa.RegNone, 1, 0, isa.R0)
		b.Halt()
		if got := rejectRule(t, b.Build(), sfi.None); got != "mem-window" {
			t.Fatalf("rule = %q, want mem-window", got)
		}
	})
}

// TestStructuralRejection: pass 1 catches malformed programs before any
// abstract interpretation runs.
func TestStructuralRejection(t *testing.T) {
	p := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpJmp, Target: 0x4000}, // out of range
	}}
	if _, err := VerifyStructure(p); err == nil {
		t.Fatal("out-of-range jump accepted")
	}
	err := Verify(p, testCfg(sfi.HFI))
	var re *RejectError
	if !errors.As(err, &re) || re.First().Rule != "structural" {
		t.Fatalf("err = %v, want structural violation", err)
	}
}

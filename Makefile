# Convenience targets; scripts/verify.sh is the canonical gate.

.PHONY: build test race vet verify bench serve

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# Full verification gate: build + vet + race-detected test suite.
verify:
	sh scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Throughput-vs-workers scaling demo with checksum verification.
serve:
	go run ./cmd/hfiserve -requests 200 -verify

package verifier

import (
	"hfi/internal/isa"
	"hfi/internal/sfi"
)

// opAllowed is the per-scheme instruction allowlist. Everything outside it
// is a privileged-op violation: the HFI context-management instructions
// belong to the host springboard, rdtsc/clflush are timer-attack surface
// (paper §4), and syscalls are only reachable on the mmap-based schemes'
// grow path.
func (v *verification) opAllowed(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpMovImm, isa.OpMov,
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpNot, isa.OpNeg,
		isa.OpLoad, isa.OpStore,
		isa.OpBr, isa.OpJmp, isa.OpJmpInd, isa.OpCall, isa.OpCallInd, isa.OpRet,
		isa.OpFence:
		return true
	case isa.OpSyscall:
		return v.cfg.Scheme == sfi.None || v.cfg.Scheme == sfi.GuardPages
	case isa.OpHostcall:
		// Admissible under every scheme, but only inside a designated
		// gate (checkHostcallGate enforces placement).
		return v.gateIdx >= 0
	case isa.OpHLoad, isa.OpHStore, isa.OpHfiExit,
		isa.OpHfiGetRegion, isa.OpHfiSetRegion:
		return v.cfg.Scheme == sfi.HFI
	}
	return false
}

// effectiveAddr computes the abstract EA of a plain load/store:
// base + zext32(index)*scale + disp (isa.PlainEA). The architectural
// 32-bit index truncation bounds the index contribution below 2^32
// regardless of provenance, which is exactly the margin the guard-page
// reservation covers.
func (v *verification) effectiveAddr(st *absState, in *isa.Instr) AbsVal {
	ea := st.regval(in.Rs1)
	if in.Rs2 != isa.RegNone {
		idx := st.regval(in.Rs2)
		if idx.HasOff || idx.I.Hi > 0xffffffff {
			idx = intervalVal(Interval{0, 0xffffffff}) // zext32 of an unknown value
		}
		if in.Scale > 1 {
			idx = intervalVal(idx.I.Mul(Exact(uint64(in.Scale))))
		}
		ea = addVal(ea, idx.dataOnly())
	}
	if in.Disp != 0 {
		if ea.HasOff {
			ea = stackVal(ea.Off + in.Disp)
		} else {
			ea = intervalVal(ea.I.AddConst(in.Disp))
		}
	}
	return ea
}

// stepMem checks one plain load/store against the scheme's window policy
// and applies its effect on the abstract state.
func (v *verification) stepMem(st *absState, idx int, in *isa.Instr) {
	isStore := in.Op == isa.OpStore
	size := in.Size
	ea := v.effectiveAddr(st, in)
	havoc := func() {
		if !isStore {
			st.setReg(in.Rd, st.loadSlot(1, size, in.SignExt)) // width-capped unknown
		}
	}

	// Frame access through the stack symbol S: provably within
	// [S-StackGuard, S). The guard region below the deepest verified
	// frame makes any deeper (unverifiable) access a contained fault,
	// and a successful call-push implies S >= StackBase, so the whole
	// window sits inside [guard bottom, StackTop].
	if ea.HasOff {
		v.obsFrame(idx)
		if ea.Off < -int64(v.cfg.StackGuard) || ea.Off+int64(size) > 0 {
			v.violate(idx, "stack-frame", "frame access at entry-SP%+d (size %d) outside [-%d, 0)",
				ea.Off, size, v.cfg.StackGuard)
			havoc()
			return
		}
		if isStore {
			st.storeSlot(ea.Off, size, st.regval(in.Rs3))
		} else {
			st.setReg(in.Rd, st.loadSlot(ea.Off, size, in.SignExt))
		}
		return
	}

	lo := ea.I.Lo
	end, ok := satAdd(ea.I.Hi, uint64(size))
	if !ok {
		v.violate(idx, "mem-window", "effective address wraps the address space")
		havoc()
		return
	}
	inWin := func(wlo, whi uint64) bool { return lo >= wlo && end <= whi }

	// Trusted cells live in the global area; check it first.
	if v.cfg.GlobalSize > 0 && inWin(v.cfg.GlobalBase, v.cfg.GlobalBase+v.cfg.GlobalSize) {
		v.obsMem(idx, ea.I, false)
		if isStore {
			v.checkGlobalStore(st, idx, in, ea, size)
		} else {
			st.setReg(in.Rd, v.globalLoad(ea, size, in.SignExt))
		}
		return
	}

	windowOK := false
	heapish := false // proven linear-memory traffic (heap or extra memory)
	if v.cfg.Scheme != sfi.HFI {
		// Linear-memory traffic: must stay inside a reserved window.
		if v.cfg.HeapReservation > 0 && inWin(v.cfg.HeapBase, v.cfg.HeapBase+v.cfg.HeapReservation) {
			windowOK, heapish = true, true
		}
		for _, em := range v.cfg.ExtraMems {
			if em.Reservation > 0 && inWin(em.Base, em.Base+em.Reservation) {
				windowOK, heapish = true, true
			}
		}
	}
	if !windowOK && v.cfg.NullPage > 0 && lo == 0 && ea.I.Hi == 0 && end <= v.cfg.NullPage && !isStore {
		// The trap stub's deliberate null dereference: a load at exactly
		// address zero, which the runtime never maps. Only that precise
		// shape is admitted — a wider null-page window would also bless
		// stray low-memory accesses (e.g. an hld whose region check was
		// stripped), and those must be rejected, not trusted to fault.
		windowOK = true
	}
	if !windowOK && v.cfg.StackTop > v.cfg.StackBase && inWin(v.cfg.StackBase, v.cfg.StackTop) {
		windowOK = true // constant stack addresses (entry stub)
	}
	if !windowOK {
		v.violate(idx, "mem-window", "access [%#x, %#x) not provably inside any sandbox window", lo, end)
		havoc()
		return
	}
	v.obsMem(idx, ea.I, heapish)
	if !isStore {
		if in.SignExt && size < 8 {
			st.setReg(in.Rd, topVal())
		} else {
			st.setReg(in.Rd, intervalVal(capSize(size)))
		}
	}
}

// globalLoad returns the abstract value of a load from the global area,
// using cell invariants when the address is exact.
func (v *verification) globalLoad(ea AbsVal, size uint8, signExt bool) AbsVal {
	if a, ok := ea.I.Singleton(); ok && size == 8 {
		switch {
		case a == v.cfg.CurPagesAddr:
			return intervalVal(Interval{0, v.cfg.MaxPages})
		case v.cfg.HeapBaseCell != 0 && a == v.cfg.HeapBaseCell:
			return exactVal(v.cfg.HeapBase)
		}
		for _, em := range v.cfg.ExtraMems {
			switch a {
			case em.CtxAddr:
				return exactVal(em.Base)
			case em.CtxAddr + 8:
				return exactVal(em.BoundVal)
			}
		}
	}
	if signExt && size < 8 {
		return topVal()
	}
	return intervalVal(capSize(size))
}

// checkGlobalStore admits stores only to the mutable trusted cells, and
// only with values that preserve the cell invariants every load assumes.
func (v *verification) checkGlobalStore(st *absState, idx int, in *isa.Instr, ea AbsVal, size uint8) {
	a, ok := ea.I.Singleton()
	if !ok {
		v.violate(idx, "global-store", "store into the global area at a non-constant address")
		return
	}
	val := st.regval(in.Rs3)
	switch {
	case a == v.cfg.CurPagesAddr && size == 8:
		if !val.I.In(Interval{0, v.cfg.MaxPages}) {
			v.violate(idx, "cell-invariant", "current-pages store not provably within [0, %d]", v.cfg.MaxPages)
		}
	case v.cfg.Scheme == sfi.HFI && v.cfg.StagingAddr != 0 && a == v.cfg.StagingAddr+8 && size == 8:
		// The staged region bound: hfi_set_region re-checks freshness,
		// but the bound value itself must stay within the max heap.
		if !val.I.In(Interval{0, v.cfg.MaxBytes}) {
			v.violate(idx, "cell-invariant", "staged region bound not provably within [0, %d]", v.cfg.MaxBytes)
		}
	default:
		v.violate(idx, "global-store", "store to global cell %#x is not admitted", a)
	}
}

// stepHfiMem checks hld/hst: the hardware bounds-checks the EA against
// the region descriptor, so the static obligations are only that the
// region operand is a configured memory and the displacement cannot pull
// the EA below the region base.
func (v *verification) stepHfiMem(st *absState, idx int, in *isa.Instr) {
	if int(in.HReg) >= v.cfg.NumMems {
		v.violate(idx, "hfi-region", "explicit region %d exceeds the %d configured memories", in.HReg, v.cfg.NumMems)
	}
	if in.Disp < 0 {
		v.violate(idx, "hfi-region", "negative displacement %d on an explicit-region access", in.Disp)
	}
	// Dead-access sanity: the hardware clamps the EA to the region, so a
	// displacement at or past the region window means every execution of
	// this instruction faults. Hardware contains it either way, but an
	// access that can never succeed is miscompiled code, and admitting it
	// would let a widened displacement masquerade as verified.
	res := v.cfg.HeapReservation
	if in.HReg > 0 && int(in.HReg)-1 < len(v.cfg.ExtraMems) {
		res = v.cfg.ExtraMems[in.HReg-1].Reservation
	}
	if res > 0 && uint64(in.Disp)+uint64(in.Size) > res {
		v.violate(idx, "hfi-dead-access", "displacement %d + size %d reaches past the %d-byte region window: the access can never succeed", in.Disp, in.Size, res)
	}
	if in.Op == isa.OpHLoad {
		if in.SignExt && in.Size < 8 {
			st.setReg(in.Rd, topVal())
		} else {
			st.setReg(in.Rd, intervalVal(capSize(in.Size)))
		}
	}
}

// stepRegionUpdate admits the grow path's region reconfiguration: only
// the flat heap region, only through the staging cell, and a set only
// after a get whose descriptor is still fresh (the bound field is the
// only cell a store may touch in between).
func (v *verification) stepRegionUpdate(st *absState, idx int, in *isa.Instr) {
	ptr, ok := st.regval(in.Rs2).I.Singleton()
	okPtr := ok && v.cfg.StagingAddr != 0 && ptr == v.cfg.StagingAddr
	okRegion := int(in.Imm) == v.cfg.HeapRegionFlat
	if in.Op == isa.OpHfiGetRegion {
		if !okPtr || !okRegion {
			v.violate(idx, "region-update", "hfi_get_region must read the heap region into the staging cell")
			return
		}
		st.staging = int(in.Imm)
		return
	}
	if !okPtr || !okRegion || st.staging != int(in.Imm) {
		v.violate(idx, "region-update", "hfi_set_region must consume a freshly staged heap descriptor")
	}
}

// checkHostcallGate locates and structurally validates the hostcall gate,
// then proves it is the only way a hostcall instruction can execute: no
// hostcall outside the gate, no jump or branch into it, no call into its
// middle, and no fall-through from the preceding instruction. Together
// with the indirect-target checks in step (an exact-constant indirect
// jump or call resolving to the gate is rejected there) this leaves a
// direct call to the gate entry as the single admissible entry path — the
// hostcall analogue of the mprotect-only syscall proof.
func (v *verification) checkHostcallGate() {
	v.gateIdx = -1
	sym := v.cfg.HostcallGateSym
	if sym == "" {
		return
	}
	addr, ok := v.p.Symbols[sym]
	if !ok {
		// Gate policy configured but the program defines no gate: nothing
		// to admit; any hostcall instruction fails the opAllowed check.
		return
	}
	g := v.index(addr)
	v.gateIdx = g
	if g < 0 || g+1 >= len(v.p.Instrs) ||
		v.p.Instrs[g].Op != isa.OpHostcall || v.p.Instrs[g+1].Op != isa.OpRet {
		v.violate(g, "hostcall-gate", "gate %q must be exactly the sequence hostcall; ret", sym)
		v.gateIdx = -1
		return
	}
	for i := range v.p.Instrs {
		in := &v.p.Instrs[i]
		if in.Op == isa.OpHostcall && i != g {
			v.violate(i, "hostcall-gate", "hostcall instruction outside the designated gate %q", sym)
		}
		switch in.Op {
		case isa.OpJmp, isa.OpBr:
			if in.Target == addr || in.Target == addr+isa.InstrBytes {
				v.violate(i, "hostcall-gate", "jump into the hostcall gate: the gate is only enterable by a direct call")
			}
		case isa.OpCall:
			if in.Target == addr+isa.InstrBytes {
				v.violate(i, "hostcall-gate", "call into the middle of the hostcall gate")
			}
		}
	}
	if g > 0 {
		switch v.p.Instrs[g-1].Op {
		case isa.OpHalt, isa.OpJmp, isa.OpJmpInd, isa.OpRet:
		default:
			v.violate(g-1, "hostcall-gate", "control can fall through into the hostcall gate")
		}
	}
}

// checkHostcallSite discharges the per-call-site obligations of a direct
// call to the hostcall gate. The interprocedural summary joins argument
// intervals over every call site, so the singleton-number and buffer
// proofs must run HERE, against this site's state — at the gate body only
// the joined containment is still provable.
func (v *verification) checkHostcallSite(st *absState, idx int) {
	if v.cfg.NumHostcalls == 0 {
		v.violate(idx, "hostcall", "no hostcalls are registered for this sandbox")
		return
	}
	num, ok := st.regs[isa.R0].I.Singleton()
	if !ok || num >= v.cfg.NumHostcalls {
		v.violate(idx, "hostcall", "hostcall number is not provably a registered hostcall")
		return
	}
	if num >= uint64(len(v.cfg.HostcallSigs)) {
		v.obsHostcall(idx, num, 0) // number proven in-table; no signature detail to check
		return
	}
	before := len(v.violations)
	bufEnd := uint64(0)
	sig := v.cfg.HostcallSigs[num]
	max := v.cfg.MaxBytes
	heap := Interval{0, max}
	for i := 0; i < 5; i++ {
		kind := sig.Args[i]
		if kind != HcArgPtr && kind != HcArgLen {
			continue
		}
		arg := st.regs[isa.R1+isa.Reg(i)].dataOnly().I
		what := "buffer offset"
		if kind == HcArgLen {
			what = "byte count"
		}
		if !arg.In(heap) {
			v.violate(idx, "hostcall", "%s: argument %d (%s) is not provably within the sandbox heap", sig.Name, i+1, what)
		}
	}
	for i := 0; i+1 < 5; i++ {
		if sig.Args[i] != HcArgPtr || sig.Args[i+1] != HcArgLen {
			continue
		}
		p := st.regs[isa.R1+isa.Reg(i)].dataOnly().I
		l := st.regs[isa.R1+isa.Reg(i+1)].dataOnly().I
		if end, ok := satAdd(p.Hi, l.Hi); !ok || end > max {
			v.violate(idx, "hostcall", "%s: buffer at argument %d does not provably end within the sandbox heap", sig.Name, i+1)
		} else if end > bufEnd {
			bufEnd = end
		}
	}
	if len(v.violations) == before {
		v.obsHostcall(idx, num, bufEnd)
	}
}

// checkHostcallBody runs at the gate's hostcall instruction itself. Every
// call site has already proven its own number a registered singleton, so
// the joined interval flowing into the gate must still be contained in
// the table — a cheap belt-and-suspenders re-check.
func (v *verification) checkHostcallBody(st *absState, idx int) {
	if v.cfg.NumHostcalls == 0 {
		v.violate(idx, "hostcall", "no hostcalls are registered for this sandbox")
		return
	}
	if !st.regs[isa.R0].I.In(Interval{0, v.cfg.NumHostcalls - 1}) {
		v.violate(idx, "hostcall", "hostcall number at the gate is not provably within the registered table")
	}
}

// checkSyscall admits the single syscall shape the guard-page grow path
// needs: mprotect(addr, len, PROT_READ|PROT_WRITE) entirely within the
// heap reservation. The kernel clobbers only R0 (the result).
func (v *verification) checkSyscall(st *absState, idx int) {
	num, ok := st.regs[isa.R0].I.Singleton()
	if !ok || num != v.cfg.MprotectNum {
		v.violate(idx, "syscall", "syscall number is not provably mprotect")
		return
	}
	resvEnd := v.cfg.HeapBase + v.cfg.HeapReservation
	addr := st.regs[isa.R1].I
	length := st.regs[isa.R2].I
	if !addr.In(Interval{v.cfg.HeapBase, resvEnd}) {
		v.violate(idx, "syscall", "mprotect address not provably within the heap reservation")
	}
	if end, ok := satAdd(addr.Hi, length.Hi); !ok || end > resvEnd {
		v.violate(idx, "syscall", "mprotect range not provably within the heap reservation")
	}
	if prot, ok := st.regs[isa.R3].I.Singleton(); !ok || prot != v.cfg.ProtRW {
		v.violate(idx, "syscall", "mprotect protection is not provably PROT_READ|PROT_WRITE")
	}
}

package tier_test

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/tier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// benchCorpus measures corpus throughput under either engine; the tiered
// variant is warmed past the promotion threshold first. This is the
// microscope behind the `hfibench -exp tier` numbers (BENCH_PR8.json).
func benchCorpus(b *testing.B, scheme sfi.Scheme, tiered bool) {
	type warmInst struct {
		inst *sandbox.Instance
		eng  cpu.Engine
	}
	var warm []warmInst
	var instrs uint64
	for _, w := range workloads.Sightglass() {
		rt := sandbox.NewRuntime()
		inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ip := cpu.NewInterp(rt.M)
		var eng cpu.Engine = ip
		if tiered {
			te := tier.NewEngine(ip, inst.Lowered)
			te.PromoteAfter = 1
			eng = te
		}
		for i := 0; i < 2; i++ {
			if res, _ := inst.Invoke(eng, 500_000_000); res.Reason != cpu.StopHalt {
				b.Fatalf("%s warmup: stop %v", w.Name, res.Reason)
			}
		}
		warm = append(warm, warmInst{inst, eng})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, wi := range warm {
			before := wi.inst.RT.M.Instret
			if res, _ := wi.inst.Invoke(wi.eng, 500_000_000); res.Reason != cpu.StopHalt {
				b.Fatalf("stop %v", res.Reason)
			}
			instrs += wi.inst.RT.M.Instret - before
		}
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkCorpusInterpHFI(b *testing.B) { benchCorpus(b, sfi.HFI, false) }
func BenchmarkCorpusTierHFI(b *testing.B)   { benchCorpus(b, sfi.HFI, true) }

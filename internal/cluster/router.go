package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/httpfront"
)

// Config tunes the router's placement and resilience policy.
type Config struct {
	// VNodes per shard on the consistent-hash ring (0 ⇒ 64).
	VNodes int
	// LoadFactor is the bounded-load multiplier: a shard is skipped while
	// it holds more than ceil(LoadFactor × placements / healthy shards)
	// tenant placements (0 ⇒ 1.25, the classic CHWBL setting).
	LoadFactor float64
	// HedgeAfter is how long a request routed to a degraded shard waits
	// for the primary before firing the duplicate at the tenant's
	// successor shard (0 ⇒ 2ms).
	HedgeAfter time.Duration
	// RetryMax bounds re-route rounds after transport failures (0 ⇒ 3).
	RetryMax int
	// HealthEvery is the /healthz + /statsz poll period (0 ⇒ 50ms).
	HealthEvery time.Duration
	// HealthFails is how many consecutive probe/attempt failures eject a
	// shard from the ring, migrating its placements (0 ⇒ 2).
	HealthFails int
	// RequestTimeout bounds one proxied attempt end-to-end (0 ⇒ 30s).
	RequestTimeout time.Duration
	// MaxBody bounds an invoke request body in bytes (0 ⇒ 1 MiB).
	MaxBody int64
	// Chaos, when set, severs router↔shard links per the injector's
	// partition schedule — in the transport, before any connection is
	// dialed, so a severed attempt never reaches shard admission.
	Chaos *chaos.Injector
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 2 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 50 * time.Millisecond
	}
	if c.HealthFails <= 0 {
		c.HealthFails = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// shardRef is the router's view of one member: the typed client it proxies
// through, the gating state (guarded by Router.mu), and the router-side
// delivery ledger the fleet conservation cross-check reads.
type shardRef struct {
	name   string
	addr   string
	client *httpfront.Client
	proc   *ShardProc // nil for externally managed shards

	// Guarded by Router.mu:
	healthy  bool
	draining bool
	fails    int // consecutive probe/attempt failures

	degraded atomic.Bool  // any breaker not "closed" in the last scrape
	inflight atomic.Int64 // attempts currently against this shard

	attempts      atomic.Uint64 // proxied attempts started
	delivered     atomic.Uint64 // responses with a host outcome code
	transportErrs atomic.Uint64 // attempts that died without a status
	admitted      atomic.Uint64 // shard's Counters.Admitted, last scrape
}

// errPartitioned is what a chaos-severed attempt fails with.
var errPartitioned = errors.New("cluster: chaos partition severed link")

// partitionTransport interposes the chaos partition schedule between the
// router and one shard. Severing happens before the dial, so a partitioned
// attempt never reaches the shard — the delivered==admitted ledger stays
// exact by construction.
type partitionTransport struct {
	shard string
	inj   *chaos.Injector
	next  http.RoundTripper
	tick  atomic.Int64
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	tick := int(t.tick.Add(1) - 1)
	if t.inj.Partition(t.shard, tick) {
		return nil, errPartitioned
	}
	return t.next.RoundTrip(req)
}

// Router is the cluster front tier: one HTTP handler that places tenants
// over shards by bounded-load consistent hashing, sticks them to the shard
// holding their warm verified image, and absorbs shard failure with
// health-gated membership, drain migration, and hedged retries.
type Router struct {
	cfg     Config
	started time.Time

	mu         sync.Mutex
	ring       *Ring
	shards     map[string]*shardRef
	order      []string          // insertion order, for stable /statsz
	placements map[string]string // tenant → shard holding its warm image
	placeCount map[string]int    // shard → placements held

	draining atomic.Bool
	inflight atomic.Int64 // all attempts, including hedge losers
	reqSeq   atomic.Uint64

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup

	hits, misses  atomic.Uint64
	hedges        atomic.Uint64
	hedgeWins     atomic.Uint64
	retries       atomic.Uint64
	transportErrs atomic.Uint64
	migrations    atomic.Uint64
	unroutable    atomic.Uint64
	proxied       atomic.Uint64
}

// NewRouter builds an empty router; add members with AddShard, then Start.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	return &Router{
		cfg:        cfg,
		started:    time.Now(),
		ring:       NewRing(cfg.VNodes),
		shards:     make(map[string]*shardRef),
		placements: make(map[string]string),
		placeCount: make(map[string]int),
		stopc:      make(chan struct{}),
	}
}

// AddShard registers a listening shard as a healthy ring member. proc may
// be nil when the shard's lifecycle is managed elsewhere.
func (rt *Router) AddShard(name, addr string, proc *ShardProc) {
	tr := &partitionTransport{
		shard: name,
		inj:   rt.cfg.Chaos,
		next:  &http.Transport{MaxIdleConnsPerHost: 64},
	}
	client := httpfront.NewClientWith("http://"+addr, &http.Client{Transport: tr})
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.shards[name] = &shardRef{name: name, addr: addr, client: client, proc: proc, healthy: true}
	rt.order = append(rt.order, name)
	rt.ring.Add(name)
}

// Start launches the health/stats scrape loop.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go rt.healthLoop()
}

// Stop halts the scrape loop and waits for background hedge losers.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopc) })
	rt.wg.Wait()
	rt.Quiesce(10 * time.Second)
}

// BeginDrain flips the router's own /healthz to 503.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Quiesce waits until no attempt (including hedge losers still racing a
// decided request) is in flight — the barrier before ledger cross-checks.
func (rt *Router) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for rt.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// Handler returns the router's route mux — the same wire surface as a
// shard (invoke/healthz/statsz/drainz) plus the per-shard drain trigger.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/invoke", rt.invoke)
	mux.HandleFunc("GET /healthz", rt.healthz)
	mux.HandleFunc("GET /statsz", rt.statsz)
	mux.HandleFunc("POST /drainz", rt.drainz)
	mux.HandleFunc("POST /admin/shards/{shard}/drain", rt.adminDrain)
	return mux
}

func (rt *Router) invoke(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	reqID := r.Header.Get(httpfront.RequestIDHeader)
	if reqID == "" {
		reqID = fmt.Sprintf("hfir-%d", rt.reqSeq.Add(1))
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBody+1))
	if err != nil {
		writeEnvelope(w, http.StatusBadRequest, httpfront.ErrorEnvelope{
			Outcome: "bad_request", RequestID: reqID, Error: err.Error()})
		return
	}
	if int64(len(body)) > rt.cfg.MaxBody {
		writeEnvelope(w, http.StatusRequestEntityTooLarge, httpfront.ErrorEnvelope{
			Outcome: "body_too_large", RequestID: reqID,
			Error: fmt.Sprintf("body exceeds %d bytes", rt.cfg.MaxBody)})
		return
	}
	res, ok := rt.do(r.Context(), tenant, body, reqID)
	if !ok {
		rt.unroutable.Add(1)
		writeEnvelope(w, http.StatusServiceUnavailable, httpfront.ErrorEnvelope{
			Outcome: "unroutable", RequestID: reqID,
			Error: "no healthy shard available for tenant"})
		return
	}
	// Relay the shard's response verbatim: same code, same body bytes
	// (the envelope included), same retry hint.
	if res.ContentType != "" {
		w.Header().Set("Content-Type", res.ContentType)
	}
	if res.RetryAfter != "" {
		w.Header().Set("Retry-After", res.RetryAfter)
	}
	w.Header().Set(httpfront.RequestIDHeader, reqID)
	w.WriteHeader(res.Code)
	w.Write(res.Body)
}

// do routes one request: place (warm-first), attempt (hedged when the
// target is degraded), and re-place on transport failure up to RetryMax
// rounds. false means no shard could be reached.
func (rt *Router) do(ctx context.Context, tenant string, body []byte, reqID string) (httpfront.InvokeResult, bool) {
	tried := make(map[string]bool)
	for round := 0; ; round++ {
		primary, alt := rt.place(tenant, tried, round == 0)
		if primary == nil {
			return httpfront.InvokeResult{}, false
		}
		res, ok := rt.hedgedAttempt(ctx, primary, alt, tenant, body, reqID)
		if ok {
			rt.proxied.Add(1)
			return res, true
		}
		tried[primary.name] = true
		if round >= rt.cfg.RetryMax {
			return httpfront.InvokeResult{}, false
		}
		rt.retries.Add(1)
	}
}

// place picks the tenant's shard: the warm placement when it is still
// eligible (a routing hit), else the first eligible, under-bound candidate
// on the ring walk (a miss, and a migration if the tenant had a placement
// elsewhere). When the pick is degraded, the next eligible candidate comes
// back as the hedge target. countStats is true only on a request's first
// round so retries don't inflate the hit rate.
func (rt *Router) place(tenant string, tried map[string]bool, countStats bool) (primary, alt *shardRef) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	eligible := func(name string) *shardRef {
		sh := rt.shards[name]
		if sh == nil || !sh.healthy || sh.draining || tried[name] {
			return nil
		}
		return sh
	}
	warm := false
	if cur, ok := rt.placements[tenant]; ok {
		if sh := eligible(cur); sh != nil {
			primary, warm = sh, true
		}
	}
	if primary == nil {
		cands := rt.ring.Candidates(tenant)
		bound := rt.loadBoundLocked()
		for _, name := range cands {
			if sh := eligible(name); sh != nil && rt.placeCount[name] < bound {
				primary = sh
				break
			}
		}
		if primary == nil {
			// Everyone over bound: liveness beats balance.
			for _, name := range cands {
				if sh := eligible(name); sh != nil {
					primary = sh
					break
				}
			}
		}
		if primary != nil {
			if old, had := rt.placements[tenant]; had && old != primary.name {
				rt.placeCount[old]--
				rt.migrations.Add(1)
			}
			if rt.placements[tenant] != primary.name {
				rt.placements[tenant] = primary.name
				rt.placeCount[primary.name]++
			}
		}
	}
	if primary == nil {
		return nil, nil
	}
	if countStats {
		if warm {
			rt.hits.Add(1)
		} else {
			rt.misses.Add(1)
		}
	}
	if primary.degraded.Load() {
		for _, name := range rt.ring.Candidates(tenant) {
			if name == primary.name {
				continue
			}
			if sh := eligible(name); sh != nil {
				alt = sh
				break
			}
		}
	}
	return primary, alt
}

// loadBoundLocked is the CHWBL bound: ceil(factor × placements / healthy).
func (rt *Router) loadBoundLocked() int {
	healthy := 0
	for _, sh := range rt.shards {
		if sh.healthy && !sh.draining {
			healthy++
		}
	}
	if healthy == 0 {
		return 1
	}
	b := int(rt.cfg.LoadFactor * float64(len(rt.placements)+1) / float64(healthy))
	if b < 1 {
		b = 1
	}
	return b
}

// attempt proxies one request to one shard, maintaining the ledger:
// attempts, then exactly one of delivered (a response carrying a host
// outcome code) or transportErrs. Responses outside the outcome table
// (unknown_tenant and friends — produced without host admission) relay
// fine but count toward neither side of the delivered==admitted identity.
func (rt *Router) attempt(ctx context.Context, sh *shardRef, tenant string, body []byte, reqID string) (httpfront.InvokeResult, error) {
	rt.inflight.Add(1)
	sh.inflight.Add(1)
	sh.attempts.Add(1)
	actx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	res, err := sh.client.Invoke(actx, tenant, body, reqID)
	cancel()
	sh.inflight.Add(-1)
	rt.inflight.Add(-1)
	if err != nil {
		sh.transportErrs.Add(1)
		rt.transportErrs.Add(1)
		rt.noteFailure(sh)
		return httpfront.InvokeResult{}, err
	}
	if _, mapped := res.Outcome(); mapped {
		sh.delivered.Add(1)
	}
	rt.noteSuccess(sh)
	return res, nil
}

// hedgedAttempt runs the primary attempt, racing a duplicate against alt
// (same request id — the idempotency contract lets downstream collapse
// them) when the primary is degraded. The loser is never cancelled: both
// attempts run to completion under a cancel-free context so every shard
// admission stays matched by a router delivery, and the first good
// response wins.
func (rt *Router) hedgedAttempt(ctx context.Context, primary, alt *shardRef, tenant string, body []byte, reqID string) (httpfront.InvokeResult, bool) {
	if alt == nil {
		res, err := rt.attempt(ctx, primary, tenant, body, reqID)
		return res, err == nil
	}
	rt.hedges.Add(1)
	hctx := context.WithoutCancel(ctx)
	type out struct {
		res   httpfront.InvokeResult
		err   error
		hedge bool
	}
	ch := make(chan out, 2)
	run := func(sh *shardRef, hedge bool) {
		res, err := rt.attempt(hctx, sh, tenant, body, reqID)
		ch <- out{res, err, hedge}
	}
	go run(primary, false)
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()
	pending, fired := 1, false
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				if o.hedge {
					rt.hedgeWins.Add(1)
				}
				return o.res, true
			}
			if pending == 0 {
				if fired {
					return httpfront.InvokeResult{}, false
				}
				fired, pending = true, 1
				go run(alt, true)
			}
		case <-timer.C:
			if !fired {
				fired = true
				pending++
				go run(alt, true)
			}
		}
	}
}

// noteFailure counts one consecutive transport failure against the shard
// and ejects it (ring removal + placement migration) at the threshold —
// the fast path a killed shard leaves the fleet by, ahead of the probe
// loop noticing.
func (rt *Router) noteFailure(sh *shardRef) {
	rt.mu.Lock()
	sh.fails++
	if sh.fails >= rt.cfg.HealthFails && sh.healthy {
		rt.ejectLocked(sh)
	}
	rt.mu.Unlock()
}

func (rt *Router) noteSuccess(sh *shardRef) {
	rt.mu.Lock()
	sh.fails = 0
	rt.mu.Unlock()
}

// ejectLocked removes the shard from rotation and migrates every tenant
// placed on it to its ring successor.
func (rt *Router) ejectLocked(sh *shardRef) {
	sh.healthy = false
	rt.ring.Remove(sh.name)
	rt.migrateLocked(sh.name)
}

// readmitLocked returns a recovered shard to the ring. Placements do not
// migrate back — warm images live where they live; new tenants rebalance
// onto it via the bounded-load walk.
func (rt *Router) readmitLocked(sh *shardRef) {
	sh.healthy = true
	sh.fails = 0
	rt.ring.Add(sh.name)
}

// migrateLocked re-places every tenant held by `from` onto its first
// eligible ring successor, counting each move. Tenants with no eligible
// successor lose their placement (re-placed lazily, or unroutable).
func (rt *Router) migrateLocked(from string) int {
	moved := 0
	for tenant, cur := range rt.placements {
		if cur != from {
			continue
		}
		var dst *shardRef
		for _, cand := range rt.ring.Candidates(tenant) {
			if sh := rt.shards[cand]; sh != nil && sh.healthy && !sh.draining {
				dst = sh
				break
			}
		}
		rt.placeCount[from]--
		if dst == nil {
			delete(rt.placements, tenant)
			continue
		}
		rt.placements[tenant] = dst.name
		rt.placeCount[dst.name]++
		moved++
	}
	rt.migrations.Add(uint64(moved))
	return moved
}

// Drain takes one shard out of rotation gracefully: migrate its tenants to
// successors, flip the shard's own /healthz via /drainz, then wait for
// every in-flight attempt against it to finish — zero dropped requests is
// the contract.
func (rt *Router) Drain(ctx context.Context, name string) error {
	rt.mu.Lock()
	sh := rt.shards[name]
	if sh == nil {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: no shard %q", name)
	}
	sh.draining = true
	rt.ring.Remove(name)
	rt.migrateLocked(name)
	rt.mu.Unlock()

	if err := sh.client.Drain(ctx); err != nil {
		return err
	}
	for sh.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// healthLoop probes every member each period: /healthz gates ring
// membership (ejection after HealthFails consecutive bad probes, automatic
// readmission on recovery), /statsz refreshes the degraded bit and the
// shard's admitted counter for the fleet ledger.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopc:
			return
		case <-tick.C:
		}
		rt.pollOnce()
	}
}

func (rt *Router) pollOnce() {
	rt.mu.Lock()
	refs := make([]*shardRef, 0, len(rt.order))
	for _, name := range rt.order {
		refs = append(refs, rt.shards[name])
	}
	rt.mu.Unlock()
	for _, sh := range refs {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		up, err := sh.client.Healthz(ctx)
		cancel()
		rt.mu.Lock()
		if err != nil || !up {
			sh.fails++
			if sh.fails >= rt.cfg.HealthFails && sh.healthy {
				rt.ejectLocked(sh)
			}
		} else {
			sh.fails = 0
			if !sh.healthy && !sh.draining {
				rt.readmitLocked(sh)
			}
		}
		rt.mu.Unlock()
		if err != nil {
			continue
		}
		sctx, scancel := context.WithTimeout(context.Background(), time.Second)
		doc, serr := sh.client.Statsz(sctx)
		scancel()
		if serr != nil || doc.Counters == nil {
			continue
		}
		sh.admitted.Store(doc.Counters.Admitted)
		deg := false
		for _, b := range doc.Breakers {
			if b.State != "closed" {
				deg = true
				break
			}
		}
		sh.degraded.Store(deg)
	}
}

// ScrapeOnce runs one synchronous health/stats poll — tests use it to
// refresh degraded bits and admitted counters without racing the loop.
func (rt *Router) ScrapeOnce() { rt.pollOnce() }

// StatszDoc builds the router-role StatszV1.
func (rt *Router) StatszDoc() httpfront.StatszV1 {
	rt.mu.Lock()
	shards := make([]httpfront.ShardInfoV1, 0, len(rt.order))
	for _, name := range rt.order {
		sh := rt.shards[name]
		shards = append(shards, httpfront.ShardInfoV1{
			Name: sh.name, Addr: sh.addr,
			Healthy: sh.healthy, Draining: sh.draining,
			Degraded:        sh.degraded.Load(),
			Placements:      rt.placeCount[name],
			Inflight:        sh.inflight.Load(),
			Attempts:        sh.attempts.Load(),
			Delivered:       sh.delivered.Load(),
			TransportErrors: sh.transportErrs.Load(),
			Admitted:        sh.admitted.Load(),
		})
	}
	rt.mu.Unlock()
	hits, misses := rt.hits.Load(), rt.misses.Load()
	cl := &httpfront.ClusterStatszV1{
		Shards:          shards,
		RoutingHits:     hits,
		RoutingMisses:   misses,
		Hedges:          rt.hedges.Load(),
		HedgeWins:       rt.hedgeWins.Load(),
		Retries:         rt.retries.Load(),
		TransportErrors: rt.transportErrs.Load(),
		Migrations:      rt.migrations.Load(),
		Unroutable:      rt.unroutable.Load(),
		Proxied:         rt.proxied.Load(),
	}
	if hits+misses > 0 {
		cl.RoutingHitRate = float64(hits) / float64(hits+misses)
	}
	return httpfront.StatszV1{
		SchemaVersion: httpfront.StatszSchemaVersion,
		Role:          httpfront.RoleRouter,
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Draining:      rt.draining.Load(),
		Cluster:       cl,
	}
}

func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) statsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.StatszDoc())
}

func (rt *Router) drainz(w http.ResponseWriter, r *http.Request) {
	rt.BeginDrain()
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
}

func (rt *Router) adminDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("shard")
	if err := rt.Drain(r.Context(), name); err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "drained", "shard": name})
}

func writeEnvelope(w http.ResponseWriter, code int, eb httpfront.ErrorEnvelope) {
	eb.RetryAfterMS = httpfront.RetryAfterMS(code)
	if eb.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", eb.RetryAfterMS/1000))
	}
	w.Header().Set(httpfront.RequestIDHeader, eb.RequestID)
	writeJSON(w, code, eb)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// scribbleTrapModule's run(mode) behaves two ways: run(0) loads and
// returns the data-segment byte at offset 0 (a pure, repeatable probe);
// run(1) scribbles 0xAB over the first 512 heap bytes — including that
// byte — and then traps, leaving the instance mid-request dirty exactly
// like an aborted guest would.
func scribbleTrapModule() *wasm.Module {
	m := wasm.NewModule("scribble-trap", 1, 16)
	m.AddData(0, []byte{10, 20, 30, 40})
	f := m.Func("run", 1)
	mode := f.Param(0)
	a, v := f.NewReg(), f.NewReg()
	f.BrImm(isa.CondEQ, mode, 0, "probe")
	f.MovImm(a, 0)
	f.MovImm(v, 0xAB)
	f.Label("w")
	f.Store(1, a, 0, v)
	f.AddImm(a, a, 1)
	f.BrImm(isa.CondLT, a, 512, "w")
	f.Trap()
	f.Label("probe")
	f.MovImm(a, 0)
	f.Load(1, v, a, 0)
	f.Ret(v)
	return m
}

// TestFaultedInstanceDetectableWithoutReset is the quarantine contract the
// serving layer's pool relies on: a trapped instance reused *without*
// Reset is detectable by heap hash (and returns wrong answers), while
// Reset restores both hash equality and differential behavioural equality
// with a cold instance.
func TestFaultedInstanceDetectableWithoutReset(t *testing.T) {
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		mod := scribbleTrapModule()

		// Cold reference instance: baseline hash and baseline behaviour.
		coldRT := NewRuntime()
		cold, err := coldRT.Instantiate(mod, scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		coldEng := cpu.NewInterp(coldRT.M)
		baseline := cold.HeapHash()
		res, want := cold.Invoke(coldEng, 1_000_000, 0)
		if res.Reason != cpu.StopHalt || want != 10 {
			t.Fatalf("%v: cold probe = %d (stop %v), want 10/halt", scheme, want, res.Reason)
		}

		// Warm instance on its own machine, provisioned identically.
		rt := NewRuntime()
		inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		eng := cpu.NewInterp(rt.M)
		if got := inst.HeapHash(); got != baseline {
			t.Fatalf("%v: fresh-instance hash %#x != cold baseline %#x", scheme, got, baseline)
		}

		// Fault it mid-request.
		res, _ = inst.Invoke(eng, 1_000_000, 1)
		if res.Reason == cpu.StopHalt {
			t.Fatalf("%v: scribble run halted, want a trap", scheme)
		}

		// Without Reset the poisoning is detectable two ways: the heap hash
		// diverges from the cold baseline, and the probe answer is wrong.
		if got := inst.HeapHash(); got == baseline {
			t.Fatalf("%v: faulted instance hash still %#x — corruption undetectable", scheme, got)
		}
		if res, got := inst.Invoke(eng, 1_000_000, 0); res.Reason == cpu.StopHalt && got == want {
			t.Fatalf("%v: faulted instance still answers %d — test module not dirty enough", scheme, got)
		}

		// Reset restores hash equality and differential equality with cold.
		inst.Reset()
		if got := inst.HeapHash(); got != baseline {
			t.Fatalf("%v: post-Reset hash %#x != cold baseline %#x", scheme, got, baseline)
		}
		res, got := inst.Invoke(eng, 1_000_000, 0)
		if res.Reason != cpu.StopHalt || got != want {
			t.Fatalf("%v: post-Reset probe = %d (stop %v), want %d/halt", scheme, got, res.Reason, want)
		}
	}
}

// TestHeapHashSeesHostPokes: corruption written from the host side (the
// chaos injector's poison seam writes through WriteHeap, not guest code)
// is equally detectable, and a second Reset clears it.
func TestHeapHashSeesHostPokes(t *testing.T) {
	mod := scribbleTrapModule()
	rt := NewRuntime()
	inst, err := rt.Instantiate(mod, sfi.HFI, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := inst.HeapHash()
	inst.WriteHeap(64, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	if inst.HeapHash() == baseline {
		t.Fatal("host-side poke undetectable by HeapHash")
	}
	inst.Reset()
	if got := inst.HeapHash(); got != baseline {
		t.Fatalf("Reset left poke behind: %#x != %#x", got, baseline)
	}
}

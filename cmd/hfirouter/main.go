// Command hfirouter is the cluster front door: it spawns N real hfihttpd
// shard backends as subprocesses over loopback HTTP and routes
// /v1/tenants/{tenant}/invoke across them by bounded-load consistent
// hashing — warm-image-aware (a tenant sticks to the shard already holding
// its verified image), health-gated via each shard's /healthz, with
// graceful drain migration and hedged retries against degraded shards
// (breaker state read from the typed StatszV1 payload).
//
// Usage:
//
//	hfirouter -shards 4                    # spawn 4 shards, serve on :8080
//	hfirouter -shards 4 -shard-bin ./hfihttpd   # spawn a real hfihttpd binary
//	hfirouter -selfdrive -shards 3         # cluster open-loop sweep, then exit
//	hfirouter -selfdrive -json -check scripts/cluster_baseline.json
//
// Routes (the same wire surface as a shard, plus shard admin):
//
//	POST /v1/tenants/{tenant}/invoke       # proxied to the tenant's shard
//	GET  /healthz                          # 200, or 503 once draining
//	GET  /statsz                           # StatszV1, role=router (+ cluster section)
//	POST /drainz                           # flip the router into draining
//	POST /admin/shards/{shard}/drain       # drain one shard, migrating its tenants
//
// With no -shard-bin the router re-execs its own executable as the shard
// processes (the HFI_SHARD_CONFIG environment hook), so `hfirouter
// -shards 4` is fully self-contained.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hfi/internal/cluster"
	"hfi/internal/httpfront"
	"hfi/internal/stats"
)

func main() {
	// Shard role: when this binary was re-exec'd as its own backend,
	// serve as that shard instead of parsing flags.
	if cluster.IsShardProc() {
		os.Exit(cluster.ShardMain())
	}
	var (
		addr      = flag.String("addr", ":8080", "router listen address")
		shards    = flag.Int("shards", 3, "shard subprocesses to spawn")
		shardBin  = flag.String("shard-bin", "", "shard executable (default: re-exec this binary)")
		workers   = flag.Int("workers", 2, "worker goroutines per shard")
		queue     = flag.Int("queue", 16, "admission queue depth per shard")
		policy    = flag.String("policy", "shed", "shard backpressure policy: block | shed")
		dispatch  = flag.Duration("dispatch", 0, "per-request dispatch overhead on each shard")
		window    = flag.Int("breaker-window", 0, "per-tenant breaker window on each shard (0 = off)")
		seed      = flag.Int64("seed", 1, "base seed (shard i gets seed+i)")
		drainWait = flag.Duration("drain-wait", 500*time.Millisecond, "pause after flipping /healthz before draining shards")
		selfdrive = flag.Bool("selfdrive", false, "run the cluster open-loop sweep and exit")
		rates     = flag.String("rates", "400,1200,2400", "offered rates for -selfdrive, req/s")
		requests  = flag.Int("requests", 200, "requests per rate in -selfdrive")
		jsonOut   = flag.Bool("json", false, "emit the -selfdrive result as JSON")
		check     = flag.String("check", "", "baseline JSON to gate the -selfdrive sweep against")
		tol       = flag.Float64("tol", 3.0, "p99 tolerance multiplier for -check")
	)
	flag.Parse()

	opts := cluster.LaunchOpts{
		Bin: *shardBin,
		N:   *shards,
		Shard: cluster.ShardSpec{
			Workers: *workers, QueueDepth: *queue, Policy: *policy,
			DispatchWallUs: dispatch.Microseconds(),
			BreakerWindow:  *window,
			Seed:           *seed, WorldSeed: 1,
		},
	}

	if *selfdrive {
		os.Exit(runSelfdrive(opts, *rates, *requests, *seed, *jsonOut, *check, *tol))
	}
	os.Exit(serve(opts, *addr, *drainWait))
}

func serve(opts cluster.LaunchOpts, addr string, drainWait time.Duration) int {
	cl, err := cluster.Launch(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfirouter:", err)
		return 1
	}
	hs := &http.Server{Addr: addr, Handler: cl.Router.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hfirouter: serving on %s over %d shards\n", addr, opts.N)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "hfirouter:", err)
		cl.Close()
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hfirouter: draining (healthz → 503)")
	cl.Router.BeginDrain()
	time.Sleep(drainWait)
	for _, p := range cl.Procs {
		dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := cl.Router.Drain(dctx, p.Spec.Name); err != nil {
			fmt.Fprintf(os.Stderr, "hfirouter: drain %s: %v\n", p.Spec.Name, err)
		}
		cancel()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	cl.Close()
	fmt.Fprintln(os.Stderr, "hfirouter: drained")
	return 0
}

func runSelfdrive(opts cluster.LaunchOpts, rateList string, perRate int, seed int64, jsonOut bool, check string, tol float64) int {
	var rates []float64
	for _, f := range strings.Split(rateList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			fmt.Fprintf(os.Stderr, "hfirouter: bad rate %q\n", f)
			return 2
		}
		rates = append(rates, r)
	}
	sort.Float64s(rates)

	names := httpfront.RegistryNames(httpfront.DefaultRegistry(1))
	rep, err := cluster.RunSweep(opts, names, rates, perRate, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfirouter:", err)
		return 1
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "hfirouter:", err)
			return 1
		}
	} else {
		tb := &stats.Table{
			Title:   fmt.Sprintf("cluster open-loop sweep, %d shards (%d requests/rate)", rep.Shards, perRate),
			Columns: []string{"rate req/s", "achieved", "ok", "shed%", "hit%", "p50", "p99", "p99.9"},
		}
		for _, pt := range rep.Points {
			tb.AddRow(
				fmt.Sprintf("%.0f", pt.RateRPS),
				fmt.Sprintf("%.0f", pt.AchievedRPS),
				strconv.FormatUint(pt.OK, 10),
				fmt.Sprintf("%.1f", pt.ShedRate*100),
				fmt.Sprintf("%.1f", pt.RoutingHitRate*100),
				stats.Ns(pt.P50Ns), stats.Ns(pt.P99Ns), stats.Ns(pt.P999Ns),
			)
		}
		tb.AddNote("real subprocess shards over loopback: fleet-wide conservation checked per point")
		fmt.Println(tb)
	}

	if check != "" {
		if err := cluster.CheckBaseline(rep, check, tol); err != nil {
			fmt.Fprintln(os.Stderr, "hfirouter:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "hfirouter: sweep within %.1fx of baseline %s\n", tol, check)
	}
	return 0
}

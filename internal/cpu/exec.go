package cpu

import (
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// Architectural semantics shared by both engines. Everything here is
// timing-free; the engines layer costs on top.

// aluOp evaluates a two-operand ALU operation. ok is false for division by
// zero, which raises a hardware fault.
func aluOp(op isa.Op, a, b uint64) (v uint64, ok bool) {
	switch op {
	case isa.OpAdd:
		return a + b, true
	case isa.OpSub:
		return a - b, true
	case isa.OpAnd:
		return a & b, true
	case isa.OpOr:
		return a | b, true
	case isa.OpXor:
		return a ^ b, true
	case isa.OpShl:
		return a << (b & 63), true
	case isa.OpShr:
		return a >> (b & 63), true
	case isa.OpSar:
		return uint64(int64(a) >> (b & 63)), true
	case isa.OpMul:
		return a * b, true
	case isa.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.OpNot:
		return ^a, true
	case isa.OpNeg:
		return -a, true
	}
	panic("cpu: not an ALU op: " + op.String())
}

// regVal reads a register operand, treating RegNone as zero.
func (m *Machine) regVal(r isa.Reg) uint64 {
	if r == isa.RegNone {
		return 0
	}
	return m.Regs[r]
}

// plainEA computes the effective address of a non-hmov memory operation.
func (m *Machine) plainEA(in *isa.Instr) uint64 {
	return isa.PlainEA(m.regVal(in.Rs1), m.regVal(in.Rs2), in.Scale, in.Disp)
}

// signExtend sign-extends the low size bytes of v.
func signExtend(v uint64, size uint8) uint64 {
	shift := 64 - 8*uint(size)
	return uint64(int64(v<<shift) >> shift)
}

// loadValue reads memory architecturally, applying sign extension.
func (m *Machine) loadValue(addr uint64, in *isa.Instr) uint64 {
	v := m.Mem().Read(addr, in.Size)
	if in.SignExt {
		v = signExtend(v, in.Size)
	}
	return v
}

// checkMMU verifies page permissions. HFI regions and page tables are
// orthogonal mechanisms (§1: HFI "does not rely on the MMU"); both are
// enforced. Returns false on a page fault.
func (m *Machine) checkMMU(addr uint64, size uint8, write bool) bool {
	want := kernel.ProtRead
	if write {
		want = kernel.ProtWrite
	}
	return m.AS.CheckAccess(addr, size, want)
}

// hfiMicro executes the microcoded HFI configuration instructions
// (hfi_set_region and friends). It returns the number of 8-byte memory
// moves performed (for cost accounting) and a fault, if any. The caller
// has already verified PrivilegedAllowed where required.
func (m *Machine) hfiMicro(in *isa.Instr) (memMoves int, fault *hfi.Fault) {
	switch in.Op {
	case isa.OpHfiSetRegion:
		ptr := m.regVal(in.Rs2)
		var buf [hfi.RegionTSize]byte
		m.Mem().ReadBytes(ptr, buf[:])
		return hfi.RegionTSize / 8, m.HFI.SetRegionByNumber(int(in.Imm), buf[:])
	case isa.OpHfiGetRegion:
		buf, ok := m.HFI.GetRegionByNumber(int(in.Imm))
		if !ok {
			return 0, m.HFI.PrivFault(0)
		}
		ptr := m.regVal(in.Rs2)
		m.Mem().WriteBytes(ptr, buf[:])
		return hfi.RegionTSize / 8, nil
	case isa.OpHfiClearRegion:
		return 0, m.HFI.ClearRegion(int(in.Imm))
	case isa.OpHfiClearAll:
		return 0, m.HFI.ClearAllRegions()
	}
	panic("cpu: not an HFI microcode op: " + in.Op.String())
}

// hfiEnter reads the sandbox_t at ptr, loads the referenced region table,
// and enters the sandbox. It returns the enter result for cost accounting.
func (m *Machine) hfiEnter(ptr uint64) (hfi.EnterResult, *hfi.Fault) {
	var sb [hfi.SandboxTSize]byte
	m.Mem().ReadBytes(ptr, sb[:])
	cfg := hfi.DecodeSandboxT(sb[:])
	// Microcode loads the region descriptor table before flipping the
	// enable bit, so the loads themselves are not subject to the new
	// regions. Region-register locking still applies (native sandboxes
	// cannot re-enter), which State.Enter checks first.
	if m.HFI.Enabled && !m.HFI.Bank.Cfg.Hybrid {
		return hfi.EnterResult{}, m.HFI.PrivFault(ptr)
	}
	if cfg.RegionsPtr != 0 {
		entry := make([]byte, hfi.RegionEntrySize)
		for i := uint64(0); i < cfg.RegionCount; i++ {
			m.Mem().ReadBytes(cfg.RegionsPtr+i*hfi.RegionEntrySize, entry)
			if f := m.HFI.ApplyRegionEntry(entry); f != nil {
				return hfi.EnterResult{}, f
			}
		}
	}
	return m.HFI.Enter(cfg)
}

// doSyscall applies HFI's syscall interposition and, if the call is
// allowed through, dispatches to the kernel. It returns the next PC
// (normally pc+4; the exit handler for redirected calls), whether the
// syscall was redirected, and a fault when a native sandbox makes a
// syscall with no exit handler installed.
func (m *Machine) doSyscall(pc uint64) (next uint64, redirected bool, fault *hfi.Fault) {
	if !m.HFI.SyscallAllowed() {
		// Native sandbox: decode-stage redirect to the exit handler
		// (§4.4). One extra cycle is charged by the engines.
		res := m.HFI.SyscallExit(m.Regs[isa.R0])
		if res.Handler != 0 {
			m.LastExitPC = pc + isa.InstrBytes
			return res.Handler, true, nil
		}
		// No handler installed: the sandbox has nowhere to go.
		return 0, true, m.HFI.PrivFault(pc)
	}
	m.Kern.Syscall(m.AS, &m.Regs)
	return pc + isa.InstrBytes, false, nil
}

// doHostcall dispatches a host-call gate instruction to the runtime's
// registered dispatcher. Unlike a syscall it is never redirected: the gate
// IS the designed exit, on every scheme — the verifier proves it is only
// reachable through the designated call gate, and the host function runs
// in the trusted runtime. A machine with no dispatcher installed treats
// the instruction as privileged and faults.
func (m *Machine) doHostcall(pc uint64) (next uint64, fault *hfi.Fault) {
	if m.HostcallFn == nil {
		return 0, m.HFI.PrivFault(pc)
	}
	m.HostcallFn(&m.Regs)
	return pc + isa.InstrBytes, nil
}

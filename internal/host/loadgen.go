package host

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hfi/internal/faas"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

// Class is one traffic class of a synthetic mix: a tenant under an
// isolation configuration, drawn with probability Weight / sum(Weights).
type Class struct {
	Weight int
	Tenant workloads.Tenant
	Iso    faas.Config
}

// DefaultMix is the standard mixed-tenant traffic: the four scaled-down
// Table 1 tenants spread across isolation configurations (so pool keying by
// (tenant, config) is actually exercised), weighted so the deliberately
// heavy image-classification tenant stays rare, as tail-heavy tenants are
// in production mixes.
func DefaultMix() []Class {
	light := workloads.FaaSTenantsLight()
	return []Class{
		{Weight: 8, Tenant: light[3], Iso: faas.StockLucet()},                                    // templated-html
		{Weight: 4, Tenant: light[0], Iso: faas.LucetHFI()},                                      // xml-to-json
		{Weight: 3, Tenant: light[2], Iso: faas.Config{Name: "HFI", Scheme: sfi.HFI}},            // check-sha256
		{Weight: 1, Tenant: light[1], Iso: faas.Config{Name: "Bounds", Scheme: sfi.BoundsCheck}}, // image-classification
	}
}

// BuildSchedule deterministically expands a mix into `total` requests:
// classes are drawn weight-proportionally from a seeded PRNG and each class
// keeps its own request sequence numbers. The same (mix, total, seed)
// always yields the same request set, which is what makes concurrent-run
// checksums comparable against single-threaded reference runs.
func BuildSchedule(mix []Class, total int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	wsum := 0
	for _, c := range mix {
		wsum += c.Weight
	}
	seqs := make([]uint64, len(mix))
	reqs := make([]Request, total)
	for i := range reqs {
		w := rng.Intn(wsum)
		k := 0
		for w >= mix[k].Weight {
			w -= mix[k].Weight
			k++
		}
		reqs[i] = NewRequest(mix[k].Tenant.Name, seqs[k],
			WithWorkload(mix[k].Tenant), WithIso(mix[k].Iso))
		seqs[k]++
	}
	return reqs
}

// ReferenceChecksum serves the exact request set of BuildSchedule(mix,
// total, seed) single-threaded through the faas warm-instance path and
// returns the aggregate response checksum — the ground truth the concurrent
// host must match (engine-equivalence invariant).
func ReferenceChecksum(mix []Class, total int, seed int64) (uint64, error) {
	reqs := BuildSchedule(mix, total, seed)
	instances := make(map[poolKey]*faas.TenantInstance)
	var sum uint64
	for _, r := range reqs {
		key := poolKey{r.Tenant.Name, r.Iso}
		ti := instances[key]
		if ti == nil {
			var err error
			ti, err = faas.Provision(r.Tenant, r.Iso)
			if err != nil {
				return 0, err
			}
			instances[key] = ti
		}
		body, _ := ti.ServeRequest(int(r.Seq), 0)
		sum ^= faas.HashResponse(int(r.Seq), body)
	}
	return sum, nil
}

// LoadResult aggregates one load-generator run.
type LoadResult struct {
	Summary stats.ServeSummary
	// Checksum is the XOR of faas.HashResponse over all StatusOK
	// responses — completion-order independent.
	Checksum uint64
	Elapsed  time.Duration
}

// RunClosedLoop drives the server with `clients` concurrent closed-loop
// clients: each client issues its next request as soon as the previous one
// completes, pulling from a shared deterministic schedule of `total`
// requests. This is the throughput-oriented generator (offered load tracks
// capacity; nothing sheds under PolicyBlock).
func RunClosedLoop(s *Server, mix []Class, clients, total int, seed int64) LoadResult {
	reqs := BuildSchedule(mix, total, seed)
	var next atomic.Int64
	sums := make(chan uint64, clients)
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local uint64
			for {
				i := int(next.Add(1) - 1)
				if i >= total {
					break
				}
				r := s.Do(context.Background(), reqs[i])
				if r.Status == StatusOK {
					local ^= faas.HashResponse(int(reqs[i].Seq), r.Body)
				}
			}
			sums <- local
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(sums)
	var sum uint64
	for v := range sums {
		sum ^= v
	}
	return LoadResult{Summary: s.Snapshot(elapsed), Checksum: sum, Elapsed: elapsed}
}

// RunOpenLoop drives the server with a Poisson-ish open-loop arrival
// process at `rate` requests per second: inter-arrival gaps are
// exponentially distributed from a seeded PRNG, so the offered load is
// independent of service capacity — the generator that actually exercises
// queueing and shedding. The arrival schedule (classes, sequence numbers,
// gaps) is deterministic for a given seed; which requests shed under
// overload is not, by nature.
func RunOpenLoop(s *Server, mix []Class, rate float64, total int, seed int64) LoadResult {
	reqs := BuildSchedule(mix, total, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	due := make([]time.Duration, total)
	var t float64
	for i := range due {
		t += rng.ExpFloat64() / rate * 1e9
		due[i] = time.Duration(t)
	}

	var (
		mu  sync.Mutex
		sum uint64
		wg  sync.WaitGroup
	)
	t0 := time.Now()
	for i := 0; i < total; i++ {
		if d := time.Until(t0.Add(due[i])); d > 0 {
			time.Sleep(d)
		}
		ch := s.Submit(context.Background(), reqs[i])
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			if r := <-ch; r.Status == StatusOK {
				mu.Lock()
				sum ^= faas.HashResponse(seq, r.Body)
				mu.Unlock()
			}
		}(int(reqs[i].Seq))
	}
	wg.Wait()
	elapsed := time.Since(t0)
	return LoadResult{Summary: s.Snapshot(elapsed), Checksum: sum, Elapsed: elapsed}
}

// SweepPoint is one offered-load level of an open-loop rate sweep — a row
// of the hockey-stick table. Latency percentiles cover executed requests
// (ok + timeout + fault); shed and canceled requests never ran.
type SweepPoint struct {
	RateRPS     float64 `json:"rate_rps"`
	Offered     int     `json:"offered"`
	OK          uint64  `json:"ok"`
	Timeouts    uint64  `json:"timeouts"`
	Faults      uint64  `json:"faults"`
	Shed        uint64  `json:"shed"`
	Rejected    uint64  `json:"rejected"`
	Canceled    uint64  `json:"canceled"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	AchievedRPS float64 `json:"achieved_rps"`
	ShedRate    float64 `json:"shed_rate"`
}

// MakeSweepPoint flattens one run's summary into a sweep row (shared by
// the in-process generator here and the HTTP generator in
// internal/httpfront).
func MakeSweepPoint(rate float64, offered int, sum stats.ServeSummary) SweepPoint {
	return SweepPoint{
		RateRPS: rate, Offered: offered,
		OK: sum.OK, Timeouts: sum.Timeouts, Faults: sum.Faults,
		Shed: sum.Shed, Rejected: sum.Rejected, Canceled: sum.Canceled,
		P50Ns: sum.P50Ns, P99Ns: sum.P99Ns, P999Ns: sum.P999Ns,
		AchievedRPS: sum.ThroughputRPS, ShedRate: sum.ShedRate,
	}
}

// RunRateSweep produces the open-loop latency-vs-offered-load curve: one
// RunOpenLoop point per rate, each against a fresh server from newServer
// so queue state and latency samples never bleed between points. This is
// the measurement closed-loop generators cannot make: a closed loop's
// offered load collapses to service capacity the moment the server slows
// down, hiding exactly the queueing delay the p99 hockey stick exists to
// show.
func RunRateSweep(newServer func() *Server, mix []Class, rates []float64, perRate int, seed int64) []SweepPoint {
	pts := make([]SweepPoint, 0, len(rates))
	for _, rate := range rates {
		s := newServer()
		res := RunOpenLoop(s, mix, rate, perRate, seed)
		s.Close()
		pts = append(pts, MakeSweepPoint(rate, perRate, res.Summary))
	}
	return pts
}

package host

import (
	"testing"
	"time"
)

// Breaker unit tests drive the state machine with explicit clocks — no
// sleeping, no goroutines; every transition is checked exactly.

func breakerClock() (func(d time.Duration) time.Time, time.Time) {
	t0 := time.Unix(1000, 0)
	return func(d time.Duration) time.Time { return t0.Add(d) }, t0
}

func TestBreakerTripAndHold(t *testing.T) {
	at, t0 := breakerClock()
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 4, TripRatio: 0.5,
		OpenFor: 100 * time.Millisecond, Probes: 2})

	// Below MinSamples nothing trips, even at 100% failure.
	b.record(true, t0)
	b.record(true, t0)
	if b.state != breakerClosed {
		t.Fatalf("tripped below MinSamples")
	}
	// 3 fails / 4 samples ≥ 0.5 → trip.
	b.record(false, t0)
	b.record(true, t0)
	if b.state != breakerOpen {
		t.Fatalf("state = %v, want open", b.state)
	}
	if b.tripCount() != 1 {
		t.Fatalf("trips = %d, want 1", b.tripCount())
	}
	// Sheds while open, ignores late results.
	if b.allow(at(50 * time.Millisecond)) {
		t.Fatalf("allowed during OpenFor hold")
	}
	b.record(true, at(60*time.Millisecond))
	if b.state != breakerOpen {
		t.Fatalf("late result moved state to %v", b.state)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	at, t0 := breakerClock()
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 2, TripRatio: 0.5,
		OpenFor: 100 * time.Millisecond, Probes: 2})
	b.record(true, t0)
	b.record(true, t0)
	if b.state != breakerOpen {
		t.Fatalf("not open after 2/2 failures")
	}

	// After OpenFor: exactly Probes admissions, then shed again.
	if !b.allow(at(150 * time.Millisecond)) {
		t.Fatalf("first probe not admitted")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.state)
	}
	if !b.allow(at(151 * time.Millisecond)) {
		t.Fatalf("second probe not admitted")
	}
	if b.allow(at(152 * time.Millisecond)) {
		t.Fatalf("third admission allowed with Probes=2 outstanding")
	}

	// Both probes succeed → closed, window fresh.
	b.record(false, at(160*time.Millisecond))
	if b.state != breakerHalfOpen {
		t.Fatalf("closed after only one probe success")
	}
	b.record(false, at(161*time.Millisecond))
	if b.state != breakerClosed {
		t.Fatalf("state = %v, want closed after all probes ok", b.state)
	}
	if !b.allow(at(162 * time.Millisecond)) {
		t.Fatalf("closed breaker not allowing")
	}
	if b.n != 0 || b.fails != 0 {
		t.Fatalf("window not reset after recovery: n=%d fails=%d", b.n, b.fails)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	at, t0 := breakerClock()
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 2, TripRatio: 0.5,
		OpenFor: 100 * time.Millisecond, Probes: 1})
	b.record(true, t0)
	b.record(true, t0)
	if !b.allow(at(150 * time.Millisecond)) {
		t.Fatalf("probe not admitted")
	}
	b.record(true, at(160*time.Millisecond))
	if b.state != breakerOpen {
		t.Fatalf("state = %v, want re-opened", b.state)
	}
	if b.tripCount() != 2 {
		t.Fatalf("trips = %d, want 2", b.tripCount())
	}
	// The re-open hold starts from the probe failure, not the first trip.
	if b.allow(at(200 * time.Millisecond)) {
		t.Fatalf("allowed only 40ms into the second hold")
	}
	if !b.allow(at(270 * time.Millisecond)) {
		t.Fatalf("not half-opened after the second hold elapsed")
	}
}

func TestBreakerSlidingWindowForgets(t *testing.T) {
	_, t0 := breakerClock()
	b := newBreaker(BreakerConfig{Window: 4, MinSamples: 4, TripRatio: 0.75,
		OpenFor: time.Second, Probes: 1})
	// 2 fails then a run of successes: old fails slide out, never trips.
	b.record(true, t0)
	b.record(true, t0)
	for i := 0; i < 8; i++ {
		b.record(false, t0)
	}
	if b.state != breakerClosed {
		t.Fatalf("tripped despite failures sliding out of the window")
	}
	if b.fails != 0 {
		t.Fatalf("fails = %d after window slid clean, want 0", b.fails)
	}
}

func TestBreakerDisabledIsNil(t *testing.T) {
	b := newBreaker(BreakerConfig{})
	if b != nil {
		t.Fatalf("Window=0 should disable the breaker")
	}
	// All nil-receiver methods are safe and permissive.
	if !b.allow(time.Now()) {
		t.Fatalf("nil breaker must allow")
	}
	b.record(true, time.Now())
	if b.tripCount() != 0 {
		t.Fatalf("nil breaker tripCount != 0")
	}
}

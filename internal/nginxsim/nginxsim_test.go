package nginxsim

import "testing"

func TestServeAllProtections(t *testing.T) {
	var tput [3]float64
	for _, prot := range []Protection{ProtNone, ProtMPK, ProtHFI} {
		srv, err := New(prot)
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		res, err := srv.Serve(16<<10, 5)
		if err != nil {
			t.Fatalf("%v: %v", prot, err)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%v: zero throughput", prot)
		}
		tput[prot] = res.Throughput
		if srv.Crossings == 0 {
			t.Fatalf("%v: no domain crossings", prot)
		}
	}
	if !(tput[ProtHFI] < tput[ProtMPK] && tput[ProtMPK] < tput[ProtNone]) {
		t.Fatalf("throughput ordering: none=%.0f mpk=%.0f hfi=%.0f", tput[ProtNone], tput[ProtMPK], tput[ProtHFI])
	}
}

func TestCryptoDeterministic(t *testing.T) {
	// The same record encrypts identically under every protection — the
	// schemes change costs, not results.
	var digests [3]uint64
	for _, prot := range []Protection{ProtNone, ProtMPK, ProtHFI} {
		srv, err := New(prot)
		if err != nil {
			t.Fatal(err)
		}
		m := srv.RT.M
		for i := uint64(0); i < 64; i++ {
			m.Mem().StoreByte(srv.data+bufOff+i, byte(i*7))
		}
		if _, err := srv.Serve(0, 1); err != nil {
			t.Fatal(err)
		}
		var d uint64
		for i := uint64(0); i < 64; i += 8 {
			d ^= m.Mem().Read(srv.data+bufOff+i, 8)
		}
		digests[prot] = d
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatalf("ciphertexts diverge: %#x %#x %#x", digests[0], digests[1], digests[2])
	}
}

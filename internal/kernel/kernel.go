package kernel

import (
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/mem"
)

// Guest syscall numbers. The guest places the number in R0 and arguments
// in R1-R5; the result (or negative errno) returns in R0.
const (
	SysExit     = 0
	SysWrite    = 1
	SysRead     = 2
	SysOpen     = 3
	SysClose    = 4
	SysMmap     = 5
	SysMprotect = 6
	SysMunmap   = 7
	SysMadvise  = 8
	SysGetTime  = 9
	SysYield    = 10

	// NumSyscalls bounds the syscall table for filters.
	NumSyscalls = 11
)

// Errno values returned (negated) in R0.
const (
	ENOENT = 2
	EIO    = 5
	EBADF  = 9
	EAGAIN = 11
	ENOMEM = 12
	EACCES = 13
	EFAULT = 14
	EINVAL = 22
	ENOSYS = 38
	EDQUOT = 122
)

// Filter is the syscall-interposition hook: the seccomp-bpf baseline
// implements it. Check returns whether the syscall may proceed and the
// simulated evaluation cost in nanoseconds.
type Filter interface {
	Check(sysno uint64, args [5]uint64) (allow bool, costNs uint64)
}

// SigInfo describes a delivered signal, mirroring what a SIGSEGV handler
// would learn plus the HFI MSR contents (§3.3.2: "The signal handler can
// examine the MSR to disambiguate the cause").
type SigInfo struct {
	Addr      uint64
	PC        uint64
	HFIReason hfi.ExitReason
	HFIInfo   uint64
}

// SignalHandler is a host-side handler registered by a trusted runtime.
// It returns the address execution should resume at (0 halts the machine).
type SignalHandler func(info SigInfo) (resumePC uint64)

type openFile struct {
	name string
	data []byte
	off  int
}

// Kernel is the simulated OS. One Kernel serves one simulated machine; it
// owns the virtual file system, syscall dispatch, the cost model, and the
// signal path.
type Kernel struct {
	Clock *Clock
	Costs CostModel

	// Multicore adds TLB-shootdown IPI costs to operations that
	// invalidate translations, modeling the concurrent FaaS environment
	// of §6.3.
	Multicore bool

	// TLB, when set, is invalidated by unmap/protect/madvise operations.
	TLB *mem.TLB

	// FS is the virtual file system.
	FS map[string][]byte

	fds    map[int]*openFile
	nextFD int

	// Filter, when set, interposes on every syscall (seccomp-bpf).
	Filter Filter

	// Sigsegv is the registered SIGSEGV handler.
	Sigsegv SignalHandler

	// ConsoleOut accumulates SysWrite output to fd 1.
	ConsoleOut []byte

	// SyscallCount counts dispatched syscalls by number.
	SyscallCount [NumSyscalls]uint64

	// ExitStatus is set by SysExit.
	ExitStatus uint64
	Exited     bool
}

// New returns a kernel with the default cost model and an empty file
// system, sharing the given clock.
func New(clock *Clock) *Kernel {
	return &Kernel{
		Clock:  clock,
		Costs:  DefaultCosts(),
		FS:     make(map[string][]byte),
		fds:    make(map[int]*openFile),
		nextFD: 3,
	}
}

func (k *Kernel) shootdown() {
	if k.TLB != nil {
		k.TLB.InvalidateAll()
	}
	if k.Multicore {
		k.Clock.Advance(k.Costs.TLBShootdown)
	}
}

// Mmap reserves length bytes with the given protection, charging costs.
func (k *Kernel) Mmap(as *AddressSpace, length uint64, prot Prot) (uint64, error) {
	k.Clock.Advance(k.Costs.SyscallBase + k.Costs.MmapReserve)
	return as.Map(length, prot)
}

// Mprotect changes protections, charging the calibrated cost.
func (k *Kernel) Mprotect(as *AddressSpace, addr, length uint64, prot Prot) error {
	pages, err := as.Protect(addr, length, prot)
	cost := k.Costs.SyscallBase + k.Costs.MprotectBase + pages*k.Costs.MprotectPerPage
	k.Clock.Advance(cost)
	if err == nil {
		k.shootdown()
	}
	return err
}

// Munmap removes a mapping, charging costs including the shootdown.
func (k *Kernel) Munmap(as *AddressSpace, addr, length uint64) error {
	pages, err := as.Unmap(addr, length)
	k.Clock.Advance(k.Costs.SyscallBase + k.Costs.MunmapBase + pages*k.Costs.MunmapPerPage)
	if err == nil {
		k.shootdown()
	}
	return err
}

// Madvise discards [addr, addr+length) (MADV_DONTNEED semantics). The
// guardBytes parameter is the amount of PROT_NONE reservation included in
// the range; the kernel walks those VMAs even though nothing is resident
// (see GuardWalkPerGiB).
func (k *Kernel) Madvise(as *AddressSpace, addr, length uint64) {
	resident := as.Discard(addr, length)
	// The kernel walks the PROT_NONE VMAs in the range even though nothing
	// is resident there.
	guardBytes := as.ProtNoneBytesIn(addr, length)
	cost := k.Costs.SyscallBase + k.Costs.MadviseBase +
		resident*k.Costs.MadvisePerResidentPage +
		guardBytes/(1<<30)*GuardWalkPerGiB
	k.Clock.Advance(cost)
	k.shootdown()
}

// DeliverSignal invokes the registered SIGSEGV handler, charging the
// delivery cost, and returns the resume PC (0 if unhandled).
func (k *Kernel) DeliverSignal(info SigInfo) uint64 {
	k.Clock.Advance(k.Costs.SignalDeliver)
	if k.Sigsegv == nil {
		return 0
	}
	return k.Sigsegv(info)
}

// Syscall dispatches a guest system call. regs is the architectural
// register file; as the caller's address space. The caller (the execution
// engine) has already applied HFI's interposition rules — by the time the
// kernel sees a syscall it is architecturally allowed to proceed.
func (k *Kernel) Syscall(as *AddressSpace, regs *[isa.NumRegs]uint64) {
	sysno := regs[isa.R0]
	args := [5]uint64{regs[isa.R1], regs[isa.R2], regs[isa.R3], regs[isa.R4], regs[isa.R5]}

	if k.Filter != nil {
		allow, cost := k.Filter.Check(sysno, args)
		k.Clock.Advance(cost)
		if !allow {
			regs[isa.R0] = negErrno(EACCES)
			return
		}
	}
	k.Clock.Advance(k.Costs.SyscallBase)
	if sysno < NumSyscalls {
		k.SyscallCount[sysno]++
	}

	switch sysno {
	case SysExit:
		k.Exited = true
		k.ExitStatus = args[0]
	case SysWrite:
		regs[isa.R0] = k.sysWrite(as, args)
	case SysRead:
		regs[isa.R0] = k.sysRead(as, args)
	case SysOpen:
		regs[isa.R0] = k.sysOpen(as, args)
	case SysClose:
		regs[isa.R0] = k.sysClose(args)
	case SysMmap:
		addr, err := k.mmapNoCharge(as, args[0], Prot(args[1]))
		if err != nil {
			regs[isa.R0] = negErrno(ENOMEM)
		} else {
			regs[isa.R0] = addr
		}
	case SysMprotect:
		pages, err := as.Protect(args[0], args[1], Prot(args[2]))
		k.Clock.Advance(k.Costs.MprotectBase + pages*k.Costs.MprotectPerPage)
		if err != nil {
			regs[isa.R0] = negErrno(EINVAL)
		} else {
			k.shootdown()
			regs[isa.R0] = 0
		}
	case SysMunmap:
		pages, err := as.Unmap(args[0], args[1])
		k.Clock.Advance(k.Costs.MunmapBase + pages*k.Costs.MunmapPerPage)
		if err != nil {
			regs[isa.R0] = negErrno(EINVAL)
		} else {
			k.shootdown()
			regs[isa.R0] = 0
		}
	case SysMadvise:
		resident := as.Discard(args[0], args[1])
		k.Clock.Advance(k.Costs.MadviseBase + resident*k.Costs.MadvisePerResidentPage)
		k.shootdown()
		regs[isa.R0] = 0
	case SysGetTime:
		regs[isa.R0] = k.Clock.Now()
	case SysYield:
		regs[isa.R0] = 0
	default:
		regs[isa.R0] = negErrno(ENOSYS)
	}
}

func (k *Kernel) mmapNoCharge(as *AddressSpace, length uint64, prot Prot) (uint64, error) {
	k.Clock.Advance(k.Costs.MmapReserve)
	return as.Map(length, prot)
}

func negErrno(e uint64) uint64 { return -e & (1<<64 - 1) }

func (k *Kernel) sysOpen(as *AddressSpace, args [5]uint64) uint64 {
	k.Clock.Advance(k.Costs.FileOp)
	name := make([]byte, args[1])
	as.Mem.ReadBytes(args[0], name)
	data, ok := k.FS[string(name)]
	if !ok {
		return negErrno(EINVAL)
	}
	fd := k.nextFD
	k.nextFD++
	// Copy so guest reads see a stable snapshot.
	k.fds[fd] = &openFile{name: string(name), data: data}
	return uint64(fd)
}

func (k *Kernel) sysClose(args [5]uint64) uint64 {
	k.Clock.Advance(k.Costs.FileOp)
	fd := int(args[0])
	if _, ok := k.fds[fd]; !ok {
		return negErrno(EBADF)
	}
	delete(k.fds, fd)
	return 0
}

func (k *Kernel) sysRead(as *AddressSpace, args [5]uint64) uint64 {
	k.Clock.Advance(k.Costs.FileOp)
	f, ok := k.fds[int(args[0])]
	if !ok {
		return negErrno(EBADF)
	}
	n := int(args[2])
	if rem := len(f.data) - f.off; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	if !as.CheckAccess(args[1], 1, ProtWrite) {
		return negErrno(EFAULT)
	}
	as.Mem.WriteBytes(args[1], f.data[f.off:f.off+n])
	f.off += n
	return uint64(n)
}

func (k *Kernel) sysWrite(as *AddressSpace, args [5]uint64) uint64 {
	k.Clock.Advance(k.Costs.FileOp)
	fd, ptr, n := args[0], args[1], args[2]
	buf := make([]byte, n)
	as.Mem.ReadBytes(ptr, buf)
	switch fd {
	case 1, 2:
		k.ConsoleOut = append(k.ConsoleOut, buf...)
	default:
		f, ok := k.fds[int(fd)]
		if !ok {
			return negErrno(EBADF)
		}
		f.data = append(f.data, buf...)
		k.FS[f.name] = f.data
	}
	return n
}

// Process bundles the per-process state the OS saves across context
// switches: general registers, PC, and — with the save-hfi-regs xsave flag
// (§3.3.3) — the HFI register state.
type Process struct {
	Name     string
	Regs     [isa.NumRegs]uint64
	PC       uint64
	HFIState [hfi.XsaveSize]byte
	AS       *AddressSpace
}

// ContextSwitch saves the outgoing core state (including HFI via xsave)
// into old and restores new onto the core, charging the switch cost. It is
// the §3.3.3 path that lets multiple processes use HFI concurrently.
func (k *Kernel) ContextSwitch(old, next *Process, regs *[isa.NumRegs]uint64, pc *uint64, h *hfi.State) {
	k.Clock.Advance(k.Costs.ContextSwitch)
	if old != nil {
		old.Regs = *regs
		old.PC = *pc
		old.HFIState = h.Xsave()
	}
	*regs = next.Regs
	*pc = next.PC
	h.Xrstor(next.HFIState[:])
	if k.TLB != nil {
		k.TLB.InvalidateAll()
	}
}

// Reset clears transient kernel state (fds, console, exit flag) between
// benchmark runs while preserving the file system.
func (k *Kernel) Reset() {
	k.fds = make(map[int]*openFile)
	k.nextFD = 3
	k.ConsoleOut = nil
	k.Exited = false
	k.ExitStatus = 0
	k.SyscallCount = [NumSyscalls]uint64{}
}

package host

import "time"

// BreakerConfig parameterizes the per-tenant circuit breaker. The breaker
// watches each tenant's executed-request outcomes over a sliding window;
// when the fault+timeout fraction trips the threshold the tenant's
// admissions shed fast (StatusShed with ErrBreakerOpen) instead of
// queueing work that will burn a sandbox just to fail. After OpenFor the
// breaker half-opens: a limited number of probe requests are admitted, and
// the breaker closes again only if they all succeed.
type BreakerConfig struct {
	// Window is the per-tenant sliding window of executed outcomes the
	// failure rate is computed over. 0 disables the breaker entirely.
	Window int
	// MinSamples gates tripping until the window holds at least this many
	// outcomes (default Window/2, at least 1).
	MinSamples int
	// TripRatio is the failing fraction (faults + timeouts) that opens the
	// breaker (default 0.5).
	TripRatio float64
	// OpenFor is how long the breaker sheds before half-opening
	// (default 100ms).
	OpenFor time.Duration
	// Probes is how many half-open probe requests are admitted; all must
	// succeed to close the breaker (default 1).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	if c.TripRatio <= 0 {
		c.TripRatio = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 100 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	return [...]string{"closed", "open", "half-open"}[s]
}

// breaker is one tenant's circuit breaker. All methods are nil-safe (a
// nil breaker is a disabled one) and expect the caller to hold the owning
// scheduler's mutex — breaker state shares the admission critical section
// so allow/record decisions can't tear against enqueues.
type breaker struct {
	cfg   BreakerConfig
	state breakerState

	win   []bool // ring of executed outcomes; true = failed
	idx   int
	n     int
	fails int

	openedAt time.Time
	probes   int // half-open probes admitted and not yet resolved
	probeOK  int
	trips    uint64
}

// newBreaker returns nil when cfg disables the breaker.
func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.Window <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, win: make([]bool, cfg.Window)}
}

// allow reports whether an admission may proceed now, advancing
// open → half-open when the hold time has elapsed.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = breakerHalfOpen
		b.probes = 1
		b.probeOK = 0
		return true
	default: // half-open
		if b.probes < b.cfg.Probes {
			b.probes++
			return true
		}
		return false
	}
}

// record feeds one executed outcome (failed = fault or timeout).
func (b *breaker) record(failed bool, now time.Time) {
	if b == nil {
		return
	}
	switch b.state {
	case breakerOpen:
		// A late result from a request admitted before the trip; it
		// already counted toward the window that tripped us.
		return
	case breakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			b.trip(now)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.reset()
		}
		return
	}
	// Closed: slide the window.
	if b.n == len(b.win) {
		if b.win[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.win[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.win)
	if b.n >= b.cfg.MinSamples && float64(b.fails) >= b.cfg.TripRatio*float64(b.n) {
		b.trip(now)
	}
}

func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.trips++
	b.resetWindow()
}

func (b *breaker) reset() {
	b.state = breakerClosed
	b.resetWindow()
}

func (b *breaker) resetWindow() {
	for i := range b.win {
		b.win[i] = false
	}
	b.idx, b.n, b.fails, b.probes, b.probeOK = 0, 0, 0, 0, 0
}

func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	return b.trips
}

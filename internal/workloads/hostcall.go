package workloads

import (
	"encoding/binary"
	"fmt"

	"hfi/internal/hostcall"
	"hfi/internal/isa"
	"hfi/internal/wasm"
)

// Hostcall workload guests: tenants that need a world to talk to. Each
// exercises a different slice of the ABI — stateful KV sessions, chunked
// body streaming over fds 0/1, cross-request fan-in aggregation, and a
// clock/randomness micro-kernel — and every buffer argument is emitted
// so the verifier can prove it stays inside linear memory.
//
// Guest-side buffer map (all well inside the 2 MiB instance heap):
const (
	kvKeyOffset  = 0    // key bytes land here via data segments
	kvValOffset  = 64   // 8-byte KV value scratch
	kvVal2Offset = 72   // second value scratch (fan-in reads)
	streamBuf    = 8192 // streaming chunk buffer
	streamChunk  = 512  // bytes per fd_read/fd_write round trip
)

// KVSession is a stateful multi-invoke tenant: each request loads the
// session counter from the shared KV store, folds the request bytes in,
// stores it back, and answers with the running value. State lives in the
// host world, not the instance heap, so it survives instance recycling.
func KVSession() *wasm.Module {
	m := wasm.NewModule("kv-session", 32, 32)
	m.AddData(kvKeyOffset, []byte("ctr"))
	f := m.Func("run", 1)
	n := f.Param(0)
	z, r, cur, i, b := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	kp, kl, vp, vl := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(z, 0)
	f.MovImm(kp, kvKeyOffset)
	f.MovImm(kl, 3)
	f.MovImm(vp, kvValOffset)
	f.MovImm(vl, 8)
	// cur = KV["ctr"], or 0 on the session's first request.
	f.Hostcall(r, hostcall.NumKvGet, kp, kl, vp, vl)
	f.MovImm(cur, 0)
	f.BrImm(isa.CondNE, r, 8, "fresh")
	f.Load(8, cur, z, kvValOffset)
	f.Label("fresh")
	// Fold the request body in.
	f.MovImm(i, 0)
	f.Label("sum")
	f.Br(isa.CondGEU, i, n, "sumdone")
	f.Load(1, b, i, InputOffset)
	f.Add(cur, cur, b)
	f.Add32Imm(i, i, 1)
	f.Jmp("sum")
	f.Label("sumdone")
	// Persist and respond with the running counter.
	f.Store(8, z, kvValOffset, cur)
	f.Hostcall(r, hostcall.NumKvPut, kp, kl, vp, vl)
	f.Store(8, z, OutputOffset, cur)
	f.MovImm(r, 8)
	f.Ret(r)
	return m
}

// StreamXform is the streaming-body tenant: it pulls the request through
// fd 0 in 512-byte chunks, XOR-transforms each chunk in place, and pushes
// it out through fd 1. The response body is whatever reached stdout, so
// the platform serves it in streaming mode (Tenant.Stream). The chunk
// length returned by fd_read is masked before it is passed back to
// fd_write — the interval refinement the verifier's call-site proof needs.
func StreamXform() *wasm.Module {
	m := wasm.NewModule("stream-xform", 32, 32)
	f := m.Func("run", 1)
	fd0, fd1, buf, cap_, r := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	i, b, w, total := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(fd0, hostcall.FdStdin)
	f.MovImm(fd1, hostcall.FdStdout)
	f.MovImm(buf, streamBuf)
	f.MovImm(cap_, streamChunk)
	f.MovImm(total, 0)
	f.Label("loop")
	f.Hostcall(r, hostcall.NumFdRead, fd0, buf, cap_)
	f.BrImm(isa.CondEQ, r, 0, "eof")
	f.BrImm(isa.CondGTU, r, streamChunk, "eof") // negated errno: stop
	f.AndImm(r, r, 1023)                        // provably in-heap length
	f.MovImm(i, 0)
	f.Label("xf")
	f.Br(isa.CondGEU, i, r, "xfdone")
	f.Load(1, b, i, streamBuf)
	f.XorImm(b, b, 0x5a)
	f.Store(1, i, streamBuf, b)
	f.Add32Imm(i, i, 1)
	f.Jmp("xf")
	f.Label("xfdone")
	f.Hostcall(w, hostcall.NumFdWrite, fd1, buf, r)
	f.Add(total, total, r)
	f.Jmp("loop")
	f.Label("eof")
	f.Ret(total)
	return m
}

// FanInAgg is the fan-in aggregation tenant: each request publishes its
// payload sum into one of four KV slots (chosen by the first body byte)
// and answers with the aggregate across every slot — many producers,
// one rolled-up view, all through the shared store.
func FanInAgg() *wasm.Module {
	m := wasm.NewModule("fan-in-agg", 32, 32)
	m.AddData(kvKeyOffset, []byte("s0s1s2s3"))
	f := m.Func("run", 1)
	n := f.Param(0)
	z, r, v, i, b := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	slot, sum, total := f.NewReg(), f.NewReg(), f.NewReg()
	kp, kl, vp, vp2, vl := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(z, 0)
	f.MovImm(kl, 2)
	f.MovImm(vp, kvValOffset)
	f.MovImm(vp2, kvVal2Offset)
	f.MovImm(vl, 8)
	// slot key offset = (body[0] & 3) * 2 — interval [0,6], provable.
	f.Load(1, slot, z, InputOffset)
	f.AndImm(slot, slot, 3)
	f.ShlImm(slot, slot, 1)
	// sum the body.
	f.MovImm(sum, 0)
	f.MovImm(i, 0)
	f.Label("sum")
	f.Br(isa.CondGEU, i, n, "sumdone")
	f.Load(1, b, i, InputOffset)
	f.Add(sum, sum, b)
	f.Add32Imm(i, i, 1)
	f.Jmp("sum")
	f.Label("sumdone")
	// Publish into this producer's slot.
	f.Store(8, z, kvValOffset, sum)
	f.Hostcall(r, hostcall.NumKvPut, slot, kl, vp, vl)
	// Aggregate across all four slots.
	f.MovImm(total, 0)
	for k := 0; k < 4; k++ {
		skip := fmt.Sprintf("skip%d", k)
		f.MovImm(kp, int64(kvKeyOffset+k*2))
		f.Hostcall(r, hostcall.NumKvGet, kp, kl, vp2, vl)
		f.BrImm(isa.CondNE, r, 8, skip)
		f.Load(8, v, z, kvVal2Offset)
		f.Add(total, total, v)
		f.Label(skip)
	}
	f.Store(8, z, OutputOffset, total)
	f.MovImm(r, 8)
	f.Ret(r)
	return m
}

// HostcallMicro is the boundary micro-kernel behind the hostcall
// round-trip experiment: per repetition it samples both clocks and pulls
// 1 KiB of seeded randomness into the heap, then answers with the two
// timestamps — almost nothing but boundary crossings.
func HostcallMicro(reps int) *wasm.Module {
	m := wasm.NewModule("hostcall-micro", 32, 32)
	f := m.Func("run", 1)
	z, t0, t1, r, rep := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	ptr, cnt := f.NewReg(), f.NewReg()
	f.MovImm(z, 0)
	f.MovImm(ptr, streamBuf)
	f.MovImm(cnt, 1024)
	f.MovImm(rep, 0)
	f.Label("again")
	f.Hostcall(t0, hostcall.NumClockMonotonic)
	f.Hostcall(r, hostcall.NumRandomGet, ptr, cnt)
	f.Hostcall(t1, hostcall.NumClockWall)
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(reps), "again")
	f.Store(8, z, OutputOffset, t0)
	f.Store(8, z, OutputOffset+8, t1)
	f.MovImm(r, 16)
	f.Ret(r)
	return m
}

func kvRequest(i int) []byte {
	b := make([]byte, 16)
	for p := range b {
		b[p] = byte(i + p*3)
	}
	return b
}

func streamRequest(i int) []byte {
	// ~1.5 chunks so every request exercises both a full and a partial
	// fd_read/fd_write round trip.
	b := make([]byte, streamChunk+streamChunk/2)
	for p := range b {
		b[p] = byte('a' + (p+i)%26)
	}
	return b
}

func fanInRequest(i int) []byte {
	b := make([]byte, 12)
	b[0] = byte(i) // producer slot = i % 4
	binary.LittleEndian.PutUint64(b[1:9], uint64(i)*2654435761)
	return b
}

func microRequest(i int) []byte { return []byte{byte(i)} }

// HostcallTenants returns the tenants that exercise the host-call layer:
// a stateful KV session, a streaming body transformer, a KV fan-in
// aggregator, and the boundary micro-kernel.
func HostcallTenants() []Tenant {
	return []Tenant{
		{Name: "kv-session", Mod: KVSession(), MakeRequest: kvRequest},
		{Name: "stream-xform", Mod: StreamXform(), MakeRequest: streamRequest, Stream: true},
		{Name: "fan-in-agg", Mod: FanInAgg(), MakeRequest: fanInRequest},
		{Name: "hostcall-micro", Mod: HostcallMicro(4), MakeRequest: microRequest},
	}
}

// HostcallKernels exposes the same guests as corpus workloads for the
// verifier sweep and the mutation harness. Scale maps to repetitions for
// the micro-kernel and is ignored by the request-driven guests.
func HostcallKernels() []Workload {
	return []Workload{
		{Name: "kv-session", Build: func(scale int) *wasm.Module { return KVSession() }, Class: "hostcall"},
		{Name: "stream-xform", Build: func(scale int) *wasm.Module { return StreamXform() }, Class: "hostcall"},
		{Name: "fan-in-agg", Build: func(scale int) *wasm.Module { return FanInAgg() }, Class: "hostcall"},
		{Name: "hostcall-micro", Build: func(scale int) *wasm.Module { return HostcallMicro(scale) }, Class: "hostcall"},
	}
}

package verifier

import (
	"sort"

	"hfi/internal/isa"
)

// CFG is a whole-program control-flow graph over basic blocks. Indirect
// branches (jmpi/calli) get over-approximated successor sets: every
// address-taken instruction address (any movi immediate that decodes to
// an in-range, aligned instruction address, plus every symbol). The
// abstract interpreter does not consume this over-approximation — it
// requires indirect targets to be proven exact — but the CFG makes the
// conservative shape of such programs inspectable and testable.
type CFG struct {
	P *isa.Program
	// Blocks are ordered by start index; block i covers instruction
	// indices [Blocks[i].Start, Blocks[i].End).
	Blocks []BasicBlock
	// blockOf maps a leader instruction index to its position in Blocks.
	blockOf map[int]int
}

// BasicBlock is a maximal single-entry straight-line region.
type BasicBlock struct {
	Start, End int
	// Succs holds successor block indices (into CFG.Blocks).
	Succs []int
	// Indirect marks a block ending in jmpi/calli whose successor set is
	// the over-approximated address-taken set.
	Indirect bool
}

// endsBlock reports whether the instruction terminates a basic block.
func endsBlock(op isa.Op) bool {
	switch op {
	case isa.OpBr, isa.OpJmp, isa.OpJmpInd, isa.OpCall, isa.OpCallInd, isa.OpRet, isa.OpHalt:
		return true
	}
	return false
}

// leaders computes the set of basic-block leader indices.
func leaders(p *isa.Program) []bool {
	lead := make([]bool, len(p.Instrs))
	if len(lead) == 0 {
		return lead
	}
	lead[0] = true
	mark := func(addr uint64) {
		if addr >= p.Base && addr < p.End() && (addr-p.Base)%isa.InstrBytes == 0 {
			lead[(addr-p.Base)/isa.InstrBytes] = true
		}
	}
	for _, a := range p.Symbols {
		mark(a)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.OpBr, isa.OpJmp, isa.OpCall:
			mark(in.Target)
		}
		if endsBlock(in.Op) && i+1 < len(p.Instrs) {
			lead[i+1] = true
		}
	}
	// Indirect branches may land on any address-taken target.
	for _, t := range IndirectTargets(p) {
		lead[t] = true
	}
	return lead
}

// IndirectTargets over-approximates where jmpi/calli can land: every
// symbol plus every movi immediate that is a valid instruction address.
// Returned as sorted, deduplicated instruction indices.
func IndirectTargets(p *isa.Program) []int {
	set := map[int]bool{}
	add := func(addr uint64) {
		if addr >= p.Base && addr < p.End() && (addr-p.Base)%isa.InstrBytes == 0 {
			set[int((addr-p.Base)/isa.InstrBytes)] = true
		}
	}
	for _, a := range p.Symbols {
		add(a)
	}
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpMovImm {
			add(uint64(p.Instrs[i].Imm))
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// BuildCFG partitions p into basic blocks and links successor edges. The
// program must already be structurally valid (Program.Validate).
func BuildCFG(p *isa.Program) *CFG {
	lead := leaders(p)
	g := &CFG{P: p, blockOf: map[int]int{}}
	for i, isLead := range lead {
		if !isLead {
			continue
		}
		end := i + 1
		for end < len(p.Instrs) && !lead[end] && !endsBlock(p.Instrs[end-1].Op) {
			end++
		}
		g.blockOf[i] = len(g.Blocks)
		g.Blocks = append(g.Blocks, BasicBlock{Start: i, End: end})
	}
	indirect := IndirectTargets(p)
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &p.Instrs[b.End-1]
		addSucc := func(idx int) {
			if sb, ok := g.blockOf[idx]; ok {
				b.Succs = append(b.Succs, sb)
			}
		}
		switch last.Op {
		case isa.OpBr:
			addSucc(int((last.Target - p.Base) / isa.InstrBytes))
			if b.End < len(p.Instrs) {
				addSucc(b.End)
			}
		case isa.OpJmp:
			addSucc(int((last.Target - p.Base) / isa.InstrBytes))
		case isa.OpCall:
			addSucc(int((last.Target - p.Base) / isa.InstrBytes))
			if b.End < len(p.Instrs) {
				addSucc(b.End) // return continuation
			}
		case isa.OpJmpInd:
			b.Indirect = true
			for _, t := range indirect {
				addSucc(t)
			}
		case isa.OpCallInd:
			b.Indirect = true
			for _, t := range indirect {
				addSucc(t)
			}
			if b.End < len(p.Instrs) {
				addSucc(b.End)
			}
		case isa.OpRet, isa.OpHalt:
			// No static successors.
		default:
			if b.End < len(p.Instrs) {
				addSucc(b.End)
			}
		}
	}
	return g
}

// BlockAt returns the index into Blocks of the block starting at the
// given instruction index, or -1.
func (g *CFG) BlockAt(instrIndex int) int {
	if b, ok := g.blockOf[instrIndex]; ok {
		return b
	}
	return -1
}

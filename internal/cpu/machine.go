// Package cpu provides the two execution engines of §5.2:
//
//   - Interp, a fast functional interpreter with a per-instruction cycle
//     cost model — the analogue of the paper's compiler-based emulation,
//     used for long-running macro benchmarks; and
//   - Core, a cycle-level out-of-order timing simulator with branch
//     prediction and speculative execution — the analogue of the paper's
//     gem5 model, used for microbenchmarks and the Spectre experiments.
//
// Both engines share a Machine (architectural state + memory system + OS +
// HFI) and the architectural semantics in exec.go, so a program produces
// identical results on either engine; only timing differs. Fig 2
// cross-validates the two.
package cpu

import (
	"fmt"
	"sort"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/mem"
)

// HostReturn is a distinguished guest address: control transferring to it
// returns to the host (the trusted runtime implemented in Go). It plays the
// role of the return address a host-side caller would push before invoking
// guest code, and doubles as an exit-handler target for runtimes that
// handle sandbox exits in host code.
const HostReturn uint64 = 0x7fff_ffff_f000

// StopReason says why an engine's Run loop returned.
type StopReason uint8

// Stop reasons.
const (
	StopHalt       StopReason = iota // guest executed halt
	StopHostReturn                   // control reached HostReturn
	StopExit                         // guest called SysExit
	StopFault                        // unhandled fault
	StopLimit                        // cycle/instruction budget exhausted
)

var stopNames = [...]string{"halt", "host-return", "exit", "fault", "limit"}

func (r StopReason) String() string {
	if int(r) < len(stopNames) {
		return stopNames[r]
	}
	return fmt.Sprintf("stop(%d)", uint8(r))
}

// RunResult reports the outcome of a Run call.
type RunResult struct {
	Reason StopReason
	Fault  *hfi.Fault // set when Reason == StopFault and the fault was HFI's
	// PageFault is set for MMU (guard-page) faults.
	PageFault bool
	FaultAddr uint64
	FaultPC   uint64
}

// Engine abstracts the two execution engines: both run the machine from
// its current PC until a stop condition or a budget limit (instructions
// for Interp, cycles for Core; 0 = unlimited).
type Engine interface {
	Run(limit uint64) RunResult
}

// Machine is the architectural state shared by both engines: registers,
// memory, loaded code, the HFI state, the OS, and the cache hierarchy.
type Machine struct {
	Regs [isa.NumRegs]uint64
	PC   uint64

	AS   *kernel.AddressSpace
	Kern *kernel.Kernel
	HFI  *hfi.State
	Hier *mem.Hierarchy

	// progs holds loaded code images sorted by base address.
	progs []*isa.Program

	// Cycles is the cumulative cycle count across runs (the engines add
	// to it). Rdtsc reads it.
	Cycles uint64

	// Instret counts retired instructions.
	Instret uint64

	// LastExitPC is the instruction after the most recent redirected
	// syscall or handled hfi_exit — the address a trusted runtime resumes
	// the sandbox at after servicing the exit.
	LastExitPC uint64

	// MemHook, when non-nil, observes every data access the interpreter
	// performs architecturally — loads, stores, and the implicit stack
	// push/pop of call and ret — after the HFI and MMU checks have
	// passed. The mutation harness uses it as an escape oracle: a hook
	// that sees an address outside the regions a sandbox owns has caught
	// a containment failure. The pipelined Core does not call it;
	// wrong-path accesses would make the stream ill-defined.
	MemHook func(pc, addr uint64, size uint8, write bool)
}

// NewMachine wires up a machine with a fresh address space, kernel, HFI
// state and cache hierarchy sharing one clock.
func NewMachine() *Machine {
	clock := kernel.NewClock()
	as := kernel.NewAddressSpace()
	k := kernel.New(clock)
	hier := mem.NewHierarchy()
	k.TLB = hier.DTB
	return &Machine{AS: as, Kern: k, HFI: hfi.NewState(), Hier: hier}
}

// LoadProgram registers a code image and maps its address range
// read+execute. Programs must not overlap.
func (m *Machine) LoadProgram(p *isa.Program) error {
	for _, q := range m.progs {
		if p.Base < q.End() && q.Base < p.End() {
			return fmt.Errorf("cpu: program at [%#x,%#x) overlaps [%#x,%#x)", p.Base, p.End(), q.Base, q.End())
		}
	}
	if err := m.AS.MapFixed(p.Base&^uint64(kernel.OSPageSize-1),
		p.Size()+p.Base%kernel.OSPageSize, kernel.ProtRead|kernel.ProtExec); err != nil {
		return err
	}
	m.progs = append(m.progs, p)
	sort.Slice(m.progs, func(i, j int) bool { return m.progs[i].Base < m.progs[j].Base })
	return nil
}

// LoadPrelinked registers a code image whose address range the caller has
// already mapped executable (e.g. inside an aligned code block shared with
// a springboard).
func (m *Machine) LoadPrelinked(p *isa.Program) error {
	for _, q := range m.progs {
		if p.Base < q.End() && q.Base < p.End() {
			return fmt.Errorf("cpu: program at [%#x,%#x) overlaps [%#x,%#x)", p.Base, p.End(), q.Base, q.End())
		}
	}
	m.progs = append(m.progs, p)
	sort.Slice(m.progs, func(i, j int) bool { return m.progs[i].Base < m.progs[j].Base })
	return nil
}

// MustLoadProgram is LoadProgram for setup code where failure is a bug.
func (m *Machine) MustLoadProgram(p *isa.Program) {
	if err := m.LoadProgram(p); err != nil {
		panic(err)
	}
}

// FetchInstr returns the instruction at pc, or nil if pc is not inside any
// loaded program.
func (m *Machine) FetchInstr(pc uint64) *isa.Instr {
	// Binary search over sorted programs.
	i := sort.Search(len(m.progs), func(i int) bool { return m.progs[i].End() > pc })
	if i == len(m.progs) || pc < m.progs[i].Base {
		return nil
	}
	return m.progs[i].At(pc)
}

// Mem returns the backing memory (convenience).
func (m *Machine) Mem() *mem.Memory { return m.AS.Mem }

// Reset clears registers and counters but keeps loaded programs, memory
// contents, and kernel state.
func (m *Machine) Reset() {
	m.Regs = [isa.NumRegs]uint64{}
	m.PC = 0
	m.Cycles = 0
	m.Instret = 0
}

// raiseFault routes a fault through the OS signal path: HFI has already
// disabled the sandbox and recorded the MSR (for HFI faults); the kernel
// delivers a SIGSEGV-like signal to the runtime's registered handler,
// which may return a resume PC.
func (m *Machine) raiseFault(pc uint64, addr uint64, f *hfi.Fault) (resume uint64) {
	info := kernel.SigInfo{Addr: addr, PC: pc}
	if f != nil {
		info.HFIReason = f.Reason
		info.HFIInfo = addr
	}
	return m.Kern.DeliverSignal(info)
}

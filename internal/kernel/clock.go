// Package kernel simulates the operating-system substrate the paper's
// evaluation depends on: virtual address spaces with reserve/commit
// semantics (mmap without permissions for Wasm guard regions), page
// protection changes, madvise(DONTNEED) discards with TLB shootdowns, a
// syscall interface with an interposition hook (for the seccomp-bpf
// baseline), signal delivery (HFI faults arrive as SIGSEGV), and process
// context switches that save HFI state via the extended xsave.
//
// All costs are simulated time on a Clock, with constants calibrated
// against the measurements the paper reports (see CostModel). The
// simulation measures how those costs change across isolation designs —
// the paper's claims are about ratios and shapes, not absolute nanoseconds.
package kernel

// Clock is the simulated time source shared by the kernel and the
// execution engines. Time is in nanoseconds.
//
// The clock is dual-rail: `now` is the worker-visible time every consumer
// reads, and `shadow` is the kernel's audit rail, advanced in lockstep by
// every legitimate time charge. The two can only disagree if something
// moved one rail without the other — which is exactly what the chaos
// injector's differential clock-skew fault does — so DriftNs is a
// zero-false-positive detector for skew between a worker's clock and the
// kernel clock, checked at segment boundaries (end of request).
type Clock struct {
	now    uint64
	shadow uint64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() uint64 { return c.now }

// Advance moves simulated time forward by ns nanoseconds.
func (c *Clock) Advance(ns uint64) {
	c.now += ns
	c.shadow += ns
}

// AdvanceCycles moves time forward by cycles at the given core frequency
// in GHz (cycles/ns).
func (c *Clock) AdvanceCycles(cycles uint64, ghz float64) {
	ns := uint64(float64(cycles) / ghz)
	c.now += ns
	c.shadow += ns
}

// SkewNs is the chaos seam: it drifts the worker rail by ns nanoseconds.
// Common-mode skew (common=true) moves the audit rail too — both clocks
// drift together, which no audit can see and no consumer can be hurt by,
// since only deltas carry meaning. Differential skew leaves the audit rail
// behind and must be caught by DriftNs.
func (c *Clock) SkewNs(ns uint64, common bool) {
	c.now += ns
	if common {
		c.shadow += ns
	}
}

// DriftNs returns the absolute disagreement between the worker rail and
// the kernel audit rail. Zero in a correct system.
func (c *Clock) DriftNs() uint64 {
	if c.now >= c.shadow {
		return c.now - c.shadow
	}
	return c.shadow - c.now
}

// Resync restores agreement after a detected drift by stepping the lagging
// rail forward to the leading one (the monotone direction, as an NTP step
// would), so simulated time never runs backward for either consumer.
func (c *Clock) Resync() {
	if c.now > c.shadow {
		c.shadow = c.now
	} else {
		c.now = c.shadow
	}
}

// CoreGHz is the simulated core frequency, following the paper's Table 2
// baseline (3.3 GHz).
const CoreGHz = 3.3

// CyclesToNs converts a cycle count at CoreGHz to nanoseconds.
func CyclesToNs(cycles uint64) uint64 {
	return uint64(float64(cycles) / CoreGHz)
}

// wire.go — the versioned typed wire API shared by every HFI HTTP tier.
//
// Two documents cross process boundaries: StatszV1 (the /statsz payload a
// shard or router serves and a router scrapes) and ErrorEnvelope (the JSON
// body of every non-2xx invoke response). Both are versioned by
// StatszSchemaVersion / the envelope's closed outcome vocabulary, and their
// JSON keys are pinned by tests in wire_test.go: a renamed key is a wire
// break, and the router unmarshalling a shard's stats must never fall back
// to stringly-typed map lookups.
package httpfront

import (
	"hfi/internal/chaos"
	"hfi/internal/host"
	"hfi/internal/stats"
)

// StatszSchemaVersion is the schema_version value of the current StatszV1
// layout. Bump it (and add a new pin test) on any incompatible change.
const StatszSchemaVersion = 1

// RequestIDHeader carries the request identity end-to-end: a client (or
// the router, on the client's behalf) sets it, every tier echoes it back
// on the response, and the router reuses the same id on hedged duplicates
// so a downstream log can collapse them to one logical request.
const RequestIDHeader = "X-HFI-Request-Id"

// Role values for StatszV1.Role.
const (
	RoleShard  = "shard"
	RoleRouter = "router"
)

// BreakerV1 is one tenant's circuit-breaker position as serialized in
// StatszV1 — the degradation signal hedged retries key on.
type BreakerV1 struct {
	Tenant string `json:"tenant"`
	State  string `json:"state"` // "closed" | "open" | "half-open"
	Trips  uint64 `json:"trips"`
}

// StatszV1 is the versioned /statsz document. A shard fills Serve /
// Tenants / Counters / Breakers from its host.Server; a router leaves
// those nil and fills Cluster instead. Shared fields (schema_version,
// role, uptime, draining) mean one scraper loop handles both tiers.
type StatszV1 struct {
	SchemaVersion int     `json:"schema_version"`
	Role          string  `json:"role"` // RoleShard | RoleRouter
	Shard         string  `json:"shard,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Serve    *stats.ServeSummary   `json:"serve,omitempty"`
	Tenants  []stats.TenantSummary `json:"tenants,omitempty"`
	Counters *host.Counters        `json:"counters,omitempty"`
	Breakers []BreakerV1           `json:"breakers,omitempty"`

	// Chaos is the injector's per-class fire counts (including the
	// substrate classes), present only when the host serves with a chaos
	// injector — a clean server omits the key entirely, so scrapers can
	// tell "no chaos configured" from "chaos configured, nothing fired".
	Chaos *chaos.Summary `json:"chaos,omitempty"`

	// Cluster is the router-tier section: per-shard membership and the
	// routing/hedging/migration ledger. Shards omit it.
	Cluster *ClusterStatszV1 `json:"cluster,omitempty"`
}

// ClusterStatszV1 is the router's view of the fleet.
type ClusterStatszV1 struct {
	Shards []ShardInfoV1 `json:"shards"`

	// Warm-image routing effectiveness: a hit routes a request to the
	// shard already holding the tenant's placement (and therefore its
	// warm verified image); a miss places the tenant fresh.
	RoutingHits    uint64  `json:"routing_hits"`
	RoutingMisses  uint64  `json:"routing_misses"`
	RoutingHitRate float64 `json:"routing_hit_rate"`

	Hedges          uint64 `json:"hedges"`           // duplicate attempts fired at successors
	HedgeWins       uint64 `json:"hedge_wins"`       // hedged duplicate answered first
	Retries         uint64 `json:"retries"`          // re-routes after a transport failure
	TransportErrors uint64 `json:"transport_errors"` // attempts that died before an HTTP status
	Migrations      uint64 `json:"migrations"`       // tenant placements moved off a shard
	Unroutable      uint64 `json:"unroutable"`       // requests with no eligible shard left
	Proxied         uint64 `json:"proxied"`          // requests that received a shard response
}

// ShardInfoV1 is one member's row in the router's /statsz: identity,
// gating state, and the router-side delivery ledger for the conservation
// cross-check (delivered here == admitted there, for live shards).
type ShardInfoV1 struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	// Degraded mirrors the shard's breaker section: any breaker not
	// "closed" marks the shard degraded and makes requests routed to it
	// hedge against the tenant's successor shard.
	Degraded   bool  `json:"degraded"`
	Placements int   `json:"placements"`
	Inflight   int64 `json:"inflight"`

	Attempts        uint64 `json:"attempts"`
	Delivered       uint64 `json:"delivered"`
	TransportErrors uint64 `json:"transport_errors"`
	// Admitted is the shard's own host.Counters.Admitted as of the last
	// stats scrape (0 until the first scrape lands).
	Admitted uint64 `json:"admitted"`
}

// ErrorEnvelope is the JSON body of every non-2xx invoke response, on
// every tier: the outcome class (closed vocabulary, see EnvelopeOutcomes),
// a machine-readable retry hint, the echoed request id, and the shard that
// produced the verdict. The router relays shard envelopes verbatim — a
// client cannot tell (except by the shard field) whether it hit a shard
// directly or through the router.
type ErrorEnvelope struct {
	Outcome      string `json:"outcome"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	RequestID    string `json:"request_id,omitempty"`
	Shard        string `json:"shard,omitempty"`
	// Cause refines the outcome without widening the vocabulary: e.g. a
	// shed whose proximate cause was an open breaker carries
	// cause=breaker_open so dashboards can split backpressure sources.
	Cause string `json:"cause,omitempty"`
	Error string `json:"error,omitempty"`
}

// EnvelopeOutcomes is the closed vocabulary of ErrorEnvelope.Outcome:
// every non-OK host.Status name (hfilint proves the correspondence with
// stats.Outcome and statusOutcome below) plus the transport-level verdicts
// a front can reach without consulting the host. Nothing else may appear
// on the wire.
var EnvelopeOutcomes = [...]string{
	// host.Status-derived (statusOutcome):
	"timeout", "shed", "fault", "rejected", "closed", "canceled",
	// front-level verdicts:
	"unknown_tenant", "bad_request", "body_too_large",
	// router-level verdict: no healthy non-draining shard remained.
	"unroutable",
}

// statusOutcome maps a non-OK host.Status to its envelope outcome string.
// The literals are deliberate (not Status.String()) so hfilint can prove
// the table covers the closed enum and stays in sync with stats.Outcome's
// names — "closed" is the one status with no stats.Outcome counterpart
// (a drained server refuses before outcome accounting begins).
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return "timeout"
	case host.StatusShed:
		return "shed"
	case host.StatusFault:
		return "fault"
	case host.StatusRejected:
		return "rejected"
	case host.StatusClosed:
		return "closed"
	case host.StatusCanceled:
		return "canceled"
	default:
		return "fault"
	}
}

// breakersV1 converts the host snapshot into wire rows.
func breakersV1(in []host.BreakerStatus) []BreakerV1 {
	if len(in) == 0 {
		return nil
	}
	out := make([]BreakerV1, len(in))
	for i, b := range in {
		out[i] = BreakerV1{Tenant: b.Tenant, State: b.State, Trips: b.Trips}
	}
	return out
}

// RetryAfterMS is the documented retry hint per status code: sheds are
// transient by construction (a breaker half-opens, a queue drains), drains
// are not worth hammering. Matches the Retry-After header each front sets.
func RetryAfterMS(code int) int64 {
	switch code {
	case 429:
		return 1000
	case 503:
		return 5000
	default:
		return 0
	}
}

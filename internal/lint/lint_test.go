package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestRepoIsClean runs the full linter over the repository itself: the
// hostcall layer and the verifier must satisfy their own contracts.
func TestRepoIsClean(t *testing.T) {
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range issues {
		t.Errorf("%s", i)
	}
}

// TestErrnoReturnRule feeds the errno check synthetic good and bad
// handlers and pins which shapes it flags.
func TestErrnoReturnRule(t *testing.T) {
	cases := []struct {
		name string
		src  string
		bad  int
	}{
		{"raw positive errno", `package p
func (e *Env) h() uint64 { return kernel.EINVAL }`, 1},
		{"negated errno", `package p
func (e *Env) h() uint64 { return negErrno(kernel.EINVAL) }`, 0},
		{"two-valued helper is exempt", `package p
func (e *Env) checkIn() ([]byte, uint64) { return nil, kernel.EFAULT }`, 0},
		{"non-errno selector untouched", `package p
func (e *Env) h() uint64 { return kernel.OSPageSize }`, 0},
		{"two raw returns", `package p
func (e *Env) h() uint64 { if x { return kernel.EIO }; return kernel.EBADF }`, 2},
		{"resource layer is out of scope", `package p
func (kv *KV) Put() uint64 { return kernel.EDQUOT }
func free() uint64 { return kernel.ENOENT }`, 0},
	}
	for _, c := range cases {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "synthetic.go", c.src, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := lintErrnoReturns(fset, f)
		if len(got) != c.bad {
			t.Errorf("%s: %d issues, want %d: %v", c.name, len(got), c.bad, got)
		}
	}
}

// TestRuleUseCollection pins the violate()/Violation{} extraction,
// including the non-literal-rule finding.
func TestRuleUseCollection(t *testing.T) {
	src := `package p
func f() {
	v.violate(3, "mem-window", "x")
	a.violate(-1, "fact-shape", "y")
	v.violate(0, ruleVar, "computed rule")
	_ = &Violation{Rule: "syscall", Index: 1}
	_ = &Violation{Rule: forwarded, Index: 2} // violate() itself: fine
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	uses, issues := collectRuleUses(fset, f)
	want := map[string]bool{"mem-window": true, "fact-shape": true, "syscall": true}
	if len(uses) != len(want) {
		t.Fatalf("uses = %v, want keys %v", uses, want)
	}
	for _, u := range uses {
		if !want[u.rule] {
			t.Errorf("unexpected rule use %q", u.rule)
		}
	}
	if len(issues) != 1 {
		t.Errorf("issues = %v, want exactly the non-literal finding", issues)
	}
}

// TestTierCostRule pins the cost-provenance check: CostModel field
// selectors are flagged, Table() calls are seen, and unrelated selectors
// (same-name fields on other types included — the rule is deliberately
// name-based) pass or fail exactly as documented.
func TestTierCostRule(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		bad      int
		sawTable bool
	}{
		{"table call only", `package p
func lower(cost cpu.CostModel) { tab := cost.Table(); _ = tab }`, 0, true},
		{"direct field read", `package p
func lower(cost cpu.CostModel) uint64 { return cost.ALU + cost.Branch }`, 2, false},
		{"field read beside table", `package p
func lower(cost cpu.CostModel) uint64 { tab := cost.Table(); return tab[0] + cost.Load }`, 1, true},
		{"cost compare untouched", `package p
func ok(ip *cpu.Interp, low *Lowered) bool { return ip.Cost == low.Cost }`, 0, false},
		{"opcode names untouched", `package p
func f(in isa.Instr) bool { return in.Op == isa.OpLoad || in.Op == isa.OpStore }`, 0, false},
	}
	for _, c := range cases {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "synthetic.go", c.src, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sawTable, got := lintTierCost(fset, f)
		if len(got) != c.bad {
			t.Errorf("%s: %d issues, want %d: %v", c.name, len(got), c.bad, got)
		}
		if sawTable != c.sawTable {
			t.Errorf("%s: sawTable = %v, want %v", c.name, sawTable, c.sawTable)
		}
	}
}

// TestFaultEnumExtraction pins the chaos-rule front end: the Fault enum
// constants are collected in declaration order without the numFaults
// sentinel, and faultNames strings are collected positionally, so a
// class/name count mismatch is detectable.
func TestFaultEnumExtraction(t *testing.T) {
	src := `package p
type Fault uint8
const (
	FaultAlpha Fault = iota
	FaultBeta
	numFaults
)
const unrelated = 7
var faultNames = [...]string{"alpha"}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	classes, names := collectFaultEnum(fset, []*ast.File{f})
	if len(classes) != 2 || classes[0].name != "FaultAlpha" || classes[1].name != "FaultBeta" {
		t.Errorf("classes = %+v, want FaultAlpha, FaultBeta", classes)
	}
	if len(names) != 1 || names[0] != "alpha" {
		t.Errorf("names = %v, want [alpha] — FaultBeta is nameless and must be flaggable", names)
	}
}

// TestRegistryExtraction pins ruleRegistry key collection.
func TestRegistryExtraction(t *testing.T) {
	src := `package p
var ruleRegistry = map[string]string{
	"alpha": "first",
	"beta":  "second",
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = fset
	keys := collectRegistry(f)
	if !keys["alpha"] || !keys["beta"] || len(keys) != 2 {
		t.Errorf("registry keys = %v", keys)
	}
}

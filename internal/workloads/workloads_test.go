package workloads

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// runOnce instantiates and runs a module, returning the result.
func runOnce(t *testing.T, mod *wasm.Module, scheme sfi.Scheme, timing bool) uint64 {
	t.Helper()
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
	if err != nil {
		t.Fatalf("%s/%v: %v", mod.Name, scheme, err)
	}
	var eng cpu.Engine
	if timing {
		eng = cpu.NewCore(rt.M)
	} else {
		eng = cpu.NewInterp(rt.M)
	}
	res, out := inst.Invoke(eng, 2_000_000_000)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("%s/%v: stop = %v (pc=%#x)", mod.Name, scheme, res.Reason, rt.M.PC)
	}
	return out
}

// TestSightglassAcrossSchemes runs every Sightglass kernel under every
// scheme (except masking, whose wraparound semantics legitimately differ
// on OOB-free kernels they still match) and demands identical results.
func TestSightglassAcrossSchemes(t *testing.T) {
	for _, w := range Sightglass() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod := w.Build(1)
			want := runOnce(t, mod, sfi.GuardPages, false)
			if want == 0 {
				t.Fatalf("degenerate checksum for %s", w.Name)
			}
			for _, scheme := range []sfi.Scheme{sfi.None, sfi.BoundsCheck, sfi.Masking, sfi.HFI} {
				if got := runOnce(t, w.Build(1), scheme, false); got != want {
					t.Errorf("%s under %v: %#x, want %#x", w.Name, scheme, got, want)
				}
			}
		})
	}
}

// TestSightglassTimingEngine runs a few kernels on the cycle-level core to
// ensure they execute there too (full sweep is the Fig 2 harness).
func TestSightglassTimingEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("timing engine sweep is slow")
	}
	for _, name := range []string{"fib2", "sieve", "xchacha20"} {
		for _, w := range Sightglass() {
			if w.Name != name {
				continue
			}
			want := runOnce(t, w.Build(1), sfi.HFI, false)
			got := runOnce(t, w.Build(1), sfi.HFI, true)
			if got != want {
				t.Errorf("%s: timing core %#x, interp %#x", name, got, want)
			}
		}
	}
}

// TestSpecAcrossSchemes runs a reduced-scale version of each SPEC-like
// kernel under guard pages, bounds checks and HFI and demands identical
// results.
func TestSpecAcrossSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("macro kernels are slow")
	}
	for _, w := range SpecInt() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want := runOnce(t, w.Build(1), sfi.GuardPages, false)
			for _, scheme := range []sfi.Scheme{sfi.BoundsCheck, sfi.HFI} {
				if got := runOnce(t, w.Build(1), scheme, false); got != want {
					t.Errorf("%s under %v: %#x, want %#x", w.Name, scheme, got, want)
				}
			}
		})
	}
}

// TestMediaWorkloads exercises the JPEG decoder and font shaper under
// guard pages and HFI.
func TestMediaWorkloads(t *testing.T) {
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.HFI} {
		rt := sandbox.NewRuntime()
		inst, err := rt.Instantiate(JPEGDecoder(), scheme, wasm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng := cpu.NewInterp(rt.M)
		res, sum := inst.Invoke(eng, 100_000_000, 3, 480, 8)
		if res.Reason != cpu.StopHalt || sum == 0 {
			t.Fatalf("jpeg/%v: stop=%v sum=%d", scheme, res.Reason, sum)
		}

		rt2 := sandbox.NewRuntime()
		inst2, err := rt2.Instantiate(FontShaper(), scheme, wasm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res2, adv := inst2.Invoke(cpu.NewInterp(rt2.M), 100_000_000, 1000, 12)
		if res2.Reason != cpu.StopHalt || adv == 0 {
			t.Fatalf("font/%v: stop=%v adv=%d", scheme, res2.Reason, adv)
		}
	}
}

// TestFaaSTenants runs each tenant end to end: request in, response out,
// identical responses across schemes.
func TestFaaSTenants(t *testing.T) {
	for _, tn := range FaaSTenants() {
		tn := tn
		t.Run(tn.Name, func(t *testing.T) {
			req := tn.MakeRequest(1)
			var want []byte
			for _, scheme := range []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.HFI} {
				rt := sandbox.NewRuntime()
				inst, err := rt.Instantiate(tn.Mod, scheme, wasm.Options{})
				if err != nil {
					t.Fatalf("%v: %v", scheme, err)
				}
				inst.WriteHeap(InputOffset, req)
				res, n := inst.Invoke(cpu.NewInterp(rt.M), 10_000_000_000, uint64(len(req)))
				if res.Reason != cpu.StopHalt {
					t.Fatalf("%v: stop = %v", scheme, res.Reason)
				}
				if n == 0 {
					t.Fatalf("%v: empty response", scheme)
				}
				out := inst.ReadHeap(OutputOffset, int(n))
				if want == nil {
					want = out
				} else if string(out) != string(want) {
					t.Fatalf("%v: response diverges", scheme)
				}
			}
		})
	}
}

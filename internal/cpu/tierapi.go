package cpu

import "hfi/internal/hfi"

// This file is the narrow surface the tiered execution engine
// (internal/tier) builds on. The tier engine executes fused
// superinstruction blocks itself but delegates everything that must stay
// bit-identical to the interpreter — cost accounting, clock folding, the
// fault path — to these wrappers, so there is exactly one implementation
// of each.

// SegmentRun executes at most maxInstrs loop iterations exactly like Run,
// as one slice of a larger logical run: dominated-check elision stays off
// and the StopLimit return leaves accumulated cycles unfolded (the caller
// owns the final SyncClock). Stops other than StopLimit fold the clock at
// the same architectural points a monolithic Run would, so interleaving
// segments with fused blocks preserves the exact AdvanceCycles call
// sequence. maxInstrs must be non-zero.
func (ip *Interp) SegmentRun(maxInstrs uint64) RunResult {
	ip.segment = true
	res := ip.Run(maxInstrs)
	ip.segment = false
	return res
}

// ChargeMilli bills mc millicycles to the run, exactly as the dispatch
// loop's per-opcode charge does.
func (ip *Interp) ChargeMilli(mc uint64) { ip.charge(mc) }

// ChargeMemAt bills one memory access at addr: base load/store cost plus
// the scaled miss penalty from the (stateful) hierarchy. Callers must
// invoke it once per access in program order, as the dispatch loop does —
// the hierarchy's replacement state is part of the cost timeline.
func (ip *Interp) ChargeMemAt(addr uint64, store bool) { ip.chargeMem(addr, store) }

// SyncClock folds accumulated cycles into the machine and kernel clock.
// The tiered engine calls it at exactly the points a monolithic Run would
// (its own StopLimit return); extra calls would drift the truncating
// cycles-to-ns conversion.
func (ip *Interp) SyncClock() { ip.syncClock() }

// RaiseAt routes a fault through the interpreter's signal path — clock
// fold, kernel signal delivery, optional resume — identically to a fault
// raised from the dispatch loop. On resume (ok=true) the machine PC is the
// handler-chosen resume point and dominated-check elision is off for the
// rest of the run; otherwise the returned RunResult is final.
func (ip *Interp) RaiseAt(pc, addr uint64, f *hfi.Fault, pageFault bool) (RunResult, bool) {
	return ip.fault(pc, addr, f, pageFault)
}

// SignExtend exposes the load result extension rule (sign- or zero-extend
// a size-byte value to 64 bits) shared by both engines' load paths.
func SignExtend(v uint64, size uint8, signExt bool) uint64 {
	if !signExt {
		return v
	}
	return signExtend(v, size)
}

package mpk

import (
	"testing"

	"hfi/internal/kernel"
)

// TestKeyExhaustion is the §7 scaling criticism: MPK runs out at 15
// domains, where HFI has no limit.
func TestKeyExhaustion(t *testing.T) {
	p := New(kernel.NewClock())
	for i := 0; i < NumKeys-1; i++ {
		if _, err := p.PkeyAlloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := p.PkeyAlloc(); err == nil {
		t.Fatal("16th allocation succeeded")
	}
	// Freeing returns capacity.
	p.PkeyFree(3)
	if _, err := p.PkeyAlloc(); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestDomainSwitchAndAccess(t *testing.T) {
	clock := kernel.NewClock()
	p := New(clock)
	k, err := p.PkeyAlloc()
	if err != nil {
		t.Fatal(err)
	}
	p.PkeyMprotect(kernel.DefaultCosts(), 0x10000, 0x4000, k)

	p.ExitDomain(k)
	if p.CheckAccess(0x11000) {
		t.Fatal("tagged page accessible with key disabled")
	}
	if p.CheckAccess(0x90000) {
		// untagged pages stay accessible
	} else {
		t.Fatal("untagged page blocked")
	}
	p.EnterDomain(k)
	if !p.CheckAccess(0x11000) {
		t.Fatal("tagged page blocked inside the domain")
	}

	// Switches cost wrpkru time.
	t0 := clock.Now()
	p.EnterDomain(k)
	p.ExitDomain(k)
	if clock.Now() == t0 {
		t.Fatal("switches charged nothing")
	}
	if p.Switches < 4 {
		t.Fatalf("switch count %d", p.Switches)
	}
}

// Command hfibench regenerates every table and figure of the paper's
// evaluation (§5.2, §6) against the simulated substrate.
//
// Usage:
//
//	hfibench -all              # run everything (minutes)
//	hfibench -fig 3            # one figure: 2, 3, 4, 5, 7
//	hfibench -table 1          # Table 1
//	hfibench -exp heapgrowth   # §-experiments: heapgrowth, regpressure,
//	                           # teardown, scaling, syscalls, font, micro,
//	                           # hostcall, facts, ablate-switch,
//	                           # ablate-schemes
//	hfibench -quick            # reduced scales for a fast smoke pass
//	hfibench -all -json        # machine-readable: JSON array of tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hfi/internal/experiments"
	"hfi/internal/stats"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		fig     = flag.Int("fig", 0, "figure number to reproduce (2,3,4,5,7)")
		table   = flag.Int("table", 0, "table number to reproduce (1)")
		exp     = flag.String("exp", "", "named experiment (heapgrowth, regpressure, teardown, scaling, syscalls, font, multimem, micro, hostcall, facts, ablate-switch, ablate-schemes)")
		quick   = flag.Bool("quick", false, "reduced scales")
		jsonOut = flag.Bool("json", false, "emit results as a JSON array of tables instead of text")
	)
	flag.Parse()

	scale := 1
	steps, teardownN, scalingN, sysIters, reqs := 65535, 2000, 8192, 100_000, 30
	if *quick {
		steps, teardownN, scalingN, sysIters, reqs = 4000, 300, 1024, 20_000, 12
	}

	ran := false
	var tables []*stats.Table
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "hfibench:", err)
		os.Exit(1)
	}
	show := func(tb *stats.Table, err error) {
		if err != nil {
			fail(err)
		}
		ran = true
		if *jsonOut {
			tables = append(tables, tb)
			return
		}
		fmt.Println(tb)
	}

	if *all || *fig == 2 {
		_, tb, err := experiments.RunFig2(scale)
		show(tb, err)
	}
	if *all || *fig == 3 {
		_, tb, err := experiments.RunFig3(scale)
		show(tb, err)
	}
	if *all || *fig == 4 {
		_, tb, err := experiments.RunFig4()
		show(tb, err)
	}
	if *all || *fig == 5 {
		_, tb, err := experiments.RunFig5(reqs)
		show(tb, err)
	}
	if *all || *fig == 7 {
		_, tb, err := experiments.RunFig7()
		show(tb, err)
	}
	if *all || *table == 1 {
		_, tb, err := experiments.RunTable1(reqs)
		show(tb, err)
	}
	runExp := func(name string) bool { return *all || *exp == name }
	if runExp("font") {
		tb, err := experiments.RunFont()
		show(tb, err)
	}
	if runExp("heapgrowth") {
		tb, err := experiments.RunHeapGrowth(steps)
		show(tb, err)
	}
	if runExp("regpressure") {
		tb, err := experiments.RunRegPressure(scale)
		show(tb, err)
	}
	if runExp("teardown") {
		tb, err := experiments.RunTeardown(teardownN)
		show(tb, err)
	}
	if runExp("scaling") {
		tb, err := experiments.RunScaling(scalingN)
		show(tb, err)
	}
	if runExp("syscalls") {
		tb, err := experiments.RunSyscallInterposition(int64(sysIters))
		show(tb, err)
	}
	if runExp("ablate-switch") {
		tb, err := experiments.RunAblationSwitchOnExit(300)
		show(tb, err)
	}
	if runExp("ablate-schemes") {
		tb, err := experiments.RunAblationSchemes()
		show(tb, err)
	}
	if runExp("multimem") {
		tb, err := experiments.RunMultiMemory()
		show(tb, err)
	}
	if runExp("hostcall") {
		hcReqs := 3000
		if *quick {
			hcReqs = 500
		}
		_, tb, err := experiments.RunHostcallRoundTrip(hcReqs)
		show(tb, err)
	}
	if runExp("facts") {
		minInstrs := uint64(20_000_000)
		if *quick {
			minInstrs = 2_000_000
		}
		_, tb, err := experiments.RunFactsElision(minInstrs)
		show(tb, err)
	}
	if runExp("tier") {
		minInstrs := uint64(40_000_000)
		if *quick {
			minInstrs = 4_000_000
		}
		_, tb, err := experiments.RunTierPerf(minInstrs)
		show(tb, err)
	}
	if runExp("micro") {
		minInstrs := uint64(40_000_000)
		if *quick {
			minInstrs = 5_000_000
		}
		_, tb, err := experiments.RunMicroPerf(minInstrs)
		show(tb, err)
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fail(err)
		}
	}
}

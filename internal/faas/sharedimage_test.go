package faas

import (
	"sync"
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/workloads"
)

// TestSharedImageAcrossWorkers provisions the same tenant on 8 concurrent
// workers through one CodeCache and asserts (a) every worker received the
// *same* immutable program image — pointer identity, not just equality —
// and (b) hammering that shared image from all workers at once produces the
// single-threaded request checksums. Run under -race this doubles as the
// proof that sharing verified images is data-race free: engines only read
// the image, instance state lives per machine.
func TestSharedImageAcrossWorkers(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	cfg := Config{Name: "HFI", Scheme: sfi.HFI}
	images := sandbox.NewCodeCache()

	const workers = 8
	const reqsPerWorker = 4

	tis := make([]*TenantInstance, workers)
	for i := range tis {
		ti, err := ProvisionShared(tenant, cfg, images)
		if err != nil {
			t.Fatal(err)
		}
		tis[i] = ti
	}
	for i := 1; i < workers; i++ {
		if tis[i].Inst.C.Prog != tis[0].Inst.C.Prog {
			t.Fatalf("worker %d compiled a private image; want the shared one", i)
		}
	}
	if hits, misses := images.Stats(); misses != 1 || hits != workers-1 {
		t.Fatalf("image cache hits=%d misses=%d, want %d/1", hits, misses, workers-1)
	}

	// Single-threaded reference checksums.
	refTI, err := ProvisionShared(tenant, cfg, images)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, reqsPerWorker)
	for i := range want {
		body, res := refTI.ServeRequest(i, 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("reference request %d: stop = %v", i, res.Reason)
		}
		want[i] = HashResponse(i, body)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ti *TenantInstance) {
			defer wg.Done()
			for i := 0; i < reqsPerWorker; i++ {
				body, res := ti.ServeRequest(i, 0)
				if res.Reason != cpu.StopHalt {
					errs <- &mismatchError{i, 0, uint64(res.Reason)}
					return
				}
				if got := HashResponse(i, body); got != want[i] {
					errs <- &mismatchError{i, got, want[i]}
					return
				}
			}
		}(tis[w])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	seq       int
	got, want uint64
}

func (e *mismatchError) Error() string {
	if e.got == 0 {
		return "request aborted"
	}
	return "shared-image worker diverged from single-threaded reference"
}

// TestProvisionCachedCompilesOnce: after one provision warms the cache,
// further provisions of the same (tenant, config) perform zero compiles.
func TestProvisionCachedCompilesOnce(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	cfg := StockLucet()
	images := sandbox.NewCodeCache()

	if _, err := ProvisionShared(tenant, cfg, images); err != nil {
		t.Fatal(err)
	}
	_, misses0 := images.Stats()
	if misses0 != 1 {
		t.Fatalf("cold provision misses = %d, want 1", misses0)
	}
	for i := 0; i < 3; i++ {
		if _, err := ProvisionShared(tenant, cfg, images); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := images.Stats()
	if misses != 1 {
		t.Fatalf("warm provisions recompiled: misses = %d, want 1", misses)
	}
	if hits != 3 {
		t.Fatalf("warm provision hits = %d, want 3", hits)
	}
}

// Package swivel wraps the Swivel-SFI-like compiler hardening used as the
// software Spectre-mitigation baseline in §6.5 / Table 1.
//
// Swivel (Narayan et al., USENIX Security 2021) hardens Wasm against
// Spectre by compiling code into linear blocks with block-label interlocks
// so the processor cannot speculatively wander between blocks, plus a
// fence on sandbox entry. The observable costs the paper compares are:
// extra instructions at every linear-block boundary (tens of percent on
// branchy code), binary bloat (Table 1's bin-size column grows ~15-20%),
// and entry serialization. The instrumentation itself lives in
// internal/wasm's compiler (Options.Swivel); this package provides the
// named entry point and the reporting helpers.
package swivel

import (
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// Compile compiles a module with Swivel-style hardening over the guard-page
// scheme (Swivel hardens stock Wasm, whose memory isolation is guard
// pages).
func Compile(m *wasm.Module, lay wasm.Layout) (*wasm.Compiled, error) {
	return wasm.Compile(m, sfi.GuardPages, lay, wasm.Options{Swivel: true})
}

// Bloat returns the binary-size inflation of a Swivel build relative to a
// stock build of the same module, as a ratio (e.g. 1.17 = 17% larger).
func Bloat(stock, hardened *wasm.Compiled) float64 {
	if stock.BinaryBytes == 0 {
		return 1
	}
	return float64(hardened.BinaryBytes) / float64(stock.BinaryBytes)
}

package workloads

import (
	"fmt"

	"hfi/internal/isa"
	"hfi/internal/wasm"
)

// Register-pressure scaffolding for the SPEC-like kernels.
//
// Real SPEC INT code keeps far more live state than a hand-written loop:
// enough that the one or two registers an isolation scheme reserves (§2,
// §6.1) tip the register allocator into spilling. The pads below model
// that: extra live values initialized on entry, updated on existing
// cool paths inside the kernel, and folded into the checksum so they stay
// live across the whole function. Under HFI (zero reserved registers)
// they fit in the register file; under guard pages (one reserved) and
// bounds checks (two reserved plus a scratch) the least-used of them
// spill — reproducing the gentle few-percent gap Fig 3 shows rather than
// an artificial cliff.
type pads struct {
	regs []wasm.VReg
	seq  int
}

// addPads creates n extra live virtual registers.
func addPads(f *wasm.Fn, n int) *pads {
	p := &pads{}
	for i := 0; i < n; i++ {
		r := f.NewReg()
		f.MovImm(r, int64(0x1357+i*0x2468))
		p.regs = append(p.regs, r)
	}
	return p
}

// touch updates the pads (a rotating dependency chain, so each pad is
// both read and written). Place it on a path that runs much less often
// than the kernel's inner loop.
func (p *pads) touch(f *wasm.Fn) {
	for i := range p.regs {
		j := (i + 1) % len(p.regs)
		f.Add32(p.regs[i], p.regs[i], p.regs[j])
	}
}

// touchGated emits a touch guarded by (gate & mask) == 0, using the first
// pad as the comparison scratch. The gate register must change between
// loop iterations.
func (p *pads) touchGated(f *wasm.Fn, gate wasm.VReg, mask int64) {
	p.seq++
	skip := fmt.Sprintf("__padskip%d", p.seq)
	f.And32Imm(p.regs[0], gate, mask)
	f.BrImm(isa.CondNE, p.regs[0], 0, skip)
	f.MovImm(p.regs[0], 0x1357)
	p.touch(f)
	f.Label(skip)
}

// fold mixes every pad into acc so the values stay live to the end.
func (p *pads) fold(f *wasm.Fn, acc wasm.VReg) {
	for _, r := range p.regs {
		f.Xor32(acc, acc, r)
	}
}

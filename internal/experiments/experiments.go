// Package experiments contains one harness per table and figure of the
// paper's evaluation (§6 plus the Fig 2 methodology validation of §5.2).
// Each harness builds the workload, runs it under the configurations the
// paper compares, and renders a stats.Table reporting our measurement next
// to the paper's number. EXPERIMENTS.md records the shape comparison.
package experiments

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// EngineKind selects the execution engine.
type EngineKind uint8

// The two engines of §5.2.
const (
	EngInterp EngineKind = iota // compiler-emulation analogue
	EngCore                     // gem5 analogue
)

func (e EngineKind) String() string {
	if e == EngCore {
		return "timing-sim"
	}
	return "emulation"
}

// Measurement is one timed run.
type Measurement struct {
	Ns       float64 // simulated wall time
	Cycles   uint64
	Instret  uint64
	BinBytes uint64
	Result   uint64 // guest return value (correctness cross-check)
}

// MeasureModule instantiates mod under scheme and runs it once on the
// chosen engine, measuring simulated time.
func MeasureModule(mod *wasm.Module, scheme sfi.Scheme, opts wasm.Options, kind EngineKind, args ...uint64) (Measurement, error) {
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(mod, scheme, opts)
	if err != nil {
		return Measurement{}, err
	}
	var eng cpu.Engine
	if kind == EngCore {
		eng = cpu.NewCore(rt.M)
	} else {
		eng = cpu.NewInterp(rt.M)
	}
	clock := rt.M.Kern.Clock
	t0 := clock.Now()
	res, out := inst.Invoke(eng, 0, args...)
	if res.Reason != cpu.StopHalt {
		return Measurement{}, fmt.Errorf("experiments: %s/%v stopped with %v", mod.Name, scheme, res.Reason)
	}
	return Measurement{
		Ns:       float64(clock.Now() - t0),
		Cycles:   rt.M.Cycles,
		Instret:  rt.M.Instret,
		BinBytes: inst.C.BinaryBytes,
		Result:   out,
	}, nil
}

// Package tier implements the tiered execution engine: a second engine
// that lowers each verified program once into basic blocks of fused
// superinstructions and executes hot blocks as straight-line Go with no
// per-instruction fetch-decode-dispatch.
//
// The lowering consumes the verifier's proof artifact (verifier.Facts) the
// same way the interpreter's elision path does, but spends it once per
// image instead of per retirement: plain loads and stores fuse only when
// the verifier proved them resident in a window (the live-machine
// re-validation is hoisted to a per-generation gate, leaving one bounds
// compare per access), hld/hst fuse when the region operand is proven
// well-formed (the HFI bounds check, ExplicitEA, still runs — it is the
// architectural fault source — while the MMU lookup behind it is elided,
// exactly mirroring the interpreter), and the verifier's NoSideExit block
// flag is consumed as a cross-check on fully-fused compute blocks. Blocks
// are the CFG's basic blocks, so every branch target in verified code is a
// block leader and the engine regains control at block granularity.
//
// Cycle-exactness contract (asserted by the sandbox differential corpus
// gate): a program runs to the same registers, memory, stop reason,
// retired-instruction count, simulated cycle count, kernel-clock ns and
// dynamic-check counters whether executed by the interpreter or by this
// engine. Fused blocks bill the same cost-table entries the dispatch loop
// would (Lowered captures the CostModel; hfilint forbids this package from
// spelling a cost by hand) and charge memory accesses through the
// interpreter's own stateful hierarchy accounting, in program order. Any
// fused operation that cannot complete — an address outside its proven
// window, an ExplicitEA fault — retires exactly the instructions before
// it, bills exactly their cost, and hands the interpreter the faulting PC.
package tier

import (
	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/verifier"
)

// kind discriminates fused superinstruction operations.
type kind uint8

const (
	kMovImm kind = iota
	kMov
	kAddImm // the workhorse: Rd <- Rs1 + imm
	kAddReg
	kAluImm // generic two-operand ALU with immediate (op in fused.op)
	kAluReg
	kLoad   // plain load, window-proven
	kStore  // plain store, window-proven
	kHLoad  // explicit-region load, ExplicitEA inline, MMU elided
	kHStore // explicit-region store
	kBr     // conditional terminator
	kJmp    // unconditional terminator
	kStepBr // pair superinstruction: add-immediate + conditional branch (loop latch)
)

// fused is one pre-decoded superinstruction operation: operands resolved
// (RegNone folded away), fact window bounds inlined, cost prefix-summed.
type fused struct {
	kind    kind
	op      isa.Op // source opcode for kAluImm/kAluReg
	rd      uint8
	rs1     uint8
	rs2     uint8 // kBr/kStepBr: the branch's comparison register
	rs3     uint8 // store data register; kStepBr: branch reg operand
	size    uint8
	scale   uint8
	hreg    uint8
	cond    isa.Cond
	signExt bool
	w32     bool
	brImm   bool // branch comparison operand is an immediate
	idxNone bool // memory index operand was RegNone (contributes zero)

	imm  uint64 // ALU/branch immediate (pre-converted), kMovImm value
	disp int64  // memory displacement; kStepBr: branch immediate

	winLo, winHi uint64 // kLoad/kStore: proven window bounds (static claim)
	win          int16  // window index, for the per-generation gate

	target uint64 // branch target
	src    int32  // source instruction index in the program
	// costBefore is the summed static charge (millicycles, from the cost
	// table) of every fused op and folded nop/fence before this one in the
	// block. Memory operations have no static charge — the interpreter
	// bills them solely through ChargeMemAt, and so does the fused runner.
	costBefore uint64
}

// Block is one lowered basic block: a fused prefix (possibly covering the
// whole block, control transfer included) plus bookkeeping for promotion
// and exact fallback.
type Block struct {
	Start, End int    // source instruction index range [Start, End)
	StartPC    uint64 // absolute address of Start

	Ops  []fused
	Span int // source instructions covered by Ops, folded nop/fence included

	// StaticCost is the total static charge of the fused prefix; equal to
	// the costBefore a one-past-the-end op would carry.
	StaticCost uint64

	// Full: Ops cover the entire block. NextPC is then the fall-through
	// successor (terminator ops override it); otherwise NextPC is the
	// first unfused instruction, where the interpreter takes over.
	Full   bool
	NextPC uint64

	// NoSideExit mirrors the verifier's block fact (diagnostics and the
	// full-fusion cross-check in Lower).
	NoSideExit bool

	// Gate inputs: fact windows and explicit regions the fused ops rely
	// on. The engine re-validates them per HFI/mapping generation and
	// refuses fused execution while any fails.
	Wins  []int16
	HRegs uint8
}

// Lowered is the immutable per-image lowering artifact, shared across every
// worker instantiating the same module (sandbox.CodeCache caches it next to
// the compiled image). All mutable execution state lives in Engine.
type Lowered struct {
	Prog *isa.Program
	// Cost is the model the static charges were expanded from; an engine
	// whose interpreter runs a different model must not use this lowering.
	Cost cpu.CostModel

	base, size uint64
	blocks     []Block
	blockIdx   []int32 // source instruction index -> blocks index
	windows    []verifier.Window
}

// fusableALU classifies operations the fused runner implements directly;
// every one is side-exit-free (cannot fault, trap, halt, or leave the
// block), matching the verifier's sideExitFree set minus control flow.
func fusableALU(op isa.Op) bool {
	switch op {
	case isa.OpMovImm, isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpNot, isa.OpNeg:
		return true
	}
	return false
}

// Lower decodes a verified program plus its proof artifact into the shared
// lowering. Returns nil when the artifact is missing or does not match the
// program shape — the engine then simply never fuses.
func Lower(p *isa.Program, f *verifier.Facts, cost cpu.CostModel) *Lowered {
	if p == nil || f == nil || len(f.Bits) != len(p.Instrs) || len(f.Mem) != len(p.Instrs) {
		return nil
	}
	tab := cost.Table()
	g := verifier.BuildCFG(p)
	noSide := make(map[int]bool, len(f.Blocks))
	for _, bf := range f.Blocks {
		noSide[bf.Start] = bf.NoSideExit
	}
	low := &Lowered{
		Prog:     p,
		Cost:     cost,
		base:     p.Base,
		size:     uint64(len(p.Instrs)) * isa.InstrBytes,
		blockIdx: make([]int32, len(p.Instrs)),
		windows:  f.Windows,
	}
	low.blocks = make([]Block, 0, len(g.Blocks))
	for _, bb := range g.Blocks {
		b := lowerBlock(p, f, tab, bb, noSide[bb.Start])
		for i := bb.Start; i < bb.End; i++ {
			low.blockIdx[i] = int32(len(low.blocks))
		}
		low.blocks = append(low.blocks, b)
	}
	return low
}

// lowerBlock fuses the longest prefix of one basic block.
func lowerBlock(p *isa.Program, f *verifier.Facts, tab [isa.OpCount]uint64, bb verifier.BasicBlock, noSideExit bool) Block {
	b := Block{
		Start:      bb.Start,
		End:        bb.End,
		StartPC:    p.Base + uint64(bb.Start)*isa.InstrBytes,
		NoSideExit: noSideExit,
	}
	cost := uint64(0) // running static-charge prefix
	sawMem := false
	addWin := func(w int16) {
		for _, have := range b.Wins {
			if have == w {
				return
			}
		}
		b.Wins = append(b.Wins, w)
	}
	i := bb.Start
scan:
	for ; i < bb.End; i++ {
		in := &p.Instrs[i]
		fo := fused{src: int32(i), costBefore: cost}
		switch {
		case in.Op == isa.OpNop || in.Op == isa.OpFence:
			// No architectural effect; fold into the prefix sums.
			cost += tab[in.Op]
			continue

		case in.Op == isa.OpMovImm:
			if in.Rd >= isa.NumRegs {
				break scan
			}
			fo.kind, fo.rd, fo.imm = kMovImm, uint8(in.Rd), uint64(in.Imm)

		case in.Op == isa.OpMov:
			if in.Rd >= isa.NumRegs || in.Rs1 >= isa.NumRegs {
				break scan
			}
			fo.kind, fo.rd, fo.rs1 = kMov, uint8(in.Rd), uint8(in.Rs1)

		case fusableALU(in.Op):
			if in.Rd >= isa.NumRegs || in.Rs1 >= isa.NumRegs {
				break scan // the dispatch loop indexes these unconditionally
			}
			fo.rd, fo.rs1, fo.w32, fo.op = uint8(in.Rd), uint8(in.Rs1), in.W32, in.Op
			useImm := in.UseImm || in.Rs2 == isa.RegNone // RegNone reads as zero
			if useImm {
				if in.UseImm {
					fo.imm = uint64(in.Imm)
				}
				if in.Op == isa.OpAdd {
					fo.kind = kAddImm
				} else {
					fo.kind = kAluImm
				}
			} else {
				if in.Rs2 >= isa.NumRegs {
					break scan
				}
				fo.rs2 = uint8(in.Rs2)
				if in.Op == isa.OpAdd {
					fo.kind = kAddReg
				} else {
					fo.kind = kAluReg
				}
			}

		case in.Op == isa.OpLoad || in.Op == isa.OpStore:
			// Fusable only under a verifier-proven resident window; the
			// runner's bounds compare against the window replaces the
			// dynamic page-decision machinery, and anything outside bails
			// to the interpreter untouched.
			w := f.Mem[i].Window
			if f.Bits[i]&verifier.FactResident == 0 || w < 0 || int(w) >= len(f.Windows) {
				break scan
			}
			if in.Rs1 >= isa.NumRegs { // no base register: leave interpreted
				break scan
			}
			fo.rs1, fo.scale, fo.disp, fo.size = uint8(in.Rs1), in.Scale, in.Disp, in.Size
			if in.Rs2 == isa.RegNone {
				fo.idxNone = true
			} else if in.Rs2 >= isa.NumRegs {
				break scan
			} else {
				fo.rs2 = uint8(in.Rs2)
			}
			fo.win, fo.winLo, fo.winHi = w, f.Windows[w].Lo, f.Windows[w].Hi
			if in.Op == isa.OpStore {
				if in.Rs3 >= isa.NumRegs {
					break scan
				}
				fo.kind, fo.rs3 = kStore, uint8(in.Rs3)
			} else {
				if in.Rd >= isa.NumRegs {
					break scan
				}
				fo.kind, fo.rd, fo.signExt = kLoad, uint8(in.Rd), in.SignExt
			}
			addWin(w)
			sawMem = true

		case in.Op == isa.OpHLoad || in.Op == isa.OpHStore:
			// ExplicitEA runs inline (it is the bounds check and the fault
			// source); the proof covers the MMU lookup behind it, mirroring
			// the interpreter's factElideHfi path.
			if f.Bits[i]&verifier.FactHfiHeap == 0 || int(in.HReg) >= hfi.NumExplicitRegions {
				break scan
			}
			fo.hreg, fo.scale, fo.disp, fo.size = uint8(in.HReg), in.Scale, in.Disp, in.Size
			if in.Rs2 == isa.RegNone {
				fo.idxNone = true
			} else if in.Rs2 >= isa.NumRegs {
				break scan
			} else {
				fo.rs2 = uint8(in.Rs2)
			}
			if in.Op == isa.OpHStore {
				if in.Rs3 >= isa.NumRegs {
					break scan
				}
				fo.kind, fo.rs3 = kHStore, uint8(in.Rs3)
			} else {
				if in.Rd >= isa.NumRegs {
					break scan
				}
				fo.kind, fo.rd, fo.signExt = kHLoad, uint8(in.Rd), in.SignExt
			}
			b.HRegs |= 1 << fo.hreg
			sawMem = true

		case in.Op == isa.OpBr:
			if in.Rs1 >= isa.NumRegs {
				break scan
			}
			fo.kind, fo.rs1, fo.cond, fo.target = kBr, uint8(in.Rs1), in.Cond, in.Target
			if in.UseImm || in.Rs2 == isa.RegNone {
				fo.brImm = true
				if in.UseImm {
					fo.imm = uint64(in.Imm)
				}
			} else if in.Rs2 >= isa.NumRegs {
				break scan
			} else {
				fo.rs2 = uint8(in.Rs2)
			}

		case in.Op == isa.OpJmp:
			fo.kind, fo.target = kJmp, in.Target

		default:
			// div/rem (can trap), calls, returns, indirect jumps, syscall,
			// hostcall, halt, rdtsc, clflush, HFI config, xsave/xrstor:
			// the interpreter owns them.
			break scan
		}
		switch fo.kind {
		case kLoad, kStore, kHLoad, kHStore:
			// The dispatch loop bills memory ops solely through chargeMem;
			// the fused runner does the same via ChargeMemAt, so they carry
			// no static charge.
		default:
			cost += tab[in.Op]
		}
		b.Ops = append(b.Ops, fo)
	}
	b.Span = i - bb.Start
	b.StaticCost = cost
	b.Full = i == bb.End
	if b.Full {
		b.NextPC = p.Base + uint64(bb.End)*isa.InstrBytes // fall-through
	} else {
		b.NextPC = p.Base + uint64(i)*isa.InstrBytes // first unfused instruction
	}
	// Cross-check against the verifier's independent side-exit analysis: a
	// fully fused pure-compute block must carry NoSideExit (memory ops are
	// never side-exit-free — their bail path is the point). Disagreement
	// means the kind table above drifted from the verifier; trust the
	// verifier and keep the block interpreted.
	if b.Full && !sawMem && !noSideExit {
		b.Ops, b.Span, b.StaticCost, b.Full = nil, 0, 0, false
		b.NextPC = b.StartPC
		b.Wins, b.HRegs = nil, 0
	}
	fuseLatch(&b)
	return b
}

// fuseLatch merges a trailing add-immediate + conditional-branch pair — the
// canonical loop latch — into one kStepBr superinstruction. Neither half
// can bail, so the merge never splits mid-pair; the combined op keeps the
// add's costBefore and bills both table entries.
func fuseLatch(b *Block) {
	n := len(b.Ops)
	if n < 2 {
		return
	}
	add, br := &b.Ops[n-2], &b.Ops[n-1]
	if add.kind != kAddImm || br.kind != kBr {
		return
	}
	merged := fused{
		kind:       kStepBr,
		rd:         add.rd,
		rs1:        add.rs1,
		w32:        add.w32,
		imm:        add.imm,
		rs2:        br.rs1, // branch comparison register
		rs3:        br.rs2, // branch register operand (when !brImm)
		brImm:      br.brImm,
		disp:       int64(br.imm), // branch immediate operand
		cond:       br.cond,
		target:     br.target,
		src:        add.src,
		costBefore: add.costBefore,
	}
	b.Ops = append(b.Ops[:n-2], merged)
}

// Summary reports lowering statistics: total blocks, blocks with a fused
// prefix, fully fused blocks, and fused source instructions covered.
func (l *Lowered) Summary() (blocks, fusable, full, fusedInstrs int) {
	blocks = len(l.blocks)
	for i := range l.blocks {
		b := &l.blocks[i]
		if len(b.Ops) > 0 {
			fusable++
			fusedInstrs += b.Span
		}
		if b.Full {
			full++
		}
	}
	return
}

// Package bench is the top-level benchmark harness: one testing.B target
// per table and figure of the paper's evaluation (run them all with
//
//	go test -bench=. -benchmem
//
// at the repository root), plus microarchitectural ablation benches for
// the design choices DESIGN.md calls out. Each benchmark reports its
// headline quantity as a custom metric so bench_output.txt reads as a
// results summary; cmd/hfibench prints the full tables.
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hfi/internal/experiments"
	"hfi/internal/faas"
	"hfi/internal/hfi"
	"hfi/internal/host"
	"hfi/internal/nginxsim"
	"hfi/internal/sfi"
	"hfi/internal/spectre"
	"hfi/internal/stats"
)

// BenchmarkFig2_EmulationAccuracy cross-validates the emulation engine
// against the cycle-level simulator on the Sightglass suite (§5.2, Fig 2).
func BenchmarkFig2_EmulationAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.RunFig2(1)
		if err != nil {
			b.Fatal(err)
		}
		accs := make([]float64, len(rows))
		for j, r := range rows {
			accs[j] = r.Accuracy
		}
		b.ReportMetric(stats.GeoMean(accs)*100, "accuracy-%")
		b.ReportMetric(stats.Min(accs)*100, "min-accuracy-%")
		b.ReportMetric(stats.Max(accs)*100, "max-accuracy-%")
	}
}

// BenchmarkFig3_SPEC regenerates Fig 3: SPEC-like kernels under bounds
// checking and HFI, normalized against guard pages.
func BenchmarkFig3_SPEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.RunFig3(1)
		if err != nil {
			b.Fatal(err)
		}
		var bs, hs []float64
		for _, r := range rows {
			bs = append(bs, r.Bounds)
			hs = append(hs, r.HFI)
		}
		b.ReportMetric(stats.GeoMean(bs)*100, "bounds-vs-guard-%")
		b.ReportMetric(stats.GeoMean(hs)*100, "hfi-vs-guard-%")
	}
}

// BenchmarkFig4_ImageRender regenerates Fig 4: per-scanline sandboxed
// image decoding across resolutions and compression levels.
func BenchmarkFig4_ImageRender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _, err := experiments.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		var hs []float64
		for _, c := range cells {
			hs = append(hs, c.HFI)
		}
		b.ReportMetric(stats.GeoMean(hs)*100, "hfi-vs-guard-%")
		b.ReportMetric(stats.Min(hs)*100, "best-case-%")
	}
}

// BenchmarkFig5_NGINX regenerates Fig 5: NGINX+OpenSSL throughput under
// MPK and HFI session-key protection.
func BenchmarkFig5_NGINX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.RunFig5(10)
		if err != nil {
			b.Fatal(err)
		}
		var hfiN, mpkN []float64
		for _, p := range points {
			switch p.Prot {
			case nginxsim.ProtHFI:
				hfiN = append(hfiN, p.Normalized)
			case nginxsim.ProtMPK:
				mpkN = append(mpkN, p.Normalized)
			}
		}
		b.ReportMetric(stats.GeoMean(hfiN)*100, "hfi-throughput-%")
		b.ReportMetric(stats.GeoMean(mpkN)*100, "mpk-throughput-%")
	}
}

// BenchmarkFig7_Spectre regenerates Fig 7 / §5.3: the Spectre-PHT attack
// leaks the full secret without HFI and nothing with it.
func BenchmarkFig7_Spectre(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		leakedBytes, protectedLeaks := 0, 0
		for _, s := range series {
			for _, c := range s.Leaked {
				if c != '?' {
					if s.Name == "pht-off" || s.Name == "btb-off" {
						leakedBytes++
					} else {
						protectedLeaks++
					}
				}
			}
		}
		b.ReportMetric(float64(leakedBytes), "unprotected-bytes-leaked")
		b.ReportMetric(float64(protectedLeaks), "hfi-bytes-leaked")
	}
}

// BenchmarkTable1_FaaS regenerates Table 1: FaaS tail latency under HFI
// versus Swivel Spectre protection.
func BenchmarkTable1_FaaS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.RunTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		base := map[string]float64{}
		var hfiTail, swivelTail []float64
		for _, r := range results {
			switch r.Config {
			case "Lucet(Unsafe)":
				base[r.Tenant] = r.TailLatNs
			case "Lucet+HFI":
				hfiTail = append(hfiTail, r.TailLatNs/base[r.Tenant])
			case "Lucet+Swivel":
				swivelTail = append(swivelTail, r.TailLatNs/base[r.Tenant])
			}
		}
		b.ReportMetric((stats.GeoMean(hfiTail)-1)*100, "hfi-tail-overhead-%")
		b.ReportMetric((stats.GeoMean(swivelTail)-1)*100, "swivel-tail-overhead-%")
	}
}

// BenchmarkHeapGrowth regenerates the §6.1 heap-growth experiment
// (mprotect vs hfi_set_region, reduced step count per iteration).
func BenchmarkHeapGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.RunHeapGrowth(4000)
		if err != nil {
			b.Fatal(err)
		}
		_ = tb
	}
}

// BenchmarkTeardown regenerates §6.3.1: per-sandbox teardown cost for the
// three strategies.
func BenchmarkTeardown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stock, err := faas.MeasureTeardown(faas.TeardownStock, 400, 1)
		if err != nil {
			b.Fatal(err)
		}
		hfiB, err := faas.MeasureTeardown(faas.TeardownBatchedHFI, 400, 50)
		if err != nil {
			b.Fatal(err)
		}
		nonHFI, err := faas.MeasureTeardown(faas.TeardownBatched, 400, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stock.PerSandboxNs/1e3, "stock-us")
		b.ReportMetric(hfiB.PerSandboxNs/1e3, "hfi-batched-us")
		b.ReportMetric(nonHFI.PerSandboxNs/1e3, "guard-batched-us")
	}
}

// BenchmarkScaling regenerates §6.3.2: sandbox capacity per address space.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guard, err := faas.MeasureScaling(sfi.GuardPages, 1, 1024)
		if err != nil {
			b.Fatal(err)
		}
		h, err := faas.MeasureScaling(sfi.HFI, 1, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(guard.CapacityCount), "guard-sandboxes")
		b.ReportMetric(float64(h.CapacityCount), "hfi-sandboxes")
	}
}

// BenchmarkSyscallInterpose regenerates §6.4.1: seccomp-bpf versus HFI
// syscall interposition.
func BenchmarkSyscallInterpose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.RunSyscallInterposition(20_000)
		if err != nil {
			b.Fatal(err)
		}
		_ = tb
	}
}

// BenchmarkAblationSwitchOnExit compares serialize-every-transition
// against the §4.5 switch-on-exit extension on the timing core.
func BenchmarkAblationSwitchOnExit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.RunAblationSwitchOnExit(200)
		if err != nil {
			b.Fatal(err)
		}
		_ = tb
	}
}

// BenchmarkAblationSchemes measures per-access enforcement cost per
// scheme on the timing core.
func BenchmarkAblationSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.RunAblationSchemes()
		if err != nil {
			b.Fatal(err)
		}
		_ = tb
	}
}

// BenchmarkAblationImplicitCheck compares the cost of HFI's
// prefix-masked implicit-region check against the naive 64-bit
// base/bound comparator chain the paper's §4 rejects. On hardware the
// difference is comparator width and circuit area; here it shows up as
// the work per check.
func BenchmarkAblationImplicitCheck(b *testing.B) {
	s := hfi.NewState()
	s.SetDataRegion(0, hfi.ImplicitRegion{BasePrefix: 0x10000, LSBMask: 0xffff, Read: true, Write: true})
	s.SetDataRegion(1, hfi.ImplicitRegion{BasePrefix: 0x40000000, LSBMask: 0xfffff, Read: true})
	s.Enter(hfi.Config{Hybrid: true})

	b.Run("prefix-mask", func(b *testing.B) {
		ok := true
		for i := 0; i < b.N; i++ {
			// 8-byte accesses at 8-byte-aligned offsets, so none straddle
			// the region edge.
			ok = ok && s.PeekData(0x10000+(uint64(i)*8)&0xfff8, 8, false)
		}
		if !ok {
			b.Fatal("check failed")
		}
	})
	b.Run("base-bound-64bit", func(b *testing.B) {
		// The rejected design: two 64-bit comparisons per region.
		type region struct{ base, end uint64 }
		regions := [4]region{{0x10000, 0x20000}, {0x40000000, 0x40100000}, {}, {}}
		ok := true
		for i := 0; i < b.N; i++ {
			addr := 0x10000 + (uint64(i)*8)&0xfff8
			hit := false
			for _, r := range regions {
				if addr >= r.base && addr+8 <= r.end {
					hit = true
					break
				}
			}
			ok = ok && hit
		}
		if !ok {
			b.Fatal("check failed")
		}
	})
}

// BenchmarkServeThroughput drives the concurrent serving layer
// (internal/host) closed-loop over the standard mixed-tenant traffic at
// several worker-pool sizes. Since the load is wall-clock (workers overlap
// real per-request dispatch waits), the interesting metrics are the custom
// ones: requests per second, p99 latency, and shed rate per pool size.
func BenchmarkServeThroughput(b *testing.B) {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	const total = 64
	mix := host.DefaultMix()
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := host.New(host.Config{Workers: w, DispatchWall: 2 * time.Millisecond})
				res := host.RunClosedLoop(s, mix, 2*w, total, 1)
				s.Close()
				if res.Summary.OK != total {
					b.Fatalf("OK = %d, want %d", res.Summary.OK, total)
				}
				b.ReportMetric(res.Summary.ThroughputRPS, "req/s")
				b.ReportMetric(res.Summary.P99Ns/1e6, "p99-ms")
				b.ReportMetric(res.Summary.ShedRate*100, "shed-%")
			}
		})
	}
}

// BenchmarkSpectreAttack measures the attack harness itself (per leaked
// byte) — useful for tracking simulator performance.
func BenchmarkSpectreAttack(b *testing.B) {
	h, err := spectre.NewPHT(false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := h.AttackByte(i % len(spectre.Secret))
		if !r.Hit {
			b.Fatal("attack lost its signal")
		}
	}
}

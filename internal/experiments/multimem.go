package experiments

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
)

// multiMemWorkload streams data between three linear memories: the access
// pattern of a Wasm component passing buffers between libraries (§2's
// multi-memory discussion).
func multiMemWorkload(words int64) *wasm.Module {
	m := wasm.NewModule("multimem", 2, 2)
	m.AddMemory(2)
	m.AddMemory(2)
	f := m.Func("run", 0)
	i, v, w, acc := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(acc, 0)
	f.MovImm(i, 0)
	f.Label("init")
	f.Mul32Imm(v, i, 2654435761)
	f.StoreMem(1, 4, i, 0, v)
	f.Add32Imm(i, i, 4)
	f.BrImm(isa.CondLT, i, words*4, "init")
	f.MovImm(i, 0)
	f.Label("stream")
	f.LoadMem(1, 4, v, i, 0) // read library A's buffer
	f.Load(4, w, i, 0)       // mix with the primary heap
	f.Xor32(v, v, w)
	f.StoreMem(2, 4, i, 0, v) // write library B's buffer
	f.Add32(acc, acc, v)
	f.Add32Imm(i, i, 4)
	f.BrImm(isa.CondLT, i, words*4, "stream")
	f.Ret(acc)
	return m
}

// RunMultiMemory evaluates the multi-memory extension (§2, §3.3.1): the
// per-access cost of secondary memories under each scheme, and the
// address-space footprint of adding memories.
func RunMultiMemory() (*stats.Table, error) {
	tb := &stats.Table{
		Title:   "Extension: Wasm multi-memory — per-access cost and footprint",
		Columns: []string{"scheme", "runtime (vs guard)", "instructions", "VA footprint (+3 memories)"},
	}
	footprint := func(scheme sfi.Scheme) (uint64, error) {
		mod := wasm.NewModule("fp", 1, 1)
		for i := 0; i < 3; i++ {
			mod.AddMemory(1)
		}
		f := mod.Func("run", 0)
		f.Ret(wasm.VNone)
		rt := sandbox.NewRuntime()
		before := rt.M.AS.ReservedBytes()
		if _, err := rt.Instantiate(mod, scheme, wasm.Options{}); err != nil {
			return 0, err
		}
		return rt.M.AS.ReservedBytes() - before, nil
	}

	var base float64
	var want uint64
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		rt := sandbox.NewRuntime()
		inst, err := rt.Instantiate(multiMemWorkload(20000), scheme, wasm.Options{})
		if err != nil {
			return nil, err
		}
		clock := rt.M.Kern.Clock
		t0 := clock.Now()
		res, got := inst.Invoke(cpu.NewInterp(rt.M), 0)
		if res.Reason != cpu.StopHalt {
			return nil, fmt.Errorf("multimem %v: stop %v", scheme, res.Reason)
		}
		if want == 0 {
			want = got
		} else if got != want {
			return nil, fmt.Errorf("multimem %v: checksum diverges", scheme)
		}
		ns := float64(clock.Now() - t0)
		if scheme == sfi.GuardPages {
			base = ns
		}
		fp, err := footprint(scheme)
		if err != nil {
			return nil, err
		}
		tb.AddRow(scheme.String(),
			fmt.Sprintf("%.1f%%", ns/base*100),
			fmt.Sprintf("%d", rt.M.Instret),
			stats.Bytes(float64(fp)))
	}
	tb.AddNote("software schemes fetch each secondary memory's base (and bound) from the instance context per access;")
	tb.AddNote("HFI binds memories 1..3 to explicit regions: plain hmovs, and no 8 GiB guard reservation per memory (§2)")
	return tb, nil
}

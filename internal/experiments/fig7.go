package experiments

import (
	"fmt"

	"hfi/internal/spectre"
	"hfi/internal/stats"
)

// Fig7Series is the access-latency series of the Spectre PoC for one
// configuration: the probe latency for each candidate byte value when
// attacking the first secret byte, as Fig 7 plots.
type Fig7Series struct {
	Name      string
	Latencies [256]int
	Leaked    string
	Signal    bool
}

// RunFig7 reproduces Fig 7 and the §5.3 security evaluation: the SafeSide
// Spectre-PHT attack with and without HFI, plus the Spectre-BTB variant.
// Without HFI the attack recovers the planted secret (a clear low-latency
// signal per byte); with HFI no probe access falls below the threshold.
func RunFig7() ([]Fig7Series, *stats.Table, error) {
	tb := &stats.Table{
		Title:   "Fig 7 / §5.3: Spectre attacks against the timing simulator",
		Columns: []string{"attack", "HFI", "recovered secret", "cache signal"},
	}
	var series []Fig7Series

	addPHT := func(protected bool) error {
		h, err := spectre.NewPHT(protected)
		if err != nil {
			return err
		}
		leaked, results := h.LeakString(len(spectre.Secret))
		s := Fig7Series{Name: phtName(protected), Leaked: leaked}
		s.Latencies = results[0].Latency
		for _, r := range results {
			if r.Hit {
				s.Signal = true
			}
		}
		series = append(series, s)
		tb.AddRow("Spectre-PHT", onOff(protected), fmt.Sprintf("%q", leaked), signalStr(s.Signal))
		return nil
	}
	addBTB := func(protected bool) error {
		h, err := spectre.NewBTB(protected)
		if err != nil {
			return err
		}
		leaked, results := h.LeakString(len(spectre.Secret))
		s := Fig7Series{Name: btbName(protected), Leaked: leaked}
		s.Latencies = results[0].Latency
		for _, r := range results {
			if r.Hit {
				s.Signal = true
			}
		}
		series = append(series, s)
		tb.AddRow("Spectre-BTB", onOff(protected), fmt.Sprintf("%q", leaked), signalStr(s.Signal))
		return nil
	}

	for _, protected := range []bool{false, true} {
		if err := addPHT(protected); err != nil {
			return nil, nil, err
		}
	}
	for _, protected := range []bool{false, true} {
		if err := addBTB(protected); err != nil {
			return nil, nil, err
		}
	}
	tb.AddNote("paper: without HFI the first secret byte ('I') shows a clear low-latency access; with HFI no access below the threshold")
	return series, tb, nil
}

func phtName(p bool) string { return "pht-" + onOff(p) }
func btbName(p bool) string { return "btb-" + onOff(p) }

func onOff(p bool) string {
	if p {
		return "on"
	}
	return "off"
}

func signalStr(s bool) string {
	if s {
		return "LEAK"
	}
	return "none"
}

package stats

import (
	"sync"
	"testing"
)

// TestRecorderConcurrent hammers one recorder from many goroutines and
// checks that no records are lost and the percentiles are coherent. Run
// under -race this is also the recorder's data-race test.
func TestRecorderConcurrent(t *testing.T) {
	const (
		writers = 8
		each    = 1000
	)
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				switch i % 4 {
				case 0, 1:
					r.Record(OutcomeOK, float64(w*each+i))
				case 2:
					r.Record(OutcomeTimeout, float64(i))
				case 3:
					if i%8 == 3 {
						r.Record(OutcomeShed, 0)
					} else {
						r.Record(OutcomeFault, float64(i))
					}
				}
			}
		}(w)
	}
	// Concurrent snapshots must not disturb recording.
	for i := 0; i < 50; i++ {
		_ = r.Snapshot(1e9)
	}
	wg.Wait()

	s := r.Snapshot(2e9)
	if s.OK != writers*each/2 {
		t.Fatalf("OK = %d, want %d", s.OK, writers*each/2)
	}
	if s.Timeouts != writers*each/4 {
		t.Fatalf("timeouts = %d, want %d", s.Timeouts, writers*each/4)
	}
	if s.Shed+s.Faults != writers*each/4 {
		t.Fatalf("shed+faults = %d, want %d", s.Shed+s.Faults, writers*each/4)
	}
	if s.Executed() != s.OK+s.Timeouts+s.Faults {
		t.Fatalf("Executed() = %d inconsistent", s.Executed())
	}
	if s.P50Ns > s.P99Ns || s.P99Ns > s.P999Ns || s.P999Ns > s.MaxNs {
		t.Fatalf("percentiles out of order: %+v", s)
	}
	wantTput := float64(s.Executed()) / 2.0
	if s.ThroughputRPS != wantTput {
		t.Fatalf("throughput = %v, want %v", s.ThroughputRPS, wantTput)
	}
	wantShed := float64(s.Shed) / float64(s.Executed()+s.Shed)
	if s.ShedRate != wantShed {
		t.Fatalf("shed rate = %v, want %v", s.ShedRate, wantShed)
	}
}

// TestRecorderEmpty: a fresh recorder snapshots to zeros without panicking.
func TestRecorderEmpty(t *testing.T) {
	s := NewRecorder().Snapshot(0)
	if s.Executed() != 0 || s.P99Ns != 0 || s.ThroughputRPS != 0 || s.ShedRate != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestRecorderShedOnly: sheds never contribute latency samples.
func TestRecorderShedOnly(t *testing.T) {
	r := NewRecorder()
	r.Record(OutcomeShed, 12345) // latency argument must be ignored
	s := r.Snapshot(1e9)
	if s.Shed != 1 || s.MaxNs != 0 || s.ThroughputRPS != 0 {
		t.Fatalf("shed-only snapshot = %+v", s)
	}
	if s.ShedRate != 1 {
		t.Fatalf("shed rate = %v, want 1", s.ShedRate)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OutcomeOK: "ok", OutcomeTimeout: "timeout", OutcomeFault: "fault", OutcomeShed: "shed"} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}

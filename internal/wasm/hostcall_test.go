package wasm

import (
	"strings"
	"testing"

	"hfi/internal/hostcall"
	"hfi/internal/sfi"
)

// hostcallModule builds a minimal module that asks the host for its ABI
// version and 16 random bytes at offset 256.
func hostcallModule() *Module {
	m := NewModule("hc-min", 1, 1)
	f := m.Func("run", 0)
	v := f.NewReg()
	ptr := f.NewReg()
	n := f.NewReg()
	f.MovImm(ptr, 256)
	f.MovImm(n, 16)
	f.Hostcall(v, hostcall.NumAbiVersion)
	f.Hostcall(v, hostcall.NumRandomGet, ptr, n)
	f.Ret(v)
	return m
}

// TestHostcallCompileAllSchemes: a hostcall module compiles, carries the
// gate, and passes the post-compile verifier gate under every scheme.
func TestHostcallCompileAllSchemes(t *testing.T) {
	for _, scheme := range []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI} {
		cc, err := Compile(hostcallModule(), scheme, testLayout(), Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if _, ok := cc.Prog.Symbols["__hostcall"]; !ok {
			t.Fatalf("%v: compiled program is missing the __hostcall gate", scheme)
		}
	}
}

// TestNoGateWithoutHostcalls: pure-compute modules must stay
// byte-identical to pre-hostcall builds — no gate, no symbol.
func TestNoGateWithoutHostcalls(t *testing.T) {
	m := NewModule("pure", 1, 1)
	f := m.Func("run", 0)
	v := f.NewReg()
	f.MovImm(v, 7)
	f.Ret(v)
	cc, err := Compile(m, sfi.Masking, testLayout(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cc.Prog.Symbols["__hostcall"]; ok {
		t.Fatal("hostcall-free module grew a gate")
	}
	if m.UsesHostcalls() {
		t.Fatal("UsesHostcalls = true for a pure module")
	}
}

// TestHostcallForgedNumberRejected: the compiler is not trusted — a
// module lowered with an out-of-table number must die at the verifier.
func TestHostcallForgedNumberRejected(t *testing.T) {
	m := NewModule("hc-forged", 1, 1)
	f := m.Func("run", 0)
	v := f.NewReg()
	f.Hostcall(v, hostcall.NumHostcalls+5)
	f.Ret(v)
	_, err := Compile(m, sfi.Masking, testLayout(), Options{})
	if err == nil {
		t.Fatal("forged hostcall number compiled and verified")
	}
	if !strings.Contains(err.Error(), "hostcall") {
		t.Fatalf("rejection does not cite the hostcall rule: %v", err)
	}
}

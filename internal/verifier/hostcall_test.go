package verifier

import (
	"errors"
	"testing"

	"hfi/internal/isa"
	"hfi/internal/sfi"
)

// Test-local hostcall table: a scalar call, and one taking (ptr, len)
// into guest linear memory — enough shape to exercise every proof.
func hcCfg(scheme sfi.Scheme) Config {
	cfg := testCfg(scheme)
	cfg.HostcallGateSym = "__hostcall"
	cfg.NumHostcalls = 4
	cfg.HostcallSigs = []HostcallSig{
		{Name: "abi_version"},
		{Name: "clock_monotonic"},
		{Name: "clock_wall"},
		{Name: "random_get", Args: [5]HostcallArg{HcArgPtr, HcArgLen}},
	}
	return cfg
}

// hcReject verifies p under the hostcall config and returns the first
// violation's rule, failing the test if the escape attempt is admitted.
func hcReject(t *testing.T, p *isa.Program, scheme sfi.Scheme) string {
	t.Helper()
	err := Verify(p, hcCfg(scheme))
	if err == nil {
		t.Fatalf("%v: hostcall escape attempt verified as safe", scheme)
	}
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("%v: error is %T, want *RejectError", scheme, err)
	}
	return re.First().Rule
}

// emitGate appends the canonical two-instruction gate. The instruction
// preceding it in every test is a halt/jmp/ret, matching compiler output.
func emitGate(b *isa.Builder) {
	b.Label("__hostcall")
	b.Hostcall()
	b.Ret()
}

// TestHostcallGateAccepts: the well-formed shape — constant number,
// provably in-heap buffer, direct call to the gate — verifies as safe.
func TestHostcallGateAccepts(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(isa.SP, 0x2001_0000)
	b.MovImm(isa.R0, 3)      // random_get
	b.MovImm(isa.R1, 4096)   // ptr: inside the 64 KiB heap
	b.MovImm(isa.R2, 32)     // len: 4096+32 <= MaxBytes
	b.Call("__hostcall")
	b.MovImm(isa.R0, 1) // clock_monotonic: scalar, no buffer proof
	b.Call("__hostcall")
	b.Halt()
	emitGate(b)
	if err := Verify(b.Build(), hcCfg(sfi.HFI)); err != nil {
		t.Fatalf("well-formed hostcall rejected: %v", err)
	}
}

// TestHostcallGoldenEscapes hand-writes one escape attempt per hostcall
// rule and pins the rejection each must trip.
func TestHostcallGoldenEscapes(t *testing.T) {
	t.Run("forged-number", func(t *testing.T) {
		// A number past the registered table must be refused at the call
		// site: the host dispatcher would index out of its function table.
		b := isa.NewBuilder(0)
		b.MovImm(isa.SP, 0x2001_0000)
		b.MovImm(isa.R0, 99)
		b.Call("__hostcall")
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall" {
			t.Fatalf("rule = %q, want hostcall", got)
		}
	})
	t.Run("unproven-number", func(t *testing.T) {
		// The number is not a provable constant at the site (root entry
		// registers are unconstrained), so the table lookup is unprovable.
		b := isa.NewBuilder(0)
		b.MovImm(isa.SP, 0x2001_0000)
		b.Call("__hostcall") // R0 never set: Top
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall" {
			t.Fatalf("rule = %q, want hostcall", got)
		}
	})
	t.Run("out-of-sandbox-pointer", func(t *testing.T) {
		// random_get's buffer offset points far outside linear memory; the
		// host would copy host-owned bytes into (or out of) foreign memory.
		b := isa.NewBuilder(0)
		b.MovImm(isa.SP, 0x2001_0000)
		b.MovImm(isa.R0, 3)
		b.MovImm(isa.R1, 1<<40) // offset way past MaxBytes
		b.MovImm(isa.R2, 8)
		b.Call("__hostcall")
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall" {
			t.Fatalf("rule = %q, want hostcall", got)
		}
	})
	t.Run("buffer-end-overflow", func(t *testing.T) {
		// Offset and length each fit, but offset+len crosses the heap end:
		// the classic marshalling overflow.
		b := isa.NewBuilder(0)
		b.MovImm(isa.SP, 0x2001_0000)
		b.MovImm(isa.R0, 3)
		b.MovImm(isa.R1, (1<<16)-8) // last 8 bytes of the heap
		b.MovImm(isa.R2, 64)        // ...but a 64-byte buffer
		b.Call("__hostcall")
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall" {
			t.Fatalf("rule = %q, want hostcall", got)
		}
	})
	t.Run("indirect-jump-to-gate", func(t *testing.T) {
		// Reaching the gate via an indirect jump skips every call-site
		// proof; only a direct call may enter.
		b := isa.NewBuilder(0)
		b.MovImm(isa.R0, 1)
		b.MovImm(isa.R1, 4*isa.InstrBytes) // address of the gate below
		b.JmpInd(isa.R1)
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall-gate" {
			t.Fatalf("rule = %q, want hostcall-gate", got)
		}
	})
	t.Run("direct-jump-to-gate", func(t *testing.T) {
		b := isa.NewBuilder(0)
		b.MovImm(isa.R0, 1)
		b.Jmp("__hostcall")
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall-gate" {
			t.Fatalf("rule = %q, want hostcall-gate", got)
		}
	})
	t.Run("inline-hostcall", func(t *testing.T) {
		// A hostcall instruction forged outside the designated gate.
		b := isa.NewBuilder(0)
		b.MovImm(isa.R0, 1)
		b.Hostcall()
		b.Halt()
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall-gate" {
			t.Fatalf("rule = %q, want hostcall-gate", got)
		}
	})
	t.Run("call-into-gate-middle", func(t *testing.T) {
		// Calling the gate's ret directly would let a later forged entry
		// skip the number check; entering mid-gate is refused outright.
		b := isa.NewBuilder(0)
		b.MovImm(isa.SP, 0x2001_0000)
		b.Call("gate-mid")
		b.Halt()
		b.Label("__hostcall")
		b.Hostcall()
		b.Label("gate-mid")
		b.Ret()
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall-gate" {
			t.Fatalf("rule = %q, want hostcall-gate", got)
		}
	})
	t.Run("fall-through-into-gate", func(t *testing.T) {
		// Control must not be able to slide into the gate from above.
		b := isa.NewBuilder(0)
		b.MovImm(isa.R0, 1) // no terminator before the gate
		emitGate(b)
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall-gate" {
			t.Fatalf("rule = %q, want hostcall-gate", got)
		}
	})
	t.Run("malformed-gate", func(t *testing.T) {
		// The gate symbol must name exactly the sequence hostcall; ret.
		b := isa.NewBuilder(0)
		b.Halt()
		b.Label("__hostcall")
		b.MovImm(isa.R0, 0) // not a hostcall instruction
		b.Ret()
		if got := hcReject(t, b.Build(), sfi.HFI); got != "hostcall-gate" {
			t.Fatalf("rule = %q, want hostcall-gate", got)
		}
	})
	t.Run("hostcall-without-gate-config", func(t *testing.T) {
		// With no gate configured, any hostcall instruction is a
		// privileged op under every scheme.
		b := isa.NewBuilder(0)
		b.MovImm(isa.R0, 1)
		b.Hostcall()
		b.Halt()
		for _, scheme := range []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI} {
			if got := rejectRule(t, b.Build(), scheme); got != "privileged-op" {
				t.Fatalf("%v: rule = %q, want privileged-op", scheme, got)
			}
		}
	})
}

package host

import (
	"context"
	"errors"
	"testing"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/workloads"
)

// TestCancelPreAdmission: a context already cancelled at Submit resolves
// StatusCanceled immediately, still counts as admitted (conservation), and
// carries the context's cause as the error.
func TestCancelPreAdmission(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	s := New(Config{Workers: 1})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := s.Do(ctx, treq(tenant, faas.StockLucet(), 0))
	if r.Status != StatusCanceled {
		t.Fatalf("status = %v, want %v", r.Status, StatusCanceled)
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", r.Err)
	}
	c := s.Counters()
	if c.Admitted != 1 || c.Canceled != 1 {
		t.Fatalf("counters = %+v, want admitted 1 canceled 1", c)
	}
}

// TestCancelQueuedNeverOccupiesWorker is the core contract of the
// cancellation redesign: a request cancelled while it sits in its tenant
// queue is unlinked and resolved without ever being dispatched. The victim
// uses its own tenant, so worker occupancy is provable from the counters —
// zero executed requests for the victim tenant and exactly one cold start
// (the blocker's) on the whole server.
func TestCancelQueuedNeverOccupiesWorker(t *testing.T) {
	light := workloads.FaaSTenantsLight()
	blocker, victim := light[3], light[0]
	iso := faas.StockLucet()
	// One worker, slowed so the blocker holds it while the victim queues.
	s := New(Config{Workers: 1, QueueDepth: 4, DispatchWall: 30 * time.Millisecond})

	blockCh := s.Submit(context.Background(), treq(blocker, iso, 0))
	time.Sleep(5 * time.Millisecond) // let the worker pick up the blocker

	ctx, cancel := context.WithCancel(context.Background())
	victimCh := s.Submit(ctx, treq(victim, iso, 0))
	cancel()

	r := <-victimCh
	if r.Status != StatusCanceled {
		t.Fatalf("victim status = %v (err %v), want %v", r.Status, r.Err, StatusCanceled)
	}
	if b := <-blockCh; b.Status != StatusOK {
		t.Fatalf("blocker status = %v", b.Status)
	}
	s.Close()

	if ts := s.rec.Tenant(victim.Name); ts.Executed() != 0 || ts.Canceled != 1 {
		t.Fatalf("victim tenant summary %+v, want executed 0 canceled 1", ts)
	}
	c := s.Counters()
	if c.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1 (victim must never reach a worker)", c.ColdStarts)
	}
	if c.Admitted != 2 || c.Canceled != 1 {
		t.Fatalf("counters = %+v, want admitted 2 canceled 1", c)
	}
}

// TestCancelBlockedSubmitter: under PolicyBlock a submitter stuck waiting
// for queue space observes its context and gives up with StatusCanceled
// instead of blocking forever.
func TestCancelBlockedSubmitter(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	iso := faas.StockLucet()
	s := New(Config{Workers: 1, QueueDepth: 1, Policy: PolicyBlock, DispatchWall: 30 * time.Millisecond})
	defer s.Close()

	// Saturate: one on the worker, one in the depth-1 queue.
	chans := []<-chan Response{
		s.Submit(context.Background(), treq(tenant, iso, 0)),
		s.Submit(context.Background(), treq(tenant, iso, 1)),
	}
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Response, 1)
	go func() { done <- s.Do(ctx, treq(tenant, iso, 2)) }()
	time.Sleep(5 * time.Millisecond) // let the submitter block on notFull
	cancel()

	select {
	case r := <-done:
		if r.Status != StatusCanceled {
			t.Fatalf("blocked submitter status = %v, want %v", r.Status, StatusCanceled)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled submitter still blocked after 5s")
	}
	for _, ch := range chans {
		if r := <-ch; r.Status != StatusOK {
			t.Fatalf("background request status %v", r.Status)
		}
	}
}

// TestDeadlineFuelPropagation: with FuelPerSecond configured, a context
// deadline shrinks the instruction budget — a deadline worth less fuel
// than the request needs surfaces deterministically as StatusTimeout
// (StopLimit), while the same request with no deadline completes.
func TestDeadlineFuelPropagation(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3] // templated-html: starves at 100 fuel
	iso := faas.StockLucet()
	s := New(Config{Workers: 1, FuelPerSecond: 20})
	defer s.Close()

	// ~5s of deadline × 20 fuel/s ⇒ ≤100 instructions: starved.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r := s.Do(ctx, treq(tenant, iso, 0))
	if r.Status != StatusTimeout || r.Stop != cpu.StopLimit {
		t.Fatalf("deadline-starved request: status %v stop %v, want timeout/limit", r.Status, r.Stop)
	}

	// No deadline: full configured budget, runs to completion.
	if r := s.Do(context.Background(), treq(tenant, iso, 0)); r.Status != StatusOK {
		t.Fatalf("undeadlined request: status %v stop %v", r.Status, r.Stop)
	}
}

// TestCancelConservation: interleaved cancels and normal traffic keep the
// ledger exact — admitted == ok + timeout + fault + shed + rejected +
// canceled with zero slack.
func TestCancelConservation(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	iso := faas.StockLucet()
	s := New(Config{Workers: 2})

	const n = 40
	chans := make([]<-chan Response, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			chans[i] = s.Submit(ctx, treq(tenant, iso, i))
		} else {
			chans[i] = s.Submit(context.Background(), treq(tenant, iso, i))
		}
	}
	for _, ch := range chans {
		<-ch
	}
	s.Close()

	sum := s.Snapshot(0)
	accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
	if accounted != n || s.Admitted() != n {
		t.Fatalf("conservation: accounted %d admitted %d of %d (%+v)", accounted, s.Admitted(), n, sum)
	}
	if sum.Canceled != n/4 {
		t.Fatalf("canceled = %d, want %d", sum.Canceled, n/4)
	}
	if sum.OK != n-n/4 {
		t.Fatalf("ok = %d, want %d", sum.OK, n-n/4)
	}
}

// TestRequestBodyOverride: WithBody routes an externally supplied payload
// to the guest instead of the tenant's synthetic stream — the HTTP
// front-end's path. The response must equal a direct faas.ServeBody run.
func TestRequestBodyOverride(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0] // xml-to-json
	iso := faas.StockLucet()
	payload := tenant.MakeRequest(7)

	ti, err := faas.Provision(tenant, iso)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, res := ti.ServeBody(payload, 0)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("reference stop %v", res.Reason)
	}

	s := New(Config{Workers: 1})
	defer s.Close()
	r := s.Do(context.Background(), NewRequest(tenant.Name, 7,
		WithWorkload(tenant), WithIso(iso), WithBody(payload)))
	if r.Status != StatusOK {
		t.Fatalf("status %v (err %v)", r.Status, r.Err)
	}
	if string(r.Body) != string(wantBody) {
		t.Fatalf("body %q != reference %q", r.Body, wantBody)
	}
}

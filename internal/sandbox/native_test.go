package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// buildNativeGuest assembles a binary that stores a marker, reads the
// clock via syscall, and exits.
func buildNativeGuest(codeBase, dataBase uint64) *isa.Program {
	b := isa.NewBuilder(codeBase)
	b.Label("main")
	// Record incoming register state (the springboard must have cleared it).
	b.Store(8, isa.RegNone, isa.RegNone, 1, int64(dataBase), isa.R9)
	// gettime syscall — interposed.
	b.MovImm(isa.R0, kernel.SysGetTime)
	b.Syscall()
	b.Store(8, isa.RegNone, isa.RegNone, 1, int64(dataBase+8), isa.R0)
	// exit(7)
	b.MovImm(isa.R0, kernel.SysExit)
	b.MovImm(isa.R1, 7)
	b.Syscall()
	b.Halt()
	return b.Build()
}

func TestNativeSandboxLifecycle(t *testing.T) {
	rt := NewRuntime()
	m := rt.M
	var dataBase uint64
	ns, err := rt.NewNative(2048, 64<<10, true, func(code, data uint64) *isa.Program {
		dataBase = data
		return buildNativeGuest(code, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poison a register the springboard must clear.
	m.Regs[isa.R9] = 0xdeadbeef

	res := ns.Run(cpu.NewInterp(m), 0)
	if res.Reason != cpu.StopExit {
		t.Fatalf("stop = %v", res.Reason)
	}
	if m.Kern.ExitStatus != 7 {
		t.Fatalf("exit status = %d", m.Kern.ExitStatus)
	}
	if got := m.Mem().Read(dataBase, 8); got != 0 {
		t.Fatalf("springboard leaked host register state: %#x", got)
	}
	if m.Mem().Read(dataBase+8, 8) == 0 {
		t.Fatal("interposed gettime returned zero")
	}
	// Two interposed syscalls: gettime and exit.
	if ns.Interposed != 2 {
		t.Fatalf("interposed = %d", ns.Interposed)
	}
}

func TestNativeSandboxPolicyDenial(t *testing.T) {
	rt := NewRuntime()
	m := rt.M
	var dataBase uint64
	ns, err := rt.NewNative(2048, 64<<10, false, func(code, data uint64) *isa.Program {
		dataBase = data
		return buildNativeGuest(code, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	ns.Policy = func(sysno uint64, args [5]uint64) bool { return sysno == kernel.SysExit }

	res := ns.Run(cpu.NewInterp(m), 0)
	if res.Reason != cpu.StopExit {
		t.Fatalf("stop = %v", res.Reason)
	}
	if ns.Denied != 1 {
		t.Fatalf("denied = %d", ns.Denied)
	}
	got := int64(m.Mem().Read(dataBase+8, 8))
	if got != -int64(kernel.EACCES) {
		t.Fatalf("denied syscall returned %d, want %d", got, -kernel.EACCES)
	}
}

func TestNativeSandboxFaultDelivery(t *testing.T) {
	rt := NewRuntime()
	m := rt.M
	ns, err := rt.NewNative(2048, 64<<10, true, func(code, data uint64) *isa.Program {
		b := isa.NewBuilder(code)
		b.Label("main")
		b.MovImm(isa.R1, 0x7000_0000) // far outside both regions
		b.MovImm(isa.R2, 1)
		b.Store(8, isa.R1, isa.RegNone, 1, 0, isa.R2)
		b.Halt()
		return b.Build()
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered kernel.SigInfo
	m.Kern.Sigsegv = func(info kernel.SigInfo) uint64 {
		delivered = info
		return 0
	}
	res := ns.Run(cpu.NewInterp(m), 0)
	if res.Reason != cpu.StopFault {
		t.Fatalf("stop = %v", res.Reason)
	}
	if delivered.HFIReason != hfi.FaultDataBounds {
		t.Fatalf("signal carried reason %v", delivered.HFIReason)
	}
	if m.HFI.Enabled {
		t.Fatal("fault left HFI enabled")
	}
	if reason, _ := m.HFI.ReadMSR(); reason != hfi.FaultDataBounds {
		t.Fatalf("MSR = %v", reason)
	}
}

// TestNativeSandboxCodeRegion: jumping outside the code region is caught
// at fetch (faulting NOP path) and reported as a code-bounds fault.
func TestNativeSandboxCodeEscape(t *testing.T) {
	rt := NewRuntime()
	m := rt.M
	ns, err := rt.NewNative(2048, 64<<10, false, func(code, data uint64) *isa.Program {
		b := isa.NewBuilder(code)
		b.Label("main")
		b.MovImm(isa.R1, 0x7fff0000) // outside the code region
		b.JmpInd(isa.R1)
		b.Halt()
		return b.Build()
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ns.Run(cpu.NewInterp(m), 0)
	if res.Reason != cpu.StopFault || res.Fault == nil || res.Fault.Reason != hfi.FaultCodeBounds {
		t.Fatalf("res = %+v, want code-bounds fault", res)
	}
}

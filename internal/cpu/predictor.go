package cpu

import "hfi/internal/isa"

// Branch prediction units for the timing core: a gshare pattern history
// table (PHT) of 2-bit counters, a branch target buffer (BTB), and a
// return stack buffer (RSB). These are the structures whose speculative
// predictions HFI must check before execution (§4.1: "any code executed as
// the result of PHT, BTB, and RSB predictions are checked prior to
// execution") — and, for the attacks, the structures an adversary trains.
type predictor struct {
	pht     []uint8 // 2-bit saturating counters
	phtMask uint64
	history uint64

	btbTags    []uint64
	btbTargets []uint64
	btbMask    uint64

	rsb    []uint64
	rsbTop int

	lookups     uint64
	mispredicts uint64
}

func newPredictor() *predictor {
	const phtSize = 4096
	const btbSize = 512
	p := &predictor{
		pht:        make([]uint8, phtSize),
		phtMask:    phtSize - 1,
		btbTags:    make([]uint64, btbSize),
		btbTargets: make([]uint64, btbSize),
		btbMask:    btbSize - 1,
		rsb:        make([]uint64, 16),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

func (p *predictor) phtIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.phtMask
}

func (p *predictor) btbIndex(pc uint64) uint64 { return (pc >> 2) & p.btbMask }

// predict returns the predicted next PC for the instruction at pc. For
// conditional branches it consults the PHT; for indirect jumps/calls the
// BTB; for returns the RSB. Direct jumps and calls are always correctly
// predicted (decode provides the target).
func (p *predictor) predict(pc uint64, in *isa.Instr) (next uint64, taken bool) {
	fall := pc + isa.InstrBytes
	p.lookups++
	switch in.Op {
	case isa.OpBr:
		if p.pht[p.phtIndex(pc)] >= 2 {
			return in.Target, true
		}
		return fall, false
	case isa.OpJmp:
		return in.Target, true
	case isa.OpCall:
		p.rsbPush(fall)
		return in.Target, true
	case isa.OpJmpInd:
		if t := p.btbLookup(pc); t != 0 {
			return t, true
		}
		return fall, false
	case isa.OpCallInd:
		p.rsbPush(fall)
		if t := p.btbLookup(pc); t != 0 {
			return t, true
		}
		return fall, false
	case isa.OpRet:
		return p.rsbPop(), true
	}
	return fall, false
}

func (p *predictor) btbLookup(pc uint64) uint64 {
	i := p.btbIndex(pc)
	if p.btbTags[i] == pc {
		return p.btbTargets[i]
	}
	return 0
}

func (p *predictor) rsbPush(addr uint64) {
	p.rsbTop = (p.rsbTop + 1) % len(p.rsb)
	p.rsb[p.rsbTop] = addr
}

func (p *predictor) rsbPop() uint64 {
	v := p.rsb[p.rsbTop]
	p.rsbTop = (p.rsbTop - 1 + len(p.rsb)) % len(p.rsb)
	return v
}

// update trains the predictor with the resolved outcome of the branch at
// pc and records whether the earlier prediction was wrong.
func (p *predictor) update(pc uint64, in *isa.Instr, taken bool, target uint64, mispredicted bool) {
	if mispredicted {
		p.mispredicts++
	}
	switch in.Op {
	case isa.OpBr:
		i := p.phtIndex(pc)
		if taken {
			if p.pht[i] < 3 {
				p.pht[i]++
			}
		} else if p.pht[i] > 0 {
			p.pht[i]--
		}
		p.history = (p.history << 1) | b2u(taken)
	case isa.OpJmpInd, isa.OpCallInd:
		i := p.btbIndex(pc)
		p.btbTags[i] = pc
		p.btbTargets[i] = target
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats returns lookup and misprediction counts.
func (p *predictor) Stats() (lookups, mispredicts uint64) {
	return p.lookups, p.mispredicts
}

package experiments

import (
	"strings"
	"testing"
)

// TestFig3Direction checks the core Fig 3 ordering: bounds checks slower
// than guard pages, HFI at or below guard pages, on every kernel.
func TestFig3Direction(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	rows, tb, err := RunFig3(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, r := range rows {
		if r.Bounds < 1.05 {
			t.Errorf("%s: bounds checking only %.1f%% of guard pages (expected clearly slower)", r.Kernel, r.Bounds*100)
		}
		if r.HFI > 1.10 {
			t.Errorf("%s: HFI at %.1f%% of guard pages (expected comparable or faster)", r.Kernel, r.HFI*100)
		}
	}
}

// TestFig2Accuracy checks the emulation engine tracks the timing core
// within a loose band (the Fig 2 property; the paper reports 98-108%).
func TestFig2Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-core experiment")
	}
	rows, tb, err := RunFig2(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, r := range rows {
		if r.Accuracy < 0.85 || r.Accuracy > 1.18 {
			t.Errorf("%s: emulation accuracy %.1f%% outside band", r.Kernel, r.Accuracy*100)
		}
	}
}

// TestHeapGrowthRatio checks HFI's grow path is an order of magnitude
// faster than mprotect (the ~30x §6.1 result) on a reduced step count.
func TestHeapGrowthRatio(t *testing.T) {
	tb, err := RunHeapGrowth(2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("missing speedup column")
	}
}

// TestTeardownOrdering checks stock > HFI-batched and non-HFI batched >
// HFI-batched (the §6.3.1 ordering).
func TestTeardownOrdering(t *testing.T) {
	tb, err := RunTeardown(300)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
}

// TestSyscallInterposition checks seccomp costs more than HFI redirects.
func TestSyscallInterposition(t *testing.T) {
	tb, err := RunSyscallInterposition(20_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
}

// TestScaling checks HFI fits strictly more sandboxes.
func TestScaling(t *testing.T) {
	tb, err := RunScaling(512)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
}

// TestFig4Direction checks Fig 4's ordering on every cell: bounds checks
// slower than guard pages, HFI faster.
func TestFig4Direction(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	cells, tb, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, c := range cells {
		if c.Bounds <= 1.0 {
			t.Errorf("%s/%s: bounds %.1f%%, want > 100%%", c.Quality, c.Resolution, c.Bounds*100)
		}
		if c.HFI >= 1.0 {
			t.Errorf("%s/%s: HFI %.1f%%, want < 100%%", c.Quality, c.Resolution, c.HFI*100)
		}
	}
}

// TestFontOrdering checks the §6.2 font experiment's ordering.
func TestFontOrdering(t *testing.T) {
	tb, err := RunFont()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
}

// TestTable1Shape checks Table 1's claims: HFI raises tail latency only
// marginally with no binary bloat; Swivel raises it substantially with
// larger binaries.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	results, tb, err := RunTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	base := map[string]float64{}
	bins := map[string]uint64{}
	for _, r := range results {
		switch r.Config {
		case "Lucet(Unsafe)":
			base[r.Tenant] = r.TailLatNs
			bins[r.Tenant] = r.BinBytes
		case "Lucet+HFI":
			if over := r.TailLatNs/base[r.Tenant] - 1; over > 0.05 {
				t.Errorf("%s: HFI tail overhead %.1f%%, want small", r.Tenant, over*100)
			}
			if r.BinBytes != bins[r.Tenant] {
				t.Errorf("%s: HFI changed the binary size", r.Tenant)
			}
		case "Lucet+Swivel":
			if over := r.TailLatNs/base[r.Tenant] - 1; over < 0.03 {
				t.Errorf("%s: Swivel tail overhead only %.1f%%", r.Tenant, over*100)
			}
			if r.BinBytes <= bins[r.Tenant] {
				t.Errorf("%s: Swivel did not bloat the binary", r.Tenant)
			}
		}
	}
}

// TestFig5Shape checks Fig 5: both protections cost throughput, HFI
// slightly more than MPK, and overhead shrinks as file size grows.
func TestFig5Shape(t *testing.T) {
	points, tb, err := RunFig5(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	norm := map[[2]uint64]float64{} // [prot, size] -> normalized
	for _, p := range points {
		norm[[2]uint64{uint64(p.Prot), p.FileBytes}] = p.Normalized
	}
	for _, size := range Fig5Sizes {
		h := norm[[2]uint64{2, size}]
		m := norm[[2]uint64{1, size}]
		if h >= 1.0 || m >= 1.0 {
			t.Errorf("size %d: protection came for free (hfi=%.3f mpk=%.3f)", size, h, m)
		}
		if h > m {
			t.Errorf("size %d: HFI (%.3f) cheaper than MPK (%.3f), paper says slightly dearer", size, h, m)
		}
	}
	if norm[[2]uint64{2, 0}] > norm[[2]uint64{2, 128 << 10}] {
		t.Error("HFI overhead should shrink as transitions amortize over larger files")
	}
}

// TestFig7Security checks the §5.3 headline: full leak without HFI, no
// leak with it.
func TestFig7Security(t *testing.T) {
	series, tb, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, s := range series {
		protected := s.Name == "pht-on" || s.Name == "btb-on"
		if protected && s.Signal {
			t.Errorf("%s: cache signal despite HFI", s.Name)
		}
		if !protected && !s.Signal {
			t.Errorf("%s: attack produced no signal", s.Name)
		}
	}
}

// TestAblations checks the design-choice benches run and order correctly.
func TestAblations(t *testing.T) {
	tb, err := RunAblationSwitchOnExit(150)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	tb2, err := RunAblationSchemes()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb2)
}

// TestRegPressure checks the §6.1 reserved-register experiment runs and
// reserving more registers never helps.
func TestRegPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := RunRegPressure(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
}

package stats

import (
	"sort"
	"sync"
)

// Outcome classifies one request's fate for the serving recorder.
type Outcome uint8

// Request outcomes.
const (
	OutcomeOK      Outcome = iota // served, guest halted normally
	OutcomeTimeout                // fuel budget exhausted (StopLimit)
	OutcomeFault                  // guest faulted or stopped abnormally
	OutcomeShed                   // rejected at admission (backpressure)
	// OutcomeRejected: the tenant's program failed static verification at
	// provisioning. Distinct from shed — a shed request would have been
	// safe to run but lost the capacity race; a rejected one was refused
	// on proof grounds and never touched a sandbox. Load tests key on the
	// distinction to assert no verified-then-escaped program exists.
	OutcomeRejected
	// OutcomeCanceled: the caller's context was cancelled while the request
	// waited in its tenant queue. Like a shed it never executed (no latency
	// sample, no sandbox contact), but the initiative was the client's, not
	// the server's — the HTTP front-end reports these separately from 429s.
	OutcomeCanceled
)

var outcomeNames = [...]string{"ok", "timeout", "fault", "shed", "rejected", "canceled"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome(?)"
}

// Recorder accumulates per-request latencies and outcome counters from many
// goroutines — the measurement sink of the concurrent serving layer
// (internal/host). All methods are safe for concurrent use; Snapshot may be
// called while recording continues.
type Recorder struct {
	mu       sync.Mutex
	lats     []float64 // wall latencies (ns) of executed requests (ok+timeout+fault)
	ok       uint64
	timeouts uint64
	faults   uint64
	shed     uint64
	rejected uint64
	canceled uint64
	hc       HostcallCounters
	tc       TierCounters
	sc       SubstrateCounters
	tenants  map[string]*tenantStats
}

// HostcallCounters aggregates the host-call boundary traffic the serving
// layer harvests from each instance's hostcall.Env after every request.
// Conservation invariant: the global counters are the exact sum of the
// per-tenant ones — nothing crosses the boundary unattributed.
type HostcallCounters struct {
	Calls        uint64 `json:"calls"`
	BytesIn      uint64 `json:"bytes_in"`
	BytesOut     uint64 `json:"bytes_out"`
	QuotaRejects uint64 `json:"quota_rejects"`
}

// Add accumulates o into c.
func (c *HostcallCounters) Add(o HostcallCounters) {
	c.Calls += o.Calls
	c.BytesIn += o.BytesIn
	c.BytesOut += o.BytesOut
	c.QuotaRejects += o.QuotaRejects
}

// TierCounters aggregates tiered-engine activity the serving layer
// harvests from each instance's engine after every request: blocks
// promoted to fused execution and the retirement split between the two
// tiers. Same conservation invariant as HostcallCounters: the global
// counters are the exact sum of the per-tenant ones.
type TierCounters struct {
	PromotedBlocks uint64 `json:"promoted_blocks"`
	TieredInstrs   uint64 `json:"tiered_instrs"`
	InterpInstrs   uint64 `json:"interp_instrs"`
}

// Add accumulates o into c.
func (c *TierCounters) Add(o TierCounters) {
	c.PromotedBlocks += o.PromotedBlocks
	c.TieredInstrs += o.TieredInstrs
	c.InterpInstrs += o.InterpInstrs
}

// SubstrateCounters aggregates the substrate fault traffic the serving
// layer observes per request: faults injected below the serving seams
// (bit flips, stale translations, clock skew, lowering rot), how many the
// end-of-request audits detected, how many completed recovery
// (quarantine, cache flush, gate invalidation, clock resync), and how
// many were undetected but benign by construction (strikes in cold state
// no consumer reads before it is recycled). Two conservation invariants,
// asserted globally and per tenant:
//
//	Injected == Detected + Benign   (every injection is accounted)
//	Recovered == Detected           (every detection completes recovery)
type SubstrateCounters struct {
	Injected  uint64 `json:"injected"`
	Detected  uint64 `json:"detected"`
	Recovered uint64 `json:"recovered"`
	Benign    uint64 `json:"undetected_benign"`
}

// Add accumulates o into c.
func (c *SubstrateCounters) Add(o SubstrateCounters) {
	c.Injected += o.Injected
	c.Detected += o.Detected
	c.Recovered += o.Recovered
	c.Benign += o.Benign
}

// tenantStats is one tenant's slice of the recorder: the same outcome
// counters plus its own latency samples (for a per-tenant p99).
type tenantStats struct {
	ok, timeouts, faults, shed, rejected, canceled uint64
	hc                                             HostcallCounters
	tc                                             TierCounters
	sc                                             SubstrateCounters
	lats                                           []float64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{tenants: make(map[string]*tenantStats)} }

// Record adds one request outcome. latNs is the wall-clock latency in
// nanoseconds; it is ignored for shed requests, which never executed.
func (r *Recorder) Record(o Outcome, latNs float64) { r.RecordTenant("", o, latNs) }

// RecordTenant adds one request outcome attributed to a tenant, updating
// both the global view (identical to Record) and the tenant's breakdown.
// The empty tenant records globally only.
func (r *Recorder) RecordTenant(tenant string, o Outcome, latNs float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ts *tenantStats
	if tenant != "" {
		if ts = r.tenants[tenant]; ts == nil {
			if r.tenants == nil {
				r.tenants = make(map[string]*tenantStats)
			}
			ts = &tenantStats{}
			r.tenants[tenant] = ts
		}
	}
	executed := false
	switch o {
	case OutcomeOK:
		r.ok++
		executed = true
		if ts != nil {
			ts.ok++
		}
	case OutcomeTimeout:
		r.timeouts++
		executed = true
		if ts != nil {
			ts.timeouts++
		}
	case OutcomeFault:
		r.faults++
		executed = true
		if ts != nil {
			ts.faults++
		}
	case OutcomeShed:
		r.shed++
		if ts != nil {
			ts.shed++
		}
	case OutcomeRejected:
		r.rejected++
		if ts != nil {
			ts.rejected++
		}
	case OutcomeCanceled:
		r.canceled++
		if ts != nil {
			ts.canceled++
		}
	}
	if !executed {
		return
	}
	r.lats = append(r.lats, latNs)
	if ts != nil {
		ts.lats = append(ts.lats, latNs)
	}
}

// RecordHostcalls attributes one request's host-call boundary traffic to
// a tenant, updating the global aggregate identically — so the sum over
// TenantSummaries always equals the Snapshot totals (the conservation
// check the HTTP front-end tests assert).
func (r *Recorder) RecordHostcalls(tenant string, hc HostcallCounters) {
	if hc == (HostcallCounters{}) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hc.Add(hc)
	if tenant != "" {
		ts := r.tenants[tenant]
		if ts == nil {
			if r.tenants == nil {
				r.tenants = make(map[string]*tenantStats)
			}
			ts = &tenantStats{}
			r.tenants[tenant] = ts
		}
		ts.hc.Add(hc)
	}
}

// RecordTier attributes one request's tiered-engine activity to a tenant,
// updating the global aggregate identically — the same conservation
// contract as RecordHostcalls: the sum over TenantSummaries always equals
// the Snapshot totals.
func (r *Recorder) RecordTier(tenant string, tc TierCounters) {
	if tc == (TierCounters{}) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tc.Add(tc)
	if tenant != "" {
		ts := r.tenants[tenant]
		if ts == nil {
			if r.tenants == nil {
				r.tenants = make(map[string]*tenantStats)
			}
			ts = &tenantStats{}
			r.tenants[tenant] = ts
		}
		ts.tc.Add(tc)
	}
}

// RecordSubstrate attributes one request's substrate fault accounting to a
// tenant, updating the global aggregate identically — the same conservation
// contract as RecordHostcalls: the sum over TenantSummaries always equals
// the Snapshot totals.
func (r *Recorder) RecordSubstrate(tenant string, sc SubstrateCounters) {
	if sc == (SubstrateCounters{}) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sc.Add(sc)
	if tenant != "" {
		ts := r.tenants[tenant]
		if ts == nil {
			if r.tenants == nil {
				r.tenants = make(map[string]*tenantStats)
			}
			ts = &tenantStats{}
			r.tenants[tenant] = ts
		}
		ts.sc.Add(sc)
	}
}

// ServeSummary is a point-in-time view of a Recorder.
type ServeSummary struct {
	OK       uint64 `json:"ok"`
	Timeouts uint64 `json:"timeouts"`
	Faults   uint64 `json:"faults"`
	Shed     uint64 `json:"shed"`
	// Rejected counts requests refused because the tenant program failed
	// static verification (never executed, no latency sample).
	Rejected uint64 `json:"rejected"`
	// Canceled counts requests abandoned by their caller while queued
	// (never executed, no latency sample).
	Canceled uint64 `json:"canceled"`

	// Hostcalls aggregates the host-call boundary traffic of every served
	// request: calls, marshalled bytes each way, and quota rejections.
	Hostcalls HostcallCounters `json:"hostcalls"`

	// Tier aggregates tiered-engine activity: block promotions and the
	// tiered-vs-interpreted retirement split.
	Tier TierCounters `json:"tier"`

	// Substrate aggregates substrate chaos accounting: faults injected
	// below the serving seams and their detection/recovery disposition.
	Substrate SubstrateCounters `json:"substrate"`

	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MaxNs  float64 `json:"max_ns"`

	// ThroughputRPS is executed requests per wall second over the elapsed
	// window handed to Snapshot (0 if elapsedNs <= 0).
	ThroughputRPS float64 `json:"throughput_rps"`
	// ShedRate is shed / (executed + shed) — the 429 rate.
	ShedRate float64 `json:"shed_rate"`
}

// Executed counts requests that reached a sandbox (everything but sheds).
func (s ServeSummary) Executed() uint64 { return s.OK + s.Timeouts + s.Faults }

// Snapshot summarizes everything recorded so far. elapsedNs is the
// wall-clock window the throughput is computed over.
func (r *Recorder) Snapshot(elapsedNs float64) ServeSummary {
	r.mu.Lock()
	lats := append([]float64(nil), r.lats...)
	s := ServeSummary{
		OK: r.ok, Timeouts: r.timeouts, Faults: r.faults,
		Shed: r.shed, Rejected: r.rejected, Canceled: r.canceled,
		Hostcalls: r.hc, Tier: r.tc, Substrate: r.sc,
	}
	r.mu.Unlock()

	if len(lats) > 0 {
		s.MeanNs = Mean(lats)
		s.P50Ns = Percentile(lats, 50)
		s.P99Ns = Percentile(lats, 99)
		s.P999Ns = Percentile(lats, 99.9)
		s.MaxNs = Max(lats)
	}
	if elapsedNs > 0 {
		s.ThroughputRPS = float64(s.Executed()) / (elapsedNs / 1e9)
	}
	if total := s.Executed() + s.Shed; total > 0 {
		s.ShedRate = float64(s.Shed) / float64(total)
	}
	return s
}

// TenantSummary is one tenant's outcome breakdown — the observability the
// fairness and circuit-breaker machinery is judged by.
type TenantSummary struct {
	Tenant   string  `json:"tenant"`
	OK       uint64  `json:"ok"`
	Timeouts uint64  `json:"timeouts"`
	Faults   uint64  `json:"faults"`
	Shed     uint64  `json:"shed"`
	Rejected uint64  `json:"rejected"`
	Canceled uint64  `json:"canceled"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`

	// Hostcalls is the tenant's host-call boundary traffic.
	Hostcalls HostcallCounters `json:"hostcalls"`

	// Tier is the tenant's tiered-engine activity.
	Tier TierCounters `json:"tier"`

	// Substrate is the tenant's substrate fault accounting.
	Substrate SubstrateCounters `json:"substrate"`
}

// Executed counts the tenant's requests that reached a sandbox.
func (t TenantSummary) Executed() uint64 { return t.OK + t.Timeouts + t.Faults }

// Admitted counts every accounted outcome for the tenant.
func (t TenantSummary) Admitted() uint64 { return t.Executed() + t.Shed + t.Rejected + t.Canceled }

// TenantSummaries returns the per-tenant breakdowns sorted by tenant name.
// The global view (Snapshot) is unchanged by per-tenant attribution.
func (r *Recorder) TenantSummaries() []TenantSummary {
	r.mu.Lock()
	out := make([]TenantSummary, 0, len(r.tenants))
	for name, ts := range r.tenants {
		t := TenantSummary{
			Tenant: name,
			OK:     ts.ok, Timeouts: ts.timeouts, Faults: ts.faults,
			Shed: ts.shed, Rejected: ts.rejected, Canceled: ts.canceled,
			Hostcalls: ts.hc, Tier: ts.tc, Substrate: ts.sc,
		}
		if len(ts.lats) > 0 {
			lats := append([]float64(nil), ts.lats...)
			t.P50Ns = Percentile(lats, 50)
			t.P99Ns = Percentile(lats, 99)
		}
		out = append(out, t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Tenant returns one tenant's breakdown (zero value if never recorded).
func (r *Recorder) Tenant(name string) TenantSummary {
	for _, t := range r.TenantSummaries() {
		if t.Tenant == name {
			return t
		}
	}
	return TenantSummary{Tenant: name}
}

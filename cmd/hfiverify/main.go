// Command hfiverify runs the static sandbox-safety verifier over the
// built-in program corpus: every workload is compiled under every
// isolation scheme and the resulting machine program is proven unable to
// escape its sandbox (internal/verifier). It is the CLI face of the same
// gate internal/wasm applies after every compile and internal/faas
// applies at tenant admission.
//
// Usage:
//
//	hfiverify                      # verify the whole corpus, all schemes
//	hfiverify -w sieve             # one workload, all schemes
//	hfiverify -class hostcall      # one workload class (the boundary guests)
//	hfiverify -scheme masking      # all workloads, one scheme
//	hfiverify -v                   # print every violation, not just the first
//	hfiverify -facts               # emit + audit the proof-fact artifact per program
//	hfiverify -mutate              # also run the mutation soundness bench (fast)
//	hfiverify -mutate -full        # ... full corpus and site counts
//
// Exit status: 0 if everything verifies (and, with -mutate, no mutant
// escapes and the static kill rate is >= 95%); 1 otherwise.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"hfi/internal/mutation"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

type entry struct {
	name  string
	class string
	mod   func() *wasm.Module
}

// corpus is every built-in guest program: the Sightglass suite, the
// SPEC-like kernels, the FaaS tenants, the library-sandboxing codecs,
// and the hostcall guests (whose gate and call-site proofs only they
// exercise).
func corpus() []entry {
	var out []entry
	for _, w := range workloads.Sightglass() {
		w := w
		out = append(out, entry{w.Name, "sightglass", func() *wasm.Module { return w.Build(1) }})
	}
	for _, w := range workloads.SpecInt() {
		w := w
		out = append(out, entry{w.Name, "spec", func() *wasm.Module { return w.Build(1) }})
	}
	for _, t := range workloads.FaaSTenants() {
		t := t
		out = append(out, entry{t.Name, "faas", func() *wasm.Module { return t.Mod }})
	}
	out = append(out,
		entry{"jpeg-decoder", "library", workloads.JPEGDecoder},
		entry{"font-shaper", "library", workloads.FontShaper},
	)
	for _, w := range workloads.HostcallKernels() {
		w := w
		out = append(out, entry{w.Name, w.Class, func() *wasm.Module { return w.Build(4) }})
	}
	return out
}

func main() {
	var (
		name       = flag.String("w", "", "verify only this workload")
		class      = flag.String("class", "", "verify only workloads of this class (sightglass, spec, faas, library, hostcall)")
		schemeName = flag.String("scheme", "", "verify only under this scheme")
		verbose    = flag.Bool("v", false, "print every violation, not just the first")
		facts      = flag.Bool("facts", false, "run the analyzer, print the proof-fact summary, and audit the artifact")
		mutate     = flag.Bool("mutate", false, "run the mutation soundness bench after the corpus sweep")
		full       = flag.Bool("full", false, "with -mutate: full corpus and site counts")
	)
	flag.Parse()

	schemes := []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI}
	if *schemeName != "" {
		s, err := sfi.ParseScheme(*schemeName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfiverify:", err)
			os.Exit(2)
		}
		schemes = []sfi.Scheme{s}
	}

	failed := false
	checked := 0
	start := time.Now()
	for _, e := range corpus() {
		if *name != "" && e.name != *name {
			continue
		}
		if *class != "" && e.class != *class {
			continue
		}
		for _, scheme := range schemes {
			if *facts {
				if !factsOne(e, scheme, *verbose) {
					failed = true
				}
			} else if !verifyOne(e, scheme, *verbose) {
				failed = true
			}
			checked++
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "hfiverify: no workload matches -w %q -class %q\n", *name, *class)
		os.Exit(2)
	}
	fmt.Printf("corpus: %d program/scheme pairs verified in %v\n", checked, time.Since(start).Round(time.Millisecond))

	if *mutate {
		if !runMutation(*full) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// verifyOne compiles and verifies one workload under one scheme,
// printing a table row. Instantiation runs the post-compile gate; the
// explicit Verify call afterwards times the verifier alone.
func verifyOne(e entry, scheme sfi.Scheme, verbose bool) bool {
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(e.mod(), scheme, wasm.Options{})
	if err != nil {
		report(e.name, scheme, err, verbose)
		return false
	}
	start := time.Now()
	err = verifier.Verify(inst.C.Prog, wasm.VerifyConfig(inst.C))
	elapsed := time.Since(start)
	if err != nil {
		report(e.name, scheme, err, verbose)
		return false
	}
	fmt.Printf("  ok   %-18s %-12v %5d instrs  %8v\n", e.name, scheme, len(inst.C.Prog.Instrs), elapsed.Round(time.Microsecond))
	return true
}

// factsOne runs the fact-producing analysis instead of the boolean gate,
// prints the artifact's summary, and immediately audits it with the
// independent re-checker — the same double-entry bookkeeping verify.sh
// applies over the corpus.
func factsOne(e entry, scheme sfi.Scheme, verbose bool) bool {
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(e.mod(), scheme, wasm.Options{})
	if err != nil {
		report(e.name, scheme, err, verbose)
		return false
	}
	cfg := wasm.VerifyConfig(inst.C)
	start := time.Now()
	f, err := verifier.Analyze(inst.C.Prog, cfg)
	elapsed := time.Since(start)
	if err != nil {
		report(e.name, scheme, err, verbose)
		return false
	}
	if err := verifier.AuditFacts(inst.C.Prog, cfg, f); err != nil {
		fmt.Printf("  FAIL %-18s %-12v audit rejected the analyzer's own artifact: %v\n", e.name, scheme, err)
		return false
	}
	s := f.Summary()
	cov := 100.0
	if s.HeapOps > 0 {
		cov = 100 * float64(f.Covered) / float64(f.HeapOps)
	}
	fmt.Printf("  ok   %-18s %-12v %5d instrs  mem %3d  res %3d  dom %3d  hfi %3d  hc %2d  heap-cov %3.0f%%  %8v\n",
		e.name, scheme, len(inst.C.Prog.Instrs), s.MemOps, s.Resident, s.Dominated, s.HfiHeap, s.HostcallSites, cov, elapsed.Round(time.Microsecond))
	return true
}

// report prints a rejection: the first violation with instruction index
// and disassembly, or all of them under -v.
func report(name string, scheme sfi.Scheme, err error, verbose bool) {
	var re *verifier.RejectError
	if !errors.As(err, &re) {
		fmt.Printf("  FAIL %-18s %-12v %v\n", name, scheme, err)
		return
	}
	fmt.Printf("  FAIL %-18s %-12v %d violation(s)\n", name, scheme, len(re.Violations))
	vs := re.Violations
	if !verbose {
		vs = vs[:1]
	}
	for _, v := range vs {
		fmt.Printf("       %v\n", v)
	}
}

// runMutation executes the soundness bench and prints its verdict.
func runMutation(full bool) bool {
	fmt.Printf("mutation bench (%s mode):\n", map[bool]string{true: "full", false: "fast"}[full])
	rep, err := mutation.Run(mutation.Options{Fast: !full})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfiverify: mutation:", err)
		return false
	}
	fmt.Printf("  %d mutants: %d killed statically, %d equivalent, %d harmless, %d ESCAPED\n",
		rep.Total, rep.Killed, rep.Equivalent, rep.Harmless, len(rep.Escapes))
	fmt.Printf("  static kill rate over unsafe mutants: %.1f%%\n", rep.KillRate()*100)
	for _, e := range rep.Escapes {
		fmt.Printf("  ESCAPE: %s/%v %s @%d (%s): %s\n", e.Workload, e.Scheme, e.Operator, e.Index, e.Instr, e.Detail)
	}
	return len(rep.Escapes) == 0 && rep.KillRate() >= 0.95
}

// Package mem provides the simulated memory system: a sparse byte-addressable
// memory, set-associative caches, and a TLB, with the latency model the
// timing simulator charges for accesses.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageBits is log2 of the backing-store page size. The sparse memory
// allocates storage in chunks of this size; it is independent of the OS page
// size modeled by internal/kernel.
const PageBits = 12

// PageSize is the backing-store page size in bytes.
const PageSize = 1 << PageBits

// Memory is a sparse, byte-addressable 64-bit memory. Reads of never-written
// locations return zero, mirroring demand-zero pages. Memory is not
// concurrency safe; each simulated core owns its accesses.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// Last-page cache: guest accesses are heavily local, so most page
	// lookups hit the page of the previous access. lastPg is nil until the
	// first lookup and after Zero discards pages (Zero may delete the
	// cached page, so it drops the whole cache rather than track which).
	lastIdx uint64
	lastPg  *[PageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	idx := addr >> PageBits
	if p := m.lastPg; p != nil && idx == m.lastIdx {
		return p
	}
	p := m.pages[idx]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[idx] = p
	}
	if p != nil {
		m.lastIdx, m.lastPg = idx, p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(PageSize-1)] = b
}

// FlipBits XORs mask into the byte at addr — the chaos injector's
// bit-flip primitive, modeling a DRAM upset striking backing storage
// directly (below the MMU and HFI checks, which is the point: the
// corruption is invisible to every access-legality mechanism and only a
// content audit can find it).
func (m *Memory) FlipBits(addr uint64, mask byte) {
	p := m.page(addr, true)
	p[addr&(PageSize-1)] ^= mask
}

// Read returns size bytes starting at addr as a little-endian unsigned
// integer. size must be 1, 2, 4 or 8. Accesses contained in one page — the
// overwhelmingly common case on the interpreter hot path — decode straight
// out of the backing page with no intermediate buffer; only accesses that
// straddle a page boundary take the ReadBytes assembly path.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	if off := addr & (PageSize - 1); off+uint64(size) <= PageSize {
		p := m.page(addr, false)
		if p == nil {
			if size == 1 || size == 2 || size == 4 || size == 8 {
				return 0 // demand-zero page
			}
		} else {
			switch size {
			case 1:
				return uint64(p[off])
			case 2:
				return uint64(binary.LittleEndian.Uint16(p[off:]))
			case 4:
				return uint64(binary.LittleEndian.Uint32(p[off:]))
			case 8:
				return binary.LittleEndian.Uint64(p[off:])
			}
		}
		panic(fmt.Sprintf("mem: invalid read size %d", size))
	}
	var buf [8]byte
	switch size {
	case 1, 2, 4, 8:
		m.ReadBytes(addr, buf[:size])
	default:
		panic(fmt.Sprintf("mem: invalid read size %d", size))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low size bytes of v at addr, little-endian. Like Read,
// single-page accesses encode directly into the backing page.
func (m *Memory) Write(addr uint64, size uint8, v uint64) {
	if off := addr & (PageSize - 1); off+uint64(size) <= PageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
		panic(fmt.Sprintf("mem: invalid write size %d", size))
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	switch size {
	case 1, 2, 4, 8:
		m.WriteBytes(addr, buf[:size])
	default:
		panic(fmt.Sprintf("mem: invalid write size %d", size))
	}
}

// ReadBytes fills dst with the bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes stores src starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// Zero clears length bytes starting at addr, releasing backing pages where
// whole pages are covered (used by madvise(DONTNEED)). For ranges much
// larger than the resident set it walks the page table instead of the
// range, so discarding huge sparse reservations is O(resident).
func (m *Memory) Zero(addr, length uint64) {
	if length == 0 {
		return // also avoids (end-1) underflow below when addr is 0
	}
	m.lastPg = nil // may delete the cached page; drop the whole cache
	end := addr + length
	if length/PageSize > uint64(len(m.pages))+2 {
		lo, hi := addr>>PageBits, (end-1)>>PageBits
		for idx := range m.pages {
			if idx < lo || idx > hi {
				continue
			}
			base := idx << PageBits
			if base >= addr && base+PageSize <= end {
				delete(m.pages, idx)
				continue
			}
			// Partial page at a range edge.
			p := m.pages[idx]
			for a := base; a < base+PageSize; a++ {
				if a >= addr && a < end {
					p[a&(PageSize-1)] = 0
				}
			}
		}
		return
	}
	for addr < end {
		off := addr & (PageSize - 1)
		if off == 0 && end-addr >= PageSize {
			delete(m.pages, addr>>PageBits)
			addr += PageSize
			continue
		}
		n := PageSize - off
		if n > end-addr {
			n = end - addr
		}
		if p := m.page(addr, false); p != nil {
			for i := uint64(0); i < n; i++ {
				p[off+i] = 0
			}
		}
		addr += n
	}
}

// ResidentIn counts the resident bytes inside [addr, addr+length),
// walking the page table (O(resident), not O(range)).
func (m *Memory) ResidentIn(addr, length uint64) uint64 {
	if length == 0 {
		return 0 // (addr+length-1) would underflow for addr == 0
	}
	lo, hi := addr>>PageBits, (addr+length-1)>>PageBits
	var n uint64
	if uint64(len(m.pages)) < hi-lo {
		for idx := range m.pages {
			if idx >= lo && idx <= hi {
				n += PageSize
			}
		}
		return n
	}
	for idx := lo; idx <= hi; idx++ {
		if m.pages[idx] != nil {
			n += PageSize
		}
	}
	return n
}

// PageResident reports whether the backing page containing addr is
// allocated (i.e. has ever been written and not discarded).
func (m *Memory) PageResident(addr uint64) bool {
	return m.pages[addr>>PageBits] != nil
}

// ResidentBytes reports how much backing storage is currently allocated.
func (m *Memory) ResidentBytes() uint64 {
	return uint64(len(m.pages)) * PageSize
}

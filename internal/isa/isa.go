// Package isa defines the guest instruction set executed by the simulators
// in internal/cpu.
//
// The ISA is a synthetic 64-bit load/store architecture with x86-style
// complex addressing (base + index*scale + displacement) on memory
// operations, which is what the paper's hmov instructions are defined
// against. Each instruction occupies a fixed 4-byte slot in the guest
// address space so that code regions, branch targets, and HFI's implicit
// code-region checks all operate on real addresses.
//
// Sixteen general-purpose registers are available. By convention R0 carries
// syscall numbers and return values, R1-R5 carry syscall arguments, and SP
// (R15) is the stack pointer used by CALL/RET.
package isa

import "fmt"

// Reg names a general-purpose register.
type Reg uint8

// General-purpose registers. SP aliases R15 and is used implicitly by
// CALL and RET.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	SP = R15

	// NumRegs is the size of the architectural register file.
	NumRegs = 16
)

// RegNone marks an unused register operand slot.
const RegNone Reg = 0xff

func (r Reg) String() string {
	if r == RegNone {
		return "-"
	}
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// InstrBytes is the architectural size of one instruction slot. Branch
// targets and the program counter advance in units of InstrBytes.
const InstrBytes = 4

// Op identifies an instruction's operation.
type Op uint8

// Instruction opcodes.
const (
	OpNop Op = iota
	OpHalt

	// Data movement and ALU. When Instr.UseImm is set the second source
	// operand is Instr.Imm instead of Rs2.
	OpMovImm // Rd <- Imm
	OpMov    // Rd <- Rs1
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical
	OpSar // arithmetic
	OpMul
	OpDiv // unsigned; divide by zero traps
	OpRem
	OpNot // Rd <- ^Rs1
	OpNeg // Rd <- -Rs1

	// Memory. Effective address = Rs1 + zext32(Rs2)*Scale + Disp
	// (register slots may be RegNone, contributing zero). The index
	// register contributes only its low 32 bits, zero-extended — the
	// x86-64 32-bit-index addressing idiom SFI compilers lean on: a
	// sandbox offset can never smuggle a corrupted upper half into the
	// address computation (see PlainEA). Size is 1, 2, 4 or 8 bytes.
	// Loads zero-extend unless SignExt is set.
	OpLoad  // Rd <- mem[EA]
	OpStore // mem[EA] <- Rs3

	// HFI explicit-region accesses (the paper's hmov0..hmov3). The base
	// operand slot is architecturally ignored and replaced with the base
	// address of explicit region HReg; index and displacement must be
	// non-negative and the effective-address computation must not
	// overflow, otherwise the instruction traps.
	OpHLoad  // Rd <- region[HReg].base + Rs2*Scale + Disp
	OpHStore // region write, source Rs3

	// Control flow. Targets are absolute instruction addresses.
	OpBr     // conditional: if Cond(Rs1, Rs2|Imm) jump to Target
	OpJmp    // unconditional direct
	OpJmpInd // unconditional indirect via Rs1
	OpCall   // push return address on stack, jump to Target
	OpCallInd
	OpRet // pop return address, jump

	// System and microarchitectural.
	OpSyscall  // syscall number in R0, args R1-R5, result in R0
	OpHostcall // host-call gate: number in R0, args R1-R5, result in R0
	OpFence    // full pipeline serialization
	OpClflush // evict the cache line containing EA (Rs1 + Disp)
	OpRdtsc   // Rd <- current cycle count

	// HFI configuration instructions (appendix A.1 of the paper).
	OpHfiEnter       // Rs1 = pointer to a sandbox_t structure in memory
	OpHfiExit        //
	OpHfiReenter     // re-enter the sandbox that was just exited
	OpHfiSetRegion   // Imm = region number, Rs2 = pointer to region_t
	OpHfiGetRegion   // Imm = region number, Rs2 = pointer to region_t (out)
	OpHfiClearRegion // Imm = region number
	OpHfiClearAll    //

	// OS support: save/restore process register context including the HFI
	// register state (the paper's save-hfi-regs xsave flag). Rs1 points to
	// the save area. A native sandbox executing xrstor traps.
	OpXsave
	OpXrstor

	opCount // sentinel
)

// OpCount is the number of defined opcodes; per-opcode lookup tables (e.g.
// the interpreter's precomputed cost table) are sized by it.
const OpCount = int(opCount)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovImm: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpNot: "not", OpNeg: "neg",
	OpLoad: "ld", OpStore: "st", OpHLoad: "hld", OpHStore: "hst",
	OpBr: "br", OpJmp: "jmp", OpJmpInd: "jmpi", OpCall: "call",
	OpCallInd: "calli", OpRet: "ret",
	OpSyscall: "syscall", OpHostcall: "hostcall", OpFence: "fence", OpClflush: "clflush",
	OpRdtsc:    "rdtsc",
	OpHfiEnter: "hfi_enter", OpHfiExit: "hfi_exit", OpHfiReenter: "hfi_reenter",
	OpHfiSetRegion: "hfi_set_region", OpHfiGetRegion: "hfi_get_region",
	OpHfiClearRegion: "hfi_clear_region", OpHfiClearAll: "hfi_clear_all_regions",
	OpXsave: "xsave", OpXrstor: "xrstor",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a branch condition evaluated over two source operands.
type Cond uint8

// Branch conditions. The U suffix marks unsigned comparisons.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondGE
	CondGT
	CondLE
	CondLTU
	CondGEU
	CondGTU
	CondLEU
)

var condNames = [...]string{"eq", "ne", "lt", "ge", "gt", "le", "ltu", "geu", "gtu", "leu"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval reports whether the condition holds for operands a and b.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return int64(a) < int64(b)
	case CondGE:
		return int64(a) >= int64(b)
	case CondGT:
		return int64(a) > int64(b)
	case CondLE:
		return int64(a) <= int64(b)
	case CondLTU:
		return a < b
	case CondGEU:
		return a >= b
	case CondGTU:
		return a > b
	case CondLEU:
		return a <= b
	}
	return false
}

// Instr is one decoded instruction. Programs are sequences of Instr values
// laid out at consecutive InstrBytes-aligned addresses.
type Instr struct {
	Op      Op
	Cond    Cond
	Rd      Reg
	Rs1     Reg // base register for memory ops
	Rs2     Reg // index register for memory ops / second ALU source
	Rs3     Reg // store source
	HReg    uint8
	Size    uint8 // memory access size in bytes: 1, 2, 4, 8
	Scale   uint8 // index scale: 1, 2, 4, 8
	SignExt bool
	UseImm  bool
	// W32 truncates the ALU result to 32 bits (Wasm i32 semantics on a
	// 64-bit machine; free on real hardware, where 32-bit ops zero-extend).
	W32    bool
	Disp   int64
	Imm    int64
	Target uint64
}

// PlainEA is the architectural effective-address computation for ld/st:
// base + zext32(index)*scale + disp. Every engine and the static verifier
// must use this one definition; the 32-bit index truncation is what lets
// the guard-page schemes bound an access without per-access instructions.
func PlainEA(base, index uint64, scale uint8, disp int64) uint64 {
	return base + uint64(uint32(index))*uint64(scale) + uint64(disp)
}

// IsMem reports whether the instruction accesses data memory.
func (i *Instr) IsMem() bool {
	switch i.Op {
	case OpLoad, OpStore, OpHLoad, OpHStore:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads data memory.
func (i *Instr) IsLoad() bool { return i.Op == OpLoad || i.Op == OpHLoad }

// IsStore reports whether the instruction writes data memory.
func (i *Instr) IsStore() bool { return i.Op == OpStore || i.Op == OpHStore }

// IsBranch reports whether the instruction may redirect control flow.
func (i *Instr) IsBranch() bool {
	switch i.Op {
	case OpBr, OpJmp, OpJmpInd, OpCall, OpCallInd, OpRet:
		return true
	}
	return false
}

// IsSerializing reports whether the instruction drains the pipeline before
// and after executing. hfi_enter/hfi_exit serialize conditionally (based on
// the sandbox is_serialized flag); that decision is made by the execution
// engines, not here.
func (i *Instr) IsSerializing() bool {
	switch i.Op {
	case OpFence, OpXsave, OpXrstor:
		return true
	}
	return false
}

// IsHFI reports whether the instruction is part of the HFI extension.
func (i *Instr) IsHFI() bool {
	switch i.Op {
	case OpHLoad, OpHStore, OpHfiEnter, OpHfiExit, OpHfiReenter,
		OpHfiSetRegion, OpHfiGetRegion, OpHfiClearRegion, OpHfiClearAll:
		return true
	}
	return false
}

// String renders the instruction in the assembly syntax accepted by
// Assemble, so Disassemble output re-assembles to identical instructions.
func (i *Instr) String() string {
	sizeSuffix := func() string {
		s := fmt.Sprintf("%d", int(i.Size)*8)
		if i.SignExt {
			s += "s"
		}
		return s
	}
	mem := func() string {
		return fmt.Sprintf("[%s + %s*%d + %d]", i.Rs1, i.Rs2, i.Scale, i.Disp)
	}
	switch i.Op {
	case OpNop, OpHalt, OpRet, OpSyscall, OpHostcall, OpFence, OpHfiExit, OpHfiReenter, OpHfiClearAll:
		return i.Op.String()
	case OpRdtsc:
		return fmt.Sprintf("rdtsc %s", i.Rd)
	case OpMovImm:
		return fmt.Sprintf("movi %s, %d", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs1)
	case OpNot, OpNeg:
		return fmt.Sprintf("%s%s %s, %s", i.Op, w32Suffix(i.W32), i.Rd, i.Rs1)
	case OpLoad:
		return fmt.Sprintf("ld%s %s, %s", sizeSuffix(), i.Rd, mem())
	case OpHLoad:
		return fmt.Sprintf("hld%s %d, %s, %s", sizeSuffix(), i.HReg, i.Rd, mem())
	case OpStore:
		return fmt.Sprintf("st%s %s, %s", sizeSuffix(), mem(), i.Rs3)
	case OpHStore:
		return fmt.Sprintf("hst%s %d, %s, %s", sizeSuffix(), i.HReg, mem(), i.Rs3)
	case OpBr:
		if i.UseImm {
			return fmt.Sprintf("br.%s %s, %d, 0x%x", i.Cond, i.Rs1, i.Imm, i.Target)
		}
		return fmt.Sprintf("br.%s %s, %s, 0x%x", i.Cond, i.Rs1, i.Rs2, i.Target)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s 0x%x", i.Op, i.Target)
	case OpJmpInd, OpCallInd:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpClflush:
		return fmt.Sprintf("clflush [%s + %d]", i.Rs1, i.Disp)
	case OpHfiEnter:
		return fmt.Sprintf("hfi_enter %s", i.Rs1)
	case OpHfiSetRegion, OpHfiGetRegion:
		return fmt.Sprintf("%s %d, %s", i.Op, i.Imm, i.Rs2)
	case OpHfiClearRegion:
		return fmt.Sprintf("hfi_clear_region %d", i.Imm)
	case OpXsave, OpXrstor:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	default:
		if i.UseImm {
			return fmt.Sprintf("%s%s %s, %s, %d", i.Op, w32Suffix(i.W32), i.Rd, i.Rs1, i.Imm)
		}
		return fmt.Sprintf("%s%s %s, %s, %s", i.Op, w32Suffix(i.W32), i.Rd, i.Rs1, i.Rs2)
	}
}

func w32Suffix(w bool) string {
	if w {
		return ".32"
	}
	return ""
}

// Program is a fully assembled code image: a sequence of instructions laid
// out at Base, Base+InstrBytes, Base+2*InstrBytes, ...
type Program struct {
	Base   uint64
	Instrs []Instr
	// Symbols maps label names to instruction addresses, for diagnostics
	// and for callers that need entry points.
	Symbols map[string]uint64
}

// At returns the instruction at address addr, or nil if addr falls outside
// the program or is misaligned.
func (p *Program) At(addr uint64) *Instr {
	if addr < p.Base || (addr-p.Base)%InstrBytes != 0 {
		return nil
	}
	idx := (addr - p.Base) / InstrBytes
	if idx >= uint64(len(p.Instrs)) {
		return nil
	}
	return &p.Instrs[idx]
}

// End returns the first address past the program.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Instrs))*InstrBytes }

// Size returns the code image size in bytes.
func (p *Program) Size() uint64 { return uint64(len(p.Instrs)) * InstrBytes }

// Entry returns the address of a named label. It panics if the label is
// unknown, since a missing entry point is a programming error in the
// workload, not a runtime condition.
func (p *Program) Entry(label string) uint64 {
	a, ok := p.Symbols[label]
	if !ok {
		panic(fmt.Sprintf("isa: unknown entry label %q", label))
	}
	return a
}

package sandbox

import (
	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/verifier"
)

// ElisionFromFacts projects a verifier proof artifact into the
// interpreter-facing cpu.ElisionFacts form: absolute entry address, the
// per-instruction fact bits (shared — Facts is immutable once built), the
// resident-window index per instruction, and the window table. The cpu
// package cannot import the verifier (it sits below it in the layering),
// so the runtime performs this projection at attach time; facts_test.go
// pins the bit-value correspondence the shared Bits slice relies on.
func ElisionFromFacts(p *isa.Program, f *verifier.Facts) *cpu.ElisionFacts {
	if f == nil || len(f.Bits) != len(p.Instrs) || len(f.Mem) != len(p.Instrs) {
		return nil
	}
	ef := &cpu.ElisionFacts{
		Entry:   p.Base + uint64(f.Entry)*isa.InstrBytes,
		Bits:    f.Bits,
		WinOf:   make([]int16, len(f.Mem)),
		Windows: make([]cpu.FactWindow, len(f.Windows)),
	}
	for i := range f.Mem {
		ef.WinOf[i] = f.Mem[i].Window
	}
	for i, w := range f.Windows {
		ef.Windows[i] = cpu.FactWindow{Lo: w.Lo, Hi: w.Hi}
	}
	return ef
}

// AttachFacts replaces the elision facts attached to this instance's
// program (nil detaches). Instantiate attaches the compile-time artifact
// automatically; this exists for the mutation harness, which runs mutants
// under deliberately corrupted artifacts to prove the audit pass and the
// runtime gates hold the line.
func (inst *Instance) AttachFacts(f *verifier.Facts) {
	inst.RT.M.AttachFacts(inst.C.Prog, ElisionFromFacts(inst.C.Prog, f))
}

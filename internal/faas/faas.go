// Package faas simulates the Wasm function-as-a-service platform of §6.3
// and Table 1: a single-core server dispatching requests to per-tenant
// sandboxes, measuring request latency (average and tail), throughput, and
// the sandbox lifecycle costs (setup, teardown, batching).
package faas

import (
	"errors"
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hostcall"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/tier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// Config selects the platform's isolation configuration — one Table 1 row.
type Config struct {
	Name   string
	Scheme sfi.Scheme
	// Swivel applies the software Spectre-hardening pass.
	Swivel bool
	// HFINative wraps instances in a serialized HFI native sandbox.
	HFINative bool
	// World is the shared hostcall resource universe (clock seeds, the
	// cross-instance KV store) tenants provisioned under this config talk
	// to. nil gives each instance a private default world, which keeps
	// pure-compute configs comparable as map keys and zero-config.
	World *hostcall.World
}

// StockLucet is the unprotected baseline (Table 1's Lucet(Unsafe)).
func StockLucet() Config { return Config{Name: "Lucet(Unsafe)", Scheme: sfi.GuardPages} }

// LucetHFI is guard-page Wasm wrapped in a serialized HFI native sandbox.
func LucetHFI() Config {
	return Config{Name: "Lucet+HFI", Scheme: sfi.GuardPages, HFINative: true}
}

// LucetSwivel is guard-page Wasm hardened with the Swivel-like pass.
func LucetSwivel() Config {
	return Config{Name: "Lucet+Swivel", Scheme: sfi.GuardPages, Swivel: true}
}

// Result summarizes one tenant's run under one configuration.
type Result struct {
	Tenant     string
	Config     string
	Requests   int
	AvgLatNs   float64
	TailLatNs  float64 // p99
	Throughput float64 // requests per simulated second
	BinBytes   uint64
	// Checksum is the order-independent digest of every response body
	// (see HashResponse); identical request sets must produce identical
	// checksums on any engine, scheme, or host, concurrent or not.
	Checksum uint64
}

// DispatchOverheadNs models the per-request platform work outside the
// sandbox (network receive, routing, response send).
const DispatchOverheadNs = 20_000

// TenantInstance is one provisioned warm instance: a private machine and
// runtime, the tenant's instantiated module, and an execution engine. It is
// the unit of pooling for the concurrent host (internal/host) and the unit
// ServeTenant drives single-threaded, so both paths share one construction
// and one per-request code path. A TenantInstance is not safe for
// concurrent use; confine it to one goroutine at a time.
type TenantInstance struct {
	Tenant workloads.Tenant
	Cfg    Config
	RT     *sandbox.Runtime
	Inst   *sandbox.Instance
	Eng    cpu.Engine
	// Env is the instance's hostcall environment, bound at provisioning
	// for modules that talk to the host; nil for pure-compute tenants.
	Env *hostcall.Env

	pendingFault hostcall.Fault
}

// Images is the process-wide shared code-image cache. Every Provision runs
// on a fresh machine, so the allocator hands identical layouts to identical
// (tenant, config) provisions; the first one compiles and verifies, the
// rest — across workers, pools, and goroutines — share the immutable image.
var Images = sandbox.NewCodeCache()

// transienter is the opt-in interface for retryable provisioning errors.
type transienter interface{ Transient() bool }

// IsTransient reports whether a provisioning error is transient — worth
// retrying with backoff — as opposed to a deterministic compile or
// verification failure, which will fail identically forever. Errors opt in
// by implementing interface{ Transient() bool } anywhere in their chain;
// the chaos injector's provisioning faults do, real compile/verifier
// errors do not.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok {
			return t.Transient()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Provision instantiates tenant under cfg on a fresh machine and returns
// the warm instance ready to serve requests. Code images are shared through
// the package-wide Images cache.
func Provision(tenant workloads.Tenant, cfg Config) (*TenantInstance, error) {
	return ProvisionShared(tenant, cfg, Images)
}

// ProvisionShared is Provision with an explicit image cache (nil compiles
// privately — the pre-cache behaviour, kept for differential tests).
func ProvisionShared(tenant workloads.Tenant, cfg Config, images *sandbox.CodeCache) (*TenantInstance, error) {
	rt := sandbox.NewRuntime()
	rt.Serialized = cfg.HFINative
	rt.WrapNative = cfg.HFINative
	rt.Images = images
	inst, err := rt.Instantiate(tenant.Mod, cfg.Scheme, wasm.Options{Swivel: cfg.Swivel})
	if err != nil {
		return nil, fmt.Errorf("faas: %s/%s: %w", tenant.Name, cfg.Name, err)
	}
	// The tiered engine over the shared lowering when the image carries
	// facts; it is cycle-exact with the plain interpreter (the sandbox
	// differential corpus gate proves it), so the engine choice is purely
	// a host-throughput decision. With no facts the engine delegates every
	// run to the interpreter anyway.
	ti := &TenantInstance{
		Tenant: tenant, Cfg: cfg,
		RT: rt, Inst: inst, Eng: tier.NewEngine(cpu.NewInterp(rt.M), inst.Lowered),
	}
	if tenant.Mod != nil && tenant.Mod.UsesHostcalls() {
		world := cfg.World
		if world == nil {
			world = hostcall.NewWorld(1)
		}
		ti.Env = world.NewEnv(tenant.Name)
		ti.Env.Bind(rt.M, inst.HeapBase, inst.C.MaxHeapBytes())
	}
	return ti, nil
}

// TierCountersDelta harvests the tiered engine's activity since the last
// harvest (promotions, tiered-vs-interpreted retirement). Zero for engines
// that are not tiered (differential tests hand-build interpreters).
func (ti *TenantInstance) TierCountersDelta() stats.TierCounters {
	te, ok := ti.Eng.(*tier.Engine)
	if !ok {
		return stats.TierCounters{}
	}
	p, t, i := te.TakeCounters()
	return stats.TierCounters{PromotedBlocks: p, TieredInstrs: t, InterpInstrs: i}
}

// ArmHostcallFault schedules a chaos fault for the next request served on
// this instance (the injector's hostcall seam). It is consumed by the next
// ServeBody/ServeRequest and is a no-op for pure-compute tenants.
func (ti *TenantInstance) ArmHostcallFault(f hostcall.Fault) {
	if ti.Env != nil {
		ti.pendingFault = f
	}
}

// ServeRequest runs the seq'th request of the tenant's stream on the warm
// instance with the given instruction budget (0 = unlimited). On a normal
// halt it returns the response body; otherwise the body is nil and the
// caller decides between surfacing a timeout (StopLimit) and a fault. The
// simulated clock advances by the dispatch overhead plus guest time.
func (ti *TenantInstance) ServeRequest(seq int, fuel uint64) ([]byte, cpu.RunResult) {
	return ti.ServeBody(ti.Tenant.MakeRequest(seq), fuel)
}

// ServeBody runs one request with an externally supplied request body —
// the HTTP front-end's path, where the payload arrives over the wire
// instead of from the tenant's synthetic request stream. The guest sees
// the body at workloads.InputOffset exactly as it would a generated one.
func (ti *TenantInstance) ServeBody(req []byte, fuel uint64) ([]byte, cpu.RunResult) {
	ti.RT.M.Kern.Clock.Advance(DispatchOverheadNs)
	if ti.Env != nil {
		ti.Env.BeginRequest(req)
		ti.Env.InjectFault(ti.pendingFault)
		ti.pendingFault = hostcall.FaultNone
	}
	if !ti.Tenant.Stream {
		ti.Inst.WriteHeap(workloads.InputOffset, req)
	}
	res, outLen := ti.Inst.Invoke(ti.Eng, fuel, uint64(len(req)))
	if res.Reason != cpu.StopHalt {
		return nil, res
	}
	if ti.Tenant.Stream {
		// The guest answered through fd 1; Env.ResponseBody aliases the
		// environment's buffer, so detach it before the instance is reused.
		return append([]byte(nil), ti.Env.ResponseBody()...), res
	}
	return ti.Inst.ReadHeap(workloads.OutputOffset, int(outLen)), res
}

// HashResponse digests one response for the engine-equivalence invariant:
// FNV-1a over the request sequence number and the response body. Combine
// per-request hashes with XOR so the aggregate is independent of completion
// order — a concurrent host finishing requests out of order must still match
// a single-threaded run over the same request set.
func HashResponse(seq int, body []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for sh := 0; sh < 64; sh += 8 {
		h ^= (uint64(seq) >> sh) & 0xff
		h *= prime64
	}
	for _, b := range body {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ServeTenant runs n requests of one tenant under cfg, reusing a single
// warm instance per request as production FaaS platforms do, and returns
// latency statistics from the simulated clock.
func ServeTenant(tenant workloads.Tenant, cfg Config, n int) (Result, error) {
	ti, err := Provision(tenant, cfg)
	if err != nil {
		return Result{}, err
	}
	clock := ti.RT.M.Kern.Clock

	lats := make([]float64, 0, n)
	var sum uint64
	start := clock.Now()
	for i := 0; i < n; i++ {
		t0 := clock.Now()
		body, res := ti.ServeRequest(i, 0)
		if res.Reason != cpu.StopHalt {
			return Result{}, fmt.Errorf("faas: %s/%s request %d: stop %v", tenant.Name, cfg.Name, i, res.Reason)
		}
		sum ^= HashResponse(i, body)
		lats = append(lats, float64(clock.Now()-t0))
	}
	elapsed := float64(clock.Now() - start)

	return Result{
		Tenant:     tenant.Name,
		Config:     cfg.Name,
		Requests:   n,
		AvgLatNs:   stats.Mean(lats),
		TailLatNs:  stats.Percentile(lats, 99),
		Throughput: float64(n) / (elapsed / 1e9),
		BinBytes:   ti.Inst.C.BinaryBytes,
		Checksum:   sum,
	}, nil
}

// TeardownStyle selects the §6.3.1 teardown strategy.
type TeardownStyle uint8

// Teardown strategies under comparison.
const (
	TeardownStock      TeardownStyle = iota // one madvise per sandbox
	TeardownBatchedHFI                      // one madvise across adjacent heaps (guards elided)
	TeardownBatched                         // batched, but guard regions still interleave
)

// TeardownResult reports the per-sandbox teardown cost.
type TeardownResult struct {
	Style        TeardownStyle
	Sandboxes    int
	PerSandboxNs float64
}

// MeasureTeardown reproduces the §6.3.1 experiment: create n sandboxes,
// run a trivial workload in each (a constant store), then tear all of them
// down in the selected style, measuring the teardown phase only.
func MeasureTeardown(style TeardownStyle, n int, batch int) (TeardownResult, error) {
	scheme := sfi.GuardPages
	if style == TeardownBatchedHFI {
		scheme = sfi.HFI
	}
	rt := sandbox.NewRuntime()
	clock := rt.M.Kern.Clock
	rt.M.Kern.Multicore = true // FaaS servers run concurrent workers; TLB shootdowns are real

	mod := trivialModule()
	instances := make([]*sandbox.Instance, 0, n)
	eng := cpu.NewInterp(rt.M)
	for i := 0; i < n; i++ {
		inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
		if err != nil {
			return TeardownResult{}, err
		}
		if res, _ := inst.Invoke(eng, 0); res.Reason != cpu.StopHalt {
			return TeardownResult{}, fmt.Errorf("faas: trivial workload stop %v", res.Reason)
		}
		instances = append(instances, inst)
	}

	t0 := clock.Now()
	switch style {
	case TeardownStock:
		for _, inst := range instances {
			inst.Teardown()
		}
	default:
		for i := 0; i < len(instances); i += batch {
			j := i + batch
			if j > len(instances) {
				j = len(instances)
			}
			if err := rt.TeardownBatch(instances[i:j]); err != nil {
				return TeardownResult{}, err
			}
		}
	}
	per := float64(clock.Now()-t0) / float64(n)
	return TeardownResult{Style: style, Sandboxes: n, PerSandboxNs: per}, nil
}

// trivialModule writes a constant into memory — the §6.3.1 short-lived
// workload.
func trivialModule() *wasm.Module {
	m := wasm.NewModule("trivial", 16, 16) // 1 MiB so teardown has pages to discard
	f := m.Func("run", 0)
	i, v := f.NewReg(), f.NewReg()
	f.MovImm(v, 0x42)
	f.MovImm(i, 0)
	f.Label("w")
	f.Store(8, i, 0, v)
	f.AddImm(i, i, 4096)
	f.BrImm(isa.CondLT, i, 1<<20, "w")
	f.Ret(v)
	return m
}

// ScalingResult reports how many sandboxes fit in the address space.
type ScalingResult struct {
	Scheme          sfi.Scheme
	SandboxGiB      uint64
	MeasuredCount   int  // real reservations performed
	CapacityCount   int  // total capacity (measured + arithmetic remainder)
	Extrapolated    bool // capacity beyond MeasuredCount was computed, not allocated
	ReservedPerSbox uint64
}

// MeasureScaling reproduces §6.3.2: how many sandboxes of the given heap
// size can coexist in one 47-bit address space. Guard-page sandboxes
// reserve 8 GiB regardless of heap size; HFI sandboxes reserve only the
// heap. Beyond measureLimit real reservations the remainder is computed
// arithmetically (the VMA list otherwise dominates host memory).
func MeasureScaling(scheme sfi.Scheme, heapGiB uint64, measureLimit int) (ScalingResult, error) {
	rt := sandbox.NewRuntime()
	as := rt.M.AS

	perSandbox := heapGiB << 30
	if scheme.NeedsGuardReservation() {
		perSandbox = sandbox.GuardReservation
	}
	res := ScalingResult{Scheme: scheme, SandboxGiB: heapGiB, ReservedPerSbox: perSandbox}
	count := 0
	for count < measureLimit {
		var err error
		if scheme.NeedsGuardReservation() {
			_, err = as.MapAligned(sandbox.GuardReservation, sandbox.GuardReservation, kernel.ProtNone)
		} else {
			_, err = as.MapAligned(heapGiB<<30, 1<<16, kernel.ProtRead|kernel.ProtWrite)
		}
		if err != nil {
			res.MeasuredCount = count
			res.CapacityCount = count
			return res, nil
		}
		count++
	}
	res.MeasuredCount = count
	// Arithmetic remainder: how many more reservations fit.
	remaining := (uint64(1) << 47) - as.ReservedBytes()
	res.CapacityCount = count + int(remaining/perSandbox)
	res.Extrapolated = true
	return res, nil
}

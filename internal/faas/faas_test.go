package faas

import (
	"testing"

	"hfi/internal/sfi"
	"hfi/internal/workloads"
)

func TestServeTenantConfigs(t *testing.T) {
	tenant := workloads.FaaSTenants()[3] // templated-html, the lightest
	var unsafe, hfiRes Result
	for _, cfg := range []Config{StockLucet(), LucetHFI(), LucetSwivel()} {
		r, err := ServeTenant(tenant, cfg, 8)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if r.AvgLatNs <= 0 || r.Throughput <= 0 {
			t.Fatalf("%s: degenerate result %+v", cfg.Name, r)
		}
		switch cfg.Name {
		case "Lucet(Unsafe)":
			unsafe = r
		case "Lucet+HFI":
			hfiRes = r
		}
	}
	// HFI must cost something (transitions) but only marginally.
	if hfiRes.AvgLatNs < unsafe.AvgLatNs {
		t.Fatalf("HFI faster than unsafe: %v vs %v", hfiRes.AvgLatNs, unsafe.AvgLatNs)
	}
	if hfiRes.AvgLatNs > unsafe.AvgLatNs*1.05 {
		t.Fatalf("HFI overhead too large: %v vs %v", hfiRes.AvgLatNs, unsafe.AvgLatNs)
	}
}

func TestTeardownStyles(t *testing.T) {
	stock, err := MeasureTeardown(TeardownStock, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := MeasureTeardown(TeardownBatchedHFI, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	across, err := MeasureTeardown(TeardownBatched, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !(batched.PerSandboxNs < stock.PerSandboxNs && stock.PerSandboxNs < across.PerSandboxNs) {
		t.Fatalf("ordering: hfi=%v stock=%v across=%v", batched.PerSandboxNs, stock.PerSandboxNs, across.PerSandboxNs)
	}
}

func TestScalingCapacity(t *testing.T) {
	guard, err := MeasureScaling(sfi.GuardPages, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := MeasureScaling(sfi.HFI, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.CapacityCount <= guard.CapacityCount {
		t.Fatalf("HFI capacity %d <= guard %d", h.CapacityCount, guard.CapacityCount)
	}
	if guard.ReservedPerSbox != 8<<30 || h.ReservedPerSbox != 1<<30 {
		t.Fatalf("reservations: %d / %d", guard.ReservedPerSbox, h.ReservedPerSbox)
	}
}

package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// runSnapshot captures everything observable about a finished run. Two runs
// that differ only in whether the interpreter used its fast paths must
// produce byte-identical snapshots.
type runSnapshot struct {
	reason    cpu.StopReason
	result    uint64
	regs      [isa.NumRegs]uint64
	instret   uint64
	cycles    uint64
	clockNs   uint64
	heapHash  uint64
	checksD   uint64 // HFI data checks, the fast path's preserved counter
	checksC   uint64
	hfiFaults uint64
}

func hashBytes(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// TestDifferentialFastPathCorpus runs the full Sightglass corpus under the
// HFI and guard-page schemes with the interpreter fast paths and the
// verifier-fact elision crossed in all four combinations, and asserts
// identical architectural outcomes against the fully dynamic baseline
// (NoFastPath=true, TrustFacts=off): stop reason, result, registers,
// retired instructions, cycle counts, simulated clock, heap image, and HFI
// check counters. The fast paths are pure caching and the elision path is
// a pure proof-consumer — any divergence is a bug in cache invalidation or
// in a fact the verifier should not have emitted. The elided runs must
// also actually elide (FactElisions > 0), so the equivalence is not
// vacuous.
func TestDifferentialFastPathCorpus(t *testing.T) {
	wls := workloads.Sightglass()
	if testing.Short() {
		wls = wls[:4]
	}
	type variant struct {
		noFast, trustFacts bool
	}
	variants := []variant{
		{true, false}, // fully dynamic baseline, snapshot source
		{false, false},
		{false, true},
		{true, true},
	}
	for _, w := range wls {
		for _, scheme := range []sfi.Scheme{sfi.HFI, sfi.GuardPages} {
			var want runSnapshot
			elided := uint64(0)
			elidable := uint64(0)
			for vi, v := range variants {
				rt := NewRuntime()
				inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
				if err != nil {
					t.Fatalf("%s/%v: %v", w.Name, scheme, err)
				}
				ip := cpu.NewInterp(rt.M)
				ip.NoFastPath = v.noFast
				ip.TrustFacts = v.trustFacts
				res, r0 := inst.Invoke(ip, 500_000_000)
				if res.Reason != cpu.StopHalt {
					t.Fatalf("%s/%v %+v: stop = %v", w.Name, scheme, v, res.Reason)
				}
				m := rt.M
				heap := inst.ReadHeap(0, int(uint64(inst.CurPages)*wasm.PageSize))
				snap := runSnapshot{
					reason:    res.Reason,
					result:    r0,
					regs:      m.Regs,
					instret:   m.Instret,
					cycles:    m.Cycles,
					clockNs:   m.Kern.Clock.Now(),
					heapHash:  hashBytes(heap),
					checksD:   m.HFI.ChecksData,
					checksC:   m.HFI.ChecksCode,
					hfiFaults: m.HFI.Faults,
				}
				if v.trustFacts {
					elided += m.FactElisions
					s := inst.C.Facts.Summary()
					elidable = uint64(s.Resident + s.Dominated + s.HfiHeap)
				}
				if vi == 0 {
					want = snap
				} else if snap != want {
					t.Fatalf("%s/%v %+v: divergence from dynamic baseline:\nbase: %+v\ngot:  %+v",
						w.Name, scheme, v, want, snap)
				}
			}
			if elidable > 0 && elided == 0 {
				// Pure register workloads legitimately carry no elidable
				// facts; everything else must actually exercise the path.
				t.Errorf("%s/%v: %d elidable facts but no checks elided; the differential is vacuous",
					w.Name, scheme, elidable)
			}
		}
	}
}

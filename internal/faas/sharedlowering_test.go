package faas

import (
	"sync"
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/tier"
	"hfi/internal/workloads"
)

// TestSharedLoweringAcrossWorkers mirrors TestSharedImageAcrossWorkers one
// layer up: 8 workers provisioned through one CodeCache must share the
// *same* tiered lowering — pointer identity — and hammering it concurrently
// with aggressive promotion must reproduce the single-threaded checksums.
// Under -race this proves the lowering is read-only in steady state: all
// mutable tier state (counts, promotion bits, gate verdicts) lives in the
// per-instance Engine.
func TestSharedLoweringAcrossWorkers(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	cfg := Config{Name: "HFI", Scheme: sfi.HFI}
	images := sandbox.NewCodeCache()

	const workers = 8
	const reqsPerWorker = 4

	tis := make([]*TenantInstance, workers)
	for i := range tis {
		ti, err := ProvisionShared(tenant, cfg, images)
		if err != nil {
			t.Fatal(err)
		}
		if ti.Inst.Lowered == nil {
			t.Fatal("verified image carries no lowering")
		}
		// Promote on the second execution so the fused paths carry the
		// concurrent phase.
		ti.Eng.(*tier.Engine).PromoteAfter = 1
		tis[i] = ti
	}
	for i := 1; i < workers; i++ {
		if tis[i].Inst.Lowered != tis[0].Inst.Lowered {
			t.Fatalf("worker %d built a private lowering; want the shared one", i)
		}
	}
	if hits, misses := images.LoweringStats(); misses != 1 || hits != workers-1 {
		t.Fatalf("lowering cache hits=%d misses=%d, want %d/1", hits, misses, workers-1)
	}

	// Single-threaded reference checksums on a private cache, so the shared
	// one's stats stay pinned above.
	refTI, err := ProvisionShared(tenant, cfg, sandbox.NewCodeCache())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, reqsPerWorker)
	for i := range want {
		body, res := refTI.ServeRequest(i, 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("reference request %d: stop = %v", i, res.Reason)
		}
		want[i] = HashResponse(i, body)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ti *TenantInstance) {
			defer wg.Done()
			for i := 0; i < reqsPerWorker; i++ {
				body, res := ti.ServeRequest(i, 0)
				if res.Reason != cpu.StopHalt {
					errs <- &mismatchError{i, 0, uint64(res.Reason)}
					return
				}
				if got := HashResponse(i, body); got != want[i] {
					errs <- &mismatchError{i, got, want[i]}
					return
				}
			}
		}(tis[w])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Non-vacuity: the concurrent phase must actually have run fused.
	var tiered uint64
	for _, ti := range tis {
		_, td, _ := ti.Eng.(*tier.Engine).Counters()
		tiered += td
	}
	if tiered == 0 {
		t.Fatal("no worker retired fused instructions; the race coverage is vacuous")
	}
}

// TestLoweringEvictedWithImage: evicting a module drops its lowerings
// together with its images — an orphaned lowering would pin the dead image
// — and a later provision rebuilds both.
func TestLoweringEvictedWithImage(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	cfg := Config{Name: "HFI", Scheme: sfi.HFI}
	images := sandbox.NewCodeCache()

	if _, err := ProvisionShared(tenant, cfg, images); err != nil {
		t.Fatal(err)
	}
	imgs, lows := images.Entries()
	if imgs == 0 || lows == 0 {
		t.Fatalf("warm cache entries images=%d lowerings=%d, want both > 0", imgs, lows)
	}

	images.Evict(tenant.Mod)
	imgs, lows = images.Entries()
	if imgs != 0 || lows != 0 {
		t.Fatalf("post-evict entries images=%d lowerings=%d, want 0/0", imgs, lows)
	}

	ti, err := ProvisionShared(tenant, cfg, images)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Inst.Lowered == nil {
		t.Fatal("re-provision after eviction lost the lowering")
	}
	if _, misses := images.LoweringStats(); misses != 2 {
		t.Fatalf("lowering misses = %d, want 2 (cold + post-evict rebuild)", misses)
	}
}

package host

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/faas"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// flakyTenant builds a tenant whose run(n) traps whenever the request body
// is non-empty and halts with an empty response otherwise; MakeRequest
// makes the first failBelow requests of the stream fail. This gives tests
// a tenant with a deterministic, seq-addressed fault pattern without any
// chaos injector.
func flakyTenant(name string, failBelow int) workloads.Tenant {
	m := wasm.NewModule(name, 1, 16)
	f := m.Func("run", 1)
	n := f.Param(0)
	f.BrImm(isa.CondEQ, n, 0, "ok")
	f.Trap()
	f.Label("ok")
	f.Ret(n)
	return workloads.Tenant{
		Name: name, Mod: m,
		MakeRequest: func(i int) []byte {
			if i < failBelow {
				return []byte{1}
			}
			return nil
		},
	}
}

// TestSubmitAfterCloseTyped: the satellite contract — Submit on a closed
// server resolves immediately with StatusClosed and the typed ErrClosed,
// never a zero-value Response.
func TestSubmitAfterCloseTyped(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	s := New(Config{Workers: 1})
	s.Close()

	r := s.Do(context.Background(), treq(tenant, faas.StockLucet(), 0))
	if r.Status != StatusClosed {
		t.Fatalf("status = %v, want %v", r.Status, StatusClosed)
	}
	if !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", r.Err)
	}
	if got := s.Counters().ClosedRejects; got != 1 {
		t.Fatalf("ClosedRejects = %d, want 1", got)
	}
	// Closed-server refusals are not admitted and not recorded.
	if s.Admitted() != 0 || s.Snapshot(0).Executed() != 0 {
		t.Fatalf("closed refusal leaked into accounting: admitted=%d", s.Admitted())
	}
}

// TestCloseUnderLoad: Close racing a storm of submitters loses nothing —
// every Do resolves exactly once, as a real outcome (admitted before the
// close, drained) or as a typed StatusClosed, and the two sets partition
// the total exactly.
func TestCloseUnderLoad(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	iso := faas.StockLucet()
	s := New(Config{Workers: 2, QueueDepth: 4, DispatchWall: 500 * time.Microsecond})

	const clients, per = 8, 8
	results := make(chan Response, clients*per)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results <- s.Do(context.Background(), treq(tenant, iso, c*per+i))
			}
		}(c)
	}
	time.Sleep(3 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(results)

	var ok, closed uint64
	for r := range results {
		switch r.Status {
		case StatusOK:
			if r.Err != nil {
				t.Fatalf("OK response carries err %v", r.Err)
			}
			ok++
		case StatusClosed:
			if !errors.Is(r.Err, ErrClosed) {
				t.Fatalf("closed response err = %v, want ErrClosed", r.Err)
			}
			closed++
		default:
			t.Fatalf("unexpected status %v (err %v)", r.Status, r.Err)
		}
	}
	if ok+closed != clients*per {
		t.Fatalf("resolved %d+%d of %d submissions", ok, closed, clients*per)
	}
	if ok == 0 {
		t.Fatal("nothing drained before close — in-flight work was dropped")
	}
	// Everything admitted pre-close drained with a real outcome.
	if got := s.Admitted(); got != ok {
		t.Fatalf("Admitted() = %d, but %d real outcomes resolved", got, ok)
	}
	if got := s.Counters().ClosedRejects; got != closed {
		t.Fatalf("ClosedRejects = %d, observed %d StatusClosed", got, closed)
	}
	sum := s.Snapshot(0)
	if sum.OK != ok || sum.Executed()+sum.Shed+sum.Rejected != ok {
		t.Fatalf("recorder %+v inconsistent with ok=%d closed=%d", sum, ok, closed)
	}
}

// TestShedAccountingConservation: the queue-accounting satellite. Many
// goroutines hammering one PolicyShed tenant while the worker drains must
// account every submission exactly once: submitted == ok + shed,
// Rejected() equals the observed shed responses, and the recorder's
// conservation invariant holds with no slack.
func TestShedAccountingConservation(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	iso := faas.StockLucet()
	s := New(Config{Workers: 1, QueueDepth: 1, Policy: PolicyShed, DispatchWall: 200 * time.Microsecond})

	const clients, per = 8, 40
	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch r := s.Do(context.Background(), treq(tenant, iso, c*per+i)); r.Status {
				case StatusOK:
					ok.Add(1)
				case StatusShed:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %v", r.Status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.Close()

	const total = clients * per
	if ok.Load()+shed.Load() != total {
		t.Fatalf("ok %d + shed %d != %d", ok.Load(), shed.Load(), total)
	}
	if shed.Load() == 0 {
		t.Fatal("depth-1 shed queue under 8 clients shed nothing")
	}
	if got := s.Admitted(); got != total {
		t.Fatalf("Admitted() = %d, want %d (every submission is admitted under PolicyShed)", got, total)
	}
	if got := s.Rejected(); got != shed.Load() {
		t.Fatalf("Rejected() = %d, observed %d shed responses", got, shed.Load())
	}
	sum := s.Snapshot(0)
	if sum.OK != ok.Load() || sum.Shed != shed.Load() {
		t.Fatalf("recorder %+v != observed ok=%d shed=%d", sum, ok.Load(), shed.Load())
	}
	if sum.Executed()+sum.Shed+sum.Rejected != total {
		t.Fatalf("conservation violated: %+v does not sum to %d", sum, total)
	}
	ts := s.rec.Tenant(tenant.Name)
	if ts.Admitted() != total || ts.Shed != shed.Load() {
		t.Fatalf("per-tenant breakdown %+v inconsistent with total=%d shed=%d", ts, total, shed.Load())
	}
}

// TestProvisionRetryTransient: injected transient provisioning failures are
// retried with backoff and eventually succeed when the retry budget covers
// the injector's failure prefix.
func TestProvisionRetryTransient(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	iso := faas.StockLucet()
	inj := chaos.New(chaos.Config{Seed: 7, Provision: 1, MaxProvisionFails: 2})
	s := New(Config{Workers: 1, Chaos: inj,
		Retry: RetryConfig{Max: 2, Base: 50 * time.Microsecond, Cap: 200 * time.Microsecond}})
	defer s.Close()

	r := s.Do(context.Background(), treq(tenant, iso, 0))
	if r.Status != StatusOK {
		t.Fatalf("status = %v (err %v), want OK after retries", r.Status, r.Err)
	}
	ctr := s.Counters()
	if ctr.ProvisionRetries == 0 || ctr.ProvisionRetries > 2 {
		t.Fatalf("ProvisionRetries = %d, want 1..2", ctr.ProvisionRetries)
	}
	// Warm reuse afterwards: no fresh provisioning, no fresh retries.
	if r := s.Do(context.Background(), treq(tenant, iso, 1)); r.Status != StatusOK {
		t.Fatalf("warm request: %v", r.Status)
	}
	if got := s.Counters(); got.ColdStarts != 1 || got.ProvisionRetries != ctr.ProvisionRetries {
		t.Fatalf("warm reuse reprovisioned: %+v", got)
	}
}

// TestProvisionRetryBudgetExhausted: with no retry budget the same
// transient failure surfaces as a typed fault.
func TestProvisionRetryBudgetExhausted(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	inj := chaos.New(chaos.Config{Seed: 7, Provision: 1, MaxProvisionFails: 2})
	s := New(Config{Workers: 1, Chaos: inj})
	defer s.Close()

	r := s.Do(context.Background(), treq(tenant, faas.StockLucet(), 0))
	if r.Status != StatusFault {
		t.Fatalf("status = %v, want fault with Retry.Max=0", r.Status)
	}
	var fe *chaos.FaultError
	if !errors.As(r.Err, &fe) || !faas.IsTransient(r.Err) {
		t.Fatalf("err = %v, want a transient *chaos.FaultError", r.Err)
	}
	if got := s.Counters().ProvisionRetries; got != 0 {
		t.Fatalf("ProvisionRetries = %d, want 0", got)
	}
}

// TestBreakerTripsShedsRecovers: a tenant whose first requests all fault
// trips its breaker (typed ErrBreakerOpen sheds), then recovers through a
// half-open probe once its requests succeed again. Single worker and
// sequential Do make the whole trajectory deterministic.
func TestBreakerTripsShedsRecovers(t *testing.T) {
	tenant := flakyTenant("flaky-breaker", 4) // seqs 0..3 fault, then healthy
	iso := faas.Config{Name: "HFI", Scheme: sfi.HFI}
	s := New(Config{Workers: 1, Breaker: BreakerConfig{
		Window: 4, MinSamples: 4, TripRatio: 1.0,
		OpenFor: 20 * time.Millisecond, Probes: 1,
	}})
	defer s.Close()

	for i := 0; i < 4; i++ {
		if r := s.Do(context.Background(), treq(tenant, iso, i)); r.Status != StatusFault {
			t.Fatalf("seq %d: status %v, want fault", i, r.Status)
		}
	}
	// Tripped: sheds fast with the typed error, without executing.
	r := s.Do(context.Background(), treq(tenant, iso, 4))
	if r.Status != StatusShed || !errors.Is(r.Err, ErrBreakerOpen) {
		t.Fatalf("post-trip: status %v err %v, want shed/ErrBreakerOpen", r.Status, r.Err)
	}
	if got := s.Counters().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}

	// After OpenFor the probe is admitted; the tenant is healthy now, so
	// the breaker closes and stays closed.
	time.Sleep(30 * time.Millisecond)
	for i := 5; i < 8; i++ {
		if r := s.Do(context.Background(), treq(tenant, iso, i)); r.Status != StatusOK {
			t.Fatalf("recovered seq %d: status %v err %v", i, r.Status, r.Err)
		}
	}
	ts := s.rec.Tenant(tenant.Name)
	if ts.Faults != 4 || ts.Shed == 0 || ts.OK != 3 {
		t.Fatalf("tenant breakdown %+v, want 4 faults / ≥1 shed / 3 ok", ts)
	}
	// Breaker sheds count toward the 429 counter like queue sheds.
	if got := s.Rejected(); got != ts.Shed {
		t.Fatalf("Rejected() = %d, tenant shed = %d", got, ts.Shed)
	}
}

// TestQuarantineKeepsVerifiedInstance: faults quarantine the instance, but
// a verified reset returns it to the pool — repeated faults reuse one
// instance, no re-provisioning.
func TestQuarantineKeepsVerifiedInstance(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	inj := chaos.New(chaos.Config{Seed: 3, Trap: 1}) // every request traps, resets stay clean
	s := New(Config{Workers: 1, Chaos: inj})

	for i := 0; i < 3; i++ {
		if r := s.Do(context.Background(), treq(tenant, faas.StockLucet(), i)); r.Status != StatusFault {
			t.Fatalf("seq %d: status %v, want injected fault", i, r.Status)
		}
	}
	s.Close()
	ctr := s.Counters()
	if ctr.Quarantined != 3 || ctr.QuarantineDiscard != 0 {
		t.Fatalf("quarantined=%d discarded=%d, want 3/0", ctr.Quarantined, ctr.QuarantineDiscard)
	}
	if ctr.ColdStarts != 1 {
		t.Fatalf("ColdStarts = %d, want 1 (verified instance reused)", ctr.ColdStarts)
	}
}

// TestQuarantineDiscardsPoisonedInstance: when reset fails to restore the
// baseline heap image (the injector's poison seam), the hash check catches
// it and the instance is discarded — the next request re-provisions.
func TestQuarantineDiscardsPoisonedInstance(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[0]
	inj := chaos.New(chaos.Config{Seed: 3, Trap: 1, Poison: 1})
	s := New(Config{Workers: 1, Chaos: inj})

	for i := 0; i < 2; i++ {
		if r := s.Do(context.Background(), treq(tenant, faas.StockLucet(), i)); r.Status != StatusFault {
			t.Fatalf("seq %d: status %v, want injected fault", i, r.Status)
		}
	}
	s.Close()
	ctr := s.Counters()
	if ctr.QuarantineDiscard != 2 {
		t.Fatalf("QuarantineDiscard = %d, want 2", ctr.QuarantineDiscard)
	}
	if ctr.ColdStarts != 2 {
		t.Fatalf("ColdStarts = %d, want 2 (poisoned instances never reused)", ctr.ColdStarts)
	}
	if ctr.PoolSize != 0 {
		t.Fatalf("PoolSize = %d after close, want 0", ctr.PoolSize)
	}
	if ctr.Teardowns != ctr.ColdStarts {
		t.Fatalf("Teardowns = %d, ColdStarts = %d — a discarded instance escaped teardown", ctr.Teardowns, ctr.ColdStarts)
	}
}

// TestPoolEvictionLRU: a capped pool under key churn evicts least-recently
// used instances, re-provisions on revisit, and tears down exactly what it
// provisioned.
func TestPoolEvictionLRU(t *testing.T) {
	light := workloads.FaaSTenantsLight()
	iso := faas.StockLucet()
	s := New(Config{Workers: 1, Pool: PoolConfig{Cap: 2, TeardownBatch: 2}})

	for _, tn := range light { // 4 distinct pool keys through a cap-2 pool
		if r := s.Do(context.Background(), treq(tn, iso, 0)); r.Status != StatusOK {
			t.Fatalf("%s: %v", tn.Name, r.Status)
		}
	}
	// light[0] was evicted long ago; revisiting re-provisions.
	if r := s.Do(context.Background(), treq(light[0], iso, 1)); r.Status != StatusOK {
		t.Fatalf("revisit: %v", r.Status)
	}
	mid := s.Counters()
	if mid.ColdStarts != 5 {
		t.Fatalf("ColdStarts = %d, want 5 (4 distinct + 1 revisit)", mid.ColdStarts)
	}
	if mid.Evictions != 3 {
		t.Fatalf("Evictions = %d, want 3", mid.Evictions)
	}
	if mid.PoolSize != 2 || mid.PoolHighWater > 3 {
		t.Fatalf("pool size %d (high %d), want ≤ cap 2 (high ≤ cap+1)", mid.PoolSize, mid.PoolHighWater)
	}
	s.Close()
	end := s.Counters()
	if end.PoolSize != 0 || end.Teardowns != end.ColdStarts {
		t.Fatalf("after close: size=%d teardowns=%d coldstarts=%d, want 0 and equal", end.PoolSize, end.Teardowns, end.ColdStarts)
	}
}

// TestPoolTTLEviction: idle instances past the TTL are swept on the next
// pool access, so an idle tenant's warm state does not pin memory forever.
func TestPoolTTLEviction(t *testing.T) {
	light := workloads.FaaSTenantsLight()
	iso := faas.StockLucet()
	s := New(Config{Workers: 1, Pool: PoolConfig{TTL: 5 * time.Millisecond, TeardownBatch: 1}})
	defer s.Close()

	if r := s.Do(context.Background(), treq(light[0], iso, 0)); r.Status != StatusOK {
		t.Fatalf("first: %v", r.Status)
	}
	time.Sleep(15 * time.Millisecond)
	if r := s.Do(context.Background(), treq(light[1], iso, 0)); r.Status != StatusOK {
		t.Fatalf("second: %v", r.Status)
	}
	if got := s.Counters().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1 (stale instance swept)", got)
	}
	if r := s.Do(context.Background(), treq(light[0], iso, 1)); r.Status != StatusOK {
		t.Fatalf("revisit: %v", r.Status)
	}
	if got := s.Counters().ColdStarts; got != 3 {
		t.Fatalf("ColdStarts = %d, want 3 (TTL eviction forces re-provision)", got)
	}
}

// TestDRRFairnessUnderLoad: end-to-end fairness — while one tenant's deep
// backlog drains, a late-arriving tenant's short burst completes without
// waiting out the backlog.
func TestDRRFairnessUnderLoad(t *testing.T) {
	hot := workloads.FaaSTenantsLight()[3]
	cold := workloads.FaaSTenantsLight()[0]
	iso := faas.StockLucet()
	s := New(Config{Workers: 1, QueueDepth: 64, DispatchWall: time.Millisecond})

	const hotN = 50
	var hotDone atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < hotN; i++ {
		ch := s.Submit(context.Background(), treq(hot, iso, i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r := <-ch; r.Status == StatusOK {
				hotDone.Add(1)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the worker start on the backlog

	for i := 0; i < 5; i++ {
		if r := s.Do(context.Background(), treq(cold, iso, i)); r.Status != StatusOK {
			t.Fatalf("cold seq %d: %v", i, r.Status)
		}
	}
	// DRR interleaves: the cold burst finished while most of the hot
	// backlog was still queued. A FIFO queue would have forced the cold
	// tenant to wait out all 50.
	if done := hotDone.Load(); done >= hotN-5 {
		t.Fatalf("cold burst only completed after %d/%d hot requests — starved", done, hotN)
	}
	wg.Wait()
	s.Close()
	if hotDone.Load() != hotN {
		t.Fatalf("hot tenant completed %d/%d", hotDone.Load(), hotN)
	}
	if got := s.sched.tenantServed(cold.Name); got != 5 {
		t.Fatalf("scheduler served %d cold requests, want 5", got)
	}
}

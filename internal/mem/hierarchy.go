package mem

// Latencies configures the cycle cost of each level of the memory system.
// Defaults follow the paper's Table 2 baseline (Skylake-like core).
type Latencies struct {
	L1     int // L1 hit
	L2     int // L2 hit (after L1 miss)
	Mem    int // DRAM (after L2 miss)
	TLBHit int // translation cost folded into the pipeline (0: parallel)
	Walk   int // page-walk cost on a TLB miss
}

// DefaultLatencies returns the Skylake-like latency model used throughout
// the evaluation.
func DefaultLatencies() Latencies {
	return Latencies{L1: 4, L2: 12, Mem: 200, TLBHit: 0, Walk: 25}
}

// Hierarchy bundles the L1 data cache, L1 instruction cache, unified L2,
// the data TLB (the paper's "dtb"), and the latency model. It exposes the
// composite access operations the execution engines use.
type Hierarchy struct {
	L1D *Cache
	L1I *Cache
	L2  *Cache
	DTB *TLB
	Lat Latencies
}

// NewHierarchy builds the default Skylake-like hierarchy: 32 KiB 8-way L1s,
// 1 MiB 16-way L2, 64-entry dTLB over 4 KiB pages.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1D: NewCache("l1d", 32<<10, 8, 64),
		L1I: NewCache("l1i", 32<<10, 8, 64),
		L2:  NewCache("l2", 1<<20, 16, 64),
		DTB: NewTLB(64, PageBits),
		Lat: DefaultLatencies(),
	}
}

// LoadLatency performs a data-side access for addr and returns its latency
// in cycles. It updates cache and TLB state — including speculatively: the
// timing simulator calls this for loads that may later be squashed, which
// is exactly the behaviour the Spectre experiments rely on.
func (h *Hierarchy) LoadLatency(addr uint64) int {
	// Fast path: MRU hit in both the dTLB and the L1D — the steady state
	// of any loop touching one hot page. Re-touching the MRU entry leaves
	// replacement order unchanged, so only the hit counters move; every
	// other case falls through to the full access walk. The masked set
	// index is only meaningful for power-of-two geometries, but a wrong
	// set can never produce a false hit: tags are full-address tags and
	// are only ever stored in their own set's list.
	d, c := h.DTB, h.L1D
	vpn := addr >> d.pageBits
	if o := d.order; len(o) > 0 && o[0] == vpn {
		tag := addr >> c.lineBits
		if set := c.lines[tag&c.setMask]; len(set) > 0 && set[0] == tag {
			d.hits++
			c.hits++
			return h.Lat.TLBHit + h.Lat.L1
		}
	}
	return h.loadLatencySlow(addr)
}

func (h *Hierarchy) loadLatencySlow(addr uint64) int {
	lat := 0
	if !h.DTB.Access(addr) {
		lat += h.Lat.Walk
	} else {
		lat += h.Lat.TLBHit
	}
	if h.L1D.Access(addr) {
		return lat + h.Lat.L1
	}
	if h.L2.Access(addr) {
		return lat + h.Lat.L2
	}
	return lat + h.Lat.Mem
}

// StoreLatency performs a store-side access. Stores commit through a store
// buffer, so the returned latency models the address translation and fill.
func (h *Hierarchy) StoreLatency(addr uint64) int {
	return h.LoadLatency(addr)
}

// FetchLatency performs an instruction-side access for addr.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	if h.L1I.Access(addr) {
		return h.Lat.L1
	}
	if h.L2.Access(addr) {
		return h.Lat.L2
	}
	return h.Lat.Mem
}

// Probe reports whether addr is in the L1 data cache without disturbing
// any state. Spectre receivers use this to distinguish hit/miss timings.
func (h *Hierarchy) Probe(addr uint64) bool { return h.L1D.Lookup(addr) }

// Flush evicts addr from all cache levels (clflush semantics).
func (h *Hierarchy) Flush(addr uint64) {
	h.L1D.Flush(addr)
	h.L1I.Flush(addr)
	h.L2.Flush(addr)
}

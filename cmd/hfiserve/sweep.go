package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hfi/internal/host"
	"hfi/internal/stats"
)

// sweepOpts carries the -mode sweep configuration.
type sweepOpts struct {
	counts    []int
	mix       []host.Class
	pol       host.Policy
	queue     int
	fuel      uint64
	dispatch  time.Duration
	tenants   map[string]host.TenantPolicy
	rates     []float64
	perRate   int
	seed      int64
	jsonOut   bool
	checkPath string
	tol       float64
}

// runSweep produces the open-loop latency-vs-offered-load table per worker
// count — the hockey stick: p99 flat while the offered rate sits below
// capacity, then exploding (PolicyBlock) or flattening into shed
// (PolicyShed) past the knee. Returns the process exit code.
func runSweep(o sweepOpts) int {
	rep := report{Seed: o.seed, Mode: "sweep", Policy: o.pol.String()}
	for _, w := range o.counts {
		newServer := func() *host.Server {
			return host.New(host.Config{
				Workers: w, QueueDepth: o.queue, Policy: o.pol,
				Fuel: o.fuel, DispatchWall: o.dispatch,
				Tenants: o.tenants,
				Retry:   host.RetryConfig{Max: 2},
				Seed:    o.seed,
			})
		}
		pts := host.RunRateSweep(newServer, o.mix, o.rates, o.perRate, o.seed)
		rep.Sweeps = append(rep.Sweeps, sweepRun{Workers: w, Points: pts})

		if !o.jsonOut {
			tb := &stats.Table{
				Title:   fmt.Sprintf("open-loop sweep, %d workers (%d requests/rate, policy %s)", w, o.perRate, o.pol),
				Columns: []string{"rate req/s", "achieved", "ok", "shed%", "p50", "p99", "p99.9"},
			}
			for _, pt := range pts {
				tb.AddRow(
					fmt.Sprintf("%.0f", pt.RateRPS),
					fmt.Sprintf("%.0f", pt.AchievedRPS),
					strconv.FormatUint(pt.OK, 10),
					fmt.Sprintf("%.1f", pt.ShedRate*100),
					stats.Ns(pt.P50Ns), stats.Ns(pt.P99Ns), stats.Ns(pt.P999Ns),
				)
			}
			tb.AddNote("open loop: arrivals are Poisson at the offered rate, independent of completions")
			fmt.Println(tb)
		}
	}

	if o.checkPath != "" {
		if err := checkBaseline(rep, o.checkPath, o.tol); err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve: loadtest gate:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "hfiserve: p99 within %.1fx of baseline %s at every point\n", o.tol, o.checkPath)
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve:", err)
			return 1
		}
	}
	return 0
}

// checkBaseline compares this run's p99 per (workers, rate) point against a
// saved sweep report, allowing a tol× multiplier of slack (wall-clock
// latency on shared CI hardware is noisy; a real regression shows up as a
// multiple, not a percentage). Every run must also conserve its ledger and
// actually serve something at every rate.
func checkBaseline(rep report, path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	basePts := make(map[string]host.SweepPoint)
	for _, sw := range base.Sweeps {
		for _, pt := range sw.Points {
			basePts[fmt.Sprintf("%d@%.0f", sw.Workers, pt.RateRPS)] = pt
		}
	}
	for _, sw := range rep.Sweeps {
		for _, pt := range sw.Points {
			accounted := pt.OK + pt.Timeouts + pt.Faults + pt.Shed + pt.Rejected + pt.Canceled
			if accounted != uint64(pt.Offered) {
				return fmt.Errorf("%d workers @ %.0f req/s: accounted %d of %d offered",
					sw.Workers, pt.RateRPS, accounted, pt.Offered)
			}
			if pt.OK == 0 {
				return fmt.Errorf("%d workers @ %.0f req/s: zero successes", sw.Workers, pt.RateRPS)
			}
			key := fmt.Sprintf("%d@%.0f", sw.Workers, pt.RateRPS)
			bp, ok := basePts[key]
			if !ok || bp.P99Ns <= 0 {
				continue // point not in baseline: informational only
			}
			if pt.P99Ns > bp.P99Ns*tol {
				return fmt.Errorf("%d workers @ %.0f req/s: p99 %s vs baseline %s exceeds %.1fx",
					sw.Workers, pt.RateRPS, stats.Ns(pt.P99Ns), stats.Ns(bp.P99Ns), tol)
			}
		}
	}
	return nil
}

// parseRates parses the -rates list.
func parseRates(list string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return rates, nil
}

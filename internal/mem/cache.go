package mem

import "fmt"

// Cache models a set-associative cache with true-LRU replacement. Only tag
// state is tracked (presence, not data): the simulators read data from the
// backing Memory and use the cache purely for latency and for the
// flush+reload side channel that the Spectre experiments depend on.
type Cache struct {
	name     string
	lineBits uint
	sets     uint64
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	ways     int
	// lines[set] is an LRU-ordered list of tags, most recent first.
	lines [][]uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache of the given total size with the given
// associativity and line size. Size must divide evenly into sets.
func NewCache(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 || size%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("mem: invalid cache geometry size=%d ways=%d line=%d", size, ways, lineSize))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	if 1<<lineBits != lineSize {
		panic(fmt.Sprintf("mem: line size %d not a power of two", lineSize))
	}
	sets := uint64(size / (ways * lineSize))
	c := &Cache{name: name, lineBits: lineBits, sets: sets, ways: ways}
	if sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	c.lines = make([][]uint64, sets)
	return c
}

// set maps a tag to its set index. Power-of-two geometries (all the default
// ones) use a mask; anything else pays the modulo.
func (c *Cache) set(tag uint64) uint64 {
	if m := c.setMask; m != 0 {
		return tag & m
	}
	return tag % c.sets
}

func (c *Cache) tag(addr uint64) uint64 { return addr >> c.lineBits }

// Lookup reports whether addr hits without updating replacement state or
// counters. Used by probes that must not perturb the cache.
func (c *Cache) Lookup(addr uint64) bool {
	tag := c.tag(addr)
	for _, t := range c.lines[c.set(tag)] {
		if t == tag {
			return true
		}
	}
	return false
}

// Access performs a cache access for addr: on a hit the line moves to MRU
// position; on a miss the line is filled, evicting LRU if the set is full.
// It reports whether the access hit. The MRU slot is checked before anything
// else: re-touching the hottest line — the overwhelmingly common case in
// loops — is already in MRU position, so the hit needs no reordering.
func (c *Cache) Access(addr uint64) bool {
	tag := addr >> c.lineBits
	if set := c.lines[c.set(tag)]; len(set) > 0 && set[0] == tag {
		c.hits++
		return true
	}
	return c.accessSlow(tag)
}

// accessSlow handles the non-MRU cases: a hit deeper in the LRU list (moved
// to front) or a miss (fill, evicting LRU if the set is full).
func (c *Cache) accessSlow(tag uint64) bool {
	s := c.set(tag)
	set := c.lines[s]
	for i := 1; i < len(set); i++ {
		if set[i] == tag {
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.lines[s] = set
	return false
}

// Flush evicts the line containing addr if present (clflush).
func (c *Cache) Flush(addr uint64) {
	tag := c.tag(addr)
	s := c.set(tag)
	set := c.lines[s]
	for i, t := range set {
		if t == tag {
			c.lines[s] = append(set[:i], set[i+1:]...)
			return
		}
	}
}

// FlushAll empties the cache.
func (c *Cache) FlushAll() {
	for i := range c.lines {
		c.lines[i] = c.lines[i][:0]
	}
}

// Stats returns hit and miss counts since construction.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineBits }

// TLB models a fully-associative translation lookaside buffer over fixed
// size pages, with LRU replacement. Entries are page numbers; the simulated
// OS (internal/kernel) invalidates entries on unmap/protection changes.
type TLB struct {
	pageBits uint
	entries  int
	order    []uint64 // LRU order, most recent first

	hits      uint64
	misses    uint64
	shootdown uint64
}

// NewTLB builds a TLB with the given number of entries over pages of
// 1<<pageBits bytes.
func NewTLB(entries int, pageBits uint) *TLB {
	if entries <= 0 {
		panic("mem: TLB needs at least one entry")
	}
	return &TLB{pageBits: pageBits, entries: entries}
}

// Access looks up the translation for addr, filling on miss. It reports
// whether the lookup hit. Like Cache.Access, the MRU entry is checked first
// so repeated touches of the hot page cost one compare.
func (t *TLB) Access(addr uint64) bool {
	vpn := addr >> t.pageBits
	if o := t.order; len(o) > 0 && o[0] == vpn {
		t.hits++
		return true
	}
	return t.accessSlow(vpn)
}

func (t *TLB) accessSlow(vpn uint64) bool {
	for i := 1; i < len(t.order); i++ {
		if t.order[i] == vpn {
			copy(t.order[1:i+1], t.order[:i])
			t.order[0] = vpn
			t.hits++
			return true
		}
	}
	t.misses++
	if len(t.order) < t.entries {
		t.order = append(t.order, 0)
	}
	copy(t.order[1:], t.order)
	t.order[0] = vpn
	return false
}

// Invalidate drops the translation for the page containing addr.
func (t *TLB) Invalidate(addr uint64) {
	vpn := addr >> t.pageBits
	for i, e := range t.order {
		if e == vpn {
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
}

// InvalidateAll flushes the whole TLB (a full shootdown).
func (t *TLB) InvalidateAll() {
	t.order = t.order[:0]
	t.shootdown++
}

// Stats returns hit, miss and full-shootdown counts.
func (t *TLB) Stats() (hits, misses, shootdowns uint64) {
	return t.hits, t.misses, t.shootdown
}

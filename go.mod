module hfi

go 1.24

// Package stats provides the summary statistics and text renderers the
// benchmark harnesses use to report each table and figure.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which indicate a harness bug).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p'th percentile (0-100) of xs using linear
// interpolation. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	pos := p / 100 * float64(len(ys)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[lo]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the minimum of a non-empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of a non-empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table is a simple fixed-width text table for harness output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Pct formats a ratio as a signed percentage ("+3.2%" / "-1.4%").
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}

// Ns formats nanoseconds with an adaptive unit.
func Ns(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Bytes formats a byte count with an adaptive unit.
func Bytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) filesWithFset {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return filesWithFset{[]*ast.File{f}, fset}
}

const wireHostSrc = `package host
type Status uint8
const (
	StatusOK Status = iota
	StatusTimeout
	StatusShed
)`

const wireStatsSrc = `package stats
var outcomeNames = [...]string{"ok", "timeout", "shed"}`

// TestWireRuleClean: a minimal but fully-consistent wire surface passes.
func TestWireRuleClean(t *testing.T) {
	front := parseOne(t, `package httpfront
var EnvelopeOutcomes = [...]string{"timeout", "shed", "closed", "unroutable"}
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return "timeout"
	case host.StatusShed:
		return "shed"
	default:
		return "shed"
	}
}
func f() { _ = ErrorEnvelope{Outcome: "unroutable"} }`)
	cluster := parseOne(t, `package cluster
func g() { _ = httpfront.ErrorEnvelope{Outcome: "timeout"} }
func h(o string) { _ = httpfront.ErrorEnvelope{Outcome: o} }       // ident: decode path, fine
func i() { _ = httpfront.ErrorEnvelope{Outcome: statusOutcome(1)} } // call: table path, fine`)
	issues := lintWire("", parseOne(t, wireHostSrc).files, front, cluster, parseOne(t, wireStatsSrc).files)
	if len(issues) != 0 {
		t.Fatalf("clean wire surface flagged: %v", issues)
	}
}

// TestWireRuleFindings pins each failure mode the rule exists for.
func TestWireRuleFindings(t *testing.T) {
	cases := []struct {
		name    string
		front   string
		cluster string
		want    string
	}{
		{
			"uncovered status",
			`package httpfront
var EnvelopeOutcomes = [...]string{"timeout", "shed"}
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return "timeout"
	default:
		return "timeout"
	}
}`,
			`package cluster`,
			"no case for host.StatusShed",
		},
		{
			"literal drifts from status name",
			`package httpfront
var EnvelopeOutcomes = [...]string{"late", "shed", "timeout"}
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return "late"
	case host.StatusShed:
		return "shed"
	default:
		return "shed"
	}
}`,
			`package cluster`,
			`must be the status name "timeout"`,
		},
		{
			"non-literal return defeats the check",
			`package httpfront
var EnvelopeOutcomes = [...]string{"timeout", "shed"}
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return st.String()
	case host.StatusShed:
		return "shed"
	default:
		return "shed"
	}
}`,
			`package cluster`,
			"non-literal",
		},
		{
			"envelope outcome outside the vocabulary",
			`package httpfront
var EnvelopeOutcomes = [...]string{"timeout", "shed"}
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return "timeout"
	case host.StatusShed:
		return "shed"
	default:
		return "shed"
	}
}`,
			`package cluster
func g() { _ = httpfront.ErrorEnvelope{Outcome: "weird"} }`,
			"outside the closed EnvelopeOutcomes vocabulary",
		},
		{
			"duplicate vocabulary entry",
			`package httpfront
var EnvelopeOutcomes = [...]string{"timeout", "shed", "shed"}
func statusOutcome(st host.Status) string {
	switch st {
	case host.StatusTimeout:
		return "timeout"
	case host.StatusShed:
		return "shed"
	default:
		return "shed"
	}
}`,
			`package cluster`,
			`lists "shed" twice`,
		},
	}
	for _, c := range cases {
		issues := lintWire("", parseOne(t, wireHostSrc).files,
			parseOne(t, c.front), parseOne(t, c.cluster), parseOne(t, wireStatsSrc).files)
		found := false
		for _, i := range issues {
			if strings.Contains(i.Msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no issue containing %q in %v", c.name, c.want, issues)
		}
	}
}

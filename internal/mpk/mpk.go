// Package mpk models Intel Memory Protection Keys, the page-based
// in-process isolation baseline of §6.4.2 (ERIM-style protection of
// OpenSSL session keys in NGINX) and of the related-work comparison.
//
// MPK tags pages with one of 16 protection keys; a per-thread register
// (PKRU) selects which keys the thread may access, switched in userspace
// with the unprivileged wrpkru instruction. The model captures the three
// properties the paper's comparison turns on:
//
//   - domain switches cost tens of cycles (wrpkru) but no kernel entry;
//   - only 15 usable domains exist, a hard scaling limit (§7);
//   - tagging pages goes through the kernel (pkey_mprotect), with
//     page-table update costs like any protection change.
package mpk

import (
	"fmt"

	"hfi/internal/kernel"
)

// NumKeys is the architectural number of protection keys; key 0 is the
// default domain every untagged page belongs to, leaving 15 allocatable.
const NumKeys = 16

// WrpkruCycles is the modeled cost of one wrpkru domain switch. ERIM
// measures 11-260 cycles depending on surrounding serialization; the
// paper's Fig 5 MPK overhead (1.9-5.3%) corresponds to the low end plus
// call overhead.
const WrpkruCycles = 28

// Key is a protection-key index.
type Key uint8

// PKU is the per-machine protection-key state: key allocation, page
// tagging, and the current PKRU value.
type PKU struct {
	Clock *kernel.Clock

	allocated [NumKeys]bool
	// tags maps page index -> key.
	tags map[uint64]Key
	// pkru holds the access-disable bit per key (true = access denied).
	pkru [NumKeys]bool

	Switches uint64
}

// New returns an MPK model over the given clock.
func New(clock *kernel.Clock) *PKU {
	p := &PKU{Clock: clock, tags: make(map[uint64]Key)}
	p.allocated[0] = true // default key
	return p
}

// PkeyAlloc allocates a protection key, failing when all 15 are in use —
// the scaling wall the paper contrasts with HFI's unbounded sandboxes.
func (p *PKU) PkeyAlloc() (Key, error) {
	for k := 1; k < NumKeys; k++ {
		if !p.allocated[k] {
			p.allocated[k] = true
			p.Clock.Advance(500) // pkey_alloc syscall
			return Key(k), nil
		}
	}
	return 0, fmt.Errorf("mpk: out of protection keys (%d domains max)", NumKeys-1)
}

// PkeyFree releases a key.
func (p *PKU) PkeyFree(k Key) {
	p.allocated[k] = false
	p.Clock.Advance(500)
}

// PkeyMprotect tags [addr, addr+length) with key k, charging page-table
// update costs like mprotect.
func (p *PKU) PkeyMprotect(costs kernel.CostModel, addr, length uint64, k Key) {
	pages := (length + kernel.OSPageSize - 1) / kernel.OSPageSize
	for i := uint64(0); i < pages; i++ {
		p.tags[(addr>>kernel.OSPageBits)+i] = k
	}
	p.Clock.Advance(costs.SyscallBase + costs.MprotectBase/4 + pages*costs.MprotectPerPage)
}

// Wrpkru switches the thread's domain permissions: deny[k] disables
// access to key k. This is the userspace transition whose cost Fig 5
// compares against hfi_enter/hfi_exit.
func (p *PKU) Wrpkru(deny [NumKeys]bool) {
	p.pkru = deny
	p.Switches++
	p.Clock.AdvanceCycles(WrpkruCycles, kernel.CoreGHz)
}

// EnterDomain is the common two-key pattern (ERIM): make the protected
// domain accessible on entry, inaccessible on exit.
func (p *PKU) EnterDomain(k Key) {
	var deny [NumKeys]bool
	p.Wrpkru(deny) // everything accessible inside the trusted section
	_ = k
}

// ExitDomain re-arms protection of key k.
func (p *PKU) ExitDomain(k Key) {
	var deny [NumKeys]bool
	deny[k] = true
	p.Wrpkru(deny)
}

// CheckAccess reports whether the current PKRU permits touching addr.
func (p *PKU) CheckAccess(addr uint64) bool {
	k, ok := p.tags[addr>>kernel.OSPageBits]
	if !ok {
		return true // untagged = key 0, accessible
	}
	return !p.pkru[k]
}

// Package hostcall is the typed, versioned host-call ABI and the
// simulated WASI-flavored resource layer behind it: the "world" guests
// talk to once they outgrow pure compute.
//
// The boundary is a designated call gate in guest code (conventionally
// the two-instruction "__hostcall" function: hostcall; ret). The
// verifier proves, per scheme, that the gate is the ONLY way out of the
// sandbox — no hostcall instruction outside it, no jump into it, and
// every direct call site carries a provably registered call number and
// provably in-heap buffer arguments (internal/verifier, rule "hostcall").
// The host side then dispatches to per-tenant registered functions with
// every marshalled byte bounds-checked against the instance's page
// tables and charged on the simulated kernel clock, mirroring how the
// paper's HFI hardware keeps host calls in-process (§4: transitions
// without a kernel round trip) while the runtime retains full mediation.
//
// ABI v1 register convention (identical to the syscall ABI so compilers
// share lowering): the call number travels in R0, arguments in R1-R5,
// and the result — or a negated kernel errno — returns in R0. Pointer
// arguments are OFFSETS into guest linear memory, never host virtual
// addresses; a pointer argument is always immediately followed by its
// byte-count argument, and the pair must stay inside the heap.
package hostcall

import "hfi/internal/verifier"

// Version is the ABI version reported by abi_version. Guests built
// against a newer ABI than the host serves must refuse to run.
const Version = 1

// Host-call numbers, ABI v1. Numbers are append-only: published numbers
// never change meaning, and holes are never reused.
const (
	NumAbiVersion     = 0  // () -> version
	NumClockMonotonic = 1  // () -> ns since instance start (simulated)
	NumClockWall      = 2  // () -> deterministic wall-clock ns
	NumRandomGet      = 3  // (ptr, len) -> 0; fills ptr with seeded bytes
	NumFdOpen         = 4  // (namePtr, nameLen, flags) -> fd
	NumFdClose        = 5  // (fd) -> 0
	NumFdRead         = 6  // (fd, ptr, cap) -> bytes read
	NumFdWrite        = 7  // (fd, ptr, len) -> bytes written
	NumKvGet          = 8  // (kPtr, kLen, vPtr, vCap) -> full value length; min(len, vCap) bytes copied
	NumKvPut          = 9  // (kPtr, kLen, vPtr, vLen) -> 0
	NumKvDelete       = 10 // (kPtr, kLen) -> 0

	// NumHostcalls bounds the dispatch table; the verifier refuses any
	// call site whose number is not provably below it.
	NumHostcalls = 11
)

// Well-known file descriptors. Stdin streams the current request body;
// stdout accumulates the response body the host returns to the client.
const (
	FdStdin  = 0
	FdStdout = 1
)

// FdOpen flags.
const (
	OpenRead   = 0x0 // existing file, read-only
	OpenCreate = 0x1 // create or truncate for writing
)

// MaxIOBytes caps a single marshalled transfer. Larger buffers must be
// chunked by the guest; the cap bounds the host-side scratch buffer so
// the marshalling fast path never allocates.
const MaxIOBytes = 64 << 10

// GateSym is the conventional symbol of the hostcall gate the compiler
// emits and the verifier polices.
const GateSym = "__hostcall"

// Sigs returns the verifier-facing signature table for ABI v1, indexed
// by call number. Pointer/length argument kinds drive the per-call-site
// marshalling proofs.
func Sigs() []verifier.HostcallSig {
	s := make([]verifier.HostcallSig, NumHostcalls)
	s[NumAbiVersion] = verifier.HostcallSig{Name: "abi_version"}
	s[NumClockMonotonic] = verifier.HostcallSig{Name: "clock_monotonic"}
	s[NumClockWall] = verifier.HostcallSig{Name: "clock_wall"}
	s[NumRandomGet] = verifier.HostcallSig{Name: "random_get",
		Args: [5]verifier.HostcallArg{verifier.HcArgPtr, verifier.HcArgLen}}
	s[NumFdOpen] = verifier.HostcallSig{Name: "fd_open",
		Args: [5]verifier.HostcallArg{verifier.HcArgPtr, verifier.HcArgLen, verifier.HcArgVal}}
	s[NumFdClose] = verifier.HostcallSig{Name: "fd_close",
		Args: [5]verifier.HostcallArg{verifier.HcArgVal}}
	s[NumFdRead] = verifier.HostcallSig{Name: "fd_read",
		Args: [5]verifier.HostcallArg{verifier.HcArgVal, verifier.HcArgPtr, verifier.HcArgLen}}
	s[NumFdWrite] = verifier.HostcallSig{Name: "fd_write",
		Args: [5]verifier.HostcallArg{verifier.HcArgVal, verifier.HcArgPtr, verifier.HcArgLen}}
	s[NumKvGet] = verifier.HostcallSig{Name: "kv_get",
		Args: [5]verifier.HostcallArg{verifier.HcArgPtr, verifier.HcArgLen, verifier.HcArgPtr, verifier.HcArgLen}}
	s[NumKvPut] = verifier.HostcallSig{Name: "kv_put",
		Args: [5]verifier.HostcallArg{verifier.HcArgPtr, verifier.HcArgLen, verifier.HcArgPtr, verifier.HcArgLen}}
	s[NumKvDelete] = verifier.HostcallSig{Name: "kv_delete",
		Args: [5]verifier.HostcallArg{verifier.HcArgPtr, verifier.HcArgLen}}
	return s
}

package verifier

import (
	"sort"

	"hfi/internal/isa"
)

// CFG is a whole-program control-flow graph over basic blocks. Indirect
// branches (jmpi/calli) get over-approximated successor sets: every
// address-taken instruction address (any movi immediate that decodes to
// an in-range, aligned instruction address, plus every symbol). The
// abstract interpreter additionally requires every indirect target to be
// a proven-exact constant INSIDE this set, so the CFG is a true
// over-approximation of concrete control flow for every admitted
// program — the soundness foundation of the dominator-based facts
// (a resolved target outside the set would let execution enter a block
// mid-way with no CFG edge witnessing it).
type CFG struct {
	P *isa.Program
	// Blocks are ordered by start index; block i covers instruction
	// indices [Blocks[i].Start, Blocks[i].End).
	Blocks []BasicBlock
	// blockOf maps a leader instruction index to its position in Blocks.
	blockOf map[int]int
}

// BasicBlock is a maximal single-entry straight-line region.
type BasicBlock struct {
	Start, End int
	// Succs holds successor block indices (into CFG.Blocks).
	Succs []int
	// Indirect marks a block ending in jmpi/calli whose successor set is
	// the over-approximated address-taken set.
	Indirect bool
}

// endsBlock reports whether the instruction terminates a basic block.
func endsBlock(op isa.Op) bool {
	switch op {
	case isa.OpBr, isa.OpJmp, isa.OpJmpInd, isa.OpCall, isa.OpCallInd, isa.OpRet, isa.OpHalt:
		return true
	}
	return false
}

// leaders computes the set of basic-block leader indices.
func leaders(p *isa.Program) []bool {
	lead := make([]bool, len(p.Instrs))
	if len(lead) == 0 {
		return lead
	}
	lead[0] = true
	mark := func(addr uint64) {
		if addr >= p.Base && addr < p.End() && (addr-p.Base)%isa.InstrBytes == 0 {
			lead[(addr-p.Base)/isa.InstrBytes] = true
		}
	}
	for _, a := range p.Symbols {
		mark(a)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case isa.OpBr, isa.OpJmp, isa.OpCall:
			mark(in.Target)
		}
		if endsBlock(in.Op) && i+1 < len(p.Instrs) {
			lead[i+1] = true
		}
	}
	// Indirect branches may land on any address-taken target.
	for _, t := range IndirectTargets(p) {
		lead[t] = true
	}
	return lead
}

// IndirectTargets over-approximates where jmpi/calli can land: every
// symbol plus every movi immediate that is a valid instruction address.
// Returned as sorted, deduplicated instruction indices.
func IndirectTargets(p *isa.Program) []int {
	set := map[int]bool{}
	add := func(addr uint64) {
		if addr >= p.Base && addr < p.End() && (addr-p.Base)%isa.InstrBytes == 0 {
			set[int((addr-p.Base)/isa.InstrBytes)] = true
		}
	}
	for _, a := range p.Symbols {
		add(a)
	}
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpMovImm {
			add(uint64(p.Instrs[i].Imm))
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// BuildCFG partitions p into basic blocks and links successor edges. The
// program must already be structurally valid (Program.Validate).
func BuildCFG(p *isa.Program) *CFG {
	lead := leaders(p)
	g := &CFG{P: p, blockOf: map[int]int{}}
	for i, isLead := range lead {
		if !isLead {
			continue
		}
		end := i + 1
		for end < len(p.Instrs) && !lead[end] && !endsBlock(p.Instrs[end-1].Op) {
			end++
		}
		g.blockOf[i] = len(g.Blocks)
		g.Blocks = append(g.Blocks, BasicBlock{Start: i, End: end})
	}
	indirect := IndirectTargets(p)
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &p.Instrs[b.End-1]
		addSucc := func(idx int) {
			if sb, ok := g.blockOf[idx]; ok {
				b.Succs = append(b.Succs, sb)
			}
		}
		switch last.Op {
		case isa.OpBr:
			addSucc(int((last.Target - p.Base) / isa.InstrBytes))
			if b.End < len(p.Instrs) {
				addSucc(b.End)
			}
		case isa.OpJmp:
			addSucc(int((last.Target - p.Base) / isa.InstrBytes))
		case isa.OpCall:
			addSucc(int((last.Target - p.Base) / isa.InstrBytes))
			if b.End < len(p.Instrs) {
				addSucc(b.End) // return continuation
			}
		case isa.OpJmpInd:
			b.Indirect = true
			for _, t := range indirect {
				addSucc(t)
			}
		case isa.OpCallInd:
			b.Indirect = true
			for _, t := range indirect {
				addSucc(t)
			}
			if b.End < len(p.Instrs) {
				addSucc(b.End)
			}
		case isa.OpRet, isa.OpHalt:
			// No static successors.
		default:
			if b.End < len(p.Instrs) {
				addSucc(b.End)
			}
		}
	}
	return g
}

// BlockAt returns the index into Blocks of the block starting at the
// given instruction index, or -1.
func (g *CFG) BlockAt(instrIndex int) int {
	if b, ok := g.blockOf[instrIndex]; ok {
		return b
	}
	return -1
}

// BlockOf returns the index into Blocks of the block containing the given
// instruction index, or -1. Blocks are sorted by Start, so this is a
// binary search.
func (g *CFG) BlockOf(instrIndex int) int {
	i := sort.Search(len(g.Blocks), func(i int) bool { return g.Blocks[i].End > instrIndex })
	if i == len(g.Blocks) || instrIndex < g.Blocks[i].Start {
		return -1
	}
	return i
}

// Preds computes the predecessor lists implied by the successor edges,
// deduplicated (an edge appearing twice — e.g. both branch arms targeting
// one block — counts once).
func (g *CFG) Preds() [][]int {
	preds := make([][]int, len(g.Blocks))
	for bi := range g.Blocks {
		for _, s := range g.Blocks[bi].Succs {
			dup := false
			for _, p := range preds[s] {
				if p == bi {
					dup = true
					break
				}
			}
			if !dup {
				preds[s] = append(preds[s], bi)
			}
		}
	}
	return preds
}

// Dominators computes the immediate-dominator tree over the block graph
// rooted at block entry, using the Cooper–Harvey–Kennedy iterative
// algorithm over a reverse postorder. idom[entry] == entry; blocks
// unreachable from entry get idom -1 (no dominance information — the fact
// pass drops any claim about them). Call edges are ordinary CFG edges
// here, so the tree is whole-program: a callee's entry block is dominated
// by every block that dominates all of its call sites.
func (g *CFG) Dominators(entry int) []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 || entry < 0 || entry >= n {
		return idom
	}
	// Reverse postorder from entry.
	post := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct{ b, next int }
	stack := []frame{{entry, 0}}
	state[entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Blocks[f.b].Succs) {
			s := g.Blocks[f.b].Succs[f.next]
			f.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.b] = 2
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, n) // block -> reverse-postorder number
	for i := range rpo {
		rpo[i] = -1
	}
	order := make([]int, 0, len(post)) // blocks in reverse postorder
	for i := len(post) - 1; i >= 0; i-- {
		rpo[post[i]] = len(order)
		order = append(order, post[i])
	}
	preds := g.Preds()
	intersect := func(a, b int) int {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under the idom tree
// returned by Dominators (every block dominates itself).
func Dominates(idom []int, a, b int) bool {
	if a < 0 || b < 0 || idom[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == b || next < 0 {
			return false // reached the root (idom[entry]==entry) or unreachable
		}
		b = next
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"hfi/internal/host"
	"hfi/internal/httpfront"
)

// ShardEnv is the environment variable that turns any HFI binary into a
// shard: when set, main (or TestMain) must hand control to ShardMain
// before parsing flags. The value is a JSON ShardSpec. This is how the
// router spawns real hfihttpd backends without needing a prebuilt binary
// on disk — it re-execs its own executable (or the test binary re-execs
// itself) with the spec in the environment.
const ShardEnv = "HFI_SHARD_CONFIG"

// ShardSpec configures one shard subprocess: identity, the rendezvous
// file for the port handshake, and the host knobs the shard serves with.
type ShardSpec struct {
	Name string `json:"name"`
	// AddrFile is where the shard writes its bound loopback address
	// (atomically: tmp + rename) once listening — the parent polls it.
	AddrFile string `json:"addr_file"`

	Workers        int    `json:"workers"`
	QueueDepth     int    `json:"queue_depth"`
	Policy         string `json:"policy"` // "shed" (default) | "block"
	Fuel           uint64 `json:"fuel"`
	FuelPerSecond  uint64 `json:"fuel_per_second"`
	DispatchWallUs int64  `json:"dispatch_wall_us"`

	// BreakerWindow > 0 enables per-tenant circuit breakers — the
	// degradation signal hedged retries key on.
	BreakerWindow     int `json:"breaker_window"`
	BreakerMinSamples int `json:"breaker_min_samples"`

	Seed      int64 `json:"seed"`
	WorldSeed int64 `json:"world_seed"`
}

// hostConfig translates the spec into the shard's host.Config.
func (sp ShardSpec) hostConfig() host.Config {
	pol := host.PolicyShed
	if sp.Policy == "block" {
		pol = host.PolicyBlock
	}
	return host.Config{
		Workers: sp.Workers, QueueDepth: sp.QueueDepth, Policy: pol,
		Fuel: sp.Fuel, FuelPerSecond: sp.FuelPerSecond,
		DispatchWall: time.Duration(sp.DispatchWallUs) * time.Microsecond,
		Retry:        host.RetryConfig{Max: 2},
		Breaker:      host.BreakerConfig{Window: sp.BreakerWindow, MinSamples: sp.BreakerMinSamples},
		Seed:         sp.Seed,
	}
}

// IsShardProc reports whether this process was spawned as a shard.
func IsShardProc() bool { return os.Getenv(ShardEnv) != "" }

// ShardMain runs the shard role to completion and returns the process
// exit code. It binds a fresh loopback port, publishes it through
// AddrFile, serves the default tenant registry, and drains when its
// parent goes away (stdin EOF — the pipe the parent holds open for the
// shard's lifetime), finishing queued and in-flight work with real
// outcomes before exiting.
func ShardMain() int {
	var spec ShardSpec
	if err := json.Unmarshal([]byte(os.Getenv(ShardEnv)), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "shard: bad %s: %v\n", ShardEnv, err)
		return 2
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "shard:", err)
		return 1
	}
	front := httpfront.New(host.New(spec.hostConfig()), httpfront.DefaultRegistry(spec.WorldSeed))
	front.Shard = spec.Name
	hs := &http.Server{Handler: front.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	if err := publishAddr(spec.AddrFile, ln.Addr().String()); err != nil {
		fmt.Fprintln(os.Stderr, "shard:", err)
		return 1
	}

	// Parent-death watch: the spawner keeps our stdin pipe open; EOF
	// means it exited (cleanly or not) and nobody routes to us anymore.
	gone := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin)
		close(gone)
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "shard:", err)
		return 1
	case <-gone:
	}
	front.BeginDrain()
	front.Host().Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	return 0
}

func publishAddr(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ShardProc is one spawned shard subprocess.
type ShardProc struct {
	Spec ShardSpec
	Addr string // bound loopback address, from the AddrFile handshake

	cmd    *exec.Cmd
	stdin  io.WriteCloser
	dir    string        // holds the addr file
	exited chan struct{} // closed once the process is reaped
}

// Spawn launches bin as a shard with spec (AddrFile is filled in),
// completes the port handshake, and returns once the shard is listening.
// bin is typically os.Executable() — any HFI binary that checks
// IsShardProc first will do.
func Spawn(bin string, spec ShardSpec) (*ShardProc, error) {
	dir, err := os.MkdirTemp("", "hfi-shard-"+spec.Name+"-")
	if err != nil {
		return nil, err
	}
	spec.AddrFile = filepath.Join(dir, "addr")
	raw, err := json.Marshal(spec)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(), ShardEnv+"="+string(raw))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("spawn shard %s: %w", spec.Name, err)
	}
	p := &ShardProc{Spec: spec, cmd: cmd, stdin: stdin, dir: dir, exited: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(p.exited)
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(spec.AddrFile); err == nil && len(raw) > 0 {
			p.Addr = string(raw)
			return p, nil
		}
		select {
		case <-p.exited:
			os.RemoveAll(dir)
			return nil, fmt.Errorf("shard %s exited during handshake", spec.Name)
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			<-p.exited
			os.RemoveAll(dir)
			return nil, fmt.Errorf("shard %s: handshake timeout", spec.Name)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Kill SIGKILLs the shard (the chaos shard-kill class) and reaps it.
func (p *ShardProc) Kill() {
	p.cmd.Process.Kill()
	<-p.exited
	p.cleanup()
}

// Stop closes the parent-death pipe (triggering the shard's drain path),
// waits briefly for a clean exit, and kills on timeout.
func (p *ShardProc) Stop() {
	p.stdin.Close()
	select {
	case <-p.exited:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-p.exited
	}
	p.cleanup()
}

func (p *ShardProc) cleanup() {
	if p.dir != "" {
		os.RemoveAll(p.dir)
		p.dir = ""
	}
}

package sandbox

import (
	"fmt"
	"strings"
	"sync"

	"hfi/internal/cpu"
	"hfi/internal/sfi"
	"hfi/internal/tier"
	"hfi/internal/wasm"
)

// CodeCache shares compiled, verified code images across runtimes. A FaaS
// host provisions the same tenant module many times — once per pooled
// instance per worker — and every provision repeats two compilations: a
// throwaway layout probe to learn the code size, then the real compile
// against the instance's addresses. Both are deterministic functions of
// their inputs, and a fresh Runtime allocates identical layouts for
// identical (module, scheme, options), so provisions after the first can
// reuse the first's work.
//
// Sharing is sound because a Compiled image is immutable once built: the
// engines only read Program.Instrs, and instance state (heap, globals,
// region tables) lives in per-machine memory, never in the image. The real
// compile runs the static safety verifier before the image enters the
// cache, so every runtime that shares it shares a *verified* image keyed by
// the exact layout it was verified against; a runtime whose allocator
// produced different addresses misses and compiles (and verifies) its own.
//
// CodeCache is safe for concurrent use. The lock is held across compiles so
// a key is compiled at most once no matter how many workers race to
// provision the same tenant.
type CodeCache struct {
	mu     sync.Mutex
	sizes  map[sizeKey]uint64
	images map[imageKey]*wasm.Compiled

	// lowerings caches the tiered engine's per-image lowering next to the
	// image it was derived from, keyed by image identity: the lowering is
	// a pure function of (Prog, Facts, cost model), all frozen at compile
	// time, so one lowering per module × scheme × geometry is shared
	// across every worker — the same argument as image sharing, and the
	// same immutability contract (all mutable tier state lives in the
	// per-instance Engine).
	lowerings            map[*wasm.Compiled]*tier.Lowered
	lowHits, lowMisses   uint64

	hits, misses uint64
}

// sizeKey identifies a layout probe: code size depends on the module, the
// scheme, and the compile options, but not on the layout addresses.
type sizeKey struct {
	mod    *wasm.Module
	scheme sfi.Scheme
	opts   wasm.Options
}

// imageKey identifies a full compilation: the probe inputs plus the layout
// geometry the immediates were linked against. Layout holds a slice
// (ExtraMemBases) so it cannot be a map key directly; lay is its rendered
// fingerprint.
type imageKey struct {
	sizeKey
	lay string
}

func layoutFingerprint(lay wasm.Layout) string {
	var b strings.Builder
	fmt.Fprintf(&b, "c%x h%x s%x+%x g%x", lay.CodeBase, lay.HeapBase, lay.StackBase, lay.StackSize, lay.GlobalBase)
	for _, base := range lay.ExtraMemBases {
		fmt.Fprintf(&b, " e%x", base)
	}
	return b.String()
}

// normalizeOpts canonicalizes options for keying: NoVerify changes what
// work is done, not what code is produced, so probe and real compiles of
// the same module share probe results.
func normalizeOpts(opts wasm.Options) wasm.Options {
	opts.NoVerify = false
	return opts
}

// NewCodeCache returns an empty cache.
func NewCodeCache() *CodeCache {
	return &CodeCache{
		sizes:     make(map[sizeKey]uint64),
		images:    make(map[imageKey]*wasm.Compiled),
		lowerings: make(map[*wasm.Compiled]*tier.Lowered),
	}
}

// probeSize returns the code size (in bytes, excluding springboard slots)
// of mod compiled under scheme/opts, running the throwaway layout probe on
// the first request for a key and answering later ones from the cache.
func (cc *CodeCache) probeSize(mod *wasm.Module, scheme sfi.Scheme, opts wasm.Options) (uint64, error) {
	k := sizeKey{mod: mod, scheme: scheme, opts: normalizeOpts(opts)}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if size, ok := cc.sizes[k]; ok {
		return size, nil
	}
	popts := opts
	popts.NoVerify = true
	probe, err := wasm.Compile(mod, scheme, probeLayout, popts)
	if err != nil {
		return 0, err
	}
	cc.sizes[k] = probe.Prog.Size()
	return probe.Prog.Size(), nil
}

// compile returns the verified image for (mod, scheme, lay, opts), sharing
// one compilation across every caller with the same key.
func (cc *CodeCache) compile(mod *wasm.Module, scheme sfi.Scheme, lay wasm.Layout, opts wasm.Options) (*wasm.Compiled, error) {
	k := imageKey{
		sizeKey: sizeKey{mod: mod, scheme: scheme, opts: normalizeOpts(opts)},
		lay:     layoutFingerprint(lay),
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.images[k]; ok {
		cc.hits++
		return c, nil
	}
	cc.misses++
	c, err := wasm.Compile(mod, scheme, lay, opts)
	if err != nil {
		return nil, err
	}
	cc.images[k] = c
	return c, nil
}

// Lowering returns the tiered-engine lowering for a cached image, building
// it on first request. The lock is held across the lowering so it is built
// at most once per image no matter how many workers race. A nil result
// (image carries no facts) is cached too.
func (cc *CodeCache) Lowering(c *wasm.Compiled) *tier.Lowered {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if low, ok := cc.lowerings[c]; ok {
		cc.lowHits++
		return low
	}
	cc.lowMisses++
	low := tier.Lower(c.Prog, c.Facts, cpu.DefaultCostModel())
	cc.lowerings[c] = low
	return low
}

// Evict drops every cache entry derived from mod — probe sizes, images,
// and the lowerings keyed by those images. Lowerings must leave with their
// image: a later re-compile produces a new *wasm.Compiled, and an orphaned
// lowering entry would pin the old image (and its facts) forever.
func (cc *CodeCache) Evict(mod *wasm.Module) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for k := range cc.sizes {
		if k.mod == mod {
			delete(cc.sizes, k)
		}
	}
	for k, c := range cc.images {
		if k.mod == mod {
			delete(cc.images, k)
			delete(cc.lowerings, c)
		}
	}
}

// Entries reports the live image- and lowering-cache entry counts.
func (cc *CodeCache) Entries() (images, lowerings int) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.images), len(cc.lowerings)
}

// Stats reports image-cache hits and misses (probe lookups excluded).
func (cc *CodeCache) Stats() (hits, misses uint64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses
}

// LoweringStats reports lowering-cache hits and misses.
func (cc *CodeCache) LoweringStats() (hits, misses uint64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.lowHits, cc.lowMisses
}

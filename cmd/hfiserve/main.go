// Command hfiserve drives the concurrent multi-tenant serving layer
// (internal/host) with synthetic load and prints a throughput-vs-workers
// scaling table: requests per second, latency percentiles, shed rate, and
// speedup over a single worker.
//
// Usage:
//
//	hfiserve                           # closed-loop sweep over 1,2,4,... workers
//	hfiserve -mode open -rate 2000     # Poisson-ish open loop at 2000 req/s
//	hfiserve -policy shed -queue 8     # shed instead of blocking when full
//	hfiserve -fuel 200000              # per-request instruction budget
//	hfiserve -verify                   # also check checksums vs single-threaded
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hfi/internal/host"
	"hfi/internal/stats"
)

func main() {
	var (
		requests = flag.Int("requests", 400, "requests per worker-count run")
		workers  = flag.String("workers", "1,2,4", "comma-separated worker counts (GOMAXPROCS is always included)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
		policy   = flag.String("policy", "block", "backpressure policy: block | shed")
		fuel     = flag.Uint64("fuel", 0, "per-request instruction budget (0 = unlimited)")
		mode     = flag.String("mode", "closed", "load generator: closed | open")
		clients  = flag.Int("clients", 0, "closed-loop clients (0 = 2x workers)")
		rate     = flag.Float64("rate", 800, "open-loop arrival rate, req/s")
		dispatch = flag.Duration("dispatch", 2*time.Millisecond, "wall-clock per-request dispatch overhead")
		seed     = flag.Int64("seed", 1, "load schedule seed")
		verify   = flag.Bool("verify", false, "verify checksums against a single-threaded reference run")
	)
	flag.Parse()

	var pol host.Policy
	switch *policy {
	case "block":
		pol = host.PolicyBlock
	case "shed":
		pol = host.PolicyShed
	default:
		fmt.Fprintf(os.Stderr, "hfiserve: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	counts, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfiserve:", err)
		os.Exit(2)
	}

	mix := host.DefaultMix()
	// Checksum comparison needs every request to execute exactly once:
	// shedding drops requests and fuel starvation turns them into timeouts,
	// so verification only makes sense under PolicyBlock with unlimited fuel.
	verifiable := *verify && pol == host.PolicyBlock && *fuel == 0
	if *verify && !verifiable {
		fmt.Fprintln(os.Stderr, "hfiserve: -verify requires -policy block and -fuel 0 (requests must not shed or time out)")
		os.Exit(2)
	}
	var ref uint64
	if verifiable {
		if ref, err = host.ReferenceChecksum(mix, *requests, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve:", err)
			os.Exit(1)
		}
	}

	tb := &stats.Table{
		Title:   fmt.Sprintf("throughput vs workers (%s loop, %d requests, policy %s)", *mode, *requests, pol),
		Columns: []string{"workers", "req/s", "p50", "p99", "p99.9", "shed%", "timeouts", "speedup"},
	}
	var base float64
	for _, w := range counts {
		s := host.New(host.Config{
			Workers: w, QueueDepth: *queue, Policy: pol,
			Fuel: *fuel, DispatchWall: *dispatch,
		})
		var res host.LoadResult
		if *mode == "open" {
			res = host.RunOpenLoop(s, mix, *rate, *requests, *seed)
		} else {
			nc := *clients
			if nc <= 0 {
				nc = 2 * w
			}
			res = host.RunClosedLoop(s, mix, nc, *requests, *seed)
		}
		s.Close()

		sum := res.Summary
		if base == 0 {
			base = sum.ThroughputRPS
		}
		tb.AddRow(
			strconv.Itoa(w),
			fmt.Sprintf("%.0f", sum.ThroughputRPS),
			stats.Ns(sum.P50Ns), stats.Ns(sum.P99Ns), stats.Ns(sum.P999Ns),
			fmt.Sprintf("%.1f", sum.ShedRate*100),
			strconv.FormatUint(sum.Timeouts, 10),
			fmt.Sprintf("%.2fx", sum.ThroughputRPS/base),
		)
		if verifiable {
			if res.Checksum != ref {
				fmt.Fprintf(os.Stderr, "hfiserve: %d workers: checksum %#x != single-threaded reference %#x\n", w, res.Checksum, ref)
				os.Exit(1)
			}
		}
	}
	tb.AddNote("GOMAXPROCS=%d; dispatch overhead %v wall per request", runtime.GOMAXPROCS(0), *dispatch)
	if verifiable {
		tb.AddNote("checksums verified against single-threaded reference (%#x)", ref)
	}
	fmt.Println(tb)
}

// parseWorkers parses the -workers list, appends GOMAXPROCS, and
// deduplicates in ascending order.
func parseWorkers(list string) ([]int, error) {
	seen := map[int]bool{runtime.GOMAXPROCS(0): true}
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		seen[n] = true
	}
	counts := make([]int, 0, len(seen))
	for n := range seen {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts, nil
}

package kernel

import (
	"fmt"
	"sort"

	"hfi/internal/mem"
)

// Prot is a page-protection bit set.
type Prot uint8

// Protection bits. ProtNone (zero) reserves address space without granting
// any access — the foundation of Wasm's guard regions.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtExec  Prot = 1 << 2
)

func (p Prot) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&ProtRead != 0 {
		s[0] = 'r'
	}
	if p&ProtWrite != 0 {
		s[1] = 'w'
	}
	if p&ProtExec != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// OS page geometry (4 KiB pages) and the user virtual address space limit
// (47 bits = 128 TiB, the typical x86-64 configuration the paper's scaling
// argument in §2 is built on).
const (
	OSPageBits = 12
	OSPageSize = 1 << OSPageBits
	VALimit    = uint64(1) << 47
)

// vma is one contiguous mapping with uniform protection.
type vma struct {
	start  uint64
	length uint64
	prot   Prot
}

func (v vma) end() uint64 { return v.start + v.length }

// AddressSpace is a simulated process address space: a sorted list of VMAs
// over a sparse backing Memory, with reserve/commit accounting. It provides
// the MMU permission checks the execution engines apply to every access
// (unless a TLB entry caches the result) and the mmap-family operations the
// sandbox runtimes use.
type AddressSpace struct {
	Mem  *mem.Memory
	vmas []vma // sorted by start, non-overlapping

	// mmapTop is the next address for top-down allocation.
	mmapTop uint64

	// reservedBytes tracks total reserved address space for the
	// virtual-memory-consumption experiments (§6.3.2).
	reservedBytes uint64

	// lastHit caches the index of the most recently matched VMA: guest
	// memory accesses are heavily local, and this keeps the per-access
	// check cheap.
	lastHit int

	// gen counts mapping mutations (map, mprotect, munmap). Access-decision
	// caches above the MMU (the interpreter's data-translation cache) tag
	// entries with it and flush on any mismatch, so a protection change can
	// never leave a stale permission decision live.
	gen uint64
}

// Gen returns the mapping-mutation generation. It changes whenever a VMA is
// added, removed, or reprotected; it does not change on madvise discards,
// which keep mappings and protections.
func (as *AddressSpace) Gen() uint64 { return as.gen }

// AuditTag reports whether a cached mapping-generation tag could
// legitimately have been issued by this address space. Tags are copies of
// Gen taken at cache-fill time, so a tag from the future (tag > Gen) is
// impossible in a correct system — it is the signature a suppressed
// invalidation leaves when cached mapping decisions claim freshness the
// MMU never granted. The substrate cross-audits (cpu.Machine.AuditCacheGens,
// tier.Engine.AuditGate) use it to turn such state into a typed fault
// instead of a silent wrong answer.
func (as *AddressSpace) AuditTag(tag uint64) bool { return tag <= as.gen }

// NewAddressSpace returns an empty address space over fresh memory. The
// top page of the user address space is left unallocated: the execution
// engines use it as the host-return sentinel.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{Mem: mem.NewMemory(), mmapTop: VALimit - OSPageSize}
}

// pageAlign rounds length up to a whole number of pages.
func pageAlign(length uint64) uint64 {
	return (length + OSPageSize - 1) &^ uint64(OSPageSize-1)
}

// find returns the index of the VMA containing addr, or -1.
func (as *AddressSpace) find(addr uint64) int {
	if as.lastHit < len(as.vmas) {
		v := as.vmas[as.lastHit]
		if addr >= v.start && addr < v.end() {
			return as.lastHit
		}
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end() > addr })
	if i < len(as.vmas) && as.vmas[i].start <= addr {
		as.lastHit = i
		return i
	}
	return -1
}

// Prot returns the protection at addr and whether addr is mapped.
func (as *AddressSpace) Prot(addr uint64) (Prot, bool) {
	i := as.find(addr)
	if i < 0 {
		return ProtNone, false
	}
	return as.vmas[i].prot, true
}

// CheckAccess reports whether an access of size bytes at addr is permitted
// by page protections. An access spanning a protection change fails if any
// byte lacks permission.
func (as *AddressSpace) CheckAccess(addr uint64, size uint8, want Prot) bool {
	i := as.find(addr)
	if i < 0 {
		return false
	}
	v := as.vmas[i]
	if v.prot&want != want {
		return false
	}
	if addr+uint64(size) <= v.end() {
		return true
	}
	// Straddles into the next VMA (or unmapped space).
	return as.CheckAccess(v.end(), uint8(addr+uint64(size)-v.end()), want)
}

// CheckRange is CheckAccess over an arbitrary-length range: it reports
// whether every byte of [addr, addr+length) is mapped with the wanted
// protection. The hostcall marshaller validates whole guest buffers with
// it before copying.
func (as *AddressSpace) CheckRange(addr, length uint64, want Prot) bool {
	if length == 0 {
		return true
	}
	if addr+length < addr {
		return false
	}
	for {
		i := as.find(addr)
		if i < 0 {
			return false
		}
		v := as.vmas[i]
		if v.prot&want != want {
			return false
		}
		n := v.end() - addr
		if n >= length {
			return true
		}
		addr += n
		length -= n
	}
}

// insert adds a VMA, keeping the list sorted. Caller guarantees no overlap.
func (as *AddressSpace) insert(v vma) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].start > v.start })
	as.vmas = append(as.vmas, vma{})
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
	as.lastHit = 0
	as.gen++
}

// overlaps reports whether [start, start+length) intersects any VMA.
func (as *AddressSpace) overlaps(start, length uint64) bool {
	end := start + length
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end() > start })
	return i < len(as.vmas) && as.vmas[i].start < end
}

// Map reserves length bytes (page aligned up) at a kernel-chosen address
// with the given protection. It fails when the virtual address space is
// exhausted — the condition the scaling experiment (§6.3.2) measures.
func (as *AddressSpace) Map(length uint64, prot Prot) (uint64, error) {
	length = pageAlign(length)
	if length == 0 {
		return 0, fmt.Errorf("kernel: zero-length mmap")
	}
	// Top-down first-fit below mmapTop, skipping existing mappings.
	addr := as.mmapTop
	for {
		if addr < length || addr-length < OSPageSize {
			return 0, fmt.Errorf("kernel: out of virtual address space (reserved %d GiB)", as.reservedBytes>>30)
		}
		cand := addr - length
		if !as.overlaps(cand, length) {
			as.insert(vma{start: cand, length: length, prot: prot})
			as.reservedBytes += length
			as.mmapTop = cand
			return cand, nil
		}
		// Jump below the overlapping VMA.
		i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end() > cand })
		addr = as.vmas[i].start
	}
}

// MapAligned is Map with an alignment requirement on the returned base
// (e.g. 64 KiB heaps, power-of-two code blocks for HFI implicit regions).
func (as *AddressSpace) MapAligned(length, align uint64, prot Prot) (uint64, error) {
	length = pageAlign(length)
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("kernel: alignment %#x not a power of two", align)
	}
	if align < OSPageSize {
		align = OSPageSize
	}
	addr := as.mmapTop
	for {
		if addr < length {
			return 0, fmt.Errorf("kernel: out of virtual address space (reserved %d GiB)", as.reservedBytes>>30)
		}
		cand := (addr - length) &^ (align - 1)
		if cand < OSPageSize {
			return 0, fmt.Errorf("kernel: out of virtual address space (reserved %d GiB)", as.reservedBytes>>30)
		}
		if !as.overlaps(cand, length) {
			as.insert(vma{start: cand, length: length, prot: prot})
			as.reservedBytes += length
			if cand < as.mmapTop {
				as.mmapTop = cand
			}
			return cand, nil
		}
		i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end() > cand })
		addr = as.vmas[i].start
	}
}

// MapFixed reserves [addr, addr+length) exactly; it fails if any part is
// already mapped or out of range.
func (as *AddressSpace) MapFixed(addr, length uint64, prot Prot) error {
	length = pageAlign(length)
	if addr%OSPageSize != 0 {
		return fmt.Errorf("kernel: unaligned MapFixed addr %#x", addr)
	}
	if length == 0 || addr+length > VALimit {
		return fmt.Errorf("kernel: MapFixed [%#x,+%#x) out of range", addr, length)
	}
	if as.overlaps(addr, length) {
		return fmt.Errorf("kernel: MapFixed [%#x,+%#x) overlaps existing mapping", addr, length)
	}
	as.insert(vma{start: addr, length: length, prot: prot})
	as.reservedBytes += length
	return nil
}

// carve splits VMAs so that [start, end) is covered by VMAs that begin and
// end exactly at start/end, returning the index range [i, j) of the covered
// VMAs. It fails if any byte of the range is unmapped.
func (as *AddressSpace) carve(start, end uint64) (int, int, error) {
	if start%OSPageSize != 0 {
		return 0, 0, fmt.Errorf("kernel: unaligned range start %#x", start)
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end() > start })
	if i == len(as.vmas) || as.vmas[i].start > start {
		return 0, 0, fmt.Errorf("kernel: range [%#x,%#x) not fully mapped", start, end)
	}
	// Split head.
	if as.vmas[i].start < start {
		head := as.vmas[i]
		as.vmas[i].length = start - head.start
		as.insert(vma{start: start, length: head.end() - start, prot: head.prot})
		i++
	}
	j := i
	for j < len(as.vmas) && as.vmas[j].start < end {
		if j > i && as.vmas[j].start != as.vmas[j-1].end() {
			return 0, 0, fmt.Errorf("kernel: hole in range [%#x,%#x)", start, end)
		}
		j++
	}
	if j == i || as.vmas[j-1].end() < end {
		return 0, 0, fmt.Errorf("kernel: range [%#x,%#x) not fully mapped", start, end)
	}
	// Split tail.
	if as.vmas[j-1].end() > end {
		tail := as.vmas[j-1]
		as.vmas[j-1].length = end - tail.start
		as.insert(vma{start: end, length: tail.end() - end, prot: tail.prot})
	}
	as.lastHit = 0
	return i, j, nil
}

// Protect changes the protection of [addr, addr+length). Returns the
// number of pages affected (the cost driver) or an error if the range is
// not fully mapped.
func (as *AddressSpace) Protect(addr, length uint64, prot Prot) (pages uint64, err error) {
	length = pageAlign(length)
	i, j, err := as.carve(addr, addr+length)
	if err != nil {
		return 0, err
	}
	for k := i; k < j; k++ {
		as.vmas[k].prot = prot
	}
	as.coalesce()
	as.gen++
	return length / OSPageSize, nil
}

// Unmap removes [addr, addr+length) from the address space and releases
// backing storage.
func (as *AddressSpace) Unmap(addr, length uint64) (pages uint64, err error) {
	length = pageAlign(length)
	i, j, err := as.carve(addr, addr+length)
	if err != nil {
		return 0, err
	}
	as.vmas = append(as.vmas[:i], as.vmas[j:]...)
	as.reservedBytes -= length
	as.Mem.Zero(addr, length)
	as.lastHit = 0
	as.gen++
	return length / OSPageSize, nil
}

// Discard implements madvise(MADV_DONTNEED): backing pages in the range are
// released and replaced with demand-zero pages; the mapping and protections
// stay. Returns the number of resident pages actually discarded.
func (as *AddressSpace) Discard(addr, length uint64) (residentPages uint64) {
	length = pageAlign(length)
	resident := as.ResidentIn(addr, length)
	as.Mem.Zero(addr, length)
	return resident / OSPageSize
}

// ResidentIn returns the number of bytes of backing storage currently
// allocated in [addr, addr+length).
func (as *AddressSpace) ResidentIn(addr, length uint64) uint64 {
	return as.Mem.ResidentIn(addr&^uint64(mem.PageSize-1), length+addr%mem.PageSize)
}

// coalesce merges adjacent VMAs with identical protection.
func (as *AddressSpace) coalesce() {
	out := as.vmas[:0]
	for _, v := range as.vmas {
		if n := len(out); n > 0 && out[n-1].end() == v.start && out[n-1].prot == v.prot {
			out[n-1].length += v.length
			continue
		}
		out = append(out, v)
	}
	as.vmas = out
	as.lastHit = 0
}

// ProtNoneBytesIn returns how many bytes of [addr, addr+length) are
// covered by PROT_NONE reservations (guard regions), walking only the
// VMAs that intersect the range.
func (as *AddressSpace) ProtNoneBytesIn(addr, length uint64) uint64 {
	end := addr + length
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end() > addr })
	var n uint64
	for ; i < len(as.vmas) && as.vmas[i].start < end; i++ {
		v := as.vmas[i]
		if v.prot != ProtNone {
			continue
		}
		lo, hi := v.start, v.end()
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		n += hi - lo
	}
	return n
}

// ReservedBytes returns the total reserved virtual address space.
func (as *AddressSpace) ReservedBytes() uint64 { return as.reservedBytes }

// VMACount returns the number of distinct mappings (kernel VMA pressure).
func (as *AddressSpace) VMACount() int { return len(as.vmas) }

// Command hfiserve drives the concurrent multi-tenant serving layer
// (internal/host) with synthetic load and prints a throughput-vs-workers
// scaling table: requests per second, latency percentiles, shed rate, and
// speedup over a single worker.
//
// Usage:
//
//	hfiserve                           # closed-loop sweep over 1,2,4,... workers
//	hfiserve -mode open -rate 2000     # Poisson-ish open loop at 2000 req/s
//	hfiserve -mode sweep -policy shed  # open-loop rate sweep: the p99 hockey stick
//	hfiserve -mode sweep -rates 200,400,800,1600 -requests 300 -json
//	hfiserve -mode sweep -check scripts/loadtest_baseline.json
//	                                   # fail (exit 1) on p99 regression vs baseline
//	hfiserve -policy shed -queue 8     # shed instead of blocking when full
//	hfiserve -fuel 200000              # per-request instruction budget
//	hfiserve -verify                   # also check checksums vs single-threaded
//	hfiserve -chaos -seed 7            # deterministic fault injection (internal/chaos)
//	hfiserve -chaos -chaos-classes bitflip,tlbstale
//	                                   # restrict injection to a subset of fault classes
//	hfiserve -tenant-weights templated-html=4,xml-to-json=1
//	                                   # per-tenant DRR weights
//	hfiserve -chaos -json              # machine-readable report (echoes the seed,
//	                                   # the enabled classes, and the per-class
//	                                   # fault breakdown per run and in aggregate)
//
// With -chaos the run exercises the robustness machinery: provisioning
// retries, per-tenant circuit breakers, instance quarantine with verified
// reset, and bounded warm pools; the per-tenant outcome breakdown is
// printed after the scaling table. The same -seed always injects the same
// fault schedule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/host"
	"hfi/internal/stats"
)

// runReport is one worker-count run in the -json output.
type runReport struct {
	Workers  int                   `json:"workers"`
	Summary  stats.ServeSummary    `json:"summary"`
	Tenants  []stats.TenantSummary `json:"tenants"`
	Counters host.Counters         `json:"counters"`
	Chaos    *chaos.Summary        `json:"chaos,omitempty"`
	Elapsed  float64               `json:"elapsed_s"`
}

// report is the full -json document. Seed is echoed so a saved report can
// always be reproduced: the same seed yields the same load schedule and,
// under -chaos, the same fault schedule.
type report struct {
	Seed   int64  `json:"seed"`
	Mode   string `json:"mode"`
	Policy string `json:"policy"`
	Chaos  bool   `json:"chaos"`
	// ChaosClasses echoes which fault classes were enabled (all of them
	// for a bare -chaos; the -chaos-classes subset otherwise), so a saved
	// report records the full injection setup, not just the seed.
	ChaosClasses []string `json:"chaos_classes,omitempty"`
	// ChaosTotal aggregates the per-run per-class fault breakdowns across
	// every worker count in the report.
	ChaosTotal *chaos.Summary `json:"chaos_total,omitempty"`
	Runs       []runReport    `json:"runs,omitempty"`
	Sweeps     []sweepRun     `json:"sweeps,omitempty"`
}

// sweepRun is one worker count's open-loop rate sweep — the hockey-stick
// curve at that capacity.
type sweepRun struct {
	Workers int               `json:"workers"`
	Points  []host.SweepPoint `json:"points"`
}

func main() {
	var (
		requests = flag.Int("requests", 400, "requests per worker-count run")
		workers  = flag.String("workers", "1,2,4", "comma-separated worker counts (GOMAXPROCS is always included)")
		queue    = flag.Int("queue", 0, "admission queue depth per tenant (0 = 2x workers)")
		policy   = flag.String("policy", "block", "backpressure policy: block | shed")
		fuel     = flag.Uint64("fuel", 0, "per-request instruction budget (0 = unlimited)")
		mode     = flag.String("mode", "closed", "load generator: closed | open")
		clients  = flag.Int("clients", 0, "closed-loop clients (0 = 2x workers)")
		rate     = flag.Float64("rate", 800, "open-loop arrival rate, req/s")
		dispatch = flag.Duration("dispatch", 2*time.Millisecond, "wall-clock per-request dispatch overhead")
		seed     = flag.Int64("seed", 1, "load (and chaos) schedule seed")
		verify   = flag.Bool("verify", false, "verify checksums against a single-threaded reference run")
		chaosOn  = flag.Bool("chaos", false, "inject deterministic faults (seeded by -seed)")
		chaosSel = flag.String("chaos-classes", "", "comma-separated fault classes to enable with -chaos (default: all; see internal/chaos)")
		weights  = flag.String("tenant-weights", "", "per-tenant DRR weights, e.g. templated-html=4,xml-to-json=1")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report (includes the seed)")
		poolCap  = flag.Int("pool", 0, "warm-instance pool cap per worker (0 = unbounded)")
		breakWin = flag.Int("breaker-window", 0, "circuit-breaker outcome window per tenant (0 = disabled)")
		rates    = flag.String("rates", "200,400,800,1200,1600,2400,3200", "offered rates for -mode sweep, req/s")
		check    = flag.String("check", "", "baseline JSON (a prior -mode sweep -json) to gate p99 against")
		tol      = flag.Float64("tolerance", 4.0, "p99 regression multiplier allowed vs -check baseline")
	)
	flag.Parse()

	var pol host.Policy
	switch *policy {
	case "block":
		pol = host.PolicyBlock
	case "shed":
		pol = host.PolicyShed
	default:
		fmt.Fprintf(os.Stderr, "hfiserve: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	counts, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfiserve:", err)
		os.Exit(2)
	}
	tenants, err := parseTenantWeights(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfiserve:", err)
		os.Exit(2)
	}

	// Resolve the chaos class selection up front: a bare -chaos enables
	// every class; -chaos-classes restricts injection to the named subset
	// (detection stays armed either way — audits are always on).
	chaosCfg := chaos.DefaultConfig(*seed)
	chaosClasses := chaos.Classes()
	if *chaosSel != "" {
		if !*chaosOn {
			fmt.Fprintln(os.Stderr, "hfiserve: -chaos-classes requires -chaos")
			os.Exit(2)
		}
		keep, err := chaos.ParseClasses(*chaosSel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve:", err)
			os.Exit(2)
		}
		chaosCfg = chaosCfg.Restrict(keep)
		chaosClasses = keep
	}

	mix := host.DefaultMix()

	if *mode == "sweep" {
		rateList, err := parseRates(*rates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve:", err)
			os.Exit(2)
		}
		os.Exit(runSweep(sweepOpts{
			counts: counts, mix: mix, pol: pol, queue: *queue, fuel: *fuel,
			dispatch: *dispatch, tenants: tenants, rates: rateList,
			perRate: *requests, seed: *seed, jsonOut: *jsonOut,
			checkPath: *check, tol: *tol,
		}))
	}

	// Checksum comparison needs every request to execute exactly once:
	// shedding drops requests, fuel starvation turns them into timeouts, and
	// chaos faults some on purpose, so verification only makes sense under
	// PolicyBlock with unlimited fuel and no injection.
	verifiable := *verify && pol == host.PolicyBlock && *fuel == 0 && !*chaosOn
	if *verify && !verifiable {
		fmt.Fprintln(os.Stderr, "hfiserve: -verify requires -policy block, -fuel 0, and no -chaos (requests must not shed, time out, or fault)")
		os.Exit(2)
	}
	var ref uint64
	if verifiable {
		if ref, err = host.ReferenceChecksum(mix, *requests, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve:", err)
			os.Exit(1)
		}
	}

	tb := &stats.Table{
		Title:   fmt.Sprintf("throughput vs workers (%s loop, %d requests, policy %s)", *mode, *requests, pol),
		Columns: []string{"workers", "req/s", "p50", "p99", "p99.9", "shed%", "timeouts", "faults", "speedup"},
	}
	rep := report{Seed: *seed, Mode: *mode, Policy: pol.String(), Chaos: *chaosOn}
	if *chaosOn {
		for _, c := range chaosClasses {
			rep.ChaosClasses = append(rep.ChaosClasses, c.String())
		}
		rep.ChaosTotal = &chaos.Summary{}
	}
	var base float64
	var lastTenants []stats.TenantSummary
	for _, w := range counts {
		var inj *chaos.Injector
		if *chaosOn {
			// A fresh injector per run so the per-run fault summary is
			// attributable; decisions depend only on (seed, tenant, seq), so
			// every run still sees the same fault schedule.
			inj = chaos.New(chaosCfg)
		}
		s := host.New(host.Config{
			Workers: w, QueueDepth: *queue, Policy: pol,
			Fuel: *fuel, DispatchWall: *dispatch,
			Tenants: tenants,
			Retry:   host.RetryConfig{Max: 2},
			Breaker: host.BreakerConfig{Window: *breakWin},
			Pool:    host.PoolConfig{Cap: *poolCap},
			Chaos:   inj, Seed: *seed,
		})
		var res host.LoadResult
		if *mode == "open" {
			res = host.RunOpenLoop(s, mix, *rate, *requests, *seed)
		} else {
			nc := *clients
			if nc <= 0 {
				nc = 2 * w
			}
			res = host.RunClosedLoop(s, mix, nc, *requests, *seed)
		}
		s.Close()

		sum := res.Summary
		if base == 0 {
			base = sum.ThroughputRPS
		}
		tb.AddRow(
			strconv.Itoa(w),
			fmt.Sprintf("%.0f", sum.ThroughputRPS),
			stats.Ns(sum.P50Ns), stats.Ns(sum.P99Ns), stats.Ns(sum.P999Ns),
			fmt.Sprintf("%.1f", sum.ShedRate*100),
			strconv.FormatUint(sum.Timeouts, 10),
			strconv.FormatUint(sum.Faults, 10),
			fmt.Sprintf("%.2fx", sum.ThroughputRPS/base),
		)
		lastTenants = s.TenantSummaries()
		rr := runReport{
			Workers: w, Summary: sum, Tenants: lastTenants,
			Counters: s.Counters(), Elapsed: res.Elapsed.Seconds(),
		}
		if inj != nil {
			cs := inj.Snapshot()
			rr.Chaos = &cs
			rep.ChaosTotal.Add(cs)
		}
		rep.Runs = append(rep.Runs, rr)
		if verifiable {
			if res.Checksum != ref {
				fmt.Fprintf(os.Stderr, "hfiserve: %d workers: checksum %#x != single-threaded reference %#x\n", w, res.Checksum, ref)
				os.Exit(1)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "hfiserve:", err)
			os.Exit(1)
		}
		return
	}

	tb.AddNote("GOMAXPROCS=%d; dispatch overhead %v wall per request", runtime.GOMAXPROCS(0), *dispatch)
	if *chaosOn {
		names := make([]string, len(chaosClasses))
		for i, c := range chaosClasses {
			names[i] = c.String()
		}
		tb.AddNote("chaos injection on, seed %d, classes %s (same seed ⇒ same fault schedule)",
			*seed, strings.Join(names, ","))
		if rep.ChaosTotal != nil {
			tb.AddNote("injected faults: %d total; substrate bitflip=%d tlbstale=%d clockskew=%d loweringrot=%d",
				rep.ChaosTotal.Total(), rep.ChaosTotal.BitFlip, rep.ChaosTotal.TLBStale,
				rep.ChaosTotal.ClockSkew, rep.ChaosTotal.LoweringRot)
		}
	}
	if verifiable {
		tb.AddNote("checksums verified against single-threaded reference (%#x)", ref)
	}
	fmt.Println(tb)

	// Per-tenant breakdown (largest worker count) whenever fairness or
	// fault machinery is in play.
	if (*chaosOn || *weights != "") && len(lastTenants) > 0 {
		ttb := &stats.Table{
			Title:   fmt.Sprintf("per-tenant outcomes (%d workers)", counts[len(counts)-1]),
			Columns: []string{"tenant", "ok", "timeouts", "faults", "shed", "rejected", "p50", "p99"},
		}
		for _, ts := range lastTenants {
			ttb.AddRow(
				ts.Tenant,
				strconv.FormatUint(ts.OK, 10),
				strconv.FormatUint(ts.Timeouts, 10),
				strconv.FormatUint(ts.Faults, 10),
				strconv.FormatUint(ts.Shed, 10),
				strconv.FormatUint(ts.Rejected, 10),
				stats.Ns(ts.P50Ns), stats.Ns(ts.P99Ns),
			)
		}
		fmt.Println(ttb)
	}
}

// parseWorkers parses the -workers list, appends GOMAXPROCS, and
// deduplicates in ascending order.
func parseWorkers(list string) ([]int, error) {
	seen := map[int]bool{runtime.GOMAXPROCS(0): true}
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		seen[n] = true
	}
	counts := make([]int, 0, len(seen))
	for n := range seen {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts, nil
}

// parseTenantWeights parses "name=weight,..." into per-tenant policies.
func parseTenantWeights(list string) (map[string]host.TenantPolicy, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	m := make(map[string]host.TenantPolicy)
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant weight %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in %q (want a positive integer)", part)
		}
		m[strings.TrimSpace(name)] = host.TenantPolicy{Weight: w}
	}
	return m, nil
}

package experiments

import (
	"fmt"

	"hfi/internal/faas"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

// RunTable1 reproduces Table 1: FaaS tail latency under HFI versus Swivel
// Spectre protection. Paper: Swivel raises tail latency 9%-42%; HFI 0%-2%;
// Swivel also bloats binaries while HFI leaves them unchanged.
func RunTable1(requestsPerTenant int) ([]faas.Result, *stats.Table, error) {
	if requestsPerTenant <= 0 {
		requestsPerTenant = 30
	}
	configs := []faas.Config{faas.StockLucet(), faas.LucetHFI(), faas.LucetSwivel()}
	tb := &stats.Table{
		Title:   "Table 1: Spectre protection's impact on FaaS tail latency",
		Columns: []string{"workload", "config", "avg lat", "tail lat", "thruput/s", "bin size", "tail vs unsafe"},
	}
	var all []faas.Result
	for _, tenant := range workloads.FaaSTenants() {
		n := requestsPerTenant
		if tenant.Name == "image-classification" {
			// The heavy tenant: fewer requests, as its per-request cost
			// dominates (Table 1 shows 12.2 s average latency).
			n = requestsPerTenant / 3
			if n < 4 {
				n = 4
			}
		}
		var baseTail float64
		for _, cfg := range configs {
			r, err := faas.ServeTenant(tenant, cfg, n)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, r)
			if cfg.Name == "Lucet(Unsafe)" {
				baseTail = r.TailLatNs
			}
			tb.AddRow(tenant.Name, cfg.Name,
				stats.Ns(r.AvgLatNs), stats.Ns(r.TailLatNs),
				fmt.Sprintf("%.1f", r.Throughput),
				stats.Bytes(float64(r.BinBytes)),
				fmt.Sprintf("%+.1f%%", (r.TailLatNs/baseTail-1)*100))
		}
	}
	tb.AddNote("paper: HFI raises tail latency 0-2%% with no binary bloat; Swivel 9-42%% with larger binaries")
	return all, tb, nil
}

// Package cluster is the fleet tier over internal/httpfront: a
// consistent-hash router (bounded-load variant, warm-image-aware) that
// places tenants across N real hfihttpd shard subprocesses over loopback
// HTTP, gates membership on /healthz, migrates placements off draining or
// dead shards, and hedges requests against shards whose breaker state
// says they are degraded — all over the versioned typed wire API
// (httpfront.StatszV1 / ErrorEnvelope), never stringly-typed scraping.
//
// The paper's §6.3 argument makes per-process sandboxing cheap; this
// package is the layer that turns many such processes into one service.
package cluster

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring with virtual nodes. It is not
// goroutine-safe; the Router guards it with its own mutex. The ring only
// answers "which shards, in preference order, for this key" — bounded
// loads and health are the Router's placement policy, layered on top.
type Ring struct {
	vnodes  int
	points  []ringPoint
	members map[string]bool
}

// NewRing builds an empty ring with vnodes virtual nodes per shard
// (0 ⇒ 64, enough that removing one of a handful of shards moves ≤ ~1/n
// of the keyspace).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// Members returns the current member count.
func (r *Ring) Members() int { return len(r.members) }

// Has reports membership.
func (r *Ring) Has(shard string) bool { return r.members[shard] }

// Add inserts shard's virtual nodes. Idempotent.
func (r *Ring) Add(shard string) {
	if r.members[shard] {
		return
	}
	r.members[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: fnv64(fmt.Sprintf("%s#%d", shard, v)), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes shard's virtual nodes. Idempotent.
func (r *Ring) Remove(shard string) {
	if !r.members[shard] {
		return
	}
	delete(r.members, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Candidates walks the ring clockwise from key's hash and returns every
// member exactly once, in encounter order — the tenant's stable shard
// preference list. Successive entries are the successors a drained or
// degraded primary hands its tenants (or hedged duplicates) to.
func (r *Ring) Candidates(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// fnv64 is FNV-1a over s — the same deterministic hash family the chaos
// injector draws from, used here for vnode and key positions.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

package cluster

import (
	"os"
	"testing"
)

// TestMain hooks the shard role: Launch with no Bin re-execs this test
// binary (os.Executable), and the re-exec must serve as a real shard
// subprocess — HFI_SHARD_CONFIG in the environment, ShardMain instead of
// the test list. This is the same check cmd/hfihttpd and cmd/hfirouter
// run first thing in main().
func TestMain(m *testing.M) {
	if IsShardProc() {
		os.Exit(ShardMain())
	}
	os.Exit(m.Run())
}

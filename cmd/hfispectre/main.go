// Command hfispectre runs the §5.3 security evaluation: SafeSide-style
// Spectre-PHT and TransientFail-style Spectre-BTB attacks against the
// timing simulator, with and without HFI protection, printing the
// per-candidate access-latency series Fig 7 plots.
//
// Usage:
//
//	hfispectre                 # both attacks, both configurations
//	hfispectre -attack pht     # just Spectre-PHT
//	hfispectre -attack btb     # just Spectre-BTB
//	hfispectre -series         # also dump the latency series for byte 0
package main

import (
	"flag"
	"fmt"
	"os"

	"hfi/internal/spectre"
)

func main() {
	attack := flag.String("attack", "both", "pht, btb, or both")
	series := flag.Bool("series", false, "print the Fig 7 latency series for the first byte")
	flag.Parse()

	if *attack == "pht" || *attack == "both" {
		for _, protected := range []bool{false, true} {
			h, err := spectre.NewPHT(protected)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfispectre:", err)
				os.Exit(1)
			}
			leaked, results := h.LeakString(len(spectre.Secret))
			report("Spectre-PHT", protected, leaked, results, *series)
		}
	}
	if *attack == "btb" || *attack == "both" {
		for _, protected := range []bool{false, true} {
			h, err := spectre.NewBTB(protected)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfispectre:", err)
				os.Exit(1)
			}
			leaked, results := h.LeakString(len(spectre.Secret))
			report("Spectre-BTB", protected, leaked, results, *series)
		}
	}
}

func report(name string, protected bool, leaked string, results []spectre.Result, series bool) {
	mode := "HFI off"
	if protected {
		mode = "HFI on"
	}
	hits := 0
	for _, r := range results {
		if r.Hit {
			hits++
		}
	}
	fmt.Printf("%s [%s]: recovered %q (%d/%d bytes with cache signal)\n",
		name, mode, leaked, hits, len(results))
	if series && len(results) > 0 {
		fmt.Printf("  access latency per candidate value for byte 0 (cycles, < %d = cached):\n", spectre.HitThreshold)
		for v := 0; v < 256; v += 8 {
			fmt.Printf("   ")
			for k := 0; k < 8; k++ {
				fmt.Printf(" %3d:%-4d", v+k, results[0].Latency[v+k])
			}
			fmt.Println()
		}
	}
}

package httpfront

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hfi/internal/host"
	"hfi/internal/stats"
)

// RunOpenLoopHTTP drives a front over real HTTP with the same open-loop
// Poisson arrival process as host.RunOpenLoop: exponential inter-arrival
// gaps at `rate` requests per second from a seeded PRNG, tenants drawn
// round-robin from names. Response codes are folded back into outcome
// classes via OutcomeForCode, and latency percentiles cover executed
// requests (ok/timeout/fault) to match the server-side recorder's view.
// Transport errors (connection refused, ...) are returned, not counted.
//
// The client may point at a shard or at a router — the wire contract is
// identical, which is exactly the point of the typed client.
func RunOpenLoopHTTP(client *Client, names []string, rate float64, total int, seed int64) (host.SweepPoint, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	due := make([]time.Duration, total)
	var t float64
	for i := range due {
		t += rng.ExpFloat64() / rate * 1e9
		due[i] = time.Duration(t)
	}

	var (
		mu       sync.Mutex
		counts   = make(map[stats.Outcome]uint64)
		lats     []float64
		firstErr error
		wg       sync.WaitGroup
	)
	ctx := context.Background()
	t0 := time.Now()
	for i := 0; i < total; i++ {
		if d := time.Until(t0.Add(due[i])); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			start := time.Now()
			res, err := client.Invoke(ctx, name, nil, "")
			lat := float64(time.Since(start).Nanoseconds())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			o, ok := res.Outcome()
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("unexpected HTTP %d invoking %s", res.Code, name)
				}
				return
			}
			counts[o]++
			switch o {
			case stats.OutcomeOK, stats.OutcomeTimeout, stats.OutcomeFault:
				lats = append(lats, lat)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return host.SweepPoint{}, firstErr
	}

	sort.Float64s(lats)
	pt := host.SweepPoint{
		RateRPS: rate, Offered: total,
		OK: counts[stats.OutcomeOK], Timeouts: counts[stats.OutcomeTimeout],
		Faults: counts[stats.OutcomeFault], Shed: counts[stats.OutcomeShed],
		Rejected: counts[stats.OutcomeRejected], Canceled: counts[stats.OutcomeCanceled],
	}
	if len(lats) > 0 {
		pt.P50Ns = stats.Percentile(lats, 50)
		pt.P99Ns = stats.Percentile(lats, 99)
		pt.P999Ns = stats.Percentile(lats, 99.9)
	}
	executed := pt.OK + pt.Timeouts + pt.Faults
	if elapsed > 0 {
		pt.AchievedRPS = float64(executed) / elapsed.Seconds()
	}
	if n := executed + pt.Shed; n > 0 {
		pt.ShedRate = float64(pt.Shed) / float64(n)
	}
	return pt, nil
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// MicroPerf reports the simulator's own (host wall-clock) performance —
// not simulated guest time. The paper's macro experiments need billions of
// emulated instructions, so interpreter throughput bounds how much of the
// evaluation is reproducible per CPU-hour; these are the numbers the
// "Simulator performance" section of DESIGN.md and BENCH_PR3.json track.
type MicroPerf struct {
	// Interpreter throughput over a load/store-heavy HFI guest.
	FastInstrsPerSec float64 // fast paths on (the default)
	SlowInstrsPerSec float64 // NoFastPath: uncached fetch + full checks
	Speedup          float64
	AllocsPerMInstr  float64 // host allocations per million guest instrs (fast)

	// Tenant provisioning with the shared code-image cache.
	ColdProvisionNs float64 // first provision: compile + verify + map
	WarmProvisionNs float64 // subsequent provisions: shared image
	ProvisionSpeedup float64
}

// measureInterpThroughput runs a memory-heavy kernel under HFI until at
// least minInstrs retire, returning guest instructions per host second and
// host allocations per million guest instructions.
func measureInterpThroughput(minInstrs uint64, noFast bool) (ips, allocsPerM float64, err error) {
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(workloads.Memmove(1), sfi.HFI, wasm.Options{})
	if err != nil {
		return 0, 0, err
	}
	ip := cpu.NewInterp(rt.M)
	ip.NoFastPath = noFast

	// Warm the instance (page faults, cache fills, compile of nothing
	// left to do) before timing.
	if res, _ := inst.Invoke(ip, 0); res.Reason != cpu.StopHalt {
		return 0, 0, fmt.Errorf("microperf warmup: stop %v", res.Reason)
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := rt.M.Instret
	t0 := time.Now()
	for rt.M.Instret-start < minInstrs {
		if res, _ := inst.Invoke(ip, 0); res.Reason != cpu.StopHalt {
			return 0, 0, fmt.Errorf("microperf: stop %v", res.Reason)
		}
	}
	elapsed := time.Since(t0).Seconds()
	runtime.ReadMemStats(&ms1)
	instrs := rt.M.Instret - start
	return float64(instrs) / elapsed,
		float64(ms1.Mallocs-ms0.Mallocs) / (float64(instrs) / 1e6),
		nil
}

// measureProvision times tenant provisioning: one cold provision against a
// fresh image cache, then reps warm provisions sharing its image.
func measureProvision(reps int) (coldNs, warmNs float64, err error) {
	tenant := workloads.FaaSTenantsLight()[0]
	cfg := faas.Config{Name: "HFI", Scheme: sfi.HFI}
	images := sandbox.NewCodeCache()

	t0 := time.Now()
	if _, err := faas.ProvisionShared(tenant, cfg, images); err != nil {
		return 0, 0, err
	}
	coldNs = float64(time.Since(t0).Nanoseconds())

	t1 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := faas.ProvisionShared(tenant, cfg, images); err != nil {
			return 0, 0, err
		}
	}
	warmNs = float64(time.Since(t1).Nanoseconds()) / float64(reps)
	return coldNs, warmNs, nil
}

// RunMicroPerf measures simulator throughput (interpreter fast paths on vs
// off) and provisioning cost (cold vs shared-image warm), and renders them
// as a table whose JSON form is what scripts/bench.sh records.
func RunMicroPerf(minInstrs uint64) (MicroPerf, *stats.Table, error) {
	var mp MicroPerf
	var err error
	if mp.FastInstrsPerSec, mp.AllocsPerMInstr, err = measureInterpThroughput(minInstrs, false); err != nil {
		return mp, nil, err
	}
	if mp.SlowInstrsPerSec, _, err = measureInterpThroughput(minInstrs, true); err != nil {
		return mp, nil, err
	}
	mp.Speedup = mp.FastInstrsPerSec / mp.SlowInstrsPerSec
	if mp.ColdProvisionNs, mp.WarmProvisionNs, err = measureProvision(20); err != nil {
		return mp, nil, err
	}
	mp.ProvisionSpeedup = mp.ColdProvisionNs / mp.WarmProvisionNs

	tb := &stats.Table{
		Title:   "Micro: simulator performance (host wall-clock, not simulated time)",
		Columns: []string{"metric", "fast path", "slow path", "speedup"},
	}
	tb.AddRow("interp instrs/sec",
		fmt.Sprintf("%.1fM", mp.FastInstrsPerSec/1e6),
		fmt.Sprintf("%.1fM", mp.SlowInstrsPerSec/1e6),
		fmt.Sprintf("%.2fx", mp.Speedup))
	tb.AddRow("allocs per M instrs",
		fmt.Sprintf("%.2f", mp.AllocsPerMInstr), "-", "-")
	tb.AddRow("provision ns (cold/warm)",
		fmt.Sprintf("%.0f", mp.WarmProvisionNs),
		fmt.Sprintf("%.0f", mp.ColdProvisionNs),
		fmt.Sprintf("%.2fx", mp.ProvisionSpeedup))
	tb.AddNote("slow path = -NoFastPath interpreter (uncached fetch, per-access HFI+MMU checks); cold provision compiles+verifies, warm shares the image cache")
	return mp, tb, nil
}

package cpu

import (
	"testing"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// buildStoreLoop builds a loop storing R3 to the same 8-byte slot n times —
// the densest possible client of the data-translation cache.
func buildStoreLoop(base, buf uint64, n int64) *isa.Program {
	b := isa.NewBuilder(base)
	b.MovImm(isa.R0, 0)
	b.MovImm(isa.R2, int64(buf))
	b.MovImm(isa.R3, 0x42)
	b.Label("loop")
	b.Store(8, isa.R2, isa.RegNone, 1, 0, isa.R3)
	b.AddImm(isa.R0, isa.R0, 1)
	b.BrImm(isa.CondLT, isa.R0, n, "loop")
	b.Halt()
	return b.Build()
}

// TestFetchCacheSecondProgram loads a second program over a reset machine
// and runs both: the fetch code cache must not serve instructions from the
// previously cached program.
func TestFetchCacheSecondProgram(t *testing.T) {
	m := NewMachine()
	m.MustLoadProgram(buildSumLoop(0x1000, 10))
	m.PC = 0x1000
	if res := NewInterp(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("first program: stop = %v", res.Reason)
	}
	if got := m.Regs[isa.R1]; got != 45 {
		t.Fatalf("first program sum = %d, want 45", got)
	}

	m.Reset()
	m.MustLoadProgram(buildSumLoop(0x8000, 20))
	m.PC = 0x8000
	if res := NewInterp(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("second program: stop = %v", res.Reason)
	}
	if got := m.Regs[isa.R1]; got != 190 {
		t.Fatalf("second program sum = %d, want 190", got)
	}

	// The first program must still run correctly after the cache has been
	// retargeted at the second.
	m.Reset()
	m.PC = 0x1000
	if res := NewInterp(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("first program rerun: stop = %v", res.Reason)
	}
	if got := m.Regs[isa.R1]; got != 45 {
		t.Fatalf("first program rerun sum = %d, want 45", got)
	}
}

// TestDTCFlushOnMprotect revokes write permission in the middle of a store
// loop: the resumed run must fault on the next store even though the
// data-translation cache holds a positive decision for the page.
func TestDTCFlushOnMprotect(t *testing.T) {
	m := NewMachine()
	const buf = 0x100000
	if err := m.AS.MapFixed(buf, kernel.OSPageSize, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	m.MustLoadProgram(buildStoreLoop(0x1000, buf, 1_000_000))
	m.PC = 0x1000
	ip := NewInterp(m)

	// Run a slice of the loop so the DTC is warm with a write-allowed entry.
	if res := ip.Run(100); res.Reason != StopLimit {
		t.Fatalf("warmup: stop = %v, want limit", res.Reason)
	}

	if err := m.Kern.Mprotect(m.AS, buf, kernel.OSPageSize, kernel.ProtRead); err != nil {
		t.Fatal(err)
	}
	res := ip.Run(0)
	if res.Reason != StopFault || !res.PageFault {
		t.Fatalf("after mprotect: stop = %v pageFault=%v, want page fault", res.Reason, res.PageFault)
	}
	if res.FaultAddr != buf {
		t.Fatalf("fault addr = %#x, want %#x", res.FaultAddr, buf)
	}
}

// TestDTCFlushOnHFIEnter enables HFI (with regions excluding the store
// target) in the middle of a store loop started outside HFI: the cached
// no-HFI decision must not leak into the sandbox.
func TestDTCFlushOnHFIEnter(t *testing.T) {
	m := NewMachine()
	const buf = 0x100000
	if err := m.AS.MapFixed(buf, kernel.OSPageSize, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	m.MustLoadProgram(buildStoreLoop(0x1000, buf, 1_000_000))
	m.PC = 0x1000
	ip := NewInterp(m)

	if res := ip.Run(100); res.Reason != StopLimit {
		t.Fatalf("warmup: stop = %v, want limit", res.Reason)
	}

	// Enter a sandbox whose data region does NOT cover buf.
	if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true}); f != nil {
		t.Fatal(f)
	}
	if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{BasePrefix: 0x200000, LSBMask: 0xffff, Read: true, Write: true}); f != nil {
		t.Fatal(f)
	}
	if _, f := m.HFI.Enter(hfi.Config{Hybrid: true}); f != nil {
		t.Fatal(f)
	}
	res := ip.Run(0)
	if res.Reason != StopFault || res.Fault == nil {
		t.Fatalf("after enter: stop = %v fault=%v, want HFI fault", res.Reason, res.Fault)
	}
	if res.Fault.Reason != hfi.FaultDataBounds {
		t.Fatalf("fault reason = %v, want data-bounds", res.Fault.Reason)
	}
}

// TestInterpCostTableTracksModel edits the cost model between runs: the
// precomputed dispatch table must rebuild and charge the new costs.
func TestInterpCostTableTracksModel(t *testing.T) {
	m := NewMachine()
	m.MustLoadProgram(buildSumLoop(0x1000, 1000))
	ip := NewInterp(m)
	m.PC = 0x1000
	if res := ip.Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	base := m.Cycles

	m.Reset()
	ip.Cost.ALU *= 10
	m.PC = 0x1000
	if res := ip.Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if m.Cycles <= base {
		t.Fatalf("cycles with 10x ALU cost = %d, want > %d", m.Cycles, base)
	}
}

// TestInterpHotLoopZeroAllocs is the allocation gate for the interpreter
// hot loop: after warmup, a full run of the load/store kernel must not
// allocate. This is what keeps `make bench` honest — the benchmark numbers
// are meaningless if the loop churns the garbage collector.
func TestInterpHotLoopZeroAllocs(t *testing.T) {
	m := NewMachine()
	const buf = 0x100000
	if err := m.AS.MapFixed(buf, 0x10000, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	m.MustLoadProgram(buildMemKernel(0x1000, buf, 64))
	ip := NewInterp(m)
	m.PC = 0x1000
	if res := ip.Run(0); res.Reason != StopHalt {
		t.Fatalf("warmup: stop = %v", res.Reason)
	}

	allocs := testing.AllocsPerRun(20, func() {
		m.PC = 0x1000
		if res := ip.Run(0); res.Reason != StopHalt {
			t.Errorf("stop = %v", res.Reason)
		}
	})
	if allocs != 0 {
		t.Fatalf("interpreter hot loop allocates %.1f times per run, want 0", allocs)
	}
}

package experiments

import (
	"fmt"

	"hfi/internal/nginxsim"
	"hfi/internal/stats"
)

// Fig5Sizes are the response file sizes of Fig 5.
var Fig5Sizes = []uint64{0, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}

// Fig5Point is one (protection, size) throughput measurement.
type Fig5Point struct {
	Prot       nginxsim.Protection
	FileBytes  uint64
	Throughput float64
	Normalized float64 // vs unprotected
}

// RunFig5 reproduces Fig 5: NGINX serving files with OpenSSL session keys
// protected by nothing, MPK, or HFI's native sandbox. Paper: HFI overhead
// 2.9%-6.1%, slightly above MPK's 1.9%-5.3% because HFI moves region
// metadata from memory to registers on each transition.
func RunFig5(requestsPerSize int) ([]Fig5Point, *stats.Table, error) {
	if requestsPerSize <= 0 {
		requestsPerSize = 12
	}
	tb := &stats.Table{
		Title:   "Fig 5: NGINX+OpenSSL throughput, normalized (unprotected = 100%)",
		Columns: []string{"file size", "none", "MPK", "HFI"},
	}
	var points []Fig5Point
	for _, size := range Fig5Sizes {
		var tput [3]float64
		for _, prot := range []nginxsim.Protection{nginxsim.ProtNone, nginxsim.ProtMPK, nginxsim.ProtHFI} {
			srv, err := nginxsim.New(prot)
			if err != nil {
				return nil, nil, err
			}
			res, err := srv.Serve(size, requestsPerSize)
			if err != nil {
				return nil, nil, fmt.Errorf("fig5 %v/%d: %w", prot, size, err)
			}
			tput[prot] = res.Throughput
			points = append(points, Fig5Point{Prot: prot, FileBytes: size, Throughput: res.Throughput})
		}
		for i := range points[len(points)-3:] {
			p := &points[len(points)-3+i]
			p.Normalized = p.Throughput / tput[nginxsim.ProtNone]
		}
		tb.AddRow(stats.Bytes(float64(size)),
			"100.0%",
			fmt.Sprintf("%.1f%%", tput[nginxsim.ProtMPK]/tput[nginxsim.ProtNone]*100),
			fmt.Sprintf("%.1f%%", tput[nginxsim.ProtHFI]/tput[nginxsim.ProtNone]*100))
	}
	tb.AddNote("paper: HFI 93.9-97.1%% of unprotected (2.9-6.1%% overhead); MPK 94.7-98.1%% (1.9-5.3%%)")
	return points, tb, nil
}

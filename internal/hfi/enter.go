package hfi

// EnterResult tells the execution engine what hfi_enter did and how much it
// cost (serialization is charged by the engine, not here, so the functional
// interpreter and the timing core can account for it differently).
type EnterResult struct {
	// Serialize is true when the pipeline must fully drain
	// (is_serialized sandboxes).
	Serialize bool
	// RegionLoads is the number of region descriptors the microcode moved
	// from memory into HFI registers (each costs a memory read).
	RegionLoads int
}

// Enter executes hfi_enter with the given configuration. Region descriptors
// referenced by cfg.RegionsPtr must already have been applied by the engine
// (which owns memory access) via the Set*Region calls; RegionLoads in the
// result is derived from cfg.RegionCount for cost accounting.
//
// Semantics (§3.3.1, §4.4, §4.5):
//   - hfi_enter while a NATIVE sandbox is running is a privileged fault:
//     untrusted code must not reconfigure HFI.
//   - hfi_enter inside a HYBRID sandbox is permitted (the Wasm runtime in
//     the sandbox manages its own regions); with switch_on_exit set it
//     saves the current bank so hfi_exit atomically switches back.
//   - Entering with no valid code region would make the very next fetch
//     fault; we allow it (the fetch check will catch it) as the paper
//     describes ("HFI will immediately trap after hfi_enter is called").
func (s *State) Enter(cfg Config) (EnterResult, *Fault) {
	if s.Enabled && !s.Bank.Cfg.Hybrid {
		return EnterResult{}, s.fault(FaultPrivileged, 0, false)
	}
	res := EnterResult{
		Serialize:   cfg.Serialized,
		RegionLoads: int(cfg.RegionCount),
	}
	if cfg.SwitchOnExit {
		// Preserve the (trusted runtime's) current bank in the shadow
		// register set; hfi_exit will restore it instead of disabling HFI.
		s.saved = s.Bank
		s.savedValid = true
	} else {
		s.savedValid = false
	}
	s.Bank.Cfg = cfg
	s.Enabled = true
	s.Enters++
	s.Gen++
	return res, nil
}

// ExitResult tells the execution engine where control goes after hfi_exit.
type ExitResult struct {
	// Handler, if nonzero, is the exit-handler address control must jump
	// to. Zero means fall through to the next instruction (hybrid
	// sandboxes typically inline their handler after hfi_exit, §3.3.2).
	Handler uint64
	// Serialize is true when the exit must drain the pipeline.
	Serialize bool
	// SwitchedBack is true when switch-on-exit restored the trusted
	// runtime's bank instead of disabling HFI.
	SwitchedBack bool
}

// Exit executes hfi_exit (§3.3.2, §4.5): records the reason in the MSR and
// either disables HFI mode or, under switch-on-exit, atomically restores
// the saved trusted-runtime bank.
func (s *State) Exit() ExitResult {
	return s.exit(ExitInstruction, 0)
}

// SyscallExit implements the decode-stage redirection of syscall
// instructions inside a native sandbox (§4.4): it behaves like hfi_exit
// with reason ExitSyscall, recording the syscall number in the MSR info
// register. The engine must only call this when Enabled && !Hybrid.
func (s *State) SyscallExit(sysno uint64) ExitResult {
	return s.exit(ExitSyscall, sysno)
}

func (s *State) exit(reason ExitReason, info uint64) ExitResult {
	res := ExitResult{
		Handler:   s.Bank.Cfg.ExitHandler,
		Serialize: s.Bank.Cfg.Serialized,
	}
	s.MSR = reason
	s.MSRInfo = info
	s.Exits++
	s.Gen++
	s.last = s.Bank
	s.lastValid = true
	if s.Bank.Cfg.SwitchOnExit && s.savedValid {
		// Sandboxes started with switch-on-exit cannot disable HFI:
		// restore the trusted sandbox's registers and stay enabled.
		s.Bank = s.saved
		s.savedValid = false
		res.SwitchedBack = true
		// Serialization is governed by the runtime's own (restored)
		// config: the whole point of switch-on-exit is that transitions
		// within the trusted collection need no serialization.
		res.Serialize = false
		return res
	}
	s.Enabled = false
	s.savedValid = false
	return res
}

// Reenter executes hfi_reenter: re-enters the sandbox that was most
// recently exited, with its registers as they were at exit (appendix A.1).
// Faults if there is no previously exited sandbox or if called while a
// native sandbox is active.
func (s *State) Reenter() (EnterResult, *Fault) {
	if s.Enabled && !s.Bank.Cfg.Hybrid {
		return EnterResult{}, s.fault(FaultPrivileged, 0, false)
	}
	if !s.lastValid {
		return EnterResult{}, s.fault(FaultBadConfig, 0, false)
	}
	s.Bank = s.last
	s.Enabled = true
	s.Enters++
	s.Gen++
	return EnterResult{Serialize: s.Bank.Cfg.Serialized}, nil
}

// SyscallAllowed reports whether a syscall instruction may proceed to the
// kernel: always when HFI is off, and in hybrid sandboxes (trusted code has
// direct OS access, §3.3.1). In native sandboxes syscalls are redirected
// via SyscallExit.
func (s *State) SyscallAllowed() bool {
	return !s.Enabled || s.Bank.Cfg.Hybrid
}

// PrivilegedAllowed reports whether privileged register updates
// (hfi_set_region and friends, xrstor with HFI state) may execute: outside
// HFI mode or in a hybrid sandbox.
func (s *State) PrivilegedAllowed() bool {
	return !s.Enabled || s.Bank.Cfg.Hybrid
}

// RegionUpdateSerializes reports whether a region update at this point
// serializes the pipeline: updates serialize only when executed inside a
// hybrid sandbox, since outside HFI mode they are always followed by an
// hfi_enter that can serialize (§4.3).
func (s *State) RegionUpdateSerializes() bool {
	return s.Enabled && s.Bank.Cfg.Hybrid
}

// PrivFault records a privileged-operation fault (e.g. a native sandbox
// executing xrstor with the save-hfi-regs flag, §3.3.3).
func (s *State) PrivFault(addr uint64) *Fault {
	return s.fault(FaultPrivileged, addr, false)
}

// ReadMSR returns the exit-reason MSR and its info companion.
func (s *State) ReadMSR() (ExitReason, uint64) { return s.MSR, s.MSRInfo }

package tier

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/verifier"
)

// buildFill builds a program that stores 7*i into buf[i] for i in 0..n-1
// and halts — a canonical promotable store loop.
func buildFill(base, buf uint64, n int64) *isa.Program {
	b := isa.NewBuilder(base)
	b.MovImm(isa.R0, 0)
	b.MovImm(isa.R2, int64(buf))
	b.Label("fill")
	b.MulImm(isa.R3, isa.R0, 7)
	b.Store(8, isa.R2, isa.R0, 8, 0, isa.R3)
	b.AddImm(isa.R0, isa.R0, 1)
	b.BrImm(isa.CondLT, isa.R0, n, "fill")
	b.Halt()
	return b.Build()
}

// syntheticFacts marks every plain load/store resident in one window —
// the minimal artifact the lowering needs. No block facts are claimed, so
// only blocks containing a memory operation fuse (the NoSideExit
// cross-check keeps pure-compute blocks interpreted).
func syntheticFacts(p *isa.Program, lo, hi uint64) *verifier.Facts {
	f := &verifier.Facts{
		NumInstrs: len(p.Instrs),
		Bits:      make([]uint8, len(p.Instrs)),
		Mem:       make([]verifier.MemFact, len(p.Instrs)),
		Windows:   []verifier.Window{{Lo: lo, Hi: hi}},
	}
	for i := range f.Mem {
		f.Mem[i].Window = -1
		f.Mem[i].DomSite = -1
	}
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case isa.OpLoad, isa.OpStore:
			f.Bits[i] |= verifier.FactResident
			f.Mem[i].Window = 0
		}
	}
	return f
}

// machineSnap is everything architectural about a stopped machine.
type machineSnap struct {
	res     cpu.RunResult
	regs    [isa.NumRegs]uint64
	pc      uint64
	instret uint64
	cycles  uint64
	clockNs uint64
}

func snapshot(m *cpu.Machine, res cpu.RunResult) machineSnap {
	return machineSnap{
		res: res, regs: m.Regs, pc: m.PC,
		instret: m.Instret, cycles: m.Cycles,
		clockNs: m.Kern.Clock.Now(),
	}
}

func newFillMachine(t *testing.T, base, buf uint64, mapBytes uint64, n int64) *cpu.Machine {
	t.Helper()
	m := cpu.NewMachine()
	if err := m.AS.MapFixed(buf, mapBytes, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	m.MustLoadProgram(buildFill(base, buf, n))
	m.PC = base
	return m
}

// TestEngineMatchesInterp: the tiered engine over a synthetic store loop
// produces the interpreter's exact architectural outcome — registers, PC,
// retirement, cycles, simulated clock — while actually retiring fused
// instructions.
func TestEngineMatchesInterp(t *testing.T) {
	const base, buf = uint64(0x1000), uint64(0x100000)
	ref := newFillMachine(t, base, buf, 0x10000, 64)
	want := snapshot(ref, cpu.NewInterp(ref).Run(0))
	if want.res.Reason != cpu.StopHalt {
		t.Fatalf("interp stop = %v", want.res.Reason)
	}

	m := newFillMachine(t, base, buf, 0x10000, 64)
	ip := cpu.NewInterp(m)
	p := buildFill(base, buf, 64)
	low := Lower(p, syntheticFacts(p, buf, buf+64*8), ip.Cost)
	if low == nil {
		t.Fatal("lowering failed")
	}
	eng := NewEngine(ip, low)
	eng.PromoteAfter = 1
	got := snapshot(m, eng.Run(0))
	if got != want {
		t.Fatalf("tiered run diverged:\nwant %+v\ngot  %+v", want, got)
	}
	if _, tiered, _ := eng.Counters(); tiered == 0 {
		t.Fatal("no fused instructions retired; the comparison is vacuous")
	}
	if eng.Promoted() == 0 {
		t.Fatal("no blocks promoted")
	}
}

// TestFusedBailExactState: a promoted store loop whose window covers only
// the first mapped page runs fused until the store that crosses into the
// unmapped page, bails mid-superinstruction with zero side effects, and
// the interpreter raises the page fault — with machine state identical to
// a pure interpreter run of the same program.
func TestFusedBailExactState(t *testing.T) {
	const base, buf = uint64(0x1000), uint64(0x100000)
	const n = 600 // 600*8 = 4800 > one 4 KiB page

	ref := newFillMachine(t, base, buf, 0x1000, n)
	want := snapshot(ref, cpu.NewInterp(ref).Run(0))
	if want.res.Reason != cpu.StopFault || !want.res.PageFault {
		t.Fatalf("interp stop = %+v, want page fault", want.res)
	}
	if want.res.FaultAddr != buf+0x1000 {
		t.Fatalf("interp fault addr %#x, want %#x", want.res.FaultAddr, buf+0x1000)
	}

	m := newFillMachine(t, base, buf, 0x1000, n)
	ip := cpu.NewInterp(m)
	p := buildFill(base, buf, n)
	// The window honestly claims only the mapped page; the 512th store's
	// address falls outside it, so the fused compare bails.
	low := Lower(p, syntheticFacts(p, buf, buf+0x1000), ip.Cost)
	if low == nil {
		t.Fatal("lowering failed")
	}
	eng := NewEngine(ip, low)
	eng.PromoteAfter = 1
	got := snapshot(m, eng.Run(0))
	if got != want {
		t.Fatalf("bail state diverged:\nwant %+v\ngot  %+v", want, got)
	}
	if _, tiered, _ := eng.Counters(); tiered == 0 {
		t.Fatal("fault path never ran fused; the comparison is vacuous")
	}
}

// TestDemoteOnReset: Machine.Reset (the guest context-switch point) clears
// promotion state; a subsequent run under an unreachable threshold stays
// fully interpreted.
func TestDemoteOnReset(t *testing.T) {
	const base, buf = uint64(0x1000), uint64(0x100000)
	m := newFillMachine(t, base, buf, 0x10000, 64)
	ip := cpu.NewInterp(m)
	p := buildFill(base, buf, 64)
	low := Lower(p, syntheticFacts(p, buf, buf+64*8), ip.Cost)
	eng := NewEngine(ip, low)
	eng.PromoteAfter = 1
	if res := eng.Run(0); res.Reason != cpu.StopHalt {
		t.Fatalf("first run stop = %v", res.Reason)
	}
	if eng.Promoted() == 0 {
		t.Fatal("first run promoted nothing")
	}
	eng.TakeCounters() // drain

	m.Reset()
	m.PC = base
	eng.PromoteAfter = 1 << 30
	if res := eng.Run(0); res.Reason != cpu.StopHalt {
		t.Fatalf("second run stop = %v", res.Reason)
	}
	if eng.Promoted() != 0 {
		t.Fatalf("promotions survived Reset: %d", eng.Promoted())
	}
	if _, tiered, interp := eng.TakeCounters(); tiered != 0 || interp == 0 {
		t.Fatalf("post-Reset split tiered=%d interp=%d, want fully interpreted", tiered, interp)
	}
}

// TestTierHotLoopZeroAllocs is the allocation gate for the tiered hot
// loop: after a warm run promotes the store loop, re-running the program
// end to end — fused blocks, interpreter segments, gate checks — must not
// allocate. `make verify` runs this, so the BENCH_PR8 numbers stay honest.
func TestTierHotLoopZeroAllocs(t *testing.T) {
	const base, buf = uint64(0x1000), uint64(0x100000)
	m := newFillMachine(t, base, buf, 0x10000, 1024)
	ip := cpu.NewInterp(m)
	p := buildFill(base, buf, 1024)
	low := Lower(p, syntheticFacts(p, buf, buf+1024*8), ip.Cost)
	eng := NewEngine(ip, low)
	if res := eng.Run(0); res.Reason != cpu.StopHalt {
		t.Fatalf("warmup stop = %v", res.Reason)
	}
	if _, tiered, _ := eng.Counters(); tiered == 0 {
		t.Fatal("warmup never ran fused; the gate is vacuous")
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.PC = base
		eng.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("tiered hot loop allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestGateRefusesUnmappedWindow: a lowering whose window claim the live
// address space does not back never executes fused — the per-generation
// gate re-validates claims instead of trusting them.
func TestGateRefusesUnmappedWindow(t *testing.T) {
	const base, buf = uint64(0x1000), uint64(0x100000)
	m := newFillMachine(t, base, buf, 0x10000, 64)
	ip := cpu.NewInterp(m)
	p := buildFill(base, buf, 64)
	// A window entirely outside the mapping: every claim is a lie, and the
	// gate must catch it wholesale.
	low := Lower(p, syntheticFacts(p, buf+0x40000, buf+0x41000), ip.Cost)
	eng := NewEngine(ip, low)
	eng.PromoteAfter = 1
	if res := eng.Run(0); res.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if _, tiered, _ := eng.Counters(); tiered != 0 {
		t.Fatalf("gate admitted an unbacked window: %d fused instrs", tiered)
	}
}

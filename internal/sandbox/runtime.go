// Package sandbox implements the trusted runtime of §3.3: it instantiates
// Wasm modules (compiled by internal/wasm under any isolation scheme) and
// native programs into in-process sandboxes, manages their memory with the
// simulated OS, programs HFI regions, builds entry springboards, interposes
// on exits and system calls, and implements the lifecycle operations
// (teardown, batching, reuse) that the FaaS experiments measure.
package sandbox

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sfi"
	"hfi/internal/tier"
	"hfi/internal/wasm"
)

// GuardReservation is the per-instance address-space reservation of the
// guard-page scheme: 4 GiB addressable + 4 GiB guard (§2). The number
// lives in sfi so the static verifier proves accesses into the identical
// window.
const GuardReservation = sfi.GuardReservation

// Runtime is the trusted runtime: it owns the machine and hands out
// sandboxed instances.
type Runtime struct {
	M *cpu.Machine

	// Serialized configures hfi_enter/hfi_exit serialization on HFI
	// instances (is-serialized flag, §3.4).
	Serialized bool
	// SwitchOnExit enables the §4.5 extension on HFI instances.
	SwitchOnExit bool
	// WrapNative wraps non-HFI instances in an HFI *native* sandbox:
	// the compiled code is unmodified (no hmov), isolation and Spectre
	// protection come from implicit regions around it. This is Table 1's
	// "Lucet+HFI using native sandbox" configuration.
	WrapNative bool

	// Images, when non-nil, shares compiled code images (and layout-probe
	// results) with other runtimes through a CodeCache: instantiating the
	// same module with the same scheme, options, and resulting layout
	// reuses one verified immutable image instead of recompiling.
	Images *CodeCache

	instances []*Instance
}

// NewRuntime creates a runtime over a fresh machine.
func NewRuntime() *Runtime {
	return &Runtime{M: cpu.NewMachine()}
}

// Instance is one sandboxed Wasm instance.
type Instance struct {
	RT *Runtime
	C  *wasm.Compiled

	// Memory geometry.
	CodeBase     uint64 // power-of-two block holding springboard + code
	CodeSize     uint64
	HeapBase     uint64
	HeapReserved uint64 // includes guard reservation where applicable
	AuxBase      uint64 // power-of-two block: globals + machine stack
	AuxSize      uint64
	// ExtraMemBases holds the bases of linear memories 1..N; each entry
	// reserves ExtraMemReserved[i] bytes (8 GiB under guard schemes).
	ExtraMemBases    []uint64
	ExtraMemReserved []uint64

	// EntryPC is where Invoke starts execution: the HFI springboard, or
	// the module's __start for software schemes.
	EntryPC uint64

	sandboxT    uint64 // guest address of the instance's sandbox_t
	regionTable uint64 // guest address of the region-descriptor table
	regionCount int
	springProg  *isa.Program
	wrapped     bool // native-wrap mode (see Runtime.WrapNative)

	// Lowered is the tiered-engine lowering of this instance's program:
	// shared from the runtime's CodeCache when one is installed (one
	// lowering per module × scheme × geometry), built privately otherwise,
	// and nil when the image carries no facts. Hosts that want tiered
	// execution construct a tier.Engine over it; Invoke works with any
	// cpu.Engine.
	Lowered *tier.Lowered

	// CurPages mirrors the guest-side page counter.
	CurPages int
}

const auxGlobals = 0 // globals at the base of the aux block

// probeLayout is the throwaway layout used by code-size probe compilations;
// the probe is never executed, only measured.
var probeLayout = wasm.Layout{CodeBase: 0x10000, StackBase: 0x20000, StackSize: 0x1000, GlobalBase: 0x30000, HeapBase: 0x40000}

// nextPow2 rounds up to a power of two.
func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// Instantiate compiles the module under the scheme and maps a new instance:
// code, heap (with or without guard reservation), and the aux block holding
// globals and the machine stack. For HFI instances it also programs the
// sandbox_t, region-descriptor table and entry springboard.
func (rt *Runtime) Instantiate(mod *wasm.Module, scheme sfi.Scheme, opts wasm.Options) (*Instance, error) {
	m := rt.M

	// First compilation with a throwaway layout to learn the code size
	// (code size is layout-independent; only immediates change). The probe
	// is never executed, so it skips verification; the real compilation
	// below is verified against the real layout. A shared CodeCache
	// answers repeat probes without compiling.
	var progSize uint64
	if rt.Images != nil {
		var err error
		if progSize, err = rt.Images.probeSize(mod, scheme, opts); err != nil {
			return nil, err
		}
	} else {
		popts := opts
		popts.NoVerify = true
		probe, err := wasm.Compile(mod, scheme, probeLayout, popts)
		if err != nil {
			return nil, err
		}
		progSize = probe.Prog.Size()
	}

	const springSlots = 16 // reserved instruction slots for the springboard
	codeSize := progSize + springSlots*isa.InstrBytes
	codeBlock := nextPow2(codeSize)
	if codeBlock < kernel.OSPageSize {
		codeBlock = kernel.OSPageSize
	}
	codeBase, err := m.AS.MapAligned(codeBlock, codeBlock, kernel.ProtRead|kernel.ProtExec)
	if err != nil {
		return nil, err
	}
	m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)

	// Aux block: globals page, a PROT_NONE stack guard, then the stack;
	// power-of-two sized for the implicit data region that must cover it
	// under HFI. The guard sits between the globals page and the stack
	// floor so a frame reaching below the deepest verified frame faults
	// instead of corrupting the trusted globals.
	const stackSize = 248 << 10
	auxSize := nextPow2(uint64(kernel.OSPageSize) + sfi.StackGuard + stackSize)
	auxBase, err := rt.mapAux(auxSize)
	if err != nil {
		return nil, err
	}
	if err := m.Kern.Mprotect(m.AS, auxBase+kernel.OSPageSize, sfi.StackGuard, kernel.ProtNone); err != nil {
		return nil, err
	}

	// Heap (memory 0).
	heapBase, heapReserved, err := rt.mapHeap(mod, scheme)
	if err != nil {
		return nil, err
	}

	// Secondary linear memories (multi-memory proposal). Guard schemes
	// reserve the full 8 GiB per memory — the address-space blowup §2
	// describes; the others reserve just the memory.
	var extraBases, extraReserved []uint64
	for _, pages := range mod.ExtraMemories {
		bytes := uint64(pages) * wasm.PageSize
		var base, reserved uint64
		if bytes == 0 {
			// Placeholder memory: nothing accessible until the runtime
			// re-points it (ShareBuffer). Guard schemes still pay the full
			// PROT_NONE reservation so a stray access faults inside sandbox-
			// owned address space instead of probing whatever the allocator
			// put below 4 GiB; the checked schemes fault on a zero bound.
			if scheme.NeedsGuardReservation() {
				base, err = m.AS.MapAligned(GuardReservation, GuardReservation, kernel.ProtNone)
				if err != nil {
					return nil, err
				}
				m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
				extraBases = append(extraBases, base)
				extraReserved = append(extraReserved, GuardReservation)
			} else {
				extraBases = append(extraBases, 0)
				extraReserved = append(extraReserved, 0)
			}
			continue
		}
		reserved = wasm.HeapReservation(scheme, bytes, bytes)
		switch {
		case scheme.NeedsGuardReservation():
			base, err = m.AS.MapAligned(GuardReservation, GuardReservation, kernel.ProtNone)
			if err != nil {
				return nil, err
			}
			m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
			if bytes > 0 {
				if err := m.Kern.Mprotect(m.AS, base, bytes, kernel.ProtRead|kernel.ProtWrite); err != nil {
					return nil, err
				}
			}
		case reserved > bytes:
			// Masking: the memory plus its PROT_NONE redzone (displacement
			// overhang lands there instead of in a neighbouring mapping).
			base, err = m.AS.MapAligned(reserved, wasm.PageSize, kernel.ProtNone)
			if err != nil {
				return nil, err
			}
			m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
			if err := m.Kern.Mprotect(m.AS, base, bytes, kernel.ProtRead|kernel.ProtWrite); err != nil {
				return nil, err
			}
		default:
			base, err = m.AS.MapAligned(bytes, wasm.PageSize, kernel.ProtRead|kernel.ProtWrite)
			if err != nil {
				return nil, err
			}
			m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
		}
		extraBases = append(extraBases, base)
		extraReserved = append(extraReserved, reserved)
	}

	lay := wasm.Layout{
		CodeBase:   codeBase + springSlots*isa.InstrBytes,
		HeapBase:   heapBase,
		GlobalBase: auxBase + auxGlobals,
		StackBase:  auxBase + kernel.OSPageSize + sfi.StackGuard,
		StackSize:  stackSize,
	}
	lay.ExtraMemBases = extraBases
	var c *wasm.Compiled
	if rt.Images != nil {
		c, err = rt.Images.compile(mod, scheme, lay, opts)
	} else {
		c, err = wasm.Compile(mod, scheme, lay, opts)
	}
	if err != nil {
		return nil, err
	}
	if err := m.LoadPrelinked(c.Prog); err != nil {
		return nil, err
	}
	if ef := ElisionFromFacts(c.Prog, c.Facts); ef != nil {
		// The verified image carries its proofs; hand them to the
		// interpreter's elision path. Warm images share one immutable
		// artifact across instances.
		m.AttachFacts(c.Prog, ef)
	}
	var low *tier.Lowered
	if rt.Images != nil {
		low = rt.Images.Lowering(c)
	} else {
		low = tier.Lower(c.Prog, c.Facts, cpu.DefaultCostModel())
	}

	inst := &Instance{
		RT: rt, C: c,
		CodeBase: codeBase, CodeSize: codeBlock,
		HeapBase: heapBase, HeapReserved: heapReserved,
		AuxBase: auxBase, AuxSize: auxSize,
		ExtraMemBases: extraBases, ExtraMemReserved: extraReserved,
		CurPages: mod.MemPages,
		EntryPC:  c.Prog.Entry("__start"),
		Lowered:  low,
	}

	// Initialize runtime globals and data segments.
	m.Mem().Write(lay.GlobalBase+0, 8, uint64(mod.MemPages)) // gCurPages
	m.Mem().Write(lay.GlobalBase+8, 8, heapBase)             // gHeapBase
	for k, base := range extraBases {
		off := lay.GlobalBase + wasm.MemCtxOffset(k+1)
		m.Mem().Write(off, 8, base)
		bytes := uint64(mod.ExtraMemories[k]) * wasm.PageSize
		boundOrMask := bytes
		if scheme == sfi.Masking && bytes > 0 {
			boundOrMask = bytes - 1
		}
		m.Mem().Write(off+8, 8, boundOrMask)
	}
	for _, seg := range mod.Data {
		m.Mem().WriteBytes(heapBase+uint64(seg.Offset), seg.Bytes)
	}

	if scheme == sfi.HFI {
		if err := inst.setupHFI(); err != nil {
			return nil, err
		}
	} else if rt.WrapNative {
		if err := inst.setupNativeWrap(); err != nil {
			return nil, err
		}
	}
	rt.instances = append(rt.instances, inst)
	return inst, nil
}

// mapAux maps the power-of-two aligned globals+stack block.
func (rt *Runtime) mapAux(size uint64) (uint64, error) {
	base, err := rt.M.AS.MapAligned(size, size, kernel.ProtRead|kernel.ProtWrite)
	if err != nil {
		return 0, err
	}
	rt.M.Kern.Clock.Advance(rt.M.Kern.Costs.MmapReserve)
	return base, nil
}

// mapHeap reserves and commits the linear memory per the scheme's policy.
func (rt *Runtime) mapHeap(mod *wasm.Module, scheme sfi.Scheme) (base, reserved uint64, err error) {
	m := rt.M
	initBytes := uint64(mod.MemPages) * wasm.PageSize
	maxBytes := uint64(mod.MaxPages) * wasm.PageSize
	switch {
	case scheme.NeedsGuardReservation():
		// The classic Wasm layout: 8 GiB reserved without permissions,
		// then the initial pages made accessible with mprotect (§2).
		// The reservation is aligned to its own (power-of-two) size so a
		// native-wrap implicit region can cover it exactly.
		base, err = m.AS.MapAligned(GuardReservation, GuardReservation, kernel.ProtNone)
		if err != nil {
			return 0, 0, err
		}
		m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
		if initBytes > 0 {
			if err := m.Kern.Mprotect(m.AS, base, initBytes, kernel.ProtRead|kernel.ProtWrite); err != nil {
				return 0, 0, err
			}
		}
		return base, GuardReservation, nil
	case scheme == sfi.Masking:
		// Masking memories are fixed power-of-two size, followed by a
		// PROT_NONE redzone absorbing the displacement overhang of masked
		// accesses (the mask covers the index, not the full EA).
		reserved = wasm.HeapReservation(scheme, initBytes, maxBytes)
		base, err = m.AS.MapAligned(reserved, wasm.PageSize, kernel.ProtNone)
		if err != nil {
			return 0, 0, err
		}
		m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
		if initBytes > 0 {
			if err := m.Kern.Mprotect(m.AS, base, initBytes, kernel.ProtRead|kernel.ProtWrite); err != nil {
				return 0, 0, err
			}
		}
		return base, reserved, nil
	default:
		// BoundsCheck and HFI: reserve up to the maximum, all RW; the
		// bound (register or HFI region) enforces the accessible limit,
		// so no guard pages and no mprotect on growth.
		reserved = wasm.HeapReservation(scheme, initBytes, maxBytes)
		base, err = m.AS.MapAligned(reserved, wasm.PageSize, kernel.ProtRead|kernel.ProtWrite)
		if err != nil {
			return 0, 0, err
		}
		m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)
		return base, reserved, nil
	}
}

// setupHFI writes the instance's sandbox_t and region-descriptor table
// into the globals page and assembles the entry springboard.
func (inst *Instance) setupHFI() error {
	m := inst.RT.M
	g := inst.AuxBase + auxGlobals

	// Region descriptor table at g+256: code region, aux data region,
	// explicit heap region.
	const tableOff = 256
	table := g + tableOff
	type entry struct {
		num  int
		body [hfi.RegionTSize]byte
	}
	entries := []entry{
		{hfi.RegionCodeBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: inst.CodeBase, LSBMask: inst.CodeSize - 1, Exec: true,
		})},
		{hfi.RegionDataBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: inst.AuxBase, LSBMask: inst.AuxSize - 1, Read: true, Write: true,
		})},
		{hfi.RegionExplicitBase + sfi.HeapRegion, hfi.EncodeExplicitRegion(hfi.ExplicitRegion{
			Base: inst.HeapBase, Bound: uint64(inst.CurPages) * wasm.PageSize,
			Read: true, Write: true, Large: true,
		})},
	}
	// Secondary linear memories bind to explicit regions 1..3 — the
	// multi-memory support §3.3.1 sketches, with no per-access cost.
	// Zero-page placeholders get an empty region (every access faults)
	// until ShareBuffer re-points them.
	for k, base := range inst.ExtraMemBases {
		entries = append(entries, entry{
			hfi.RegionExplicitBase + sfi.HeapRegion + 1 + k,
			hfi.EncodeExplicitRegion(hfi.ExplicitRegion{
				Base: base, Bound: uint64(inst.C.Module.ExtraMemories[k]) * wasm.PageSize,
				Read: true, Write: true, Large: true,
			}),
		})
	}
	for i, e := range entries {
		off := table + uint64(i)*hfi.RegionEntrySize
		m.Mem().Write(off, 8, uint64(e.num))
		m.Mem().WriteBytes(off+8, e.body[:])
	}
	inst.regionTable = table
	inst.regionCount = len(entries)

	// sandbox_t at g+128.
	inst.sandboxT = g + 128
	cfg := hfi.Config{
		Hybrid:       true,
		Serialized:   inst.RT.Serialized,
		SwitchOnExit: inst.RT.SwitchOnExit,
		RegionsPtr:   table,
		RegionCount:  uint64(len(entries)),
	}
	sb := hfi.EncodeSandboxT(cfg)
	m.Mem().WriteBytes(inst.sandboxT, sb[:])

	// Springboard at the head of the code block: load the sandbox_t
	// pointer, enter, jump to the module entry.
	b := isa.NewBuilder(inst.CodeBase)
	b.MovImm(isa.R6, int64(inst.sandboxT))
	b.HfiEnter(isa.R6)
	b.JmpAddr(inst.C.Prog.Entry("__start"))
	inst.springProg = b.Build()
	if err := m.LoadPrelinked(inst.springProg); err != nil {
		return err
	}
	inst.EntryPC = inst.CodeBase
	return nil
}

// Invoke runs the instance's run function with up to six integer
// arguments, returning the engine result and the function result (R0).
func (inst *Instance) Invoke(eng cpu.Engine, limit uint64, args ...uint64) (cpu.RunResult, uint64) {
	m := inst.RT.M
	for i, a := range args {
		m.Regs[isa.Reg(i)] = a
	}
	m.PC = inst.EntryPC
	res := eng.Run(limit)
	if inst.wrapped && m.HFI.Enabled {
		// The trusted runtime leaves the native wrap after the guest
		// halts; a serialized exit pays the drain cost.
		exit := m.HFI.Exit()
		if exit.Serialize {
			m.Kern.Clock.AdvanceCycles(hfi.SerializeCycles, kernel.CoreGHz)
		}
	}
	return res, m.Regs[isa.R0]
}

// setupNativeWrap builds an HFI *native* springboard around an instance
// compiled under a software scheme: implicit regions cover the code block,
// the aux block, and the whole heap reservation; syscalls and exits
// redirect to the host.
func (inst *Instance) setupNativeWrap() error {
	m := inst.RT.M
	g := inst.AuxBase + auxGlobals
	const tableOff = 512
	table := g + tableOff
	entries := []struct {
		num  int
		body [hfi.RegionTSize]byte
	}{
		{hfi.RegionCodeBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: inst.CodeBase, LSBMask: inst.CodeSize - 1, Exec: true,
		})},
		{hfi.RegionDataBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: inst.AuxBase, LSBMask: inst.AuxSize - 1, Read: true, Write: true,
		})},
		{hfi.RegionDataBase + 1, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: inst.HeapBase, LSBMask: inst.HeapReserved - 1, Read: true, Write: true,
		})},
	}
	for i, e := range entries {
		off := table + uint64(i)*hfi.RegionEntrySize
		m.Mem().Write(off, 8, uint64(e.num))
		m.Mem().WriteBytes(off+8, e.body[:])
	}
	inst.sandboxT = g + 448
	cfg := hfi.Config{
		Hybrid:       false,
		Serialized:   inst.RT.Serialized,
		SwitchOnExit: inst.RT.SwitchOnExit,
		ExitHandler:  cpu.HostReturn,
		RegionsPtr:   table,
		RegionCount:  uint64(len(entries)),
	}
	sb := hfi.EncodeSandboxT(cfg)
	m.Mem().WriteBytes(inst.sandboxT, sb[:])

	b := isa.NewBuilder(inst.CodeBase)
	b.MovImm(isa.R6, int64(inst.sandboxT))
	b.HfiEnter(isa.R6)
	b.JmpAddr(inst.C.Prog.Entry("__start"))
	inst.springProg = b.Build()
	if err := m.LoadPrelinked(inst.springProg); err != nil {
		return err
	}
	inst.EntryPC = inst.CodeBase
	inst.wrapped = true
	return nil
}

// WriteHeap copies host data into the instance's linear memory.
func (inst *Instance) WriteHeap(off uint32, data []byte) {
	inst.RT.M.Mem().WriteBytes(inst.HeapBase+uint64(off), data)
}

// ReadHeap copies from linear memory into a host buffer.
func (inst *Instance) ReadHeap(off uint32, n int) []byte {
	buf := make([]byte, n)
	inst.RT.M.Mem().ReadBytes(inst.HeapBase+uint64(off), buf)
	return buf
}

// WriteMem and ReadMem are the multi-memory variants of WriteHeap/ReadHeap
// (mem 0 is the primary heap).
func (inst *Instance) WriteMem(mem int, off uint32, data []byte) {
	base := inst.HeapBase
	if mem > 0 {
		base = inst.ExtraMemBases[mem-1]
	}
	inst.RT.M.Mem().WriteBytes(base+uint64(off), data)
}

// ReadMem copies from linear memory mem into a host buffer.
func (inst *Instance) ReadMem(mem int, off uint32, n int) []byte {
	base := inst.HeapBase
	if mem > 0 {
		base = inst.ExtraMemBases[mem-1]
	}
	buf := make([]byte, n)
	inst.RT.M.Mem().ReadBytes(base+uint64(off), buf)
	return buf
}

// SyncPages refreshes the host-side page-count mirror after guest growth.
func (inst *Instance) SyncPages() {
	inst.CurPages = int(inst.RT.M.Mem().Read(inst.C.Layout.GlobalBase+0, 8))
}

// ShareBuffer grants the instance in-place, byte-granular access to an
// arbitrary host buffer through a small explicit region (§3.2: "existing
// buffers can be shared in-place without changing code or allocators").
// The module must have declared linear memory `mem` (1-3); its explicit
// region is re-pointed at [addr, addr+size), so the guest's
// LoadMem/StoreMem against that memory index operate on the shared object
// directly. Only the HFI scheme can do this: software schemes have no
// byte-granular mechanism (the paper's point), so sharing there means
// copying.
func (inst *Instance) ShareBuffer(mem int, addr, size uint64, writable bool) error {
	if inst.C.Scheme != sfi.HFI {
		return fmt.Errorf("sandbox: in-place sharing requires HFI (scheme %v shares by copying)", inst.C.Scheme)
	}
	if mem < 1 || mem > hfi.NumExplicitRegions-1 || mem > len(inst.C.Module.ExtraMemories) {
		return fmt.Errorf("sandbox: memory index %d not declared", mem)
	}
	r := hfi.ExplicitRegion{Base: addr, Bound: size, Read: true, Write: writable}
	if err := r.Validate(); err != nil {
		return err
	}
	// Rewrite the region-table entry for this memory's explicit region;
	// the springboard's hfi_enter reloads the table on the next entry.
	num := hfi.RegionExplicitBase + sfi.HeapRegion + mem
	m := inst.RT.M
	for i := 0; i < inst.regionCount; i++ {
		off := inst.regionTable + uint64(i)*hfi.RegionEntrySize
		if int(m.Mem().Read(off, 8)) != num {
			continue
		}
		body := hfi.EncodeExplicitRegion(r)
		m.Mem().WriteBytes(off+8, body[:])
		return nil
	}
	return fmt.Errorf("sandbox: no region-table entry for memory %d", mem)
}

// Reset returns a warm instance to its post-Instantiate state so a pool can
// safely hand it to the next request stream after an aborted run (fuel
// exhaustion, fault): any dangling HFI context is exited, the heap image is
// discarded and the module's data segments replayed, and the page-count
// global and host mirror are restored. Code, the aux block (globals page,
// region table, sandbox_t) and the HFI region programming are untouched —
// the springboard's hfi_enter reloads the region table on the next Invoke,
// which also undoes any in-sandbox hfi_set_region growth. After Reset the
// next Invoke behaves exactly like the first.
func (inst *Instance) Reset() {
	m := inst.RT.M
	if m.HFI.Enabled {
		// An aborted run can stop mid-sandbox; leave it before reuse so the
		// next springboard entry starts from a clean context.
		m.HFI.Exit()
	}
	m.Kern.Madvise(m.AS, inst.HeapBase, inst.HeapReserved)
	mod := inst.C.Module
	lay := inst.C.Layout
	m.Mem().Write(lay.GlobalBase+0, 8, uint64(mod.MemPages)) // gCurPages
	for _, seg := range mod.Data {
		m.Mem().WriteBytes(inst.HeapBase+uint64(seg.Offset), seg.Bytes)
	}
	for i, base := range inst.ExtraMemBases {
		if inst.ExtraMemReserved[i] > 0 {
			m.Kern.Madvise(m.AS, base, inst.ExtraMemReserved[i])
		}
	}
	inst.CurPages = mod.MemPages
}

// HeapHash digests the instance's initial heap image — the module's
// declared initial pages — with FNV-1a. Right after Instantiate (and right
// after a correct Reset) the hash equals the cold-instance hash: data
// segments replayed, everything else zero. A warm pool uses it as the
// verified-reset check before reusing a faulted instance: any state a
// buggy or bypassed Reset leaves behind in the initial pages changes the
// hash, so a poisoned instance is detectable without reference to another
// instance. Pages grown past the initial size are not hashed (Reset
// discards them wholesale and restores the page count, which callers can
// check via CurPages).
func (inst *Instance) HeapHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mem := inst.RT.M.Mem()
	total := uint64(inst.C.Module.MemPages) * wasm.PageSize
	buf := make([]byte, 64<<10)
	for off := uint64(0); off < total; off += uint64(len(buf)) {
		n := total - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		chunk := buf[:n]
		mem.ReadBytes(inst.HeapBase+off, chunk)
		for _, b := range chunk {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}

// InitialHeapBytes returns the byte size of the initial heap pages — the
// range HeapHash covers and the live target region for substrate bit
// flips (a flip beyond it lands in reservation pages no verified-reset
// audit hashes and no un-grown guest reads).
func (inst *Instance) InitialHeapBytes() uint64 {
	return uint64(inst.C.Module.MemPages) * wasm.PageSize
}

// AuditHeapHash is the cost-modeled HeapHash used by the host's sampled
// end-of-request spot checks: identical hash, but the scrub pays simulated
// time per hashed page on the instance's kernel clock, so detection
// coverage shows up on the simulated timeline instead of being free.
func (inst *Instance) AuditHeapHash() uint64 {
	pages := uint64(inst.C.Module.MemPages)
	k := inst.RT.M.Kern
	k.Clock.Advance(k.Costs.SyscallBase + pages*k.Costs.AuditHashPerPage)
	return inst.HeapHash()
}

// FlipHeapBit XORs a single-bit mask into the heap byte at off — the
// substrate bit-flip seam. It writes through mem.Memory directly, below
// the MMU and HFI checks, because the fault it models (a DRAM upset)
// does not consult them.
func (inst *Instance) FlipHeapBit(off uint64, mask byte) {
	inst.RT.M.Mem().FlipBits(inst.HeapBase+off, mask)
}

// Teardown discards the instance's memory image with one madvise call over
// its committed heap, the way stock Wasmtime recycles instance slots
// (§5.1). Guard reservations are not touched — the per-sandbox strategy
// never pays for them; only batching across sandboxes does (§6.3.1).
func (inst *Instance) Teardown() {
	m := inst.RT.M
	used := uint64(inst.CurPages) * wasm.PageSize
	if used == 0 || used > inst.HeapReserved {
		used = inst.HeapReserved
	}
	m.Kern.Madvise(m.AS, inst.HeapBase, used)
}

// TeardownBatch discards a set of instances' memory images with a single
// madvise spanning all of them — HFI-Wasmtime's optimization (§5.1). The
// span includes whatever lies between the heaps: nothing for HFI instances
// (heaps are adjacent), guard reservations for guard-page instances (which
// is why batching without HFI costs more, §6.3.1).
func (rt *Runtime) TeardownBatch(instances []*Instance) error {
	if len(instances) == 0 {
		return nil
	}
	lo, hi := ^uint64(0), uint64(0)
	for _, inst := range instances {
		if inst.HeapBase < lo {
			lo = inst.HeapBase
		}
		if end := inst.HeapBase + inst.HeapReserved; end > hi {
			hi = end
		}
	}
	rt.M.Kern.Madvise(rt.M.AS, lo, hi-lo)
	return nil
}

// Destroy unmaps all instance memory (full teardown, not slot reuse).
func (inst *Instance) Destroy() error {
	m := inst.RT.M
	if err := m.Kern.Munmap(m.AS, inst.HeapBase, inst.HeapReserved); err != nil {
		return fmt.Errorf("sandbox: heap unmap: %w", err)
	}
	if err := m.Kern.Munmap(m.AS, inst.AuxBase, inst.AuxSize); err != nil {
		return fmt.Errorf("sandbox: aux unmap: %w", err)
	}
	return nil
}

package stats

import (
	"sync"
	"testing"
)

// TestRecorderConcurrent hammers one recorder from many goroutines and
// checks that no records are lost and the percentiles are coherent. Run
// under -race this is also the recorder's data-race test.
func TestRecorderConcurrent(t *testing.T) {
	const (
		writers = 8
		each    = 1000
	)
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				switch i % 4 {
				case 0, 1:
					r.Record(OutcomeOK, float64(w*each+i))
				case 2:
					r.Record(OutcomeTimeout, float64(i))
				case 3:
					if i%8 == 3 {
						r.Record(OutcomeShed, 0)
					} else {
						r.Record(OutcomeFault, float64(i))
					}
				}
			}
		}(w)
	}
	// Concurrent snapshots must not disturb recording.
	for i := 0; i < 50; i++ {
		_ = r.Snapshot(1e9)
	}
	wg.Wait()

	s := r.Snapshot(2e9)
	if s.OK != writers*each/2 {
		t.Fatalf("OK = %d, want %d", s.OK, writers*each/2)
	}
	if s.Timeouts != writers*each/4 {
		t.Fatalf("timeouts = %d, want %d", s.Timeouts, writers*each/4)
	}
	if s.Shed+s.Faults != writers*each/4 {
		t.Fatalf("shed+faults = %d, want %d", s.Shed+s.Faults, writers*each/4)
	}
	if s.Executed() != s.OK+s.Timeouts+s.Faults {
		t.Fatalf("Executed() = %d inconsistent", s.Executed())
	}
	if s.P50Ns > s.P99Ns || s.P99Ns > s.P999Ns || s.P999Ns > s.MaxNs {
		t.Fatalf("percentiles out of order: %+v", s)
	}
	wantTput := float64(s.Executed()) / 2.0
	if s.ThroughputRPS != wantTput {
		t.Fatalf("throughput = %v, want %v", s.ThroughputRPS, wantTput)
	}
	wantShed := float64(s.Shed) / float64(s.Executed()+s.Shed)
	if s.ShedRate != wantShed {
		t.Fatalf("shed rate = %v, want %v", s.ShedRate, wantShed)
	}
}

// TestRecorderEmpty: a fresh recorder snapshots to zeros without panicking.
func TestRecorderEmpty(t *testing.T) {
	s := NewRecorder().Snapshot(0)
	if s.Executed() != 0 || s.P99Ns != 0 || s.ThroughputRPS != 0 || s.ShedRate != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestRecorderPerTenant: RecordTenant feeds both the global view (exactly
// as Record would) and the tenant breakdown; conservation holds per tenant
// and p99s are per-tenant, not global.
func TestRecorderPerTenant(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.RecordTenant("fast", OutcomeOK, 10)
	}
	for i := 0; i < 50; i++ {
		r.RecordTenant("slow", OutcomeOK, 1000)
	}
	r.RecordTenant("slow", OutcomeTimeout, 5000)
	r.RecordTenant("slow", OutcomeFault, 2000)
	r.RecordTenant("slow", OutcomeShed, 0)
	r.RecordTenant("slow", OutcomeRejected, 0)

	g := r.Snapshot(0)
	if g.OK != 150 || g.Timeouts != 1 || g.Faults != 1 || g.Shed != 1 || g.Rejected != 1 {
		t.Fatalf("global view wrong: %+v", g)
	}

	ts := r.TenantSummaries()
	if len(ts) != 2 || ts[0].Tenant != "fast" || ts[1].Tenant != "slow" {
		t.Fatalf("tenants = %+v", ts)
	}
	fast, slow := ts[0], ts[1]
	if fast.OK != 100 || fast.Admitted() != 100 {
		t.Fatalf("fast = %+v", fast)
	}
	if slow.OK != 50 || slow.Timeouts != 1 || slow.Faults != 1 || slow.Shed != 1 || slow.Rejected != 1 {
		t.Fatalf("slow = %+v", slow)
	}
	if slow.Admitted() != 54 || slow.Executed() != 52 {
		t.Fatalf("slow conservation: %+v", slow)
	}
	if fast.P99Ns != 10 {
		t.Fatalf("fast p99 = %v, want 10 (per-tenant, not global)", fast.P99Ns)
	}
	if slow.P99Ns < 1000 {
		t.Fatalf("slow p99 = %v, want >= 1000", slow.P99Ns)
	}
	if got := r.Tenant("slow"); got.OK != 50 {
		t.Fatalf("Tenant(slow) = %+v", got)
	}
	if got := r.Tenant("nope"); got.Admitted() != 0 {
		t.Fatalf("Tenant(nope) = %+v", got)
	}
}

// TestRecorderPerTenantConcurrent: per-tenant attribution under concurrent
// writers loses nothing (run with -race).
func TestRecorderPerTenantConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const writers, each = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"a", "b"}[w%2]
			for i := 0; i < each; i++ {
				r.RecordTenant(name, OutcomeOK, float64(i))
			}
		}(w)
	}
	wg.Wait()
	for _, name := range []string{"a", "b"} {
		if got := r.Tenant(name).OK; got != writers/2*each {
			t.Fatalf("%s OK = %d, want %d", name, got, writers/2*each)
		}
	}
	if g := r.Snapshot(0); g.OK != writers*each {
		t.Fatalf("global OK = %d", g.OK)
	}
}

// TestRecorderShedOnly: sheds never contribute latency samples.
func TestRecorderShedOnly(t *testing.T) {
	r := NewRecorder()
	r.Record(OutcomeShed, 12345) // latency argument must be ignored
	s := r.Snapshot(1e9)
	if s.Shed != 1 || s.MaxNs != 0 || s.ThroughputRPS != 0 {
		t.Fatalf("shed-only snapshot = %+v", s)
	}
	if s.ShedRate != 1 {
		t.Fatalf("shed rate = %v, want 1", s.ShedRate)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OutcomeOK: "ok", OutcomeTimeout: "timeout", OutcomeFault: "fault", OutcomeShed: "shed"} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}

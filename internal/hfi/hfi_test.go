package hfi

import (
	"testing"
	"testing/quick"
)

func TestImplicitRegionValidate(t *testing.T) {
	cases := []struct {
		r  ImplicitRegion
		ok bool
	}{
		{ImplicitRegion{BasePrefix: 0x10000, LSBMask: 0xffff}, true},
		{ImplicitRegion{BasePrefix: 0, LSBMask: 0}, true},             // 1-byte region
		{ImplicitRegion{BasePrefix: 0x10000, LSBMask: 0xfffe}, false}, // not 2^k-1
		{ImplicitRegion{BasePrefix: 0x18000, LSBMask: 0xffff}, false}, // misaligned
		{ImplicitRegion{BasePrefix: 1 << 40, LSBMask: (1 << 30) - 1}, true},
	}
	for i, c := range cases {
		if err := c.r.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestExplicitRegionValidate(t *testing.T) {
	cases := []struct {
		r  ExplicitRegion
		ok bool
	}{
		// Large regions: 64 KiB granular, up to 256 TiB.
		{ExplicitRegion{Base: 0x10000, Bound: 0x20000, Large: true}, true},
		{ExplicitRegion{Base: 0x10001, Bound: 0x10000, Large: true}, false}, // unaligned base
		{ExplicitRegion{Base: 0x10000, Bound: 0x10001, Large: true}, false}, // unaligned bound
		{ExplicitRegion{Base: 0, Bound: LargeRegionMaxBound, Large: true}, true},
		{ExplicitRegion{Base: 0, Bound: LargeRegionMaxBound + 0x10000, Large: true}, false},
		// Small regions: byte granular up to 4 GiB, no 4 GiB crossing.
		{ExplicitRegion{Base: 0x12345, Bound: 0x333}, true},
		{ExplicitRegion{Base: 0xffff0000, Bound: 0x20000}, false}, // crosses 4 GiB
		{ExplicitRegion{Base: 1<<32 - 1, Bound: 1}, true},         // last byte below the boundary
		{ExplicitRegion{Base: 0, Bound: SmallRegionMaxBound + 1}, false},
	}
	for i, c := range cases {
		if err := c.r.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

// TestImplicitContainsProperty: prefix matching is exactly range membership
// for power-of-two aligned regions.
func TestImplicitContainsProperty(t *testing.T) {
	prop := func(baseSeed uint64, sizeBits uint8, addr uint64) bool {
		bits := uint(sizeBits%32) + 4 // 16 B .. sizeable
		size := uint64(1) << bits
		base := (baseSeed << bits) & ((1 << 47) - 1) // aligned base within VA
		r := ImplicitRegion{BasePrefix: base, LSBMask: size - 1, Valid: true}
		inRange := addr >= base && addr < base+size
		return r.Contains(addr) == inRange
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func newTestState(t *testing.T) *State {
	t.Helper()
	s := NewState()
	if f := s.SetCodeRegion(0, ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true}); f != nil {
		t.Fatal(f)
	}
	if f := s.SetDataRegion(0, ImplicitRegion{BasePrefix: 0x100000, LSBMask: 0xffff, Read: true, Write: true}); f != nil {
		t.Fatal(f)
	}
	if f := s.SetDataRegion(1, ImplicitRegion{BasePrefix: 0x200000, LSBMask: 0xffff, Read: true}); f != nil {
		t.Fatal(f)
	}
	if f := s.SetExplicitRegion(0, ExplicitRegion{Base: 0x300000, Bound: 0x10000, Read: true, Write: true, Large: true}); f != nil {
		t.Fatal(f)
	}
	return s
}

func TestCheckDataFirstMatch(t *testing.T) {
	s := newTestState(t)
	s.Enter(Config{Hybrid: true})

	if f := s.CheckData(0x100010, 8, true); f != nil {
		t.Fatalf("rw region write: %v", f)
	}
	if f := s.CheckData(0x200010, 8, false); f != nil {
		t.Fatalf("ro region read: %v", f)
	}
	f := s.CheckData(0x200010, 8, true)
	if f == nil || f.Reason != FaultDataPerm {
		t.Fatalf("ro region write: fault = %v, want data-perm", f)
	}
	// Faults disable the sandbox.
	if s.Enabled {
		t.Fatal("sandbox still enabled after fault")
	}

	// Re-enter; out-of-all-regions access faults with data-bounds.
	if _, f := s.Reenter(); f != nil {
		t.Fatal(f)
	}
	f = s.CheckData(0x500000, 1, false)
	if f == nil || f.Reason != FaultDataBounds {
		t.Fatalf("unmatched access: fault = %v, want data-bounds", f)
	}

	// An access straddling the region edge faults.
	if _, f := s.Reenter(); f != nil {
		t.Fatal(f)
	}
	if f := s.CheckData(0x10fffc, 8, false); f == nil {
		t.Fatal("straddling access did not fault")
	}
}

func TestCheckDataDisabledPasses(t *testing.T) {
	s := NewState()
	if f := s.CheckData(0xdeadbeef, 8, true); f != nil {
		t.Fatalf("disabled HFI should not check: %v", f)
	}
	if f := s.CheckExec(0xdeadbeef); f != nil {
		t.Fatalf("disabled HFI should not check fetches: %v", f)
	}
}

func TestExplicitEASemantics(t *testing.T) {
	s := newTestState(t)
	s.Enter(Config{Hybrid: true})

	ea, f := s.ExplicitEA(0, 0x100, 4, 0x20, 8, true)
	if f != nil {
		t.Fatal(f)
	}
	if want := uint64(0x300000 + 0x100*4 + 0x20); ea != want {
		t.Fatalf("ea = %#x, want %#x", ea, want)
	}

	// Exactly at the bound: last byte must fit.
	if _, f := s.ExplicitEA(0, 0x10000-8, 1, 0, 8, false); f != nil {
		t.Fatalf("at-bound access: %v", f)
	}
	if _, f := s.ExplicitEA(0, 0x10000-7, 1, 0, 8, false); f == nil {
		t.Fatal("one-past-bound access did not fault")
	}

	// Negative index and displacement trap (the hmov sign checks).
	s.Reenter()
	if _, f := s.ExplicitEA(0, ^uint64(0), 1, 0, 1, false); f == nil || f.Reason != FaultExplicitNegative {
		t.Fatalf("negative index: %v", f)
	}
	s.Reenter()
	if _, f := s.ExplicitEA(0, 0, 1, -8, 1, false); f == nil || f.Reason != FaultExplicitNegative {
		t.Fatalf("negative displacement: %v", f)
	}

	// Overflowing effective-address computation traps.
	s.Reenter()
	if _, f := s.ExplicitEA(0, 1<<62, 8, 0, 1, false); f == nil || f.Reason != FaultExplicitOverflow {
		t.Fatalf("overflow: %v", f)
	}

	// Cleared region traps.
	s.Reenter()
	if f := s.ClearRegion(RegionExplicitBase + 0); f != nil {
		t.Fatal(f)
	}
	if _, f := s.ExplicitEA(0, 0, 1, 0, 1, false); f == nil || f.Reason != FaultExplicitInvalid {
		t.Fatalf("cleared region: %v", f)
	}
}

// TestExplicitEAProperty: every accepted access lies within [base,
// base+bound] and peek agrees with the mutating check.
func TestExplicitEAProperty(t *testing.T) {
	prop := func(index uint32, disp uint16, size8 bool) bool {
		s := NewState()
		s.SetExplicitRegion(0, ExplicitRegion{Base: 0x40000000, Bound: 0x100000, Read: true, Write: true})
		s.Enter(Config{Hybrid: true})
		size := uint8(1)
		if size8 {
			size = 8
		}
		peekEA, peekOK := s.PeekExplicitEA(0, uint64(index), 1, int64(disp), size, false)
		ea, f := s.ExplicitEA(0, uint64(index), 1, int64(disp), size, false)
		if (f == nil) != peekOK {
			return false
		}
		if f == nil {
			if ea != peekEA {
				return false
			}
			return ea >= 0x40000000 && ea+uint64(size) <= 0x40000000+0x100000
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNativeSandboxLocksRegions(t *testing.T) {
	s := newTestState(t)
	if _, f := s.Enter(Config{Hybrid: false}); f != nil {
		t.Fatal(f)
	}
	// All region updates must fault while a native sandbox runs.
	if f := s.SetDataRegion(0, ImplicitRegion{BasePrefix: 0, LSBMask: 0xfff}); f == nil {
		t.Fatal("native sandbox could update a region register")
	}
	// The fault also tore down the sandbox; restore and check clears too.
	s.Reenter()
	if f := s.ClearAllRegions(); f == nil {
		t.Fatal("native sandbox could clear regions")
	}
	// Nested enter is privileged.
	s.Reenter()
	if _, f := s.Enter(Config{Hybrid: true}); f == nil {
		t.Fatal("native sandbox could re-enter")
	}
}

func TestHybridSandboxUpdatesAllowed(t *testing.T) {
	s := newTestState(t)
	if _, f := s.Enter(Config{Hybrid: true}); f != nil {
		t.Fatal(f)
	}
	if f := s.SetExplicitRegion(1, ExplicitRegion{Base: 0x400000, Bound: 0x1000, Read: true}); f != nil {
		t.Fatalf("hybrid sandbox region update: %v", f)
	}
	if !s.RegionUpdateSerializes() {
		t.Fatal("in-sandbox region updates must serialize (§4.3)")
	}
	if !s.SyscallAllowed() {
		t.Fatal("hybrid sandboxes make direct syscalls")
	}
}

func TestExitAndMSR(t *testing.T) {
	s := newTestState(t)
	s.Enter(Config{Hybrid: false, ExitHandler: 0xcafe0000})
	res := s.Exit()
	if res.Handler != 0xcafe0000 {
		t.Fatalf("handler = %#x", res.Handler)
	}
	if s.Enabled {
		t.Fatal("still enabled after exit")
	}
	if r, _ := s.ReadMSR(); r != ExitInstruction {
		t.Fatalf("MSR = %v", r)
	}

	// Syscall exit records the syscall number.
	s.Reenter()
	res = s.SyscallExit(42)
	if res.Handler != 0xcafe0000 {
		t.Fatal("syscall exit lost the handler")
	}
	if r, info := s.ReadMSR(); r != ExitSyscall || info != 42 {
		t.Fatalf("MSR = %v/%d", r, info)
	}
}

func TestSwitchOnExit(t *testing.T) {
	s := newTestState(t)
	// The trusted runtime enters its own hybrid sandbox.
	if _, f := s.Enter(Config{Hybrid: true, Serialized: true}); f != nil {
		t.Fatal(f)
	}
	runtimeBank := s.Bank

	// Enter a child with switch-on-exit and different regions.
	if f := s.SetDataRegion(0, ImplicitRegion{BasePrefix: 0x700000, LSBMask: 0xfff, Read: true}); f != nil {
		t.Fatal(f)
	}
	childRegion := s.Bank.Data[0]
	if _, f := s.Enter(Config{Hybrid: true, SwitchOnExit: true}); f != nil {
		t.Fatal(f)
	}
	if s.Bank.Data[0] != childRegion {
		t.Fatal("child bank lost its region")
	}

	// Exit switches back to the saved bank instead of disabling HFI.
	res := s.Exit()
	if !res.SwitchedBack {
		t.Fatal("exit did not switch back")
	}
	if !s.Enabled {
		t.Fatal("switch-on-exit exit disabled HFI")
	}
	if s.Bank.Cfg != runtimeBank.Cfg {
		t.Fatal("restored config differs")
	}
	// A second exit (the runtime's own) disables HFI.
	res = s.Exit()
	if res.SwitchedBack || s.Enabled {
		t.Fatal("runtime exit should disable HFI")
	}
}

func TestXsaveRoundtrip(t *testing.T) {
	s := newTestState(t)
	s.Enter(Config{Hybrid: true, Serialized: true, ExitHandler: 0x1234})
	s.MSR = ExitSyscall
	img := s.Xsave()

	var r State
	r.Xrstor(img[:])
	if r.Enabled != s.Enabled || r.MSR != s.MSR {
		t.Fatal("mode/MSR not restored")
	}
	if r.Bank.Cfg != s.Bank.Cfg {
		t.Fatalf("config not restored: %+v vs %+v", r.Bank.Cfg, s.Bank.Cfg)
	}
	if r.Bank.Data != s.Bank.Data || r.Bank.Code != s.Bank.Code || r.Bank.Expl != s.Bank.Expl {
		t.Fatal("regions not restored")
	}
}

// TestXsaveRoundtripProperty: arbitrary saved states restore exactly.
func TestXsaveRoundtripProperty(t *testing.T) {
	prop := func(base uint64, bits uint8, read, write, hybrid, enabled bool) bool {
		var s State
		size := uint64(1) << (4 + bits%28)
		s.Bank.Data[2] = ImplicitRegion{
			BasePrefix: base &^ (size - 1), LSBMask: size - 1,
			Read: read, Write: write, Valid: true,
		}
		s.Bank.Cfg = Config{Hybrid: hybrid, ExitHandler: base ^ 0x5555}
		s.Enabled = enabled
		img := s.Xsave()
		var r State
		r.Xrstor(img[:])
		return r.Bank.Data == s.Bank.Data && r.Bank.Cfg == s.Bank.Cfg && r.Enabled == s.Enabled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutRoundtrip(t *testing.T) {
	ir := ImplicitRegion{BasePrefix: 0xabc000, LSBMask: 0xfff, Read: true, Exec: true}
	buf := EncodeImplicitRegion(ir)
	got := DecodeImplicitRegion(buf[:])
	if got.BasePrefix != ir.BasePrefix || got.LSBMask != ir.LSBMask || got.Read != ir.Read || got.Exec != ir.Exec {
		t.Fatalf("implicit roundtrip: %+v vs %+v", got, ir)
	}

	er := ExplicitRegion{Base: 0x10000, Bound: 0x40000, Write: true, Large: true}
	ebuf := EncodeExplicitRegion(er)
	egot := DecodeExplicitRegion(ebuf[:])
	if egot.Base != er.Base || egot.Bound != er.Bound || egot.Write != er.Write || egot.Large != er.Large {
		t.Fatalf("explicit roundtrip: %+v vs %+v", egot, er)
	}

	cfg := Config{Hybrid: true, Serialized: true, SwitchOnExit: true, ExitHandler: 0xdead, RegionsPtr: 0xbeef, RegionCount: 3}
	sbuf := EncodeSandboxT(cfg)
	if got := DecodeSandboxT(sbuf[:]); got != cfg {
		t.Fatalf("sandbox_t roundtrip: %+v vs %+v", got, cfg)
	}
}

func TestRegionNumbering(t *testing.T) {
	s := NewState()
	// Program each region through the flat-number interface.
	ir := EncodeImplicitRegion(ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true})
	if f := s.SetRegionByNumber(0, ir[:]); f != nil {
		t.Fatal(f)
	}
	dr := EncodeImplicitRegion(ImplicitRegion{BasePrefix: 0x10000, LSBMask: 0xffff, Read: true})
	if f := s.SetRegionByNumber(RegionDataBase, dr[:]); f != nil {
		t.Fatal(f)
	}
	er := EncodeExplicitRegion(ExplicitRegion{Base: 0x20000, Bound: 0x10000, Read: true, Large: true})
	if f := s.SetRegionByNumber(RegionExplicitBase, er[:]); f != nil {
		t.Fatal(f)
	}
	if !s.Bank.Code[0].Valid || !s.Bank.Data[0].Valid || !s.Bank.Expl[0].Valid {
		t.Fatal("regions not set")
	}
	// Out-of-range number faults.
	if f := s.SetRegionByNumber(NumRegions, ir[:]); f == nil {
		t.Fatal("out-of-range region number accepted")
	}
	// Get round-trips.
	buf, ok := s.GetRegionByNumber(RegionExplicitBase)
	if !ok {
		t.Fatal("get failed")
	}
	if got := DecodeExplicitRegion(buf[:]); got.Base != 0x20000 {
		t.Fatalf("get returned %+v", got)
	}
}

func TestReenterWithoutExitFaults(t *testing.T) {
	s := NewState()
	if _, f := s.Reenter(); f == nil {
		t.Fatal("reenter with no prior sandbox should fault")
	}
}

func TestCodeRegionDropsDataPerms(t *testing.T) {
	s := NewState()
	if f := s.SetCodeRegion(0, ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Read: true, Write: true, Exec: true}); f != nil {
		t.Fatal(f)
	}
	if s.Bank.Code[0].Read || s.Bank.Code[0].Write {
		t.Fatal("code regions must carry only execute permission")
	}
	if f := s.SetDataRegion(0, ImplicitRegion{BasePrefix: 0x2000, LSBMask: 0xfff, Read: true, Exec: true}); f != nil {
		t.Fatal(f)
	}
	if s.Bank.Data[0].Exec {
		t.Fatal("data regions must not grant execute")
	}
}

// TestXsavePreservesSwitchOnExitBank: a context switch in the middle of a
// switch-on-exit nesting must preserve the saved trusted-runtime bank.
func TestXsavePreservesSwitchOnExitBank(t *testing.T) {
	s := newTestState(t)
	if _, f := s.Enter(Config{Hybrid: true, Serialized: true}); f != nil {
		t.Fatal(f)
	}
	runtimeCfg := s.Bank.Cfg
	if _, f := s.Enter(Config{Hybrid: true, SwitchOnExit: true}); f != nil {
		t.Fatal(f)
	}

	img := s.Xsave()
	var r State
	r.Xrstor(img[:])

	// The restored state must still switch back to the runtime bank.
	res := r.Exit()
	if !res.SwitchedBack || !r.Enabled {
		t.Fatal("restored state lost the shadow bank")
	}
	if r.Bank.Cfg != runtimeCfg {
		t.Fatalf("restored runtime config %+v, want %+v", r.Bank.Cfg, runtimeCfg)
	}
}

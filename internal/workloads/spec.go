package workloads

import (
	"hfi/internal/isa"
	"hfi/internal/wasm"
)

// SpecInt returns the SPEC INT 2006-like macro kernel suite of Fig 3. Each
// kernel is a synthetic analogue matched to the original's dominant
// behaviour (the property the scheme comparison is sensitive to): memory
// access density, branchiness, working-set size, and register pressure.
func SpecInt() []Workload {
	return []Workload{
		{"400.perlbench", Perlbench, "hash tables + string scanning"},
		{"401.bzip2", Bzip2, "block transform + RLE"},
		{"403.gcc", GCC, "table-driven state machine"},
		{"429.mcf", MCF, "pointer chasing, memory bound"},
		{"445.gobmk", Gobmk, "board evaluation, icache pressure"},
		{"456.hmmer", Hmmer, "dynamic-programming inner loop"},
		{"458.sjeng", Sjeng, "minimax search, branchy"},
		{"462.libquantum", Libquantum, "streaming bit manipulation"},
		{"464.h264ref", H264ref, "nested-loop block matching"},
	}
}

// Perlbench: hash insert/lookup over interned strings plus a scanner.
func Perlbench(scale int) *wasm.Module {
	m := wasm.NewModule("perlbench", 8, 8)
	f := m.Func("run", 0)
	// Hash table of 4096 u32 buckets at 0; key stream derived from a PRNG.
	s, h, idx, v, i, probes := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 8)
	f.MovImm(s, 0x1e3779b97f4a7c15)
	f.MovImm(probes, 0)
	f.MovImm(i, 0)
	f.Label("loop")
	f.ShlImm(h, s, 13)
	f.Xor(s, s, h)
	f.ShrImm(h, s, 7)
	f.Xor(s, s, h)
	// FNV-style mix of the key.
	f.Mul32Imm(h, s, 16777619)
	f.Xor32(h, h, s)
	f.And32Imm(idx, h, 4095)
	f.Shl32Imm(idx, idx, 2)
	// Linear probe: up to 4 buckets.
	for p := 0; p < 4; p++ {
		f.Load(4, v, idx, int64(p*4))
		f.BrImm(isa.CondEQ, v, 0, "insert")
		f.Br(isa.CondEQ, v, h, "found")
		f.Add32Imm(probes, probes, 1)
	}
	f.Jmp("next")
	f.Label("insert")
	f.Store(4, idx, 0, h)
	f.Jmp("next")
	f.Label("found")
	f.Add32Imm(probes, probes, 2)
	f.Label("next")
	pp.touchGated(f, i, 0xf)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(250_000*scale), "loop")
	pp.fold(f, probes)
	f.Ret(probes)
	return m
}

// Bzip2: move-to-front transform plus run-length counting over a block.
func Bzip2(scale int) *wasm.Module {
	m := wasm.NewModule("bzip2", 4, 4)
	f := m.Func("run", 0)
	// Block at 4096 (64 KiB), MTF table (256 bytes) at 0.
	rep, i, c, j, t, prev, runs := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	s := f.NewReg()
	pp := addPads(f, 6)
	f.MovImm(s, 0x243F6A8885A308D3)
	f.MovImm(i, 0)
	f.Label("fill")
	f.ShlImm(t, s, 13)
	f.Xor(s, s, t)
	f.ShrImm(t, s, 7)
	f.Xor(s, s, t)
	f.AndImm(c, s, 63) // small alphabet so MTF hits near the front
	f.Store(1, i, 4096, c)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 65536, "fill")
	f.MovImm(rep, 0)
	f.MovImm(runs, 0)
	f.Label("again")
	// Reset MTF table.
	f.MovImm(i, 0)
	f.Label("mtfinit")
	f.Store(1, i, 0, i)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 256, "mtfinit")
	f.MovImm(prev, -1)
	f.MovImm(i, 0)
	f.Label("scan")
	f.Load(1, c, i, 4096)
	// Find c's position in the MTF table (bounded scan).
	f.MovImm(j, 0)
	f.Label("find")
	f.Load(1, t, j, 0)
	f.Br(isa.CondEQ, t, c, "movefront")
	f.Add32Imm(j, j, 1)
	f.BrImm(isa.CondLT, j, 64, "find")
	f.Jmp("emit")
	f.Label("movefront")
	// Swap the hit to the front (transpose heuristic; hmov forbids
	// negative displacements so the index is adjusted explicitly).
	f.BrImm(isa.CondEQ, j, 0, "emit")
	f.Sub32Imm(j, j, 1)
	f.Load(1, t, j, 0)
	f.Store(1, j, 1, t)
	f.Store(1, j, 0, c)
	f.Label("emit")
	f.Br(isa.CondNE, c, prev, "newrun")
	f.Add32Imm(runs, runs, 1)
	f.Label("newrun")
	pp.touchGated(f, i, 0xff)
	f.Mov(prev, c)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 65536, "scan")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(4*scale), "again")
	pp.fold(f, runs)
	f.Ret(runs)
	return m
}

// GCC: a table-driven token state machine over a synthetic source buffer.
func GCC(scale int) *wasm.Module {
	m := wasm.NewModule("gcc", 4, 4)
	// Transition table: 16 states x 256 inputs, one byte each, at 0.
	table := make([]byte, 16*256)
	for st := 0; st < 16; st++ {
		for c := 0; c < 256; c++ {
			table[st*256+c] = byte((st*31 + c*17 + 7) % 16)
		}
	}
	m.AddData(0, table)
	src := make([]byte, 32768)
	for i := range src {
		src[i] = byte((i*i*31 + i*7) % 256)
	}
	m.AddData(8192, src)
	f := m.Func("run", 0)
	rep, st, i, c, idx, acc := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 8)
	f.MovImm(rep, 0)
	f.MovImm(acc, 0)
	f.Label("again")
	f.MovImm(st, 0)
	f.MovImm(i, 0)
	f.Label("step")
	f.Load(1, c, i, 8192)
	f.Shl32Imm(idx, st, 8)
	f.Add32(idx, idx, c)
	f.Load(1, st, idx, 0)
	f.BrImm(isa.CondNE, st, 7, "noacc")
	f.Add32Imm(acc, acc, 1)
	f.Label("noacc")
	pp.touchGated(f, i, 0xff)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 32768, "step")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(25*scale), "again")
	pp.fold(f, acc)
	f.Ret(acc)
	return m
}

// MCF: pointer chasing through a shuffled linked list — memory bound.
func MCF(scale int) *wasm.Module {
	m := wasm.NewModule("mcf", 32, 32)
	f := m.Func("run", 0)
	// Build a pseudo-random cyclic permutation of 2^17 nodes (8 bytes
	// each): node i points to (i*a+c) mod n with a odd, a permutation.
	const n = 1 << 17
	cur, next, i, hops := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 10)
	f.MovImm(i, 0)
	f.Label("build")
	f.Mul32Imm(next, i, 1664525)
	f.Add32Imm(next, next, 1013904223)
	f.And32Imm(next, next, n-1)
	f.Shl32Imm(cur, i, 3)
	f.Shl32Imm(next, next, 3)
	f.Store(4, cur, 0, next)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, n, "build")
	// Chase.
	f.MovImm(cur, 0)
	f.MovImm(hops, 0)
	f.MovImm(i, 0)
	f.Label("chase")
	f.Load(4, cur, cur, 0)
	f.Add32(hops, hops, cur)
	pp.touchGated(f, i, 0x3f)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, int64(600_000*scale), "chase")
	pp.fold(f, hops)
	f.Ret(hops)
	return m
}

// Gobmk: board-scan evaluation with a large straight-line body (icache
// pressure was the 445.gobmk effect the paper calls out in §6.1).
func Gobmk(scale int) *wasm.Module {
	m := wasm.NewModule("gobmk", 4, 4)
	f := m.Func("run", 0)
	rep, p, v, acc, t := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	s := f.NewReg()
	pp := addPads(f, 8)
	// Board: 19x19 bytes at 0.
	f.MovImm(s, 0x1234567)
	f.MovImm(p, 0)
	f.Label("init")
	f.ShlImm(t, s, 13)
	f.Xor(s, s, t)
	f.ShrImm(t, s, 7)
	f.Xor(s, s, t)
	f.AndImm(v, s, 2)
	f.Store(1, p, 0, v)
	f.Add32Imm(p, p, 1)
	f.BrImm(isa.CondLT, p, 361, "init")
	f.MovImm(rep, 0)
	f.MovImm(acc, 0)
	f.Label("again")
	f.MovImm(p, 20)
	f.Label("scan")
	// A long straight-line evaluation of the 8-neighbourhood, unrolled —
	// lots of code bytes per iteration.
	for _, d := range []int64{-20, -19, -18, -1, 1, 18, 19, 20} {
		f.Load(1, v, p, 340+d) // offset keeps indices positive
		f.Mul32Imm(v, v, 3)
		f.Add32(acc, acc, v)
		f.Load(1, t, p, 340-d)
		f.Xor32(t, t, v)
		f.And32Imm(t, t, 7)
		f.Add32(acc, acc, t)
	}
	pp.touchGated(f, p, 0xf)
	f.Add32Imm(p, p, 1)
	f.BrImm(isa.CondLT, p, 340, "scan")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(1500*scale), "again")
	pp.fold(f, acc)
	f.Ret(acc)
	return m
}

// Hmmer: Viterbi-like dynamic programming over dense score arrays.
func Hmmer(scale int) *wasm.Module {
	m := wasm.NewModule("hmmer", 8, 8)
	f := m.Func("run", 0)
	// Rows at 0 and 65536; scores at 131072... keep within 8 pages:
	// rows of 4096 u32 at 0 / 16384; scores at 32768.
	rep, j, mv, iv, dv, sc, best := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	t := f.NewReg()
	pp := addPads(f, 6)
	f.MovImm(rep, 0)
	f.MovImm(best, 0)
	f.Label("row")
	f.MovImm(j, 0)
	f.Label("cell")
	f.Load(4, mv, j, 0)
	f.Load(4, iv, j, 16384)
	f.Load(4, dv, j, 4)
	// max3 + score
	f.Br(isa.CondGEU, mv, iv, "m1")
	f.Mov(mv, iv)
	f.Label("m1")
	f.Br(isa.CondGEU, mv, dv, "m2")
	f.Mov(mv, dv)
	f.Label("m2")
	f.Mul32Imm(sc, j, 2654435761)
	f.Shr32Imm(sc, sc, 24)
	f.Add32(mv, mv, sc)
	f.Store(4, j, 16384+4, mv)
	f.Br(isa.CondLEU, mv, best, "nb")
	f.Mov(best, mv)
	f.Label("nb")
	// Copy back for the next row.
	f.Load(4, t, j, 16384+4)
	f.Store(4, j, 4, t)
	pp.touchGated(f, j, 0xfc)
	f.Add32Imm(j, j, 4)
	f.BrImm(isa.CondLT, j, 16380, "cell")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(120*scale), "row")
	pp.fold(f, best)
	f.Ret(best)
	return m
}

// Sjeng: alpha-beta-like recursive search with branchy evaluation.
func Sjeng(scale int) *wasm.Module {
	m := wasm.NewModule("sjeng", 4, 4)
	search := m.Func("search", 2) // (depth, seed) -> score
	{
		depth, seed := search.Param(0), search.Param(1)
		best, mv, t, sc := search.NewReg(), search.NewReg(), search.NewReg(), search.NewReg()
		search.BrImm(isa.CondGT, depth, 0, "deeper")
		// Leaf: evaluate with piece-square and mobility table lookups —
		// the memory traffic a real evaluator does at every leaf.
		search.Mul32Imm(sc, seed, 2654435761)
		search.Shr32Imm(t, sc, 20)
		search.And32Imm(t, t, 0xffc)
		search.Load(4, t, t, 16384) // piece-square table
		search.Shr32Imm(sc, sc, 24)
		search.And32Imm(sc, sc, 0xfc)
		search.Load(4, sc, sc, 20480) // mobility table
		search.Add32(sc, sc, t)
		search.Shr32Imm(t, seed, 9)
		search.And32Imm(t, t, 0x7fc)
		search.Load(4, t, t, 24576) // pawn-structure hash
		search.Add32(sc, sc, t)
		search.And32Imm(sc, sc, 0xfff)
		search.Ret(sc)
		search.Label("deeper")
		// Transposition-table probe: the branchy memory traffic real
		// searchers do at every node.
		search.Mul32Imm(t, seed, 2654435761)
		search.Shr32Imm(t, t, 18)
		search.And32Imm(t, t, 0x3ffc)
		search.Load(4, sc, t, 0)
		search.Br(isa.CondNE, sc, seed, "miss")
		search.Shr32Imm(sc, seed, 21)
		search.Ret(sc)
		search.Label("miss")
		search.Store(4, t, 0, seed)
		search.MovImm(best, 0)
		search.MovImm(mv, 0)
		search.Label("moves")
		// Child seed.
		search.Shl32Imm(t, seed, 5)
		search.Xor32(t, t, seed)
		search.Add32(t, t, mv)
		search.SubImm(sc, depth, 1)
		search.Call("search", sc, sc, t)
		// Branchy max with pruning flavour.
		search.Br(isa.CondLEU, sc, best, "noimp")
		search.Mov(best, sc)
		search.BrImm(isa.CondGTU, sc, 3500, "cut")
		search.Label("noimp")
		search.Add32Imm(mv, mv, 1)
		search.BrImm(isa.CondLT, mv, 5, "moves")
		search.Label("cut")
		search.Ret(best)
	}
	run := m.Func("run", 0)
	{
		acc, d, s, i := run.NewReg(), run.NewReg(), run.NewReg(), run.NewReg()
		run.MovImm(acc, 0)
		run.MovImm(i, 0)
		run.Label("loop")
		run.MovImm(d, 7)
		run.Add32Imm(s, i, 12345)
		run.Call("search", d, d, s)
		run.Add32(acc, acc, d)
		run.AddImm(i, i, 1)
		run.BrImm(isa.CondLT, i, int64(25*scale), "loop")
		run.Ret(acc)
	}
	return m
}

// Libquantum: streaming toffoli-like gate application over a large state
// array (sequential memory bandwidth).
func Libquantum(scale int) *wasm.Module {
	m := wasm.NewModule("libquantum", 32, 32)
	f := m.Func("run", 0)
	const n = 1 << 18 // u64 entries, 2 MiB
	rep, i, v, acc := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 10)
	f.MovImm(i, 0)
	f.Label("init")
	f.MulImm(v, i, 0x1E3779B97F4A7C15)
	f.Store(8, i, 0, v)
	f.Add32Imm(i, i, 8)
	f.BrImm(isa.CondLT, i, n*8, "init")
	f.MovImm(rep, 0)
	f.Label("gate")
	f.MovImm(i, 0)
	f.Label("apply")
	f.Load(8, v, i, 0)
	f.XorImm(v, v, 1<<20) // flip the target bit
	f.ShlImm(acc, v, 1)
	f.Xor(v, v, acc)
	f.Store(8, i, 0, v)
	pp.touchGated(f, i, 0x1ff)
	f.Add32Imm(i, i, 8)
	f.BrImm(isa.CondLT, i, n*8, "apply")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(3*scale), "gate")
	f.Load(8, acc, rep, 0)
	pp.fold(f, acc)
	f.Ret(acc)
	return m
}

// H264ref: sum-of-absolute-differences block matching in nested loops.
func H264ref(scale int) *wasm.Module {
	m := wasm.NewModule("h264ref", 8, 8)
	f := m.Func("run", 0)
	// Reference frame 256x256 at 0; current block 16x16 at 65536+.
	x, y, i, j := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	a, b, sad, bestSAD, t := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	pp := addPads(f, 5)
	// The PRNG state reuses sad: it is dead once the search starts, and a
	// live-range-splitting compiler would share the register the same way.
	f.MovImm(sad, 0xDEADBEEF)
	f.MovImm(i, 0)
	f.Label("init")
	f.ShlImm(t, sad, 13)
	f.Xor(sad, sad, t)
	f.ShrImm(t, sad, 7)
	f.Xor(sad, sad, t)
	f.AndImm(a, sad, 0xff)
	f.Store(1, i, 0, a)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 65536+256, "init")
	f.MovImm(bestSAD, 1<<30)
	// Search a 24x24 window.
	f.MovImm(y, 0)
	f.Label("wy")
	f.MovImm(x, 0)
	f.Label("wx")
	f.MovImm(sad, 0)
	f.MovImm(j, 0)
	f.Label("by")
	f.MovImm(i, 0)
	f.Label("bx")
	// ref[(y+j)*256 + x+i]
	f.Add32(a, y, j)
	f.Shl32Imm(a, a, 8)
	f.Add32(a, a, x)
	f.Add32(a, a, i)
	f.Load(1, a, a, 0)
	// cur[j*16+i]
	f.Shl32Imm(b, j, 4)
	f.Add32(b, b, i)
	f.Load(1, b, b, 65536)
	// abs diff
	f.Sub32(t, a, b)
	f.Br(isa.CondGEU, a, b, "pos")
	f.Sub32(t, b, a)
	f.Label("pos")
	f.Add32(sad, sad, t)
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 16, "bx")
	f.Add32Imm(j, j, 1)
	f.BrImm(isa.CondLT, j, 16, "by")
	f.Br(isa.CondGEU, sad, bestSAD, "nx")
	f.Mov(bestSAD, sad)
	f.Label("nx")
	pp.touch(f)
	pp.touch(f)
	f.Add32Imm(x, x, 1)
	f.BrImm(isa.CondLT, x, int64(8*scale), "wx")
	f.Add32Imm(y, y, 1)
	f.BrImm(isa.CondLT, y, 24, "wy")
	pp.fold(f, bestSAD)
	f.Ret(bestSAD)
	return m
}

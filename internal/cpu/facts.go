package cpu

import (
	"sort"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// Verifier-proven elision facts. The interpreter consumes a per-program
// ElisionFacts artifact (attached by the runtime after verification) to
// skip the dynamic page-decision lookup for accesses the verifier already
// proved safe — the paper's §4 argument that checks proven once should not
// be paid per access. The artifact is advisory with respect to the current
// machine state: every claim is gated at runtime on generation tags and a
// lazy re-validation of the claimed windows against the live page table
// and HFI bank, so stale or mismatched facts simply fall back to the full
// dynamic checks rather than trusting anything.
//
// The bit values mirror internal/verifier's Fact* constants (cpu cannot
// import verifier — the verifier imports nothing below the ISA, and the
// runtime layers above both do the conversion); sandbox asserts the
// correspondence in a test.
const (
	// FactResident: a plain load/store proven inside one of Windows.
	FactResident uint8 = 1 << iota
	// FactDominated: an identical, provably dominating check covers this
	// access; valid only while the run entered the program at Entry and no
	// fault was resumed (Interp.domSafe).
	FactDominated
	// FactHfiHeap: an hld/hst whose region operand the verifier proved
	// well-formed; the HFI bounds check (ExplicitEA) still runs, only the
	// MMU lookup behind it is elidable.
	FactHfiHeap
	// FactHostcall is carried for bit-layout parity; the interpreter does
	// not consume it (hostcall marshalling re-checks stay on).
	FactHostcall
)

// FactWindow is a half-open address range the producer claims the runtime
// keeps mapped read+write. The machine re-validates it before use.
type FactWindow struct{ Lo, Hi uint64 }

// ElisionFacts is the interpreter-facing projection of a verifier Facts
// artifact for one loaded program.
type ElisionFacts struct {
	// Entry is the absolute address of the program entry the dominator
	// proofs are rooted at.
	Entry uint64
	// Bits holds per-instruction fact bits; WinOf is parallel and names
	// the Windows index backing a FactResident claim (-1 otherwise).
	Bits    []uint8
	WinOf   []int16
	Windows []FactWindow
}

// factGate is the machine's lazily validated view of the current facts
// artifact: per-window and per-explicit-region validation results, tagged
// with the HFI and mapping generations they were computed under. Any HFI
// state write or mapping change invalidates the whole gate without the
// mutating code knowing it exists — the same discipline as the DTC.
type factGate struct {
	hfiGen uint64
	mapGen uint64
	genOK  bool
	// winST: per Windows entry, 0 unknown / 1 valid / 2 invalid.
	winST []uint8
	// exOK: per explicit region, same encoding.
	exOK [hfi.NumExplicitRegions]uint8
}

// AttachFacts associates an elision-facts artifact with a loaded program.
// Passing nil detaches. The artifact must stay immutable while attached.
func (m *Machine) AttachFacts(p *isa.Program, f *ElisionFacts) {
	if m.facts == nil {
		m.facts = make(map[*isa.Program]*ElisionFacts)
	}
	if f == nil {
		delete(m.facts, p)
	} else {
		m.facts[p] = f
	}
	m.resetFactMirror()
}

// resetFactMirror drops the per-program fast-lookup mirror and the gate.
func (m *Machine) resetFactMirror() {
	m.fcBase, m.fcEnd, m.fcF = 0, 0, nil
	m.fgate.genOK = false
}

// factBits returns the fact bits at pc and the artifact they came from
// (nil when the containing program has no facts). The common case is one
// range check and an index into the mirrored artifact.
func (m *Machine) factBits(pc uint64) (uint8, *ElisionFacts) {
	if pc-m.fcBase < m.fcEnd-m.fcBase {
		if m.fcF == nil {
			return 0, nil
		}
		return m.fcF.Bits[(pc-m.fcBase)/isa.InstrBytes], m.fcF
	}
	return m.factBitsSlow(pc)
}

func (m *Machine) factBitsSlow(pc uint64) (uint8, *ElisionFacts) {
	i := sort.Search(len(m.progs), func(i int) bool { return m.progs[i].End() > pc })
	if i == len(m.progs) || pc < m.progs[i].Base {
		return 0, nil
	}
	p := m.progs[i]
	f := m.facts[p] // nil is cached too: facts-less programs stay one range check
	m.fcBase, m.fcEnd, m.fcF = p.Base, p.End(), f
	m.fgate.genOK = false // window table changed with the artifact
	if f == nil {
		return 0, nil
	}
	return f.Bits[(pc-p.Base)/isa.InstrBytes], f
}

// factGateSync re-tags the gate against the live HFI and mapping
// generations, clearing all cached validation results when either moved.
func (m *Machine) factGateSync() {
	g := &m.fgate
	if g.genOK && g.hfiGen == m.HFI.Gen && g.mapGen == m.AS.Gen() {
		return
	}
	g.hfiGen, g.mapGen, g.genOK = m.HFI.Gen, m.AS.Gen(), true
	n := len(m.fcF.Windows)
	if cap(g.winST) < n {
		g.winST = make([]uint8, n)
	} else {
		g.winST = g.winST[:n]
		for i := range g.winST {
			g.winST[i] = 0
		}
	}
	g.exOK = [hfi.NumExplicitRegions]uint8{}
}

// factWindowValid lazily validates one claimed window against the live
// machine: the whole range mapped read+write, and — while HFI is enabled —
// the data decision uniform and read+write across the entire window. The
// result is cached until a generation moves.
func (m *Machine) factWindowValid(w int) bool {
	g := &m.fgate
	switch g.winST[w] {
	case 1:
		return true
	case 2:
		return false
	}
	win := m.fcF.Windows[w]
	ok := win.Hi > win.Lo && m.AS.CheckRange(win.Lo, win.Hi-win.Lo, kernel.ProtRead|kernel.ProtWrite)
	if ok && m.HFI.Enabled {
		// Implicit HFI regions are contiguous intervals, so one range-level
		// decision query covers the whole window in O(regions) — no per-page
		// walk over multi-GB reservations. Uniformity over the full range
		// also requires ONE region to contain the window, exactly matching
		// CheckData's straddle-faults semantics for every access inside it
		// (per-page uniformity would not: two adjacent regions could each
		// uniformly cover half the window).
		r, wr, uniform := m.HFI.DataPageDecision(win.Lo, win.Hi-win.Lo)
		if !uniform || !r || !wr {
			ok = false
		}
	}
	if ok {
		g.winST[w] = 1
	} else {
		g.winST[w] = 2
	}
	return ok
}

// factElidePlain reports whether the dynamic page-decision lookup for a
// plain load/store at pc may be skipped: either the access is proven
// resident in a window the live machine re-validated (the concrete address
// is compared against the window as hardening against a bad artifact), or
// an identical dominating check already ran this run (domSafe).
func (m *Machine) factElidePlain(pc, addr uint64, size uint8, domSafe bool) bool {
	bits, f := m.factBits(pc)
	if bits&(FactResident|FactDominated) == 0 {
		return false
	}
	m.factGateSync()
	if bits&FactResident != 0 {
		if w := int(f.WinOf[(pc-m.fcBase)/isa.InstrBytes]); w >= 0 && w < len(f.Windows) && m.factWindowValid(w) {
			win := f.Windows[w]
			if addr >= win.Lo && addr < win.Hi && uint64(size) <= win.Hi-addr {
				return true
			}
		}
	}
	return bits&FactDominated != 0 && domSafe
}

// factElideHfi reports whether the MMU lookup behind an hld/hst at pc may
// be skipped: the verifier proved the access shape, ExplicitEA has already
// bounds-checked the address into region hreg this very access, and the
// region's whole span is re-validated read+write against the live page
// table (cached per generation).
func (m *Machine) factElideHfi(pc uint64, hreg int) bool {
	bits, _ := m.factBits(pc)
	if bits&FactHfiHeap == 0 || hreg < 0 || hreg >= hfi.NumExplicitRegions {
		return false
	}
	m.factGateSync()
	g := &m.fgate
	switch g.exOK[hreg] {
	case 1:
		return true
	case 2:
		return false
	}
	r := &m.HFI.Bank.Expl[hreg]
	ok := r.Valid && r.Bound > 0 && m.AS.CheckRange(r.Base, r.Bound, kernel.ProtRead|kernel.ProtWrite)
	if ok {
		g.exOK[hreg] = 1
	} else {
		g.exOK[hreg] = 2
	}
	return ok
}

// factRunEntrySafe reports whether dominated-check elision is admissible
// for a run starting at pc: the run must enter any facts-carrying program
// at its entry (the root of the dominator proofs). Runs starting outside
// facts programs are safe — the trusted springboards only transfer into a
// guest at its entry, and verified guest code cannot branch out of its own
// program.
func (m *Machine) factRunEntrySafe(pc uint64) bool {
	for p, f := range m.facts {
		if pc >= p.Base && pc < p.End() && pc != f.Entry {
			return false
		}
	}
	return true
}

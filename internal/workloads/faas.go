package workloads

import (
	"fmt"

	"hfi/internal/isa"
	"hfi/internal/wasm"
)

// FaaS tenant workloads of Table 1. Each module's run(inputLen) reads its
// request body from linear memory at InputOffset, writes a response at
// OutputOffset, and returns the response length. The FaaS platform
// (internal/faas) writes inputs and reads outputs around each invocation.
const (
	InputOffset  = 4096
	OutputOffset = 1 << 20
)

// Tenant bundles a tenant module with a request generator.
type Tenant struct {
	Name string
	Mod  *wasm.Module
	// MakeRequest produces the request body for the i'th request.
	MakeRequest func(i int) []byte
	// Stream marks tenants that consume the request through fd 0 and
	// produce the response on fd 1 instead of the heap input/output
	// windows; the platform serves them through the hostcall streams.
	Stream bool
}

// FaaSTenants returns the four Table 1 workloads.
func FaaSTenants() []Tenant {
	return []Tenant{
		{Name: "xml-to-json", Mod: XMLToJSON(), MakeRequest: xmlRequest},
		{Name: "image-classification", Mod: ImageClassification(), MakeRequest: imageRequest},
		{Name: "check-sha256", Mod: CheckSHA256(), MakeRequest: shaRequest},
		{Name: "templated-html", Mod: TemplatedHTML(), MakeRequest: htmlRequest},
	}
}

// FaaSTenantsLight returns the same four tenant kernels scaled down —
// fewer internal repetitions and smaller request bodies — so serving-layer
// tests and benchmarks can push thousands of requests through the platform
// in seconds. The per-request input→output mapping has the same shape as
// the Table 1 tenants; only the work per request shrinks.
func FaaSTenantsLight() []Tenant {
	return []Tenant{
		{Name: "xml-to-json", Mod: XMLToJSONReps(2), MakeRequest: xmlRequestN(8)},
		{Name: "image-classification", Mod: ImageClassificationScaled(1, 2), MakeRequest: imageRequest},
		{Name: "check-sha256", Mod: CheckSHA256Reps(1), MakeRequest: shaRequestN(512)},
		{Name: "templated-html", Mod: TemplatedHTMLReps(2), MakeRequest: htmlRequest},
	}
}

// TrapTenant builds a tenant whose guest traps whenever the request body
// is non-empty and halts cleanly otherwise — a deterministic fault source
// that needs no chaos injector. Serving layers use it to trip a tenant's
// circuit breaker on demand (POST a body → fault) while its empty-body
// synthetic stream stays healthy.
func TrapTenant(name string) Tenant {
	m := wasm.NewModule(name, 1, 16)
	f := m.Func("run", 1)
	n := f.Param(0)
	f.BrImm(isa.CondEQ, n, 0, "ok")
	f.Trap()
	f.Label("ok")
	f.Ret(n)
	return Tenant{
		Name: name, Mod: m,
		MakeRequest: func(i int) []byte { return nil },
	}
}

func xmlRequest(i int) []byte { return xmlRequestN(40)(i) }

// xmlRequestN builds XML requests with `items` elements each.
func xmlRequestN(items int) func(i int) []byte {
	return func(i int) []byte {
		var b []byte
		for k := 0; k < items; k++ {
			b = append(b, fmt.Sprintf("<item id=\"%d\"><name>n%d</name><qty>%d</qty></item>", i*items+k, k, (i+k)%97)...)
		}
		return b
	}
}

// XMLToJSON scans an XML-ish request and emits a JSON-ish response:
// element names become keys, text content becomes values.
func XMLToJSON() *wasm.Module { return XMLToJSONReps(40) }

// XMLToJSONReps is XMLToJSON with a configurable repetition count.
func XMLToJSONReps(reps int) *wasm.Module {
	m := wasm.NewModule("xml-to-json", 32, 32)
	f := m.Func("run", 1)
	n := f.Param(0)
	i, o, c, depth, rep := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	t := f.NewReg()
	f.MovImm(rep, 0)
	f.Label("again")
	f.MovImm(i, 0)
	f.MovImm(o, 0)
	f.MovImm(depth, 0)
	f.Label("scan")
	f.Load(1, c, i, InputOffset)
	f.BrImm(isa.CondNE, c, '<', "text")
	// Tag: check for closing slash.
	f.Load(1, t, i, InputOffset+1)
	f.BrImm(isa.CondEQ, t, '/', "closetag")
	f.Add32Imm(depth, depth, 1)
	f.MovImm(t, '{')
	f.Store(1, o, OutputOffset, t)
	f.Add32Imm(o, o, 1)
	f.Jmp("skiptag")
	f.Label("closetag")
	f.Sub32Imm(depth, depth, 1)
	f.MovImm(t, '}')
	f.Store(1, o, OutputOffset, t)
	f.Add32Imm(o, o, 1)
	f.Label("skiptag")
	// Advance to '>'.
	f.Label("totag")
	f.Load(1, c, i, InputOffset)
	f.BrImm(isa.CondEQ, c, '>', "tagdone")
	// Copy attribute bytes as key material.
	f.BrImm(isa.CondLT, c, 'a', "noattr")
	f.Store(1, o, OutputOffset, c)
	f.Add32Imm(o, o, 1)
	f.Label("noattr")
	f.Add32Imm(i, i, 1)
	f.Br(isa.CondLT, i, n, "totag")
	f.Jmp("done")
	f.Label("tagdone")
	f.Add32Imm(i, i, 1)
	f.Jmp("cont")
	f.Label("text")
	// Text content copies through with escaping of quotes.
	f.BrImm(isa.CondEQ, c, '"', "esc")
	f.Store(1, o, OutputOffset, c)
	f.Add32Imm(o, o, 1)
	f.Jmp("textnext")
	f.Label("esc")
	f.MovImm(t, '\\')
	f.Store(1, o, OutputOffset, t)
	f.Store(1, o, OutputOffset+1, c)
	f.Add32Imm(o, o, 2)
	f.Label("textnext")
	f.Add32Imm(i, i, 1)
	f.Label("cont")
	f.Br(isa.CondLT, i, n, "scan")
	f.Label("done")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(reps), "again")
	f.Ret(o)
	return m
}

func imageRequest(i int) []byte {
	img := make([]byte, 32*32)
	for p := range img {
		img[p] = byte((p*31 + i*7) % 256)
	}
	return img
}

// ImageClassification runs a small convolution + pooling + classify
// pipeline over a 32x32 request image. It is deliberately the heaviest
// tenant, as in Table 1 (12.2 s average latency vs ~0.5 s for the others).
func ImageClassification() *wasm.Module { return ImageClassificationScaled(6, 8) }

// ImageClassificationScaled is ImageClassification with configurable epoch
// and filter counts (filters ≤ 8; the weight table stays 8 filters wide).
func ImageClassificationScaled(epochs, filters int) *wasm.Module {
	m := wasm.NewModule("image-classification", 32, 32)
	// 8 filters of 3x3 weights at 0.
	weights := make([]byte, 8*9)
	for i := range weights {
		weights[i] = byte(1 + (i*5)%7)
	}
	m.AddData(0, weights)
	f := m.Func("run", 1)
	fil, y, x, ky, kx := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	sum, w, px, idx, best := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	scores, rep := f.NewReg(), f.NewReg()
	f.MovImm(best, 0)
	f.MovImm(rep, 0)
	f.Label("epoch")
	f.MovImm(fil, 0)
	f.Label("filter")
	f.MovImm(scores, 0)
	f.MovImm(y, 0)
	f.Label("rows")
	f.MovImm(x, 0)
	f.Label("cols")
	f.MovImm(sum, 0)
	f.MovImm(ky, 0)
	f.Label("ky")
	f.MovImm(kx, 0)
	f.Label("kx")
	// weight = weights[fil*9 + ky*3 + kx]
	f.Mul32Imm(idx, fil, 9)
	f.Mul32Imm(w, ky, 3)
	f.Add32(idx, idx, w)
	f.Add32(idx, idx, kx)
	f.Load(1, w, idx, 0)
	// pixel = input[(y+ky)*32 + x+kx]
	f.Add32(idx, y, ky)
	f.Shl32Imm(idx, idx, 5)
	f.Add32(idx, idx, x)
	f.Add32(idx, idx, kx)
	f.Load(1, px, idx, InputOffset)
	f.Mul32(px, px, w)
	f.Add32(sum, sum, px)
	f.Add32Imm(kx, kx, 1)
	f.BrImm(isa.CondLT, kx, 3, "kx")
	f.Add32Imm(ky, ky, 1)
	f.BrImm(isa.CondLT, ky, 3, "ky")
	// ReLU + pool into the score.
	f.BrImm(isa.CondGT, sum, 900, "keep")
	f.MovImm(sum, 0)
	f.Label("keep")
	f.Add32(scores, scores, sum)
	f.Add32Imm(x, x, 1)
	f.BrImm(isa.CondLT, x, 30, "cols")
	f.Add32Imm(y, y, 1)
	f.BrImm(isa.CondLT, y, 30, "rows")
	f.Br(isa.CondLEU, scores, best, "nobest")
	f.Mov(best, scores)
	f.Label("nobest")
	f.Add32Imm(fil, fil, 1)
	f.BrImm(isa.CondLT, fil, int64(filters), "filter")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(epochs), "epoch")
	// Response: the winning score.
	f.Store(4, rep, OutputOffset, best)
	f.MovImm(rep, 4)
	f.Ret(rep)
	return m
}

func shaRequest(i int) []byte { return shaRequestN(4096)(i) }

// shaRequestN builds hash requests of n bytes.
func shaRequestN(n int) func(i int) []byte {
	return func(i int) []byte {
		b := make([]byte, n)
		for p := range b {
			b[p] = byte(p*13 + i)
		}
		return b
	}
}

// CheckSHA256 hashes the request body with a SHA-256-shaped compression
// loop (message schedule + 64 rounds of Σ/maj/ch mixing) and writes the
// digest.
func CheckSHA256() *wasm.Module { return CheckSHA256Reps(10) }

// CheckSHA256Reps is CheckSHA256 with a configurable repetition count.
func CheckSHA256Reps(reps int) *wasm.Module {
	m := wasm.NewModule("check-sha256", 32, 32)
	f := m.Func("run", 1)
	n := f.Param(0)
	// Hash state in 8 registers.
	h := make([]wasm.VReg, 8)
	iv := []int64{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
	for i := range h {
		h[i] = f.NewReg()
		f.MovImm(h[i], iv[i])
	}
	blk, r, w, t1, t2, tmp, rep := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(rep, 0)
	f.Label("again")
	f.MovImm(blk, 0)
	f.Label("block")
	f.MovImm(r, 0)
	f.Label("round")
	// w = schedule word: load and mix.
	f.And32Imm(w, r, 63)
	f.Add32(w, w, blk)
	f.Load(4, w, w, InputOffset)
	rotl32(f, tmp, w, t1, 7)
	f.Xor32(w, w, tmp)
	// t1 = h + Σ1(e) + ch(e,f,g) + w
	rotl32(f, t1, h[4], tmp, 26)
	f.Xor32(t1, t1, h[4])
	f.And32(t2, h[4], h[5])
	f.Xor32(t2, t2, h[6])
	f.Add32(t1, t1, t2)
	f.Add32(t1, t1, h[7])
	f.Add32(t1, t1, w)
	// t2 = Σ0(a) + maj(a,b,c)
	rotl32(f, t2, h[0], tmp, 30)
	f.Xor32(t2, t2, h[0])
	f.And32(tmp, h[1], h[2])
	f.Xor32(t2, t2, tmp)
	// Rotate the state.
	f.Mov(h[7], h[6])
	f.Mov(h[6], h[5])
	f.Mov(h[5], h[4])
	f.Add32(h[4], h[3], t1)
	f.Mov(h[3], h[2])
	f.Mov(h[2], h[1])
	f.Mov(h[1], h[0])
	f.Add32(h[0], t1, t2)
	f.Add32Imm(r, r, 1)
	f.BrImm(isa.CondLT, r, 64, "round")
	f.Add32Imm(blk, blk, 64)
	f.Br(isa.CondLT, blk, n, "block")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(reps), "again")
	// Digest out.
	for i := range h {
		f.MovImm(tmp, int64(i*4))
		f.Store(4, tmp, OutputOffset, h[i])
	}
	f.MovImm(tmp, 32)
	f.Ret(tmp)
	return m
}

func htmlRequest(i int) []byte {
	return []byte(fmt.Sprintf("user%d|Dashboard %d|item-a,item-b,item-c,item-%d", i, i, i%10))
}

// TemplatedHTML renders a page template, substituting '@' placeholders
// with fields of the request (split on '|').
func TemplatedHTML() *wasm.Module { return TemplatedHTMLReps(10) }

// TemplatedHTMLReps is TemplatedHTML with a configurable repetition count.
func TemplatedHTMLReps(reps int) *wasm.Module {
	m := wasm.NewModule("templated-html", 32, 32)
	tmpl := []byte("<html><head><title>@</title></head><body><h1>Hello @</h1><ul>")
	for i := 0; i < 20; i++ {
		tmpl = append(tmpl, []byte("<li class=\"row\">@ :: entry</li>")...)
	}
	tmpl = append(tmpl, []byte("</ul><footer>@</footer></body></html>")...)
	m.AddData(0, tmpl)
	tl := int64(len(tmpl))

	f := m.Func("run", 1)
	n := f.Param(0)
	i, o, c, fs, fc, rep := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	t := f.NewReg()
	f.MovImm(rep, 0)
	f.Label("again")
	f.MovImm(i, 0)
	f.MovImm(o, 0)
	f.MovImm(fs, 0) // current field start in the request
	f.Label("copy")
	f.Load(1, c, i, 0)
	f.BrImm(isa.CondEQ, c, '@', "subst")
	f.Store(1, o, OutputOffset, c)
	f.Add32Imm(o, o, 1)
	f.Jmp("next")
	f.Label("subst")
	// Copy the current request field until '|' or end.
	f.Mov(fc, fs)
	f.Label("field")
	f.Br(isa.CondGEU, fc, n, "fielddone")
	f.Load(1, t, fc, InputOffset)
	f.BrImm(isa.CondEQ, t, '|', "fielddone")
	f.Store(1, o, OutputOffset, t)
	f.Add32Imm(o, o, 1)
	f.Add32Imm(fc, fc, 1)
	f.Jmp("field")
	f.Label("fielddone")
	// Advance to the next field (wrap to the start at the end).
	f.Add32Imm(fc, fc, 1)
	f.Br(isa.CondLTU, fc, n, "setfs")
	f.MovImm(fc, 0)
	f.Label("setfs")
	f.Mov(fs, fc)
	f.Label("next")
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, tl, "copy")
	f.Add32Imm(rep, rep, 1)
	f.BrImm(isa.CondLT, rep, int64(reps), "again")
	f.Ret(o)
	return m
}

package httpfront

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/faas"
	"hfi/internal/host"
	"hfi/internal/hostcall"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// trapOnBody builds a tenant whose guest traps whenever the request body
// is non-empty and halts otherwise — a deterministic fault source with no
// chaos injector.
func trapOnBody(name string) workloads.Tenant {
	m := wasm.NewModule(name, 1, 16)
	f := m.Func("run", 1)
	n := f.Param(0)
	f.BrImm(isa.CondEQ, n, 0, "ok")
	f.Trap()
	f.Label("ok")
	f.Ret(n)
	return workloads.Tenant{
		Name: name, Mod: m,
		MakeRequest: func(i int) []byte { return nil },
	}
}

// unverifiable builds a tenant whose program compiles but fails static
// verification (memory.grow limit past the guard reservation), so every
// invoke resolves StatusRejected.
func unverifiable(name string) workloads.Tenant {
	m := wasm.NewModule(name, 1, 200_000)
	f := m.Func("run", 1)
	old := f.NewReg()
	f.Grow(old, f.Param(0))
	f.BrImm(isa.CondEQ, old, 0xFFFFFFFF, "fail")
	f.Ret(old)
	f.Label("fail")
	f.Trap()
	return workloads.Tenant{
		Name: name, Mod: m,
		MakeRequest: func(i int) []byte { return nil },
	}
}

// newFront builds a front over a fresh server with the standard test
// registry: a healthy tenant, a body-trapping tenant, and an unverifiable
// tenant, all under stock isolation.
func newFront(t *testing.T, cfg host.Config) (*Front, *httptest.Server) {
	t.Helper()
	light := workloads.FaaSTenantsLight()
	iso := faas.StockLucet()
	reg := map[string]Tenant{
		"html":    {Workload: light[3], Iso: iso},
		"xml":     {Workload: light[0], Iso: iso},
		"trap":    {Workload: trapOnBody("trap"), Iso: iso},
		"unverif": {Workload: unverifiable("unverif"), Iso: iso},
	}
	f := New(host.New(cfg), reg)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() { ts.Close(); f.Host().Close() })
	return f, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestStatusCodeTable pins the full documented host.Status → HTTP map.
func TestStatusCodeTable(t *testing.T) {
	want := map[host.Status]int{
		host.StatusOK:       200,
		host.StatusShed:     429,
		host.StatusRejected: 422,
		host.StatusTimeout:  504,
		host.StatusFault:    502,
		host.StatusClosed:   503,
		host.StatusCanceled: 499,
	}
	for st, code := range want {
		if got := StatusCode(st); got != code {
			t.Errorf("StatusCode(%v) = %d, want %d", st, got, code)
		}
		o, ok := OutcomeForCode(code)
		if !ok {
			t.Errorf("OutcomeForCode(%d) unmapped", code)
		}
		// 503 folds into the shed class client-side; everything else round-trips.
		if st == host.StatusClosed {
			if o != stats.OutcomeShed {
				t.Errorf("OutcomeForCode(503) = %v, want shed class", o)
			}
		}
	}
	if _, ok := OutcomeForCode(404); ok {
		t.Error("OutcomeForCode(404) should be unmapped")
	}
}

// TestInvokeEndToEnd drives every documented status over real HTTP.
func TestInvokeEndToEnd(t *testing.T) {
	t.Run("ok", func(t *testing.T) {
		_, ts := newFront(t, host.Config{Workers: 1})
		resp := post(t, ts.URL+"/v1/tenants/html/invoke", "")
		if resp.StatusCode != 200 {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
	})
	t.Run("fault_502", func(t *testing.T) {
		_, ts := newFront(t, host.Config{Workers: 1})
		resp := post(t, ts.URL+"/v1/tenants/trap/invoke", "boom")
		if resp.StatusCode != 502 {
			t.Fatalf("status %d, want 502", resp.StatusCode)
		}
		var eb struct{ Status string }
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Status != "fault" {
			t.Fatalf("error body status %q (err %v), want fault", eb.Status, err)
		}
	})
	t.Run("rejected_422", func(t *testing.T) {
		_, ts := newFront(t, host.Config{Workers: 1})
		resp := post(t, ts.URL+"/v1/tenants/unverif/invoke", "")
		if resp.StatusCode != 422 {
			t.Fatalf("status %d, want 422", resp.StatusCode)
		}
	})
	t.Run("timeout_504", func(t *testing.T) {
		_, ts := newFront(t, host.Config{Workers: 1, Fuel: 100})
		resp := post(t, ts.URL+"/v1/tenants/html/invoke", "")
		if resp.StatusCode != 504 {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
	})
	t.Run("unknown_tenant_404", func(t *testing.T) {
		_, ts := newFront(t, host.Config{Workers: 1})
		resp := post(t, ts.URL+"/v1/tenants/nope/invoke", "")
		if resp.StatusCode != 404 {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
}

// TestOverloadShed429 saturates a depth-1 shed queue behind one slowed
// worker and asserts a real 429 with Retry-After comes back.
func TestOverloadShed429(t *testing.T) {
	_, ts := newFront(t, host.Config{
		Workers: 1, QueueDepth: 1, Policy: host.PolicyShed,
		DispatchWall: 50 * time.Millisecond,
	})
	// First request occupies the worker (50ms dispatch wall), second fills
	// the depth-1 queue, third must shed.
	c1 := make(chan int, 1)
	go func() { c1 <- post(t, ts.URL+"/v1/tenants/html/invoke", "").StatusCode }()
	time.Sleep(10 * time.Millisecond)
	c2 := make(chan int, 1)
	go func() { c2 <- post(t, ts.URL+"/v1/tenants/html/invoke", "").StatusCode }()
	time.Sleep(10 * time.Millisecond)

	resp := post(t, ts.URL+"/v1/tenants/html/invoke", "")
	if resp.StatusCode != 429 {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if s1, s2 := <-c1, <-c2; s1 != 200 || s2 != 200 {
		t.Fatalf("background requests %d/%d, want 200/200", s1, s2)
	}
}

// TestDrainSemantics: BeginDrain flips /healthz to 503; after host.Close,
// invokes map StatusClosed → 503 with Retry-After.
func TestDrainSemantics(t *testing.T) {
	f, ts := newFront(t, host.Config{Workers: 1})

	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	f.BeginDrain()
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != 503 {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
	// Draining alone must not refuse work — the LB drains us, clients with
	// in-flight connections finish.
	if resp := post(t, ts.URL+"/v1/tenants/html/invoke", ""); resp.StatusCode != 200 {
		t.Fatalf("invoke during drain: %d, want 200", resp.StatusCode)
	}
	f.Host().Close()
	resp := post(t, ts.URL+"/v1/tenants/html/invoke", "")
	if resp.StatusCode != 503 {
		t.Fatalf("invoke after close: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestClientDisconnectCancelsQueued is the end-to-end no-worker-occupancy
// proof over real HTTP: a blocker request holds the single worker, a
// victim request (own tenant) queues behind it, and the victim's client
// disconnects. The host must account one canceled request, zero executed
// requests for the victim tenant, and exactly one cold start — the
// blocker's. The worker never touched the victim.
func TestClientDisconnectCancelsQueued(t *testing.T) {
	f, ts := newFront(t, host.Config{
		Workers: 1, QueueDepth: 4, DispatchWall: 60 * time.Millisecond,
	})

	blocker := make(chan int, 1)
	go func() { blocker <- post(t, ts.URL+"/v1/tenants/html/invoke", "").StatusCode }()
	time.Sleep(15 * time.Millisecond) // worker is inside the blocker's dispatch wall

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/tenants/xml/invoke", nil)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(15 * time.Millisecond) // victim is queued behind the blocker
	cancel()                          // client goes away

	if err := <-errc; err == nil {
		t.Fatal("victim request unexpectedly got a response after its context was cancelled")
	}
	if code := <-blocker; code != 200 {
		t.Fatalf("blocker status %d", code)
	}

	// The cancel is resolved by the watcher under the scheduler lock, so it
	// is already accounted by the time both requests resolved.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c := f.Host().Counters()
		if c.Canceled == 1 {
			if c.ColdStarts != 1 {
				t.Fatalf("cold starts = %d, want 1 (victim must never occupy a worker)", c.ColdStarts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled = %d after 2s, want 1 (%+v)", c.Canceled, c)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, tn := range f.Host().TenantSummaries() {
		if tn.Tenant == "xml" {
			if tn.Executed() != 0 || tn.Canceled != 1 {
				t.Fatalf("victim tenant %+v, want executed 0 canceled 1", tn)
			}
		}
	}
}

// TestStatszConservation: /statsz serves valid JSON whose global ledger
// conserves exactly across a burst of mixed-outcome traffic.
func TestStatszConservation(t *testing.T) {
	_, ts := newFront(t, host.Config{Workers: 2})
	for i := 0; i < 10; i++ {
		post(t, ts.URL+"/v1/tenants/html/invoke", "")
	}
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/tenants/trap/invoke", "boom")
	}
	post(t, ts.URL+"/v1/tenants/unverif/invoke", "")

	resp := get(t, ts.URL+"/statsz")
	if resp.StatusCode != 200 {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	var sz Statsz
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	sum := sz.Serve
	accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
	if accounted != sz.Counters.Admitted || accounted != 14 {
		t.Fatalf("statsz ledger: accounted %d admitted %d, want 14", accounted, sz.Counters.Admitted)
	}
	if sum.OK != 10 || sum.Faults != 3 || sum.Rejected != 1 {
		t.Fatalf("statsz outcomes %+v, want 10 ok / 3 faults / 1 rejected", sum)
	}
	if len(sz.Tenants) != 3 {
		t.Fatalf("statsz tenants = %d, want 3", len(sz.Tenants))
	}
}

// TestStatszChaosSummary pins the /statsz chaos surface: a clean server
// omits the chaos key entirely; a server with an injector reports the
// per-class fire counts (including the substrate classes) and the
// substrate counters conserve on every surface the document exposes.
func TestStatszChaosSummary(t *testing.T) {
	t.Run("clean_server_omits_key", func(t *testing.T) {
		_, ts := newFront(t, host.Config{Workers: 1})
		post(t, ts.URL+"/v1/tenants/html/invoke", "")
		raw, err := io.ReadAll(get(t, ts.URL+"/statsz").Body)
		if err != nil {
			t.Fatalf("statsz read: %v", err)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("statsz decode: %v", err)
		}
		if _, present := doc["chaos"]; present {
			t.Fatalf("clean server exposes a chaos key: %s", raw)
		}
	})
	t.Run("injector_reported", func(t *testing.T) {
		// Every served request draws a spot-checked bit flip: each invoke
		// is detected as substrate corruption and surfaces as a 502.
		inj := chaos.New(chaos.Config{Seed: 5, BitFlip: 1.0, SpotCheck: 1.0})
		_, ts := newFront(t, host.Config{Workers: 1, Chaos: inj})
		const n = 4
		for i := 0; i < n; i++ {
			resp := post(t, ts.URL+"/v1/tenants/html/invoke", "")
			if resp.StatusCode != 502 {
				t.Fatalf("invoke %d: status %d, want 502 (substrate fault)", i, resp.StatusCode)
			}
		}
		var sz Statsz
		if err := json.NewDecoder(get(t, ts.URL+"/statsz").Body).Decode(&sz); err != nil {
			t.Fatalf("statsz decode: %v", err)
		}
		if sz.Chaos == nil {
			t.Fatal("chaos-injected server reports no chaos summary")
		}
		if sz.Chaos.BitFlip != n {
			t.Fatalf("chaos.bitflip = %d, want %d", sz.Chaos.BitFlip, n)
		}
		sc := sz.Counters.Substrate
		if sc != sz.Serve.Substrate {
			t.Fatalf("counters substrate %+v != serve substrate %+v", sc, sz.Serve.Substrate)
		}
		if sc.Injected != n || sc.Detected != n || sc.Recovered != n || sc.Benign != 0 {
			t.Fatalf("substrate counters %+v, want %d injected == detected == recovered", sc, n)
		}
		var tsum stats.SubstrateCounters
		for _, tn := range sz.Tenants {
			tsum.Add(tn.Substrate)
		}
		if tsum != sc {
			t.Fatalf("tenant substrate counters %+v do not sum to global %+v", tsum, sc)
		}
		if sz.Serve.Faults != n {
			t.Fatalf("faults = %d, want %d (substrate faults fold into fault)", sz.Serve.Faults, n)
		}
	})
}

// TestHostcallOverHTTP is the quickstart scenario end-to-end: the
// stateful KV-session tenant and the streaming transformer served over
// real HTTP, with the /statsz hostcall counters conserving exactly —
// the global boundary traffic is the sum of the per-tenant attributions.
func TestHostcallOverHTTP(t *testing.T) {
	world := hostcall.NewWorld(21)
	iso := faas.Config{Name: "HFI", Scheme: sfi.HFI, World: world}
	var kv, stream workloads.Tenant
	for _, te := range workloads.HostcallTenants() {
		switch te.Name {
		case "kv-session":
			kv = te
		case "stream-xform":
			stream = te
		}
	}
	reg := map[string]Tenant{
		"kv":     {Workload: kv, Iso: iso},
		"stream": {Workload: stream, Iso: iso},
	}
	f := New(host.New(host.Config{Workers: 1}), reg)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() { ts.Close(); f.Host().Close() })

	// Multi-invoke stateful session: the counter accumulates across HTTP
	// requests because the state lives in the shared world's KV store.
	counter := func(body string) uint64 {
		resp := post(t, ts.URL+"/v1/tenants/kv/invoke", body)
		if resp.StatusCode != 200 {
			t.Fatalf("kv invoke status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil || len(b) != 8 {
			t.Fatalf("kv response %d bytes (err %v), want 8", len(b), err)
		}
		return binary.LittleEndian.Uint64(b)
	}
	var want uint64
	for _, body := range []string{"abc", "d", "hello world"} {
		for _, c := range []byte(body) {
			want += uint64(c)
		}
		if got := counter(body); got != want {
			t.Fatalf("session counter after %q = %d, want %d", body, got, want)
		}
	}

	// Streaming body: request flows to the guest via fd 0, the response is
	// whatever reached fd 1 — here the XOR transform of the body.
	payload := strings.Repeat("streaming over hfihttpd! ", 30) // > one 512 B chunk
	resp := post(t, ts.URL+"/v1/tenants/stream/invoke", payload)
	if resp.StatusCode != 200 {
		t.Fatalf("stream invoke status %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil || len(got) != len(payload) {
		t.Fatalf("streamed %d of %d bytes (err %v)", len(got), len(payload), err)
	}
	for i := range got {
		if got[i] != payload[i]^0x5a {
			t.Fatalf("stream byte %d = %#x, want %#x", i, got[i], payload[i]^0x5a)
		}
	}

	// Hostcall counter conservation on /statsz: global == Σ per-tenant,
	// and both tenants actually crossed the boundary.
	var sz Statsz
	if err := json.NewDecoder(get(t, ts.URL+"/statsz").Body).Decode(&sz); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	var sum stats.HostcallCounters
	for _, tn := range sz.Tenants {
		if tn.Hostcalls.Calls == 0 {
			t.Fatalf("tenant %s recorded no hostcalls", tn.Tenant)
		}
		sum.Add(tn.Hostcalls)
	}
	if sum != sz.Serve.Hostcalls {
		t.Fatalf("hostcall conservation: tenants %+v != global %+v", sum, sz.Serve.Hostcalls)
	}
	if sz.Serve.Hostcalls.Calls == 0 || sz.Serve.Hostcalls.BytesIn == 0 || sz.Serve.Hostcalls.BytesOut == 0 {
		t.Fatalf("degenerate hostcall traffic: %+v", sz.Serve.Hostcalls)
	}

	// Tier counter conservation on /statsz: global == Σ per-tenant, the
	// engines actually retired instructions, and the counters surface in
	// host.Counters too (the lowering cache must have been exercised by
	// provisioning).
	var tsum stats.TierCounters
	for _, tn := range sz.Tenants {
		tsum.Add(tn.Tier)
	}
	if tsum != sz.Serve.Tier {
		t.Fatalf("tier conservation: tenants %+v != global %+v", tsum, sz.Serve.Tier)
	}
	if sz.Serve.Tier.TieredInstrs+sz.Serve.Tier.InterpInstrs == 0 {
		t.Fatalf("tiered engines retired nothing: %+v", sz.Serve.Tier)
	}
	if sz.Counters.TierInstrs != sz.Serve.Tier.TieredInstrs ||
		sz.Counters.TierInterpInstrs != sz.Serve.Tier.InterpInstrs ||
		sz.Counters.TierPromotedBlocks != sz.Serve.Tier.PromotedBlocks {
		t.Fatalf("host counters disagree with recorder: %+v vs %+v", sz.Counters, sz.Serve.Tier)
	}
	if sz.Counters.LoweringHits+sz.Counters.LoweringMisses == 0 {
		t.Fatalf("lowering cache never consulted: %+v", sz.Counters)
	}
}

// TestOpenLoopHTTPGenerator: the HTTP open-loop generator produces a
// conserving sweep point against a live front.
func TestOpenLoopHTTPGenerator(t *testing.T) {
	_, ts := newFront(t, host.Config{Workers: 2, QueueDepth: 4, Policy: host.PolicyShed})
	pt, err := RunOpenLoopHTTP(http.DefaultClient, ts.URL, []string{"html", "xml"}, 500, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	accounted := pt.OK + pt.Timeouts + pt.Faults + pt.Shed + pt.Rejected + pt.Canceled
	if accounted != 50 {
		t.Fatalf("generator accounted %d of 50: %+v", accounted, pt)
	}
	if pt.OK == 0 {
		t.Fatalf("no successes at moderate load: %+v", pt)
	}
}

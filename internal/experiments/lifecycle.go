package experiments

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/isa"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
)

// growModule is a module whose run(delta) performs one memory.grow.
func growModule(maxPages int) *wasm.Module {
	m := wasm.NewModule("grow", 1, maxPages)
	f := m.Func("run", 1)
	old := f.NewReg()
	f.Grow(old, f.Param(0))
	f.BrImm(isa.CondEQ, old, -1, "fail")
	f.Ret(old)
	f.Label("fail")
	f.Trap()
	return m
}

// RuntimeGrowOverheadNs is the Wasm runtime's own bookkeeping per
// memory.grow call (instance locking, VM-context updates), common to both
// schemes. Calibrated from the paper's HFI-side total (370 ms / 65535
// grows ≈ 5.6 us).
const RuntimeGrowOverheadNs = 5_500

// RunHeapGrowth reproduces the §6.1 heap-growth experiment: grow a Wasm
// heap from one page to 4 GiB in 64 KiB steps. Guard pages must mprotect
// each increment (a syscall); HFI updates the explicit region register.
// Paper: 10.92 s vs 370 ms, ≈30x.
func RunHeapGrowth(steps int) (*stats.Table, error) {
	if steps <= 0 {
		steps = 65535 // one page to 4 GiB
	}
	measure := func(scheme sfi.Scheme) (float64, error) {
		rt := sandbox.NewRuntime()
		inst, err := rt.Instantiate(growModule(steps+1), scheme, wasm.Options{})
		if err != nil {
			return 0, err
		}
		eng := cpu.NewInterp(rt.M)
		clock := rt.M.Kern.Clock
		t0 := clock.Now()
		for i := 0; i < steps; i++ {
			clock.Advance(RuntimeGrowOverheadNs)
			res, old := inst.Invoke(eng, 0, 1)
			if res.Reason != cpu.StopHalt {
				return 0, fmt.Errorf("grow step %d: stop %v", i, res.Reason)
			}
			if old != uint64(i+1) {
				return 0, fmt.Errorf("grow step %d: old pages %d", i, old)
			}
		}
		return float64(clock.Now() - t0), nil
	}

	g, err := measure(sfi.GuardPages)
	if err != nil {
		return nil, err
	}
	h, err := measure(sfi.HFI)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:   "§6.1 heap growth: one page to 4 GiB in 64 KiB increments",
		Columns: []string{"mechanism", "total time", "per grow", "speedup"},
	}
	tb.AddRow("mprotect (guard pages)", stats.Ns(g), stats.Ns(g/float64(steps)), "1.0x")
	tb.AddRow("hfi_set_region (HFI)", stats.Ns(h), stats.Ns(h/float64(steps)), fmt.Sprintf("%.1fx", g/h))
	tb.AddNote("paper: 10.92s vs 370ms, ~30x")
	return tb, nil
}

// RunTeardown reproduces §6.3.1: per-sandbox teardown cost for stock
// per-instance madvise, HFI-batched madvise (guards elided), and batched
// madvise across guard regions. Paper: 25.7 us, 23.1 us (-10.1%), 31.1 us.
func RunTeardown(n int) (*stats.Table, error) {
	if n <= 0 {
		n = 2000
	}
	const batch = 50
	stock, err := faas.MeasureTeardown(faas.TeardownStock, n, 1)
	if err != nil {
		return nil, err
	}
	hfiBatched, err := faas.MeasureTeardown(faas.TeardownBatchedHFI, n, batch)
	if err != nil {
		return nil, err
	}
	nonHFI, err := faas.MeasureTeardown(faas.TeardownBatched, n, batch)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:   fmt.Sprintf("§6.3.1 sandbox teardown (%d sandboxes)", n),
		Columns: []string{"strategy", "per-sandbox", "vs stock"},
	}
	base := stock.PerSandboxNs
	tb.AddRow("stock (madvise per sandbox)", stats.Ns(stock.PerSandboxNs), "100.0%")
	tb.AddRow("HFI batched (guards elided)", stats.Ns(hfiBatched.PerSandboxNs),
		fmt.Sprintf("%.1f%%", hfiBatched.PerSandboxNs/base*100))
	tb.AddRow("batched across guard pages", stats.Ns(nonHFI.PerSandboxNs),
		fmt.Sprintf("%.1f%%", nonHFI.PerSandboxNs/base*100))
	tb.AddNote("paper: stock 25.7us, HFI-batched 23.1us (-10.1%%), non-HFI batched 31.1us (+21%%)")
	return tb, nil
}

// RunScaling reproduces §6.3.2: how many 1 GiB sandboxes fit in a 47-bit
// address space with and without guard-page reservations.
func RunScaling(measureLimit int) (*stats.Table, error) {
	if measureLimit <= 0 {
		measureLimit = 8192
	}
	guard, err := faas.MeasureScaling(sfi.GuardPages, 1, measureLimit)
	if err != nil {
		return nil, err
	}
	hfiRes, err := faas.MeasureScaling(sfi.HFI, 1, measureLimit)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:   "§6.3.2 scalability: concurrent 1 GiB sandboxes in one process",
		Columns: []string{"scheme", "reserved/sandbox", "capacity", "measured"},
	}
	row := func(name string, r faas.ScalingResult) {
		cap := fmt.Sprintf("%d", r.CapacityCount)
		if r.Extrapolated {
			cap += " (extrapolated)"
		}
		tb.AddRow(name, stats.Bytes(float64(r.ReservedPerSbox)), cap, fmt.Sprintf("%d", r.MeasuredCount))
	}
	row("guard pages (8 GiB each)", guard)
	row("HFI (heap only)", hfiRes)
	tb.AddNote("paper: 256,000 1 GiB sandboxes with guards elided; ~16K with 8 GiB reservations in 128 TiB")
	tb.AddNote("our 47-bit space: %dx more sandboxes without guard reservations",
		hfiRes.CapacityCount/max(1, guard.CapacityCount))
	return tb, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

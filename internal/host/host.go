// Package host is the concurrent multi-tenant sandbox serving layer: a
// wall-clock worker pool in front of the simulated FaaS platform. Where
// faas.ServeTenant drives one warm instance on one goroutine, a host.Server
// schedules mixed-tenant request streams across N worker goroutines behind
// per-tenant bounded admission queues dispatched by deficit round-robin
// (DRR) — one hot tenant can saturate its own queue but cannot starve the
// others, because every tenant with queued work dispatches at least
// quantum × weight requests per scheduler round.
//
// Each worker owns a private pool of warm faas.TenantInstance sets keyed by
// (tenant, isolation config), so the large per-instance allocations — a
// cpu.Machine, a simulated kernel and address space, compiled code — are
// built once per (worker, tenant, config) and warm-reused across requests,
// mirroring the warm-instance model the paper's FaaS evaluation (§6.3)
// assumes. Pools are bounded: LRU/TTL eviction with deferred batched
// teardown (§6.3.1) keeps the warm set at a configured cap under tenant
// churn. Machines are never shared across goroutines: all simulator state
// (kernel, memory, HFI, caches) is confined to the owning worker, which is
// what makes the layer race-free by construction.
//
// The layer is hardened against the failure modes a production stack sees
// (and which internal/chaos injects deterministically):
//
//   - Transient provisioning failures retry with exponential backoff and
//     jitter (RetryConfig); deterministic compile/verification failures
//     fail fast (see faas.IsTransient).
//   - Per-tenant circuit breakers (BreakerConfig) trip on the tenant's
//     fault+timeout rate, shed fast while open (StatusShed with
//     ErrBreakerOpen), and half-open on a timer with probe requests.
//   - A faulted or timed-out instance is quarantined: Reset, then a
//     verified-reset check (sandbox.Instance.HeapHash against the
//     post-provision baseline). An instance whose reset failed to restore
//     the initial image — a poisoned instance — is discarded, never
//     reused.
//   - Submit after Close returns a typed ErrClosed response; requests
//     admitted before Close drain with their real outcomes recorded.
//
// Per-request deadlines ride on the engines' existing instruction budget
// ("fuel"): a request that exhausts its budget stops with cpu.StopLimit and
// is surfaced as StatusTimeout. Latencies and outcomes feed a
// stats.Recorder (p50/p99/p999, throughput, shed rate) with a per-tenant
// breakdown, so fairness and breaker behaviour are observable.
//
// Submission is context-aware: Submit(ctx, req) resolves StatusCanceled the
// moment ctx is cancelled while the request still sits in its DRR tenant
// queue — the request is unlinked from the queue without ever occupying a
// worker, which is what lets an HTTP front-end abandon a queued request
// when its client disconnects. A context deadline additionally propagates
// into the fuel budget (Config.FuelPerSecond), so a request dispatched
// close to its deadline runs with a correspondingly smaller instruction
// budget and times out rather than overstaying. Cancellation is part of
// the exact-conservation contract: every admitted request resolves with
// exactly one of ok/timeout/fault/shed/rejected/canceled.
package host

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/stats"
	"hfi/internal/tier"
	"hfi/internal/verifier"
	"hfi/internal/workloads"
)

// Policy selects what a full admission queue does to new requests.
type Policy uint8

// Backpressure policies.
const (
	// PolicyDefault (the zero value) inherits the server-level policy; at
	// the server level it means PolicyBlock.
	PolicyDefault Policy = iota
	// PolicyBlock applies backpressure to the submitter: Submit blocks
	// until the tenant's queue drains (a closed-loop client slows down).
	PolicyBlock
	// PolicyShed rejects immediately with StatusShed when the tenant's
	// queue is full — the HTTP-429 path — and counts the rejection.
	PolicyShed
)

func (p Policy) String() string {
	switch p {
	case PolicyShed:
		return "shed"
	case PolicyBlock:
		return "block"
	default:
		return "default"
	}
}

// TenantPolicy is one tenant's admission configuration: its DRR weight,
// its queue bound, and what happens when that queue is full. Zero fields
// inherit the server defaults.
type TenantPolicy struct {
	// Weight scales the tenant's DRR share: a weight-2 tenant dispatches
	// twice as many requests per scheduler round as a weight-1 tenant
	// when both have backlog (0 = 1).
	Weight int
	// QueueDepth bounds the tenant's admission queue (0 = Config.QueueDepth).
	QueueDepth int
	// Policy is the tenant's backpressure policy (PolicyDefault =
	// Config.Policy).
	Policy Policy
}

func (p TenantPolicy) weight() int {
	if p.Weight <= 0 {
		return 1
	}
	return p.Weight
}

// RetryConfig bounds provisioning retries for transient failures.
type RetryConfig struct {
	// Max is the number of retries after the first attempt (0 = fail on
	// the first error, the old behaviour).
	Max int
	// Base is the first backoff; attempt k waits ~Base·2^k with jitter
	// (default 200µs).
	Base time.Duration
	// Cap bounds a single backoff (default 10ms).
	Cap time.Duration
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.Base <= 0 {
		r.Base = 200 * time.Microsecond
	}
	if r.Cap <= 0 {
		r.Cap = 10 * time.Millisecond
	}
	return r
}

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of worker goroutines; each owns its own warm
	// instance pool. Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds each tenant's admission queue. Defaults to
	// 2*Workers.
	QueueDepth int
	// Policy is the default backpressure policy when a tenant queue is
	// full (PolicyDefault = PolicyBlock).
	Policy Policy
	// Quantum is the DRR quantum: requests a weight-1 tenant may dispatch
	// per scheduler round (default 1).
	Quantum int
	// Tenants overrides per-tenant weight, depth, and shed policy.
	Tenants map[string]TenantPolicy
	// Fuel is the default per-request instruction budget (0 = unlimited).
	// A request exceeding it stops with cpu.StopLimit → StatusTimeout.
	Fuel uint64
	// FuelPerSecond converts a context deadline into fuel: a request
	// dispatched with d wall time left before its deadline runs with at
	// most d × FuelPerSecond instructions (clamped below the configured
	// budget, never above it). 0 disables the conversion — deadlines then
	// only cancel requests still waiting in queue.
	FuelPerSecond uint64
	// DispatchWall models the per-request platform work outside the
	// sandbox (network receive, routing, response send) as real wall time,
	// the wall-clock twin of faas.DispatchOverheadNs on the simulated
	// clock. Workers overlap these waits, so throughput scales with the
	// pool even when guest execution itself is bottlenecked on CPU.
	DispatchWall time.Duration
	// Retry bounds provisioning retries for transient failures.
	Retry RetryConfig
	// Breaker configures the per-tenant circuit breaker (zero = disabled).
	Breaker BreakerConfig
	// Pool bounds each worker's warm-instance pool (zero = unbounded, no
	// TTL).
	Pool PoolConfig
	// Chaos, when non-nil, injects deterministic faults at the serving
	// seams (see internal/chaos). nil serves clean.
	Chaos *chaos.Injector
	// OnProvision, when non-nil, observes every successfully provisioned
	// TenantInstance before it serves its first request — the
	// instrumentation seam the substrate chaos soak uses to arm its
	// cross-tenant escape oracle (canary mappings plus a memory-access
	// hook) on every machine the server builds. Called on the owning
	// worker's goroutine; the instance is still worker-private.
	OnProvision func(*faas.TenantInstance)
	// Seed seeds the retry-jitter PRNGs (0 = 1). Jitter affects timing
	// only, never outcomes.
	Seed int64
}

// tenantPolicy resolves the effective policy for one tenant.
func (c *Config) tenantPolicy(name string) TenantPolicy {
	p := c.Tenants[name]
	if p.QueueDepth <= 0 {
		p.QueueDepth = c.QueueDepth
	}
	if p.Policy == PolicyDefault {
		p.Policy = c.Policy
	}
	if p.Policy == PolicyDefault {
		p.Policy = PolicyBlock
	}
	if p.Weight <= 0 {
		p.Weight = 1
	}
	return p
}

func (c *Config) quantum() int {
	if c.Quantum <= 0 {
		return 1
	}
	return c.Quantum
}

// Status classifies a response.
type Status uint8

// Response statuses.
const (
	StatusOK      Status = iota // guest halted normally; Body is valid
	StatusTimeout               // fuel budget exhausted (cpu.StopLimit)
	StatusShed                  // rejected at admission (queue full or breaker open)
	StatusFault                 // guest fault or provisioning error
	// StatusRejected: the tenant's compiled program failed static
	// verification at provisioning (a *verifier.RejectError is in Err),
	// or the chaos injector refused the request at admission. Distinct
	// from shed: a shed request lost the capacity race, a rejected one
	// was refused on proof grounds and never ran.
	StatusRejected
	// StatusClosed: the request arrived after Close; Err is ErrClosed.
	// Never recorded — a closed server admits nothing.
	StatusClosed
	// StatusCanceled: the request's context was cancelled (or its deadline
	// passed) while it was still waiting — blocked at admission or queued
	// in its tenant's DRR queue — so it was unlinked and never occupied a
	// worker. Err carries ctx.Err(). Requests already dispatched to a
	// worker are never interrupted; a deadline that expires mid-run
	// surfaces as StatusTimeout via the fuel budget instead.
	StatusCanceled
)

var statusNames = [...]string{"ok", "timeout", "shed", "fault", "rejected", "closed", "canceled"}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Typed admission-refusal errors.
var (
	// ErrClosed is returned (inside a StatusClosed response) by Submit
	// after Close.
	ErrClosed = errors.New("host: server closed")
	// ErrBreakerOpen marks sheds caused by the tenant's circuit breaker
	// rather than queue capacity.
	ErrBreakerOpen = errors.New("host: tenant circuit breaker open")
)

// Request is one guest invocation: the seq'th request of tenant's stream,
// served under the given isolation configuration. Build requests with
// NewRequest — the one construction path the HTTP front-end, the load
// generators, and the tests share.
type Request struct {
	Tenant workloads.Tenant
	Iso    faas.Config
	Seq    uint64
	// Fuel overrides the server's default budget when nonzero.
	Fuel uint64
	// Body overrides the tenant's canonical request generator: when
	// non-nil these bytes are written as the guest request verbatim (the
	// HTTP body → guest request mapping); when nil the body is derived
	// from Tenant.MakeRequest(Seq).
	Body []byte
}

// RequestOpt customizes a Request built by NewRequest.
type RequestOpt func(*Request)

// WithWorkload supplies the tenant's executable workload (module and
// canonical request generator). The tenant name given to NewRequest stays
// authoritative — an HTTP route may serve a workload under its own name.
func WithWorkload(w workloads.Tenant) RequestOpt {
	return func(r *Request) {
		r.Tenant.Mod = w.Mod
		r.Tenant.MakeRequest = w.MakeRequest
		r.Tenant.Stream = w.Stream
	}
}

// WithIso selects the isolation configuration the request runs under.
func WithIso(cfg faas.Config) RequestOpt {
	return func(r *Request) { r.Iso = cfg }
}

// WithFuel overrides the server's default instruction budget (0 keeps it).
func WithFuel(n uint64) RequestOpt {
	return func(r *Request) { r.Fuel = n }
}

// WithBody makes the request carry an explicit guest request body instead
// of the tenant's MakeRequest(Seq) output. A nil or empty body keeps the
// canonical generator.
func WithBody(b []byte) RequestOpt {
	return func(r *Request) {
		if len(b) > 0 {
			r.Body = b
		}
	}
}

// NewRequest builds the seq'th request of tenant's stream. Options attach
// the workload, the isolation configuration, a fuel override, and an
// explicit body; every call site — cmds, tests, load generators, and the
// HTTP layer — constructs requests through here.
func NewRequest(tenant string, seq uint64, opts ...RequestOpt) Request {
	r := Request{Tenant: workloads.Tenant{Name: tenant}, Seq: seq}
	for _, opt := range opts {
		opt(&r)
	}
	return r
}

// Response reports one request's outcome.
type Response struct {
	Status  Status
	Body    []byte         // response bytes (StatusOK only)
	Stop    cpu.StopReason // engine stop reason for executed requests
	Err     error          // admission/provisioning error detail
	Worker  int            // worker that served the request
	Latency time.Duration  // wall time from admission to completion
}

// callState tracks where a call is in its lifecycle. Guarded by the
// scheduler's mutex — it is what makes cancellation race-free: exactly one
// of {cancel watcher, dequeue path, admission path} resolves each call.
type callState uint8

const (
	callWaiting    callState = iota // blocked at admission (PolicyBlock, queue full)
	callQueued                      // sitting in its tenant's DRR queue
	callDispatched                  // handed to a worker; cancellation is too late
	callDone                        // resolved (any status)
)

type call struct {
	req     Request
	ctx     context.Context
	t0      time.Time
	done    chan Response
	settled chan struct{} // closed at dispatch; stops the cancel watcher
	state   callState     // guarded by sched.mu
}

// poolKey identifies a warm-instance pool slot: one tenant under one
// isolation configuration.
type poolKey struct {
	tenant string
	iso    faas.Config
}

// Server is the concurrent serving layer. Create with New, feed with
// Submit/Do, then Close. Submit after Close resolves with ErrClosed.
type Server struct {
	cfg     Config
	sched   *scheduler
	rec     *stats.Recorder
	wg      sync.WaitGroup
	started time.Time

	admitted   atomic.Uint64
	coldStarts atomic.Uint64
	rejected   atomic.Uint64
	canceled   atomic.Uint64
	retries    atomic.Uint64
	quarantine atomic.Uint64
	discarded  atomic.Uint64
	evictions  atomic.Uint64
	teardowns  atomic.Uint64
	closedRefs atomic.Uint64
	poolSize   atomic.Int64
	poolHigh   atomic.Int64

	tierPromoted atomic.Uint64
	tierInstrs   atomic.Uint64
	tierInterp   atomic.Uint64

	subInjected  atomic.Uint64
	subDetected  atomic.Uint64
	subRecovered atomic.Uint64
	subBenign    atomic.Uint64
}

// New starts a server with cfg.Workers goroutines waiting on the
// scheduler.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Retry = cfg.Retry.withDefaults()
	s := &Server{
		cfg:     cfg,
		rec:     stats.NewRecorder(),
		started: time.Now(),
	}
	s.sched = newScheduler(&s.cfg)
	s.sched.srv = s
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Workers reports the configured pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Submit admits one request and returns a channel that receives exactly
// one Response. A full tenant queue blocks the caller (PolicyBlock) or
// resolves immediately with StatusShed (PolicyShed); an open circuit
// breaker sheds fast with ErrBreakerOpen; a closed server resolves with
// StatusClosed/ErrClosed. Cancelling ctx while the request waits —
// blocked at admission or queued — resolves StatusCanceled and unlinks
// the request without it ever occupying a worker; a nil ctx means
// context.Background(). The admission decision, its counter, and the
// enqueue form one critical section, so outcome accounting is exact:
// every admitted request resolves with exactly one of
// ok/timeout/fault/shed/rejected/canceled.
func (s *Server) Submit(ctx context.Context, req Request) <-chan Response {
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan Response, 1)
	c := &call{req: req, ctx: ctx, t0: time.Now(), done: done, settled: make(chan struct{})}
	name := req.Tenant.Name
	sc := s.sched

	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		s.closedRefs.Add(1)
		done <- Response{Status: StatusClosed, Err: ErrClosed}
		return done
	}
	if ctx.Err() != nil {
		// Cancelled before admission even started: accounted like any
		// other admitted-then-canceled request so conservation holds.
		s.admitted.Add(1)
		s.resolveCanceledLocked(c)
		sc.mu.Unlock()
		return done
	}
	// Chaos seam: transient verifier rejection at admission — refused on
	// (injected) proof grounds before touching a queue or sandbox.
	if err := s.cfg.Chaos.RejectAtAdmission(name, int(req.Seq)); err != nil {
		s.admitted.Add(1)
		s.rec.RecordTenant(name, stats.OutcomeRejected, 0)
		c.state = callDone
		sc.mu.Unlock()
		done <- Response{Status: StatusRejected, Err: err}
		return done
	}
	tq := sc.tenant(name)
	if !tq.br.allow(time.Now()) {
		s.admitted.Add(1)
		s.rejected.Add(1)
		s.rec.RecordTenant(name, stats.OutcomeShed, 0)
		c.state = callDone
		sc.mu.Unlock()
		done <- Response{Status: StatusShed, Err: ErrBreakerOpen}
		return done
	}
	watching := false
	if tq.pol.Policy == PolicyShed {
		if tq.qlen() >= tq.pol.QueueDepth {
			s.admitted.Add(1)
			s.rejected.Add(1)
			s.rec.RecordTenant(name, stats.OutcomeShed, 0)
			c.state = callDone
			sc.mu.Unlock()
			done <- Response{Status: StatusShed}
			return done
		}
	} else {
		for tq.qlen() >= tq.pol.QueueDepth {
			// The watcher wakes this wait when ctx fires; the loop re-checks
			// the context each wake, so a cancelled submitter stops blocking.
			if ctx.Err() != nil {
				s.admitted.Add(1)
				s.resolveCanceledLocked(c)
				sc.mu.Unlock()
				return done
			}
			if !watching {
				watching = true
				s.watchCancel(c)
			}
			sc.notFull.Wait()
			if sc.closed {
				c.state = callDone
				sc.mu.Unlock()
				s.closedRefs.Add(1)
				done <- Response{Status: StatusClosed, Err: ErrClosed}
				return done
			}
		}
	}
	if ctx.Err() != nil {
		// ctx fired while this goroutine held the admission lock (the
		// watcher, if any, saw callWaiting and could only wake us): resolve
		// here rather than enqueueing a dead request.
		s.admitted.Add(1)
		s.resolveCanceledLocked(c)
		sc.mu.Unlock()
		return done
	}
	s.admitted.Add(1)
	c.state = callQueued
	sc.enqueue(tq, c)
	if !watching && ctx.Done() != nil {
		s.watchCancel(c)
	}
	sc.mu.Unlock()
	return done
}

// Do submits and waits for the response.
func (s *Server) Do(ctx context.Context, req Request) Response { return <-s.Submit(ctx, req) }

// watchCancel arms the per-call cancel watcher: one goroutine selecting
// ctx.Done() against the call's dispatch. Only armed for cancellable
// contexts, so background-context traffic pays nothing.
func (s *Server) watchCancel(c *call) {
	if c.ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-c.ctx.Done():
			s.cancelCall(c)
		case <-c.settled:
		}
	}()
}

// cancelCall is the watcher's entry: if the call is still queued, unlink
// it from its tenant's DRR queue and resolve StatusCanceled; if it is
// still blocked at admission, wake the submitter to observe its context;
// dispatched or resolved calls are left alone.
func (s *Server) cancelCall(c *call) {
	sc := s.sched
	sc.mu.Lock()
	switch c.state {
	case callWaiting:
		sc.notFull.Broadcast()
		sc.mu.Unlock()
	case callQueued:
		if sc.unlink(c) {
			s.resolveCanceledLocked(c)
			sc.notFull.Broadcast()
		}
		sc.mu.Unlock()
	default:
		sc.mu.Unlock()
	}
}

// resolveCanceledLocked accounts and resolves a canceled call. Caller
// holds sched.mu and has already counted the call as admitted (queued
// calls were admitted at enqueue; pre-admission cancels count themselves).
// The response channel is buffered, so the send cannot block under the
// lock.
func (s *Server) resolveCanceledLocked(c *call) {
	c.state = callDone
	s.canceled.Add(1)
	s.rec.RecordTenant(c.req.Tenant.Name, stats.OutcomeCanceled, 0)
	c.done <- Response{Status: StatusCanceled, Err: context.Cause(c.ctx), Latency: time.Since(c.t0)}
}

// Close stops admissions, drains every queued and in-flight request with
// its real outcome recorded, tears down the worker pools, and waits for
// the workers to exit. Safe to call concurrently with Submit and more than
// once.
func (s *Server) Close() {
	s.sched.close()
	s.wg.Wait()
}

// Snapshot summarizes latencies and outcomes so far, with throughput
// computed over the given wall window (pass time.Since(start) of the load
// run, or 0 to skip throughput).
func (s *Server) Snapshot(elapsed time.Duration) stats.ServeSummary {
	return s.rec.Snapshot(float64(elapsed.Nanoseconds()))
}

// TenantSummaries reports the per-tenant outcome breakdown (sorted by
// tenant name) — the observability fairness and breaker behaviour are
// judged by.
func (s *Server) TenantSummaries() []stats.TenantSummary {
	return s.rec.TenantSummaries()
}

// BreakerStatus is one tenant's circuit-breaker state as surfaced on the
// wire (/statsz): the state machine position plus lifetime trips. Tenants
// whose breaker is disabled (BreakerConfig.Window == 0) are omitted.
type BreakerStatus struct {
	Tenant string `json:"tenant"`
	State  string `json:"state"` // "closed" | "open" | "half-open"
	Trips  uint64 `json:"trips"`
}

// BreakerStates snapshots every tenant breaker, sorted by tenant name —
// the signal a routing tier uses to decide a shard is degraded and hedge
// requests elsewhere.
func (s *Server) BreakerStates() []BreakerStatus {
	return s.sched.breakerStates()
}

// ColdStarts counts instance provisionings (pool misses) so far.
func (s *Server) ColdStarts() uint64 { return s.coldStarts.Load() }

// Rejected counts admissions refused with StatusShed — queue-full sheds
// under PolicyShed plus circuit-breaker sheds. The 429 counter.
func (s *Server) Rejected() uint64 { return s.rejected.Load() }

// Canceled counts requests resolved StatusCanceled: cancelled or past
// deadline while waiting, unlinked without occupying a worker.
func (s *Server) Canceled() uint64 { return s.canceled.Load() }

// Admitted counts requests that entered outcome accounting: every Submit
// that did not hit a closed server. Conservation invariant:
// Admitted == OK + Timeouts + Faults + Shed + Rejected + Canceled once
// all submitted requests have resolved.
func (s *Server) Admitted() uint64 { return s.admitted.Load() }

// Counters is a point-in-time view of the server's robustness machinery.
type Counters struct {
	Admitted          uint64 `json:"admitted"`
	ColdStarts        uint64 `json:"cold_starts"`
	Shed              uint64 `json:"shed"`
	Canceled          uint64 `json:"canceled"`
	ClosedRejects     uint64 `json:"closed_rejects"`
	ProvisionRetries  uint64 `json:"provision_retries"`
	Quarantined       uint64 `json:"quarantined"`
	QuarantineDiscard uint64 `json:"quarantine_discards"`
	Evictions         uint64 `json:"evictions"`
	Teardowns         uint64 `json:"teardowns"`
	PoolSize          int64  `json:"pool_size"`
	PoolHighWater     int64  `json:"pool_high_water"`
	BreakerTrips      uint64 `json:"breaker_trips"`

	// Tiered-engine activity across all workers: blocks promoted to fused
	// execution, the guest-instruction retirement split between the tiers,
	// and the shared lowering cache's hit rate (read from faas.Images, the
	// same cache every worker provisions through).
	TierPromotedBlocks uint64 `json:"tier_promoted_blocks"`
	TierInstrs         uint64 `json:"tier_instrs"`
	TierInterpInstrs   uint64 `json:"tier_interp_instrs"`
	LoweringHits       uint64 `json:"lowering_hits"`
	LoweringMisses     uint64 `json:"lowering_misses"`

	// Substrate is the substrate chaos accounting across all workers
	// (identical to the stats.Recorder global totals; conservation:
	// Injected == Detected + Benign and Recovered == Detected).
	Substrate stats.SubstrateCounters `json:"substrate"`
}

// Counters snapshots the robustness counters.
func (s *Server) Counters() Counters {
	c := Counters{
		Admitted:          s.admitted.Load(),
		ColdStarts:        s.coldStarts.Load(),
		Shed:              s.rejected.Load(),
		Canceled:          s.canceled.Load(),
		ClosedRejects:     s.closedRefs.Load(),
		ProvisionRetries:  s.retries.Load(),
		Quarantined:       s.quarantine.Load(),
		QuarantineDiscard: s.discarded.Load(),
		Evictions:         s.evictions.Load(),
		Teardowns:         s.teardowns.Load(),
		PoolSize:          s.poolSize.Load(),
		PoolHighWater:     s.poolHigh.Load(),
		BreakerTrips:      s.sched.breakerTrips(),

		TierPromotedBlocks: s.tierPromoted.Load(),
		TierInstrs:         s.tierInstrs.Load(),
		TierInterpInstrs:   s.tierInterp.Load(),

		Substrate: stats.SubstrateCounters{
			Injected:  s.subInjected.Load(),
			Detected:  s.subDetected.Load(),
			Recovered: s.subRecovered.Load(),
			Benign:    s.subBenign.Load(),
		},
	}
	c.LoweringHits, c.LoweringMisses = faas.Images.LoweringStats()
	return c
}

// ChaosSummary snapshots the chaos injector's per-class fire counts, or
// nil when the server runs clean — the /statsz surface for chaos
// observability.
func (s *Server) ChaosSummary() *chaos.Summary {
	if s.cfg.Chaos == nil {
		return nil
	}
	sum := s.cfg.Chaos.Snapshot()
	return &sum
}

// poolGrew maintains the aggregate pool-size gauge and its high-water
// mark across all workers.
func (s *Server) poolGrew(delta int64) {
	n := s.poolSize.Add(delta)
	for {
		high := s.poolHigh.Load()
		if n <= high || s.poolHigh.CompareAndSwap(high, n) {
			return
		}
	}
}

// worker owns a private pool of warm instances and serves scheduler
// entries until the scheduler closes and drains. Nothing in the pool ever
// crosses goroutines.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	pool := newInstPool(s)
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(id)*0x9E3779B9))
	for {
		c, ok := s.sched.next()
		if !ok {
			break
		}
		resp := s.serveOne(id, pool, rng, c)
		resp.Latency = time.Since(c.t0)
		s.finish(c, resp)
	}
	pool.drain()
}

// finish records the outcome (globally and per tenant), feeds the
// tenant's circuit breaker, and resolves the caller's channel.
func (s *Server) finish(c *call, resp Response) {
	name := c.req.Tenant.Name
	lat := float64(resp.Latency.Nanoseconds())
	var o stats.Outcome
	failed := false
	switch resp.Status {
	case StatusOK:
		o = stats.OutcomeOK
	case StatusTimeout:
		o = stats.OutcomeTimeout
		failed = true
	case StatusRejected:
		o, lat = stats.OutcomeRejected, 0
	default:
		o = stats.OutcomeFault
		failed = true
	}
	s.rec.RecordTenant(name, o, lat)
	if o != stats.OutcomeRejected {
		// Rejections never probed the tenant's runtime health; everything
		// else updates the breaker window.
		s.sched.reportOutcome(name, failed, time.Now())
	}
	c.done <- resp
}

// chaosGarbage is the deterministic mid-request dirt an injected trap
// leaves in the heap — what a genuinely aborted guest leaves behind.
var chaosGarbage = func() []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = byte(0xA5 ^ i)
	}
	return b
}()

// serveOne runs one request on the worker's warm instance for its
// (tenant, config), provisioning (with retry) on pool miss and
// quarantining the instance on any abnormal stop.
func (s *Server) serveOne(id int, pool *instPool, rng *rand.Rand, c *call) Response {
	req := c.req
	name := req.Tenant.Name
	seq := int(req.Seq)
	inj := s.cfg.Chaos
	if d := s.cfg.DispatchWall + inj.SlowDown(name, seq); d > 0 {
		time.Sleep(d)
	}
	key := poolKey{name, req.Iso}
	ent := pool.get(key, time.Now())
	if ent == nil {
		ti, resp, ok := s.provision(id, rng, req)
		if !ok {
			return resp
		}
		ent = pool.put(key, ti, ti.Inst.HeapHash(), time.Now())
		s.coldStarts.Add(1)
	}
	fuel := req.Fuel
	if fuel == 0 {
		fuel = s.cfg.Fuel
	}
	fuel = s.deadlineFuel(c.ctx, fuel)
	var body []byte
	var res cpu.RunResult
	if inj.Trap(name, seq) {
		// Injected mid-request trap: dirty the heap the way an aborted
		// guest would, then surface the fault. The recovery path below
		// must clean this up or the next pooled reuse is corrupted.
		ent.ti.Inst.WriteHeap(1024, chaosGarbage)
		res = cpu.RunResult{Reason: cpu.StopFault}
	} else {
		if f, ok := inj.StarveFuel(name, seq); ok {
			fuel = f
		}
		// Chaos seam: arm a hostcall-layer fault (transient error, quota
		// exhaustion, slow call) for this request; consumed at dispatch.
		ent.ti.ArmHostcallFault(inj.Hostcall(name, seq))
		if req.Body != nil {
			body, res = ent.ti.ServeBody(req.Body, fuel)
		} else {
			body, res = ent.ti.ServeRequest(seq, fuel)
		}
		s.harvestHostcalls(name, ent.ti)
		s.harvestTier(name, ent.ti)
	}
	switch res.Reason {
	case cpu.StopHalt:
		if layer, bad := s.substrateStage(pool, ent, req); bad {
			// A substrate audit fired: the instance's below-the-seams state
			// is corrupt. Quarantine it (Reset + verified-reset check, same
			// contract as a guest fault) and fold the request into the fault
			// outcome with the typed audit error, so the conservation
			// identity admitted == ok+timeout+fault+shed+rejected+canceled
			// holds with substrate chaos active.
			s.quarantineInstance(pool, ent, req)
			return Response{
				Status: StatusFault, Stop: res.Reason,
				Err: &cpu.SubstrateError{Layer: layer}, Worker: id,
			}
		}
		return Response{Status: StatusOK, Body: body, Stop: res.Reason, Worker: id}
	case cpu.StopLimit:
		// Deadline exceeded mid-run: the instance memory is mid-request
		// garbage; quarantine before the pool reuses it.
		s.quarantineInstance(pool, ent, req)
		return Response{Status: StatusTimeout, Stop: res.Reason, Worker: id}
	default:
		s.quarantineInstance(pool, ent, req)
		return Response{Status: StatusFault, Stop: res.Reason, Worker: id}
	}
}

// substrateStage is the end-of-request substrate chaos seam and its
// detection counterpart, run on every successfully served request (the
// StopHalt path only — faulted and timed-out requests already quarantine).
// The injection side plants the four below-the-seams fault classes the
// chaos injector draws for this (tenant, seq): a bit flip in the guest
// heap, a stale page-decision-cache entry surviving a suppressed
// invalidation, clock skew between the worker's rails, and a corrupted
// cached-lowering gate verdict. The detection side then audits
// unconditionally — a sampled, cost-modeled heap-hash spot check plus
// three always-on cheap cross-audits (cache generation tags, tier gate
// freshness, clock drift) — and recovers in place: flush the decision
// caches, demote and re-lower the tiered code, resync the clock. Faults
// are injected end-of-request so every plant is either detected by this
// request's audits or benign by construction (cold state recycled before
// any consumer reads it); nothing carries across requests, which is what
// makes the soak's detection counts exactly predictable.
//
// Returns the first audit layer that fired and whether any did; the
// caller quarantines on detection. Counter conservation, maintained here
// and asserted by the soak: Injected == Detected + Benign per class
// sum, and Recovered == Detected (every detection completes recovery).
func (s *Server) substrateStage(pool *instPool, ent *poolEntry, req Request) (string, bool) {
	inj := s.cfg.Chaos
	name := req.Tenant.Name
	seq := int(req.Seq)
	ti := ent.ti
	m := ti.RT.M
	var sc stats.SubstrateCounters
	layer := ""
	detect := func(l string) {
		sc.Detected++
		sc.Recovered++
		if layer == "" {
			layer = l
		}
	}

	// Draws — each a pure function of (class, tenant, seq), so the soak's
	// single-threaded predictor replays exactly this sequence.
	flip := inj.BitFlip(name, seq)
	spot := inj.SpotCheck(name, seq)
	tlbLive, tlbOK := inj.TLBStale(name, seq)
	skewNs, skewLive, skewOK := inj.ClockSkew(name, seq)
	te, tiered := ti.Eng.(*tier.Engine)
	var rotPick uint64
	var rotLive, rotOK bool
	if tiered && te.HasLowering() {
		// Rot is only drawable when there is a cached lowering to corrupt;
		// the predictor mirrors this by provisioning a reference instance.
		rotPick, rotLive, rotOK = inj.LoweringRot(name, seq)
	}

	// Heap integrity: the sampled spot check resets the instance and pays
	// the cost-modeled hash scrub; a flip drawn for a sampled request
	// strikes a live initial-heap page inside the audit window (guaranteed
	// mismatch against the verified-reset baseline). A flip on an
	// unsampled request is a transient upset that self-corrects before
	// any reader — real corruption below the seams for an instant,
	// undetectable and benign by construction.
	if spot {
		ti.Inst.Reset()
		if ti.Env != nil {
			ti.Env.ResetSession()
		}
		if flip {
			sc.Injected++
			place, mask := inj.BitFlipSpec(name, seq)
			off := uint64(place * float64(ti.Inst.InitialHeapBytes()))
			if off >= ti.Inst.InitialHeapBytes() {
				off = ti.Inst.InitialHeapBytes() - 1
			}
			ti.Inst.FlipHeapBit(off, mask)
		}
		if ti.Inst.AuditHeapHash() != ent.baseline {
			detect("heap-hash")
		}
	} else if flip {
		sc.Injected++
		sc.Benign++
		place, mask := inj.BitFlipSpec(name, seq)
		off := uint64(place * float64(ti.Inst.InitialHeapBytes()))
		if off >= ti.Inst.InitialHeapBytes() {
			off = ti.Inst.InitialHeapBytes() - 1
		}
		ti.Inst.FlipHeapBit(off, mask)
		ti.Inst.FlipHeapBit(off, mask)
	}

	// Plant the remaining classes: the state a lost shootdown leaves in
	// the decision caches, skew between the clock rails (differential when
	// live, common-mode — invisible and harmless — when dead), and a
	// flipped gate verdict on a cached lowering.
	if tlbOK {
		sc.Injected++
		m.PlantStaleDTC(tlbLive)
	}
	if skewOK {
		sc.Injected++
		m.Kern.Clock.SkewNs(skewNs, !skewLive)
	}
	if rotOK {
		sc.Injected++
		te.PlantGateRot(rotLive, rotPick)
	}

	// Always-on cross-audits (a handful of integer compares each), with
	// in-place recovery. A dead plant passes its audit and is accounted
	// benign; an audit firing with no matching plant would break the
	// Injected == Detected + Benign identity and fail the soak loudly —
	// the audits double as regression tripwires for genuine corruption.
	if !m.AuditCacheGens() {
		m.FlushDTC()
		detect("dtc-gen")
	} else if tlbOK {
		sc.Benign++
	}
	if tiered && !te.AuditGate() {
		te.Invalidate()
		detect("tier-gate")
	} else if rotOK {
		sc.Benign++
	}
	if clock := m.Kern.Clock; clock.DriftNs() != 0 {
		clock.Resync()
		detect("clock-drift")
	} else if skewOK {
		sc.Benign++
	}

	if sc == (stats.SubstrateCounters{}) {
		return "", false
	}
	s.subInjected.Add(sc.Injected)
	s.subDetected.Add(sc.Detected)
	s.subRecovered.Add(sc.Recovered)
	s.subBenign.Add(sc.Benign)
	s.rec.RecordSubstrate(name, sc)
	return layer, layer != ""
}

// harvestHostcalls attributes the instance's host-call boundary traffic
// (the delta since the last harvest) to the tenant's stats. Pure-compute
// tenants have no environment and record nothing.
func (s *Server) harvestHostcalls(name string, ti *faas.TenantInstance) {
	if ti.Env == nil {
		return
	}
	calls, bi, bo, qr := ti.Env.TakeCounters()
	s.rec.RecordHostcalls(name, stats.HostcallCounters{
		Calls: calls, BytesIn: bi, BytesOut: bo, QuotaRejects: qr,
	})
}

// harvestTier attributes the instance's tiered-engine activity (the delta
// since the last harvest) to the tenant's stats and the server's global
// counters. Instances running a plain interpreter record nothing.
func (s *Server) harvestTier(name string, ti *faas.TenantInstance) {
	tc := ti.TierCountersDelta()
	if tc == (stats.TierCounters{}) {
		return
	}
	s.tierPromoted.Add(tc.PromotedBlocks)
	s.tierInstrs.Add(tc.TieredInstrs)
	s.tierInterp.Add(tc.InterpInstrs)
	s.rec.RecordTier(name, tc)
}

// deadlineFuel clamps a request's fuel budget to the wall time left
// before its context deadline, at Config.FuelPerSecond instructions per
// second. The conversion only ever shrinks the budget: a generous
// deadline never buys more fuel than the configured cap, and a deadline
// already in the past leaves a single instruction so the run surfaces as
// a deterministic StatusTimeout (StopLimit) rather than a special case.
func (s *Server) deadlineFuel(ctx context.Context, fuel uint64) uint64 {
	if s.cfg.FuelPerSecond == 0 || ctx == nil {
		return fuel
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return fuel
	}
	left := time.Until(dl)
	if left <= 0 {
		return 1
	}
	budget := uint64(left.Seconds() * float64(s.cfg.FuelPerSecond))
	if budget == 0 {
		budget = 1
	}
	if fuel == 0 || budget < fuel {
		// fuel == 0 means "unlimited": the deadline becomes the only cap.
		return budget
	}
	return fuel
}

// quarantineInstance is the recovery path for a faulted or timed-out
// instance: Reset, then verify the reset actually restored the
// post-provision heap image (sandbox.Instance.HeapHash against the
// baseline taken at provisioning). A verified instance returns to the
// pool; a poisoned one — reset did not restore it — is discarded and torn
// down, never reused ("Isolation Without Taxation": reuse is only safe if
// post-fault state is provably reset).
func (s *Server) quarantineInstance(pool *instPool, ent *poolEntry, req Request) {
	s.quarantine.Add(1)
	ent.ti.Inst.Reset()
	if ent.ti.Env != nil {
		// Host-side session state (fd table, streams) is mid-request
		// garbage too; reset it alongside the heap.
		ent.ti.Env.ResetSession()
	}
	if s.cfg.Chaos.Poison(req.Tenant.Name, int(req.Seq)) {
		// Chaos seam: lingering post-Reset corruption, as an incomplete
		// reset (or a bug in it) would leave. The hash check must catch it.
		ent.ti.Inst.WriteHeap(1500, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	}
	if ent.ti.Inst.HeapHash() != ent.baseline {
		pool.discard(ent)
	}
}

// provision builds a warm instance for the request, retrying transient
// failures with exponential backoff and jitter. Verification rejections
// (typed *verifier.RejectError) and other deterministic failures fail
// fast.
func (s *Server) provision(id int, rng *rand.Rand, req Request) (*faas.TenantInstance, Response, bool) {
	name := req.Tenant.Name
	for attempt := 0; ; attempt++ {
		err := s.cfg.Chaos.ProvisionError(name, attempt)
		var ti *faas.TenantInstance
		if err == nil {
			ti, err = faas.Provision(req.Tenant, req.Iso)
		}
		if err == nil {
			if s.cfg.OnProvision != nil {
				s.cfg.OnProvision(ti)
			}
			return ti, Response{}, true
		}
		var re *verifier.RejectError
		if errors.As(err, &re) {
			return nil, Response{Status: StatusRejected, Err: err, Worker: id}, false
		}
		if attempt >= s.cfg.Retry.Max || !faas.IsTransient(err) {
			return nil, Response{Status: StatusFault, Err: err, Worker: id}, false
		}
		s.retries.Add(1)
		time.Sleep(backoff(s.cfg.Retry, attempt, rng))
	}
}

// backoff computes the attempt'th retry delay: exponential growth capped
// at Cap, with uniform jitter in [d/2, d] so synchronized retry storms
// decorrelate. Jitter shifts timing only; outcomes never depend on it.
func backoff(r RetryConfig, attempt int, rng *rand.Rand) time.Duration {
	d := r.Base
	for i := 0; i < attempt && d < r.Cap; i++ {
		d *= 2
	}
	if d > r.Cap {
		d = r.Cap
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

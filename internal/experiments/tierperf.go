package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/tier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// TierPerfScheme is one scheme's row in the tiered-engine experiment:
// Sightglass corpus throughput under the plain interpreter vs the tiered
// superinstruction engine, both cycle-exact with each other (the sandbox
// differential corpus gate proves it), plus the tier's own telemetry.
type TierPerfScheme struct {
	Scheme string

	InterpInstrsPerSec float64
	TierInstrsPerSec   float64
	Speedup            float64

	// PromotedBlocks and TieredShare describe the steady state: how many
	// basic blocks crossed the promotion threshold and what fraction of
	// retirement the fused paths carried.
	PromotedBlocks uint64
	TieredShare    float64

	// FusableBlocks/FullBlocks/Blocks summarize the shared lowering.
	Blocks        int
	FusableBlocks int
	FullBlocks    int

	// AllocsPerOp is steady-state heap allocations per corpus iteration
	// under the tiered engine (must be 0).
	AllocsPerOp float64
}

// TierPerf is the full experiment result (BENCH_PR8.json).
type TierPerf struct {
	Schemes []TierPerfScheme
}

// measureCorpusTier loops the warm corpus until minInstrs retire. With
// tiered set it runs every instance under a tier.Engine (default promotion
// threshold; the warmup invocations are what promote the hot blocks) and
// also reports promoted blocks, the tiered retirement share, and
// steady-state allocations per corpus iteration.
func measureCorpusTier(scheme sfi.Scheme, tiered bool, minInstrs uint64) (instrsPerSec, allocsPerOp float64, promoted uint64, share float64, low *tier.Lowered, err error) {
	type warmInst struct {
		inst *sandbox.Instance
		eng  cpu.Engine
		te   *tier.Engine
	}
	var warm []warmInst
	for _, w := range workloads.Sightglass() {
		rt := sandbox.NewRuntime()
		inst, ierr := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
		if ierr != nil {
			return 0, 0, 0, 0, nil, ierr
		}
		ip := cpu.NewInterp(rt.M)
		wi := warmInst{inst: inst, eng: ip}
		if tiered {
			wi.te = tier.NewEngine(ip, inst.Lowered)
			wi.eng = wi.te
			if low == nil {
				low = inst.Lowered
			}
		}
		// Warm past the promotion threshold so the measured loop is the
		// steady state (for the plain interpreter one pass warms the
		// caches; extra passes are harmless).
		for i := 0; i <= tier.DefaultPromoteAfter; i++ {
			if res, _ := inst.Invoke(wi.eng, 500_000_000); res.Reason != cpu.StopHalt {
				return 0, 0, 0, 0, nil, fmt.Errorf("%s/%v warmup: stop %v", w.Name, scheme, res.Reason)
			}
			if !tiered {
				break
			}
		}
		warm = append(warm, wi)
	}
	var done uint64
	var iters uint64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for done < minInstrs {
		for _, wi := range warm {
			before := wi.inst.RT.M.Instret
			if res, _ := wi.inst.Invoke(wi.eng, 500_000_000); res.Reason != cpu.StopHalt {
				return 0, 0, 0, 0, nil, fmt.Errorf("throughput: stop %v", res.Reason)
			}
			done += wi.inst.RT.M.Instret - before
			iters++
		}
	}
	elapsed := time.Since(t0).Seconds()
	runtime.ReadMemStats(&ms1)
	instrsPerSec = float64(done) / elapsed
	allocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	if tiered {
		var tieredInstrs, interpInstrs uint64
		for _, wi := range warm {
			p, td, ii := wi.te.Counters()
			promoted += p
			tieredInstrs += td
			interpInstrs += ii
		}
		if total := tieredInstrs + interpInstrs; total > 0 {
			share = float64(tieredInstrs) / float64(total)
		}
	}
	return instrsPerSec, allocsPerOp, promoted, share, low, nil
}

// RunTierPerf measures, per scheme, what lowering hot verified programs to
// fused superinstruction blocks buys over the plain interpreter on the
// Sightglass corpus — same guest, same facts, same simulated cycles, fewer
// host instructions per retired guest instruction.
func RunTierPerf(minInstrs uint64) (TierPerf, *stats.Table, error) {
	var out TierPerf
	for _, scheme := range []sfi.Scheme{sfi.HFI, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking} {
		interpRate, _, _, _, _, err := measureCorpusTier(scheme, false, minInstrs)
		if err != nil {
			return out, nil, err
		}
		tierRate, allocs, promoted, share, low, err := measureCorpusTier(scheme, true, minInstrs)
		if err != nil {
			return out, nil, err
		}
		row := TierPerfScheme{
			Scheme:             scheme.String(),
			InterpInstrsPerSec: interpRate,
			TierInstrsPerSec:   tierRate,
			Speedup:            tierRate / interpRate,
			PromotedBlocks:     promoted,
			TieredShare:        share,
			AllocsPerOp:        allocs,
		}
		if low != nil {
			row.Blocks, row.FusableBlocks, row.FullBlocks, _ = low.Summary()
		}
		out.Schemes = append(out.Schemes, row)
	}

	tb := &stats.Table{
		Title:   "Tier: fused superinstruction engine vs interpreter on Sightglass (host throughput, cycle-exact)",
		Columns: []string{"scheme", "interp instrs/s", "tier instrs/s", "speedup", "promoted", "tiered share", "blocks fused/full/total", "allocs/op"},
	}
	for _, r := range out.Schemes {
		tb.AddRow(r.Scheme,
			fmt.Sprintf("%.1fM", r.InterpInstrsPerSec/1e6),
			fmt.Sprintf("%.1fM", r.TierInstrsPerSec/1e6),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.PromotedBlocks),
			fmt.Sprintf("%.0f%%", 100*r.TieredShare),
			fmt.Sprintf("%d/%d/%d", r.FusableBlocks, r.FullBlocks, r.Blocks),
			fmt.Sprintf("%.1f", r.AllocsPerOp))
	}
	tb.AddNote("both engines retire identical architectural state, simulated cycles and check counters (sandbox differential corpus gate); the tier row additionally reports promotion telemetry from the engines and the shared per-image lowering")
	return out, tb, nil
}

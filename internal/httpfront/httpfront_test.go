package httpfront

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/faas"
	"hfi/internal/host"
	"hfi/internal/hostcall"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// unverifiable builds a tenant whose program compiles but fails static
// verification (memory.grow limit past the guard reservation), so every
// invoke resolves StatusRejected.
func unverifiable(name string) workloads.Tenant {
	m := wasm.NewModule(name, 1, 200_000)
	f := m.Func("run", 1)
	old := f.NewReg()
	f.Grow(old, f.Param(0))
	f.BrImm(isa.CondEQ, old, 0xFFFFFFFF, "fail")
	f.Ret(old)
	f.Label("fail")
	f.Trap()
	return workloads.Tenant{
		Name: name, Mod: m,
		MakeRequest: func(i int) []byte { return nil },
	}
}

// newFront builds a front over a fresh server with the standard test
// registry — a healthy tenant, a body-trapping tenant, and an unverifiable
// tenant, all under stock isolation — and a typed wire client over it.
func newFront(t *testing.T, cfg host.Config) (*Front, *Client) {
	t.Helper()
	light := workloads.FaaSTenantsLight()
	iso := faas.StockLucet()
	reg := map[string]Tenant{
		"html":    {Workload: light[3], Iso: iso},
		"xml":     {Workload: light[0], Iso: iso},
		"trap":    {Workload: workloads.TrapTenant("trap"), Iso: iso},
		"unverif": {Workload: unverifiable("unverif"), Iso: iso},
	}
	f := New(host.New(cfg), reg)
	ts := httptest.NewServer(f.Handler())
	c := NewClient(ts.URL)
	t.Cleanup(func() { c.CloseIdle(); ts.Close(); f.Host().Close() })
	return f, c
}

// invoke runs one request through the typed client, failing the test on
// transport errors (any HTTP status is a valid InvokeResult).
func invoke(t *testing.T, c *Client, tenant, body string) InvokeResult {
	t.Helper()
	res, err := c.Invoke(context.Background(), tenant, []byte(body), "")
	if err != nil {
		t.Fatalf("invoke %s: %v", tenant, err)
	}
	return res
}

// TestStatusCodeTable pins the full documented host.Status → HTTP map in
// both directions, and the envelope outcome each status serializes as.
func TestStatusCodeTable(t *testing.T) {
	want := map[host.Status]int{
		host.StatusOK:       200,
		host.StatusShed:     429,
		host.StatusRejected: 422,
		host.StatusTimeout:  504,
		host.StatusFault:    502,
		host.StatusClosed:   503,
		host.StatusCanceled: 499,
	}
	vocab := make(map[string]bool)
	for _, o := range EnvelopeOutcomes {
		vocab[o] = true
	}
	for st, code := range want {
		if got := StatusCode(st); got != code {
			t.Errorf("StatusCode(%v) = %d, want %d", st, got, code)
		}
		o, ok := OutcomeForCode(code)
		if !ok {
			t.Errorf("OutcomeForCode(%d) unmapped", code)
		}
		// 503 folds into the shed class client-side; everything else round-trips.
		if st == host.StatusClosed {
			if o != stats.OutcomeShed {
				t.Errorf("OutcomeForCode(503) = %v, want shed class", o)
			}
		}
		// Every error status must serialize to a closed-vocabulary outcome.
		if st != host.StatusOK {
			if eo := statusOutcome(st); !vocab[eo] {
				t.Errorf("statusOutcome(%v) = %q, not in EnvelopeOutcomes", st, eo)
			}
		}
	}
	if _, ok := OutcomeForCode(404); ok {
		t.Error("OutcomeForCode(404) should be unmapped")
	}
	// Reverse direction: the pinned retry hints follow the header contract.
	if RetryAfterMS(429) != 1000 || RetryAfterMS(503) != 5000 || RetryAfterMS(502) != 0 {
		t.Errorf("RetryAfterMS table drifted: 429→%d 503→%d 502→%d",
			RetryAfterMS(429), RetryAfterMS(503), RetryAfterMS(502))
	}
}

// TestInvokeEndToEnd drives every documented status over real HTTP and
// asserts the typed error envelope on every non-2xx path.
func TestInvokeEndToEnd(t *testing.T) {
	t.Run("ok", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1})
		res := invoke(t, c, "html", "")
		if res.Code != 200 {
			t.Fatalf("status %d, want 200", res.Code)
		}
		if res.RequestID == "" {
			t.Fatal("200 without a synthesized request id")
		}
	})
	t.Run("request_id_echoed", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1})
		res, err := c.Invoke(context.Background(), "html", nil, "req-test-7")
		if err != nil || res.Code != 200 {
			t.Fatalf("invoke: code %d err %v", res.Code, err)
		}
		if res.RequestID != "req-test-7" {
			t.Fatalf("request id %q, want echo of req-test-7", res.RequestID)
		}
	})
	t.Run("fault_502", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1})
		res, err := c.Invoke(context.Background(), "trap", []byte("boom"), "req-fault-1")
		if err != nil {
			t.Fatal(err)
		}
		if res.Code != 502 {
			t.Fatalf("status %d, want 502", res.Code)
		}
		if res.Envelope == nil {
			t.Fatalf("502 without an envelope: %s", res.Body)
		}
		if res.Envelope.Outcome != "fault" {
			t.Fatalf("envelope outcome %q, want fault", res.Envelope.Outcome)
		}
		if res.Envelope.RequestID != "req-fault-1" {
			t.Fatalf("envelope request_id %q, want req-fault-1", res.Envelope.RequestID)
		}
	})
	t.Run("rejected_422", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1})
		res := invoke(t, c, "unverif", "")
		if res.Code != 422 {
			t.Fatalf("status %d, want 422", res.Code)
		}
		if res.Envelope == nil || res.Envelope.Outcome != "rejected" {
			t.Fatalf("envelope %+v, want outcome rejected", res.Envelope)
		}
	})
	t.Run("timeout_504", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1, Fuel: 100})
		res := invoke(t, c, "html", "")
		if res.Code != 504 {
			t.Fatalf("status %d, want 504", res.Code)
		}
		if res.Envelope == nil || res.Envelope.Outcome != "timeout" {
			t.Fatalf("envelope %+v, want outcome timeout", res.Envelope)
		}
	})
	t.Run("unknown_tenant_404", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1})
		res := invoke(t, c, "nope", "")
		if res.Code != 404 {
			t.Fatalf("status %d, want 404", res.Code)
		}
		if res.Envelope == nil || res.Envelope.Outcome != "unknown_tenant" {
			t.Fatalf("envelope %+v, want outcome unknown_tenant", res.Envelope)
		}
	})
}

// TestOverloadShed429 saturates a depth-1 shed queue behind one slowed
// worker and asserts a real 429 with the Retry-After header and the
// matching envelope retry_after_ms hint.
func TestOverloadShed429(t *testing.T) {
	_, c := newFront(t, host.Config{
		Workers: 1, QueueDepth: 1, Policy: host.PolicyShed,
		DispatchWall: 50 * time.Millisecond,
	})
	// First request occupies the worker (50ms dispatch wall), second fills
	// the depth-1 queue, third must shed.
	bg := func() chan int {
		ch := make(chan int, 1)
		go func() {
			res, err := c.Invoke(context.Background(), "html", nil, "")
			if err != nil {
				ch <- 0
				return
			}
			ch <- res.Code
		}()
		return ch
	}
	c1 := bg()
	time.Sleep(10 * time.Millisecond)
	c2 := bg()
	time.Sleep(10 * time.Millisecond)

	res := invoke(t, c, "html", "")
	if res.Code != 429 {
		t.Fatalf("overload status %d, want 429", res.Code)
	}
	if res.RetryAfter == "" {
		t.Fatal("429 without Retry-After")
	}
	if res.Envelope == nil || res.Envelope.Outcome != "shed" || res.Envelope.RetryAfterMS != 1000 {
		t.Fatalf("envelope %+v, want outcome shed retry_after_ms 1000", res.Envelope)
	}
	if s1, s2 := <-c1, <-c2; s1 != 200 || s2 != 200 {
		t.Fatalf("background requests %d/%d, want 200/200", s1, s2)
	}
}

// TestDrainSemantics: POST /drainz flips /healthz to 503; after host.Close,
// invokes map StatusClosed → 503 with Retry-After.
func TestDrainSemantics(t *testing.T) {
	f, c := newFront(t, host.Config{Workers: 1})
	ctx := context.Background()

	if up, err := c.Healthz(ctx); err != nil || !up {
		t.Fatalf("healthz before drain: up=%v err=%v", up, err)
	}
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drainz: %v", err)
	}
	if up, err := c.Healthz(ctx); err != nil || up {
		t.Fatalf("healthz during drain: up=%v err=%v, want draining 503", up, err)
	}
	// Draining alone must not refuse work — the LB drains us, clients with
	// in-flight connections finish.
	if res := invoke(t, c, "html", ""); res.Code != 200 {
		t.Fatalf("invoke during drain: %d, want 200", res.Code)
	}
	f.Host().Close()
	res := invoke(t, c, "html", "")
	if res.Code != 503 {
		t.Fatalf("invoke after close: %d, want 503", res.Code)
	}
	if res.RetryAfter == "" {
		t.Fatal("503 without Retry-After")
	}
	if res.Envelope == nil || res.Envelope.Outcome != "closed" {
		t.Fatalf("envelope %+v, want outcome closed", res.Envelope)
	}
}

// TestClientDisconnectCancelsQueued is the end-to-end no-worker-occupancy
// proof over real HTTP: a blocker request holds the single worker, a
// victim request (own tenant) queues behind it, and the victim's client
// disconnects. The host must account one canceled request, zero executed
// requests for the victim tenant, and exactly one cold start — the
// blocker's. The worker never touched the victim.
func TestClientDisconnectCancelsQueued(t *testing.T) {
	f, c := newFront(t, host.Config{
		Workers: 1, QueueDepth: 4, DispatchWall: 60 * time.Millisecond,
	})

	blocker := make(chan int, 1)
	go func() {
		res, err := c.Invoke(context.Background(), "html", nil, "")
		if err != nil {
			blocker <- 0
			return
		}
		blocker <- res.Code
	}()
	time.Sleep(15 * time.Millisecond) // worker is inside the blocker's dispatch wall

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Invoke(ctx, "xml", nil, "")
		errc <- err
	}()
	time.Sleep(15 * time.Millisecond) // victim is queued behind the blocker
	cancel()                          // client goes away

	if err := <-errc; err == nil {
		t.Fatal("victim request unexpectedly got a response after its context was cancelled")
	}
	if code := <-blocker; code != 200 {
		t.Fatalf("blocker status %d", code)
	}

	// The cancel is resolved by the watcher under the scheduler lock, so it
	// is already accounted by the time both requests resolved.
	deadline := time.Now().Add(2 * time.Second)
	for {
		cn := f.Host().Counters()
		if cn.Canceled == 1 {
			if cn.ColdStarts != 1 {
				t.Fatalf("cold starts = %d, want 1 (victim must never occupy a worker)", cn.ColdStarts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled = %d after 2s, want 1 (%+v)", cn.Canceled, cn)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, tn := range f.Host().TenantSummaries() {
		if tn.Tenant == "xml" {
			if tn.Executed() != 0 || tn.Canceled != 1 {
				t.Fatalf("victim tenant %+v, want executed 0 canceled 1", tn)
			}
		}
	}
}

// TestStatszConservation: /statsz serves a valid StatszV1 whose global
// ledger conserves exactly across a burst of mixed-outcome traffic.
func TestStatszConservation(t *testing.T) {
	_, c := newFront(t, host.Config{Workers: 2})
	for i := 0; i < 10; i++ {
		invoke(t, c, "html", "")
	}
	for i := 0; i < 3; i++ {
		invoke(t, c, "trap", "boom")
	}
	invoke(t, c, "unverif", "")

	sz, err := c.Statsz(context.Background())
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if sz.Role != RoleShard {
		t.Fatalf("statsz role %q, want %q", sz.Role, RoleShard)
	}
	if sz.Serve == nil || sz.Counters == nil {
		t.Fatalf("shard statsz missing serve/counters: %+v", sz)
	}
	sum := sz.Serve
	accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
	if accounted != sz.Counters.Admitted || accounted != 14 {
		t.Fatalf("statsz ledger: accounted %d admitted %d, want 14", accounted, sz.Counters.Admitted)
	}
	if sum.OK != 10 || sum.Faults != 3 || sum.Rejected != 1 {
		t.Fatalf("statsz outcomes %+v, want 10 ok / 3 faults / 1 rejected", sum)
	}
	if len(sz.Tenants) != 3 {
		t.Fatalf("statsz tenants = %d, want 3", len(sz.Tenants))
	}
}

// TestStatszChaosSummary pins the /statsz chaos surface: a clean server
// omits the chaos key entirely; a server with an injector reports the
// per-class fire counts (including the substrate classes) and the
// substrate counters conserve on every surface the document exposes.
func TestStatszChaosSummary(t *testing.T) {
	t.Run("clean_server_omits_key", func(t *testing.T) {
		_, c := newFront(t, host.Config{Workers: 1})
		invoke(t, c, "html", "")
		resp, err := http.Get(c.Base() + "/statsz")
		if err != nil {
			t.Fatalf("statsz fetch: %v", err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("statsz read: %v", err)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("statsz decode: %v", err)
		}
		if _, present := doc["chaos"]; present {
			t.Fatalf("clean server exposes a chaos key: %s", raw)
		}
	})
	t.Run("injector_reported", func(t *testing.T) {
		// Every served request draws a spot-checked bit flip: each invoke
		// is detected as substrate corruption and surfaces as a 502.
		inj := chaos.New(chaos.Config{Seed: 5, BitFlip: 1.0, SpotCheck: 1.0})
		_, c := newFront(t, host.Config{Workers: 1, Chaos: inj})
		const n = 4
		for i := 0; i < n; i++ {
			res := invoke(t, c, "html", "")
			if res.Code != 502 {
				t.Fatalf("invoke %d: status %d, want 502 (substrate fault)", i, res.Code)
			}
		}
		sz, err := c.Statsz(context.Background())
		if err != nil {
			t.Fatalf("statsz: %v", err)
		}
		if sz.Chaos == nil {
			t.Fatal("chaos-injected server reports no chaos summary")
		}
		if sz.Chaos.BitFlip != n {
			t.Fatalf("chaos.bitflip = %d, want %d", sz.Chaos.BitFlip, n)
		}
		sc := sz.Counters.Substrate
		if sc != sz.Serve.Substrate {
			t.Fatalf("counters substrate %+v != serve substrate %+v", sc, sz.Serve.Substrate)
		}
		if sc.Injected != n || sc.Detected != n || sc.Recovered != n || sc.Benign != 0 {
			t.Fatalf("substrate counters %+v, want %d injected == detected == recovered", sc, n)
		}
		var tsum stats.SubstrateCounters
		for _, tn := range sz.Tenants {
			tsum.Add(tn.Substrate)
		}
		if tsum != sc {
			t.Fatalf("tenant substrate counters %+v do not sum to global %+v", tsum, sc)
		}
		if sz.Serve.Faults != n {
			t.Fatalf("faults = %d, want %d (substrate faults fold into fault)", sz.Serve.Faults, n)
		}
	})
}

// TestHostcallOverHTTP is the quickstart scenario end-to-end: the
// stateful KV-session tenant and the streaming transformer served over
// real HTTP, with the /statsz hostcall counters conserving exactly —
// the global boundary traffic is the sum of the per-tenant attributions.
func TestHostcallOverHTTP(t *testing.T) {
	world := hostcall.NewWorld(21)
	iso := faas.Config{Name: "HFI", Scheme: sfi.HFI, World: world}
	var kv, stream workloads.Tenant
	for _, te := range workloads.HostcallTenants() {
		switch te.Name {
		case "kv-session":
			kv = te
		case "stream-xform":
			stream = te
		}
	}
	reg := map[string]Tenant{
		"kv":     {Workload: kv, Iso: iso},
		"stream": {Workload: stream, Iso: iso},
	}
	f := New(host.New(host.Config{Workers: 1}), reg)
	ts := httptest.NewServer(f.Handler())
	c := NewClient(ts.URL)
	t.Cleanup(func() { c.CloseIdle(); ts.Close(); f.Host().Close() })

	// Multi-invoke stateful session: the counter accumulates across HTTP
	// requests because the state lives in the shared world's KV store.
	counter := func(body string) uint64 {
		res := invoke(t, c, "kv", body)
		if res.Code != 200 {
			t.Fatalf("kv invoke status %d", res.Code)
		}
		if len(res.Body) != 8 {
			t.Fatalf("kv response %d bytes, want 8", len(res.Body))
		}
		return binary.LittleEndian.Uint64(res.Body)
	}
	var want uint64
	for _, body := range []string{"abc", "d", "hello world"} {
		for _, ch := range []byte(body) {
			want += uint64(ch)
		}
		if got := counter(body); got != want {
			t.Fatalf("session counter after %q = %d, want %d", body, got, want)
		}
	}

	// Streaming body: request flows to the guest via fd 0, the response is
	// whatever reached fd 1 — here the XOR transform of the body.
	payload := strings.Repeat("streaming over hfihttpd! ", 30) // > one 512 B chunk
	res := invoke(t, c, "stream", payload)
	if res.Code != 200 {
		t.Fatalf("stream invoke status %d", res.Code)
	}
	if len(res.Body) != len(payload) {
		t.Fatalf("streamed %d of %d bytes", len(res.Body), len(payload))
	}
	for i := range res.Body {
		if res.Body[i] != payload[i]^0x5a {
			t.Fatalf("stream byte %d = %#x, want %#x", i, res.Body[i], payload[i]^0x5a)
		}
	}

	// Hostcall counter conservation on /statsz: global == Σ per-tenant,
	// and both tenants actually crossed the boundary.
	sz, err := c.Statsz(context.Background())
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	var sum stats.HostcallCounters
	for _, tn := range sz.Tenants {
		if tn.Hostcalls.Calls == 0 {
			t.Fatalf("tenant %s recorded no hostcalls", tn.Tenant)
		}
		sum.Add(tn.Hostcalls)
	}
	if sum != sz.Serve.Hostcalls {
		t.Fatalf("hostcall conservation: tenants %+v != global %+v", sum, sz.Serve.Hostcalls)
	}
	if sz.Serve.Hostcalls.Calls == 0 || sz.Serve.Hostcalls.BytesIn == 0 || sz.Serve.Hostcalls.BytesOut == 0 {
		t.Fatalf("degenerate hostcall traffic: %+v", sz.Serve.Hostcalls)
	}

	// Tier counter conservation on /statsz: global == Σ per-tenant, the
	// engines actually retired instructions, and the counters surface in
	// host.Counters too (the lowering cache must have been exercised by
	// provisioning).
	var tsum stats.TierCounters
	for _, tn := range sz.Tenants {
		tsum.Add(tn.Tier)
	}
	if tsum != sz.Serve.Tier {
		t.Fatalf("tier conservation: tenants %+v != global %+v", tsum, sz.Serve.Tier)
	}
	if sz.Serve.Tier.TieredInstrs+sz.Serve.Tier.InterpInstrs == 0 {
		t.Fatalf("tiered engines retired nothing: %+v", sz.Serve.Tier)
	}
	if sz.Counters.TierInstrs != sz.Serve.Tier.TieredInstrs ||
		sz.Counters.TierInterpInstrs != sz.Serve.Tier.InterpInstrs ||
		sz.Counters.TierPromotedBlocks != sz.Serve.Tier.PromotedBlocks {
		t.Fatalf("host counters disagree with recorder: %+v vs %+v", sz.Counters, sz.Serve.Tier)
	}
	if sz.Counters.LoweringHits+sz.Counters.LoweringMisses == 0 {
		t.Fatalf("lowering cache never consulted: %+v", sz.Counters)
	}
}

// TestOpenLoopHTTPGenerator: the HTTP open-loop generator produces a
// conserving sweep point against a live front through the typed client.
func TestOpenLoopHTTPGenerator(t *testing.T) {
	_, c := newFront(t, host.Config{Workers: 2, QueueDepth: 4, Policy: host.PolicyShed})
	pt, err := RunOpenLoopHTTP(c, []string{"html", "xml"}, 500, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	accounted := pt.OK + pt.Timeouts + pt.Faults + pt.Shed + pt.Rejected + pt.Canceled
	if accounted != 50 {
		t.Fatalf("generator accounted %d of 50: %+v", accounted, pt)
	}
	if pt.OK == 0 {
		t.Fatalf("no successes at moderate load: %+v", pt)
	}
}

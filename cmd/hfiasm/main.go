// Command hfiasm assembles guest programs from textual assembly (the
// syntax documented on isa.Assemble), disassembles them back, and can run
// them directly — the quickest way to experiment with HFI's instructions,
// including hmov and the enter/exit pair, without writing Go.
//
//	hfiasm prog.s                  # assemble + disassemble (syntax check)
//	hfiasm -verify prog.s          # + structural verifier passes and CFG stats
//	hfiasm -run prog.s             # assemble and execute (emulation engine)
//	hfiasm -run -engine sim prog.s # on the cycle-level core
//	echo 'movi r0, 42
//	halt' | hfiasm -run -
//
// Programs are loaded at 0x1000 with 64 KiB of scratch memory mapped RW at
// 0x100000 and a stack at 0x200000; execution starts at the first
// instruction (or at the label `main` if defined) and ends at halt. R0-R7
// are printed on exit.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/verifier"
)

const (
	codeBase    = 0x1000
	scratchBase = 0x100000
	scratchSize = 0x10000
	stackTop    = 0x201000
)

func main() {
	runIt := flag.Bool("run", false, "execute the program after assembling")
	engine := flag.String("engine", "emu", "engine for -run: emu or sim")
	verify := flag.Bool("verify", false, "run the structural verifier passes and print CFG statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hfiasm [-verify] [-run] [-engine emu|sim] <file.s | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}

	prog, err := isa.Assemble(codeBase, string(src))
	if err != nil {
		fatal(err)
	}

	if *verify {
		// Raw assembly has no sandbox geometry, so only the geometry-free
		// passes apply: structural well-formedness and CFG construction.
		cfg, err := verifier.VerifyStructure(prog)
		if err != nil {
			var re *verifier.RejectError
			if errors.As(err, &re) {
				fatal(fmt.Errorf("verify: %v", re.First()))
			}
			fatal(err)
		}
		indirect := 0
		for _, b := range cfg.Blocks {
			if b.Indirect {
				indirect++
			}
		}
		fmt.Printf("verify: structural ok — %d instructions, %d blocks, %d indirect-branch blocks\n",
			len(prog.Instrs), len(cfg.Blocks), indirect)
	}

	if !*runIt {
		fmt.Print(isa.Disassemble(prog))
		return
	}

	m := cpu.NewMachine()
	if err := m.AS.MapFixed(scratchBase, scratchSize, kernel.ProtRead|kernel.ProtWrite); err != nil {
		fatal(err)
	}
	if err := m.AS.MapFixed(stackTop-0x1000, 0x1000, kernel.ProtRead|kernel.ProtWrite); err != nil {
		fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		fatal(err)
	}
	m.Regs[isa.SP] = stackTop
	m.PC = prog.Base
	if _, ok := prog.Symbols["main"]; ok {
		m.PC = prog.Entry("main")
	}

	var eng cpu.Engine
	switch *engine {
	case "emu":
		eng = cpu.NewInterp(m)
	case "sim":
		eng = cpu.NewCore(m)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	res := eng.Run(100_000_000)
	fmt.Printf("stopped: %v", res.Reason)
	if res.Fault != nil {
		fmt.Printf(" (%v)", res.Fault)
	}
	fmt.Println()
	for r := isa.R0; r <= isa.R7; r++ {
		fmt.Printf("  %-3s = %#x (%d)\n", r, m.Regs[r], m.Regs[r])
	}
	fmt.Printf("  instructions: %d, simulated time: %dns\n", m.Instret, m.Kern.Clock.Now())
	if c, ok := eng.(*cpu.Core); ok {
		fmt.Printf("  cycles: %d\n", c.Cycles())
	}
	if len(m.Kern.ConsoleOut) > 0 {
		fmt.Printf("  console: %q\n", m.Kern.ConsoleOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hfiasm:", err)
	os.Exit(1)
}

// Package chaos is a deterministic, seeded fault injector for the serving
// layer (internal/host). It exists to answer the question the happy-path
// demo never asks: what happens when provisioning fails transiently, a
// guest traps mid-request, a worker stalls, or a faulted instance comes
// back with state its Reset failed to clear?
//
// Every decision is a pure function of (seed, fault class, tenant, seq) —
// an FNV-1a hash, not a sequential PRNG draw — so the fault schedule is
// identical no matter how goroutines interleave. That is what makes
// chaos soaks reproducible: the same seed yields the same set of trapped,
// starved, and rejected requests on every run, on every machine, under any
// worker count (the reproducibility discipline the gem5 refresh argues
// robustness experiments need). Decision methods are nil-safe: a nil
// *Injector injects nothing, so the host's hot path carries no
// chaos-enabled branch.
//
// The injector covers the seams the host already has:
//
//   - Provision/ProvisionShared errors — ProvisionError fails the first
//     k(tenant) attempts of every provisioning call with a transient error
//     (retryable; see faas.IsTransient), exercising the host's
//     backoff-and-retry path.
//   - Admission-time verifier rejections — RejectAtAdmission refuses a
//     deterministic subset of requests before they touch a sandbox,
//     exercising the StatusRejected taxonomy.
//   - Guest traps — Trap marks requests that abort mid-run with a fault
//     and mid-request garbage in the heap, exercising quarantine + Reset.
//   - Fuel exhaustion — StarveFuel shrinks the instruction budget so the
//     request genuinely stops with cpu.StopLimit (the timeout path).
//   - Worker slowdowns — SlowDown adds wall latency to a request's
//     dispatch, exercising queueing, backpressure, and fairness.
//   - Poisoned instances — Poison marks faults whose instance keeps
//     corrupted state even after Reset, exercising the host's verified
//     reset (heap-hash check) and quarantine discard.
//   - Hostcall-layer faults — Hostcall arms one of the hostcall
//     environment's fault modes for a request (a transient resource
//     error, quota exhaustion, or a slow host call), exercising guests'
//     errno handling without ever breaching the isolation boundary.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"hfi/internal/hostcall"
)

// Fault enumerates the injectable fault classes.
type Fault uint8

// Fault classes.
const (
	FaultProvision Fault = iota // transient provisioning failure
	FaultReject                 // transient verifier rejection at admission
	FaultTrap                   // guest trap mid-request
	FaultFuel                   // fuel starvation (timeout path)
	FaultSlow                   // worker slowdown
	FaultPoison                 // post-Reset instance corruption
	FaultHostcall               // hostcall-layer fault (error/quota/slow)
	numFaults
)

var faultNames = [...]string{"provision", "reject", "trap", "fuel", "slow", "poison", "hostcall"}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Config sets the per-class injection rates. All rates are probabilities
// in [0, 1] evaluated per (tenant, seq) — or per tenant for provisioning.
type Config struct {
	Seed int64

	// Provision is the fraction of tenants whose provisioning calls fail
	// transiently; an affected tenant's calls fail the first k attempts
	// (1 ≤ k ≤ MaxProvisionFails) and then succeed, so a host retrying at
	// least MaxProvisionFails times always provisions eventually.
	Provision         float64
	MaxProvisionFails int // default 2

	// Reject is the per-request probability of a transient verifier
	// rejection at admission.
	Reject float64

	// Trap is the per-request probability of an injected guest trap.
	Trap float64

	// Fuel is the per-request probability of fuel starvation; a starved
	// request runs with StarvedFuel instead of its configured budget.
	Fuel        float64
	StarvedFuel uint64 // default 64 instructions

	// Slow is the per-request probability of a worker slowdown of SlowFor.
	Slow    float64
	SlowFor time.Duration // default 2ms

	// Poison is the probability that a faulted request leaves its instance
	// corrupted even after Reset (the incomplete-reset bug the quarantine
	// hash check must catch).
	Poison float64

	// Hostcall is the per-request probability of an injected
	// hostcall-layer fault. Affected requests draw a submode uniformly:
	// a one-shot transient resource error (EIO), quota exhaustion on
	// kv_put (EDQUOT), or a slow host call (extra simulated latency).
	// Only the first two can change a guest's observable output; a slow
	// call shifts simulated time alone.
	Hostcall float64
}

// Injector makes deterministic fault decisions and counts what it injected.
// All methods are safe for concurrent use and nil-safe (a nil injector
// never injects).
type Injector struct {
	cfg    Config
	counts [numFaults]atomic.Uint64
}

// New builds an injector from cfg, applying defaults for zero knobs.
func New(cfg Config) *Injector {
	if cfg.MaxProvisionFails <= 0 {
		cfg.MaxProvisionFails = 2
	}
	if cfg.StarvedFuel == 0 {
		cfg.StarvedFuel = 64
	}
	if cfg.SlowFor == 0 {
		cfg.SlowFor = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Default is the standard moderate-rate injector the hfiserve -chaos flag
// and the soak tests use: every fault class active, none dominant.
func Default(seed int64) *Injector {
	return New(Config{
		Seed:      seed,
		Provision: 0.5, MaxProvisionFails: 2,
		Reject: 0.02,
		Trap:   0.05,
		Fuel:   0.05,
		Slow:   0.05, SlowFor: time.Millisecond,
		Poison:   0.5,
		Hostcall: 0.05,
	})
}

// Seed echoes the injector's seed (for reproducibility records).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// FaultError is the typed error of injected provisioning failures and
// admission rejections. It implements Transient() so faas.IsTransient
// classifies it as retryable.
type FaultError struct {
	Class   Fault
	Tenant  string
	Attempt int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault (tenant %s, attempt %d)", e.Class, e.Tenant, e.Attempt)
}

// Transient marks injected faults as retryable (see faas.IsTransient).
func (e *FaultError) Transient() bool { return true }

// roll returns the deterministic uniform [0,1) draw for one decision.
// FNV-1a over (seed, class, tenant, seq): pure, order-independent,
// goroutine-independent.
func (in *Injector) roll(class Fault, tenant string, seq int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for sh := 0; sh < 64; sh += 8 {
		mix(byte(uint64(in.cfg.Seed) >> sh))
	}
	mix(byte(class))
	for i := 0; i < len(tenant); i++ {
		mix(tenant[i])
	}
	for sh := 0; sh < 64; sh += 8 {
		mix(byte(uint64(seq) >> sh))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// provisionFails returns how many consecutive attempts of tenant's
// provisioning calls fail before one succeeds (0 for unaffected tenants).
func (in *Injector) provisionFails(tenant string) int {
	if in.roll(FaultProvision, tenant, 0) >= in.cfg.Provision {
		return 0
	}
	// 1..MaxProvisionFails, drawn from an independent decision.
	k := int(in.roll(FaultProvision, tenant, 1) * float64(in.cfg.MaxProvisionFails))
	return k + 1
}

// ProvisionError fails the attempt'th try (0-based) of a provisioning call
// for tenant, or returns nil. Affected tenants fail a fixed prefix of
// attempts, so a host retrying ≥ MaxProvisionFails times always succeeds —
// which keeps chaos-soak outcome counts deterministic.
func (in *Injector) ProvisionError(tenant string, attempt int) error {
	if in == nil || attempt >= in.provisionFails(tenant) {
		return nil
	}
	in.counts[FaultProvision].Add(1)
	return &FaultError{Class: FaultProvision, Tenant: tenant, Attempt: attempt}
}

// RejectAtAdmission returns a transient verifier-rejection error for the
// chosen requests, nil otherwise. The host surfaces it as StatusRejected
// without provisioning anything.
func (in *Injector) RejectAtAdmission(tenant string, seq int) error {
	if in == nil || in.roll(FaultReject, tenant, seq) >= in.cfg.Reject {
		return nil
	}
	in.counts[FaultReject].Add(1)
	return &FaultError{Class: FaultReject, Tenant: tenant, Attempt: seq}
}

// Trap reports whether the request aborts with an injected guest trap.
func (in *Injector) Trap(tenant string, seq int) bool {
	if in == nil || in.roll(FaultTrap, tenant, seq) >= in.cfg.Trap {
		return false
	}
	in.counts[FaultTrap].Add(1)
	return true
}

// StarveFuel returns the starved instruction budget for the chosen
// requests (ok=true), forcing a genuine cpu.StopLimit timeout.
func (in *Injector) StarveFuel(tenant string, seq int) (uint64, bool) {
	if in == nil || in.roll(FaultFuel, tenant, seq) >= in.cfg.Fuel {
		return 0, false
	}
	in.counts[FaultFuel].Add(1)
	return in.cfg.StarvedFuel, true
}

// SlowDown returns the extra dispatch wall time injected into the request
// (0 for most).
func (in *Injector) SlowDown(tenant string, seq int) time.Duration {
	if in == nil || in.roll(FaultSlow, tenant, seq) >= in.cfg.Slow {
		return 0
	}
	in.counts[FaultSlow].Add(1)
	return in.cfg.SlowFor
}

// Poison reports whether the faulted request leaves its instance corrupted
// after Reset. Only meaningful on requests that faulted or timed out.
func (in *Injector) Poison(tenant string, seq int) bool {
	if in == nil || in.roll(FaultPoison, tenant, seq) >= in.cfg.Poison {
		return false
	}
	in.counts[FaultPoison].Add(1)
	return true
}

// Hostcall returns the hostcall-layer fault armed for the request
// (hostcall.FaultNone for most). An affected request draws its submode —
// transient error, quota exhaustion, slow call — from an independent
// deterministic decision, so the full fault schedule is still a pure
// function of (seed, tenant, seq).
func (in *Injector) Hostcall(tenant string, seq int) hostcall.Fault {
	if in == nil || in.roll(FaultHostcall, tenant, seq) >= in.cfg.Hostcall {
		return hostcall.FaultNone
	}
	in.counts[FaultHostcall].Add(1)
	switch m := in.roll(FaultHostcall, tenant+"/mode", seq); {
	case m < 1.0/3:
		return hostcall.FaultErr
	case m < 2.0/3:
		return hostcall.FaultQuota
	default:
		return hostcall.FaultSlow
	}
}

// Clean reports whether the request runs to normal completion under this
// injector AND produces its fault-free output: no trap, no fuel
// starvation, no admission rejection, and no hostcall fault that can
// change what the guest computes (an error or quota submode; a slow call
// only shifts time). Slowdowns, provisioning retries, and poisoning change
// timing and pool churn but not the request's outcome. Reference checksum
// computations use this to know which response bodies a chaos run must
// still produce bit-identically.
func (in *Injector) Clean(tenant string, seq int) bool {
	if in == nil {
		return true
	}
	if in.roll(FaultHostcall, tenant, seq) < in.cfg.Hostcall &&
		in.roll(FaultHostcall, tenant+"/mode", seq) < 2.0/3 {
		return false
	}
	return in.roll(FaultTrap, tenant, seq) >= in.cfg.Trap &&
		in.roll(FaultFuel, tenant, seq) >= in.cfg.Fuel &&
		in.roll(FaultReject, tenant, seq) >= in.cfg.Reject
}

// Summary counts injected faults by class.
type Summary struct {
	Provision uint64 `json:"provision"`
	Reject    uint64 `json:"reject"`
	Trap      uint64 `json:"trap"`
	Fuel      uint64 `json:"fuel"`
	Slow      uint64 `json:"slow"`
	Poison    uint64 `json:"poison"`
	Hostcall  uint64 `json:"hostcall"`
}

// Total sums all injected faults.
func (s Summary) Total() uint64 {
	return s.Provision + s.Reject + s.Trap + s.Fuel + s.Slow + s.Poison + s.Hostcall
}

// Snapshot reports how many faults of each class were actually injected so
// far (decisions that returned "inject", counted once per query).
func (in *Injector) Snapshot() Summary {
	if in == nil {
		return Summary{}
	}
	return Summary{
		Provision: in.counts[FaultProvision].Load(),
		Reject:    in.counts[FaultReject].Load(),
		Trap:      in.counts[FaultTrap].Load(),
		Fuel:      in.counts[FaultFuel].Load(),
		Slow:      in.counts[FaultSlow].Load(),
		Poison:    in.counts[FaultPoison].Load(),
		Hostcall:  in.counts[FaultHostcall].Load(),
	}
}

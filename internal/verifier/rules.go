package verifier

import "sort"

// ruleRegistry is the closed set of rule identifiers a Violation may
// carry, with a one-line description each. Every violate() call site and
// every hand-built Violation must use a registered name: callers
// (admission stats, the CLI, the lint in internal/lint) key on these
// strings, so an unregistered or misspelled rule would silently fall out
// of their tables. A map literal keeps the set unique by construction
// (duplicate keys are a compile error); cmd/hfilint statically
// cross-checks that the literals at the call sites all appear here.
var ruleRegistry = map[string]string{
	"structural":      "program fails isa.Program.Validate well-formedness",
	"diverged":        "abstract interpretation fixpoint did not converge",
	"reserved-reg":    "write or call violates a scheme-reserved register invariant",
	"call-stack":      "return-address push not provably inside the frame window",
	"ret-stack":       "SP not provably at the entry SP at ret",
	"ret-fp":          "FP not provably restored to the caller's at ret",
	"stack-frame":     "frame access outside [-StackGuard, 0) of the entry SP",
	"mem-window":      "access not provably inside any sandbox window",
	"global-store":    "store to a global-area address that is not a trusted cell",
	"cell-invariant":  "trusted-cell store value breaks the cell invariant",
	"hfi-region":      "hld/hst region operand or displacement malformed",
	"hfi-dead-access": "hld/hst displacement makes every execution fault",
	"region-update":   "hfi_get/set_region outside the staged grow protocol",
	"hostcall-gate":   "hostcall gate malformed or enterable other than by direct call",
	"hostcall":        "hostcall number or marshalling bounds not proven at a call site",
	"syscall":         "syscall is not the admitted mprotect-over-heap shape",
	"privileged-op":   "instruction outside the scheme's allowlist",
	"indirect-target": "indirect branch target not a provable address-taken constant",

	// Fact-audit rules (AuditFacts): a claimed Facts artifact failed the
	// independent re-derivation. These mark tampered or stale proofs, not
	// unsafe programs.
	"fact-shape":     "facts artifact does not match the program's shape",
	"fact-claim":     "claimed per-instruction fact not re-derivable",
	"fact-window":    "claimed resident interval or window inconsistent with the geometry",
	"fact-dominated": "claimed dominating check is not a dominator",
	"fact-hostcall":  "claimed hostcall fact disagrees with the call-site proof",
	"fact-block":     "claimed block fact not re-derivable",
}

// Rules returns the registered rule names, sorted. cmd/hfilint uses it as
// the source of truth when checking verifier call sites, and tests assert
// the registry covers every rule the analysis can emit.
func Rules() []string {
	out := make([]string, 0, len(ruleRegistry))
	for r := range ruleRegistry {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RuleDescription returns the one-line description of a registered rule
// ("" for unknown rules).
func RuleDescription(name string) string { return ruleRegistry[name] }

#!/bin/sh
# loadtest.sh — short deterministic open-loop load gate (`make loadtest`).
#
# Two sweeps, both built-in generators (seeded Poisson arrivals, no
# external tools), both gated on p99 vs a checked-in baseline:
#
#   1. Single-host: hfiserve -mode sweep at three offered rates —
#      comfortably below, around, and far past one/two-worker capacity.
#   2. Cluster: hfirouter -selfdrive drives the same open-loop sweep
#      through the consistent-hash router over 3 real shard subprocesses,
#      one fresh cluster per rate point, with exact fleet-wide outcome
#      conservation (Σ shard delivered == router admitted) checked at
#      every point.
#
# Either gate fails if any point's p99 exceeds its baseline by more than
# the tolerance, if the outcome ledger does not conserve exactly, or if
# any rate serves zero successes.
#
# The tolerance is a multiplier (default 4x single-host, 3x cluster), not
# a percentage: wall-clock latency on shared CI hardware is noisy, and a
# real regression — an accidental lock across dispatch, a lost fast
# path — shows up as a multiple. PolicyShed keeps p99 bounded at the
# overloaded point, so the gate stays meaningful past the knee.
#
# Regenerate the baselines after an intentional perf change (-check ""
# disables the gate for the recording run):
#   scripts/loadtest.sh -check "" -json > scripts/loadtest_baseline.json
#   go run ./cmd/hfirouter -selfdrive -shards 3 -rates 300,900 \
#       -requests 120 -seed 1 -json -check "" > scripts/cluster_baseline.json
#
# Usage: scripts/loadtest.sh [extra hfiserve flags for the single-host leg]
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/hfiserve -mode sweep \
	-workers 2 \
	-rates 300,900,2500 \
	-requests 120 \
	-policy shed -queue 16 -dispatch 300us -seed 1 \
	-check scripts/loadtest_baseline.json \
	"$@"

exec go run ./cmd/hfirouter -selfdrive \
	-shards 3 \
	-rates 300,900 \
	-requests 120 \
	-seed 1 \
	-check scripts/cluster_baseline.json

package verifier

import (
	"hfi/internal/isa"
	"hfi/internal/sfi"
)

// Fixpoint tuning. Widening thresholds trade precision for convergence
// speed; the visit caps are safety valves that turn a diverging analysis
// into a rejection instead of a hang.
const (
	joinWidenAfter = 3
	sumWidenAfter  = 4
	maxBlockVisits = 60000
	maxFnRounds    = 6000
)

// fnAnalysis is the interprocedural summary and intra-procedural fixpoint
// state of one function (one call-target entry point). The analysis is
// context-insensitive: parameter intervals join over all call sites and
// the return interval joins over all rets.
type fnAnalysis struct {
	entry      int
	in         map[int]*absState // block start index -> joined in-state
	joins      map[int]int
	summary    [6]Interval // joined argument intervals (R0..R5)
	summarySet bool
	sumJoins   int
	ret        Interval
	retSet     bool
	retJoins   int
	callers    map[int]bool // entries of functions that call this one
	queued     bool
	visits     int
}

type worklist struct {
	order []int
	in    map[int]bool
}

func (w *worklist) push(b int) {
	if w.in == nil {
		w.in = map[int]bool{}
	}
	if !w.in[b] {
		w.in[b] = true
		w.order = append(w.order, b)
	}
}

func (w *worklist) pop() (int, bool) {
	if len(w.order) == 0 {
		return 0, false
	}
	b := w.order[0]
	w.order = w.order[1:]
	delete(w.in, b)
	return b, true
}

// analyze runs passes 2 and 3: per-function abstract interpretation to a
// global interprocedural fixpoint, recording violations as it goes.
func (v *verification) analyze() {
	v.checkHostcallGate()
	v.isLeader = leaders(v.p)
	v.addrTaken = make([]bool, len(v.p.Instrs))
	for _, t := range IndirectTargets(v.p) {
		v.addrTaken[t] = true
	}
	v.rootEntry = v.entryIndex()
	v.fns = map[int]*fnAnalysis{}
	root := v.getFn(v.rootEntry)
	for i := range root.summary {
		root.summary[i] = Top
	}
	root.summarySet = true
	v.enqueueFn(root)
	for rounds := 0; len(v.fnWork) > 0; rounds++ {
		if rounds > maxFnRounds {
			v.violate(-1, "diverged", "interprocedural fixpoint did not converge")
			return
		}
		f := v.fns[v.fnWork[0]]
		v.fnWork = v.fnWork[1:]
		f.queued = false
		v.runFn(f)
	}
}

func (v *verification) getFn(entry int) *fnAnalysis {
	if f, ok := v.fns[entry]; ok {
		return f
	}
	f := &fnAnalysis{
		entry:   entry,
		in:      map[int]*absState{},
		joins:   map[int]int{},
		callers: map[int]bool{},
	}
	v.fns[entry] = f
	return f
}

func (v *verification) enqueueFn(f *fnAnalysis) {
	if !f.queued {
		f.queued = true
		v.fnWork = append(v.fnWork, f.entry)
	}
}

// fnEntryState builds the state a function is entered with. The program
// entry trusts nothing (all registers unconstrained: the springboard, not
// the guest, sets them). Called functions assume the ABI: SP is the frame
// symbol S, FP is the caller's (to be restored), arguments carry the
// joined call-site intervals, and the scheme's reserved registers hold
// their invariants — justified because every call site checks them.
func (v *verification) fnEntryState(f *fnAnalysis) *absState {
	st := newState()
	if f.entry == v.rootEntry {
		return st
	}
	st.regs[isa.SP] = stackVal(0)
	st.regs[sfi.FP] = AbsVal{I: Top, CallerFP: true}
	for i := 0; i < 6; i++ {
		st.regs[isa.R0+isa.Reg(i)] = intervalVal(f.summary[i])
	}
	v.applyReservedInvariants(st)
	return st
}

// applyReservedInvariants sets the scheme's reserved registers to their
// globally maintained values (checked at every write and call site).
func (v *verification) applyReservedInvariants(st *absState) {
	switch v.cfg.Scheme {
	case sfi.None, sfi.GuardPages:
		st.regs[sfi.HeapBaseReg] = exactVal(v.cfg.HeapBase)
	case sfi.BoundsCheck:
		st.regs[sfi.HeapBaseReg] = exactVal(v.cfg.HeapBase)
		st.regs[sfi.HeapBoundReg] = intervalVal(Interval{0, v.cfg.MaxBytes})
	case sfi.Masking:
		st.regs[sfi.HeapBaseReg] = exactVal(v.cfg.HeapBase)
		st.regs[sfi.MaskReg] = exactVal(v.cfg.InitBytes - 1)
	}
}

// checkReservedWrite validates a just-performed write to a reserved
// register against the scheme invariant.
func (v *verification) checkReservedWrite(st *absState, idx int, rd isa.Reg) {
	if rd == isa.RegNone {
		return
	}
	val := st.regs[rd]
	bad := func(want string) {
		v.violate(idx, "reserved-reg", "write to %v must be %s", rd, want)
	}
	switch v.cfg.Scheme {
	case sfi.None, sfi.GuardPages:
		if rd == sfi.HeapBaseReg {
			if c, ok := val.I.Singleton(); !ok || c != v.cfg.HeapBase {
				bad("the heap base")
			}
		}
	case sfi.BoundsCheck:
		if rd == sfi.HeapBaseReg {
			if c, ok := val.I.Singleton(); !ok || c != v.cfg.HeapBase {
				bad("the heap base")
			}
		}
		if rd == sfi.HeapBoundReg && !val.I.In(Interval{0, v.cfg.MaxBytes}) {
			bad("within [0, max heap bytes]")
		}
	case sfi.Masking:
		if rd == sfi.HeapBaseReg {
			if c, ok := val.I.Singleton(); !ok || c != v.cfg.HeapBase {
				bad("the heap base")
			}
		}
		if rd == sfi.MaskReg {
			if c, ok := val.I.Singleton(); !ok || c != v.cfg.InitBytes-1 {
				bad("the heap mask")
			}
		}
	}
}

// checkReservedAtCall asserts the invariants hold when control leaves the
// current function (the callee entry state assumes them).
func (v *verification) checkReservedAtCall(st *absState, idx int) {
	probe := st.clone()
	v.applyReservedInvariants(probe)
	check := func(r isa.Reg) {
		want := probe.regs[r].I
		if !st.regs[r].I.In(want) {
			v.violate(idx, "reserved-reg", "%v does not hold its invariant at call", r)
		}
	}
	switch v.cfg.Scheme {
	case sfi.None, sfi.GuardPages:
		check(sfi.HeapBaseReg)
	case sfi.BoundsCheck:
		check(sfi.HeapBaseReg)
		check(sfi.HeapBoundReg)
	case sfi.Masking:
		check(sfi.HeapBaseReg)
		check(sfi.MaskReg)
	}
}

// runFn drives the intra-procedural block fixpoint for f under its
// current parameter summary.
func (v *verification) runFn(f *fnAnalysis) {
	if !f.summarySet {
		return
	}
	var work worklist
	v.updateIn(f, -1, f.entry, v.fnEntryState(f), &work)
	// Re-seed every known block: callee summaries may have grown since
	// the last run, and transfer re-reads them.
	for b := range f.in {
		work.push(b)
	}
	for {
		b, ok := work.pop()
		if !ok {
			return
		}
		f.visits++
		if f.visits > maxBlockVisits {
			v.violate(f.entry, "diverged", "block fixpoint did not converge")
			return
		}
		v.transferBlock(f, b, &work)
	}
}

// updateIn joins the state flowing along the edge src -> b into block b's
// in-state and schedules b when it changed. Widening applies only at the
// targets of retreating edges (loop heads): every cycle contains one, so
// the fixpoint still terminates, while the forward edge out of a
// compare-and-branch keeps its refinement instead of having the bound
// blown back out to the next widening threshold.
func (v *verification) updateIn(f *fnAnalysis, src, b int, ns *absState, work *worklist) {
	cur, ok := f.in[b]
	if !ok {
		f.in[b] = ns.clone()
		work.push(b)
		return
	}
	widen := false
	if src >= b {
		f.joins[b]++
		widen = f.joins[b] > joinWidenAfter
	}
	if cur.merge(ns, widen) {
		work.push(b)
	}
}

// transferBlock abstractly executes the block starting at instruction
// index b and propagates its out-states along the edges.
func (v *verification) transferBlock(f *fnAnalysis, b int, work *worklist) {
	st := f.in[b].clone()
	for idx := b; idx < len(v.p.Instrs); idx++ {
		in := &v.p.Instrs[idx]
		if !v.step(f, st, idx, in, work) {
			return
		}
		if idx+1 < len(v.p.Instrs) && v.isLeader[idx+1] {
			v.updateIn(f, idx, idx+1, st, work)
			return
		}
	}
}

// step transfers one non-control instruction in place, or terminates the
// block (returning false) after posting successor edges for control flow.
func (v *verification) step(f *fnAnalysis, st *absState, idx int, in *isa.Instr, work *worklist) bool {
	if !v.opAllowed(in.Op) {
		v.violate(idx, "privileged-op", "%v is not admissible under scheme %v", in.Op, v.cfg.Scheme)
		// Continue conservatively so further violations surface.
		if in.Op == isa.OpRdtsc {
			st.setReg(in.Rd, topVal())
		}
		if in.IsBranch() || in.Op == isa.OpHalt {
			return false
		}
		return true
	}
	switch in.Op {
	case isa.OpNop, isa.OpFence, isa.OpHfiExit:
		return true
	case isa.OpHalt:
		return false
	case isa.OpMovImm:
		st.setReg(in.Rd, exactVal(uint64(in.Imm)))
		v.checkReservedWrite(st, idx, in.Rd)
		return true
	case isa.OpMov:
		st.setReg(in.Rd, st.regval(in.Rs1))
		v.checkReservedWrite(st, idx, in.Rd)
		return true
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpNot, isa.OpNeg:
		return v.stepALU(st, idx, in)
	case isa.OpLoad, isa.OpStore:
		v.stepMem(st, idx, in)
		if in.Op == isa.OpLoad {
			v.checkReservedWrite(st, idx, in.Rd)
		}
		return true
	case isa.OpHLoad, isa.OpHStore:
		v.stepHfiMem(st, idx, in)
		return true
	case isa.OpBr:
		v.stepBr(f, st, idx, in, work)
		return false
	case isa.OpJmp:
		v.updateIn(f, idx, v.index(in.Target), st, work)
		return false
	case isa.OpJmpInd:
		if t, ok := v.exactCodeTarget(st, in.Rs1); ok {
			if v.gateIdx >= 0 && (t == v.gateIdx || t == v.gateIdx+1) {
				v.violate(idx, "hostcall-gate", "indirect jump into the hostcall gate: the gate is only enterable by a direct call")
				return false
			}
			if !v.addrTaken[t] {
				v.violate(idx, "indirect-target", "indirect jump resolves to instruction %d, which is not address-taken (no symbol or movi immediate names it)", t)
				return false
			}
			v.updateIn(f, idx, t, st, work)
		} else {
			v.violate(idx, "indirect-target", "indirect jump target is not a provable constant")
		}
		return false
	case isa.OpCall:
		v.stepCall(f, st, idx, v.index(in.Target), work)
		return false
	case isa.OpCallInd:
		if t, ok := v.exactCodeTarget(st, in.Rs1); ok {
			if v.gateIdx >= 0 && (t == v.gateIdx || t == v.gateIdx+1) {
				v.violate(idx, "hostcall-gate", "indirect call into the hostcall gate: the gate is only enterable by a direct call")
				return false
			}
			if !v.addrTaken[t] {
				v.violate(idx, "indirect-target", "indirect call resolves to instruction %d, which is not address-taken (no symbol or movi immediate names it)", t)
				return false
			}
			v.stepCall(f, st, idx, t, work)
		} else {
			v.violate(idx, "indirect-target", "indirect call target is not a provable constant")
		}
		return false
	case isa.OpRet:
		v.stepRet(f, st, idx)
		return false
	case isa.OpSyscall:
		v.checkSyscall(st, idx)
		st.setReg(isa.R0, topVal())
		return true
	case isa.OpHostcall:
		v.checkHostcallBody(st, idx)
		st.setReg(isa.R0, topVal())
		return true
	case isa.OpHfiGetRegion, isa.OpHfiSetRegion:
		v.stepRegionUpdate(st, idx, in)
		return true
	}
	// Remaining ops were rejected by the allowlist already.
	return true
}

// exactCodeTarget resolves an indirect branch operand to an instruction
// index, requiring an exact in-range aligned constant.
func (v *verification) exactCodeTarget(st *absState, r isa.Reg) (int, bool) {
	c, ok := st.regval(r).I.Singleton()
	if !ok || c < v.p.Base || c >= v.p.End() || (c-v.p.Base)%isa.InstrBytes != 0 {
		return 0, false
	}
	return v.index(c), true
}

func (v *verification) stepALU(st *absState, idx int, in *isa.Instr) bool {
	a := st.regval(in.Rs1)
	var b AbsVal
	if in.UseImm {
		b = exactVal(uint64(in.Imm))
	} else {
		b = st.regval(in.Rs2)
	}
	var res AbsVal
	switch in.Op {
	case isa.OpAdd:
		if c, ok := b.I.Singleton(); ok && c == 0 && !b.HasOff {
			res = a // identity: preserves provenance (Swivel's add fp, fp, 0 pads)
		} else {
			res = addVal(a, b)
		}
	case isa.OpSub:
		if c, ok := b.I.Singleton(); ok && c == 0 && !b.HasOff {
			res = a
		} else {
			ge := !in.UseImm && st.hasRel(in.Rs1, in.Rs2)
			res = subVal(a, b, ge)
		}
	case isa.OpAnd:
		res = intervalVal(Interval{0, minU(a.I.Hi, b.I.Hi)})
	case isa.OpOr:
		hi, _ := satAdd(a.I.Hi, b.I.Hi) // a|b <= a+b for unsigned operands
		res = intervalVal(Interval{maxU(a.I.Lo, b.I.Lo), hi})
	case isa.OpXor:
		hi, _ := satAdd(a.I.Hi, b.I.Hi)
		res = intervalVal(Interval{0, hi})
	case isa.OpShl:
		res = shlVal(a.I, b.I)
	case isa.OpShr:
		res = shrVal(a.I, b.I)
	case isa.OpSar:
		if a.I.Hi < 1<<63 { // non-negative: arithmetic == logical
			res = shrVal(a.I, b.I)
		} else {
			res = topVal()
		}
	case isa.OpMul:
		res = intervalVal(a.I.Mul(b.I))
	case isa.OpDiv, isa.OpRem:
		if z, ok := b.I.Singleton(); ok && z == 0 {
			return false // unconditional divide-by-zero trap: path ends here
		}
		if in.Op == isa.OpDiv {
			res = divVal(a.I, b.I)
		} else {
			res = remVal(a.I, b.I)
		}
	case isa.OpNot:
		res = intervalVal(Interval{^a.I.Hi, ^a.I.Lo})
	case isa.OpNeg:
		if c, ok := a.I.Singleton(); ok {
			res = exactVal(-c)
		} else {
			res = topVal()
		}
	}
	if in.W32 {
		res = intervalVal(res.I.cap32())
	}
	// Record rd = rs1 + imm when the addition provably cannot wrap: the
	// handle for refining a bounds-check's index through its scratch.
	recordLin := false
	if in.Op == isa.OpAdd && in.UseImm && !in.W32 && in.Imm >= 0 && !a.HasOff {
		if _, ok := satAdd(a.I.Hi, uint64(in.Imm)); ok {
			recordLin = true
		}
	}
	st.setReg(in.Rd, res)
	if recordLin {
		st.setLin(in.Rd, in.Rs1, in.Imm)
	}
	v.checkReservedWrite(st, idx, in.Rd)
	return true
}

func shlVal(a, b Interval) AbsVal {
	if s, ok := b.Singleton(); ok {
		s &= 63
		if s == 0 {
			return intervalVal(a)
		}
		if a.Hi>>(64-s) != 0 {
			return topVal()
		}
		return intervalVal(Interval{a.Lo << s, a.Hi << s})
	}
	if a.Hi == 0 {
		return exactVal(0)
	}
	return topVal()
}

func shrVal(a, b Interval) AbsVal {
	if s, ok := b.Singleton(); ok {
		s &= 63
		return intervalVal(Interval{a.Lo >> s, a.Hi >> s})
	}
	return intervalVal(Interval{0, a.Hi})
}

func divVal(a, b Interval) AbsVal {
	den := maxU(b.Lo, 1)
	if b.Hi == 0 {
		return topVal() // unreachable: exact zero handled by caller
	}
	return intervalVal(Interval{a.Lo / b.Hi, a.Hi / den})
}

func remVal(a, b Interval) AbsVal {
	if b.Lo > 0 && a.Hi < b.Lo {
		return intervalVal(a) // always a < b: remainder is a itself
	}
	hi := a.Hi
	if b.Hi-1 < hi {
		hi = b.Hi - 1
	}
	return intervalVal(Interval{0, hi})
}

// stepBr refines both outgoing edges with the branch condition.
func (v *verification) stepBr(f *fnAnalysis, st *absState, idx int, in *isa.Instr, work *worklist) {
	if ts, ok := v.refineEdge(st, in, true); ok {
		v.updateIn(f, idx, v.index(in.Target), ts, work)
	}
	if fs, ok := v.refineEdge(st, in, false); ok && idx+1 < len(v.p.Instrs) {
		v.updateIn(f, idx, idx+1, fs, work)
	}
}

func negateCond(c isa.Cond) isa.Cond {
	switch c {
	case isa.CondEQ:
		return isa.CondNE
	case isa.CondNE:
		return isa.CondEQ
	case isa.CondLT:
		return isa.CondGE
	case isa.CondGE:
		return isa.CondLT
	case isa.CondGT:
		return isa.CondLE
	case isa.CondLE:
		return isa.CondGT
	case isa.CondLTU:
		return isa.CondGEU
	case isa.CondGEU:
		return isa.CondLTU
	case isa.CondGTU:
		return isa.CondLEU
	default:
		return isa.CondGTU // CondLEU
	}
}

// refineEdge clones st refined with the branch condition along the taken
// or fall-through edge; ok=false marks the edge dead.
func (v *verification) refineEdge(st *absState, in *isa.Instr, taken bool) (*absState, bool) {
	ns := st.clone()
	c := in.Cond
	if !taken {
		c = negateCond(c)
	}
	bReg := isa.RegNone
	var b Interval
	if in.UseImm {
		b = Exact(uint64(in.Imm))
	} else {
		bReg = in.Rs2
		b = ns.regval(in.Rs2).I
	}
	a := ns.regval(in.Rs1).I
	na, nb, dead, relAB, relBA := refineIntervals(a, b, c)
	if dead {
		return nil, false
	}
	if !v.applyRefined(ns, in.Rs1, na) {
		return nil, false
	}
	if bReg != isa.RegNone && !v.applyRefined(ns, bReg, nb) {
		return nil, false
	}
	if bReg != isa.RegNone {
		if relAB {
			ns.addRel(in.Rs1, bReg)
		}
		if relBA {
			ns.addRel(bReg, in.Rs1)
		}
	}
	return ns, true
}

// refineIntervals narrows a and b under "cond(a, b) holds". relAB / relBA
// report the derived unsigned ordering facts a>=b / b>=a.
func refineIntervals(a, b Interval, c isa.Cond) (na, nb Interval, dead, relAB, relBA bool) {
	na, nb = a, b
	switch c {
	case isa.CondEQ:
		lo, hi := maxU(a.Lo, b.Lo), minU(a.Hi, b.Hi)
		if lo > hi {
			return na, nb, true, false, false
		}
		na, nb = Interval{lo, hi}, Interval{lo, hi}
		relAB, relBA = true, true
	case isa.CondNE:
		if bv, ok := b.Singleton(); ok {
			if av, ok2 := a.Singleton(); ok2 && av == bv {
				return na, nb, true, false, false
			}
			if na.Lo == bv {
				na.Lo++
			}
			if na.Hi == bv {
				na.Hi--
			}
		}
		if av, ok := a.Singleton(); ok {
			if nb.Lo == av {
				nb.Lo++
			}
			if nb.Hi == av {
				nb.Hi--
			}
		}
	case isa.CondLTU: // a < b
		if b.Hi == 0 || a.Lo == maxU64 {
			return na, nb, true, false, false
		}
		na.Hi = minU(na.Hi, b.Hi-1)
		nb.Lo = maxU(nb.Lo, a.Lo+1)
		relBA = true
	case isa.CondGEU: // a >= b
		na.Lo = maxU(na.Lo, b.Lo)
		nb.Hi = minU(nb.Hi, a.Hi)
		relAB = true
	case isa.CondGTU: // a > b
		if a.Hi == 0 || b.Lo == maxU64 {
			return na, nb, true, false, false
		}
		na.Lo = maxU(na.Lo, b.Lo+1)
		nb.Hi = minU(nb.Hi, a.Hi-1)
		relAB = true
	case isa.CondLEU: // a <= b
		na.Hi = minU(na.Hi, b.Hi)
		nb.Lo = maxU(nb.Lo, a.Lo)
		relBA = true
	case isa.CondLT, isa.CondGE, isa.CondGT, isa.CondLE:
		// Signed compare over provably non-negative operands coincides
		// with the unsigned compare; otherwise no sound refinement.
		if a.Hi < 1<<63 && b.Hi < 1<<63 {
			var uc isa.Cond
			switch c {
			case isa.CondLT:
				uc = isa.CondLTU
			case isa.CondGE:
				uc = isa.CondGEU
			case isa.CondGT:
				uc = isa.CondGTU
			default:
				uc = isa.CondLEU
			}
			return refineIntervals(a, b, uc)
		}
	}
	if na.Lo > na.Hi || nb.Lo > nb.Hi {
		dead = true
	}
	return na, nb, dead, relAB, relBA
}

// applyRefined installs a tightened interval for r (keeping provenance
// flags: the value did not change, only our knowledge of it), propagating
// through a recorded linear definition r = src + imm. Returns false when
// the refinement proves the edge dead.
func (v *verification) applyRefined(ns *absState, r isa.Reg, ni Interval) bool {
	if r == isa.RegNone {
		return true
	}
	old := ns.regs[r]
	ns.regs[r] = AbsVal{I: ni, HasOff: old.HasOff, Off: old.Off, CallerFP: old.CallerFP}
	if d, ok := ns.lin[r]; ok {
		// r = src + imm with no wraparound and src >= 0, imm >= 0.
		imm := uint64(d.imm)
		if ni.Hi < imm {
			return false // r >= imm always; r <= ni.Hi < imm is impossible
		}
		lo := uint64(0)
		if ni.Lo > imm {
			lo = ni.Lo - imm
		}
		src := ns.regs[d.src]
		slo, shi := maxU(src.I.Lo, lo), minU(src.I.Hi, ni.Hi-imm)
		if slo > shi {
			return false
		}
		ns.regs[d.src] = AbsVal{I: Interval{slo, shi}, HasOff: src.HasOff, Off: src.Off, CallerFP: src.CallerFP}
	}
	return true
}

// stepCall handles a direct (or resolved indirect) call: the implicit
// return-address push, the reserved-register contract, the callee
// summary, and the havoc-with-result continuation.
func (v *verification) stepCall(f *fnAnalysis, st *absState, idx, target int, work *worklist) {
	sp := st.regs[isa.SP]
	switch {
	case sp.HasOff:
		if sp.Off > 0 || sp.Off-8 < -int64(v.cfg.StackGuard) {
			v.violate(idx, "call-stack", "return-address push at entry-SP%+d escapes the frame window", sp.Off-8)
		}
	default:
		c, ok := sp.I.Singleton()
		if !ok || c < v.cfg.StackBase+8 || c > v.cfg.StackTop {
			v.violate(idx, "call-stack", "stack pointer is not a provable stack location at call")
		}
	}
	v.checkReservedAtCall(st, idx)
	if target == v.gateIdx {
		// The callee summary joins argument intervals over every call
		// site, so the hostcall proofs (singleton number, in-heap buffer
		// bounds) must be discharged here against THIS site's state.
		v.checkHostcallSite(st, idx)
	}

	ce := v.getFn(target)
	ce.callers[f.entry] = true
	var args [6]Interval
	for i := 0; i < 6; i++ {
		args[i] = st.regs[isa.R0+isa.Reg(i)].dataOnly().I
	}
	if v.joinSummary(ce, args) {
		v.enqueueFn(ce)
	}
	if !ce.retSet {
		// No return path known yet; the continuation becomes reachable
		// when the callee's first ret is analyzed (we re-run then).
		return
	}
	ns := st.clone()
	for r := isa.R0; r <= isa.R13; r++ {
		ns.setReg(r, topVal())
	}
	ns.regs[isa.R0] = intervalVal(ce.ret)
	v.applyReservedInvariants(ns)
	ns.staging = -1
	v.updateIn(f, idx, idx+1, ns, work)
}

func (v *verification) joinSummary(ce *fnAnalysis, args [6]Interval) bool {
	if !ce.summarySet {
		ce.summary = args
		ce.summarySet = true
		return true
	}
	changed := false
	ce.sumJoins++
	widen := ce.sumJoins > sumWidenAfter
	for i := range args {
		var ni Interval
		if widen {
			ni = ce.summary[i].Widen(args[i])
		} else {
			ni = ce.summary[i].Join(args[i])
		}
		if ni != ce.summary[i] {
			ce.summary[i] = ni
			changed = true
		}
	}
	return changed
}

// stepRet checks the epilogue contract — SP back at the entry symbol S
// (so the popped word is the pushed return address) and FP restored to
// the caller's — and joins R0 into the return summary.
func (v *verification) stepRet(f *fnAnalysis, st *absState, idx int) {
	sp := st.regs[isa.SP]
	if !sp.HasOff || sp.Off != 0 {
		v.violate(idx, "ret-stack", "SP does not provably equal the entry SP at ret")
	}
	if !st.regs[sfi.FP].CallerFP {
		v.violate(idx, "ret-fp", "FP is not provably restored to the caller's at ret")
	}
	r0 := st.regs[isa.R0].dataOnly().I
	changed := false
	if !f.retSet {
		f.ret = r0
		f.retSet = true
		changed = true
	} else {
		f.retJoins++
		var ni Interval
		if f.retJoins > sumWidenAfter {
			ni = f.ret.Widen(r0)
		} else {
			ni = f.ret.Join(r0)
		}
		if ni != f.ret {
			f.ret = ni
			changed = true
		}
	}
	if changed {
		for caller := range f.callers {
			v.enqueueFn(v.fns[caller])
		}
		// A function that calls itself re-runs via its caller set.
	}
}

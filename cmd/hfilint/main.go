// Command hfilint runs the repository's custom static checks
// (internal/lint): the negated-errno return convention in the hostcall
// layer, and the closed verifier rule vocabulary — every violation rule
// string registered, every registered rule used. It is part of
// `make verify`.
//
// Usage:
//
//	hfilint            # lint the repository containing the cwd
//	hfilint -root DIR  # lint an explicit repository root
//
// Exit status: 0 if clean, 1 if any issue, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"hfi/internal/lint"
)

func main() {
	root := flag.String("root", "", "repository root (default: walk up from cwd to go.mod)")
	flag.Parse()

	r := *root
	if r == "" {
		var err error
		r, err = lint.FindRoot(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfilint:", err)
			os.Exit(2)
		}
	}
	issues, err := lint.Run(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfilint:", err)
		os.Exit(2)
	}
	for _, i := range issues {
		fmt.Println(i)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "hfilint: %d issue(s)\n", len(issues))
		os.Exit(1)
	}
	fmt.Println("hfilint: clean")
}

// Command hfisim runs one of the built-in guest workloads under a chosen
// isolation scheme on a chosen engine, reporting simulated time and
// machine statistics — the interactive front door to the simulator.
//
// Usage:
//
//	hfisim -list                                 # list workloads
//	hfisim -w sieve                              # defaults: hfi, emulation
//	hfisim -w 429.mcf -scheme guardpages
//	hfisim -w xchacha20 -engine sim -scheme boundscheck
//	hfisim -w fib2 -scheme hfi -serialized
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hfi/internal/cpu"
	"hfi/internal/kernel"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

func main() {
	var (
		name       = flag.String("w", "", "workload name (see -list)")
		schemeName = flag.String("scheme", "hfi", "isolation scheme: none, guardpages, boundscheck, masking, hfi")
		engine     = flag.String("engine", "emu", "engine: emu (fast emulation) or sim (cycle-level timing)")
		scale      = flag.Int("scale", 1, "workload scale factor")
		serialized = flag.Bool("serialized", false, "serialize hfi_enter/hfi_exit (Spectre protection)")
		swiv       = flag.Bool("swivel", false, "apply Swivel-like Spectre hardening")
		verify     = flag.Bool("verify", true, "statically verify the compiled program before running it")
		list       = flag.Bool("list", false, "list available workloads")
	)
	flag.Parse()

	catalog := append(workloads.Sightglass(), workloads.SpecInt()...)
	if *list {
		fmt.Println("Sightglass microbenchmarks:")
		for _, w := range workloads.Sightglass() {
			fmt.Printf("  %-16s %s\n", w.Name, w.Class)
		}
		fmt.Println("SPEC-like macro kernels:")
		for _, w := range workloads.SpecInt() {
			fmt.Printf("  %-16s %s\n", w.Name, w.Class)
		}
		return
	}
	var chosen *workloads.Workload
	for i := range catalog {
		if catalog[i].Name == *name {
			chosen = &catalog[i]
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "hfisim: unknown workload %q (try -list)\n", *name)
		os.Exit(2)
	}
	scheme, err := sfi.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfisim:", err)
		os.Exit(2)
	}

	rt := sandbox.NewRuntime()
	rt.Serialized = *serialized
	inst, err := rt.Instantiate(chosen.Build(*scale), scheme, wasm.Options{Swivel: *swiv, NoVerify: !*verify})
	if err != nil {
		var re *verifier.RejectError
		if errors.As(err, &re) {
			// The post-compile verifier refused the program: print the
			// first violation with its instruction index and disassembly.
			fmt.Fprintf(os.Stderr, "hfisim: verification failed under %v: %v\n", scheme, re.First())
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "hfisim:", err)
		os.Exit(1)
	}
	var eng cpu.Engine
	switch *engine {
	case "emu":
		eng = cpu.NewInterp(rt.M)
	case "sim":
		eng = cpu.NewCore(rt.M)
	default:
		fmt.Fprintf(os.Stderr, "hfisim: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	res, out := inst.Invoke(eng, 0)
	if res.Reason != cpu.StopHalt {
		fmt.Fprintf(os.Stderr, "hfisim: stopped with %v (fault=%v)\n", res.Reason, res.Fault)
		os.Exit(1)
	}

	m := rt.M
	fmt.Printf("workload:        %s (%s)\n", chosen.Name, chosen.Class)
	fmt.Printf("scheme:          %v   engine: %s\n", scheme, *engine)
	fmt.Printf("result:          %#x\n", out)
	fmt.Printf("instructions:    %d\n", m.Instret)
	fmt.Printf("simulated time:  %.3f ms (%.2f GHz core)\n", float64(m.Kern.Clock.Now())/1e6, kernel.CoreGHz)
	if *engine == "sim" {
		c := eng.(*cpu.Core)
		fmt.Printf("cycles:          %d (IPC %.2f)\n", c.Cycles(), float64(m.Instret)/float64(c.Cycles()))
		fmt.Printf("squashed uops:   %d (wrong-path loads: %d)\n", c.Squashed, c.SpecLoads)
		lookups, mispredicts := c.Pred.Stats()
		fmt.Printf("branch lookups:  %d (%.2f%% mispredicted)\n", lookups, 100*float64(mispredicts)/float64(max64(lookups, 1)))
	}
	if scheme == sfi.HFI {
		fmt.Printf("hfi checks:      data=%d code=%d explicit=%d\n", m.HFI.ChecksData, m.HFI.ChecksCode, m.HFI.ChecksExpl)
		fmt.Printf("hfi transitions: enters=%d exits=%d region-updates=%d\n", m.HFI.Enters, m.HFI.Exits, m.HFI.RegionUpdates)
	}
	hits, misses := m.Hier.L1D.Stats()
	fmt.Printf("l1d:             %d hits, %d misses\n", hits, misses)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

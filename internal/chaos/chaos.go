// Package chaos is a deterministic, seeded fault injector for the serving
// layer (internal/host). It exists to answer the question the happy-path
// demo never asks: what happens when provisioning fails transiently, a
// guest traps mid-request, a worker stalls, or a faulted instance comes
// back with state its Reset failed to clear?
//
// Every decision is a pure function of (seed, fault class, tenant, seq) —
// an FNV-1a hash, not a sequential PRNG draw — so the fault schedule is
// identical no matter how goroutines interleave. That is what makes
// chaos soaks reproducible: the same seed yields the same set of trapped,
// starved, and rejected requests on every run, on every machine, under any
// worker count (the reproducibility discipline the gem5 refresh argues
// robustness experiments need). Decision methods are nil-safe: a nil
// *Injector injects nothing, so the host's hot path carries no
// chaos-enabled branch.
//
// The injector covers the seams the host already has:
//
//   - Provision/ProvisionShared errors — ProvisionError fails the first
//     k(tenant) attempts of every provisioning call with a transient error
//     (retryable; see faas.IsTransient), exercising the host's
//     backoff-and-retry path.
//   - Admission-time verifier rejections — RejectAtAdmission refuses a
//     deterministic subset of requests before they touch a sandbox,
//     exercising the StatusRejected taxonomy.
//   - Guest traps — Trap marks requests that abort mid-run with a fault
//     and mid-request garbage in the heap, exercising quarantine + Reset.
//   - Fuel exhaustion — StarveFuel shrinks the instruction budget so the
//     request genuinely stops with cpu.StopLimit (the timeout path).
//   - Worker slowdowns — SlowDown adds wall latency to a request's
//     dispatch, exercising queueing, backpressure, and fairness.
//   - Poisoned instances — Poison marks faults whose instance keeps
//     corrupted state even after Reset, exercising the host's verified
//     reset (heap-hash check) and quarantine discard.
//   - Hostcall-layer faults — Hostcall arms one of the hostcall
//     environment's fault modes for a request (a transient resource
//     error, quota exhaustion, or a slow host call), exercising guests'
//     errno handling without ever breaching the isolation boundary.
//
// Below the serving seams, the substrate classes inject faults into the
// simulator layers themselves — the state the serving stack trusts without
// looking (see DESIGN.md "Fault model and recovery" for the taxonomy):
//
//   - Bit flips — BitFlip strikes guest heap pages during the request's
//     idle window; the host's sampled end-of-request heap-hash spot check
//     (SpotCheck) either catches the corruption or the strike lands in
//     cold reservation pages and stays benign.
//   - Stale translations — TLBStale suppresses a page-decision-cache
//     invalidation, leaving a cached translation tagged for a generation
//     its source never issued; the generation cross-audit detects the
//     impossible tag.
//   - Clock skew — ClockSkew drifts a worker's simulated clock against
//     the kernel's audit rail; differential drift is caught at the next
//     segment boundary, common-mode drift is invisible and benign.
//   - Lowering rot — LoweringRot corrupts a tiered engine's cached gate
//     verdicts (the hoisted per-block safety decisions); the gate audit
//     re-derives freshness from the generation tags and demotes.
//
// Substrate decisions are drawn exactly like the serving-seam ones —
// pure functions of (seed, class, tenant, seq) with sub-parameters
// (placement, bit, mode, magnitude) drawn from suffixed-tenant keys — so
// a reference predictor can compute the exact detection schedule without
// running the host.
package chaos

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"hfi/internal/hostcall"
)

// Fault enumerates the injectable fault classes.
type Fault uint8

// Fault classes.
const (
	FaultProvision Fault = iota // transient provisioning failure
	FaultReject                 // transient verifier rejection at admission
	FaultTrap                   // guest trap mid-request
	FaultFuel                   // fuel starvation (timeout path)
	FaultSlow                   // worker slowdown
	FaultPoison                 // post-Reset instance corruption
	FaultHostcall               // hostcall-layer fault (error/quota/slow)

	// Substrate classes: faults below the serving seams, in the state the
	// simulator layers trust (PR 9).
	FaultBitFlip     // bit flip in guest heap pages
	FaultTLBStale    // suppressed page-decision-cache invalidation
	FaultClockSkew   // worker clock drift against the kernel audit rail
	FaultLoweringRot // corrupted tier-gate verdict cache

	// Cluster classes: faults between the router tier and its shards
	// (queried by internal/cluster, inert at the single-host tier).
	FaultShardKill // SIGKILL a shard subprocess mid-load
	FaultPartition // sever the router↔shard link for a window of attempts
	numFaults
)

var faultNames = [...]string{
	"provision", "reject", "trap", "fuel", "slow", "poison", "hostcall",
	"bitflip", "tlbstale", "clockskew", "loweringrot",
	"shardkill", "partition",
}

// Classes returns every fault class in declaration order.
func Classes() []Fault {
	all := make([]Fault, numFaults)
	for i := range all {
		all[i] = Fault(i)
	}
	return all
}

// FaultByName resolves a class name as printed by String().
func FaultByName(name string) (Fault, bool) {
	for i, n := range faultNames {
		if n == name {
			return Fault(i), true
		}
	}
	return 0, false
}

// ParseClasses parses a comma-separated list of class names (as printed by
// String()) into fault classes. Empty elements are ignored.
func ParseClasses(s string) ([]Fault, error) {
	var out []Fault
	start := 0
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ',' {
			continue
		}
		name := strings.TrimSpace(s[start:i])
		start = i + 1
		if name == "" {
			continue
		}
		f, ok := FaultByName(name)
		if !ok {
			return nil, fmt.Errorf("chaos: unknown fault class %q (have %s)", name, strings.Join(faultNames[:], ", "))
		}
		out = append(out, f)
	}
	return out, nil
}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Config sets the per-class injection rates. All rates are probabilities
// in [0, 1] evaluated per (tenant, seq) — or per tenant for provisioning.
type Config struct {
	Seed int64

	// Provision is the fraction of tenants whose provisioning calls fail
	// transiently; an affected tenant's calls fail the first k attempts
	// (1 ≤ k ≤ MaxProvisionFails) and then succeed, so a host retrying at
	// least MaxProvisionFails times always provisions eventually.
	Provision         float64
	MaxProvisionFails int // default 2

	// Reject is the per-request probability of a transient verifier
	// rejection at admission.
	Reject float64

	// Trap is the per-request probability of an injected guest trap.
	Trap float64

	// Fuel is the per-request probability of fuel starvation; a starved
	// request runs with StarvedFuel instead of its configured budget.
	Fuel        float64
	StarvedFuel uint64 // default 64 instructions

	// Slow is the per-request probability of a worker slowdown of SlowFor.
	Slow    float64
	SlowFor time.Duration // default 2ms

	// Poison is the probability that a faulted request leaves its instance
	// corrupted even after Reset (the incomplete-reset bug the quarantine
	// hash check must catch).
	Poison float64

	// Hostcall is the per-request probability of an injected
	// hostcall-layer fault. Affected requests draw a submode uniformly:
	// a one-shot transient resource error (EIO), quota exhaustion on
	// kv_put (EDQUOT), or a slow host call (extra simulated latency).
	// Only the first two can change a guest's observable output; a slow
	// call shifts simulated time alone.
	Hostcall float64

	// BitFlip is the per-request probability of a bit flip striking the
	// instance's guest heap during the request's idle window. A flip is
	// caught exactly when the request is spot-checked (SpotCheck below):
	// the strike then lands in a live initial-heap page the verified
	// reset hashes. Unchecked flips land in cold reservation pages beyond
	// the initial heap (or self-correct as transient upsets when no such
	// tail exists) and stay undetected-benign.
	BitFlip float64

	// SpotCheck is the detection-side sampling rate of end-of-request
	// heap-hash spot checks (a verified reset plus a cost-modeled hash of
	// the initial heap pages). It is not a fault class: with BitFlip = 0
	// a spot check only re-verifies a clean instance. Zero disables spot
	// checks entirely — injected flips are then all undetected-benign.
	SpotCheck float64

	// TLBStale is the per-request probability of a suppressed
	// page-decision-cache invalidation: the instance's data-translation
	// cache is left holding a generation tag its sources never issued. A
	// live plant (valid entry) is caught by the end-of-request generation
	// cross-audit; a dead plant (the entry was already invalid) is benign.
	TLBStale float64

	// ClockSkew is the per-request probability of skewing the instance's
	// simulated clock. Differential skew (worker rail only) is caught by
	// the drift audit at the next segment boundary; common-mode skew
	// (both rails) is invisible and benign. The magnitude is drawn
	// deterministically in (0, SkewNs].
	ClockSkew float64
	SkewNs    uint64 // default 40µs

	// LoweringRot is the per-request probability of corrupting the
	// instance's tiered-engine gate cache (a flipped block verdict plus
	// forged gate generation tags). Live rot claims verdicts for
	// generations that have not happened and is caught by the gate audit;
	// dead rot strikes a demoted gate whose verdicts are recomputed
	// before any fused block trusts them, and is benign. Drawn only for
	// instances that actually carry a lowering.
	LoweringRot float64

	// ShardKill is the per-(shard, tick) probability that the cluster
	// soak driver SIGKILLs the shard subprocess at that tick. The router
	// must absorb the loss: eject the member, migrate its placements, and
	// re-route in-flight failures — conservation is judged fleet-wide.
	ShardKill float64

	// Partition is the per-(shard, window) probability that the
	// router↔shard link is severed for PartitionTicks consecutive
	// attempts. Severing happens in the router's transport *before* a
	// connection is dialed, so a partitioned attempt never reaches shard
	// admission — which keeps the delivered==admitted ledger exact.
	Partition      float64
	PartitionTicks int // attempts per partition decision window, default 4
}

// Restrict returns a copy of cfg with the injection rate of every fault
// class not in keep zeroed. Detection-side knobs (SpotCheck) and
// sub-parameters are preserved.
func (cfg Config) Restrict(keep []Fault) Config {
	on := [numFaults]bool{}
	for _, f := range keep {
		if int(f) < int(numFaults) {
			on[f] = true
		}
	}
	out := cfg
	if !on[FaultProvision] {
		out.Provision = 0
	}
	if !on[FaultReject] {
		out.Reject = 0
	}
	if !on[FaultTrap] {
		out.Trap = 0
	}
	if !on[FaultFuel] {
		out.Fuel = 0
	}
	if !on[FaultSlow] {
		out.Slow = 0
	}
	if !on[FaultPoison] {
		out.Poison = 0
	}
	if !on[FaultHostcall] {
		out.Hostcall = 0
	}
	if !on[FaultBitFlip] {
		out.BitFlip = 0
	}
	if !on[FaultTLBStale] {
		out.TLBStale = 0
	}
	if !on[FaultClockSkew] {
		out.ClockSkew = 0
	}
	if !on[FaultLoweringRot] {
		out.LoweringRot = 0
	}
	if !on[FaultShardKill] {
		out.ShardKill = 0
	}
	if !on[FaultPartition] {
		out.Partition = 0
	}
	return out
}

// Injector makes deterministic fault decisions and counts what it injected.
// All methods are safe for concurrent use and nil-safe (a nil injector
// never injects).
type Injector struct {
	cfg    Config
	counts [numFaults]atomic.Uint64
}

// New builds an injector from cfg, applying defaults for zero knobs.
func New(cfg Config) *Injector {
	if cfg.MaxProvisionFails <= 0 {
		cfg.MaxProvisionFails = 2
	}
	if cfg.StarvedFuel == 0 {
		cfg.StarvedFuel = 64
	}
	if cfg.SlowFor == 0 {
		cfg.SlowFor = 2 * time.Millisecond
	}
	if cfg.SkewNs == 0 {
		cfg.SkewNs = 40_000
	}
	if cfg.PartitionTicks <= 0 {
		cfg.PartitionTicks = 4
	}
	return &Injector{cfg: cfg}
}

// DefaultConfig is the standard moderate-rate chaos configuration: every
// fault class active, none dominant. Callers that want a subset of the
// classes compose it with Restrict (the hfiserve -chaos-classes path).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:      seed,
		Provision: 0.5, MaxProvisionFails: 2,
		Reject: 0.02,
		Trap:   0.05,
		Fuel:   0.05,
		Slow:   0.05, SlowFor: time.Millisecond,
		Poison:   0.5,
		Hostcall: 0.05,
		BitFlip:  0.05, SpotCheck: 0.5,
		TLBStale:  0.04,
		ClockSkew: 0.04, SkewNs: 40_000,
		LoweringRot: 0.04,
	}
}

// Default is the standard moderate-rate injector the hfiserve -chaos flag
// and the soak tests use: New over DefaultConfig.
func Default(seed int64) *Injector { return New(DefaultConfig(seed)) }

// Seed echoes the injector's seed (for reproducibility records).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// FaultError is the typed error of injected provisioning failures and
// admission rejections. It implements Transient() so faas.IsTransient
// classifies it as retryable.
type FaultError struct {
	Class   Fault
	Tenant  string
	Attempt int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault (tenant %s, attempt %d)", e.Class, e.Tenant, e.Attempt)
}

// Transient marks injected faults as retryable (see faas.IsTransient).
func (e *FaultError) Transient() bool { return true }

// roll returns the deterministic uniform [0,1) draw for one decision.
// FNV-1a over (seed, class, tenant, seq): pure, order-independent,
// goroutine-independent.
func (in *Injector) roll(class Fault, tenant string, seq int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for sh := 0; sh < 64; sh += 8 {
		mix(byte(uint64(in.cfg.Seed) >> sh))
	}
	mix(byte(class))
	for i := 0; i < len(tenant); i++ {
		mix(tenant[i])
	}
	for sh := 0; sh < 64; sh += 8 {
		mix(byte(uint64(seq) >> sh))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// provisionFails returns how many consecutive attempts of tenant's
// provisioning calls fail before one succeeds (0 for unaffected tenants).
func (in *Injector) provisionFails(tenant string) int {
	if in.roll(FaultProvision, tenant, 0) >= in.cfg.Provision {
		return 0
	}
	// 1..MaxProvisionFails, drawn from an independent decision.
	k := int(in.roll(FaultProvision, tenant, 1) * float64(in.cfg.MaxProvisionFails))
	return k + 1
}

// ProvisionError fails the attempt'th try (0-based) of a provisioning call
// for tenant, or returns nil. Affected tenants fail a fixed prefix of
// attempts, so a host retrying ≥ MaxProvisionFails times always succeeds —
// which keeps chaos-soak outcome counts deterministic.
func (in *Injector) ProvisionError(tenant string, attempt int) error {
	if in == nil || attempt >= in.provisionFails(tenant) {
		return nil
	}
	in.counts[FaultProvision].Add(1)
	return &FaultError{Class: FaultProvision, Tenant: tenant, Attempt: attempt}
}

// RejectAtAdmission returns a transient verifier-rejection error for the
// chosen requests, nil otherwise. The host surfaces it as StatusRejected
// without provisioning anything.
func (in *Injector) RejectAtAdmission(tenant string, seq int) error {
	if in == nil || in.roll(FaultReject, tenant, seq) >= in.cfg.Reject {
		return nil
	}
	in.counts[FaultReject].Add(1)
	return &FaultError{Class: FaultReject, Tenant: tenant, Attempt: seq}
}

// Trap reports whether the request aborts with an injected guest trap.
func (in *Injector) Trap(tenant string, seq int) bool {
	if in == nil || in.roll(FaultTrap, tenant, seq) >= in.cfg.Trap {
		return false
	}
	in.counts[FaultTrap].Add(1)
	return true
}

// StarveFuel returns the starved instruction budget for the chosen
// requests (ok=true), forcing a genuine cpu.StopLimit timeout.
func (in *Injector) StarveFuel(tenant string, seq int) (uint64, bool) {
	if in == nil || in.roll(FaultFuel, tenant, seq) >= in.cfg.Fuel {
		return 0, false
	}
	in.counts[FaultFuel].Add(1)
	return in.cfg.StarvedFuel, true
}

// SlowDown returns the extra dispatch wall time injected into the request
// (0 for most).
func (in *Injector) SlowDown(tenant string, seq int) time.Duration {
	if in == nil || in.roll(FaultSlow, tenant, seq) >= in.cfg.Slow {
		return 0
	}
	in.counts[FaultSlow].Add(1)
	return in.cfg.SlowFor
}

// Poison reports whether the faulted request leaves its instance corrupted
// after Reset. Only meaningful on requests that faulted or timed out.
func (in *Injector) Poison(tenant string, seq int) bool {
	if in == nil || in.roll(FaultPoison, tenant, seq) >= in.cfg.Poison {
		return false
	}
	in.counts[FaultPoison].Add(1)
	return true
}

// Hostcall returns the hostcall-layer fault armed for the request
// (hostcall.FaultNone for most). An affected request draws its submode —
// transient error, quota exhaustion, slow call — from an independent
// deterministic decision, so the full fault schedule is still a pure
// function of (seed, tenant, seq).
func (in *Injector) Hostcall(tenant string, seq int) hostcall.Fault {
	if in == nil || in.roll(FaultHostcall, tenant, seq) >= in.cfg.Hostcall {
		return hostcall.FaultNone
	}
	in.counts[FaultHostcall].Add(1)
	switch m := in.roll(FaultHostcall, tenant+"/mode", seq); {
	case m < 1.0/3:
		return hostcall.FaultErr
	case m < 2.0/3:
		return hostcall.FaultQuota
	default:
		return hostcall.FaultSlow
	}
}

// BitFlip reports whether a bit flip strikes the instance's guest heap
// during this request's idle window.
func (in *Injector) BitFlip(tenant string, seq int) bool {
	if in == nil || in.roll(FaultBitFlip, tenant, seq) >= in.cfg.BitFlip {
		return false
	}
	in.counts[FaultBitFlip].Add(1)
	return true
}

// BitFlipSpec returns the deterministic placement of an injected flip: a
// uniform [0,1) draw the host scales to a heap offset, and a single-bit
// mask. Pure sub-draws on suffixed keys, so the flip's landing site is as
// interleaving-independent as the decision to flip.
func (in *Injector) BitFlipSpec(tenant string, seq int) (place float64, mask byte) {
	if in == nil {
		return 0, 1
	}
	place = in.roll(FaultBitFlip, tenant+"/at", seq)
	mask = 1 << uint(in.roll(FaultBitFlip, tenant+"/bit", seq)*8)
	return place, mask
}

// SpotCheck reports whether this request draws an end-of-request heap-hash
// spot check. Detection-side sampling, not a fault class: it is never
// counted in the fault summary.
func (in *Injector) SpotCheck(tenant string, seq int) bool {
	if in == nil {
		return false
	}
	return in.roll(FaultBitFlip, tenant+"/spot", seq) < in.cfg.SpotCheck
}

// TLBStale reports whether to plant a suppressed page-decision-cache
// invalidation on this request's instance, and whether the plant is live
// (a valid stale entry the generation cross-audit must catch) or dead (the
// entry was already invalid — undetectable and benign).
func (in *Injector) TLBStale(tenant string, seq int) (live, ok bool) {
	if in == nil || in.roll(FaultTLBStale, tenant, seq) >= in.cfg.TLBStale {
		return false, false
	}
	in.counts[FaultTLBStale].Add(1)
	return in.roll(FaultTLBStale, tenant+"/mode", seq) < 0.5, true
}

// ClockSkew returns the simulated-clock skew injected after this request
// (ok=true), its deterministic magnitude in (0, SkewNs], and whether it is
// differential (live=true: only the worker rail drifts, so the segment-
// boundary drift audit catches it) or common-mode (both rails drift
// together — invisible, benign).
func (in *Injector) ClockSkew(tenant string, seq int) (ns uint64, live, ok bool) {
	if in == nil || in.roll(FaultClockSkew, tenant, seq) >= in.cfg.ClockSkew {
		return 0, false, false
	}
	in.counts[FaultClockSkew].Add(1)
	ns = 1 + uint64(in.roll(FaultClockSkew, tenant+"/ns", seq)*float64(in.cfg.SkewNs))
	return ns, in.roll(FaultClockSkew, tenant+"/mode", seq) < 0.5, true
}

// LoweringRot reports whether to corrupt the instance's tier-gate cache
// (ok=true), which cached block verdict to flip (pick, reduced modulo the
// block count by the engine), and whether the rot is live (forged gate
// tags claiming future generations — the gate audit must catch it) or
// dead (rot in a demoted gate whose verdicts are recomputed before use —
// benign). Callers must only draw this for instances that carry a
// lowering, so the injected count equals the applied count.
func (in *Injector) LoweringRot(tenant string, seq int) (pick uint64, live, ok bool) {
	if in == nil || in.roll(FaultLoweringRot, tenant, seq) >= in.cfg.LoweringRot {
		return 0, false, false
	}
	in.counts[FaultLoweringRot].Add(1)
	pick = uint64(in.roll(FaultLoweringRot, tenant+"/block", seq) * (1 << 30))
	return pick, in.roll(FaultLoweringRot, tenant+"/mode", seq) < 0.5, true
}

// Clean reports whether the request runs to normal completion under this
// injector AND produces its fault-free output: no trap, no fuel
// starvation, no admission rejection, no hostcall fault that can change
// what the guest computes (an error or quota submode; a slow call only
// shifts time), and no substrate fault drawn for the request (a detected
// substrate fault replaces the response with a typed fault; an undetected
// one is excluded conservatively). Slowdowns, provisioning retries, and
// poisoning change timing and pool churn but not the request's outcome.
// Reference checksum computations use this to know which response bodies
// a chaos run must still produce bit-identically.
func (in *Injector) Clean(tenant string, seq int) bool {
	if in == nil {
		return true
	}
	if in.roll(FaultHostcall, tenant, seq) < in.cfg.Hostcall &&
		in.roll(FaultHostcall, tenant+"/mode", seq) < 2.0/3 {
		return false
	}
	if in.roll(FaultBitFlip, tenant, seq) < in.cfg.BitFlip ||
		in.roll(FaultTLBStale, tenant, seq) < in.cfg.TLBStale ||
		in.roll(FaultClockSkew, tenant, seq) < in.cfg.ClockSkew ||
		in.roll(FaultLoweringRot, tenant, seq) < in.cfg.LoweringRot {
		return false
	}
	return in.roll(FaultTrap, tenant, seq) >= in.cfg.Trap &&
		in.roll(FaultFuel, tenant, seq) >= in.cfg.Fuel &&
		in.roll(FaultReject, tenant, seq) >= in.cfg.Reject
}

// ShardKill reports whether the cluster soak driver kills shard at tick —
// one pure draw per (shard, tick), same FNV scheme as every other class,
// so two same-seed runs kill the same shards at the same points.
func (in *Injector) ShardKill(shard string, tick int) bool {
	if in == nil || in.roll(FaultShardKill, shard, tick) >= in.cfg.ShardKill {
		return false
	}
	in.counts[FaultShardKill].Add(1)
	return true
}

// Partition reports whether the router↔shard link is severed for the
// attempt numbered tick. Decisions are blocked into windows of
// PartitionTicks consecutive attempts sharing one draw, so a partition
// presents as a burst of transport failures (a network event), not
// independent single-packet drops. Counted per severed attempt, which
// makes the summary directly comparable to the router's transport-error
// ledger.
func (in *Injector) Partition(shard string, tick int) bool {
	if in == nil || in.cfg.Partition <= 0 {
		return false
	}
	if in.roll(FaultPartition, shard, tick/in.cfg.PartitionTicks) >= in.cfg.Partition {
		return false
	}
	in.counts[FaultPartition].Add(1)
	return true
}

// Summary counts injected faults by class.
type Summary struct {
	Provision   uint64 `json:"provision"`
	Reject      uint64 `json:"reject"`
	Trap        uint64 `json:"trap"`
	Fuel        uint64 `json:"fuel"`
	Slow        uint64 `json:"slow"`
	Poison      uint64 `json:"poison"`
	Hostcall    uint64 `json:"hostcall"`
	BitFlip     uint64 `json:"bitflip"`
	TLBStale    uint64 `json:"tlbstale"`
	ClockSkew   uint64 `json:"clockskew"`
	LoweringRot uint64 `json:"loweringrot"`
	ShardKill   uint64 `json:"shardkill"`
	Partition   uint64 `json:"partition"`
}

// Total sums all injected faults.
func (s Summary) Total() uint64 {
	return s.Provision + s.Reject + s.Trap + s.Fuel + s.Slow + s.Poison + s.Hostcall +
		s.BitFlip + s.TLBStale + s.ClockSkew + s.LoweringRot +
		s.ShardKill + s.Partition
}

// Add accumulates o into s (for aggregating per-run snapshots).
func (s *Summary) Add(o Summary) {
	s.Provision += o.Provision
	s.Reject += o.Reject
	s.Trap += o.Trap
	s.Fuel += o.Fuel
	s.Slow += o.Slow
	s.Poison += o.Poison
	s.Hostcall += o.Hostcall
	s.BitFlip += o.BitFlip
	s.TLBStale += o.TLBStale
	s.ClockSkew += o.ClockSkew
	s.LoweringRot += o.LoweringRot
	s.ShardKill += o.ShardKill
	s.Partition += o.Partition
}

// Snapshot reports how many faults of each class were actually injected so
// far (decisions that returned "inject", counted once per query).
func (in *Injector) Snapshot() Summary {
	if in == nil {
		return Summary{}
	}
	return Summary{
		Provision:   in.counts[FaultProvision].Load(),
		Reject:      in.counts[FaultReject].Load(),
		Trap:        in.counts[FaultTrap].Load(),
		Fuel:        in.counts[FaultFuel].Load(),
		Slow:        in.counts[FaultSlow].Load(),
		Poison:      in.counts[FaultPoison].Load(),
		Hostcall:    in.counts[FaultHostcall].Load(),
		BitFlip:     in.counts[FaultBitFlip].Load(),
		TLBStale:    in.counts[FaultTLBStale].Load(),
		ClockSkew:   in.counts[FaultClockSkew].Load(),
		LoweringRot: in.counts[FaultLoweringRot].Load(),
		ShardKill:   in.counts[FaultShardKill].Load(),
		Partition:   in.counts[FaultPartition].Load(),
	}
}

package experiments

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sandbox"
	"hfi/internal/seccomp"
	"hfi/internal/stats"
)

// buildSyscallLoop assembles the §6.4.1 native benchmark: open a file,
// read it, close it, n times, then exit. The file name string lives at
// dataBase; the read buffer after it.
func buildSyscallLoop(codeBase, dataBase uint64, n int64) *isa.Program {
	b := isa.NewBuilder(codeBase)
	b.Label("main")
	b.MovImm(isa.R10, 0) // iteration counter
	b.Label("loop")
	// open("bench.dat")
	b.MovImm(isa.R0, kernel.SysOpen)
	b.MovImm(isa.R1, int64(dataBase))
	b.MovImm(isa.R2, 9) // len("bench.dat")
	b.Syscall()
	b.Mov(isa.R11, isa.R0) // fd
	// read(fd, buf, 64)
	b.MovImm(isa.R0, kernel.SysRead)
	b.Mov(isa.R1, isa.R11)
	b.MovImm(isa.R2, int64(dataBase+64))
	b.MovImm(isa.R3, 64)
	b.Syscall()
	// close(fd)
	b.MovImm(isa.R0, kernel.SysClose)
	b.Mov(isa.R1, isa.R11)
	b.Syscall()
	b.AddImm(isa.R10, isa.R10, 1)
	b.BrImm(isa.CondLT, isa.R10, n, "loop")
	b.MovImm(isa.R0, kernel.SysExit)
	b.MovImm(isa.R1, 0)
	b.Syscall()
	b.Halt()
	return b.Build()
}

// RunSyscallInterposition reproduces §6.4.1: the cost of interposing on
// system calls with a seccomp-bpf filter (as ERIM does) versus HFI's
// native-sandbox redirect. Paper: seccomp imposes 2.1% overhead over the
// HFI version on an open/read/close x100k workload.
func RunSyscallInterposition(iters int64) (*stats.Table, error) {
	if iters <= 0 {
		iters = 100_000
	}

	// Variant A: seccomp-bpf filter, code runs unsandboxed.
	runSeccomp := func() (float64, error) {
		rt := sandbox.NewRuntime()
		m := rt.M
		m.Kern.FS["bench.dat"] = make([]byte, 64)
		m.Kern.Filter = seccomp.AllowList(kernel.SysOpen, kernel.SysRead, kernel.SysClose, kernel.SysExit)
		codeBase, err := m.AS.MapAligned(4096, 4096, kernel.ProtRead|kernel.ProtExec)
		if err != nil {
			return 0, err
		}
		dataBase, err := m.AS.MapAligned(4096, 4096, kernel.ProtRead|kernel.ProtWrite)
		if err != nil {
			return 0, err
		}
		prog := buildSyscallLoop(codeBase, dataBase, iters)
		if err := m.LoadPrelinked(prog); err != nil {
			return 0, err
		}
		m.Mem().WriteBytes(dataBase, []byte("bench.dat"))
		eng := cpu.NewInterp(m)
		clock := m.Kern.Clock
		t0 := clock.Now()
		m.PC = prog.Entry("main")
		res := eng.Run(0)
		if res.Reason != cpu.StopExit && res.Reason != cpu.StopHalt {
			return 0, fmt.Errorf("seccomp variant: stop %v", res.Reason)
		}
		return float64(clock.Now() - t0), nil
	}

	// Variant B: HFI native sandbox; syscalls redirect to the runtime,
	// which applies the same allow-list policy in host code.
	runHFI := func() (float64, error) {
		rt := sandbox.NewRuntime()
		m := rt.M
		m.Kern.FS["bench.dat"] = make([]byte, 64)
		var prog *isa.Program
		ns, err := rt.NewNative(4096, 64<<10, false /* unserialized: §6.4.1 isolates interposition cost */, func(codeBase, dataBase uint64) *isa.Program {
			m.Mem().WriteBytes(dataBase, []byte("bench.dat"))
			prog = buildSyscallLoop(codeBase, dataBase, iters)
			return prog
		})
		if err != nil {
			return 0, err
		}
		ns.Policy = func(sysno uint64, args [5]uint64) bool {
			switch sysno {
			case kernel.SysOpen, kernel.SysRead, kernel.SysClose, kernel.SysExit:
				return true
			}
			return false
		}
		eng := cpu.NewInterp(m)
		clock := m.Kern.Clock
		t0 := clock.Now()
		res := ns.Run(eng, 0)
		if res.Reason != cpu.StopExit && res.Reason != cpu.StopHalt {
			return 0, fmt.Errorf("hfi variant: stop %v", res.Reason)
		}
		if ns.Interposed == 0 {
			return 0, fmt.Errorf("hfi variant: no syscalls interposed")
		}
		return float64(clock.Now() - t0), nil
	}

	sec, err := runSeccomp()
	if err != nil {
		return nil, err
	}
	hfiNs, err := runHFI()
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:   fmt.Sprintf("§6.4.1 syscall interposition (open/read/close x%d)", iters),
		Columns: []string{"mechanism", "total time", "vs HFI"},
	}
	tb.AddRow("HFI exit-handler redirect", stats.Ns(hfiNs), "100.0%")
	tb.AddRow("seccomp-bpf filter", stats.Ns(sec), fmt.Sprintf("%.1f%%", sec/hfiNs*100))
	tb.AddNote("paper: seccomp-bpf imposes 2.1%% overhead over the HFI version")
	return tb, nil
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/httpfront"
)

func writeJSONFile(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// launchTest spawns a real subprocess fleet (the test binary re-execing
// itself — see TestMain) fronted by a fresh router.
func launchTest(t *testing.T, n int, spec ShardSpec, rcfg Config) *Cluster {
	t.Helper()
	if spec.Workers == 0 {
		spec.Workers = 2
	}
	if spec.QueueDepth == 0 {
		spec.QueueDepth = 32
	}
	if spec.Seed == 0 {
		spec.Seed = 7
	}
	cl, err := Launch(LaunchOpts{N: n, Shard: spec, Router: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// serveRouter exposes the router over a real HTTP listener and returns the
// typed client pointed at it.
func serveRouter(t *testing.T, rt *Router) *httpfront.Client {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	c := httpfront.NewClient(ts.URL)
	t.Cleanup(func() { c.CloseIdle(); ts.Close() })
	return c
}

func tenantNames() []string {
	return httpfront.RegistryNames(httpfront.DefaultRegistry(1))
}

// settleLedger retries the scrape+check loop until every live shard's
// router-delivered count matches its own admitted counter — the final
// scrape can race a chaos partition window or a flapping member, so one
// observation is not a verdict.
func settleLedger(t *testing.T, rt *Router, timeout time.Duration) httpfront.StatszV1 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rt.ScrapeOnce()
		doc := rt.StatszDoc()
		err := func() error {
			for _, sh := range doc.Cluster.Shards {
				if !sh.Healthy {
					continue // a dead member's counters are unobservable
				}
				if sh.Delivered != sh.Admitted {
					return fmt.Errorf("shard %s: router delivered %d != shard admitted %d",
						sh.Name, sh.Delivered, sh.Admitted)
				}
			}
			return nil
		}()
		if err == nil {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet ledger never settled: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterEndToEnd drives the full tenant mix through a 3-shard
// subprocess fleet and checks the tentpole invariants: exact client-side
// outcome conservation, the delivered==admitted fleet ledger per shard,
// warm-image routing hits after first placement, and bounded-load spread.
func TestClusterEndToEnd(t *testing.T) {
	cl := launchTest(t, 3, ShardSpec{}, Config{})
	c := serveRouter(t, cl.Router)
	names := tenantNames()
	ctx := context.Background()

	const rounds = 4
	offered := 0
	outcomes := map[int]int{}
	for r := 0; r < rounds; r++ {
		for _, name := range names {
			res, err := c.Invoke(ctx, name, nil, "")
			if err != nil {
				t.Fatalf("invoke %s: %v", name, err)
			}
			if _, mapped := res.Outcome(); !mapped {
				t.Fatalf("invoke %s: code %d outside the outcome table (%s)", name, res.Code, res.Body)
			}
			if res.RequestID == "" {
				t.Fatalf("invoke %s: no request id echoed", name)
			}
			outcomes[res.Code]++
			offered++
		}
	}
	if outcomes[200] == 0 {
		t.Fatalf("no successful invokes across the fleet: %v", outcomes)
	}

	if !cl.Router.Quiesce(10 * time.Second) {
		t.Fatal("router did not quiesce")
	}
	doc := settleLedger(t, cl.Router, 5*time.Second)

	// Fleet-wide conservation: every offered request reached exactly one
	// shard admission (no transport errors on a quiet loopback fleet).
	var delivered uint64
	for _, sh := range doc.Cluster.Shards {
		if !sh.Healthy {
			t.Fatalf("shard %s unhealthy on a quiet fleet", sh.Name)
		}
		delivered += sh.Delivered
	}
	if delivered != uint64(offered) {
		t.Fatalf("fleet delivered %d != offered %d", delivered, offered)
	}
	if doc.Cluster.TransportErrors != 0 {
		t.Fatalf("transport errors on a quiet fleet: %d", doc.Cluster.TransportErrors)
	}

	// Warm routing: each tenant misses exactly once (first placement) and
	// hits every round after — placements never move on a healthy fleet.
	if doc.Cluster.RoutingMisses != uint64(len(names)) {
		t.Fatalf("routing misses %d, want one per tenant (%d)", doc.Cluster.RoutingMisses, len(names))
	}
	if want := uint64(offered - len(names)); doc.Cluster.RoutingHits != want {
		t.Fatalf("routing hits %d, want %d", doc.Cluster.RoutingHits, want)
	}
	if doc.Cluster.RoutingHitRate < 0.5 {
		t.Fatalf("routing hit rate %.2f, want ≥ 0.5 after %d rounds", doc.Cluster.RoutingHitRate, rounds)
	}

	// Bounded-load placement: all tenants placed, no shard hoards them.
	total, spread := 0, 0
	for _, sh := range doc.Cluster.Shards {
		total += sh.Placements
		if sh.Placements > 0 {
			spread++
		}
	}
	if total != len(names) {
		t.Fatalf("placements %d != tenants %d", total, len(names))
	}
	if spread < 2 {
		t.Fatalf("bounded-load walk packed every tenant onto %d shard(s)", spread)
	}

	// The router's own /statsz speaks the same versioned document.
	sz, err := c.Statsz(ctx)
	if err != nil {
		t.Fatalf("router statsz: %v", err)
	}
	if sz.Role != httpfront.RoleRouter || sz.Cluster == nil {
		t.Fatalf("router statsz role %q cluster nil=%v", sz.Role, sz.Cluster == nil)
	}
	if len(sz.Cluster.Shards) != 3 {
		t.Fatalf("router statsz shards %d, want 3", len(sz.Cluster.Shards))
	}
	if up, err := c.Healthz(ctx); err != nil || !up {
		t.Fatalf("router healthz up=%v err=%v", up, err)
	}

	// The admin drain route takes one member out through the same graceful
	// path, and the fleet keeps serving.
	resp, err := http.Post(c.Base()+"/admin/shards/shard-2/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("admin drain status %d", resp.StatusCode)
	}
	after := cl.Router.StatszDoc()
	for _, sh := range after.Cluster.Shards {
		if sh.Name == "shard-2" {
			if !sh.Draining || sh.Placements != 0 {
				t.Fatalf("drained shard %+v, want draining with 0 placements", sh)
			}
		}
	}
	for _, name := range names {
		res, err := c.Invoke(ctx, name, nil, "")
		if err != nil {
			t.Fatalf("post-drain invoke %s: %v", name, err)
		}
		if _, mapped := res.Outcome(); !mapped {
			t.Fatalf("post-drain invoke %s: code %d", name, res.Code)
		}
	}
}

// TestDrainMigrationUnderLoad is the zero-dropped-requests contract: a
// shard is drained in the middle of an open-loop burst, its tenants
// migrate to ring successors, every in-flight request finishes with a real
// outcome, and the fleet ledger still balances.
func TestDrainMigrationUnderLoad(t *testing.T) {
	cl := launchTest(t, 3, ShardSpec{QueueDepth: 64}, Config{})
	c := serveRouter(t, cl.Router)
	names := tenantNames()
	ctx := context.Background()

	// Seed placements so the drained shard actually holds tenants.
	for _, name := range names {
		if _, err := c.Invoke(ctx, name, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	pre := cl.Router.StatszDoc()
	var preDrain int
	for _, sh := range pre.Cluster.Shards {
		if sh.Name == "shard-0" {
			preDrain = sh.Placements
		}
	}
	if preDrain == 0 {
		t.Fatal("shard-0 holds no placements before drain — bounded-load walk broken")
	}

	const (
		workers = 4
		perW    = 30
	)
	results := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				res, err := c.Invoke(ctx, names[(w+i)%len(names)], nil, "")
				if err != nil {
					results[w] = append(results[w], -1)
					continue
				}
				results[w] = append(results[w], res.Code)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	time.Sleep(15 * time.Millisecond) // the burst is in flight
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := cl.Router.Drain(dctx, "shard-0"); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	wg.Wait()

	// Zero dropped: every request resolved with an outcome-mapped code.
	offered := 0
	for w, rs := range results {
		if len(rs) != perW {
			t.Fatalf("worker %d resolved %d/%d requests", w, len(rs), perW)
		}
		for _, code := range rs {
			if _, mapped := httpfront.OutcomeForCode(code); !mapped {
				t.Fatalf("worker %d saw code %d — a dropped or unroutable request", w, code)
			}
			offered++
		}
	}
	_ = offered

	if !cl.Router.Quiesce(10 * time.Second) {
		t.Fatal("router did not quiesce")
	}
	doc := settleLedger(t, cl.Router, 5*time.Second)

	if doc.Cluster.TransportErrors != 0 {
		t.Fatalf("graceful drain caused %d transport errors", doc.Cluster.TransportErrors)
	}
	if doc.Cluster.Migrations == 0 {
		t.Fatal("drain migrated no placements")
	}
	total := 0
	for _, sh := range doc.Cluster.Shards {
		total += sh.Placements
		if sh.Name == "shard-0" {
			if !sh.Draining {
				t.Fatal("shard-0 not marked draining")
			}
			if sh.Placements != 0 {
				t.Fatalf("drained shard still holds %d placements", sh.Placements)
			}
			if sh.Inflight != 0 {
				t.Fatalf("drained shard still has %d in flight", sh.Inflight)
			}
		}
	}
	if total != len(names) {
		t.Fatalf("placements %d after migration, want %d (every tenant re-placed)", total, len(names))
	}

	// The drained shard's own front reports draining on its wire surface.
	p := cl.Proc("shard-0")
	if p == nil {
		t.Fatal("no shard-0 proc")
	}
	direct := httpfront.NewClient("http://" + p.Addr)
	defer direct.CloseIdle()
	if up, err := direct.Healthz(ctx); err != nil || up {
		t.Fatalf("drained shard healthz up=%v err=%v, want draining 503", up, err)
	}
	sz, err := direct.Statsz(ctx)
	if err != nil {
		t.Fatalf("drained shard statsz: %v", err)
	}
	if !sz.Draining || sz.Role != httpfront.RoleShard || sz.Shard != "shard-0" {
		t.Fatalf("drained shard statsz %+v, want draining shard-0", sz)
	}
}

// TestHedgedRetries trips the "faulty" tenant's breaker on its home shard
// (through the router, so the ledger stays exact), waits for the scrape to
// mark the shard degraded, and asserts follow-up requests hedge against
// the ring successor under the same request id.
func TestHedgedRetries(t *testing.T) {
	cl := launchTest(t, 2,
		ShardSpec{BreakerWindow: 8, BreakerMinSamples: 4},
		Config{HedgeAfter: time.Millisecond})
	c := serveRouter(t, cl.Router)
	ctx := context.Background()

	// Trip the breaker: every non-empty body makes "faulty" trap → 502s
	// fill its breaker window on whichever shard owns its placement.
	sawBreakerCause := false
	for i := 0; i < 16; i++ {
		res, err := c.Invoke(ctx, "faulty", []byte("boom"), fmt.Sprintf("trip-%d", i))
		if err != nil {
			t.Fatalf("trip %d: %v", i, err)
		}
		if _, mapped := res.Outcome(); !mapped {
			t.Fatalf("trip %d: code %d outside outcome table", i, res.Code)
		}
		if res.Envelope != nil && res.Envelope.Cause == "breaker_open" {
			sawBreakerCause = true
		}
	}
	if !sawBreakerCause {
		t.Fatal("breaker never opened: no envelope carried cause=breaker_open")
	}

	// The scrape must observe the non-closed breaker and mark the shard
	// degraded (open → half-open still counts).
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl.Router.ScrapeOnce()
		doc := cl.Router.StatszDoc()
		degraded := false
		for _, sh := range doc.Cluster.Shards {
			degraded = degraded || sh.Degraded
		}
		if degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard marked degraded after breaker trip")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Requests for the degraded shard's tenant now hedge to the successor.
	for i := 0; i < 6; i++ {
		res, err := c.Invoke(ctx, "faulty", nil, fmt.Sprintf("hedged-%d", i))
		if err != nil {
			t.Fatalf("hedged invoke %d: %v", i, err)
		}
		if _, mapped := res.Outcome(); !mapped {
			t.Fatalf("hedged invoke %d: code %d", i, res.Code)
		}
	}

	if !cl.Router.Quiesce(10 * time.Second) {
		t.Fatal("router did not quiesce (hedge losers leaked)")
	}
	doc := settleLedger(t, cl.Router, 5*time.Second)
	if doc.Cluster.Hedges == 0 {
		t.Fatal("no hedged attempts fired against the degraded shard")
	}
	if doc.Cluster.TransportErrors != 0 {
		t.Fatalf("hedging caused %d transport errors", doc.Cluster.TransportErrors)
	}
}

// TestClusterChaosSoak is the fleet-tier chaos proof: a 4-shard cluster
// under the shardkill and partition classes — one member SIGKILLed at a
// seed-chosen tick, router↔shard links severed in windowed bursts — must
// keep exact client-side outcome conservation, eject and migrate around
// the dead member, and keep the delivered==admitted ledger on every shard
// that survives.
func TestClusterChaosSoak(t *testing.T) {
	inj := chaos.New(chaos.Config{
		Seed:      11,
		ShardKill: 0.004,
		Partition: 0.06, PartitionTicks: 6,
	})
	cl := launchTest(t, 4, ShardSpec{QueueDepth: 64}, Config{
		Chaos:       inj,
		HealthEvery: 20 * time.Millisecond,
		RetryMax:    4,
	})
	c := serveRouter(t, cl.Router)
	names := tenantNames()
	ctx := context.Background()

	const total = 240
	// The kill schedule is a pure draw per (shard, tick) — find the first
	// hit so two same-seed runs kill the same member at the same point.
	killTick, killShard := -1, ""
	for tick := 0; tick < total && killTick < 0; tick++ {
		for _, p := range cl.Procs {
			if inj.ShardKill(p.Spec.Name, tick) {
				killTick, killShard = tick, p.Spec.Name
				break
			}
		}
	}
	if killTick < 0 {
		t.Fatalf("seed %d draws no shard kill in %d ticks — raise the rate", inj.Seed(), total)
	}
	t.Logf("chaos schedule: SIGKILL %s at tick %d", killShard, killTick)

	const workers = 3
	var killOnce sync.Once
	results := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < total; i += workers {
				if i >= killTick {
					killOnce.Do(func() { cl.Proc(killShard).Kill() })
				}
				res, err := c.Invoke(ctx, names[i%len(names)], nil, "")
				if err != nil {
					results[w] = append(results[w], -1)
					continue
				}
				results[w] = append(results[w], res.Code)
			}
		}()
	}
	wg.Wait()

	// Exact conservation at the client: every one of the offered requests
	// resolved to an outcome-mapped code — a killed shard or severed link
	// surfaces as a retried success, a shed, or an unroutable 503 (the shed
	// class), never a hang, a drop, or a transport error.
	offered := 0
	for w, rs := range results {
		if len(rs) != (total-w+workers-1)/workers {
			t.Fatalf("worker %d resolved %d requests", w, len(rs))
		}
		for _, code := range rs {
			if code == -1 {
				t.Fatal("client saw a transport error through the router")
			}
			if _, mapped := httpfront.OutcomeForCode(code); !mapped {
				t.Fatalf("code %d outside the outcome table", code)
			}
			offered++
		}
	}
	if offered != total {
		t.Fatalf("accounted %d != offered %d", offered, total)
	}

	if !cl.Router.Quiesce(15 * time.Second) {
		t.Fatal("router did not quiesce")
	}
	doc := settleLedger(t, cl.Router, 10*time.Second)

	killed := false
	for _, sh := range doc.Cluster.Shards {
		if sh.Name == killShard {
			killed = true
			if sh.Healthy {
				t.Fatalf("killed shard %s still marked healthy", killShard)
			}
		}
	}
	if !killed {
		t.Fatalf("killed shard %s missing from /statsz", killShard)
	}
	if doc.Cluster.TransportErrors == 0 {
		t.Fatal("a kill plus partitions produced no transport errors — chaos never bit")
	}
	if doc.Cluster.Migrations == 0 {
		t.Fatal("ejecting the killed shard migrated no placements")
	}

	snap := inj.Snapshot()
	if snap.ShardKill == 0 || snap.Partition == 0 {
		t.Fatalf("chaos summary %+v, want both cluster classes fired", snap)
	}
}

// TestRunSweepAndBaseline runs one cluster sweep point end-to-end (fresh
// 3-shard fleet, open-loop Poisson load, fleet conservation inside
// RunSweep) and exercises the baseline gate in both directions.
func TestRunSweepAndBaseline(t *testing.T) {
	names := tenantNames()
	opts := LaunchOpts{N: 3, Shard: ShardSpec{Workers: 2, QueueDepth: 32, Seed: 7}}
	rep, err := RunSweep(opts, names, []float64{800}, 120, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Mode != "cluster-sweep" || rep.Shards != 3 {
		t.Fatalf("report %+v, want one cluster-sweep point over 3 shards", rep)
	}
	pt := rep.Points[0]
	if pt.OK == 0 {
		t.Fatalf("sweep point has no successes: %+v", pt)
	}
	if pt.Shards != 3 {
		t.Fatalf("point shards %d, want 3", pt.Shards)
	}
	if pt.RoutingHitRate <= 0 {
		t.Fatalf("no warm routing hits in the sweep: %+v", pt)
	}

	// Self-baseline: the report gates cleanly against itself...
	path := t.TempDir() + "/cluster_baseline.json"
	if err := writeJSONFile(path, rep); err != nil {
		t.Fatal(err)
	}
	if err := CheckBaseline(rep, path, 3.0); err != nil {
		t.Fatalf("self-baseline failed: %v", err)
	}
	// ...and a regressed p99 trips the gate.
	bad := rep
	bad.Points = append([]SweepPoint(nil), rep.Points...)
	bad.Points[0].P99Ns *= 100
	if err := CheckBaseline(bad, path, 3.0); err == nil {
		t.Fatal("100x p99 regression passed the baseline gate")
	}
}

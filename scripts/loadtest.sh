#!/bin/sh
# loadtest.sh — short deterministic open-loop load gate (`make loadtest`).
#
# Runs the in-process open-loop sweep (hfiserve -mode sweep: seeded Poisson
# arrivals, built-in generator, no external tools) at three offered rates —
# comfortably below, around, and far past one/two-worker capacity — and
# fails if any point's p99 exceeds the checked-in baseline by more than the
# tolerance, if the outcome ledger does not conserve exactly, or if any
# rate serves zero successes.
#
# The tolerance is a multiplier (default 4x), not a percentage: wall-clock
# latency on shared CI hardware is noisy, and a real regression — an
# accidental lock across dispatch, a lost fast path — shows up as a
# multiple. PolicyShed keeps p99 bounded at the overloaded point, so the
# gate stays meaningful past the knee.
#
# Regenerate the baseline after an intentional perf change (the trailing
# flags override the defaults; -check "" disables the gate for the
# recording run):
#   scripts/loadtest.sh -check "" -json > scripts/loadtest_baseline.json
#
# Usage: scripts/loadtest.sh [extra hfiserve flags]
set -eu
cd "$(dirname "$0")/.."

exec go run ./cmd/hfiserve -mode sweep \
	-workers 2 \
	-rates 300,900,2500 \
	-requests 120 \
	-policy shed -queue 16 -dispatch 300us -seed 1 \
	-check scripts/loadtest_baseline.json \
	"$@"

package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundtrip(t *testing.T) {
	m := NewMemory()
	prop := func(addr uint64, v uint64, sizeSel uint8) bool {
		addr &= (1 << 40) - 1
		size := []uint8{1, 2, 4, 8}[sizeSel%4]
		m.Write(addr, size, v)
		got := m.Read(addr, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*uint(size)) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3) // straddles two backing pages
	m.Write(addr, 8, 0x1122334455667788)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Fatalf("cross-page read = %#x", got)
	}
	buf := make([]byte, 2*PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	m.WriteBytes(addr, buf)
	out := make([]byte, len(buf))
	m.ReadBytes(addr, out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("byte %d: %d != %d", i, out[i], buf[i])
		}
	}
}

func TestMemoryZeroAndResidency(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 1)
	m.Write(0x5000, 8, 2)
	m.Write(0x9000, 8, 3)
	if got := m.ResidentIn(0, 0x10000); got != 3*PageSize {
		t.Fatalf("resident = %d", got)
	}
	// Small-range zero.
	m.Zero(0x1000, 0x1000)
	if m.Read(0x1000, 8) != 0 {
		t.Fatal("zeroed page still readable")
	}
	if m.PageResident(0x1000) {
		t.Fatal("whole-page zero should release the page")
	}
	// Huge sparse zero must clear the rest without walking the range.
	m.Zero(0, 1<<40)
	if m.ResidentBytes() != 0 {
		t.Fatalf("resident after huge zero = %d", m.ResidentBytes())
	}
}

func TestMemoryZeroPartialEdges(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x2000, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	// Zero a sub-page range via the sparse path (range >> resident).
	m.Zero(0x2002, 1<<30)
	if m.LoadByte(0x2000) != 1 || m.LoadByte(0x2001) != 2 {
		t.Fatal("bytes before the range were clobbered")
	}
	for i := uint64(2); i < 8; i++ {
		if m.LoadByte(0x2000+i) != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache("t", 2*64, 2, 64) // 2 sets, 2 ways
	a0 := uint64(0)                 // set 0
	a1 := uint64(128)               // set 0 (next line with 2 sets)
	a2 := uint64(256)               // set 0

	if c.Access(a0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(a0) {
		t.Fatal("warm access missed")
	}
	c.Access(a1) // set 0 now holds a0, a1
	c.Access(a2) // evicts LRU = a0
	if c.Lookup(a0) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Lookup(a1) || !c.Lookup(a2) {
		t.Fatal("recent lines evicted")
	}

	c.Flush(a1)
	if c.Lookup(a1) {
		t.Fatal("flushed line still present")
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatal("stats not counted")
	}
}

func TestCacheSetMapping(t *testing.T) {
	c := NewCache("t", 32<<10, 8, 64)
	// Lines that differ only above the index bits map to the same set and
	// eventually evict each other; different sets never interfere.
	base := uint64(0x10000)
	for i := 0; i < 16; i++ {
		c.Access(base + uint64(i)*32<<10/8*8) // same-set sweep (stride = sets*line)
	}
	if c.Lookup(base) {
		t.Fatal("way-exhausted set kept its oldest line")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 12)
	pages := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	for _, p := range pages {
		if tlb.Access(p) {
			t.Fatalf("cold access to %#x hit", p)
		}
	}
	for _, p := range pages {
		if !tlb.Access(p) {
			t.Fatalf("warm access to %#x missed", p)
		}
	}
	tlb.Access(0x5000) // evicts LRU 0x1000
	if tlb.Access(0x1000) {
		t.Fatal("evicted translation still present")
	}
	tlb.Invalidate(0x5000)
	if tlb.Access(0x5000) {
		t.Fatal("invalidated translation still present")
	}
	tlb.InvalidateAll()
	if tlb.Access(0x2000) {
		t.Fatal("shootdown left translations behind")
	}
	if _, _, sd := tlb.Stats(); sd != 1 {
		t.Fatalf("shootdowns = %d", sd)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	lat1 := h.LoadLatency(0x4000)
	if lat1 < h.Lat.Mem {
		t.Fatalf("cold load latency %d < DRAM %d", lat1, h.Lat.Mem)
	}
	lat2 := h.LoadLatency(0x4000)
	if lat2 != h.Lat.L1 {
		t.Fatalf("warm load latency %d, want L1 %d", lat2, h.Lat.L1)
	}
	h.Flush(0x4000)
	if h.Probe(0x4000) {
		t.Fatal("flushed line probes as present")
	}
	// After the flush, the line is gone from every level.
	if lat := h.LoadLatency(0x4000); lat < h.Lat.Mem {
		t.Fatalf("post-flush latency %d, want full miss", lat)
	}
}

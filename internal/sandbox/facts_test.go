package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// TestFactBitParity pins the numeric correspondence between the verifier's
// fact bits and the cpu package's redeclared elision bits: ElisionFromFacts
// shares the Bits slice between the two, so a drift here would silently
// misinterpret proofs.
func TestFactBitParity(t *testing.T) {
	pairs := []struct {
		name     string
		ver, cpu uint8
	}{
		{"resident", verifier.FactResident, cpu.FactResident},
		{"dominated", verifier.FactDominated, cpu.FactDominated},
		{"hfi-heap", verifier.FactHfiHeap, cpu.FactHfiHeap},
		{"hostcall", verifier.FactHostcall, cpu.FactHostcall},
	}
	for _, p := range pairs {
		if p.ver != p.cpu {
			t.Errorf("%s: verifier bit %#x != cpu bit %#x", p.name, p.ver, p.cpu)
		}
	}
}

// TestFactsTravelWithImages checks that instantiation attaches the
// compile-time proof artifact and that it covers the heap traffic the
// acceptance bar requires: across the Sightglass corpus, at least half of
// all heap memory operations carry an elidable fact, per scheme.
func TestFactsTravelWithImages(t *testing.T) {
	for _, scheme := range []sfi.Scheme{sfi.HFI, sfi.GuardPages, sfi.BoundsCheck} {
		heapOps, covered := 0, 0
		for _, w := range workloads.Sightglass() {
			rt := NewRuntime()
			inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, scheme, err)
			}
			f := inst.C.Facts
			if f == nil {
				t.Fatalf("%s/%v: no facts attached to the compiled image", w.Name, scheme)
			}
			if len(f.Bits) != len(inst.C.Prog.Instrs) {
				t.Fatalf("%s/%v: facts shape %d != program %d", w.Name, scheme, len(f.Bits), len(inst.C.Prog.Instrs))
			}
			heapOps += f.HeapOps
			covered += f.Covered
		}
		if heapOps == 0 {
			t.Fatalf("%v: corpus has no heap memory operations", scheme)
		}
		if 2*covered < heapOps {
			t.Errorf("%v: elision coverage %d/%d heap ops is below the 50%% bar", scheme, covered, heapOps)
		}
		t.Logf("%v: %d/%d heap ops covered (%.0f%%)", scheme, covered, heapOps, 100*float64(covered)/float64(heapOps))
	}
}

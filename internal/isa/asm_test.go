package isa

import (
	"strings"
	"testing"
)

const asmSample = `
; sum the first n integers, then poke memory
start:
    movi r1, 10        # n
    movi r2, 0         # sum
loop:
    add r2, r2, r1
    sub r1, r1, 1
    br.ne r1, 0, loop
    movi r3, 0x100000
    st64 [r3 + 16], r2
    ld64 r4, [r3 + r1*8 + 16]
    add.32 r4, r4, 0xffffffff
    hld32 1, r5, [r4*1 + 4]
    hst8 2, [r1 + 0], r5
    hfi_enter r3
    hfi_set_region 6, r3
    call fn
    jmp done
fn:
    neg r6, r2
    ret
done:
    syscall
    halt
`

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(0x1000, asmSample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry("start") != 0x1000 {
		t.Fatalf("start at %#x", p.Entry("start"))
	}
	// Spot-check a few encodings.
	in := p.At(p.Entry("loop"))
	if in.Op != OpAdd || in.Rd != R2 || in.Rs1 != R2 || in.Rs2 != R1 {
		t.Fatalf("loop[0] = %+v", in)
	}
	br := p.At(p.Entry("loop") + 2*InstrBytes)
	if br.Op != OpBr || br.Cond != CondNE || !br.UseImm || br.Target != p.Entry("loop") {
		t.Fatalf("branch = %+v", br)
	}
	st := p.At(p.Entry("loop") + 4*InstrBytes)
	if st.Op != OpStore || st.Size != 8 || st.Rs1 != R3 || st.Disp != 16 || st.Rs3 != R2 {
		t.Fatalf("store = %+v", st)
	}
	ld := p.At(p.Entry("loop") + 5*InstrBytes)
	if ld.Op != OpLoad || ld.Rs2 != R1 || ld.Scale != 8 {
		t.Fatalf("load = %+v", ld)
	}
	alu32 := p.At(p.Entry("loop") + 6*InstrBytes)
	if alu32.Op != OpAdd || !alu32.W32 || !alu32.UseImm || alu32.Imm != 0xffffffff {
		t.Fatalf("add.32 = %+v", alu32)
	}
	hld := p.At(p.Entry("loop") + 7*InstrBytes)
	if hld.Op != OpHLoad || hld.HReg != 1 || hld.Size != 4 || hld.Rs2 != R4 {
		t.Fatalf("hld = %+v", hld)
	}
	hst := p.At(p.Entry("loop") + 8*InstrBytes)
	if hst.Op != OpHStore || hst.HReg != 2 || hst.Size != 1 || hst.Rs3 != R5 {
		t.Fatalf("hst = %+v", hst)
	}
	setr := p.At(p.Entry("loop") + 10*InstrBytes)
	if setr.Op != OpHfiSetRegion || setr.Imm != 6 || setr.Rs2 != R3 {
		t.Fatalf("hfi_set_region = %+v", setr)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"movi r99, 1",
		"br.xx r1, r2, somewhere",
		"ld13 r1, [r2]",
		"jmp nowhere", // undefined label
		"add r1",      // missing operands
		"ld32 r1, r2", // not a memory operand
	}
	for _, src := range cases {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("assembled invalid input %q", src)
		}
	}
}

func TestDisassembleHasLabels(t *testing.T) {
	p, err := Assemble(0x1000, asmSample)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p)
	for _, want := range []string{"start:", "loop:", "fn:", "done:", "br.ne r1", "call fn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}

// TestAssembleDisassembleRoundtrip: disassembling and re-assembling a
// program yields identical instructions for the supported subset.
func TestAssembleDisassembleRoundtrip(t *testing.T) {
	p1, err := Assemble(0x2000, asmSample)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble(0x2000, text)
	if err != nil {
		t.Fatalf("re-assembly failed: %v\n%s", err, text)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instruction counts differ: %d vs %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		if p1.Instrs[i] != p2.Instrs[i] {
			t.Fatalf("instr %d differs:\n  %+v\n  %+v", i, p1.Instrs[i], p2.Instrs[i])
		}
	}
}

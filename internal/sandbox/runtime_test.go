package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// checksumModule builds a module whose run() fills memory with a pattern
// and folds it into a checksum returned to the caller.
func checksumModule(n int64) *wasm.Module {
	m := wasm.NewModule("checksum", 1, 16)
	f := m.Func("run", 0)
	i := f.NewReg()
	acc := f.NewReg()
	v := f.NewReg()
	f.MovImm(i, 0)
	f.MovImm(acc, 0)
	f.Label("fill")
	f.Mul32Imm(v, i, 2654435761)
	f.Store(4, i, 0, v)
	f.Add32Imm(i, i, 4)
	f.BrImm(isa.CondLT, i, n*4, "fill")
	f.MovImm(i, 0)
	f.Label("sum")
	f.Load(4, v, i, 0)
	f.Add32(acc, acc, v)
	f.Add32Imm(i, i, 4)
	f.BrImm(isa.CondLT, i, n*4, "sum")
	f.Ret(acc)
	return m
}

var allSchemes = []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI}

// TestChecksumAllSchemes runs the same module under every scheme on both
// engines and demands identical results — the core property of the §5.1
// methodology (same workload, different isolation).
func TestChecksumAllSchemes(t *testing.T) {
	mod := checksumModule(1000)
	var want uint64
	first := true
	for _, scheme := range allSchemes {
		for _, engName := range []string{"interp", "core"} {
			rt := NewRuntime()
			inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			var eng cpu.Engine
			if engName == "interp" {
				eng = cpu.NewInterp(rt.M)
			} else {
				eng = cpu.NewCore(rt.M)
			}
			res, got := inst.Invoke(eng, 100_000_000)
			if res.Reason != cpu.StopHalt {
				t.Fatalf("%v/%s: stop = %v (pc=%#x)", scheme, engName, res.Reason, rt.M.PC)
			}
			if first {
				want = got
				first = false
			} else if got != want {
				t.Fatalf("%v/%s: checksum %#x, want %#x", scheme, engName, got, want)
			}
		}
	}
	if want == 0 {
		t.Fatal("degenerate checksum")
	}
}

// oobModule attempts an out-of-bounds store at a given index.
func oobModule() *wasm.Module {
	m := wasm.NewModule("oob", 1, 1)
	f := m.Func("run", 1) // param 0: index to poke
	v := f.NewReg()
	f.MovImm(v, 0x41)
	f.Store(1, f.Param(0), 0, v)
	f.Ret(v)
	return m
}

// TestOOBTrapsPerScheme checks each scheme's bounds behaviour: guard
// pages, bounds checks and HFI trap; masking silently wraps (the §2
// criticism); None performs the wild store.
func TestOOBTrapsPerScheme(t *testing.T) {
	const oobIndex = 2 * wasm.PageSize // one page past the 64 KiB memory
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		rt := NewRuntime()
		inst, err := rt.Instantiate(oobModule(), scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		eng := cpu.NewInterp(rt.M)
		res, _ := inst.Invoke(eng, 10_000_000, oobIndex)
		if res.Reason != cpu.StopFault {
			t.Errorf("%v: out-of-bounds store did not trap (stop=%v)", scheme, res.Reason)
		}
	}

	// Masking wraps silently: the store lands inside the heap.
	rt := NewRuntime()
	inst, err := rt.Instantiate(oobModule(), sfi.Masking, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke(cpu.NewInterp(rt.M), 10_000_000, oobIndex)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("masking: stop = %v, want halt (silent wrap)", res.Reason)
	}
	if got := inst.ReadHeap(0, 1); got[0] != 0x41 {
		t.Fatalf("masking: wrapped store not observed at offset 0 (got %#x)", got[0])
	}
}

// growModule grows memory by delta pages and writes into the new space.
func growModule() *wasm.Module {
	m := wasm.NewModule("grow", 1, 64)
	f := m.Func("run", 1) // param 0: pages to grow by
	old := f.NewReg()
	idx := f.NewReg()
	v := f.NewReg()
	f.Grow(old, f.Param(0))
	f.BrImm(isa.CondEQ, old, 0xFFFFFFFF, "fail") // grow failure is the i32 -1
	// Write to the first byte of the newly grown page.
	f.MulImm(idx, old, wasm.PageSize)
	f.MovImm(v, 0x5a)
	f.Store(1, idx, 0, v)
	f.Ret(old)
	f.Label("fail")
	f.Trap()
	return m
}

// TestHeapGrowthPerScheme checks memory.grow works and enforces bounds
// afterwards under guard pages, bounds checks and HFI.
func TestHeapGrowthPerScheme(t *testing.T) {
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		rt := NewRuntime()
		inst, err := rt.Instantiate(growModule(), scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		eng := cpu.NewInterp(rt.M)
		res, old := inst.Invoke(eng, 10_000_000, 3)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("%v: stop = %v", scheme, res.Reason)
		}
		if old != 1 {
			t.Fatalf("%v: grow returned %d, want 1", scheme, old)
		}
		inst.SyncPages()
		if inst.CurPages != 4 {
			t.Fatalf("%v: pages = %d, want 4", scheme, inst.CurPages)
		}
		if got := inst.ReadHeap(wasm.PageSize, 1); got[0] != 0x5a {
			t.Fatalf("%v: write to grown page not visible", scheme)
		}

		// Growing past the maximum fails.
		res, r := inst.Invoke(eng, 10_000_000, 1000)
		if res.Reason != cpu.StopFault || r == 0 {
			// The module traps on failed grow (null deref) — a fault is
			// the expected outcome.
			if res.Reason != cpu.StopFault {
				t.Fatalf("%v: over-max grow: stop = %v, want fault", scheme, res.Reason)
			}
		}
	}
}

// TestRegisterPressureSpills verifies the compiler handles more virtual
// registers than physical ones (the spill path the §6.1 register-pressure
// experiment leans on).
func TestRegisterPressureSpills(t *testing.T) {
	m := wasm.NewModule("spilly", 1, 1)
	f := m.Func("run", 0)
	const nv = 24 // more than the 13-ish allocatable registers
	regs := make([]wasm.VReg, nv)
	for i := range regs {
		regs[i] = f.NewReg()
		f.MovImm(regs[i], int64(i+1))
	}
	acc := f.NewReg()
	f.MovImm(acc, 0)
	for i := range regs {
		f.Add(acc, acc, regs[i])
	}
	f.Ret(acc)

	want := uint64(nv * (nv + 1) / 2)
	for _, scheme := range allSchemes {
		rt := NewRuntime()
		inst, err := rt.Instantiate(m, scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		res, got := inst.Invoke(cpu.NewInterp(rt.M), 10_000_000)
		if res.Reason != cpu.StopHalt || got != want {
			t.Fatalf("%v: got %d (stop=%v), want %d", scheme, got, res.Reason, want)
		}
	}
}

// TestCallsAndRecursion exercises the calling convention, including
// recursion (fib).
func TestCallsAndRecursion(t *testing.T) {
	m := wasm.NewModule("fib", 1, 1)
	fib := m.Func("fib", 1)
	{
		n := fib.Param(0)
		a := fib.NewReg()
		b := fib.NewReg()
		fib.BrImm(isa.CondGE, n, 2, "rec")
		fib.Ret(n)
		fib.Label("rec")
		fib.SubImm(a, n, 1)
		fib.Call("fib", a, a)
		fib.SubImm(b, n, 2)
		fib.Call("fib", b, b)
		fib.Add(a, a, b)
		fib.Ret(a)
	}
	run := m.Func("run", 0)
	{
		n := run.NewReg()
		run.MovImm(n, 15)
		run.Call("fib", n, n)
		run.Ret(n)
	}

	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.HFI} {
		for _, engName := range []string{"interp", "core"} {
			rt := NewRuntime()
			inst, err := rt.Instantiate(m, scheme, wasm.Options{})
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			var eng cpu.Engine
			if engName == "interp" {
				eng = cpu.NewInterp(rt.M)
			} else {
				eng = cpu.NewCore(rt.M)
			}
			res, got := inst.Invoke(eng, 100_000_000)
			if res.Reason != cpu.StopHalt || got != 610 {
				t.Fatalf("%v/%s: fib(15) = %d (stop=%v), want 610", scheme, engName, got, res.Reason)
			}
		}
	}
}

// TestHFIEnterExitLifecycle checks that the springboard enters HFI mode
// and the module's hfi_exit leaves it, with the MSR recording the exit.
func TestHFIEnterExitLifecycle(t *testing.T) {
	rt := NewRuntime()
	inst, err := rt.Instantiate(checksumModule(10), sfi.HFI, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke(cpu.NewInterp(rt.M), 10_000_000)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if rt.M.HFI.Enabled {
		t.Fatal("HFI still enabled after module exit")
	}
	if rt.M.HFI.Enters != 1 || rt.M.HFI.Exits != 1 {
		t.Fatalf("enters/exits = %d/%d, want 1/1", rt.M.HFI.Enters, rt.M.HFI.Exits)
	}
}

// multiMemModule copies a block from memory 1 to memory 2, checksumming
// through memory 0.
func multiMemModule() *wasm.Module {
	m := wasm.NewModule("multimem", 1, 1)
	m.AddMemory(2) // memory 1: 128 KiB
	m.AddMemory(1) // memory 2: 64 KiB
	f := m.Func("run", 1)
	n := f.Param(0)
	i, v, acc := f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(acc, 0)
	f.MovImm(i, 0)
	f.Label("copy")
	f.LoadMem(1, 4, v, i, 0)
	f.StoreMem(2, 4, i, 0, v)
	f.Add32(acc, acc, v)
	f.Store(4, i, 0, v) // primary memory too
	f.Add32Imm(i, i, 4)
	f.Br(isa.CondLT, i, n, "copy")
	f.Ret(acc)
	return m
}

// TestMultiMemoryAcrossSchemes checks the multi-memory extension produces
// identical results under every scheme, and that HFI pays no per-access
// indirection (instruction-count comparison).
func TestMultiMemoryAcrossSchemes(t *testing.T) {
	input := make([]byte, 4096)
	for i := range input {
		input[i] = byte(i*13 + 7)
	}
	var want uint64
	var wantOut []byte
	counts := map[sfi.Scheme]uint64{}
	for _, scheme := range allSchemes {
		rt := NewRuntime()
		inst, err := rt.Instantiate(multiMemModule(), scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		inst.WriteMem(1, 0, input)
		res, got := inst.Invoke(cpu.NewInterp(rt.M), 0, 4096)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("%v: stop = %v", scheme, res.Reason)
		}
		out := inst.ReadMem(2, 0, 4096)
		if want == 0 {
			want, wantOut = got, out
		} else {
			if got != want {
				t.Errorf("%v: checksum %#x, want %#x", scheme, got, want)
			}
			if string(out) != string(wantOut) {
				t.Errorf("%v: copied bytes diverge", scheme)
			}
		}
		counts[scheme] = rt.M.Instret
	}
	// HFI's multi-memory accesses are single hmovs; guard pages pay a
	// context load per access; bounds checks pay several.
	if !(counts[sfi.HFI] < counts[sfi.GuardPages] && counts[sfi.GuardPages] < counts[sfi.BoundsCheck]) {
		t.Errorf("instret ordering: hfi=%d guard=%d bounds=%d",
			counts[sfi.HFI], counts[sfi.GuardPages], counts[sfi.BoundsCheck])
	}
}

// TestMultiMemoryOOBTraps checks bounds enforcement on a secondary memory
// under HFI (explicit region 2) and guard pages.
func TestMultiMemoryOOBTraps(t *testing.T) {
	mod := wasm.NewModule("mmoob", 1, 1)
	mod.AddMemory(1) // 64 KiB
	f := mod.Func("run", 1)
	v := f.NewReg()
	f.MovImm(v, 0x77)
	f.StoreMem(1, 1, f.Param(0), 0, v)
	f.Ret(v)

	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		rt := NewRuntime()
		inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// In-bounds write works.
		res, _ := inst.Invoke(cpu.NewInterp(rt.M), 0, 100)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("%v in-bounds: stop = %v", scheme, res.Reason)
		}
		if got := inst.ReadMem(1, 100, 1); got[0] != 0x77 {
			t.Fatalf("%v: write not visible", scheme)
		}
		// Out-of-bounds traps.
		res, _ = inst.Invoke(cpu.NewInterp(rt.M), 0, 2*wasm.PageSize)
		if res.Reason != cpu.StopFault {
			t.Errorf("%v out-of-bounds: stop = %v, want fault", scheme, res.Reason)
		}
	}
}

// TestHFIMemoryLimit: more than four memories needs region multiplexing,
// which the compiler reports rather than mis-compiling.
func TestHFIMemoryLimit(t *testing.T) {
	mod := wasm.NewModule("toomany", 1, 1)
	for i := 0; i < 4; i++ {
		mod.AddMemory(1)
	}
	f := mod.Func("run", 0)
	f.Ret(wasm.VNone)
	rt := NewRuntime()
	if _, err := rt.Instantiate(mod, sfi.HFI, wasm.Options{}); err == nil {
		t.Fatal("five memories accepted under HFI without multiplexing")
	}
	// The software schemes have no such limit.
	if _, err := rt.Instantiate(mod, sfi.GuardPages, wasm.Options{}); err != nil {
		t.Fatalf("guard pages rejected five memories: %v", err)
	}
}

// TestMultiMemoryFootprint reproduces the §2 address-space argument: each
// extra memory costs a guard-page instance another 8 GiB of reservation,
// while HFI pays only the memory itself.
func TestMultiMemoryFootprint(t *testing.T) {
	measure := func(scheme sfi.Scheme, extra int) uint64 {
		mod := wasm.NewModule("fp", 1, 1)
		for i := 0; i < extra; i++ {
			mod.AddMemory(1)
		}
		f := mod.Func("run", 0)
		f.Ret(wasm.VNone)
		rt := NewRuntime()
		before := rt.M.AS.ReservedBytes()
		if _, err := rt.Instantiate(mod, scheme, wasm.Options{}); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		return rt.M.AS.ReservedBytes() - before
	}
	g0 := measure(sfi.GuardPages, 0)
	g3 := measure(sfi.GuardPages, 3)
	h0 := measure(sfi.HFI, 0)
	h3 := measure(sfi.HFI, 3)
	if g3-g0 != 3*GuardReservation {
		t.Errorf("guard pages: 3 extra memories grew the footprint by %d, want %d", g3-g0, 3*GuardReservation)
	}
	if h3-h0 >= GuardReservation {
		t.Errorf("HFI: 3 extra memories grew the footprint by %d — guard-sized growth", h3-h0)
	}
}

// TestShareBufferInPlace demonstrates §3.2's small-region object sharing:
// the runtime grants a sandbox byte-granular access to a host buffer, the
// guest mutates it in place, and one byte past the bound traps.
func TestShareBufferInPlace(t *testing.T) {
	mod := wasm.NewModule("sharer", 1, 1)
	mod.AddMemory(0) // memory 1: placeholder, re-pointed by ShareBuffer
	f := mod.Func("run", 1)
	n := f.Param(0)
	i, v := f.NewReg(), f.NewReg()
	f.MovImm(i, 0)
	f.Label("bump")
	f.LoadMem(1, 1, v, i, 0)
	f.Add32Imm(v, v, 1)
	f.StoreMem(1, 1, i, 0, v)
	f.Add32Imm(i, i, 1)
	f.Br(isa.CondLT, i, n, "bump")
	f.Ret(i)

	rt := NewRuntime()
	inst, err := rt.Instantiate(mod, sfi.HFI, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A host-side object at a byte-granular (unaligned) address.
	m := rt.M
	bufBase, err := m.AS.MapAligned(0x1000, 0x1000, kernelRW())
	if err != nil {
		t.Fatal(err)
	}
	obj := bufBase + 13 // deliberately unaligned
	const objLen = 37
	for i := uint64(0); i < objLen; i++ {
		m.Mem().StoreByte(obj+i, byte(i))
	}
	if err := inst.ShareBuffer(1, obj, objLen, true); err != nil {
		t.Fatal(err)
	}

	// Guest increments every byte in place.
	res, _ := inst.Invoke(cpu.NewInterp(m), 0, objLen)
	if res.Reason != cpu.StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	for i := uint64(0); i < objLen; i++ {
		if got := m.Mem().LoadByte(obj + i); got != byte(i)+1 {
			t.Fatalf("byte %d = %d, want %d", i, got, byte(i)+1)
		}
	}

	// One byte past the object traps (byte-granular bound).
	res, _ = inst.Invoke(cpu.NewInterp(m), 0, objLen+1)
	if res.Reason != cpu.StopFault {
		t.Fatalf("past-end access: stop = %v, want fault", res.Reason)
	}

	// Read-only sharing rejects writes.
	if err := inst.ShareBuffer(1, obj, objLen, false); err != nil {
		t.Fatal(err)
	}
	res, _ = inst.Invoke(cpu.NewInterp(m), 0, 1)
	if res.Reason != cpu.StopFault {
		t.Fatalf("read-only store: stop = %v, want fault", res.Reason)
	}

	// Software schemes cannot share in place.
	rt2 := NewRuntime()
	inst2, err := rt2.Instantiate(mod, sfi.GuardPages, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.ShareBuffer(1, obj, objLen, true); err == nil {
		t.Fatal("guard-page instance accepted in-place sharing")
	}
}

func kernelRW() kernel.Prot { return kernel.ProtRead | kernel.ProtWrite }

package experiments

import (
	"fmt"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// FactsElisionScheme is one scheme's row in the proof-fact elision
// experiment: how many dynamic memory checks the verifier-emitted facts
// let the interpreter skip across the Sightglass corpus, and what that
// does to simulator throughput. "Checks" counts every data access the
// interpreter mediates (page-decision lookup, bounds/mask check, or HFI
// region walk); an elided check is one the static proof discharged, so
// only the raw memory read/write remains.
type FactsElisionScheme struct {
	Scheme string

	Instret  uint64 // guest instructions retired over the corpus pass
	Accesses uint64 // data accesses (= dynamic checks with TrustFacts off)
	Elisions uint64 // checks discharged statically with TrustFacts on

	ChecksPerInstrOff float64 // Accesses / Instret
	ChecksPerInstrOn  float64 // (Accesses - Elisions) / Instret
	ReductionPP       float64 // percentage-point drop in checks per instr

	HeapOps int // heap memory operations in the corpus programs
	Covered int // of those, sites carrying an elidable fact

	OffInstrsPerSec float64 // host throughput, TrustFacts off
	OnInstrsPerSec  float64 // host throughput, TrustFacts on
	Speedup         float64
}

// FactsElision is the full experiment result (BENCH_PR7.json).
type FactsElision struct {
	Schemes []FactsElisionScheme
}

// corpusPass invokes every Sightglass workload once under scheme with the
// given TrustFacts setting, counting retired instructions, data accesses
// (via MemHook, which observes every access whether or not its check was
// elided), and elisions.
func corpusPass(scheme sfi.Scheme, trust bool) (instret, accesses, elisions uint64, heapOps, covered int, err error) {
	for _, w := range workloads.Sightglass() {
		rt := sandbox.NewRuntime()
		inst, ierr := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
		if ierr != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s/%v: %w", w.Name, scheme, ierr)
		}
		m := rt.M
		m.MemHook = func(pc, addr uint64, size uint8, write bool) { accesses++ }
		ip := cpu.NewInterp(m)
		ip.TrustFacts = trust
		if res, _ := inst.Invoke(ip, 500_000_000); res.Reason != cpu.StopHalt {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s/%v: stop %v", w.Name, scheme, res.Reason)
		}
		m.MemHook = nil
		instret += m.Instret
		elisions += m.FactElisions
		if trust && inst.C.Facts != nil {
			heapOps += inst.C.Facts.HeapOps
			covered += inst.C.Facts.Covered
		}
	}
	return instret, accesses, elisions, heapOps, covered, nil
}

// measureCorpusThroughput loops the corpus (no hooks, caches warm) until
// minInstrs retire, returning guest instructions per host second.
func measureCorpusThroughput(scheme sfi.Scheme, trust bool, minInstrs uint64) (float64, error) {
	type warmInst struct {
		inst *sandbox.Instance
		ip   *cpu.Interp
	}
	var warm []warmInst
	for _, w := range workloads.Sightglass() {
		rt := sandbox.NewRuntime()
		inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
		if err != nil {
			return 0, err
		}
		ip := cpu.NewInterp(rt.M)
		ip.TrustFacts = trust
		if res, _ := inst.Invoke(ip, 500_000_000); res.Reason != cpu.StopHalt {
			return 0, fmt.Errorf("%s/%v warmup: stop %v", w.Name, scheme, res.Reason)
		}
		warm = append(warm, warmInst{inst, ip})
	}
	var done uint64
	t0 := time.Now()
	for done < minInstrs {
		for _, wi := range warm {
			before := wi.inst.RT.M.Instret
			if res, _ := wi.inst.Invoke(wi.ip, 500_000_000); res.Reason != cpu.StopHalt {
				return 0, fmt.Errorf("throughput: stop %v", res.Reason)
			}
			done += wi.inst.RT.M.Instret - before
		}
	}
	return float64(done) / time.Since(t0).Seconds(), nil
}

// RunFactsElision measures, per scheme, the dynamic-check elision the
// verifier's proof facts buy on the Sightglass corpus: checks per
// instruction with the facts ignored vs trusted, static heap-op coverage,
// and interpreter throughput both ways.
func RunFactsElision(minInstrs uint64) (FactsElision, *stats.Table, error) {
	var out FactsElision
	for _, scheme := range []sfi.Scheme{sfi.HFI, sfi.GuardPages, sfi.BoundsCheck} {
		instret, accesses, _, _, _, err := corpusPass(scheme, false)
		if err != nil {
			return out, nil, err
		}
		instretOn, accessesOn, elisions, heapOps, covered, err := corpusPass(scheme, true)
		if err != nil {
			return out, nil, err
		}
		if instretOn != instret || accessesOn != accesses {
			return out, nil, fmt.Errorf("%v: facts-on pass diverged architecturally (%d/%d instrs, %d/%d accesses)",
				scheme, instretOn, instret, accessesOn, accesses)
		}
		row := FactsElisionScheme{
			Scheme:   scheme.String(),
			Instret:  instret,
			Accesses: accesses,
			Elisions: elisions,
			HeapOps:  heapOps,
			Covered:  covered,
		}
		row.ChecksPerInstrOff = float64(accesses) / float64(instret)
		row.ChecksPerInstrOn = float64(accesses-elisions) / float64(instret)
		row.ReductionPP = 100 * (row.ChecksPerInstrOff - row.ChecksPerInstrOn)
		if row.OffInstrsPerSec, err = measureCorpusThroughput(scheme, false, minInstrs); err != nil {
			return out, nil, err
		}
		if row.OnInstrsPerSec, err = measureCorpusThroughput(scheme, true, minInstrs); err != nil {
			return out, nil, err
		}
		row.Speedup = row.OnInstrsPerSec / row.OffInstrsPerSec
		out.Schemes = append(out.Schemes, row)
	}

	tb := &stats.Table{
		Title:   "Facts: verifier-proof check elision on Sightglass (checks/instr, coverage, host throughput)",
		Columns: []string{"scheme", "checks/instr off", "checks/instr on", "reduction (pp)", "heap-op coverage", "instrs/s off", "instrs/s on", "speedup"},
	}
	for _, r := range out.Schemes {
		cov := "n/a"
		if r.HeapOps > 0 {
			cov = fmt.Sprintf("%d/%d (%.0f%%)", r.Covered, r.HeapOps, 100*float64(r.Covered)/float64(r.HeapOps))
		}
		tb.AddRow(r.Scheme,
			fmt.Sprintf("%.4f", r.ChecksPerInstrOff),
			fmt.Sprintf("%.4f", r.ChecksPerInstrOn),
			fmt.Sprintf("%.2f", r.ReductionPP),
			cov,
			fmt.Sprintf("%.1fM", r.OffInstrsPerSec/1e6),
			fmt.Sprintf("%.1fM", r.OnInstrsPerSec/1e6),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	tb.AddNote("off = TrustFacts disabled (every access dynamically mediated); on = default interpreter, verifier facts elide proven checks; architectural state is differentially identical either way")
	return out, tb, nil
}

# Convenience targets; scripts/verify.sh is the canonical gate.

.PHONY: build test race vet verify verifier bench benchfull serve soak chaos loadtest httpd router

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# Full verification gate: build + vet + race-detected test suite + the
# static-verifier corpus sweep and mutation bench.
verify:
	sh scripts/verify.sh

# Static verifier only: corpus sweep + full mutation bench (~2k mutants).
verifier:
	go run ./cmd/hfiverify
	go run ./cmd/hfiverify -mutate -full

# Interpreter + provisioning performance snapshot; writes BENCH_PR3.json
# and fails if the hot loop allocates.
bench:
	sh scripts/bench.sh

# Every benchmark in the tree, unfiltered.
benchfull:
	go test -bench=. -benchmem ./...

# Throughput-vs-workers scaling demo with checksum verification.
serve:
	go run ./cmd/hfiserve -requests 200 -verify

# Seeded chaos soaks under the race detector: the serving soak
# (deterministic fault schedule run twice, exact outcome conservation,
# per-tenant fairness under a hot-tenant flood, bounded pools) and the
# substrate soak (TestChaosSoakSubstrate — bit flips, stale DTC entries,
# clock skew, lowering rot, with detect-and-recover containment proven by
# a MemHook escape oracle and injector-predicted counts). The TestChaosSoak
# run pattern matches both. The cluster soak extends the taxonomy to the
# fleet seams: a deterministic mid-sweep shard SIGKILL plus seeded
# router↔shard partitions, with exact conservation across the survivors.
# Part of `make verify`.
soak:
	go test -race -short -count=1 -run 'TestChaosSoak' ./internal/host
	go test -race -count=1 -run 'TestClusterChaosSoak' ./internal/cluster

# Chaos-injected serving demo with the per-tenant outcome breakdown.
chaos:
	go run ./cmd/hfiserve -requests 200 -chaos -seed 7 -dispatch 500us

# Short deterministic open-loop sweeps gated on p99 vs the checked-in
# baselines: single-host (scripts/loadtest_baseline.json) then the
# cluster sweep over 3 real shard subprocesses
# (scripts/cluster_baseline.json). Part of `make verify`.
loadtest:
	sh scripts/loadtest.sh

# HTTP front-end demo: serve the default tenant registry on :8080.
httpd:
	go run ./cmd/hfihttpd -addr :8080 -queue 16

# Cluster demo: consistent-hash router over 4 shard subprocesses on :8080.
router:
	go run ./cmd/hfirouter -addr :8080 -shards 4

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"hfi/internal/host"
	"hfi/internal/httpfront"
)

// Cluster bundles a running router with the shard subprocesses it fronts.
type Cluster struct {
	Router *Router
	Procs  []*ShardProc
}

// LaunchOpts configures Launch.
type LaunchOpts struct {
	// Bin is the shard executable ("" ⇒ os.Executable(): any HFI binary
	// that checks IsShardProc first re-execs itself as its own shards).
	Bin string
	// N is the shard count.
	N int
	// Shard is the per-shard spec template; Name/AddrFile are filled in
	// per member and Seed is offset by the member index so same-tenant
	// schedules differ across shards.
	Shard ShardSpec
	// Router is the routing policy.
	Router Config
}

// Launch spawns N shards, completes their port handshakes, registers them
// with a fresh router, and starts the health loop. On any spawn failure
// the already-started members are killed.
func Launch(o LaunchOpts) (*Cluster, error) {
	bin := o.Bin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		bin = exe
	}
	if o.N <= 0 {
		o.N = 3
	}
	var procs []*ShardProc
	for i := 0; i < o.N; i++ {
		spec := o.Shard
		spec.Name = fmt.Sprintf("shard-%d", i)
		spec.Seed += int64(i)
		if spec.WorldSeed == 0 {
			spec.WorldSeed = 1
		}
		p, err := Spawn(bin, spec)
		if err != nil {
			for _, q := range procs {
				q.Kill()
			}
			return nil, err
		}
		procs = append(procs, p)
	}
	rt := NewRouter(o.Router)
	for _, p := range procs {
		rt.AddShard(p.Spec.Name, p.Addr, p)
	}
	rt.Start()
	return &Cluster{Router: rt, Procs: procs}, nil
}

// Proc returns the subprocess named name, or nil.
func (c *Cluster) Proc(name string) *ShardProc {
	for _, p := range c.Procs {
		if p.Spec.Name == name {
			return p
		}
	}
	return nil
}

// Close stops the router loop and shuts every still-running shard down via
// its drain path (Stop is safe on already-killed members).
func (c *Cluster) Close() {
	c.Router.Stop()
	for _, p := range c.Procs {
		p.Stop()
	}
}

// SweepPoint is one cluster sweep measurement: the client-side open-loop
// point plus the router's routing/fleet view at the end of the rate.
type SweepPoint struct {
	host.SweepPoint
	Shards          int     `json:"shards"`
	RoutingHitRate  float64 `json:"routing_hit_rate"`
	Hedges          uint64  `json:"hedges"`
	Retries         uint64  `json:"retries"`
	Migrations      uint64  `json:"migrations"`
	TransportErrors uint64  `json:"transport_errors"`
}

// SweepReport is the cluster sweep document (cmd/hfirouter -selfdrive).
type SweepReport struct {
	Seed   int64        `json:"seed"`
	Mode   string       `json:"mode"`
	Shards int          `json:"shards"`
	Points []SweepPoint `json:"points"`
}

// RunSweep drives the whole cluster through one open-loop Poisson sweep
// per offered rate — a fresh fleet per point so queue and pool state never
// bleed between rates — and cross-checks fleet-wide conservation at each:
// client-side offered == Σ outcomes, and for every live shard the
// router-delivered count equals the shard's own admitted counter.
func RunSweep(o LaunchOpts, names []string, rates []float64, perRate int, seed int64) (SweepReport, error) {
	rep := SweepReport{Seed: seed, Mode: "cluster-sweep", Shards: o.N}
	for _, rate := range rates {
		pt, err := runSweepPoint(o, names, rate, perRate, seed)
		if err != nil {
			return rep, fmt.Errorf("cluster sweep @ %.0f req/s: %w", rate, err)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

func runSweepPoint(o LaunchOpts, names []string, rate float64, perRate int, seed int64) (SweepPoint, error) {
	cl, err := Launch(o)
	if err != nil {
		return SweepPoint{}, err
	}
	defer cl.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return SweepPoint{}, err
	}
	hs := &http.Server{Handler: cl.Router.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx)
		cancel()
	}()

	client := httpfront.NewClient("http://" + ln.Addr().String())
	defer client.CloseIdle()
	base, err := httpfront.RunOpenLoopHTTP(client, names, rate, perRate, seed)
	if err != nil {
		return SweepPoint{}, err
	}
	if !cl.Router.Quiesce(10 * time.Second) {
		return SweepPoint{}, fmt.Errorf("router did not quiesce")
	}
	cl.Router.ScrapeOnce() // refresh admitted counters one last time
	doc := cl.Router.StatszDoc()

	if err := checkFleetConservation(base, doc); err != nil {
		return SweepPoint{}, err
	}
	pt := SweepPoint{
		SweepPoint:      base,
		Shards:          len(doc.Cluster.Shards),
		RoutingHitRate:  doc.Cluster.RoutingHitRate,
		Hedges:          doc.Cluster.Hedges,
		Retries:         doc.Cluster.Retries,
		Migrations:      doc.Cluster.Migrations,
		TransportErrors: doc.Cluster.TransportErrors,
	}
	return pt, nil
}

// checkFleetConservation asserts the two sweep identities: every offered
// request resolved to exactly one outcome at the client, and every live
// shard admitted exactly the requests the router delivered to it.
func checkFleetConservation(pt host.SweepPoint, doc httpfront.StatszV1) error {
	accounted := pt.OK + pt.Timeouts + pt.Faults + pt.Shed + pt.Rejected + pt.Canceled
	if accounted != uint64(pt.Offered) {
		return fmt.Errorf("client conservation: accounted %d != offered %d", accounted, pt.Offered)
	}
	for _, sh := range doc.Cluster.Shards {
		if !sh.Healthy {
			continue // dead members' counters are unobservable
		}
		if sh.Delivered != sh.Admitted {
			return fmt.Errorf("fleet ledger: shard %s delivered %d != admitted %d",
				sh.Name, sh.Delivered, sh.Admitted)
		}
	}
	return nil
}

// CheckBaseline gates a sweep report against the checked-in cluster
// baseline: per-point client conservation has already been enforced by
// RunSweep; here every point must keep OK > 0 and p99 within tol× the
// baseline entry at the same (shards, rate) key.
func CheckBaseline(rep SweepReport, path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cluster baseline: %w", err)
	}
	var base SweepReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("cluster baseline: %w", err)
	}
	ref := make(map[string]SweepPoint, len(base.Points))
	for _, pt := range base.Points {
		ref[fmt.Sprintf("%d@%.0f", base.Shards, pt.RateRPS)] = pt
	}
	for _, pt := range rep.Points {
		key := fmt.Sprintf("%d@%.0f", rep.Shards, pt.RateRPS)
		want, ok := ref[key]
		if !ok {
			return fmt.Errorf("cluster baseline: no entry for %s", key)
		}
		if pt.OK == 0 {
			return fmt.Errorf("cluster baseline: no successful requests at %s", key)
		}
		if want.P99Ns > 0 && pt.P99Ns > want.P99Ns*tol {
			return fmt.Errorf("cluster baseline: p99 %.0fns exceeds %.1fx baseline %.0fns at %s",
				pt.P99Ns, tol, want.P99Ns, key)
		}
	}
	return nil
}

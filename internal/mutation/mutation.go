// Package mutation is the soundness bench for the static verifier: it
// deterministically injects single-instruction faults into compiled
// programs — drop a mask, neutralise a bounds check, widen a
// displacement, retarget a guard branch, swap hld→ld — and checks that
// every unsafe mutant is either rejected statically by
// internal/verifier or, if it slips through, demonstrably cannot escape
// its sandbox under the differential runtime (a cpu.Machine MemHook
// watches every architectural access and flags any address outside the
// regions the instance owns).
//
// The harness is the complement of the compile-time gate: the gate
// proves the verifier accepts everything the compiler emits; mutation
// proves it rejects the single-instruction neighbourhood around those
// programs, which is exactly the VeriWasm-style argument ("Automated
// Formal Verification of a Software Fault Isolation System") that a
// verifier's value is measured by what it refuses.
package mutation

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hostcall"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// Outcome classifies one mutant.
type Outcome uint8

const (
	// KilledStatic: the verifier rejected the mutated program.
	KilledStatic Outcome = iota
	// Equivalent: the verifier accepted the mutant and the differential
	// runtime shows behaviour identical to the unmutated baseline (same
	// stop reason, same result, fully contained trace). The mutated
	// check was provably redundant — e.g. a bounds check on an index a
	// loop condition already confines — so the mutant is not unsafe and
	// is excluded from the kill-rate denominator, the standard
	// equivalent-mutant treatment in mutation testing.
	Equivalent
	// Harmless: the verifier accepted the mutant and its behaviour
	// differs from the baseline, but the differential runtime shows
	// every architectural access stayed inside the instance's own
	// regions — the scheme's residual mediation (HFI region clamp,
	// guard pages, the MMU) contained it.
	Harmless
	// Escaped: the verifier accepted the mutant AND the runtime oracle
	// saw an access outside the sandbox. A single one of these is a
	// verifier soundness bug.
	Escaped
)

func (o Outcome) String() string {
	switch o {
	case KilledStatic:
		return "killed-static"
	case Equivalent:
		return "equivalent"
	case Harmless:
		return "harmless"
	case Escaped:
		return "ESCAPED"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Result records one mutant's fate.
type Result struct {
	Workload string
	Scheme   sfi.Scheme
	Operator string
	Index    int    // instruction index in the compiled program
	Instr    string // disassembly of the mutated instruction
	Outcome  Outcome
	Detail   string // first violation (killed) or runtime summary
}

// Report aggregates a harness run.
type Report struct {
	Total      int
	Killed     int
	Equivalent int // behaviour-identical survivors (redundant checks)
	Harmless   int // behaviour-changing survivors contained at runtime
	Results    []Result
	// Escapes lists every mutant whose runtime trace left the sandbox.
	// Non-empty means the verifier is unsound; the test gate fails.
	Escapes []Result
}

// Unsafe returns the number of genuinely unsafe mutants: everything
// injected minus the equivalent ones.
func (r *Report) Unsafe() int { return r.Total - r.Equivalent }

// KillRate returns the fraction of unsafe mutants rejected statically.
func (r *Report) KillRate() float64 {
	if r.Unsafe() == 0 {
		return 1
	}
	return float64(r.Killed) / float64(r.Unsafe())
}

// siteEnv gives operators the context they need to pick sites.
type siteEnv struct {
	scheme   sfi.Scheme
	trapAddr uint64 // address of the __trap block
	progEnd  uint64

	// Hostcall boundary context (zero-valued for pure-compute programs):
	// the gate address plus the call-setup sites the pre-pass classified
	// by walking backwards from every direct call to the gate.
	gateAddr uint64
	hcNum    map[int]bool // MovImm R0 sites selecting the hostcall number
	hcLen    map[int]bool // arg-marshalling loads of a byte-count argument
}

// operator is one deterministic single-instruction fault. apply returns
// the mutated instruction and whether the operator applies at this site
// (identified by its instruction index, so boundary operators can match
// against the pre-classified hostcall sites in env).
type operator struct {
	name  string
	apply func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool)
}

// aluNop is the identity instruction used to erase a check: add r0,r0,+0
// writes R0's own value back, changing nothing.
func aluNop() isa.Instr {
	return isa.Instr{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R0, UseImm: true}
}

// operators is the fault model: each entry removes or skews exactly the
// kind of mediation §4's security argument depends on.
var operators = []operator{
	{"drop-mask", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// Masking's AND with the mask register becomes a plain copy: the
		// index flows to the access unmasked.
		if env.scheme != sfi.Masking || in.Op != isa.OpAnd || in.UseImm || in.Rs2 != sfi.MaskReg {
			return in, false
		}
		return isa.Instr{Op: isa.OpAdd, Rd: in.Rd, Rs1: in.Rs1, UseImm: true}, true
	}},
	{"nop-check", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// A compare-and-branch guarding the trap block is erased, so the
		// access it dominated runs unconditionally.
		if in.Op != isa.OpBr || in.Target != env.trapAddr {
			return in, false
		}
		return aluNop(), true
	}},
	{"retarget-check", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// The guard branch survives but jumps one instruction past the
		// trap block, landing in whatever code follows it.
		if in.Op != isa.OpBr || in.Target != env.trapAddr {
			return in, false
		}
		if in.Target+isa.InstrBytes >= env.progEnd {
			return in, false
		}
		out := in
		out.Target += isa.InstrBytes
		return out, true
	}},
	{"widen-disp", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// The displacement grows by 8 GiB, past every reservation any
		// scheme maps.
		if in.Op != isa.OpLoad && in.Op != isa.OpStore && in.Op != isa.OpHLoad && in.Op != isa.OpHStore {
			return in, false
		}
		out := in
		out.Disp += int64(sfi.GuardReservation)
		return out, true
	}},
	{"swap-hld", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// HFI's checked hld/hst becomes a raw ld/st with the same
		// operands: the region check disappears and the index is applied
		// to base zero.
		out := in
		switch in.Op {
		case isa.OpHLoad:
			out.Op = isa.OpLoad
		case isa.OpHStore:
			out.Op = isa.OpStore
		default:
			return in, false
		}
		out.Rs1 = isa.RegNone
		return out, true
	}},
	{"hreg-skew", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// The explicit access targets the next region number, which the
		// sandbox never configured for heap traffic.
		if in.Op != isa.OpHLoad && in.Op != isa.OpHStore {
			return in, false
		}
		out := in
		out.HReg++
		return out, true
	}},
	{"clobber-base", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// An ordinary ALU result is redirected into the scheme's reserved
		// heap-base register, re-pointing every later access.
		if len(env.scheme.ReservedRegs()) == 0 {
			return in, false
		}
		switch in.Op {
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMovImm:
		default:
			return in, false
		}
		if in.Rd == isa.RegNone || in.Rd == sfi.HeapBaseReg {
			return in, false
		}
		out := in
		out.Rd = sfi.HeapBaseReg
		return out, true
	}},
	{"frame-escape", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// A frame-slot store is pushed below the stack guard window.
		if in.Op != isa.OpStore || in.Rs1 != sfi.FP || in.Disp >= 0 {
			return in, false
		}
		out := in
		out.Disp -= int64(sfi.StackGuard)
		return out, true
	}},

	// Hostcall-boundary operators: each removes one link in the chain of
	// proofs that makes the __hostcall gate a safe exit. Sites come from
	// the pre-pass that walks backwards from every direct call to the
	// gate (env.hcNum / env.hcLen).
	{"swap-hostcall-num", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// The provable constant selecting the host function is swapped
		// for an index past the registered table — the forged number a
		// compromised compiler could emit. The host dispatcher would
		// index out of its function table; the verifier must refuse the
		// call site (rule "hostcall").
		if !env.hcNum[idx] {
			return in, false
		}
		out := in
		out.Imm += hostcall.NumHostcalls
		return out, true
	}},
	{"corrupt-marshal-len", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// The marshalled byte-count argument is replaced with a 4 GiB
		// constant: the host-side copy would run far past the guest
		// buffer and out of linear memory. The (ptr, len) pair no longer
		// provably ends inside the heap, so the call site must be
		// rejected; if one ever slipped through, the dispatcher's
		// runtime re-check (MaxIOBytes, page tables) still contains it.
		if !env.hcLen[idx] {
			return in, false
		}
		return isa.Instr{Op: isa.OpMovImm, Rd: in.Rd,
			Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1 << 32}, true
	}},
	{"skip-bounds-recheck", func(in isa.Instr, idx int, env siteEnv) (isa.Instr, bool) {
		// The guest-side mask that re-bounds a dynamic hostcall result
		// (e.g. the length fd_read returned, masked before it flows back
		// into fd_write) is erased: the value reaches the next call site
		// unconstrained, so its marshalling proof must fail. Only masks
		// wide enough to be length refinements are targeted; tiny
		// selector masks (slot indices) refine values that stay provably
		// in-heap either way.
		if env.gateAddr == 0 || in.Op != isa.OpAnd || !in.UseImm ||
			in.Imm < 64 || in.Imm >= 1<<16 {
			return in, false
		}
		return isa.Instr{Op: isa.OpAdd, Rd: in.Rd, Rs1: in.Rs1, UseImm: true}, true
	}},
}

// Options configures a harness run.
type Options struct {
	// Fast trims the corpus and the per-operator site count so the run
	// fits in a CI gate; the full run sweeps the whole Sightglass suite.
	Fast bool
	// Schemes restricts the sweep; nil means all five.
	Schemes []sfi.Scheme
	// MaxSitesPerOp caps how many sites each operator mutates per
	// program (spread evenly and deterministically). 0 picks a default
	// by mode.
	MaxSitesPerOp int
	// Limit is the interpreter cycle budget per mutant run.
	Limit uint64
}

// classifyHostcallSites fills env's hostcall site maps for a program with
// a __hostcall gate. The compiler lowers every host call as a contiguous
// setup — MovImm R0, num; loads into R1..R5; call __hostcall — so walking
// backwards from each direct gate call recovers, per site, the
// number-selecting instruction and (via the ABI signature table) which
// argument loads carry a marshalled byte count.
func classifyHostcallSites(prog *isa.Program, env *siteEnv) {
	addr, ok := prog.Symbols[hostcall.GateSym]
	if !ok {
		return
	}
	env.gateAddr = addr
	env.hcNum = map[int]bool{}
	env.hcLen = map[int]bool{}
	sigs := hostcall.Sigs()
	for ci := range prog.Instrs {
		if prog.Instrs[ci].Op != isa.OpCall || prog.Instrs[ci].Target != addr {
			continue
		}
		numIdx := -1
		args := map[int]int{} // argument position (0 = R1) -> instr index
	scan:
		for j := ci - 1; j >= 0; j-- {
			in := &prog.Instrs[j]
			switch {
			case in.Op == isa.OpLoad && in.Rd >= isa.R1 && in.Rd <= isa.R5:
				args[int(in.Rd-isa.R1)] = j
			case in.Op == isa.OpMovImm && in.Rd == isa.R0:
				numIdx = j
				break scan
			default:
				break scan
			}
		}
		if numIdx < 0 {
			continue
		}
		env.hcNum[numIdx] = true
		num := prog.Instrs[numIdx].Imm
		if num < 0 || num >= int64(len(sigs)) {
			continue
		}
		for pos, j := range args {
			if sigs[num].Args[pos] == verifier.HcArgLen {
				env.hcLen[j] = true
			}
		}
	}
}

// Corpus returns the workload set for a mode: the Sightglass suite plus
// the hostcall guests (the boundary operators need programs that actually
// cross it). Fast mode picks three compute kernels that between them
// exercise loads, stores, tables, recursion and tight ALU loops, plus the
// two hostcall guests that between them hit every boundary operator.
func Corpus(fast bool) []workloads.Workload {
	all := append(workloads.Sightglass(), workloads.HostcallKernels()...)
	if !fast {
		return all
	}
	want := map[string]bool{
		"base64": true, "sieve": true, "xchacha20": true,
		"kv-session": true, "stream-xform": true,
	}
	var out []workloads.Workload
	for _, w := range all {
		if want[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// Run executes the mutation sweep and classifies every mutant.
func Run(opts Options) (*Report, error) {
	schemes := opts.Schemes
	if schemes == nil {
		schemes = []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI}
	}
	maxSites := opts.MaxSitesPerOp
	if maxSites == 0 {
		if opts.Fast {
			maxSites = 4
		} else {
			maxSites = 16
		}
	}
	limit := opts.Limit
	if limit == 0 {
		limit = 200_000_000
	}

	rep := &Report{}
	for _, w := range Corpus(opts.Fast) {
		for _, scheme := range schemes {
			if err := runOne(rep, w, scheme, maxSites, limit); err != nil {
				return nil, fmt.Errorf("mutation: %s/%v: %w", w.Name, scheme, err)
			}
			if err := runFactOps(rep, w, scheme, maxSites, limit); err != nil {
				return nil, fmt.Errorf("mutation facts: %s/%v: %w", w.Name, scheme, err)
			}
		}
	}
	return rep, nil
}

// runOne sweeps one (workload, scheme) pair.
func runOne(rep *Report, w workloads.Workload, scheme sfi.Scheme, maxSites int, limit uint64) error {
	// One instance for the static phase; it is never executed, only its
	// program and geometry are used, with each mutant patched in place
	// and restored.
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
	if err != nil {
		return err
	}
	prog := inst.C.Prog
	cfg := wasm.VerifyConfig(inst.C)
	env := siteEnv{scheme: scheme, progEnd: prog.End()}
	if t, ok := prog.Symbols["__trap"]; ok {
		env.trapAddr = t
	}
	classifyHostcallSites(prog, &env)

	// Baseline run of the unmutated program: survivors whose behaviour
	// matches it exactly are equivalent mutants, not unsafe ones.
	baseReason, baseOut, err := runBaseline(w, scheme, limit)
	if err != nil {
		return err
	}

	for _, op := range operators {
		// Collect every applicable site, then thin deterministically to
		// maxSites spread across the program.
		var sites []int
		for i := range prog.Instrs {
			if _, ok := op.apply(prog.Instrs[i], i, env); ok {
				sites = append(sites, i)
			}
		}
		if len(sites) == 0 {
			continue
		}
		stride := (len(sites) + maxSites - 1) / maxSites
		for si := 0; si < len(sites); si += stride {
			idx := sites[si]
			mut, _ := op.apply(prog.Instrs[idx], idx, env)
			res := Result{
				Workload: w.Name, Scheme: scheme, Operator: op.name,
				Index: idx, Instr: mut.String(),
			}

			orig := prog.Instrs[idx]
			prog.Instrs[idx] = mut
			verr := verifyMutant(prog, cfg)
			prog.Instrs[idx] = orig

			if verr != nil {
				res.Outcome = KilledStatic
				res.Detail = firstViolation(verr)
				rep.Killed++
			} else {
				out, detail, err := runMutant(w, scheme, idx, mut, limit, baseReason, baseOut)
				if err != nil {
					return err
				}
				res.Outcome = out
				res.Detail = detail
				switch out {
				case Escaped:
					rep.Escapes = append(rep.Escapes, res)
				case Equivalent:
					rep.Equivalent++
				default:
					rep.Harmless++
				}
			}
			rep.Total++
			rep.Results = append(rep.Results, res)
		}
	}
	return nil
}

// verifyMutant runs the static verifier, converting a structural panic
// (some mutants are not even well-formed) into a rejection.
func verifyMutant(p *isa.Program, cfg verifier.Config) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("structural panic: %v", r)
		}
	}()
	return verifier.Verify(p, cfg)
}

func firstViolation(err error) string {
	if re, ok := err.(*verifier.RejectError); ok && len(re.Violations) > 0 {
		return re.First().Error()
	}
	return err.Error()
}

// mutBody is the fixed request every hostcall guest serves during
// baseline and mutant runs: deterministic, and long enough to push the
// streaming guest through both a full and a partial fd-chunk round trip.
var mutBody = func() []byte {
	b := make([]byte, 700)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}()

// bindHostEnv gives an instance of a hostcall-using module a world to
// talk to — a fixed-seed environment with mutBody streaming on fd 0 and
// copied to InputOffset — so hostcall guests execute identically in the
// baseline and every mutant run. Returns the invoke arguments (the body
// length) and nil for pure-compute modules.
func bindHostEnv(rt *sandbox.Runtime, inst *sandbox.Instance, m *wasm.Module, name string) []uint64 {
	if !m.UsesHostcalls() {
		return nil
	}
	env := hostcall.NewWorld(1).NewEnv(name)
	env.Bind(rt.M, inst.HeapBase, inst.C.MaxHeapBytes())
	env.BeginRequest(mutBody)
	inst.WriteHeap(workloads.InputOffset, mutBody)
	return []uint64{uint64(len(mutBody))}
}

// runBaseline executes the unmutated program once and records how it
// stops, so survivors can be compared against it.
func runBaseline(w workloads.Workload, scheme sfi.Scheme, limit uint64) (cpu.StopReason, uint64, error) {
	rt := sandbox.NewRuntime()
	mod := w.Build(1)
	inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
	if err != nil {
		return 0, 0, err
	}
	args := bindHostEnv(rt, inst, mod, w.Name)
	res, out := inst.Invoke(cpu.NewInterp(rt.M), limit, args...)
	return res.Reason, out, nil
}

// runMutant instantiates a fresh sandbox, patches the mutant in place,
// surrounds the instance with canary pages, and executes it with the
// machine's MemHook watching every architectural access. Any access
// outside the regions the instance owns is an escape.
func runMutant(w workloads.Workload, scheme sfi.Scheme, idx int, mut isa.Instr, limit uint64, baseReason cpu.StopReason, baseOut uint64) (Outcome, string, error) {
	rt := sandbox.NewRuntime()
	mod := w.Build(1)
	inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
	if err != nil {
		return Escaped, "", err
	}
	invokeArgs := bindHostEnv(rt, inst, mod, w.Name)
	if idx >= len(inst.C.Prog.Instrs) {
		return Escaped, "", fmt.Errorf("mutant index %d out of range", idx)
	}
	inst.C.Prog.Instrs[idx] = mut

	// Owned regions: code block (springboard + text), the heap
	// reservation, the aux block (globals + stack), and every extra
	// linear-memory reservation.
	type span struct{ lo, hi uint64 }
	owned := []span{
		{inst.CodeBase, inst.CodeBase + inst.CodeSize},
		{inst.HeapBase, inst.HeapBase + inst.HeapReserved},
		{inst.AuxBase, inst.AuxBase + inst.AuxSize},
	}
	for i, b := range inst.ExtraMemBases {
		if b != 0 {
			owned = append(owned, span{b, b + inst.ExtraMemReserved[i]})
		}
	}

	// Canary pages directly after the heap reservation and the aux
	// block: mapped and writable, so an out-of-window access that would
	// otherwise land in unmapped space (an invisible page fault) becomes
	// an observable escape. Mapping may fail if the neighbourhood is
	// already occupied; the oracle works either way.
	m := rt.M
	for _, at := range []uint64{inst.HeapBase + inst.HeapReserved, inst.AuxBase + inst.AuxSize} {
		_ = m.AS.MapFixed(at, 4*kernel.OSPageSize, kernel.ProtRead|kernel.ProtWrite)
	}

	var escape string
	m.MemHook = func(pc, addr uint64, size uint8, write bool) {
		if escape != "" {
			return
		}
		end := addr + uint64(size)
		for _, s := range owned {
			if addr >= s.lo && end <= s.hi {
				return
			}
		}
		kind := "load"
		if write {
			kind = "store"
		}
		escape = fmt.Sprintf("%s of %d bytes at %#x (pc %#x) outside sandbox", kind, size, addr, pc)
	}
	res, out := inst.Invoke(cpu.NewInterp(m), limit, invokeArgs...)
	m.MemHook = nil

	if escape != "" {
		return Escaped, escape, nil
	}
	if res.Reason == baseReason && out == baseOut {
		return Equivalent, fmt.Sprintf("identical to baseline: stop=%v result=%#x", res.Reason, out), nil
	}
	return Harmless, fmt.Sprintf("contained: stop=%v result=%#x (baseline stop=%v result=%#x)", res.Reason, out, baseReason, baseOut), nil
}

package host

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

// The chaos soak is the acceptance test of the robustness PR. Phase one
// (TestChaosSoakDeterministic) drives a mixed-tenant schedule through a
// chaos-injected server twice with the same seed and asserts, exactly:
//
//   - outcome conservation — admitted == ok + timeouts + faults + shed +
//     rejected, with zero slack;
//   - determinism — both runs produce identical per-tenant outcome counts,
//     because every chaos decision is a pure hash of (seed, tenant, seq);
//   - no cross-tenant corruption — every clean request's response checksum
//     matches a single-threaded reference, per tenant, even though faulted
//     requests scribbled garbage into heaps that were then reused;
//   - outcome counts match the fault schedule predicted from the injector
//     alone (the injector and the host agree about what was injected);
//   - the warm pool stays bounded.
//
// Phase two (TestChaosSoakOverloadFairness) adds overload: a hot tenant
// flooding a shed queue, a permanently faulting tenant tripping its
// breaker, chaos on top — and asserts conservation, per-tenant progress,
// breaker trips, and the pool bound, where exact outcome counts are
// legitimately timing-dependent.

// soakChaosCfg is the shared phase-one injector configuration: every fault
// class active at rates that leave most traffic clean.
func soakChaosCfg(seed int64) chaos.Config {
	return chaos.Config{
		Seed:      seed,
		Provision: 0.6, MaxProvisionFails: 2,
		Reject: 0.04,
		Trap:   0.08,
		Fuel:   0.08, StarvedFuel: 64,
		Slow: 0.03, SlowFor: 200 * time.Microsecond,
		Poison:   0.5,
		Hostcall: 0.15,
	}
}

// soakMix is the phase-one traffic: the Table 1 mix plus a hostcall tenant
// (the streaming transformer — stateless per request, so its responses are
// worker- and order-independent and the checksum reference stays exact even
// while hostcall faults are injected).
func soakMix() []Class {
	mix := DefaultMix()
	hc := workloads.HostcallTenants()
	for _, te := range hc {
		if te.Name == "stream-xform" {
			mix = append(mix, Class{Weight: 4, Tenant: te,
				Iso: faas.Config{Name: "HFI", Scheme: sfi.HFI}})
		}
	}
	if len(mix) == len(DefaultMix()) {
		panic("soakMix: stream-xform tenant missing")
	}
	return mix
}

// soakOutcomes is an outcome-count tuple, used both for observed per-tenant
// results and for the expectation predicted from the injector.
type soakOutcomes struct {
	ok, timeouts, faults, rejected uint64
	checksum                       uint64
}

// soakRun is one chaos soak's observable result.
type soakRun struct {
	sum      stats.ServeSummary
	tenants  map[string]soakOutcomes
	tsums    []stats.TenantSummary
	counters Counters
}

// runChaosSoakOnce pushes reqs through a fresh chaos-injected server with
// 8 concurrent closed-loop clients and returns the observed outcome counts
// and per-tenant OK-response checksums.
func runChaosSoakOnce(t *testing.T, seed int64, reqs []Request) soakRun {
	t.Helper()
	inj := chaos.New(soakChaosCfg(seed))
	s := New(Config{
		Workers: 4, QueueDepth: 8, Policy: PolicyBlock,
		Retry: RetryConfig{Max: 2, Base: 50 * time.Microsecond, Cap: time.Millisecond},
		Pool:  PoolConfig{Cap: 3, TeardownBatch: 4},
		Chaos: inj, Seed: seed,
		Tenants: map[string]TenantPolicy{reqs[0].Tenant.Name: {Weight: 2}},
	})

	var next atomic.Int64
	var mu sync.Mutex
	obs := make(map[string]soakOutcomes)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(reqs) {
					return
				}
				r := s.Do(context.Background(), reqs[i])
				name := reqs[i].Tenant.Name
				mu.Lock()
				o := obs[name]
				switch r.Status {
				case StatusOK:
					o.ok++
					o.checksum ^= faas.HashResponse(int(reqs[i].Seq), r.Body)
				case StatusTimeout:
					o.timeouts++
				case StatusFault:
					o.faults++
				case StatusRejected:
					o.rejected++
				default:
					t.Errorf("req %d (%s seq %d): unexpected status %v err %v",
						i, name, reqs[i].Seq, r.Status, r.Err)
				}
				obs[name] = o
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	s.Close()
	return soakRun{sum: s.Snapshot(0), tenants: obs,
		tsums: s.TenantSummaries(), counters: s.Counters()}
}

// soakExpected predicts each tenant's outcome counts and clean-response
// checksum from the injector decisions alone, serving the full request set
// single-threaded as the ground truth for response bodies. The prediction
// mirrors the host's decision order: admission rejection, then injected
// trap, then fuel starvation.
func soakExpected(t *testing.T, seed int64, reqs []Request) map[string]soakOutcomes {
	t.Helper()
	inj := chaos.New(soakChaosCfg(seed))
	instances := make(map[poolKey]*faas.TenantInstance)
	exp := make(map[string]soakOutcomes)
	for _, r := range reqs {
		key := poolKey{r.Tenant.Name, r.Iso}
		ti := instances[key]
		if ti == nil {
			var err error
			ti, err = faas.Provision(r.Tenant, r.Iso)
			if err != nil {
				t.Fatalf("reference provision %s: %v", r.Tenant.Name, err)
			}
			instances[key] = ti
		}
		// Mirror the host's hostcall-fault arming: a faulted-but-OK request
		// must hash identically in the reference and the concurrent run.
		ti.ArmHostcallFault(inj.Hostcall(r.Tenant.Name, int(r.Seq)))
		body, res := ti.ServeRequest(int(r.Seq), 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("reference %s seq %d: stop %v", r.Tenant.Name, r.Seq, res.Reason)
		}
		o := exp[r.Tenant.Name]
		switch {
		case inj.RejectAtAdmission(r.Tenant.Name, int(r.Seq)) != nil:
			o.rejected++
		case inj.Trap(r.Tenant.Name, int(r.Seq)):
			o.faults++
		case func() bool { _, starved := inj.StarveFuel(r.Tenant.Name, int(r.Seq)); return starved }():
			o.timeouts++
		default:
			o.ok++
			o.checksum ^= faas.HashResponse(int(r.Seq), body)
		}
		exp[r.Tenant.Name] = o
	}
	return exp
}

// TestChaosSoakDeterministic is soak phase one: N tenants, a seeded fault
// schedule, 4 race-detected workers — run twice with the same seed.
func TestChaosSoakDeterministic(t *testing.T) {
	const seed = 1234
	total := 240
	if testing.Short() {
		total = 120 // same invariants, smaller schedule, ~5s under -race
	}
	mix := soakMix()
	reqs := BuildSchedule(mix, total, seed)

	run1 := runChaosSoakOnce(t, seed, reqs)
	run2 := runChaosSoakOnce(t, seed, reqs)
	exp := soakExpected(t, seed, reqs)

	// Exact conservation, run 1 and run 2.
	for i, run := range []soakRun{run1, run2} {
		sum := run.sum
		accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
		if accounted != uint64(total) {
			t.Fatalf("run %d: accounted %d of %d: %+v", i+1, accounted, total, sum)
		}
		if run.counters.Admitted != uint64(total) {
			t.Fatalf("run %d: Admitted = %d, want %d", i+1, run.counters.Admitted, total)
		}
		if sum.Shed != 0 {
			t.Fatalf("run %d: %d sheds under PolicyBlock with no breaker", i+1, sum.Shed)
		}
		// Pool bound: per-worker cap 3 (+1 transient during insert-then-evict),
		// 4 workers.
		if run.counters.PoolHighWater > (3+1)*4 {
			t.Fatalf("run %d: pool high water %d over bound", i+1, run.counters.PoolHighWater)
		}
		if run.counters.PoolSize != 0 || run.counters.Teardowns != run.counters.ColdStarts {
			t.Fatalf("run %d: pool not fully recycled: %+v", i+1, run.counters)
		}
	}

	// Same seed ⇒ identical per-tenant outcome counts and checksums across
	// runs, and both match the schedule predicted from the injector.
	for _, mixClass := range mix {
		name := mixClass.Tenant.Name
		o1, o2, e := run1.tenants[name], run2.tenants[name], exp[name]
		if o1 != o2 {
			t.Fatalf("%s: runs diverged: %+v vs %+v", name, o1, o2)
		}
		if o1 != e {
			t.Fatalf("%s: observed %+v, injector predicts %+v", name, o1, e)
		}
		if e.ok == 0 || e.ok == e.ok+e.timeouts+e.faults+e.rejected {
			t.Fatalf("%s: degenerate fault schedule %+v — tune soak rates", name, e)
		}
	}

	// Hostcall-boundary accounting: the hostcall tenant really crossed
	// the boundary, both runs harvested bit-identical traffic (same
	// deterministic fault schedule ⇒ same calls, bytes, and quota
	// rejections), and the per-tenant counters sum exactly to the global
	// view — every marshalled byte is attributed.
	if run1.sum.Hostcalls.Calls == 0 {
		t.Fatal("hostcall tenant in the mix but zero hostcalls recorded")
	}
	if run1.sum.Hostcalls != run2.sum.Hostcalls {
		t.Fatalf("hostcall traffic diverged across runs: %+v vs %+v",
			run1.sum.Hostcalls, run2.sum.Hostcalls)
	}
	var hcSum stats.HostcallCounters
	for _, ts := range run1.tsums {
		hcSum.Add(ts.Hostcalls)
	}
	if hcSum != run1.sum.Hostcalls {
		t.Fatalf("tenant hostcall counters %+v do not sum to global %+v",
			hcSum, run1.sum.Hostcalls)
	}

	// The recorder's per-tenant view agrees with the client-side tally —
	// and its global view is the exact sum of the tenant views.
	// (Checksum equality above already proves no cross-tenant corruption:
	// every clean response was bit-identical to the single-threaded
	// reference for its own tenant.)
	var g soakOutcomes
	for _, o := range run1.tenants {
		g.ok += o.ok
		g.timeouts += o.timeouts
		g.faults += o.faults
		g.rejected += o.rejected
	}
	if g.ok != run1.sum.OK || g.timeouts != run1.sum.Timeouts ||
		g.faults != run1.sum.Faults || g.rejected != run1.sum.Rejected {
		t.Fatalf("tenant views %+v do not sum to global %+v", g, run1.sum)
	}
}

// TestChaosSoakOverloadFairness is soak phase two: a hot tenant floods a
// shed queue while cold tenants run closed-loop, a permanently faulting
// tenant exercises the breaker, chaos injects on top. Outcome counts are
// timing-dependent here; conservation, progress, and bounds are not.
func TestChaosSoakOverloadFairness(t *testing.T) {
	const seed = 77
	inj := chaos.Default(seed)
	mix := DefaultMix()
	hot := mix[0]
	colds := mix[1:]
	flaky := flakyTenant("flaky-soak", 1<<30) // every request faults
	flakyIso := faas.StockLucet()

	floodPer, coldPer, flakyN := 200, 40, 120
	if testing.Short() {
		floodPer, coldPer, flakyN = 100, 24, 80
	}

	s := New(Config{
		Workers: 2, QueueDepth: 16, Policy: PolicyBlock,
		DispatchWall: 100 * time.Microsecond,
		Tenants: map[string]TenantPolicy{
			hot.Tenant.Name: {Policy: PolicyShed, QueueDepth: 8},
		},
		Breaker: BreakerConfig{Window: 16, MinSamples: 8, TripRatio: 0.9,
			OpenFor: 2 * time.Millisecond, Probes: 1},
		Retry: RetryConfig{Max: 2, Base: 50 * time.Microsecond, Cap: 500 * time.Microsecond},
		Pool:  PoolConfig{Cap: 2, TTL: 50 * time.Millisecond, TeardownBatch: 4},
		Chaos: inj, Seed: seed,
	})

	var (
		submitted atomic.Uint64
		resolved  atomic.Uint64
		hotShed   atomic.Uint64
		hotOK     atomic.Uint64
		coldDone  = make([]atomic.Uint64, len(colds))
		wg        sync.WaitGroup
	)

	// Hot flood: fire-and-forget submits against a depth-8 shed queue.
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			var inner sync.WaitGroup
			for i := 0; i < floodPer; i++ {
				seq := f*floodPer + i
				submitted.Add(1)
				ch := s.Submit(context.Background(), treq(hot.Tenant, hot.Iso, seq))
				inner.Add(1)
				go func() {
					defer inner.Done()
					r := <-ch
					resolved.Add(1)
					switch r.Status {
					case StatusShed:
						hotShed.Add(1)
					case StatusOK:
						hotOK.Add(1)
					}
				}()
				if i%32 == 31 {
					time.Sleep(200 * time.Microsecond) // sustain the flood window
				}
			}
			inner.Wait()
		}(f)
	}
	// Cold tenants: closed loops that must progress during the flood.
	for ci, c := range colds {
		wg.Add(1)
		go func(ci int, c Class) {
			defer wg.Done()
			for i := 0; i < coldPer; i++ {
				submitted.Add(1)
				s.Do(context.Background(), treq(c.Tenant, c.Iso, i))
				resolved.Add(1)
				coldDone[ci].Add(1)
			}
		}(ci, c)
	}
	// Canceling client: a dedicated tenant whose requests are abandoned —
	// a seeded half before admission (pre-cancelled contexts, so the
	// canceled floor is deterministic), the rest while queued (cancel
	// racing dispatch, either outcome legal). Conservation must stay
	// exact across all of them.
	cancelTenant := colds[0].Tenant
	cancelTenant.Name = "cancel-soak"
	cancelIso := colds[0].Iso
	cancelN := 60
	if testing.Short() {
		cancelN = 40
	}
	var preCanceled uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < cancelN; i++ {
			submitted.Add(1)
			ctx, cancel := context.WithCancel(context.Background())
			if rng.Intn(2) == 0 {
				cancel()
				preCanceled++
				if r := s.Do(ctx, treq(cancelTenant, cancelIso, i)); r.Status != StatusCanceled {
					t.Errorf("pre-cancelled submit %d: status %v, want %v", i, r.Status, StatusCanceled)
				}
			} else {
				ch := s.Submit(ctx, treq(cancelTenant, cancelIso, i))
				cancel()
				<-ch
			}
			resolved.Add(1)
		}
	}()
	// Flaky tenant: always faults → breaker trips → typed breaker sheds.
	var breakerSheds atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < flakyN; i++ {
			submitted.Add(1)
			r := s.Do(context.Background(), treq(flaky, flakyIso, i))
			resolved.Add(1)
			if r.Status == StatusShed && errors.Is(r.Err, ErrBreakerOpen) {
				breakerSheds.Add(1)
			}
		}
	}()
	wg.Wait()
	s.Close()

	total := submitted.Load()
	if resolved.Load() != total {
		t.Fatalf("resolved %d of %d submissions", resolved.Load(), total)
	}
	// Exact conservation under overload + chaos + breaker + cancels, zero
	// slack.
	sum := s.Snapshot(0)
	accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
	if accounted != total || s.Admitted() != total {
		t.Fatalf("conservation violated: accounted %d admitted %d of %d (%+v)",
			accounted, s.Admitted(), total, sum)
	}
	// The flood really was an overload, and it really was survived.
	if hotShed.Load() == 0 {
		t.Fatal("hot flood shed nothing — queue never saturated")
	}
	if hotOK.Load() == 0 {
		t.Fatal("hot tenant served nothing — shed policy starved its own tenant")
	}
	// Every cold tenant made full progress despite the flood.
	for ci, c := range colds {
		if got := coldDone[ci].Load(); got != uint64(coldPer) {
			t.Fatalf("cold tenant %s completed %d/%d", c.Tenant.Name, got, coldPer)
		}
		if got := s.sched.tenantServed(c.Tenant.Name); got == 0 {
			t.Fatalf("cold tenant %s never dispatched", c.Tenant.Name)
		}
	}
	// The canceled class conserves: at least the deterministic pre-cancelled
	// floor resolved StatusCanceled, and the cancel tenant's own ledger
	// accounts every one of its submissions.
	if sum.Canceled < preCanceled {
		t.Fatalf("canceled = %d, below deterministic floor %d", sum.Canceled, preCanceled)
	}
	if ts := s.rec.Tenant(cancelTenant.Name); ts.Admitted() != uint64(cancelN) {
		t.Fatalf("cancel tenant accounted %d/%d (%+v)", ts.Admitted(), cancelN, ts)
	}
	// The flaky tenant tripped its breaker and was shed with the typed error.
	if got := s.Counters().BreakerTrips; got == 0 {
		t.Fatal("permanently faulting tenant never tripped its breaker")
	}
	if breakerSheds.Load() == 0 {
		t.Fatal("no ErrBreakerOpen sheds observed")
	}
	// Breaker sheds must not have leaked into the cold tenants' accounting.
	for _, c := range colds {
		ts := s.rec.Tenant(c.Tenant.Name)
		if ts.Shed != 0 {
			t.Fatalf("cold tenant %s shed %d (PolicyBlock, healthy) — cross-tenant leak", c.Tenant.Name, ts.Shed)
		}
		if ts.Admitted() != uint64(coldPer) {
			t.Fatalf("cold tenant %s accounted %d/%d", c.Tenant.Name, ts.Admitted(), coldPer)
		}
	}
	// Pool stays bounded under churn (cap 2 + 1 transient, 2 workers) and
	// everything provisioned is eventually torn down.
	ctr := s.Counters()
	if ctr.PoolHighWater > (2+1)*2 {
		t.Fatalf("pool high water %d over bound 6", ctr.PoolHighWater)
	}
	if ctr.PoolSize != 0 || ctr.Teardowns != ctr.ColdStarts {
		t.Fatalf("pool not recycled: %+v", ctr)
	}
}

package spectre

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// fnPtrAddr holds the victim's indirect-jump target; the attacker flushes
// it so the speculative BTB prediction wins the race.
const fnPtrAddr = 0x100200

// BTBHarness mounts a TransientFail-style Spectre-BTB attack: the attacker
// trains the branch target buffer so an indirect jump speculatively
// transfers to a leak gadget even after the architectural target has been
// switched to a benign one. As §5.3 notes for gem5, we model the attack
// with concrete control flow that leaks through the cache side channel.
type BTBHarness struct {
	M         *cpu.Machine
	Core      *cpu.Core
	prog      *isa.Program
	Protected bool
}

// NewBTB builds the Spectre-BTB harness.
func NewBTB(protected bool) (*BTBHarness, error) {
	h := &BTBHarness{M: cpu.NewMachine(), Protected: protected}
	h.Core = cpu.NewCore(h.M)

	b := isa.NewBuilder(codeBase)
	b.Label("victim")
	b.MovImm(isa.R5, fnPtrAddr)
	b.Load(8, isa.R6, isa.R5, isa.RegNone, 1, 0) // target pointer (flushed)
	b.JmpInd(isa.R6)                             // BTB-predicted
	b.Label("gadget_leak")
	b.MovImm(isa.R6, array1Base)
	b.Load(1, isa.R3, isa.R6, isa.R1, 1, 0)
	b.ShlImm(isa.R3, isa.R3, 9)
	b.MovImm(isa.R7, probeBase)
	b.Load(1, isa.R4, isa.R7, isa.R3, 1, 0)
	b.Label("out")
	b.Halt()
	b.Label("gadget_benign")
	b.Halt()
	h.prog = b.Build()

	if err := h.setup(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *BTBHarness) setup() error {
	m := h.M
	if err := m.LoadProgram(h.prog); err != nil {
		return err
	}
	rw := kernel.ProtRead | kernel.ProtWrite
	for _, r := range [][2]uint64{
		{array1Base, 0x10000},
		{probeBase, 0x40000},
		{secretBase, 0x1000},
	} {
		if err := m.AS.MapFixed(r[0], r[1], rw); err != nil {
			return err
		}
	}
	for i := 0; i < 16; i++ {
		m.Mem().StoreByte(array1Base+uint64(i), byte(i%16)+1)
	}
	m.Mem().WriteBytes(secretBase, []byte(Secret))

	if h.Protected {
		if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
			BasePrefix: codeBase &^ 0xfff, LSBMask: 0xfff, Exec: true,
		}); f != nil {
			return fmt.Errorf("code region: %v", f)
		}
		if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{
			BasePrefix: array1Base, LSBMask: 0xffff, Read: true, Write: true,
		}); f != nil {
			return fmt.Errorf("data region 0: %v", f)
		}
		if f := m.HFI.SetDataRegion(1, hfi.ImplicitRegion{
			BasePrefix: probeBase, LSBMask: 0x7ffff, Read: true, Write: true,
		}); f != nil {
			return fmt.Errorf("data region 1: %v", f)
		}
		if _, f := m.HFI.Enter(hfi.Config{Hybrid: true}); f != nil {
			return fmt.Errorf("enter: %v", f)
		}
	}
	return nil
}

func (h *BTBHarness) callVictim(x uint64) {
	m := h.M
	m.Kern.Sigsegv = func(kernel.SigInfo) uint64 {
		if h.Protected && !m.HFI.Enabled {
			m.HFI.Reenter()
		}
		return h.prog.Entry("out")
	}
	m.PC = h.prog.Entry("victim")
	m.Regs[isa.R1] = x
	h.Core.Run(1_000_000)
}

// AttackByte leaks the byte at offset off of the secret via BTB training.
func (h *BTBHarness) AttackByte(off int) Result {
	m := h.M
	maliciousX := uint64(secretBase) + uint64(off) - array1Base

	// Train: architectural target = leak gadget, in-bounds index.
	m.Mem().Write(fnPtrAddr, 8, h.prog.Entry("gadget_leak"))
	for i := 0; i < 8; i++ {
		h.callVictim(uint64(i % 8))
	}

	// Switch the architectural target to the benign gadget, flush the
	// pointer so the prediction races ahead, flush the receiver.
	m.Mem().Write(fnPtrAddr, 8, h.prog.Entry("gadget_benign"))
	for i := 0; i < 256; i++ {
		m.Hier.Flush(probeBase + uint64(i)*probeStride)
	}
	m.Hier.Flush(fnPtrAddr)
	m.Hier.LoadLatency(secretBase + uint64(off))

	h.callVictim(maliciousX)

	var res Result
	for i := 0; i < 256; i++ {
		lat := m.Hier.Lat.Mem
		if m.Hier.Probe(probeBase + uint64(i)*probeStride) {
			lat = m.Hier.Lat.L1
		}
		res.Latency[i] = lat
		if lat < HitThreshold && i > 16 && !res.Hit {
			res.Leaked = byte(i)
			res.Hit = true
		}
	}
	return res
}

// LeakString attacks n bytes of the secret.
func (h *BTBHarness) LeakString(n int) (string, []Result) {
	out := make([]byte, n)
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		r := h.AttackByte(i)
		results[i] = r
		if r.Hit {
			out[i] = r.Leaked
		} else {
			out[i] = '?'
		}
	}
	return string(out), results
}

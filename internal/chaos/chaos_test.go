package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hfi/internal/hostcall"
)

// TestDeterministicSchedule: two injectors with the same seed make
// identical decisions for every (class, tenant, seq), regardless of query
// order; a different seed diverges somewhere.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, Provision: 0.5, Reject: 0.1, Trap: 0.2, Fuel: 0.2, Slow: 0.2, Poison: 0.5}
	a, b := New(cfg), New(cfg)
	cfg2 := cfg
	cfg2.Seed = 8
	c := New(cfg2)

	tenants := []string{"alpha", "beta", "gamma"}
	diverged := false
	for _, tn := range tenants {
		// Query b in reverse order to prove order-independence.
		for seq := 99; seq >= 0; seq-- {
			_ = b.Trap(tn, seq)
		}
	}
	for _, tn := range tenants {
		for seq := 0; seq < 100; seq++ {
			if a.Trap(tn, seq) != (b.roll(FaultTrap, tn, seq) < cfg.Trap) {
				t.Fatalf("trap decision diverged at %s/%d", tn, seq)
			}
			af, aok := a.StarveFuel(tn, seq)
			bf, bok := b.StarveFuel(tn, seq)
			if aok != bok || af != bf {
				t.Fatalf("fuel decision diverged at %s/%d", tn, seq)
			}
			if (a.RejectAtAdmission(tn, seq) == nil) != (b.RejectAtAdmission(tn, seq) == nil) {
				t.Fatalf("reject decision diverged at %s/%d", tn, seq)
			}
			if a.SlowDown(tn, seq) != b.SlowDown(tn, seq) {
				t.Fatalf("slow decision diverged at %s/%d", tn, seq)
			}
			if a.Poison(tn, seq) != b.Poison(tn, seq) {
				t.Fatalf("poison decision diverged at %s/%d", tn, seq)
			}
			if a.Trap(tn, seq) != c.Trap(tn, seq) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 made identical trap schedules over 300 requests")
	}
}

// TestProvisionPrefixFailures: an affected tenant fails a fixed prefix of
// attempts and then succeeds forever; retrying MaxProvisionFails times
// therefore always provisions. Unaffected tenants never fail.
func TestProvisionPrefixFailures(t *testing.T) {
	in := New(Config{Seed: 3, Provision: 1.0, MaxProvisionFails: 3})
	for _, tn := range []string{"t0", "t1", "t2", "t3"} {
		k := 0
		for ; k <= 10; k++ {
			if in.ProvisionError(tn, k) == nil {
				break
			}
		}
		if k < 1 || k > 3 {
			t.Fatalf("%s: failure prefix %d, want in [1,3]", tn, k)
		}
		// The prefix is a prefix: every attempt ≥ k succeeds.
		for a := k; a < k+5; a++ {
			if err := in.ProvisionError(tn, a); err != nil {
				t.Fatalf("%s: attempt %d failed after success at %d: %v", tn, a, k, err)
			}
		}
		// And it replays identically on the next provisioning call.
		for a := 0; a < k; a++ {
			if in.ProvisionError(tn, a) == nil {
				t.Fatalf("%s: attempt %d succeeded on replay, want failure", tn, a)
			}
		}
	}
	off := New(Config{Seed: 3, Provision: 0})
	if err := off.ProvisionError("t0", 0); err != nil {
		t.Fatalf("rate-0 injector failed a provision: %v", err)
	}
}

// TestTransientClassification: injected faults are typed and transient.
func TestTransientClassification(t *testing.T) {
	in := New(Config{Seed: 1, Provision: 1})
	err := in.ProvisionError("x", 0)
	if err == nil {
		t.Skip("tenant x unaffected at this seed") // Provision=1 affects all
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not *FaultError", err)
	}
	if !fe.Transient() {
		t.Fatal("injected provision fault is not transient")
	}
	if fe.Class != FaultProvision {
		t.Fatalf("class = %v", fe.Class)
	}
}

// TestNilInjector: a nil injector never injects and never panics.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Trap("t", 0) || in.Poison("t", 0) {
		t.Fatal("nil injector injected")
	}
	if in.BitFlip("t", 0) || in.SpotCheck("t", 0) {
		t.Fatal("nil injector flipped or spot-checked")
	}
	if _, ok := in.TLBStale("t", 0); ok {
		t.Fatal("nil injector planted a stale translation")
	}
	if _, _, ok := in.ClockSkew("t", 0); ok {
		t.Fatal("nil injector skewed a clock")
	}
	if _, _, ok := in.LoweringRot("t", 0); ok {
		t.Fatal("nil injector rotted a lowering")
	}
	if _, ok := in.StarveFuel("t", 0); ok {
		t.Fatal("nil injector starved fuel")
	}
	if in.ProvisionError("t", 0) != nil || in.RejectAtAdmission("t", 0) != nil {
		t.Fatal("nil injector errored")
	}
	if in.SlowDown("t", 0) != 0 {
		t.Fatal("nil injector slowed down")
	}
	if in.Hostcall("t", 0) != hostcall.FaultNone {
		t.Fatal("nil injector armed a hostcall fault")
	}
	if !in.Clean("t", 0) {
		t.Fatal("nil injector marked a request unclean")
	}
	if in.Snapshot().Total() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector has state")
	}
}

// TestCleanMatchesDecisions: Clean is exactly "no trap, no starvation, no
// rejection, no output-changing hostcall fault, no substrate fault drawn",
// and rates actually fire at plausible frequencies.
func TestCleanMatchesDecisions(t *testing.T) {
	in := Default(42)
	var trapped, starved, rejected, hcFaults, hcSlow, clean int
	const n = 2000
	for seq := 0; seq < n; seq++ {
		tr := in.Trap("tenant", seq)
		_, fu := in.StarveFuel("tenant", seq)
		re := in.RejectAtAdmission("tenant", seq) != nil
		hc := in.Hostcall("tenant", seq)
		bf := in.BitFlip("tenant", seq)
		_, tlb := in.TLBStale("tenant", seq)
		_, _, cs := in.ClockSkew("tenant", seq)
		_, _, rot := in.LoweringRot("tenant", seq)
		if tr {
			trapped++
		}
		if fu {
			starved++
		}
		if re {
			rejected++
		}
		switch hc {
		case hostcall.FaultErr, hostcall.FaultQuota:
			hcFaults++
		case hostcall.FaultSlow:
			hcSlow++
		}
		hcDirty := hc == hostcall.FaultErr || hc == hostcall.FaultQuota
		sub := bf || tlb || cs || rot
		if in.Clean("tenant", seq) != (!tr && !fu && !re && !hcDirty && !sub) {
			t.Fatalf("Clean inconsistent at seq %d", seq)
		}
		if in.Clean("tenant", seq) {
			clean++
		}
	}
	if trapped == 0 || starved == 0 || rejected == 0 {
		t.Fatalf("default rates never fired: trap=%d fuel=%d reject=%d", trapped, starved, rejected)
	}
	if hcFaults == 0 || hcSlow == 0 {
		t.Fatalf("hostcall submodes never fired: err/quota=%d slow=%d", hcFaults, hcSlow)
	}
	if clean < n/2 {
		t.Fatalf("only %d/%d requests clean under Default — rates too hot", clean, n)
	}
	s := in.Snapshot()
	if s.Trap == 0 || s.Fuel == 0 || s.Reject == 0 || s.Hostcall == 0 {
		t.Fatalf("snapshot lost counts: %+v", s)
	}
}

// TestConcurrentDecisions: concurrent queries race-free and identical to a
// serial replay (run under -race).
func TestConcurrentDecisions(t *testing.T) {
	in := Default(9)
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		results[g] = make([]bool, 200)
		go func(g int) {
			defer wg.Done()
			for seq := 0; seq < 200; seq++ {
				results[g][seq] = in.Trap("shared", seq)
			}
		}(g)
	}
	wg.Wait()
	ref := New(Config{Seed: 9, Trap: Default(9).cfg.Trap})
	for seq := 0; seq < 200; seq++ {
		want := ref.Trap("shared", seq)
		for g := 0; g < 8; g++ {
			if results[g][seq] != want {
				t.Fatalf("goroutine %d diverged at seq %d", g, seq)
			}
		}
	}
}

// TestSubstrateDeterminism: substrate decisions — including mode and
// placement sub-draws — are identical across injectors with the same seed
// and actually fire both live and dead modes at Default rates.
func TestSubstrateDeterminism(t *testing.T) {
	a, b := Default(31), Default(31)
	var flips, spots, tlbLive, tlbDead, csLive, csDead, rotLive, rotDead int
	for seq := 0; seq < 4000; seq++ {
		if a.BitFlip("t", seq) != b.BitFlip("t", seq) {
			t.Fatalf("bitflip diverged at %d", seq)
		}
		ap, am := a.BitFlipSpec("t", seq)
		bp, bm := b.BitFlipSpec("t", seq)
		if ap != bp || am != bm {
			t.Fatalf("bitflip spec diverged at %d", seq)
		}
		if am == 0 {
			t.Fatalf("zero flip mask at %d", seq)
		}
		if a.SpotCheck("t", seq) != b.SpotCheck("t", seq) {
			t.Fatalf("spot-check diverged at %d", seq)
		}
		if a.SpotCheck("t", seq) {
			spots++
		}
		if a.BitFlip("t", seq) {
			flips++
		}
		al, ak := a.TLBStale("t", seq)
		bl, bk := b.TLBStale("t", seq)
		if al != bl || ak != bk {
			t.Fatalf("tlbstale diverged at %d", seq)
		}
		if ak {
			if al {
				tlbLive++
			} else {
				tlbDead++
			}
		}
		an, alv, aok := a.ClockSkew("t", seq)
		bn, blv, bok := b.ClockSkew("t", seq)
		if an != bn || alv != blv || aok != bok {
			t.Fatalf("clockskew diverged at %d", seq)
		}
		if aok {
			if an == 0 || an > a.cfg.SkewNs+1 {
				t.Fatalf("skew magnitude %d out of range at %d", an, seq)
			}
			if alv {
				csLive++
			} else {
				csDead++
			}
		}
		api, alr, aro := a.LoweringRot("t", seq)
		bpi, blr, bro := b.LoweringRot("t", seq)
		if api != bpi || alr != blr || aro != bro {
			t.Fatalf("loweringrot diverged at %d", seq)
		}
		if aro {
			if alr {
				rotLive++
			} else {
				rotDead++
			}
		}
	}
	if flips == 0 || spots == 0 || tlbLive == 0 || tlbDead == 0 ||
		csLive == 0 || csDead == 0 || rotLive == 0 || rotDead == 0 {
		t.Fatalf("a substrate mode never fired: flips=%d spots=%d tlb=%d/%d cs=%d/%d rot=%d/%d",
			flips, spots, tlbLive, tlbDead, csLive, csDead, rotLive, rotDead)
	}
	s := a.Snapshot()
	if s.BitFlip == 0 || s.TLBStale == 0 || s.ClockSkew == 0 || s.LoweringRot == 0 {
		t.Fatalf("snapshot lost substrate counts: %+v", s)
	}
}

// TestParseClassesAndRestrict: class names round-trip through parsing, and
// Restrict zeroes exactly the unlisted classes.
func TestParseClassesAndRestrict(t *testing.T) {
	for _, f := range Classes() {
		got, err := ParseClasses(f.String())
		if err != nil || len(got) != 1 || got[0] != f {
			t.Fatalf("class %v did not round-trip: %v %v", f, got, err)
		}
	}
	if _, err := ParseClasses("bitflip,nonsense"); err == nil {
		t.Fatal("unknown class accepted")
	}
	fs, err := ParseClasses(" bitflip , trap ")
	if err != nil || len(fs) != 2 {
		t.Fatalf("parse with spaces: %v %v", fs, err)
	}
	cfg := Default(1).cfg.Restrict(fs)
	if cfg.BitFlip == 0 || cfg.Trap == 0 {
		t.Fatal("Restrict zeroed a kept class")
	}
	if cfg.Provision != 0 || cfg.Reject != 0 || cfg.Fuel != 0 || cfg.Slow != 0 ||
		cfg.Poison != 0 || cfg.Hostcall != 0 || cfg.TLBStale != 0 ||
		cfg.ClockSkew != 0 || cfg.LoweringRot != 0 {
		t.Fatalf("Restrict kept an unlisted class: %+v", cfg)
	}
	if cfg.SpotCheck == 0 || cfg.SkewNs == 0 {
		t.Fatal("Restrict dropped detection-side knobs")
	}
	in := New(cfg.Restrict(nil))
	for seq := 0; seq < 50; seq++ {
		if !in.Clean("t", seq) {
			t.Fatal("fully restricted injector still injects")
		}
	}
}

// TestSlowDownDuration: slowdowns use the configured duration.
func TestSlowDownDuration(t *testing.T) {
	in := New(Config{Seed: 5, Slow: 1, SlowFor: 3 * time.Millisecond})
	if d := in.SlowDown("t", 0); d != 3*time.Millisecond {
		t.Fatalf("slowdown = %v, want 3ms", d)
	}
}

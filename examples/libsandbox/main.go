// Library-sandboxing example (§6.2): a Firefox-style renderer that calls
// an untrusted image decoder once per scanline and an untrusted font
// shaper per reflow, comparing Wasm's software schemes against HFI. This
// is the fine-grained, transition-heavy use case where HFI's cheap
// serialized enters/exits and zero-instrumentation accesses pay off.
//
//	go run ./examples/libsandbox
package main

import (
	"fmt"
	"log"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

func decodeImage(scheme sfi.Scheme, width, rows, quality uint64) (float64, uint64, error) {
	rt := sandbox.NewRuntime()
	rt.Serialized = true
	inst, err := rt.Instantiate(workloads.JPEGDecoder(), scheme, wasm.Options{})
	if err != nil {
		return 0, 0, err
	}
	eng := cpu.NewInterp(rt.M)
	clock := rt.M.Kern.Clock
	t0 := clock.Now()
	var checksum uint64
	for row := uint64(0); row < rows; row++ {
		res, sum := inst.Invoke(eng, 0, row, width, quality)
		if res.Reason != cpu.StopHalt {
			return 0, 0, fmt.Errorf("row %d: stop %v", row, res.Reason)
		}
		checksum ^= sum
	}
	return float64(clock.Now() - t0), checksum, nil
}

func main() {
	fmt.Println("== Sandboxed libjpeg: 854x480 image, default compression ==")
	fmt.Println("   (one sandbox invocation per scanline, serialized enter/exit)")
	var baseline float64
	var want uint64
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		ns, sum, err := decodeImage(scheme, 854, 480, 7)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline, want = ns, sum
		}
		if sum != want {
			log.Fatalf("%v: decoded pixels diverge", scheme)
		}
		fmt.Printf("  %-12v %-10s (%.1f%% of guard pages)\n", scheme, stats.Ns(ns), ns/baseline*100)
	}

	fmt.Println("\n== Sandboxed libgraphite: text reflow at 10 font sizes ==")
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		rt := sandbox.NewRuntime()
		rt.Serialized = true
		inst, err := rt.Instantiate(workloads.FontShaper(), scheme, wasm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		eng := cpu.NewInterp(rt.M)
		clock := rt.M.Kern.Clock
		t0 := clock.Now()
		var advance uint64
		for size := uint64(8); size < 18; size++ {
			res, adv := inst.Invoke(eng, 0, 4096, size)
			if res.Reason != cpu.StopHalt {
				log.Fatalf("reflow: stop %v", res.Reason)
			}
			advance += adv
		}
		fmt.Printf("  %-12v %-10s (total advance %d)\n", scheme, stats.Ns(float64(clock.Now()-t0)), advance)
	}
}
